// Randomized equivalence suite for the two-tier connectivity oracle.
//
// The production oracle answers most probes with the O(1) local
// 8-neighborhood rule and falls back to a generation-stamped scratch flood
// (lattice/connectivity.cpp); this suite pins it against an independent
// hash-set BFS reference (the pre-fast-path implementation) over thousands
// of random grids and move batches — including disconnecting moves,
// handover chains and carrying-style double moves — and across mutations,
// which exercises the grid's cached connectivity hint.

#include <gtest/gtest.h>

#include <unordered_set>
#include <utility>
#include <vector>

#include "lattice/connectivity.hpp"
#include "motion/apply.hpp"
#include "util/rng.hpp"

namespace sb::lat {
namespace {

using MoveList = std::vector<std::pair<Vec2, Vec2>>;

// -- reference model (hash-set BFS, no shortcuts) ---------------------------

size_t reference_flood(const Grid& grid, Vec2 start,
                       const std::unordered_set<Vec2, Vec2Hash>& vacated,
                       const std::unordered_set<Vec2, Vec2Hash>& filled) {
  const auto occupied = [&](Vec2 p) {
    if (filled.count(p)) return true;
    if (vacated.count(p)) return false;
    return grid.occupied(p);
  };
  if (!occupied(start)) return 0;
  std::unordered_set<Vec2, Vec2Hash> seen{start};
  std::vector<Vec2> frontier{start};
  while (!frontier.empty()) {
    const Vec2 p = frontier.back();
    frontier.pop_back();
    for (Direction d : all_directions()) {
      const Vec2 q = p + delta(d);
      if (!seen.count(q) && occupied(q)) {
        seen.insert(q);
        frontier.push_back(q);
      }
    }
  }
  return seen.size();
}

bool reference_is_connected(const Grid& grid) {
  if (grid.block_count() <= 1) return true;
  return reference_flood(grid, grid.first_block_position(), {}, {}) ==
         grid.block_count();
}

bool reference_connected_after(const Grid& grid, const MoveList& moves) {
  std::unordered_set<Vec2, Vec2Hash> vacated;
  std::unordered_set<Vec2, Vec2Hash> filled;
  for (const auto& [from, to] : moves) vacated.insert(from);
  for (const auto& [from, to] : moves) {
    filled.insert(to);
    vacated.erase(to);
  }
  if (grid.block_count() <= 1) return true;
  Vec2 start{-1, -1};
  bool found = false;
  for (const auto& [id, pos] : grid.blocks()) {
    Vec2 p = pos;
    for (const auto& [from, to] : moves) {
      if (from == pos) {
        p = to;
        break;
      }
    }
    if (!found) {
      start = p;
      found = true;
    }
  }
  return reference_flood(grid, start, vacated, filled) ==
         grid.block_count();
}

bool reference_single_line_after(const Grid& grid, const MoveList& moves) {
  if (grid.block_count() <= 1) return true;
  bool same_x = true;
  bool same_y = true;
  bool first = true;
  Vec2 reference;
  for (const auto& [id, pos] : grid.blocks()) {
    Vec2 p = pos;
    for (const auto& [from, to] : moves) {
      if (from == pos) {
        p = to;
        break;
      }
    }
    if (first) {
      reference = p;
      first = false;
    } else {
      same_x &= p.x == reference.x;
      same_y &= p.y == reference.y;
    }
  }
  return same_x || same_y;
}

// -- random generation ------------------------------------------------------

Grid random_grid(Rng& rng, std::vector<Vec2>& occupied_cells) {
  const auto w = static_cast<int32_t>(rng.next_in(4, 12));
  const auto h = static_cast<int32_t>(rng.next_in(4, 12));
  Grid grid(w, h);
  occupied_cells.clear();
  // Half the grids grow as connected blobs (the sim's regime, where the
  // local rule and the hint cache do the work); the rest are uniform
  // sprinkles, frequently disconnected.
  uint32_t id = 1;
  if (rng.next_bool()) {
    const Vec2 seed{static_cast<int32_t>(rng.next_in(0, w - 1)),
                    static_cast<int32_t>(rng.next_in(0, h - 1))};
    grid.place(BlockId{id++}, seed);
    occupied_cells.push_back(seed);
    const auto target = static_cast<size_t>(
        rng.next_in(2, static_cast<int64_t>(w) * h / 2));
    for (size_t attempts = 0;
         grid.block_count() < target && attempts < 400; ++attempts) {
      const Vec2 base = occupied_cells[rng.pick_index(occupied_cells)];
      const Vec2 q = base + delta(static_cast<Direction>(rng.next_in(0, 3)));
      if (grid.in_bounds(q) && !grid.occupied(q)) {
        grid.place(BlockId{id++}, q);
        occupied_cells.push_back(q);
      }
    }
  } else {
    const int64_t cells = static_cast<int64_t>(w) * h;
    for (int32_t y = 0; y < h; ++y) {
      for (int32_t x = 0; x < w; ++x) {
        if (rng.next_in(0, cells) < cells / 3) {
          grid.place(BlockId{id++}, {x, y});
          occupied_cells.push_back({x, y});
        }
      }
    }
  }
  return grid;
}

/// Random hypothetical batch: single hops (adjacent or teleport, often
/// disconnecting), handover chains, or carrying-style double moves.
MoveList random_batch(const Grid& grid, const std::vector<Vec2>& cells,
                      Rng& rng) {
  MoveList moves;
  if (cells.empty()) return moves;
  const auto empty_cell = [&](Rng& r) {
    for (int i = 0; i < 64; ++i) {
      const Vec2 q{static_cast<int32_t>(r.next_in(0, grid.width() - 1)),
                   static_cast<int32_t>(r.next_in(0, grid.height() - 1))};
      if (!grid.occupied(q)) return q;
    }
    return Vec2{-1, -1};
  };
  const int shape = static_cast<int>(rng.next_in(0, 3));
  if (shape <= 1) {  // single hop; shape 0 adjacent, shape 1 teleport
    const Vec2 from = cells[rng.pick_index(cells)];
    Vec2 to{-1, -1};
    if (shape == 0) {
      const Vec2 q =
          from + delta(static_cast<Direction>(rng.next_in(0, 3)));
      if (grid.in_bounds(q) && !grid.occupied(q)) to = q;
    } else {
      to = empty_cell(rng);
    }
    if (to.x >= 0) moves.push_back({from, to});
  } else if (shape == 2) {  // handover chain A->B, B->C
    const Vec2 a = cells[rng.pick_index(cells)];
    const Vec2 b = a + delta(static_cast<Direction>(rng.next_in(0, 3)));
    if (grid.occupied(b)) {
      const Vec2 c = b + delta(static_cast<Direction>(rng.next_in(0, 3)));
      if (grid.in_bounds(c) && !grid.occupied(c) && c != a) {
        moves.push_back({a, b});
        moves.push_back({b, c});
      }
    }
  } else {  // carrying-style: two blocks, two distinct empty destinations
    const Vec2 a = cells[rng.pick_index(cells)];
    const Vec2 b = cells[rng.pick_index(cells)];
    const Vec2 x = empty_cell(rng);
    const Vec2 y = empty_cell(rng);
    if (a != b && x.x >= 0 && y.x >= 0 && x != y) {
      moves.push_back({a, x});
      moves.push_back({b, y});
    }
  }
  return moves;
}

// -- suites -----------------------------------------------------------------

TEST(ConnectivityEquivalence, RandomGridsAgreeWithReference) {
  Rng rng(0xC0FFEEULL);
  std::vector<Vec2> cells;
  int batches_checked = 0;
  for (int trial = 0; trial < 400; ++trial) {
    const Grid grid = random_grid(rng, cells);
    ASSERT_EQ(is_connected(grid), reference_is_connected(grid))
        << "trial " << trial;
    for (int b = 0; b < 12; ++b) {
      const MoveList moves = random_batch(grid, cells, rng);
      if (moves.empty()) continue;
      ++batches_checked;
      ASSERT_EQ(connected_after_moves(grid, moves),
                reference_connected_after(grid, moves))
          << "trial " << trial << " batch " << b;
      ASSERT_EQ(lat::single_line_after_moves(grid, moves),
                reference_single_line_after(grid, moves))
          << "trial " << trial << " batch " << b;
    }
  }
  // The generator must actually produce work (including degenerate shapes).
  EXPECT_GT(batches_checked, 2000);
}

TEST(ConnectivityEquivalence, LocalRuleIsSoundOnConnectedGrids) {
  Rng rng(0xBEEFULL);
  std::vector<Vec2> cells;
  int conclusive = 0;
  for (int trial = 0; trial < 1500; ++trial) {
    const Grid grid = random_grid(rng, cells);
    if (!reference_is_connected(grid) || grid.block_count() < 2) continue;
    const Vec2 from = cells[rng.pick_index(cells)];
    const Vec2 to = from + delta(static_cast<Direction>(rng.next_in(0, 3)));
    if (!grid.in_bounds(to) || grid.occupied(to)) continue;
    const MoveList moves{{from, to}};
    switch (local_move_check(grid, from, to)) {
      case LocalVerdict::kPreservesConnectivity:
        ++conclusive;
        ASSERT_TRUE(reference_connected_after(grid, moves))
            << "local rule accepted a disconnecting move, trial " << trial;
        break;
      case LocalVerdict::kDisconnects:
        ++conclusive;
        ASSERT_FALSE(reference_connected_after(grid, moves))
            << "local rule rejected a safe move, trial " << trial;
        break;
      case LocalVerdict::kInconclusive:
        break;  // the flood decides; covered by the suite above
    }
  }
  EXPECT_GT(conclusive, 100);  // the fast path must actually fire
}

TEST(ConnectivityEquivalence, HintCacheSurvivesMutations) {
  // Interleave queries with place/remove/move mutations: the cached
  // connectivity hint must never disagree with the reference.
  Rng rng(0x5EEDBEEFULL);
  std::vector<Vec2> cells;
  for (int trial = 0; trial < 120; ++trial) {
    Grid grid = random_grid(rng, cells);
    uint32_t next_id = 1000;
    for (int step = 0; step < 30; ++step) {
      const int action = static_cast<int>(rng.next_in(0, 2));
      if (action == 0 || cells.empty()) {  // place
        const Vec2 q{static_cast<int32_t>(rng.next_in(0, grid.width() - 1)),
                     static_cast<int32_t>(rng.next_in(0, grid.height() - 1))};
        if (!grid.occupied(q)) {
          grid.place(BlockId{next_id++}, q);
          cells.push_back(q);
        }
      } else if (action == 1) {  // remove
        const size_t index = rng.pick_index(cells);
        grid.remove(cells[index]);
        cells[index] = cells.back();
        cells.pop_back();
      } else {  // move to a random adjacent empty cell
        const size_t index = rng.pick_index(cells);
        const Vec2 from = cells[index];
        const Vec2 to =
            from + delta(static_cast<Direction>(rng.next_in(0, 3)));
        if (grid.in_bounds(to) && !grid.occupied(to)) {
          grid.move(from, to);
          cells[index] = to;
        }
      }
      ASSERT_EQ(is_connected(grid), reference_is_connected(grid))
          << "trial " << trial << " step " << step;
      ASSERT_EQ(is_single_line(grid),
                reference_single_line_after(grid, {}))
          << "trial " << trial << " step " << step;
    }
  }
}

}  // namespace
}  // namespace sb::lat
