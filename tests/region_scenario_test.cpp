// Tests for the I/O region model (§III) and scenarios.

#include <gtest/gtest.h>

#include "lattice/region.hpp"
#include "lattice/scenario.hpp"

namespace sb::lat {
namespace {

// ---------------------------------------------------------------------------
// Region / oriented graph (paper §III)
// ---------------------------------------------------------------------------

TEST(Region, BoundingRectNormalizesCorners) {
  const Rect rect = bounding_rect({5, 1}, {2, 7});
  EXPECT_EQ(rect.lo, Vec2(2, 1));
  EXPECT_EQ(rect.hi, Vec2(5, 7));
  EXPECT_EQ(rect.width(), 4);
  EXPECT_EQ(rect.height(), 7);
  EXPECT_TRUE(rect.contains({3, 3}));
  EXPECT_FALSE(rect.contains({1, 3}));
}

TEST(Region, DegenerateRectForAlignedIO) {
  const Rect rect = bounding_rect({1, 0}, {1, 10});
  EXPECT_EQ(rect.width(), 1);
  EXPECT_EQ(rect.height(), 11);
  EXPECT_TRUE(rect.contains({1, 5}));
  EXPECT_FALSE(rect.contains({0, 5}));
}

TEST(Region, OrientedDirectionsLeftUp) {
  // Fig 2: output left and above the input -> left-up oriented graph.
  const auto dirs = oriented_directions({5, 1}, {2, 7});
  ASSERT_EQ(dirs.size(), 2u);
  EXPECT_EQ(dirs[0], Direction::kWest);
  EXPECT_EQ(dirs[1], Direction::kNorth);
}

TEST(Region, OrientedDirectionsAligned) {
  const auto dirs = oriented_directions({1, 0}, {1, 10});
  ASSERT_EQ(dirs.size(), 1u);
  EXPECT_EQ(dirs[0], Direction::kNorth);
}

TEST(Region, OrientedGraphLinkCount) {
  // For a w x h rectangle with both directions: w*h*(2) - w - h edges
  // (each node has up to one west and one north link).
  const auto links = oriented_graph_links({3, 0}, {0, 2});  // 4 x 3 rect
  // 4*3 nodes; west links: 3 per row * 3 rows = 9; north: 4 per col * 2 = 8.
  EXPECT_EQ(links.size(), 17u);
  for (const auto& [from, to] : links) {
    EXPECT_EQ(manhattan(from, to), 1);
    // Every link points toward O (west or north here).
    EXPECT_TRUE(to.x < from.x || to.y > from.y);
  }
}

TEST(Region, ShortestPathCells) {
  EXPECT_EQ(shortest_path_cells({1, 0}, {1, 10}), 11);
  EXPECT_EQ(shortest_path_cells({0, 0}, {3, 4}), 8);
}

TEST(Region, MaxShortestPathMatchesPaper) {
  // §III: the maximum length of a shortest path is W + H - 1.
  EXPECT_EQ(max_shortest_path_cells(6, 12), 17);
  EXPECT_EQ(max_shortest_path_cells(2, 2), 3);
}

TEST(Region, OccupiedShortestPathStraight) {
  Grid grid(4, 6);
  for (int32_t y = 0; y <= 4; ++y) grid.place(BlockId{uint32_t(y + 1)}, {1, y});
  const auto path = occupied_shortest_path(grid, {1, 0}, {1, 4});
  ASSERT_TRUE(path.has_value());
  ASSERT_EQ(path->size(), 5u);
  EXPECT_EQ(path->front(), Vec2(1, 0));
  EXPECT_EQ(path->back(), Vec2(1, 4));
}

TEST(Region, OccupiedShortestPathStaircase) {
  // L-shaped occupied path from (0,0) to (2,2).
  Grid grid(4, 4);
  uint32_t id = 1;
  for (const Vec2 cell :
       {Vec2{0, 0}, Vec2{1, 0}, Vec2{2, 0}, Vec2{2, 1}, Vec2{2, 2}}) {
    grid.place(BlockId{id++}, cell);
  }
  const auto path = occupied_shortest_path(grid, {0, 0}, {2, 2});
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->size(), 5u);
}

TEST(Region, IncompletePathReturnsNullopt) {
  Grid grid(4, 6);
  grid.place(BlockId{1}, {1, 0});
  grid.place(BlockId{2}, {1, 1});
  grid.place(BlockId{3}, {1, 4});  // gap at y=2,3
  EXPECT_FALSE(occupied_shortest_path(grid, {1, 0}, {1, 4}).has_value());
  EXPECT_FALSE(path_complete(grid, {1, 0}, {1, 4}));
}

TEST(Region, DetourDoesNotCountAsShortestPath) {
  // Occupied connection exists but is longer than Manhattan: not a
  // *shortest* path.
  Grid grid(4, 4);
  uint32_t id = 1;
  for (const Vec2 cell : {Vec2{0, 0}, Vec2{0, 1}, Vec2{1, 1}, Vec2{2, 1},
                          Vec2{2, 0}}) {
    grid.place(BlockId{id++}, cell);
  }
  // From (0,0) to (2,0): manhattan 2, but the straight cell (1,0) is empty.
  EXPECT_FALSE(path_complete(grid, {0, 0}, {2, 0}));
}

TEST(Region, StrayBlocksAreAllowed) {
  Grid grid(4, 6);
  for (int32_t y = 0; y <= 4; ++y) grid.place(BlockId{uint32_t(y + 1)}, {1, y});
  grid.place(BlockId{99}, {3, 3});  // stray spare
  EXPECT_TRUE(path_complete(grid, {1, 0}, {1, 4}));
}

// ---------------------------------------------------------------------------
// Scenario format
// ---------------------------------------------------------------------------

TEST(Scenario, ParseBasic) {
  const Scenario s = parse_scenario(
      "# comment\n"
      "name t\n"
      "size 4 5\n"
      "input 1 0\n"
      "output 1 4\n"
      "block 7 1 0\n"
      "block 8 2 0\n");
  EXPECT_EQ(s.name, "t");
  EXPECT_EQ(s.width, 4);
  EXPECT_EQ(s.height, 5);
  EXPECT_EQ(s.input, Vec2(1, 0));
  EXPECT_EQ(s.output, Vec2(1, 4));
  ASSERT_EQ(s.blocks.size(), 2u);
  EXPECT_EQ(s.root_id(), BlockId{7});
}

TEST(Scenario, RoundTrip) {
  const Scenario original = make_fig10_scenario();
  const Scenario parsed = parse_scenario(serialize_scenario(original));
  EXPECT_EQ(parsed.name, original.name);
  EXPECT_EQ(parsed.width, original.width);
  EXPECT_EQ(parsed.input, original.input);
  EXPECT_EQ(parsed.output, original.output);
  EXPECT_EQ(parsed.blocks, original.blocks);
}

TEST(Scenario, ParseErrorsCarryLineNumbers) {
  try {
    (void)parse_scenario("size 4 4\ninput 0 0\nbogus 1 2\n");
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("line 3"), std::string::npos);
  }
}

TEST(Scenario, MissingSizeFails) {
  EXPECT_THROW((void)parse_scenario("input 0 0\noutput 1 1\n"),
               std::runtime_error);
}

TEST(Scenario, ToGridPlacesAllBlocks) {
  const Scenario s = make_fig10_scenario();
  const Grid grid = s.to_grid();
  EXPECT_EQ(grid.block_count(), 12u);
  EXPECT_TRUE(grid.occupied(s.input));
}

// ---------------------------------------------------------------------------
// Validation (the paper's assumptions)
// ---------------------------------------------------------------------------

TEST(ScenarioValidate, Fig10IsValid) {
  EXPECT_TRUE(validate(make_fig10_scenario()).empty());
}

TEST(ScenarioValidate, RejectsMissingRoot) {
  Scenario s = make_fig10_scenario();
  s.input = {0, 0};  // no block there
  const auto issues = validate(s);
  ASSERT_FALSE(issues.empty());
  EXPECT_NE(issues[0].find("input"), std::string::npos);
}

TEST(ScenarioValidate, RejectsOccupiedOutput) {
  Scenario s = make_fig10_scenario();
  s.output = {2, 3};  // a blob cell
  EXPECT_FALSE(validate(s).empty());
}

TEST(ScenarioValidate, RejectsDisconnectedBlocks) {
  Scenario s = make_fig10_scenario();
  s.blocks.emplace_back(BlockId{99}, Vec2{5, 11});
  EXPECT_FALSE(validate(s).empty());
}

TEST(ScenarioValidate, RejectsSingleLine) {
  // Assumption 1 excludes a pure column of blocks (enough blocks for the
  // path, so the single-line issue is the only one).
  Scenario s;
  s.width = 5;
  s.height = 8;
  s.input = {1, 0};
  s.output = {3, 2};  // 5 path cells
  for (uint32_t y = 0; y < 6; ++y) {
    s.blocks.emplace_back(BlockId{y + 1}, Vec2{1, static_cast<int32_t>(y)});
  }
  const auto issues = validate(s);
  ASSERT_FALSE(issues.empty());
  bool mentions_line = false;
  for (const auto& issue : issues) {
    mentions_line |= issue.find("single") != std::string::npos;
  }
  EXPECT_TRUE(mentions_line);
}

TEST(ScenarioValidate, RejectsTooFewBlocks) {
  Scenario s;
  s.width = 4;
  s.height = 12;
  s.input = {1, 0};
  s.output = {1, 10};  // 11 path cells
  s.blocks = {{BlockId{1}, {1, 0}}, {BlockId{2}, {2, 0}},
              {BlockId{3}, {1, 1}}};
  EXPECT_FALSE(validate(s).empty());
}

TEST(ScenarioValidate, RejectsDuplicates) {
  Scenario s = make_fig10_scenario();
  s.blocks.emplace_back(BlockId{1}, Vec2{4, 4});  // duplicate id
  EXPECT_FALSE(validate(s).empty());

  Scenario t = make_fig10_scenario();
  t.blocks.emplace_back(BlockId{99}, t.blocks.front().second);  // shared cell
  EXPECT_FALSE(validate(t).empty());
}

TEST(ScenarioValidate, RejectsOutOfBoundsIO) {
  Scenario s = make_fig10_scenario();
  s.output = {99, 99};
  EXPECT_FALSE(validate(s).empty());
}

TEST(ScenarioValidate, RejectsInputEqualsOutput) {
  Scenario s = make_fig10_scenario();
  s.output = s.input;
  EXPECT_FALSE(validate(s).empty());
}

// ---------------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------------

TEST(ScenarioGen, Fig10MatchesPaperNumbers) {
  const Scenario s = make_fig10_scenario();
  EXPECT_EQ(s.block_count(), 12u);  // twelve blocks (paper §V.D)
  // "shortest path distance between I and O equal to eleven" (11 cells).
  EXPECT_EQ(shortest_path_cells(s.input, s.output), 11);
  EXPECT_EQ(s.input.x, s.output.x);  // same column, as in Fig 10
}

TEST(ScenarioGen, TowerHasLemmaExtremalShape) {
  for (int32_t k : {2, 3, 5, 8}) {
    const Scenario s = make_tower_scenario(k);
    EXPECT_TRUE(validate(s).empty()) << "tower " << k;
    // Lemma 1: N blocks for a path of N-1 cells.
    EXPECT_EQ(static_cast<int32_t>(s.block_count()),
              shortest_path_cells(s.input, s.output) + 1);
  }
}

TEST(ScenarioGen, RandomBlobIsValidAndDeterministic) {
  BlobParams params;
  params.surface_width = 12;
  params.surface_height = 12;
  params.input = {2, 1};
  params.output = {9, 9};
  params.block_count = 20;
  Rng rng_a(77);
  Rng rng_b(77);
  const Scenario a = random_blob_scenario(params, rng_a);
  const Scenario b = random_blob_scenario(params, rng_b);
  EXPECT_TRUE(validate(a).empty());
  EXPECT_EQ(a.blocks, b.blocks);  // deterministic for equal RNG state
  EXPECT_EQ(a.block_count(), 20u);
}

TEST(ScenarioGen, RandomBlobAvoidsOutputAlignment) {
  BlobParams params;
  params.surface_width = 14;
  params.surface_height = 14;
  params.input = {2, 2};
  params.output = {10, 10};
  params.block_count = 30;
  Rng rng(5);
  const Scenario s = random_blob_scenario(params, rng);
  const Rect rect = bounding_rect(params.input, params.output);
  for (const auto& [id, pos] : s.blocks) {
    if (pos == params.input) continue;
    const bool aligned = pos.x == params.output.x || pos.y == params.output.y;
    EXPECT_FALSE(aligned && rect.contains(pos))
        << "block " << id << " starts frozen at " << pos;
  }
}

TEST(ScenarioGen, RectangleScenario) {
  const Scenario s =
      make_rectangle_scenario(10, 10, {1, 1}, 3, 4, {1, 1}, {8, 8});
  EXPECT_EQ(s.block_count(), 12u);
  EXPECT_TRUE(s.to_grid().occupied({3, 4}));
  EXPECT_FALSE(s.to_grid().occupied({4, 5}));
}

// ---------------------------------------------------------------------------
// resolve_scenario — the CLI scenario vocabulary shared by tools/sweep,
// examples/large_scale, and the benches.
// ---------------------------------------------------------------------------

TEST(ResolveScenario, ParsesSizedNames) {
  EXPECT_EQ(parse_sized_scenario_name("tower64", "tower"), 64);
  EXPECT_EQ(parse_sized_scenario_name("blob100000", "blob"), 100000);
  EXPECT_EQ(parse_sized_scenario_name("tower", "tower"), -1);    // no digits
  EXPECT_EQ(parse_sized_scenario_name("tower6x", "tower"), -1);  // junk tail
  EXPECT_EQ(parse_sized_scenario_name("blob64", "tower"), -1);   // bad prefix
  EXPECT_EQ(parse_sized_scenario_name("xtower64", "tower"), -1);  // infix
}

TEST(ResolveScenario, TowerBlobRectAndFig10) {
  const Scenario tower = resolve_scenario("tower16");
  EXPECT_EQ(tower.block_count(), 16u);
  EXPECT_TRUE(validate(tower).empty());

  const Scenario blob = resolve_scenario("blob64", 0x5eed);
  EXPECT_EQ(blob.block_count(), 64u);
  EXPECT_TRUE(validate(blob).empty());

  const Scenario rect = resolve_scenario("rect100");
  EXPECT_GE(rect.block_count(), 64u);
  EXPECT_TRUE(validate(rect).empty());

  EXPECT_EQ(resolve_scenario("fig10").block_count(), 12u);
}

TEST(ResolveScenario, BlobIsDeterministicPerSeed) {
  const Scenario a = resolve_scenario("blob128", 42);
  const Scenario b = resolve_scenario("blob128", 42);
  const Scenario c = resolve_scenario("blob128", 43);
  EXPECT_EQ(a.blocks, b.blocks);
  EXPECT_NE(a.blocks, c.blocks);
}

TEST(ResolveScenario, RejectsBadSizes) {
  EXPECT_THROW(resolve_scenario("tower15"), std::runtime_error);  // odd
  EXPECT_THROW(resolve_scenario("tower2"), std::runtime_error);   // too small
  EXPECT_THROW(resolve_scenario("blob63"), std::runtime_error);
  EXPECT_THROW(resolve_scenario("blob10000001"), std::runtime_error);
  EXPECT_THROW(resolve_scenario("rect1"), std::runtime_error);
}

TEST(ResolveScenario, FallsBackToScenarioFiles) {
  const Scenario s =
      resolve_scenario(std::string(SMARTBLOCKS_DATA_DIR) +
                       "/scenarios/fig10.surf");
  EXPECT_EQ(s.block_count(), 12u);
  EXPECT_THROW(resolve_scenario("no/such/file.surf"), std::runtime_error);
}

}  // namespace
}  // namespace sb::lat
