// Tests for connectivity analysis (the physics behind Remark 1).

#include <gtest/gtest.h>

#include "lattice/connectivity.hpp"

namespace sb::lat {
namespace {

Grid make_grid(std::initializer_list<Vec2> cells, int32_t w = 8,
               int32_t h = 8) {
  Grid grid(w, h);
  uint32_t id = 1;
  for (const Vec2 cell : cells) grid.place(BlockId{id++}, cell);
  return grid;
}

TEST(Connectivity, EmptyAndSingletonAreConnected) {
  EXPECT_TRUE(is_connected(make_grid({})));
  EXPECT_TRUE(is_connected(make_grid({{3, 3}})));
}

TEST(Connectivity, AdjacentPairConnected) {
  EXPECT_TRUE(is_connected(make_grid({{1, 1}, {1, 2}})));
}

TEST(Connectivity, DiagonalPairNotConnected) {
  // Diagonal contact is no contact (side sensors only).
  EXPECT_FALSE(is_connected(make_grid({{1, 1}, {2, 2}})));
}

TEST(Connectivity, BlobWithHoleConnected) {
  // A ring: connected even though it encloses an empty cell.
  EXPECT_TRUE(is_connected(make_grid({{1, 1},
                                      {2, 1},
                                      {3, 1},
                                      {1, 2},
                                      {3, 2},
                                      {1, 3},
                                      {2, 3},
                                      {3, 3}})));
}

TEST(Connectivity, ComponentCount) {
  EXPECT_EQ(component_count(make_grid({})), 0);
  EXPECT_EQ(component_count(make_grid({{0, 0}})), 1);
  EXPECT_EQ(component_count(make_grid({{0, 0}, {0, 1}, {4, 4}})), 2);
  EXPECT_EQ(component_count(make_grid({{0, 0}, {2, 0}, {4, 0}})), 3);
}

TEST(Connectivity, ConnectedAfterValidMove) {
  // (2,1) slides north to (2,2): stays attached to (1,1)? No - (2,2) is
  // adjacent to nothing else, but the mover leaves; check a real case:
  // L-shape, the tip moves but remains adjacent to the corner.
  const Grid grid = make_grid({{1, 1}, {2, 1}, {1, 2}});
  EXPECT_TRUE(connected_after_moves(grid, {{{2, 1}, {2, 2}}}));  // hugs corner? no:
  // (2,2) is adjacent to (1,2) which is occupied -> connected.
}

TEST(Connectivity, DisconnectedAfterBadMove) {
  const Grid grid = make_grid({{1, 1}, {2, 1}});
  // Moving (2,1) east detaches it from (1,1).
  EXPECT_FALSE(connected_after_moves(grid, {{{2, 1}, {3, 1}}}));
}

TEST(Connectivity, HandoverKeepsConnectivity) {
  // Carry: (1,1)->(2,1) while (0,1)->(1,1), support at (1,0).
  const Grid grid = make_grid({{0, 1}, {1, 1}, {1, 0}});
  EXPECT_TRUE(
      connected_after_moves(grid, {{{1, 1}, {2, 1}}, {{0, 1}, {1, 1}}}));
}

TEST(Connectivity, MoveThatSplitsBridge) {
  // A 3-in-a-row: lifting the middle block north strands both ends.
  const Grid grid = make_grid({{0, 0}, {1, 0}, {2, 0}});
  EXPECT_FALSE(connected_after_moves(grid, {{{1, 0}, {1, 1}}}));
}

TEST(Connectivity, BridgeWithAlternatePathSurvives) {
  // Same move, but a top rail keeps everything connected.
  const Grid grid = make_grid({{0, 0}, {1, 0}, {2, 0}, {0, 1}, {2, 1}});
  EXPECT_TRUE(connected_after_moves(grid, {{{1, 0}, {1, 1}}}));
}

TEST(Articulation, NoneInSolidSquare) {
  EXPECT_TRUE(
      articulation_points(make_grid({{0, 0}, {1, 0}, {0, 1}, {1, 1}}))
          .empty());
}

TEST(Articulation, MiddleOfLineIsArticulation) {
  const auto points =
      articulation_points(make_grid({{0, 0}, {1, 0}, {2, 0}}));
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0], Vec2(1, 0));
}

TEST(Articulation, LongLineAllInteriorAreArticulation) {
  const auto points = articulation_points(
      make_grid({{0, 0}, {1, 0}, {2, 0}, {3, 0}, {4, 0}}));
  EXPECT_EQ(points.size(), 3u);
}

TEST(Articulation, TJunction) {
  //   (1,1)
  // (0,0)(1,0)(2,0)
  const auto points =
      articulation_points(make_grid({{0, 0}, {1, 0}, {2, 0}, {1, 1}}));
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0], Vec2(1, 0));
}

TEST(Articulation, RingHasNone) {
  EXPECT_TRUE(articulation_points(make_grid({{1, 1},
                                             {2, 1},
                                             {3, 1},
                                             {1, 2},
                                             {3, 2},
                                             {1, 3},
                                             {2, 3},
                                             {3, 3}}))
                  .empty());
}

TEST(Articulation, TwoBlocksNever) {
  EXPECT_TRUE(articulation_points(make_grid({{0, 0}, {1, 0}})).empty());
}

TEST(SingleLine, DetectsRowAndColumn) {
  EXPECT_TRUE(is_single_line(make_grid({{0, 3}, {1, 3}, {2, 3}})));
  EXPECT_TRUE(is_single_line(make_grid({{2, 0}, {2, 1}, {2, 5}})));
  EXPECT_FALSE(is_single_line(make_grid({{0, 0}, {1, 0}, {1, 1}})));
  EXPECT_TRUE(is_single_line(make_grid({{4, 4}})));
  EXPECT_TRUE(is_single_line(make_grid({})));
}

}  // namespace
}  // namespace sb::lat
