// Tests for the parallel sweep harness (src/runner): deterministic seed
// forking, thread-count-independent results, byte-identical move traces,
// report aggregation, and the BENCH_sim.json schema.

#include <gtest/gtest.h>

#include <set>

#include "lattice/scenario.hpp"
#include "runner/report.hpp"
#include "runner/sweep.hpp"
#include "util/json.hpp"

namespace sb::runner {
namespace {

/// Randomized link latency so the RNG seed actually shapes the execution
/// (under the default fixed latency every seed produces the same schedule).
core::SessionConfig jittery_config() {
  core::SessionConfig config;
  config.sim.latency = msg::LatencyModel::uniform(1, 16);
  return config;
}

std::vector<RunSpec> tower_specs(size_t seed_count) {
  SweepGrid grid;
  grid.scenarios.push_back({"tower16", lat::make_tower_scenario(8)});
  grid.configs.push_back({"jitter", jittery_config()});
  grid.seed_count = seed_count;
  grid.master_seed = 0x5eedULL;
  return expand(grid);
}

SweepResult run_with_threads(const std::vector<RunSpec>& specs,
                             size_t threads) {
  SweepRunner::Options options;
  options.threads = threads;
  options.capture_traces = true;
  return SweepRunner(options).run(specs);
}

TEST(SeedForking, DependsOnlyOnMasterSeedAndIndex) {
  EXPECT_EQ(derive_run_seed(1, 0), derive_run_seed(1, 0));
  EXPECT_NE(derive_run_seed(1, 0), derive_run_seed(1, 1));
  EXPECT_NE(derive_run_seed(1, 0), derive_run_seed(2, 0));
}

TEST(Expand, CrossProductInDeterministicOrder) {
  SweepGrid grid;
  grid.scenarios.push_back({"a", lat::make_tower_scenario(8)});
  grid.scenarios.push_back({"b", lat::make_tower_scenario(8)});
  grid.configs.push_back({"c1", core::SessionConfig{}});
  grid.seeds = {7, 9};
  const auto specs = expand(grid);
  ASSERT_EQ(specs.size(), 4u);
  EXPECT_EQ(specs[0].scenario_label, "a");
  EXPECT_EQ(specs[0].seed, 7u);
  EXPECT_EQ(specs[1].seed, 9u);
  EXPECT_EQ(specs[2].scenario_label, "b");
}

// The tentpole determinism property: the same (scenario, seed) produces a
// byte-identical move trace whether the sweep runs on 1 thread or many.
TEST(SweepDeterminism, TracesIdenticalAcrossThreadCounts) {
  const auto specs = tower_specs(4);
  const SweepResult serial = run_with_threads(specs, 1);
  const SweepResult parallel = run_with_threads(specs, 4);

  ASSERT_EQ(serial.runs.size(), parallel.runs.size());
  for (size_t i = 0; i < serial.runs.size(); ++i) {
    ASSERT_FALSE(serial.runs[i].move_trace.empty());
    EXPECT_EQ(serial.runs[i].move_trace, parallel.runs[i].move_trace)
        << "trace diverged for run " << i;
    EXPECT_EQ(serial.runs[i].row.events, parallel.runs[i].row.events);
    EXPECT_EQ(serial.runs[i].row.sim_ticks, parallel.runs[i].row.sim_ticks);
    EXPECT_TRUE(serial.runs[i].row.complete);
  }
}

TEST(SweepDeterminism, RerunReproducesByteIdentically) {
  const auto specs = tower_specs(2);
  const SweepResult first = run_with_threads(specs, 2);
  const SweepResult second = run_with_threads(specs, 3);
  for (size_t i = 0; i < first.runs.size(); ++i) {
    EXPECT_EQ(first.runs[i].move_trace, second.runs[i].move_trace);
  }
}

TEST(SweepDeterminism, DistinctSeedsProduceDistinctExecutions) {
  const auto specs = tower_specs(4);
  const SweepResult result = run_with_threads(specs, 2);
  // Under randomized latency, different seeds must not collapse onto one
  // schedule: fingerprint each run by (sim_ticks, events, trace).
  std::set<std::tuple<uint64_t, uint64_t, std::vector<std::string>>> seen;
  for (const SweepRun& run : result.runs) {
    seen.insert({run.row.sim_ticks, run.row.events, run.move_trace});
  }
  EXPECT_GT(seen.size(), 1u) << "all seeds produced identical executions";
}

TEST(SweepRunner, AggregatesAllRunsIntoGroups) {
  SweepGrid grid;
  grid.scenarios.push_back({"tower16", lat::make_tower_scenario(8)});
  grid.seed_count = 3;
  const SweepResult result = SweepRunner().run_grid(grid);
  const auto groups = result.report.summarize();
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].scenario, "tower16");
  EXPECT_EQ(groups[0].runs, 3u);
  EXPECT_EQ(groups[0].completed, 3u);
  // Fixed latency: all runs take the same number of hops (the algorithm is
  // deterministic), so the spread is zero.
  EXPECT_EQ(groups[0].hops.min, groups[0].hops.max);
  EXPECT_GT(groups[0].events_per_sec.mean, 0.0);
}

TEST(BenchReportJson, SchemaAndRoundTrip) {
  BenchReport report("runner_test");
  report.set_master_seed(0xabcdef0123456789ULL);
  report.set_threads(4);
  RunRow row;
  row.scenario = "tower16";
  row.ruleset = "standard";
  row.seed = 0xdeadbeefcafef00dULL;
  row.complete = true;
  row.events = 1000;
  row.events_per_sec = 123456.5;
  row.wall_seconds = 0.0081;
  row.hops = 62;
  row.elementary_moves = 69;
  row.messages_sent = 4242;
  report.add_row(row);

  const util::JsonValue parsed = util::parse_json(report.to_json_text());
  EXPECT_EQ(parsed.find("schema")->as_string(), "sb-bench-sim/v1");
  EXPECT_EQ(parsed.find("generator")->as_string(), "runner_test");
  EXPECT_EQ(util::parse_u64(parsed.find("master_seed")->as_string()),
            0xabcdef0123456789ULL);
  ASSERT_EQ(parsed.find("runs")->size(), 1u);
  const util::JsonValue& run = parsed.find("runs")->as_array()[0];
  EXPECT_EQ(util::parse_u64(run.find("seed")->as_string()),
            0xdeadbeefcafef00dULL);
  EXPECT_EQ(run.find("hops")->as_number(), 62.0);
  ASSERT_EQ(parsed.find("summary")->size(), 1u);
  const util::JsonValue& group = parsed.find("summary")->as_array()[0];
  EXPECT_EQ(group.find("scenario")->as_string(), "tower16");
  EXPECT_DOUBLE_EQ(
      group.find_path({"events_per_sec", "mean"})->as_number(), 123456.5);
}

}  // namespace
}  // namespace sb::runner
