// Tests for the canonical-monotone path extension: diagonal I/O tasks
// (DESIGN.md finding 8; the paper's aligned-only metric cannot build
// these).

#include <gtest/gtest.h>

#include "core/reconfig.hpp"
#include "lattice/region.hpp"
#include "lattice/scenario.hpp"

namespace sb::core {
namespace {

using lat::Vec2;

SessionConfig lpath_config() {
  SessionConfig config;
  config.path_shape = PathShape::kCanonicalMonotone;
  config.max_events = 100'000'000;
  return config;
}

// ---------------------------------------------------------------------------
// The generalized path-cell predicate
// ---------------------------------------------------------------------------

TEST(CanonicalPathShape, FreezesTheLNotTheAlignment) {
  DistanceParams params;
  params.input = {1, 1};
  params.output = {5, 6};
  params.path_shape = PathShape::kCanonicalMonotone;
  // First leg: I's row between I and the corner.
  EXPECT_TRUE(is_path_cell({3, 1}, params));
  EXPECT_TRUE(is_path_cell({5, 1}, params));  // the corner
  // Second leg: O's column between the corner and O.
  EXPECT_TRUE(is_path_cell({5, 4}, params));
  // O's *row* is not on the canonical path (except O itself).
  EXPECT_FALSE(is_path_cell({3, 6}, params));
  // Interior staircase cells are not frozen.
  EXPECT_FALSE(is_path_cell({3, 3}, params));
  // Outside the rectangle: never.
  EXPECT_FALSE(is_path_cell({0, 1}, params));
}

TEST(CanonicalPathShape, BaseDistanceFreezesLegCells) {
  DistanceParams params;
  params.input = {1, 1};
  params.output = {5, 6};
  params.path_shape = PathShape::kCanonicalMonotone;
  EXPECT_EQ(base_distance({3, 1}, params), kInfiniteDistance);
  EXPECT_EQ(base_distance({5, 3}, params), kInfiniteDistance);
  EXPECT_EQ(base_distance({3, 3}, params), 2 + 3);  // staircase interior
  // One hop from O keeps the exception.
  EXPECT_EQ(base_distance({5, 5}, params), 1);
}

// ---------------------------------------------------------------------------
// Scenario generator
// ---------------------------------------------------------------------------

TEST(LPathScenario, GeneratorProducesValidDiagonalTask) {
  const lat::Scenario s = lat::make_lpath_scenario(5, 7, 4);
  EXPECT_TRUE(lat::validate(s).empty());
  EXPECT_EQ(s.input, Vec2(1, 1));
  EXPECT_EQ(s.output, Vec2(5, 7));
  EXPECT_NE(s.input.x, s.output.x);
  EXPECT_NE(s.input.y, s.output.y);  // genuinely diagonal
}

TEST(LPathScenario, RejectsUnderseededColumn) {
  EXPECT_DEATH((void)lat::make_lpath_scenario(5, 9, 3), "seed");
}

// ---------------------------------------------------------------------------
// End-to-end
// ---------------------------------------------------------------------------

class LPathSweep
    : public ::testing::TestWithParam<std::tuple<int32_t, int32_t, int32_t>> {
};

TEST_P(LPathSweep, DiagonalTaskCompletes) {
  const auto leg_x = std::get<0>(GetParam());
  const auto leg_y = std::get<1>(GetParam());
  const auto seed = std::get<2>(GetParam());
  const lat::Scenario scenario = lat::make_lpath_scenario(leg_x, leg_y, seed);
  ReconfigurationSession session(scenario, lpath_config());
  const SessionResult result = session.run();
  ASSERT_TRUE(result.complete)
      << "lpath " << leg_x << "x" << leg_y << " seed " << seed
      << (result.blocked ? " blocked" : "");
  EXPECT_FALSE(result.premature_completion);
  ASSERT_TRUE(result.path.has_value());
  // The built path is a real monotone shortest path ending at O.
  EXPECT_EQ(static_cast<int32_t>(result.path->size()), result.path_cells);
  EXPECT_EQ(result.path->back(), scenario.output);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, LPathSweep,
    ::testing::Values(std::make_tuple(3, 5, 3), std::make_tuple(5, 7, 4),
                      std::make_tuple(8, 7, 4), std::make_tuple(4, 9, 5),
                      std::make_tuple(6, 11, 6)));

TEST(LPath, AlignedMetricAlsoHandlesPreSeededL) {
  // Nuance worth pinning down: with the first leg fully pre-seeded, even
  // the paper's aligned-only metric completes this diagonal task - the
  // leg-1 blocks have no valid improving move, so they never wander and
  // the seeded leg survives. The canonical-monotone extension is what
  // *guarantees* they stay (frozen), which matters once leg-1 blocks gain
  // mobility (e.g. under richer rule sets).
  const lat::Scenario scenario = lat::make_lpath_scenario(5, 7, 4);
  SessionConfig config;
  config.path_shape = PathShape::kAlignedWithOutput;
  config.max_iterations = 2000;
  const SessionResult result =
      ReconfigurationSession::run_scenario(scenario, config);
  EXPECT_NE(result.stop_reason, sim::StopReason::kEventLimit);
  EXPECT_TRUE(result.complete || result.blocked);
}

TEST(LPath, CanonicalFreezingPinsLegOne) {
  // Under the extension the leg-1 blocks are frozen outright: no hop may
  // vacate them, whatever the rule set offers.
  const lat::Scenario scenario = lat::make_lpath_scenario(5, 7, 4);
  ReconfigurationSession session(scenario, lpath_config());
  const lat::Grid& grid = session.simulator().world().grid();
  bool leg_always_full = true;
  session.set_move_listener(
      [&](Epoch, lat::BlockId, const motion::RuleApplication&) {
        for (int32_t x = 1; x <= 5; ++x) {
          leg_always_full &= grid.occupied({x, 1});
        }
      });
  ASSERT_TRUE(session.run().complete);
  EXPECT_TRUE(leg_always_full);
}

TEST(LPath, DeterministicAcrossRuns) {
  const lat::Scenario scenario = lat::make_lpath_scenario(5, 7, 4);
  const SessionResult a =
      ReconfigurationSession::run_scenario(scenario, lpath_config());
  const SessionResult b =
      ReconfigurationSession::run_scenario(scenario, lpath_config());
  EXPECT_EQ(a.elementary_moves, b.elementary_moves);
  EXPECT_EQ(a.sim_ticks, b.sim_ticks);
}

TEST(LPath, WorksWithTrains) {
  SessionConfig config = lpath_config();
  config.rules = motion::RuleLibrary::standard_with_trains(4);
  const SessionResult result = ReconfigurationSession::run_scenario(
      lat::make_lpath_scenario(5, 9, 5), config);
  EXPECT_TRUE(result.complete);
  EXPECT_FALSE(result.premature_completion);
}

}  // namespace
}  // namespace sb::core
