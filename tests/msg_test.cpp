// Tests for the message-passing substrate: mailbox counters (Fig 8),
// neighbour table NT, and the message envelope of the core vocabulary.

#include <gtest/gtest.h>

#include "core/messages.hpp"
#include "msg/mailbox.hpp"

namespace sb {
namespace {

using lat::BlockId;
using lat::Direction;

TEST(Mailbox, CountersPerSide) {
  msg::Mailbox mailbox;
  mailbox.record_send(Direction::kEast, 24);
  mailbox.record_send(Direction::kEast, 8);
  mailbox.record_receive(Direction::kWest, 16);
  mailbox.record_drop(Direction::kNorth);

  EXPECT_EQ(mailbox.side(Direction::kEast).messages_sent, 2u);
  EXPECT_EQ(mailbox.side(Direction::kEast).bytes_sent, 32u);
  EXPECT_EQ(mailbox.side(Direction::kWest).messages_received, 1u);
  EXPECT_EQ(mailbox.side(Direction::kWest).bytes_received, 16u);
  EXPECT_EQ(mailbox.side(Direction::kNorth).messages_dropped, 1u);
  EXPECT_EQ(mailbox.side(Direction::kSouth).messages_sent, 0u);

  EXPECT_EQ(mailbox.total_sent(), 2u);
  EXPECT_EQ(mailbox.total_received(), 1u);
  EXPECT_EQ(mailbox.total_dropped(), 1u);
}

TEST(NeighborTable, TracksFourSides) {
  msg::NeighborTable nt;
  EXPECT_EQ(nt.attached_count(), 0);
  nt.set_neighbor(Direction::kNorth, BlockId{4});
  nt.set_neighbor(Direction::kWest, BlockId{9});
  EXPECT_EQ(nt.neighbor(Direction::kNorth), BlockId{4});
  EXPECT_EQ(nt.neighbor(Direction::kWest), BlockId{9});
  EXPECT_EQ(nt.neighbor(Direction::kEast), lat::kInvalidBlock);
  EXPECT_EQ(nt.attached_count(), 2);
  nt.clear(Direction::kNorth);
  EXPECT_EQ(nt.attached_count(), 1);
}

TEST(CoreMessages, KindsAreStable) {
  EXPECT_EQ(core::ActivateMsg{}.kind(), "Activate");
  EXPECT_EQ(core::AckMsg{}.kind(), "Ack");
  EXPECT_EQ(core::SelectMsg{}.kind(), "Select");
  EXPECT_EQ(core::ElectedAckMsg{}.kind(), "ElectedAck");
  EXPECT_EQ(core::MoveDoneMsg{}.kind(), "MoveDone");
  EXPECT_EQ(core::SonNotifyMsg{}.kind(), "SonNotify");
}

TEST(CoreMessages, CloneIsDeep) {
  core::ActivateMsg original;
  original.epoch = 7;
  original.father = BlockId{3};
  original.output = {1, 10};
  original.shortest_distance = 5;
  original.id_shortest = BlockId{9};
  const msg::MessagePtr copy = original.clone();
  const auto* clone = dynamic_cast<core::ActivateMsg*>(copy.get());
  ASSERT_NE(clone, nullptr);
  EXPECT_EQ(clone->epoch, 7u);
  EXPECT_EQ(clone->father, BlockId{3});
  EXPECT_EQ(clone->shortest_distance, 5);
  EXPECT_EQ(clone->id_shortest, BlockId{9});
}

TEST(CoreMessages, PayloadBytesArePlausible) {
  // The envelope sizes drive the mailbox bandwidth accounting; they must
  // at least cover the fields the paper's message formats list (§V.C).
  EXPECT_GE(core::ActivateMsg{}.payload_bytes(), 20u);
  EXPECT_GE(core::AckMsg{}.payload_bytes(), 13u);
  EXPECT_GE(core::SelectMsg{}.payload_bytes(), 8u);
  EXPECT_GE(core::MoveDoneMsg{}.payload_bytes(), 9u);
}

TEST(CoreMessages, DescribeRendersFields) {
  core::ActivateMsg m;
  m.epoch = 3;
  m.shortest_distance = 4;
  m.id_shortest = BlockId{8};
  const std::string text = m.describe();
  EXPECT_NE(text.find("e=3"), std::string::npos);
  EXPECT_NE(text.find("4"), std::string::npos);
}

}  // namespace
}  // namespace sb
