// Metamorphic tests: symmetry transforms must commute with applicability.
// If a rule applies on a grid, the rotated rule applies on the rotated
// grid at the rotated anchor - for every rule, random grid, and anchor.

#include <gtest/gtest.h>

#include "core/reconfig.hpp"
#include "lattice/scenario.hpp"
#include "motion/apply.hpp"
#include "motion/transform.hpp"
#include "util/rng.hpp"

namespace sb::motion {
namespace {

using lat::BlockId;
using lat::Grid;
using lat::Vec2;

/// Rotates a square grid 90 degrees clockwise: (x, y) -> (y, S-1-x).
Grid rotate_grid_cw(const Grid& grid) {
  SB_EXPECTS(grid.width() == grid.height());
  Grid out(grid.width(), grid.height());
  for (const auto& [id, pos] : grid.blocks()) {
    out.place(id, {pos.y, grid.width() - 1 - pos.x});
  }
  return out;
}

Vec2 rotate_point_cw(Vec2 p, int32_t size) {
  return {p.y, size - 1 - p.x};
}

TEST(Metamorphic, RotationCommutesWithApplicability) {
  Rng rng(101);
  const RuleLibrary lib = RuleLibrary::standard();
  const int32_t size = 9;
  int applicable_seen = 0;
  for (int trial = 0; trial < 150; ++trial) {
    Grid grid(size, size);
    uint32_t id = 1;
    const int blocks = static_cast<int>(rng.next_in(4, 20));
    for (int b = 0; b < blocks; ++b) {
      const Vec2 p{static_cast<int32_t>(rng.next_below(size)),
                   static_cast<int32_t>(rng.next_below(size))};
      if (!grid.occupied(p)) grid.place(BlockId{id++}, p);
    }
    const Grid rotated = rotate_grid_cw(grid);

    for (const MotionRule& rule : lib.rules()) {
      const MotionRule rotated_rule = rotate_cw(rule, "rot");
      for (int probe = 0; probe < 6; ++probe) {
        const Vec2 anchor{static_cast<int32_t>(rng.next_below(size)),
                          static_cast<int32_t>(rng.next_below(size))};
        const bool original =
            rule_applicable(rule, GridView{&grid}, anchor);
        const bool mapped = rule_applicable(
            rotated_rule, GridView{&rotated}, rotate_point_cw(anchor, size));
        EXPECT_EQ(original, mapped)
            << rule.name() << " at " << anchor << " trial " << trial;
        applicable_seen += original ? 1 : 0;
      }
    }
  }
  // The sweep must have exercised real positives, not just rejections.
  EXPECT_GT(applicable_seen, 10);
}

TEST(Metamorphic, MirrorCommutesWithApplicability) {
  Rng rng(103);
  const RuleLibrary lib = RuleLibrary::standard();
  const int32_t size = 9;
  const auto mirror_grid = [&](const Grid& grid) {
    Grid out(grid.width(), grid.height());
    for (const auto& [id, pos] : grid.blocks()) {
      out.place(id, {pos.x, grid.height() - 1 - pos.y});
    }
    return out;
  };
  int applicable_seen = 0;
  for (int trial = 0; trial < 150; ++trial) {
    Grid grid(size, size);
    uint32_t id = 1;
    const int blocks = static_cast<int>(rng.next_in(4, 20));
    for (int b = 0; b < blocks; ++b) {
      const Vec2 p{static_cast<int32_t>(rng.next_below(size)),
                   static_cast<int32_t>(rng.next_below(size))};
      if (!grid.occupied(p)) grid.place(BlockId{id++}, p);
    }
    const Grid mirrored = mirror_grid(grid);
    for (const MotionRule& rule : lib.rules()) {
      const MotionRule mirrored_rule = mirror_vertical(rule, "mir");
      for (int probe = 0; probe < 6; ++probe) {
        const Vec2 anchor{static_cast<int32_t>(rng.next_below(size)),
                          static_cast<int32_t>(rng.next_below(size))};
        const bool original =
            rule_applicable(rule, GridView{&grid}, anchor);
        const bool mapped = rule_applicable(
            mirrored_rule, GridView{&mirrored},
            Vec2{anchor.x, size - 1 - anchor.y});
        EXPECT_EQ(original, mapped)
            << rule.name() << " at " << anchor << " trial " << trial;
        applicable_seen += original ? 1 : 0;
      }
    }
  }
  EXPECT_GT(applicable_seen, 10);
}

}  // namespace
}  // namespace sb::motion

namespace sb::core {
namespace {

/// Random blob seed whose task completes only with tier-2 repositioning
/// (found by sweeping seeds; pins the ablation A1 result).
lat::Scenario tier2_dependent_blob() {
  lat::BlobParams params;
  params.surface_width = 10;
  params.surface_height = 10;
  params.input = {1, 1};
  params.output = {1, 7};
  params.block_count = 12;
  Rng rng(6);
  return lat::random_blob_scenario(params, rng);
}

TEST(Metamorphic, BlobCompletesOnlyWithRepositioning) {
  const lat::Scenario s = tier2_dependent_blob();
  SessionConfig with;
  with.sim.seed = 6;
  const SessionResult full = ReconfigurationSession::run_scenario(s, with);
  EXPECT_TRUE(full.complete);
  EXPECT_GT(full.repositioning_hops, 0u);

  SessionConfig without = with;
  without.allow_repositioning = false;
  without.max_iterations = 2000;
  const SessionResult strict =
      ReconfigurationSession::run_scenario(s, without);
  EXPECT_FALSE(strict.complete);
  EXPECT_TRUE(strict.blocked);
}

TEST(Metamorphic, WideBlobIsBeyondTheRuleSetButDiagnosed) {
  // The 4x3 development blob seeds both feeder lanes; its end-game needs
  // two spare blocks where only one exists, so no greedy execution can
  // finish it. The system must diagnose this (blocked), not hang.
  lat::Scenario s;
  s.name = "wide4x3";
  s.width = 6;
  s.height = 12;
  s.input = {1, 0};
  s.output = {1, 10};
  uint32_t id = 1;
  for (int32_t y = 0; y < 3; ++y) {
    for (int32_t x = 0; x < 4; ++x) {
      s.blocks.emplace_back(lat::BlockId{id++}, lat::Vec2{x, y});
    }
  }
  SessionConfig config;
  config.max_iterations = 2000;
  const SessionResult result = ReconfigurationSession::run_scenario(s, config);
  EXPECT_FALSE(result.complete);
  EXPECT_TRUE(result.blocked);
  EXPECT_NE(result.stop_reason, sim::StopReason::kEventLimit);
}

}  // namespace
}  // namespace sb::core
