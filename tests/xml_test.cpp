// Tests for the minimal XML DOM (parser + serializer).

#include <gtest/gtest.h>

#include "util/string_util.hpp"
#include "xml/xml.hpp"

namespace sb::xml {
namespace {

using sb::split_ws;

TEST(XmlParse, SimpleElement) {
  const Document doc = parse("<root/>");
  EXPECT_EQ(doc.root->name(), "root");
  EXPECT_TRUE(doc.root->children().empty());
  EXPECT_FALSE(doc.had_declaration);
}

TEST(XmlParse, Declaration) {
  const Document doc = parse("<?xml version=\"1.0\"?><a/>");
  EXPECT_TRUE(doc.had_declaration);
  EXPECT_EQ(doc.root->name(), "a");
}

TEST(XmlParse, Attributes) {
  const Document doc =
      parse(R"(<capability name="east1" size="3,3"/>)");
  EXPECT_EQ(doc.root->require_attribute("name"), "east1");
  EXPECT_EQ(doc.root->require_attribute("size"), "3,3");
  EXPECT_FALSE(doc.root->attribute("missing"));
}

TEST(XmlParse, SingleQuotedAttributes) {
  const Document doc = parse("<a x='1'/>");
  EXPECT_EQ(doc.root->require_attribute("x"), "1");
}

TEST(XmlParse, RequireAttributeThrows) {
  const Document doc = parse("<a/>");
  EXPECT_THROW((void)doc.root->require_attribute("x"), std::out_of_range);
}

TEST(XmlParse, NestedChildren) {
  const Document doc = parse("<a><b/><c><d/></c><b/></a>");
  EXPECT_EQ(doc.root->children().size(), 3u);
  EXPECT_EQ(doc.root->children_named("b").size(), 2u);
  ASSERT_NE(doc.root->first_child("c"), nullptr);
  EXPECT_NE(doc.root->first_child("c")->first_child("d"), nullptr);
  EXPECT_EQ(doc.root->first_child("zzz"), nullptr);
}

TEST(XmlParse, TextContent) {
  const Document doc = parse("<states>2 0 0\n2 4 3</states>");
  EXPECT_EQ(doc.root->text(), "2 0 0\n2 4 3");
}

TEST(XmlParse, EntityDecoding) {
  const Document doc =
      parse("<a t=\"&lt;&gt;&amp;&quot;&apos;\">&#65;&amp;b</a>");
  EXPECT_EQ(doc.root->require_attribute("t"), "<>&\"'");
  EXPECT_EQ(doc.root->text(), "A&b");
}

TEST(XmlParse, CommentsSkipped) {
  const Document doc =
      parse("<!-- head --><a><!-- inner --><b/><!-- tail --></a>");
  EXPECT_EQ(doc.root->children().size(), 1u);
}

TEST(XmlParse, MismatchedTagFails) {
  EXPECT_THROW(parse("<a><b></a></b>"), ParseError);
}

TEST(XmlParse, UnterminatedElementFails) {
  EXPECT_THROW(parse("<a><b/>"), ParseError);
}

TEST(XmlParse, TrailingContentFails) {
  EXPECT_THROW(parse("<a/><b/>"), ParseError);
}

TEST(XmlParse, DuplicateAttributeFails) {
  EXPECT_THROW(parse("<a x=\"1\" x=\"2\"/>"), ParseError);
}

TEST(XmlParse, UnknownEntityFails) {
  EXPECT_THROW(parse("<a>&nope;</a>"), ParseError);
}

TEST(XmlParse, ErrorCarriesLineAndColumn) {
  try {
    (void)parse("<a>\n  <b>\n</a>");
    FAIL() << "expected ParseError";
  } catch (const ParseError& error) {
    EXPECT_EQ(error.line(), 3);
    EXPECT_NE(std::string(error.what()).find("3:"), std::string::npos);
  }
}

TEST(XmlParse, PaperFig7Extract) {
  // The exact vocabulary of the paper's Fig. 7.
  const char* text = R"(<?xml version="1.0" encoding="utf-8"?>
<capabilities>
  <capability name="east1" size="3,3">
    <states>
      2 0 0
      2 4 3
      2 1 1
    </states>
    <motions>
      <motion time="0" from="1,1" to="2,1"/>
    </motions>
  </capability>
  <capability name="carryeast1" size="3,3">
    <states>
      0 0 0
      4 5 3
      2 1 2
    </states>
    <motions>
      <motion time="0" from="1,1" to="2,1"/>
      <motion time="0" from="0,1" to="1,1"/>
    </motions>
  </capability>
</capabilities>)";
  const Document doc = parse(text);
  const auto caps = doc.root->children_named("capability");
  ASSERT_EQ(caps.size(), 2u);
  EXPECT_EQ(caps[0]->require_attribute("name"), "east1");
  EXPECT_EQ(caps[1]->require_attribute("name"), "carryeast1");
  EXPECT_EQ(caps[1]->first_child("motions")->children().size(), 2u);
}

TEST(XmlSerialize, RoundTripsStructure) {
  Element root("capabilities");
  Element& cap = root.add_child("capability");
  cap.set_attribute("name", "r<1>");
  cap.add_child("states").set_text("2 0 0\n2 4 3\n2 1 1");
  const std::string text = serialize(root);
  const Document doc = parse(text);
  EXPECT_EQ(doc.root->name(), "capabilities");
  const Element* parsed = doc.root->first_child("capability");
  ASSERT_NE(parsed, nullptr);
  EXPECT_EQ(parsed->require_attribute("name"), "r<1>");
  // The serializer re-indents text blocks; compare token streams (which is
  // what the whitespace-tolerant capability format cares about).
  EXPECT_EQ(split_ws(parsed->first_child("states")->text()),
            split_ws("2 0 0\n2 4 3\n2 1 1"));
}

TEST(XmlSerialize, EscapesSpecials) {
  EXPECT_EQ(escape("<a>&\"'"), "&lt;a&gt;&amp;&quot;&apos;");
}

TEST(XmlSerialize, EmptyElementSelfCloses) {
  Element root("a");
  EXPECT_NE(serialize(root).find("<a/>"), std::string::npos);
}

TEST(XmlParse, SetAttributeReplaces) {
  Element e("a");
  e.set_attribute("k", "1");
  e.set_attribute("k", "2");
  EXPECT_EQ(e.attributes().size(), 1u);
  EXPECT_EQ(e.require_attribute("k"), "2");
}

TEST(XmlParse, ParseFileMissingThrows) {
  EXPECT_THROW(parse_file("/nonexistent/file.xml"), std::runtime_error);
}

}  // namespace
}  // namespace sb::xml
