// Property-style tests: the algorithm's invariants must hold across a
// sweep of seeds, latency models, scenario sizes and tie policies.

#include <gtest/gtest.h>

#include <tuple>

#include "core/reconfig.hpp"
#include "lattice/connectivity.hpp"
#include "lattice/region.hpp"
#include "lattice/scenario.hpp"

namespace sb::core {
namespace {

using lat::Vec2;

struct SweepPoint {
  int32_t tower_half_height;
  uint64_t seed;
  int latency_kind;  // 0 fixed, 1 uniform, 2 exponential
};

msg::LatencyModel latency_for(int kind) {
  switch (kind) {
    case 0: return msg::LatencyModel::fixed(3);
    case 1: return msg::LatencyModel::uniform(1, 12);
    default: return msg::LatencyModel::exponential(5.0);
  }
}

class ReconfigSweep
    : public ::testing::TestWithParam<std::tuple<int32_t, uint64_t, int>> {};

TEST_P(ReconfigSweep, AllInvariantsHold) {
  const auto [half_height, seed, latency_kind] = GetParam();
  const lat::Scenario scenario = lat::make_tower_scenario(half_height);
  SessionConfig config;
  config.sim.seed = seed;
  config.sim.latency = latency_for(latency_kind);
  config.max_events = 100'000'000;

  ReconfigurationSession session(scenario, config);
  const lat::Grid& grid = session.simulator().world().grid();

  // Invariant probes hooked on every hop.
  uint64_t hops_seen = 0;
  bool connectivity_ok = true;
  bool block_count_ok = true;
  session.set_move_listener(
      [&](Epoch, lat::BlockId, const motion::RuleApplication&) {
        ++hops_seen;
        connectivity_ok &= lat::is_connected(grid);
        block_count_ok &= grid.block_count() == scenario.block_count();
      });

  const SessionResult result = session.run();

  // P1: the run terminates cleanly (never by event explosion).
  EXPECT_NE(result.stop_reason, sim::StopReason::kEventLimit);
  // P2: towers always complete.
  EXPECT_TRUE(result.complete);
  // P3: completion implies a fully occupied shortest path.
  EXPECT_TRUE(result.path.has_value());
  EXPECT_FALSE(result.premature_completion);
  // P4: physics invariants held at every hop.
  EXPECT_TRUE(connectivity_ok);
  EXPECT_TRUE(block_count_ok);
  // P5: the listener saw exactly the reported hops.
  EXPECT_EQ(hops_seen, result.hops);
  // P6: iterations within the Remark-4-sized cap.
  const auto n = static_cast<uint64_t>(scenario.block_count());
  EXPECT_LE(result.iterations, 20 * n * n + 500);
  // P7: message conservation - no message is lost on a static graph
  // between elections, and Activates pair with Acks.
  EXPECT_EQ(result.messages_by_kind.at("Activate"),
            result.messages_by_kind.at("Ack"));
  // P8: every election elects at most one block per epoch.
  EXPECT_LE(result.elections_completed, result.iterations);
  // P9: elementary moves >= hops (helpers only add).
  EXPECT_GE(result.elementary_moves, result.hops);
  // P10: Lemma 1 - hops are at least the lower bound sum of distances:
  // each lane block must travel at least its Manhattan distance to its
  // final cell; crude but useful floor: path cells to fill.
  const auto to_fill = static_cast<uint64_t>(
      lat::shortest_path_cells(scenario.input, scenario.output) -
      static_cast<int32_t>(half_height));
  EXPECT_GE(result.hops, to_fill);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ReconfigSweep,
    ::testing::Combine(::testing::Values(2, 3, 5, 7),
                       ::testing::Values(1ULL, 42ULL, 1234ULL),
                       ::testing::Values(0, 1, 2)),
    [](const auto& param_info) {
      // std::get (not structured bindings): a bracketed binding list would
      // be split by the enclosing macro's comma parsing.
      return "tower" + std::to_string(std::get<0>(param_info.param)) + "_seed" +
             std::to_string(std::get<1>(param_info.param)) + "_lat" +
             std::to_string(std::get<2>(param_info.param));
    });

// ---------------------------------------------------------------------------
// Random-blob sweep: these geometries are not guaranteed by Lemma 1's
// constructive flow, so the property is weaker - terminate cleanly, and on
// completion the path must be real.
// ---------------------------------------------------------------------------

class BlobSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BlobSweep, TerminatesCleanlyAndHonestly) {
  lat::BlobParams params;
  params.surface_width = 10;
  params.surface_height = 10;
  params.input = {1, 1};
  params.output = {1, 7};
  params.block_count = 12;
  Rng rng(GetParam());
  const lat::Scenario scenario = lat::random_blob_scenario(params, rng);

  SessionConfig config;
  config.sim.seed = GetParam();
  config.max_events = 100'000'000;
  ReconfigurationSession session(scenario, config);
  const SessionResult result = session.run();

  EXPECT_NE(result.stop_reason, sim::StopReason::kEventLimit);
  EXPECT_TRUE(result.complete || result.blocked);
  if (result.complete && !result.premature_completion) {
    EXPECT_TRUE(result.path.has_value());
    EXPECT_TRUE(lat::path_complete(session.simulator().world().grid(),
                                   scenario.input, scenario.output));
  }
  // Whatever happened, physics stayed sound.
  EXPECT_TRUE(lat::is_connected(session.simulator().world().grid()));
  EXPECT_EQ(session.simulator().world().grid().block_count(),
            scenario.block_count());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BlobSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89));

// ---------------------------------------------------------------------------
// Cross-configuration determinism matrix
// ---------------------------------------------------------------------------

class DeterminismSweep
    : public ::testing::TestWithParam<std::tuple<uint64_t, int>> {};

TEST_P(DeterminismSweep, RepeatRunsAreBitIdentical) {
  const auto [seed, latency_kind] = GetParam();
  SessionConfig config;
  config.sim.seed = seed;
  config.sim.latency = latency_for(latency_kind);
  const auto run = [&] {
    return ReconfigurationSession::run_scenario(lat::make_tower_scenario(4),
                                                config);
  };
  const SessionResult a = run();
  const SessionResult b = run();
  EXPECT_EQ(a.sim_ticks, b.sim_ticks);
  EXPECT_EQ(a.events_processed, b.events_processed);
  EXPECT_EQ(a.elementary_moves, b.elementary_moves);
  EXPECT_EQ(a.messages_sent, b.messages_sent);
  EXPECT_EQ(a.distance_computations, b.distance_computations);
  EXPECT_EQ(a.iterations, b.iterations);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, DeterminismSweep,
    ::testing::Combine(::testing::Values(7ULL, 77ULL, 777ULL),
                       ::testing::Values(0, 1, 2)),
    [](const auto& param_info) {
      return "seed" + std::to_string(std::get<0>(param_info.param)) + "_lat" +
             std::to_string(std::get<1>(param_info.param));
    });

}  // namespace
}  // namespace sb::core
