// Tests for the train-rule extension (paper §IV: "an important family of
// block motions corresponds to the case where several adjacent blocks move
// simultaneously, e.g., adjacent blocks in the same row or in the same
// column").

#include <gtest/gtest.h>

#include "core/reconfig.hpp"
#include "lattice/scenario.hpp"
#include "motion/apply.hpp"
#include "motion/rule_library.hpp"

namespace sb::motion {
namespace {

using lat::BlockId;
using lat::Grid;
using lat::Vec2;

TEST(TrainRule, Train3HasExpectedMatrix) {
  const MotionRule train = RuleLibrary::make_train_rule(3);
  EXPECT_EQ(train.size(), 5);
  EXPECT_TRUE(train.semantic_issues().empty());
  // Motion row (center): tail 4, two handovers, destination 3.
  EXPECT_EQ(train.matrix().at(2, 0), EventCode::kBecomesEmpty);
  EXPECT_EQ(train.matrix().at(2, 1), EventCode::kHandover);
  EXPECT_EQ(train.matrix().at(2, 2), EventCode::kHandover);
  EXPECT_EQ(train.matrix().at(2, 3), EventCode::kBecomesOccupied);
  // North clearance over the moved span.
  for (int32_t col = 0; col <= 3; ++col) {
    EXPECT_EQ(train.matrix().at(1, col), EventCode::kRemainsEmpty);
  }
  // Support under the lead.
  EXPECT_EQ(train.matrix().at(3, 2), EventCode::kRemainsOccupied);
  EXPECT_EQ(train.moves().size(), 3u);
}

TEST(TrainRule, Train2EqualsCarry) {
  // A length-2 train is behaviourally the paper's Eq (4) carry, modulo the
  // matrix halo (the carry is 3x3; the generated 2-train is 3x3 too).
  const MotionRule train = RuleLibrary::make_train_rule(2);
  const RuleLibrary standard = RuleLibrary::standard();
  const MotionRule* carry = standard.find("carry_ES");
  ASSERT_NE(carry, nullptr);
  EXPECT_EQ(train.size(), carry->size());
  EXPECT_EQ(train.moves().size(), carry->moves().size());
  // The east-carrying matrix uses don't-care corners; the generated train
  // is stricter only where semantics force it. Compare applied behaviour:
  Grid grid(8, 8);
  grid.place(BlockId{1}, {2, 3});
  grid.place(BlockId{2}, {3, 3});
  grid.place(BlockId{3}, {3, 2});
  const GridView view{&grid};
  EXPECT_EQ(rule_applicable(train, view, {3, 3}),
            rule_applicable(*carry, view, {3, 3}));
}

TEST(TrainRule, Library8VariantsPerLength) {
  const RuleLibrary lib = RuleLibrary::standard_with_trains(4);
  // 8 x train4 + 8 x train3 + 8 slides + 8 carries.
  EXPECT_EQ(lib.size(), 32u);
  EXPECT_NE(lib.find("train3_ES"), nullptr);
  EXPECT_NE(lib.find("train4_NW"), nullptr);
  EXPECT_EQ(lib.max_rule_size(), 7);
  EXPECT_EQ(lib.sensing_radius(), 6);
}

TEST(TrainRule, AppliesOnColumnWithLateralSupport) {
  // Vertical 3-train: lane blocks (2,1),(2,2),(2,3) shift north along the
  // path column x=1; support beside the lead at (1,3), east side clear.
  Grid grid(8, 8);
  grid.place(BlockId{1}, {2, 1});
  grid.place(BlockId{2}, {2, 2});
  grid.place(BlockId{3}, {2, 3});
  for (int32_t y = 0; y <= 3; ++y) {
    grid.place(BlockId{static_cast<uint32_t>(10 + y)}, {1, y});
  }
  const RuleLibrary lib = RuleLibrary::standard_with_trains(4);
  const GridView view{&grid};
  const auto apps = enumerate_applications(lib, view, {2, 3});
  bool found_train3 = false;
  for (const auto& app : apps) {
    if (app.rule->name() == "train3_NW" && app.subject_to() == Vec2(2, 4)) {
      found_train3 = true;
      ASSERT_TRUE(physically_valid(grid, app));
      Grid copy = grid;
      apply_to_grid(copy, app);
      EXPECT_EQ(copy.at({2, 4}), BlockId{3});
      EXPECT_EQ(copy.at({2, 3}), BlockId{2});
      EXPECT_EQ(copy.at({2, 2}), BlockId{1});
      EXPECT_FALSE(copy.occupied({2, 1}));
    }
  }
  EXPECT_TRUE(found_train3);
}

TEST(TrainRule, BlockedByOppositeSideObstacle) {
  // Same setup plus an obstacle on the clearance side.
  Grid grid(8, 8);
  grid.place(BlockId{1}, {2, 1});
  grid.place(BlockId{2}, {2, 2});
  grid.place(BlockId{3}, {2, 3});
  grid.place(BlockId{4}, {3, 2});  // east-side obstacle
  for (int32_t y = 0; y <= 3; ++y) {
    grid.place(BlockId{static_cast<uint32_t>(10 + y)}, {1, y});
  }
  const RuleLibrary lib = RuleLibrary::standard_with_trains(4);
  const MotionRule* rule = lib.find("train3_NW");
  ASSERT_NE(rule, nullptr);
  const GridView view{&grid};
  // Anchor such that the lead (2,3) is the subject of move 0.
  const lat::Vec2 anchor =
      Vec2{2, 3} - world_offset(rule->size(), rule->moves()[0].from);
  EXPECT_FALSE(rule_applicable(*rule, view, anchor));
}

TEST(TrainRule, RejectsDegenerateLengths) {
  EXPECT_DEATH((void)RuleLibrary::make_train_rule(1), "at least two");
  EXPECT_DEATH((void)RuleLibrary::standard_with_trains(2), ">= 3");
}

}  // namespace
}  // namespace sb::motion

namespace sb::core {
namespace {

TEST(TrainReconfig, TowerCompletesWithFewerElections) {
  const lat::Scenario scenario = lat::make_tower_scenario(8);
  const SessionResult plain =
      ReconfigurationSession::run_scenario(scenario, {});
  SessionConfig trains;
  trains.rules = motion::RuleLibrary::standard_with_trains(4);
  const SessionResult with_trains =
      ReconfigurationSession::run_scenario(scenario, trains);
  ASSERT_TRUE(plain.complete);
  ASSERT_TRUE(with_trains.complete);
  // A k-train advances k blocks per election; climbing epochs drop.
  EXPECT_LT(with_trains.hops, plain.hops);
  EXPECT_FALSE(with_trains.premature_completion);
}

TEST(TrainReconfig, Fig10CompletesWithTrains) {
  SessionConfig config;
  config.rules = motion::RuleLibrary::standard_with_trains(4);
  const SessionResult result = ReconfigurationSession::run_scenario(
      lat::make_fig10_scenario(), config);
  EXPECT_TRUE(result.complete);
  EXPECT_FALSE(result.premature_completion);
}

TEST(TrainReconfig, DeterministicWithTrains) {
  SessionConfig config;
  config.rules = motion::RuleLibrary::standard_with_trains(3);
  const auto a = ReconfigurationSession::run_scenario(
      lat::make_tower_scenario(6), config);
  const auto b = ReconfigurationSession::run_scenario(
      lat::make_tower_scenario(6), config);
  EXPECT_EQ(a.elementary_moves, b.elementary_moves);
  EXPECT_EQ(a.sim_ticks, b.sim_ticks);
}

}  // namespace
}  // namespace sb::core
