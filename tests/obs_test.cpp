// Observability layer suite (src/obs/): histogram bucket geometry over the
// full uint64_t range, the deterministic-merge guarantee the shard engine
// relies on (a merged Registry is identical regardless of how samples were
// partitioned across workers), JSON and Prometheus serialization, and the
// trace writer's structural invariants — output parses with util/json,
// nests properly, and stays timestamp-ordered per thread; disabled, every
// emission is a no-op.

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/json.hpp"

namespace sb::obs {
namespace {

constexpr uint64_t kU64Max = std::numeric_limits<uint64_t>::max();

// ---------------------------------------------------------------------------
// Histogram bucket geometry
// ---------------------------------------------------------------------------

TEST(Histogram, BucketEdgesCoverTheWholeRange) {
  // Bucket 0 is exact zeros; bucket k holds [2^(k-1), 2^k).
  EXPECT_EQ(Histogram::bucket_of(0), 0u);
  EXPECT_EQ(Histogram::bucket_of(1), 1u);
  EXPECT_EQ(Histogram::bucket_of(2), 2u);
  EXPECT_EQ(Histogram::bucket_of(3), 2u);
  EXPECT_EQ(Histogram::bucket_of(4), 3u);
  EXPECT_EQ(Histogram::bucket_of((uint64_t{1} << 63) - 1), 63u);
  EXPECT_EQ(Histogram::bucket_of(uint64_t{1} << 63), 64u);
  EXPECT_EQ(Histogram::bucket_of(kU64Max), 64u);

  EXPECT_EQ(Histogram::bucket_limit(0), 0u);
  EXPECT_EQ(Histogram::bucket_limit(1), 1u);
  EXPECT_EQ(Histogram::bucket_limit(2), 3u);
  EXPECT_EQ(Histogram::bucket_limit(63), (uint64_t{1} << 63) - 1);
  EXPECT_EQ(Histogram::bucket_limit(64), kU64Max);

  // Every bucket's limit maps back into that bucket (edges are consistent).
  for (size_t k = 0; k < Histogram::kBuckets; ++k) {
    EXPECT_EQ(Histogram::bucket_of(Histogram::bucket_limit(k)), k)
        << "bucket " << k;
  }
}

TEST(Histogram, RecordsExtremesAndQuantiles) {
  Histogram hist;
  hist.record(0);
  hist.record(0);
  hist.record(1);
  hist.record(1000);
  hist.record(kU64Max);
  EXPECT_EQ(hist.count(), 5u);
  EXPECT_EQ(hist.bucket(0), 2u);
  EXPECT_EQ(hist.bucket(1), 1u);
  EXPECT_EQ(hist.bucket(10), 1u);  // 1000 in [512, 1024)
  EXPECT_EQ(hist.bucket(64), 1u);
  // The median sample is 1; its bucket's limit bounds it from above.
  EXPECT_EQ(hist.quantile_bound(0.5), 1u);
  EXPECT_EQ(hist.quantile_bound(1.0), kU64Max);
  EXPECT_EQ(Histogram{}.quantile_bound(0.5), 0u);
}

TEST(Histogram, JsonRoundTripIsExactAtU64Extremes) {
  Histogram hist;
  hist.record(kU64Max);
  hist.record(0);
  const Histogram back = Histogram::from_json(hist.to_json());
  EXPECT_EQ(back.count(), 2u);
  EXPECT_EQ(back.sum(), hist.sum());  // wrapped sum survives (hex, not double)
  EXPECT_EQ(back.bucket(0), 1u);
  EXPECT_EQ(back.bucket(64), 1u);
}

// ---------------------------------------------------------------------------
// Registry merge determinism
// ---------------------------------------------------------------------------

/// A fixed pseudo-random sample stream (deterministic, no std::random).
std::vector<uint64_t> sample_stream(size_t n) {
  std::vector<uint64_t> samples;
  uint64_t x = 0x9E3779B97F4A7C15ull;
  for (size_t i = 0; i < n; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    samples.push_back(x >> (i % 48));  // mix magnitudes across buckets
  }
  return samples;
}

TEST(Registry, MergeIsIndependentOfWorkerPartition) {
  const std::vector<uint64_t> samples = sample_stream(257);
  std::vector<std::string> dumps;
  for (const size_t workers : {size_t{1}, size_t{2}, size_t{4}, size_t{7}}) {
    // Strided partition, exactly like ShardEngine's shard ownership.
    std::vector<Registry> per_worker(workers);
    for (size_t i = 0; i < samples.size(); ++i) {
      Registry& registry = per_worker[i % workers];
      registry.record("phase_ns", samples[i]);
      registry.add("events", samples[i] % 5);
      registry.set_gauge("last_window", 42.0);
    }
    Registry merged;
    for (const Registry& registry : per_worker) merged.merge(registry);
    dumps.push_back(merged.to_json().dump());
  }
  for (size_t i = 1; i < dumps.size(); ++i) {
    EXPECT_EQ(dumps[0], dumps[i]) << "partition " << i << " diverged";
  }
}

TEST(Registry, JsonRoundTripAndPrometheusRendering) {
  Registry registry;
  registry.add("coord.results_merged", 3);
  registry.set_gauge("coord.queue_depth", 7.0);
  registry.record("journal.fsync_us", 100);
  registry.record("journal.fsync_us", 0);

  const Registry back = Registry::from_json(registry.to_json());
  EXPECT_EQ(back.counter("coord.results_merged"), 3u);
  EXPECT_EQ(back.gauge("coord.queue_depth"), 7.0);
  ASSERT_NE(back.histogram("journal.fsync_us"), nullptr);
  EXPECT_EQ(back.histogram("journal.fsync_us")->count(), 2u);
  EXPECT_EQ(back.to_json().dump(), registry.to_json().dump());

  const std::string text = registry.to_prometheus();
  EXPECT_NE(text.find("sb_coord_results_merged 3"), std::string::npos);
  EXPECT_NE(text.find("sb_coord_queue_depth 7"), std::string::npos);
  EXPECT_NE(text.find("sb_journal_fsync_us_count 2"), std::string::npos);
  EXPECT_NE(text.find("le=\"+Inf\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Trace writer
// ---------------------------------------------------------------------------

struct ParsedTrace {
  util::JsonValue json;
  const util::JsonValue* events = nullptr;
};

/// Serializes the live writer through its real JSON path and re-parses.
ParsedTrace parse_current_trace() {
  ParsedTrace parsed;
  parsed.json = util::parse_json(TraceWriter::instance().to_json().dump(2));
  parsed.events = parsed.json.find("traceEvents");
  return parsed;
}

TEST(Trace, SpansFromTwoThreadsParseNestAndStayMonotone) {
  TraceWriter& tracer = TraceWriter::instance();
  tracer.reset_for_tests();
  tracer.enable();

  const auto emit = [&tracer](const char* outer) {
    tracer.set_thread_name(std::string("t-") + outer);
    for (int round = 0; round < 3; ++round) {
      const TraceSpan window(outer, "test");
      const TraceSpan inner("inner", "test",
                            {{"round", static_cast<uint64_t>(round)}});
      tracer.instant("tick", "test");
    }
  };
  std::thread other([&] { emit("worker"); });
  emit("main");
  other.join();
  tracer.disable();

  const ParsedTrace parsed = parse_current_trace();
  ASSERT_NE(parsed.events, nullptr);
  // 2 threads x (1 metadata + 3 rounds x (2 B + 2 E + 1 instant)).
  ASSERT_EQ(parsed.events->size(), 32u);

  std::map<double, std::vector<std::string>> stacks;  // tid -> open spans
  std::map<double, double> last_ts;
  for (const util::JsonValue& event : parsed.events->as_array()) {
    ASSERT_NE(event.find("name"), nullptr);
    ASSERT_NE(event.find("ph"), nullptr);
    ASSERT_NE(event.find("pid"), nullptr);
    ASSERT_NE(event.find("tid"), nullptr);
    ASSERT_NE(event.find("ts"), nullptr);
    const std::string& ph = event.find("ph")->as_string();
    if (ph == "M") continue;
    const double tid = event.find("tid")->as_number();
    const double ts = event.find("ts")->as_number();
    if (last_ts.count(tid) != 0) {
      EXPECT_GE(ts, last_ts[tid]) << "per-thread order must be by timestamp";
    }
    last_ts[tid] = ts;
    const std::string& name = event.find("name")->as_string();
    if (ph == "B") {
      stacks[tid].push_back(name);
    } else if (ph == "E") {
      ASSERT_FALSE(stacks[tid].empty());
      EXPECT_EQ(stacks[tid].back(), name) << "spans must nest";
      stacks[tid].pop_back();
    } else {
      EXPECT_EQ(ph, "i");
      EXPECT_EQ(event.find("s")->as_string(), "t");
      // Instants fire inside both spans on their thread.
      EXPECT_EQ(stacks[tid].size(), 2u);
    }
  }
  EXPECT_EQ(last_ts.size(), 2u) << "both threads must appear in the trace";
  for (const auto& [tid, stack] : stacks) {
    EXPECT_TRUE(stack.empty()) << "tid " << tid << " left a span open";
  }
  tracer.reset_for_tests();
}

TEST(Trace, DisabledWriterRecordsNothing) {
  TraceWriter& tracer = TraceWriter::instance();
  tracer.reset_for_tests();
  ASSERT_FALSE(tracer.enabled());
  tracer.begin("never", "test");
  tracer.instant("never", "test");
  tracer.set_thread_name("ghost");
  { const TraceSpan span("never", "test"); }
  tracer.end("never", "test");
  EXPECT_EQ(tracer.now_us(), 0u);
  const ParsedTrace parsed = parse_current_trace();
  ASSERT_NE(parsed.events, nullptr);
  EXPECT_EQ(parsed.events->size(), 0u);
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(Trace, SpanLatchedAtConstructionNeverEmitsUnmatchedEnd) {
  TraceWriter& tracer = TraceWriter::instance();
  tracer.reset_for_tests();
  {
    const TraceSpan span("raced", "test");  // constructed while disabled
    tracer.enable();
  }  // destructor must not emit an "E" with no matching "B"
  tracer.disable();
  const ParsedTrace parsed = parse_current_trace();
  EXPECT_EQ(parsed.events->size(), 0u);
  tracer.reset_for_tests();
}

}  // namespace
}  // namespace sb::obs
