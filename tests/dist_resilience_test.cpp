// Resilience suite for the distributed sweep service: the write-ahead
// result journal, coordinator kill + `sweep --resume`, worker reconnect
// with in-flight result redelivery, the job-queue client verbs, and the
// clean-failure satellites (occupied bind port, dead coordinator host).
//
// The acceptance bar is the same byte-identity contract as dist_test.cpp:
// whatever the chaos schedule does to the fleet, the merged timing-scrubbed
// BENCH_sim.json must equal the local thread-pool backend's, and no
// completed work may re-execute after a resume beyond the single batch a
// crash can tear.
//
// Subprocess cases drive the real ./sweep and ./sweep_worker binaries
// (SMARTBLOCKS_BIN_DIR) so the chaos kill takes out a whole process, exactly
// as in the CI dist-chaos job; in-process cases script faults through
// SB_DIST_CHAOS + chaos::reset_for_tests().

#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "dist/chaos.hpp"
#include "dist/client.hpp"
#include "dist/coordinator.hpp"
#include "dist/journal.hpp"
#include "dist/socket.hpp"
#include "dist/worker.hpp"
#include "obs/metrics.hpp"
#include "runner/cli_options.hpp"
#include "runner/sweep.hpp"
#include "util/fmt.hpp"

namespace sb::dist {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

std::string temp_path(const std::string& name) {
  return (fs::temp_directory_path() /
          fmt("sb-resilience-{}-{}", ::getpid(), name))
      .string();
}

/// Removes the paths on scope exit so failed runs don't pollute /tmp.
struct TempFiles {
  std::vector<std::string> paths;
  std::string make(const std::string& name) {
    paths.push_back(temp_path(name));
    return paths.back();
  }
  ~TempFiles() {
    for (const std::string& path : paths) {
      std::error_code ignored;
      fs::remove(path, ignored);
    }
  }
};

/// Sets SB_DIST_CHAOS for the current process and re-arms the parsed state;
/// restores a clean (unset) environment on destruction.
struct ChaosGuard {
  explicit ChaosGuard(const char* spec) {
    ::setenv("SB_DIST_CHAOS", spec, 1);
    chaos::reset_for_tests();
  }
  ~ChaosGuard() {
    ::unsetenv("SB_DIST_CHAOS");
    chaos::reset_for_tests();
  }
};

/// Runs a shell command; returns its exit code (128+signal when killed).
int run_tool(const std::string& command) {
  const int status = std::system(command.c_str());
  if (status < 0) return 127;
  if (WIFEXITED(status)) return WEXITSTATUS(status);
  if (WIFSIGNALED(status)) return 128 + WTERMSIG(status);
  return 127;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

runner::RunRow sample_row(uint64_t salt) {
  runner::RunRow row;
  row.scenario = "tower16";
  row.ruleset = "uniform";
  row.seed = 0xdeadbeefcafef00dULL ^ salt;
  row.complete = true;
  row.events = (1ULL << 53) + salt;  // beyond double's exact integer range
  row.events_per_sec = 123456.789012345678;
  row.wall_seconds = 0.0123456789012345678;
  row.hops = salt;
  row.sim_ticks = 0xffffffffffffff01ULL;
  return row;
}

std::vector<runner::RunRow> rows_for(size_t begin, size_t count) {
  std::vector<runner::RunRow> rows;
  for (size_t i = 0; i < count; ++i) rows.push_back(sample_row(begin + i));
  return rows;
}

runner::SweepCliOptions small_grid(size_t seeds = 6) {
  runner::SweepCliOptions options;
  options.scenarios = {"tower16"};
  options.seed_count = seeds;
  options.latency = "uniform";  // every seed takes a different path
  return options;
}

std::string report_text(const runner::SweepCliOptions& options,
                        const std::vector<runner::RunRow>& rows) {
  runner::SweepRunner::Options ropts;
  ropts.threads = 2;
  ropts.master_seed = options.master_seed;
  runner::BenchReport report = runner::assemble_report(ropts, rows);
  report.scrub_timing();
  return report.to_json_text();
}

std::string local_report_text(const runner::SweepCliOptions& options) {
  runner::SweepRunner::Options ropts;
  ropts.threads = 2;
  ropts.master_seed = options.master_seed;
  runner::BenchReport report =
      runner::SweepRunner(ropts)
          .run(runner::expand(runner::make_sweep_grid(options)))
          .report;
  report.scrub_timing();
  return report.to_json_text();
}

// ---------------------------------------------------------------------------
// Journal (dist/journal)
// ---------------------------------------------------------------------------

TEST(Journal, RecordsRoundTrip) {
  TempFiles tmp;
  const std::string path = tmp.make("roundtrip.journal");
  {
    JournalWriter writer =
        JournalWriter::create(path, {"0.0.0.0", 4242});
    JournalJob job;
    job.job = 3;
    job.options = small_grid(6);
    job.spec_count = 6;
    job.unit_size = 2;
    job.min_cores = 4;
    writer.record_job(job);
    writer.record_batch(3, {1, 2, 4}, rows_for(2, 2));
    writer.record_cancel(3);
  }
  const JournalContents contents = read_journal(path);
  EXPECT_EQ(contents.header.bind_address, "0.0.0.0");
  EXPECT_EQ(contents.header.port, 4242);
  ASSERT_EQ(contents.jobs.size(), 1u);
  EXPECT_EQ(contents.jobs[0].job, 3u);
  EXPECT_EQ(contents.jobs[0].options.scenarios,
            std::vector<std::string>{"tower16"});
  EXPECT_EQ(contents.jobs[0].options.latency, "uniform");
  EXPECT_EQ(contents.jobs[0].spec_count, 6u);
  EXPECT_EQ(contents.jobs[0].unit_size, 2u);
  EXPECT_EQ(contents.jobs[0].min_cores, 4u);
  ASSERT_EQ(contents.batches.size(), 1u);
  EXPECT_EQ(contents.batches[0].job, 3u);
  EXPECT_EQ(contents.batches[0].unit, (WorkUnit{1, 2, 4}));
  ASSERT_EQ(contents.batches[0].rows.size(), 2u);
  // Bit-exact round trips — the byte-identity of resumed reports rests on
  // these (runner/serialize is exercised in depth by dist_test.cpp).
  EXPECT_EQ(contents.batches[0].rows[0].seed, sample_row(2).seed);
  EXPECT_EQ(contents.batches[0].rows[0].events_per_sec,
            sample_row(2).events_per_sec);
  EXPECT_EQ(contents.batches[0].rows[1].sim_ticks, sample_row(3).sim_ticks);
  EXPECT_EQ(contents.cancelled_jobs, std::vector<uint64_t>{3});
}

TEST(Journal, TornFinalLineIsDropped) {
  TempFiles tmp;
  const std::string path = tmp.make("torn.journal");
  {
    JournalWriter writer = JournalWriter::create(path, {});
    JournalJob job;
    job.job = 0;
    job.options = small_grid(4);
    job.spec_count = 4;
    writer.record_job(job);
    writer.record_batch(0, {0, 0, 2}, rows_for(0, 2));
    writer.record_batch(0, {1, 2, 4}, rows_for(2, 2));
  }
  // A crash mid-write tears at most the final line: truncate the file to
  // cut the last record in half.
  const uintmax_t full = fs::file_size(path);
  fs::resize_file(path, full - 40);
  const JournalContents torn = read_journal(path);
  ASSERT_EQ(torn.batches.size(), 1u);
  EXPECT_EQ(torn.batches[0].unit, (WorkUnit{0, 0, 2}));

  // An unterminated-but-parseable tail is equally untrusted: without the
  // '\n' commit marker the write may not have been the whole record.
  {
    std::ofstream out(path, std::ios::app);
    out << R"({"record": "cancel", "job": 0})";  // no newline
  }
  EXPECT_TRUE(read_journal(path).cancelled_jobs.empty());
}

TEST(Journal, MidFileCorruptionThrows) {
  TempFiles tmp;
  const std::string path = tmp.make("corrupt.journal");
  {
    JournalWriter writer = JournalWriter::create(path, {});
    JournalJob job;
    job.job = 0;
    job.options = small_grid(4);
    job.spec_count = 4;
    writer.record_job(job);
  }
  std::string text = read_file(path);
  {
    std::ofstream out(path, std::ios::trunc);
    const size_t newline = text.find('\n');
    // Garbage between the header and the job record: not a torn tail, so
    // the reader must refuse the file instead of resuming from half a
    // story.
    out << text.substr(0, newline + 1) << "!garbage!\n"
        << text.substr(newline + 1);
  }
  EXPECT_THROW(read_journal(path), std::runtime_error);
}

TEST(Journal, MissingFileOrHeaderThrows) {
  TempFiles tmp;
  EXPECT_THROW(read_journal(temp_path("nonexistent.journal")),
               std::runtime_error);
  const std::string path = tmp.make("headerless.journal");
  {
    std::ofstream out(path);
    out << R"({"record": "cancel", "job": 0})" << "\n";
  }
  EXPECT_THROW(read_journal(path), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Coordinator kill + resume (subprocess, via the real binaries)
// ---------------------------------------------------------------------------

TEST(Resilience, CoordinatorKilledMidSweepResumesByteIdentical) {
  TempFiles tmp;
  const std::string journal = tmp.make("kill.journal");
  const std::string dist_json = tmp.make("kill-dist.json");
  const std::string local_json = tmp.make("kill-local.json");
  const std::string grid_flags =
      "--scenario tower16 --seeds 8 --latency uniform";

  // Phase 1: the chaos schedule SIGKILLs the coordinator the instant its
  // 2nd result batch is journaled — workers are mid-flight, acknowledgment
  // unsent. The spawned fleet gets a reconnect window wide enough to
  // survive until phase 2 rebinds the journaled port.
  const int killed = run_tool(fmt(
      "SB_DIST_CHAOS='coord.merge@2:kill' {}/sweep {} --backend dist "
      "--workers 2 --worker-reconnect-ms 15000 --journal {} --json {} "
      "--scrub-timing >/dev/null 2>&1",
      SMARTBLOCKS_BIN_DIR, grid_flags, journal, dist_json));
  EXPECT_EQ(killed, 137);
  EXPECT_EQ(read_journal(journal).batches.size(), 2u)
      << "exactly the acknowledged work survives the crash";

  // Phase 2: resume. The journaled grid and port are authoritative — no
  // grid flags here. The orphaned phase-1 workers reconnect alongside the
  // fresh fleet and their redelivered duplicates must be dropped.
  const int resumed = run_tool(
      fmt("{}/sweep --resume {} --workers 2 --json {} --scrub-timing "
          ">/dev/null 2>&1",
          SMARTBLOCKS_BIN_DIR, journal, dist_json));
  ASSERT_EQ(resumed, 0);

  const int local = run_tool(
      fmt("{}/sweep {} --json {} --scrub-timing >/dev/null 2>&1",
          SMARTBLOCKS_BIN_DIR, grid_flags, local_json));
  ASSERT_EQ(local, 0);
  EXPECT_EQ(read_file(dist_json), read_file(local_json))
      << "a killed-and-resumed sweep must be indistinguishable from an "
         "uninterrupted one";
}

// ---------------------------------------------------------------------------
// Worker reconnect + redelivery (in-process, scripted chaos)
// ---------------------------------------------------------------------------

TEST(Resilience, WorkerRedeliversInFlightResultAfterPartialFrame) {
  // The sole worker tears its connection mid-frame while sending its 2nd
  // result (the coordinator reads a truncated frame and abandons the
  // connection), reconnects, and redelivers the kept result. Nothing
  // re-executes: the merged report still byte-matches local.
  ChaosGuard guard("worker.result@2:partial");
  const runner::SweepCliOptions grid = small_grid(6);
  Coordinator::Options copts;
  copts.total_timeout_ms = 60000;
  Coordinator coordinator(grid, copts);

  Worker::Options wopts;
  wopts.port = coordinator.port();
  wopts.heartbeat_ms = 50;
  wopts.reconnect_window_ms = 20000;
  wopts.reconnect_base_ms = 20;
  int code = -1;
  std::thread worker([&] { code = Worker(wopts).run(); });
  const std::vector<runner::RunRow> rows = coordinator.run();
  worker.join();
  EXPECT_EQ(code, Worker::kExitOk);
  EXPECT_EQ(report_text(grid, rows), local_report_text(grid));
}

TEST(Resilience, WorkerWithoutReconnectWindowFailsLoudly) {
  // reconnect_window_ms = 0 keeps the old contract: a vanished coordinator
  // is a hard error, not an infinite retry loop.
  Worker::Options wopts;
  wopts.host = "127.0.0.1";
  wopts.port = 1;  // nothing listens on the reserved tcpmux port
  wopts.connect_timeout_ms = 200;
  EXPECT_THROW((void)Worker(wopts).run(), std::runtime_error);
}

TEST(Resilience, ReconnectGivesUpAfterTheWindow) {
  Worker::Options wopts;
  wopts.host = "127.0.0.1";
  wopts.port = 1;
  wopts.connect_timeout_ms = 100;
  wopts.reconnect_window_ms = 300;
  wopts.reconnect_base_ms = 20;
  const auto start = std::chrono::steady_clock::now();
  EXPECT_THROW((void)Worker(wopts).run(), std::runtime_error);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  EXPECT_LT(elapsed.count(), 10000) << "the window must bound the retries";
}

// ---------------------------------------------------------------------------
// Job-queue service (submit / status / fetch / cancel, heterogeneous
// dispatch)
// ---------------------------------------------------------------------------

/// A service-mode coordinator plus its run() thread; shutdown on scope
/// exit keeps gtest failures from deadlocking the suite.
struct Service {
  Coordinator coordinator;
  std::thread runner;
  explicit Service(Coordinator::Options copts = make_options())
      : coordinator(copts),
        runner([this] { (void)coordinator.run(); }) {}
  static Coordinator::Options make_options() {
    Coordinator::Options copts;
    copts.serve = true;
    return copts;
  }
  ~Service() {
    coordinator.shutdown();
    runner.join();
  }
};

TEST(JobQueue, SubmitStatusFetchRoundTrip) {
  Service service;
  Worker::Options wopts;
  wopts.port = service.coordinator.port();
  wopts.heartbeat_ms = 50;
  int code = -1;
  std::thread worker([&] { code = Worker(wopts).run(); });

  const runner::SweepCliOptions grid = small_grid(6);
  Client client({.host = "127.0.0.1", .port = service.coordinator.port()});
  const uint64_t job = client.submit(grid, /*unit_size=*/2);
  EXPECT_GE(job, 1u);
  EXPECT_EQ(client.describe(job).scenarios, grid.scenarios);

  // fetch blocks until done, streaming batches as units merge.
  const std::vector<runner::RunRow> rows = client.fetch(job);
  EXPECT_EQ(report_text(grid, rows), local_report_text(grid));

  const Client::JobStatus status = client.status(job);
  EXPECT_EQ(status.state, JobState::kDone);
  EXPECT_EQ(status.merged, 6u);
  EXPECT_EQ(status.total, 6u);

  service.coordinator.shutdown();  // releases the worker with a stop
  worker.join();
  EXPECT_EQ(code, Worker::kExitOk);
}

TEST(JobQueue, TwoClientsInterleaveAndCancelWorks) {
  Service service;
  Worker::Options wopts;
  wopts.port = service.coordinator.port();
  wopts.heartbeat_ms = 50;
  int code = -1;
  std::thread worker([&] { code = Worker(wopts).run(); });

  Client submitter({.host = "127.0.0.1",
                    .port = service.coordinator.port()});
  Client other({.host = "127.0.0.1", .port = service.coordinator.port()});
  const uint64_t keep = submitter.submit(small_grid(4));
  const uint64_t doomed = other.submit(small_grid(40));
  EXPECT_NE(keep, doomed);

  EXPECT_EQ(other.cancel(doomed).state, JobState::kCancelled);
  EXPECT_EQ(other.cancel(doomed).state, JobState::kCancelled);  // idempotent
  EXPECT_THROW((void)other.fetch(doomed), std::runtime_error);

  // The surviving job, fetched by the *other* client (describe() carries
  // the grid across), still completes and matches local.
  const runner::SweepCliOptions grid = other.describe(keep);
  EXPECT_EQ(report_text(grid, other.fetch(keep)), local_report_text(grid));

  service.coordinator.shutdown();
  worker.join();
  EXPECT_EQ(code, Worker::kExitOk);
}

TEST(JobQueue, MinCoresGatesDispatchToBigWorkers) {
  Service service;
  // A 2-core worker sits idle against a min_cores=8 job...
  Worker::Options small;
  small.port = service.coordinator.port();
  small.heartbeat_ms = 50;
  small.cores = 2;
  int small_code = -1;
  std::thread small_worker([&] { small_code = Worker(small).run(); });

  Client client({.host = "127.0.0.1", .port = service.coordinator.port()});
  const runner::SweepCliOptions grid = small_grid(4);
  const uint64_t job = client.submit(grid, /*unit_size=*/1, /*min_cores=*/8);
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  const Client::JobStatus starved = client.status(job);
  EXPECT_EQ(starved.state, JobState::kRunning);
  EXPECT_EQ(starved.merged, 0u)
      << "a 2-core worker must never receive min_cores=8 units";

  // ...until an 8-core worker joins the fleet.
  Worker::Options big = small;
  big.cores = 8;
  int big_code = -1;
  std::thread big_worker([&] { big_code = Worker(big).run(); });
  EXPECT_EQ(report_text(grid, client.fetch(job)), local_report_text(grid));

  service.coordinator.shutdown();
  small_worker.join();
  big_worker.join();
  EXPECT_EQ(small_code, Worker::kExitOk);
  EXPECT_EQ(big_code, Worker::kExitOk);
}

TEST(JobQueue, MetricsVerbReportsQueueAndWorkerVitals) {
  obs::service().reset_for_tests();
  Service service;
  Worker::Options wopts;
  wopts.port = service.coordinator.port();
  wopts.heartbeat_ms = 50;
  wopts.cores = 4;
  wopts.memory_mb = 2048;
  int code = -1;
  std::thread worker([&] { code = Worker(wopts).run(); });

  Client client({.host = "127.0.0.1", .port = service.coordinator.port()});
  const runner::SweepCliOptions grid = small_grid(4);
  const uint64_t job = client.submit(grid);
  (void)client.fetch(job);  // drains the queue; every unit dispatched

  const util::JsonValue reply = client.metrics();
  const util::JsonValue* gauges = reply.find_path({"metrics", "gauges"});
  ASSERT_NE(gauges, nullptr);
  ASSERT_NE(gauges->find("coord.queue_depth"), nullptr);
  EXPECT_EQ(gauges->find("coord.queue_depth")->as_number(), 0.0);
  ASSERT_NE(gauges->find("coord.in_flight"), nullptr);
  EXPECT_EQ(gauges->find("coord.in_flight")->as_number(), 0.0);
  ASSERT_NE(gauges->find("coord.workers_connected"), nullptr);
  EXPECT_EQ(gauges->find("coord.workers_connected")->as_number(), 1.0);

  const util::JsonValue* counters = reply.find_path({"metrics", "counters"});
  ASSERT_NE(counters, nullptr);
  const util::JsonValue* dispatched =
      counters->find("coord.units_dispatched");
  ASSERT_NE(dispatched, nullptr);
  EXPECT_EQ(util::parse_u64(dispatched->as_string()), 4u);

  // The hello's capability announcement must surface in the listing, and
  // the 50 ms heartbeats must have landed in the gap histogram.
  const util::JsonValue* workers = reply.find("workers");
  ASSERT_NE(workers, nullptr);
  ASSERT_EQ(workers->size(), 1u);
  const util::JsonValue& vitals = workers->as_array()[0];
  EXPECT_EQ(vitals.find("cores")->as_number(), 4.0);
  EXPECT_EQ(vitals.find("memory_mb")->as_number(), 2048.0);
  EXPECT_TRUE(vitals.find("connected")->as_bool());
  EXPECT_EQ(vitals.find("units_dispatched")->as_number(), 4.0);
  EXPECT_EQ(vitals.find("results_merged")->as_number(), 4.0);
  ASSERT_NE(vitals.find("heartbeat_gap_ms"), nullptr);
  ASSERT_NE(vitals.find("heartbeat_gap_p95_ms"), nullptr);

  // The snapshot must rebuild into a Registry (the --metrics-out path) and
  // render Prometheus text naming the queue gauge.
  const obs::Registry registry =
      obs::Registry::from_json(*reply.find("metrics"));
  EXPECT_NE(registry.to_prometheus().find("sb_coord_queue_depth"),
            std::string::npos);

  service.coordinator.shutdown();
  worker.join();
  EXPECT_EQ(code, Worker::kExitOk);
}

// ---------------------------------------------------------------------------
// Clean-failure satellites
// ---------------------------------------------------------------------------

TEST(Satellites, OccupiedBindPortFailsWithOneClearError) {
  TempFiles tmp;
  const Listener squatter("127.0.0.1", 0);

  // In-process: constructing a coordinator on the occupied port throws.
  Coordinator::Options copts;
  copts.port = squatter.port();
  EXPECT_THROW(Coordinator(small_grid(2), copts), std::runtime_error);

  // Tool-level: one clear line on stderr, exit 1 — not an abort.
  const std::string log = tmp.make("bind.log");
  const int code = run_tool(
      fmt("{}/sweep --scenario tower16 --seeds 2 --backend dist --workers 0 "
          "--port {} >{} 2>&1",
          SMARTBLOCKS_BIN_DIR, squatter.port(), log));
  EXPECT_EQ(code, 1);
  const std::string text = read_file(log);
  EXPECT_NE(text.find("cannot bind"), std::string::npos) << text;
}

TEST(Satellites, WorkerAgainstDeadHostFailsLoudly) {
  TempFiles tmp;
  const std::string log = tmp.make("dead.log");
  const int code = run_tool(
      fmt("{}/sweep_worker --connect 127.0.0.1:1 --connect-timeout-ms 200 "
          ">{} 2>&1",
          SMARTBLOCKS_BIN_DIR, log));
  EXPECT_EQ(code, 1);
  const std::string text = read_file(log);
  EXPECT_NE(text.find("cannot connect"), std::string::npos) << text;
}

TEST(Satellites, MalformedChaosSpecFailsLoudly) {
  ChaosGuard guard("coord.merge@oops:kill");
  EXPECT_THROW((void)chaos::hit(chaos::kCoordMerge), std::runtime_error);
}

}  // namespace
}  // namespace sb::dist
