// Tests for the minimal JSON layer (util/json): writer output, parser,
// round-trips, escaping, and the u64 hex helpers.

#include <gtest/gtest.h>

#include <stdexcept>

#include "util/json.hpp"

namespace sb::util {
namespace {

TEST(JsonWriter, ScalarsAndContainers) {
  JsonValue root = JsonValue::object();
  root["name"] = JsonValue("tower16");
  root["complete"] = JsonValue(true);
  root["count"] = JsonValue(42);
  root["rate"] = JsonValue(1.5);
  root["nothing"] = JsonValue();
  JsonValue list = JsonValue::array();
  list.push_back(JsonValue(1));
  list.push_back(JsonValue(2));
  root["list"] = std::move(list);
  EXPECT_EQ(root.dump(),
            "{\"name\": \"tower16\", \"complete\": true, \"count\": 42, "
            "\"rate\": 1.5, \"nothing\": null, \"list\": [1, 2]}");
}

TEST(JsonWriter, IntegralNumbersPrintWithoutDecimalPoint) {
  EXPECT_EQ(JsonValue(uint64_t{1000000}).dump(), "1000000");
  EXPECT_EQ(JsonValue(-3).dump(), "-3");
  EXPECT_EQ(JsonValue(0.25).dump(), "0.25");
}

TEST(JsonWriter, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(JsonValue("a\"b\\c\nd").dump(), "\"a\\\"b\\\\c\\nd\"");
  EXPECT_EQ(JsonValue(std::string(1, '\x01')).dump(), "\"\\u0001\"");
}

TEST(JsonParser, ParsesWhatTheWriterEmits) {
  JsonValue root = JsonValue::object();
  root["schema"] = JsonValue("sb-bench-sim/v1");
  root["threads"] = JsonValue(8);
  root["ratio"] = JsonValue(0.93);
  JsonValue runs = JsonValue::array();
  JsonValue run = JsonValue::object();
  run["ok"] = JsonValue(false);
  run["note"] = JsonValue("line1\nline2");
  runs.push_back(std::move(run));
  root["runs"] = std::move(runs);

  for (const int indent : {0, 2, 4}) {
    const JsonValue parsed = parse_json(root.dump(indent));
    EXPECT_EQ(parsed.find("schema")->as_string(), "sb-bench-sim/v1");
    EXPECT_EQ(parsed.find("threads")->as_number(), 8.0);
    EXPECT_DOUBLE_EQ(parsed.find("ratio")->as_number(), 0.93);
    const JsonValue& inner = parsed.find("runs")->as_array()[0];
    EXPECT_FALSE(inner.find("ok")->as_bool());
    EXPECT_EQ(inner.find("note")->as_string(), "line1\nline2");
  }
}

TEST(JsonParser, AcceptsStandardJsonForms) {
  const JsonValue v = parse_json(
      "  { \"a\" : [ 1 , -2.5e2 , true , false , null , \"\\u0041\" ] } ");
  const auto& list = v.find("a")->as_array();
  ASSERT_EQ(list.size(), 6u);
  EXPECT_EQ(list[0].as_number(), 1.0);
  EXPECT_EQ(list[1].as_number(), -250.0);
  EXPECT_TRUE(list[2].as_bool());
  EXPECT_TRUE(list[4].is_null());
  EXPECT_EQ(list[5].as_string(), "A");
}

TEST(JsonParser, RejectsMalformedInput) {
  EXPECT_THROW(parse_json(""), std::runtime_error);
  EXPECT_THROW(parse_json("{"), std::runtime_error);
  EXPECT_THROW(parse_json("{\"a\": 1,}"), std::runtime_error);
  EXPECT_THROW(parse_json("[1 2]"), std::runtime_error);
  EXPECT_THROW(parse_json("\"unterminated"), std::runtime_error);
  EXPECT_THROW(parse_json("{} extra"), std::runtime_error);
  EXPECT_THROW(parse_json("nul"), std::runtime_error);
}

TEST(JsonValue, FindPathWalksNestedObjects) {
  const JsonValue v = parse_json(
      "{\"summary\": {\"events_per_sec\": {\"mean\": 650000}}}");
  ASSERT_NE(v.find_path({"summary", "events_per_sec", "mean"}), nullptr);
  EXPECT_EQ(v.find_path({"summary", "events_per_sec", "mean"})->as_number(),
            650000.0);
  EXPECT_EQ(v.find_path({"summary", "missing"}), nullptr);
}

TEST(JsonU64, HexHelpersRoundTripFullRange) {
  for (const uint64_t value :
       {uint64_t{0}, uint64_t{42}, uint64_t{0x5eed},
        uint64_t{0xffffffffffffffffULL}, uint64_t{0x8000000000000001ULL}}) {
    EXPECT_EQ(parse_u64(hex_u64(value)), value);
  }
  EXPECT_EQ(parse_u64("12345"), 12345u);  // plain decimal accepted
}

}  // namespace
}  // namespace sb::util
