// Tests for the distributed sweep backend (src/dist + the runner merge and
// wire-serialization layers it is built on): protocol round trips,
// at-most-once result merging, and end-to-end coordinator/worker fleets —
// including a worker killed mid-sweep and a per-unit timeout with a late
// duplicate result. The acceptance bar throughout is byte-identity: the
// merged report must equal the local thread-pool backend's report for the
// same grid, whatever the fleet does.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "check/oracle.hpp"
#include "dist/coordinator.hpp"
#include "dist/protocol.hpp"
#include "dist/socket.hpp"
#include "dist/worker.hpp"
#include "runner/cli_options.hpp"
#include "runner/merge.hpp"
#include "runner/serialize.hpp"
#include "runner/sweep.hpp"

namespace sb::dist {
namespace {

// ---------------------------------------------------------------------------
// Wire serialization (runner/serialize)
// ---------------------------------------------------------------------------

runner::RunRow sample_row(uint64_t salt) {
  runner::RunRow row;
  row.scenario = "tower16";
  row.ruleset = "uniform";
  row.seed = 0xdeadbeefcafef00dULL ^ salt;  // full 64-bit value
  row.complete = true;
  row.events = (1ULL << 53) + 12345 + salt;  // beyond double's exact range
  row.events_per_sec = 123456.789012345678;
  row.wall_seconds = 0.0123456789012345678;
  row.hops = 62;
  row.elementary_moves = 69;
  row.messages_sent = 4242;
  row.iterations = 17;
  row.sim_ticks = 0xffffffffffffff01ULL;
  row.block_count = 16;
  row.shards = 4;
  row.conn_fast_hits = 999;
  row.conn_slow_floods = 7;
  row.stop_reason = sim::StopReason::kEventLimit;
  return row;
}

void expect_rows_equal(const runner::RunRow& a, const runner::RunRow& b) {
  EXPECT_EQ(a.scenario, b.scenario);
  EXPECT_EQ(a.ruleset, b.ruleset);
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.complete, b.complete);
  EXPECT_EQ(a.events, b.events);
  // Bit-exact double round trips (util/json writes %.17g).
  EXPECT_EQ(a.events_per_sec, b.events_per_sec);
  EXPECT_EQ(a.wall_seconds, b.wall_seconds);
  EXPECT_EQ(a.hops, b.hops);
  EXPECT_EQ(a.elementary_moves, b.elementary_moves);
  EXPECT_EQ(a.messages_sent, b.messages_sent);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.sim_ticks, b.sim_ticks);
  EXPECT_EQ(a.block_count, b.block_count);
  EXPECT_EQ(a.shards, b.shards);
  EXPECT_EQ(a.conn_fast_hits, b.conn_fast_hits);
  EXPECT_EQ(a.conn_slow_floods, b.conn_slow_floods);
  EXPECT_EQ(a.stop_reason, b.stop_reason);
}

TEST(WireSerialization, RunRowRoundTripsExactly) {
  const runner::RunRow row = sample_row(1);
  // Through JSON text, as on the wire — not just the JsonValue tree.
  const runner::RunRow back = runner::row_from_json(
      util::parse_json(runner::row_to_json(row).dump()));
  expect_rows_equal(row, back);
}

TEST(WireSerialization, OptionsRoundTripExactly) {
  runner::SweepCliOptions options;
  options.scenarios = {"tower16", "blob100", "data/scenarios/fig10.surf"};
  options.seed_count = 12;
  options.master_seed = 0xfeedfacefeedfaceULL;
  options.latency = "exponential";
  options.max_events = (1ULL << 60) + 3;
  options.shards = 8;
  options.shard_threads = 2;
  options.threads = 5;
  const runner::SweepCliOptions back = runner::options_from_json(
      util::parse_json(runner::options_to_json(options).dump()));
  EXPECT_EQ(back.scenarios, options.scenarios);
  EXPECT_EQ(back.seed_count, options.seed_count);
  EXPECT_EQ(back.master_seed, options.master_seed);
  EXPECT_EQ(back.latency, options.latency);
  EXPECT_EQ(back.max_events, options.max_events);
  EXPECT_EQ(back.shards, options.shards);
  EXPECT_EQ(back.shard_threads, options.shard_threads);
  EXPECT_EQ(back.threads, options.threads);
}

TEST(WireSerialization, MissingFieldsThrow) {
  EXPECT_THROW(runner::row_from_json(util::parse_json("{}")),
               std::runtime_error);
  EXPECT_THROW(runner::options_from_json(util::parse_json("{}")),
               std::runtime_error);
  // Mistyped field: seed as a number instead of a hex string.
  util::JsonValue bad = runner::row_to_json(sample_row(2));
  bad["seed"] = util::JsonValue(5);
  EXPECT_THROW(runner::row_from_json(bad), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Protocol messages (dist/protocol)
// ---------------------------------------------------------------------------

TEST(Protocol, MessagesRoundTrip) {
  const Message hello =
      decode(encode(Message::hello(1234, Role::kWorker, 16, 64000)));
  EXPECT_EQ(hello.type, MsgType::kHello);
  EXPECT_EQ(hello.worker_pid, 1234u);
  EXPECT_EQ(hello.version, kProtocolVersion);
  EXPECT_EQ(hello.role, Role::kWorker);
  EXPECT_EQ(hello.cores, 16u);
  EXPECT_EQ(hello.memory_mb, 64000u);

  runner::SweepCliOptions options;
  options.scenarios = {"tower16"};
  options.seed_count = 3;
  const Message job = decode(encode(Message::job_description(5, options, 3)));
  EXPECT_EQ(job.type, MsgType::kJob);
  EXPECT_EQ(job.job, 5u);
  EXPECT_EQ(job.spec_count, 3u);
  EXPECT_EQ(job.options.scenarios, options.scenarios);

  const Message unit = decode(encode(Message::make_unit(5, {7, 14, 16})));
  EXPECT_EQ(unit.type, MsgType::kUnit);
  EXPECT_EQ(unit.job, 5u);
  EXPECT_EQ(unit.unit, (WorkUnit{7, 14, 16}));

  const Message result = decode(encode(
      Message::result(5, {7, 14, 16}, {sample_row(3), sample_row(4)})));
  EXPECT_EQ(result.type, MsgType::kResult);
  EXPECT_EQ(result.job, 5u);
  EXPECT_EQ(result.unit, (WorkUnit{7, 14, 16}));
  ASSERT_EQ(result.rows.size(), 2u);
  expect_rows_equal(result.rows[0], sample_row(3));
  expect_rows_equal(result.rows[1], sample_row(4));

  EXPECT_EQ(decode(encode(Message::welcome())).type, MsgType::kWelcome);
  EXPECT_EQ(decode(encode(Message::pull())).type, MsgType::kPull);
  EXPECT_EQ(decode(encode(Message::heartbeat())).type, MsgType::kHeartbeat);
  EXPECT_EQ(decode(encode(Message::stop())).type, MsgType::kStop);
}

TEST(Protocol, ClientVerbsRoundTrip) {
  const Message client =
      decode(encode(Message::hello(42, Role::kClient, 1, 0)));
  EXPECT_EQ(client.role, Role::kClient);

  runner::SweepCliOptions grid;
  grid.scenarios = {"blob100"};
  const Message submit = decode(encode(Message::submit(grid, 4, 8)));
  EXPECT_EQ(submit.type, MsgType::kSubmit);
  EXPECT_EQ(submit.options.scenarios, grid.scenarios);
  EXPECT_EQ(submit.unit_size, 4u);
  EXPECT_EQ(submit.min_cores, 8u);

  const Message submitted = decode(encode(Message::submitted(3, 12)));
  EXPECT_EQ(submitted.type, MsgType::kSubmitted);
  EXPECT_EQ(submitted.job, 3u);
  EXPECT_EQ(submitted.spec_count, 12u);

  EXPECT_EQ(decode(encode(Message::status(3))).job, 3u);
  EXPECT_EQ(decode(encode(Message::job_request(3))).job, 3u);
  EXPECT_EQ(decode(encode(Message::fetch(3))).type, MsgType::kFetch);
  EXPECT_EQ(decode(encode(Message::cancel(3))).type, MsgType::kCancel);

  const Message status =
      decode(encode(Message::job_status(3, JobState::kCancelled, 7, 12)));
  EXPECT_EQ(status.type, MsgType::kJobStatus);
  EXPECT_EQ(status.state, JobState::kCancelled);
  EXPECT_EQ(status.merged, 7u);
  EXPECT_EQ(status.total, 12u);

  const Message done = decode(encode(Message::job_done(3, JobState::kDone)));
  EXPECT_EQ(done.type, MsgType::kJobDone);
  EXPECT_EQ(done.state, JobState::kDone);
}

TEST(Protocol, RejectsGarbageAndVersionSkew) {
  EXPECT_THROW(decode("not json"), std::runtime_error);
  EXPECT_THROW(decode("{\"type\":\"warp\"}"), std::runtime_error);
  EXPECT_THROW(decode("{\"type\":\"hello\",\"version\":999,\"pid\":1}"),
               std::runtime_error);
  EXPECT_THROW(decode("{\"type\":\"unit\",\"job\":0,\"unit\":{\"id\":0,"
                      "\"begin\":5,\"end\":2}}"),
               std::runtime_error);
}

// ---------------------------------------------------------------------------
// At-most-once merge (runner/merge)
// ---------------------------------------------------------------------------

std::vector<runner::RunRow> rows_for(size_t begin, size_t count) {
  std::vector<runner::RunRow> rows;
  for (size_t i = 0; i < count; ++i) {
    runner::RunRow row = sample_row(begin + i);
    row.hops = begin + i;  // distinguishable payload
    rows.push_back(row);
  }
  return rows;
}

TEST(ResultMerger, MergesOutOfOrderBatches) {
  runner::ResultMerger merger(6);
  using Accept = runner::ResultMerger::Accept;
  EXPECT_EQ(merger.accept(4, rows_for(4, 2)), Accept::kMerged);
  EXPECT_EQ(merger.accept(0, rows_for(0, 2)), Accept::kMerged);
  EXPECT_FALSE(merger.complete());  // partial coverage: [2, 4) missing
  EXPECT_EQ(merger.merged(), 4u);
  EXPECT_EQ(merger.accept(2, rows_for(2, 2)), Accept::kMerged);
  ASSERT_TRUE(merger.complete());
  const std::vector<runner::RunRow> rows = merger.take_rows();
  ASSERT_EQ(rows.size(), 6u);
  for (size_t i = 0; i < rows.size(); ++i) EXPECT_EQ(rows[i].hops, i);
}

TEST(ResultMerger, DropsDuplicatesKeepingFirst) {
  runner::ResultMerger merger(4);
  using Accept = runner::ResultMerger::Accept;
  EXPECT_EQ(merger.accept(0, rows_for(0, 2)), Accept::kMerged);
  // A late re-execution of the same unit (identical in practice; here
  // different so first-wins is observable).
  std::vector<runner::RunRow> late = rows_for(0, 2);
  late[0].hops = 999;
  EXPECT_EQ(merger.accept(0, late), Accept::kDuplicate);
  EXPECT_EQ(merger.accept(2, rows_for(2, 2)), Accept::kMerged);
  const std::vector<runner::RunRow> rows = merger.take_rows();
  EXPECT_EQ(rows[0].hops, 0u);
}

TEST(ResultMerger, RejectsMalformedBatches) {
  runner::ResultMerger merger(4);
  using Accept = runner::ResultMerger::Accept;
  EXPECT_EQ(merger.accept(0, {}), Accept::kInvalid);         // empty
  EXPECT_EQ(merger.accept(4, rows_for(4, 1)), Accept::kInvalid);  // range
  EXPECT_EQ(merger.accept(3, rows_for(3, 2)), Accept::kInvalid);  // overflow
  EXPECT_EQ(merger.accept(0, rows_for(0, 2)), Accept::kMerged);
  // Half-overlap with a merged batch: all-or-nothing, no partial effects.
  EXPECT_EQ(merger.accept(1, rows_for(1, 2)), Accept::kInvalid);
  EXPECT_FALSE(merger.has(2));
  EXPECT_EQ(merger.accept(2, rows_for(2, 2)), Accept::kMerged);
  EXPECT_TRUE(merger.complete());
}

// ---------------------------------------------------------------------------
// End-to-end fleets (in-process workers over real sockets)
// ---------------------------------------------------------------------------

runner::SweepCliOptions small_grid() {
  runner::SweepCliOptions options;
  options.scenarios = {"tower16"};
  options.seed_count = 6;
  // Randomized latency so every seed takes a genuinely different path —
  // determinism is then a property of the machinery, not of the workload.
  options.latency = "uniform";
  return options;
}

/// The ground truth: the local thread-pool backend on the same grid.
std::string local_report_text(const runner::SweepCliOptions& options) {
  runner::SweepRunner::Options ropts;
  ropts.threads = 2;
  ropts.master_seed = options.master_seed;
  const runner::SweepResult result = runner::SweepRunner(ropts).run(
      runner::expand(runner::make_sweep_grid(options)));
  runner::BenchReport report = result.report;
  report.scrub_timing();
  return report.to_json_text();
}

std::string dist_report_text(const runner::SweepCliOptions& options,
                             size_t workers, size_t abandon_after) {
  Coordinator::Options copts;
  copts.total_timeout_ms = 60000;  // CI backstop
  Coordinator coordinator(options, copts);

  std::vector<std::thread> fleet;
  std::vector<int> codes(workers, -1);
  for (size_t i = 0; i < workers; ++i) {
    Worker::Options wopts;
    wopts.port = coordinator.port();
    wopts.heartbeat_ms = 50;
    if (i == 0) wopts.abandon_after_units = abandon_after;
    fleet.emplace_back([wopts, i, &codes] {
      codes[i] = Worker(wopts).run();
    });
  }
  const std::vector<runner::RunRow> rows = coordinator.run();
  for (std::thread& worker : fleet) worker.join();
  for (size_t i = 0; i < workers; ++i) {
    const int expected =
        i == 0 && abandon_after != SIZE_MAX ? Worker::kExitFault
                                            : Worker::kExitOk;
    EXPECT_EQ(codes[i], expected) << "worker " << i;
  }

  runner::SweepRunner::Options ropts;
  ropts.threads = 2;  // same header as the local ground truth
  ropts.master_seed = options.master_seed;
  runner::BenchReport report = runner::assemble_report(ropts, rows);
  report.scrub_timing();
  return report.to_json_text();
}

// The byte-identity tests above prove local and distributed reports agree;
// this one proves the runs being reported on are themselves sound: every
// RunSpec the fleet distributes, executed with the invariant oracle
// attached, finishes without a single violation.
TEST(DistSweep, DistributedWorkloadIsInvariantClean) {
  const runner::SweepCliOptions grid = small_grid();
  for (const runner::RunSpec& spec :
       runner::expand(runner::make_sweep_grid(grid))) {
    core::SessionConfig config = spec.config;
    config.sim.seed = spec.seed;
    core::ReconfigurationSession session(spec.scenario, config);
    check::InvariantOracle oracle;
    oracle.attach(session);
    const core::SessionResult result = session.run();
    oracle.check_now(session.simulator());
    EXPECT_TRUE(result.complete || result.blocked)
        << spec.scenario_label << " seed=" << spec.seed;
    EXPECT_TRUE(oracle.clean())
        << spec.scenario_label << " seed=" << spec.seed << ": "
        << oracle.violations().front();
    EXPECT_GT(oracle.checks_run(), 0u);
  }
}

TEST(DistSweep, SingleWorkerMatchesLocalByteForByte) {
  const runner::SweepCliOptions grid = small_grid();
  EXPECT_EQ(dist_report_text(grid, 1, SIZE_MAX), local_report_text(grid));
}

TEST(DistSweep, ThreeWorkersMatchLocalByteForByte) {
  const runner::SweepCliOptions grid = small_grid();
  EXPECT_EQ(dist_report_text(grid, 3, SIZE_MAX), local_report_text(grid));
}

TEST(DistSweep, WorkerKilledMidSweepStillMatchesLocal) {
  const runner::SweepCliOptions grid = small_grid();
  // Worker 0 completes one unit, then dies holding its second — the
  // coordinator must detect the drop, requeue, and reassign.
  EXPECT_EQ(dist_report_text(grid, 3, 1), local_report_text(grid));
}

TEST(DistSweep, ShardedRunsTravelTheWireIntact) {
  runner::SweepCliOptions grid = small_grid();
  grid.seed_count = 2;
  grid.shards = 2;
  grid.shard_threads = 2;
  EXPECT_EQ(dist_report_text(grid, 2, SIZE_MAX), local_report_text(grid));
}

// A scripted raw-protocol connection: pulls unit 0, then stalls without
// heartbeats past the per-unit deadline. The unit must be reassigned to the
// healthy worker, the stalled connection's late result dropped as a
// duplicate, and the merged report still byte-identical.
TEST(DistSweep, UnitTimeoutReassignsAndLateResultIsDropped) {
  const runner::SweepCliOptions grid = small_grid();

  Coordinator::Options copts;
  copts.unit_timeout_ms = 150;
  copts.tick_ms = 20;
  copts.worker_silence_ms = 20000;  // the stall must not read as death
  copts.total_timeout_ms = 60000;
  Coordinator coordinator(grid, copts);

  Socket stalled = Socket::connect_to("127.0.0.1", coordinator.port());
  std::thread healthy;  // started only once the stalled conn holds unit 0

  std::thread script([&] {
    stalled.send_frame(encode(Message::hello(1, Role::kWorker, 1, 0)));
    RecvResult welcome = stalled.recv_frame(10000);
    ASSERT_EQ(welcome.status, RecvStatus::kFrame);
    ASSERT_EQ(decode(welcome.payload).type, MsgType::kWelcome);
    stalled.send_frame(encode(Message::pull()));
    RecvResult assigned = stalled.recv_frame(10000);
    ASSERT_EQ(assigned.status, RecvStatus::kFrame);
    const Message unit = decode(assigned.payload);
    ASSERT_EQ(unit.type, MsgType::kUnit);
    EXPECT_EQ(unit.unit.begin, 0u);

    // Now that unit 0 is held here, let the healthy worker race ahead.
    Worker::Options wopts;
    wopts.port = coordinator.port();
    wopts.heartbeat_ms = 50;
    healthy = std::thread([wopts] { EXPECT_EQ(Worker(wopts).run(), 0); });

    // Stall well past the unit deadline, then report anyway: the unit was
    // reassigned meanwhile, so this must land as a dropped duplicate.
    std::this_thread::sleep_for(std::chrono::milliseconds(500));
    const runner::RunSpec spec =
        runner::expand(runner::make_sweep_grid(grid)).at(0);
    stalled.send_frame(encode(Message::result(
        unit.job, unit.unit, {runner::execute_run(spec).row})));
    stalled.send_frame(encode(Message::pull()));
    // Drain frames until stop (heartbeat-free, so only unit/stop arrive).
    for (;;) {
      RecvResult next = stalled.recv_frame(10000);
      ASSERT_EQ(next.status, RecvStatus::kFrame);
      const Message message = decode(next.payload);
      if (message.type == MsgType::kStop) break;
      // Units re-pulled after the late duplicate: execute them honestly so
      // the sweep still finishes if the race handed us real work.
      ASSERT_EQ(message.type, MsgType::kUnit);
      std::vector<runner::RunRow> rows;
      const auto specs = runner::expand(runner::make_sweep_grid(grid));
      for (size_t i = message.unit.begin; i < message.unit.end; ++i) {
        rows.push_back(runner::execute_run(specs.at(i)).row);
      }
      stalled.send_frame(
          encode(Message::result(message.job, message.unit, rows)));
      stalled.send_frame(encode(Message::pull()));
    }
    stalled.close();
  });

  const std::vector<runner::RunRow> rows = coordinator.run();
  script.join();
  if (healthy.joinable()) healthy.join();

  runner::SweepRunner::Options ropts;
  ropts.threads = 2;
  ropts.master_seed = grid.master_seed;
  runner::BenchReport report = runner::assemble_report(ropts, rows);
  report.scrub_timing();
  EXPECT_EQ(report.to_json_text(), local_report_text(grid));
}

// A worker that wedges mid-unit but keeps heartbeating can neither be
// declared dead (silence) nor finish: its unit must be reassigned via the
// per-unit timeout, and after the sweep completes the coordinator must cut
// the straggler off at the stop linger instead of serving its heartbeats
// forever — run() has to return even though the connection never closes.
TEST(DistSweep, HeartbeatingWedgedWorkerCannotHoldUpCompletion) {
  const runner::SweepCliOptions grid = small_grid();

  Coordinator::Options copts;
  copts.unit_timeout_ms = 150;
  copts.tick_ms = 20;
  copts.worker_silence_ms = 20000;
  copts.stop_linger_ms = 200;
  copts.total_timeout_ms = 60000;
  Coordinator coordinator(grid, copts);

  Socket wedged = Socket::connect_to("127.0.0.1", coordinator.port());
  std::atomic<bool> quit{false};
  std::thread healthy;
  std::thread script([&] {
    wedged.send_frame(encode(Message::hello(2, Role::kWorker, 1, 0)));
    // welcome
    ASSERT_EQ(wedged.recv_frame(10000).status, RecvStatus::kFrame);
    wedged.send_frame(encode(Message::pull()));
    const RecvResult assigned = wedged.recv_frame(10000);
    ASSERT_EQ(assigned.status, RecvStatus::kFrame);
    ASSERT_EQ(decode(assigned.payload).type, MsgType::kUnit);

    Worker::Options wopts;
    wopts.port = coordinator.port();
    wopts.heartbeat_ms = 50;
    healthy = std::thread([wopts] { EXPECT_EQ(Worker(wopts).run(), 0); });

    // Wedge: never report, never close, heartbeat forever.
    while (!quit.load()) {
      try {
        wedged.send_frame(encode(Message::heartbeat()));
      } catch (const std::exception&) {
        break;  // coordinator cut us off — expected
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(30));
    }
  });

  const std::vector<runner::RunRow> rows = coordinator.run();
  quit.store(true);
  script.join();
  if (healthy.joinable()) healthy.join();
  wedged.close();

  runner::SweepRunner::Options ropts;
  ropts.threads = 2;
  ropts.master_seed = grid.master_seed;
  runner::BenchReport report = runner::assemble_report(ropts, rows);
  report.scrub_timing();
  EXPECT_EQ(report.to_json_text(), local_report_text(grid));
}

}  // namespace
}  // namespace sb::dist
