// Tests for the utility layer: formatting, RNG, statistics, strings, CLI,
// and the thread-local allocation pool.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <set>
#include <thread>
#include <vector>

#include "util/cli.hpp"
#include "util/flat_counts.hpp"
#include "util/fmt.hpp"
#include "util/pool.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/string_util.hpp"

namespace sb {
namespace {

// ---------------------------------------------------------------------------
// fmt
// ---------------------------------------------------------------------------

TEST(Fmt, SubstitutesArgumentsInOrder) {
  EXPECT_EQ(fmt("{} + {} = {}", 1, 2, 3), "1 + 2 = 3");
}

TEST(Fmt, HandlesNoPlaceholders) { EXPECT_EQ(fmt("plain"), "plain"); }

TEST(Fmt, EscapesDoubledBraces) {
  EXPECT_EQ(fmt("{{}} and {}", 7), "{} and 7");
}

TEST(Fmt, FormatsMixedTypes) {
  EXPECT_EQ(fmt("{}/{}/{}", "a", 2.5, 'c'), "a/2.5/c");
}

TEST(Fmt, EscapeOnlyString) { EXPECT_EQ(fmt("{{{{"), "{{"); }

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(Rng, SameSeedSameSequence) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next() == b.next();
  EXPECT_LT(same, 4);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(13), 13u);
}

TEST(Rng, NextBelowCoversAllResidues) {
  Rng rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.next_below(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NextInIsInclusive) {
  Rng rng(3);
  std::set<int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const int64_t v = rng.next_in(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, DoubleMeanNearHalf) {
  Rng rng(11);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, BernoulliRespectsProbability) {
  Rng rng(5);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.next_bool(0.25);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.02);
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng rng(9);
  double sum = 0;
  const int n = 40000;
  for (int i = 0; i < n; ++i) sum += rng.next_exponential(10.0);
  EXPECT_NEAR(sum / n, 10.0, 0.3);
}

TEST(Rng, ForkStreamsAreIndependent) {
  Rng parent(42);
  Rng a = parent.fork(0);
  Rng b = parent.fork(1);
  EXPECT_NE(a.next(), b.next());
  // Forking is deterministic.
  Rng a2 = parent.fork(0);
  Rng check = parent.fork(0);
  EXPECT_EQ(a2.next(), check.next());
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(1);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, PickIndexInRange) {
  Rng rng(2);
  std::vector<int> v{10, 20, 30};
  for (int i = 0; i < 100; ++i) EXPECT_LT(rng.pick_index(v), v.size());
}

// ---------------------------------------------------------------------------
// Accumulator / SampleSet / Histogram
// ---------------------------------------------------------------------------

TEST(Accumulator, BasicMoments) {
  Accumulator acc;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(v);
  EXPECT_EQ(acc.count(), 8u);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_NEAR(acc.stddev(), 2.138, 0.001);  // sample stddev
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
  EXPECT_DOUBLE_EQ(acc.sum(), 40.0);
}

TEST(Accumulator, EmptyIsZero) {
  Accumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_EQ(acc.mean(), 0.0);
  EXPECT_EQ(acc.variance(), 0.0);
}

TEST(Accumulator, MergeMatchesSequential) {
  Accumulator all;
  Accumulator left;
  Accumulator right;
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.next_double_in(-5, 5);
    all.add(v);
    (i % 2 ? left : right).add(v);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(SampleSet, ExactPercentiles) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
  EXPECT_NEAR(s.median(), 50.5, 1e-9);
  EXPECT_NEAR(s.percentile(90), 90.1, 1e-9);
}

TEST(SampleSet, SingleSample) {
  SampleSet s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.percentile(37), 3.5);
  EXPECT_DOUBLE_EQ(s.median(), 3.5);
}

TEST(Histogram, BucketsAndClamping) {
  Histogram h(0, 10, 5);
  h.add(0.5);   // bucket 0
  h.add(9.5);   // bucket 4
  h.add(-3);    // clamps to 0
  h.add(42);    // clamps to 4
  h.add(5.0);   // bucket 2
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(2), 1u);
  EXPECT_EQ(h.bucket(4), 2u);
  EXPECT_FALSE(h.to_ascii().empty());
}

TEST(LinearFit, RecoversExactLine) {
  const LinearFit fit =
      fit_linear({1, 2, 3, 4}, {3, 5, 7, 9});  // y = 2x + 1
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(LogLogFit, RecoversPowerLawExponent) {
  // y = 5 x^3: the log-log slope must be 3 (the check behind the paper's
  // Remarks 2-4 benches).
  std::vector<double> xs;
  std::vector<double> ys;
  for (double x : {2.0, 4.0, 8.0, 16.0, 32.0}) {
    xs.push_back(x);
    ys.push_back(5.0 * x * x * x);
  }
  const LinearFit fit = fit_loglog(xs, ys);
  EXPECT_NEAR(fit.slope, 3.0, 1e-9);
  EXPECT_NEAR(fit.r2, 1.0, 1e-9);
}

TEST(LogLogFit, QuadraticExponent) {
  std::vector<double> xs;
  std::vector<double> ys;
  for (double x : {3.0, 9.0, 27.0, 81.0}) {
    xs.push_back(x);
    ys.push_back(0.5 * x * x);
  }
  EXPECT_NEAR(fit_loglog(xs, ys).slope, 2.0, 1e-9);
}

// ---------------------------------------------------------------------------
// string_util
// ---------------------------------------------------------------------------

TEST(StringUtil, Trim) {
  EXPECT_EQ(trim("  a b  "), "a b");
  EXPECT_EQ(trim("\t\r\n"), "");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(StringUtil, SplitOnChar) {
  EXPECT_EQ(split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
}

TEST(StringUtil, SplitWhitespace) {
  EXPECT_EQ(split_ws("  2 0 0\n2 4 3 "),
            (std::vector<std::string>{"2", "0", "0", "2", "4", "3"}));
  EXPECT_TRUE(split_ws("   ").empty());
}

TEST(StringUtil, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
}

TEST(StringUtil, StartsEndsWith) {
  EXPECT_TRUE(starts_with("capability", "cap"));
  EXPECT_FALSE(starts_with("cap", "capability"));
  EXPECT_TRUE(ends_with("rule.xml", ".xml"));
  EXPECT_FALSE(ends_with("xml", "rule.xml"));
}

TEST(StringUtil, ParseIntAcceptsValid) {
  EXPECT_EQ(parse_int("42"), 42);
  EXPECT_EQ(parse_int(" -7 "), -7);
  EXPECT_EQ(parse_int("0"), 0);
}

TEST(StringUtil, ParseIntRejectsInvalid) {
  EXPECT_FALSE(parse_int("4x"));
  EXPECT_FALSE(parse_int(""));
  EXPECT_FALSE(parse_int("1.5"));
  EXPECT_FALSE(parse_int("99999999999999999999999"));
}

TEST(StringUtil, ParseDouble) {
  EXPECT_DOUBLE_EQ(*parse_double("2.5"), 2.5);
  EXPECT_DOUBLE_EQ(*parse_double("-1e3"), -1000.0);
  EXPECT_FALSE(parse_double("abc"));
  EXPECT_FALSE(parse_double("1.5x"));
}

TEST(StringUtil, ToLower) { EXPECT_EQ(to_lower("AbC-9"), "abc-9"); }

// ---------------------------------------------------------------------------
// CliParser
// ---------------------------------------------------------------------------

TEST(Cli, ParsesTypedFlags) {
  CliParser cli("test");
  cli.add_int("n", 10, "count");
  cli.add_double("rate", 0.5, "rate");
  cli.add_string("name", "x", "name");
  cli.add_bool("verbose", false, "verbosity");
  const char* argv[] = {"prog", "--n=32", "--rate", "1.5", "--verbose",
                        "positional"};
  ASSERT_TRUE(cli.parse(6, argv));
  EXPECT_EQ(cli.get_int("n"), 32);
  EXPECT_DOUBLE_EQ(cli.get_double("rate"), 1.5);
  EXPECT_EQ(cli.get_string("name"), "x");
  EXPECT_TRUE(cli.get_bool("verbose"));
  ASSERT_EQ(cli.positionals().size(), 1u);
  EXPECT_EQ(cli.positionals()[0], "positional");
}

TEST(Cli, RejectsUnknownFlag) {
  CliParser cli("test");
  const char* argv[] = {"prog", "--nope=1"};
  EXPECT_FALSE(cli.parse(2, argv));
}

TEST(Cli, RejectsBadInt) {
  CliParser cli("test");
  cli.add_int("n", 1, "count");
  const char* argv[] = {"prog", "--n=abc"};
  EXPECT_FALSE(cli.parse(2, argv));
}

TEST(Cli, HelpReturnsFalse) {
  CliParser cli("test");
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(cli.parse(2, argv));
}

TEST(Cli, UsageListsFlags) {
  CliParser cli("my tool");
  cli.add_int("blocks", 12, "number of blocks");
  const std::string usage = cli.usage();
  EXPECT_NE(usage.find("--blocks"), std::string::npos);
  EXPECT_NE(usage.find("number of blocks"), std::string::npos);
}

// ---------------------------------------------------------------------------
// pool
// ---------------------------------------------------------------------------

TEST(Pool, ServesWritableMemoryAcrossSizeClasses) {
  for (const size_t bytes : {size_t{1}, size_t{16}, size_t{40}, size_t{256},
                             util::kPoolMaxBytes + 100}) {
    void* p = util::pool_alloc(bytes);
    ASSERT_NE(p, nullptr);
    std::memset(p, 0xab, bytes);
    util::pool_free(p, bytes);
  }
}

TEST(Pool, AdoptsMemoryParkedByExitedThreads) {
  const auto churn = [](uint64_t* slabs_created) {
    std::vector<void*> nodes;
    for (int i = 0; i < 100; ++i) nodes.push_back(util::pool_alloc(48));
    for (void* node : nodes) util::pool_free(node, 48);
    *slabs_created = util::pool_counters().slabs_created;
  };
  uint64_t first = 0;
  uint64_t second = 0;
  std::thread(churn, &first).join();
  std::thread(churn, &second).join();
  if (first > 0) {  // pool active (compiled out under ASan)
    // The second thread adopts the first thread's parked free list instead
    // of carving fresh slabs.
    EXPECT_EQ(second, 0u);
  }
}

// ---------------------------------------------------------------------------
// FlatCounts
// ---------------------------------------------------------------------------

TEST(FlatCounts, CountsAndIteratesSorted) {
  util::FlatCounts counts;
  counts["MoveDone"] += 2;
  counts["Ack"] += 5;
  counts["Activate"] += 1;
  counts["Ack"] += 1;
  EXPECT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts.at("Ack"), 6u);
  EXPECT_EQ(counts.at("MoveDone"), 2u);
  EXPECT_EQ(counts.count("Activate"), 1u);
  EXPECT_EQ(counts.count("Select"), 0u);
  // Iteration is sorted by key regardless of insertion order.
  std::vector<std::string_view> keys;
  for (const auto& [kind, value] : counts) keys.push_back(kind);
  EXPECT_EQ(keys, (std::vector<std::string_view>{"Ack", "Activate",
                                                 "MoveDone"}));
}

TEST(FlatCounts, MergesSameContentKeysFromDistinctStorage) {
  // The fast path compares pointers (kind tags are static literals); keys
  // with equal content but different addresses — e.g. the same literal
  // from two translation units — must still land on one counter, and the
  // mixed insertion path must keep iteration sorted.
  const std::string heap_a = "Activate";
  const std::string heap_b = "Activate";
  const std::string heap_c = "Zeta";
  util::FlatCounts counts;
  counts[std::string_view(heap_a)] += 1;
  counts["Activate"] += 1;  // different address, same content
  counts[std::string_view(heap_b)] += 1;
  counts[std::string_view(heap_c)] += 1;
  counts["Ack"] += 1;
  EXPECT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts.at("Activate"), 3u);
  std::vector<std::string_view> keys;
  for (const auto& [kind, value] : counts) keys.push_back(kind);
  EXPECT_EQ(keys,
            (std::vector<std::string_view>{"Ack", "Activate", "Zeta"}));
}

TEST(FlatCounts, CopiesIndependently) {
  util::FlatCounts counts;
  counts["Ping"] = 7;
  util::FlatCounts copy = counts;
  copy["Ping"] += 1;
  EXPECT_EQ(counts.at("Ping"), 7u);
  EXPECT_EQ(copy.at("Ping"), 8u);
  EXPECT_TRUE(counts == counts);
}

TEST(FlatCounts, MergeSumsOverlappingAndUnionsDisjointKeys) {
  util::FlatCounts a;
  a["Ack"] = 3;
  a["MoveDone"] = 1;
  util::FlatCounts b;
  b["Ack"] = 4;
  b["Select"] = 9;
  a.merge(b);
  EXPECT_EQ(a.size(), 3u);
  EXPECT_EQ(a.at("Ack"), 7u);
  EXPECT_EQ(a.at("MoveDone"), 1u);
  EXPECT_EQ(a.at("Select"), 9u);
  // The source is untouched.
  EXPECT_EQ(b.size(), 2u);
  EXPECT_EQ(b.at("Ack"), 4u);
  // Iteration order stays sorted after the merge inserts.
  std::vector<std::string_view> keys;
  for (const auto& [kind, value] : a) keys.push_back(kind);
  EXPECT_EQ(keys,
            (std::vector<std::string_view>{"Ack", "MoveDone", "Select"}));
}

TEST(FlatCounts, MergeWithEmptyEitherWay) {
  util::FlatCounts counts;
  counts["Ack"] = 2;
  util::FlatCounts empty;
  counts.merge(empty);  // no-op
  EXPECT_EQ(counts.size(), 1u);
  EXPECT_EQ(counts.at("Ack"), 2u);
  empty.merge(counts);  // adopt everything
  EXPECT_EQ(empty.size(), 1u);
  EXPECT_EQ(empty.at("Ack"), 2u);
  EXPECT_TRUE(empty == counts);
}

TEST(FlatCounts, MergeMatchesKeysByContentAcrossStorage) {
  // Per-shard maps may intern the same tag at different addresses (one
  // literal per translation unit); merging must still land on one counter.
  const std::string heap_key = "Activate";
  util::FlatCounts a;
  a[std::string_view(heap_key)] = 5;
  util::FlatCounts b;
  b["Activate"] = 6;
  a.merge(b);
  EXPECT_EQ(a.size(), 1u);
  EXPECT_EQ(a.at("Activate"), 11u);
}

TEST(FlatCounts, SelfMergeDoublesEveryCounter) {
  util::FlatCounts counts;
  counts["Ack"] = 3;
  counts["Select"] = 5;
  counts.merge(counts);
  EXPECT_EQ(counts.at("Ack"), 6u);
  EXPECT_EQ(counts.at("Select"), 10u);
  EXPECT_EQ(counts.size(), 2u);
}

TEST(FlatCounts, RepeatedMergeAccumulates) {
  // The sharded simulator folds shard maps into the totals once per run();
  // the fold must be a plain sum under repetition.
  util::FlatCounts total;
  for (uint64_t round = 1; round <= 4; ++round) {
    util::FlatCounts shard;
    shard["Ack"] = round;
    total.merge(shard);
  }
  EXPECT_EQ(total.at("Ack"), 10u);
}

TEST(Pool, RecyclesFreedNodesOfTheSameClass) {
  // Under sanitizers the pool is compiled out; recycling is unobservable.
  const util::PoolCounters before = util::pool_counters();
  void* first = util::pool_alloc(48);
  util::pool_free(first, 48);
  void* second = util::pool_alloc(48);
  const util::PoolCounters after = util::pool_counters();
  if (after.allocations > before.allocations) {
    EXPECT_EQ(second, first);  // same class -> the node comes straight back
    EXPECT_GT(after.free_list_hits, before.free_list_hits);
  }
  util::pool_free(second, 48);
}

}  // namespace
}  // namespace sb
