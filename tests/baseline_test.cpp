// Tests for the [14]-style free-motion baseline and the centralized
// planner, plus their ordering relative to the constrained algorithm.

#include <gtest/gtest.h>

#include "baseline/centralized.hpp"
#include "baseline/free_motion.hpp"
#include "core/reconfig.hpp"
#include "lattice/scenario.hpp"

namespace sb::baseline {
namespace {

using lat::Vec2;

TEST(CanonicalPath, StraightColumn) {
  const auto path = canonical_path({1, 0}, {1, 4});
  ASSERT_EQ(path.size(), 5u);
  EXPECT_EQ(path.front(), Vec2(1, 0));
  EXPECT_EQ(path.back(), Vec2(1, 4));
  for (size_t i = 1; i < path.size(); ++i) {
    EXPECT_EQ(manhattan(path[i - 1], path[i]), 1);
  }
}

TEST(CanonicalPath, LShapedXFirst) {
  const auto path = canonical_path({5, 1}, {2, 4});
  ASSERT_EQ(path.size(), 7u);  // 3 horizontal + 3 vertical + start
  EXPECT_EQ(path[1], Vec2(4, 1));  // x varies first
  EXPECT_EQ(path[3], Vec2(2, 1));  // corner
  EXPECT_EQ(path.back(), Vec2(2, 4));
}

TEST(FreeMotion, CompletesFig10) {
  const FreeMotionResult result =
      run_free_motion(lat::make_fig10_scenario());
  EXPECT_TRUE(result.complete);
  EXPECT_FALSE(result.blocked);
  EXPECT_GT(result.elections, 0u);
  EXPECT_GT(result.elementary_moves, 0u);
}

TEST(FreeMotion, CompletesTowers) {
  for (int32_t k : {3, 5, 8}) {
    const FreeMotionResult result =
        run_free_motion(lat::make_tower_scenario(k));
    EXPECT_TRUE(result.complete) << "tower " << k;
  }
}

TEST(FreeMotion, CheaperThanConstrainedAlgorithm) {
  // The whole point of the paper's §II contrast: support constraints make
  // motion strictly more expensive than the free-motion predecessor [14].
  const lat::Scenario scenario = lat::make_fig10_scenario();
  const FreeMotionResult free = run_free_motion(scenario);
  const auto constrained =
      core::ReconfigurationSession::run_scenario(scenario, {});
  ASSERT_TRUE(free.complete);
  ASSERT_TRUE(constrained.complete);
  EXPECT_LE(free.elementary_moves, constrained.elementary_moves);
}

TEST(FreeMotion, CountsDistanceComputations) {
  const FreeMotionResult result =
      run_free_motion(lat::make_fig10_scenario());
  // One dBO evaluation per block per election.
  EXPECT_EQ(result.distance_computations, result.elections * 12);
}

TEST(Centralized, PlansFig10) {
  const CentralizedResult plan =
      plan_centralized(lat::make_fig10_scenario());
  ASSERT_TRUE(plan.feasible);
  // 11 path cells, 6 already occupied by the seed column -> 5 assignments.
  EXPECT_EQ(plan.assignments.size(), 5u);
  EXPECT_GT(plan.total_moves, 0u);
  for (const Assignment& a : plan.assignments) {
    EXPECT_EQ(a.moves, manhattan(a.from, a.to));
  }
}

TEST(Centralized, LowerBoundsFreeMotion) {
  const lat::Scenario scenario = lat::make_fig10_scenario();
  const CentralizedResult plan = plan_centralized(scenario);
  const FreeMotionResult free = run_free_motion(scenario);
  ASSERT_TRUE(plan.feasible);
  ASSERT_TRUE(free.complete);
  // Omniscient assignment can never cost more moves than the sequential
  // free-motion walk (which detours around occupied cells).
  EXPECT_LE(plan.total_moves, free.elementary_moves);
}

TEST(Centralized, OrderingChainAcrossAllThreeSystems) {
  // centralized <= free motion <= constrained distributed algorithm.
  const lat::Scenario scenario = lat::make_tower_scenario(5);
  const CentralizedResult plan = plan_centralized(scenario);
  const FreeMotionResult free = run_free_motion(scenario);
  const auto ours = core::ReconfigurationSession::run_scenario(scenario, {});
  ASSERT_TRUE(plan.feasible);
  ASSERT_TRUE(free.complete);
  ASSERT_TRUE(ours.complete);
  EXPECT_LE(plan.total_moves, free.elementary_moves);
  EXPECT_LE(free.elementary_moves, ours.elementary_moves);
}

TEST(Centralized, MaxTripTracksLongestAssignment) {
  const CentralizedResult plan =
      plan_centralized(lat::make_tower_scenario(4));
  ASSERT_TRUE(plan.feasible);
  int32_t longest = 0;
  for (const Assignment& a : plan.assignments) {
    longest = std::max(longest, a.moves);
  }
  EXPECT_EQ(plan.max_single_trip, longest);
}

TEST(FreeMotion, RespectsAlignmentFreezeToggle) {
  // With freezing disabled every non-root block stays eligible; the run
  // must still complete.
  FreeMotionConfig config;
  config.freeze_aligned = false;
  const FreeMotionResult result =
      run_free_motion(lat::make_fig10_scenario(), config);
  EXPECT_TRUE(result.complete);
}

}  // namespace
}  // namespace sb::baseline
