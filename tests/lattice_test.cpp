// Tests for coordinates, directions, and the occupancy grid.

#include <gtest/gtest.h>

#include "lattice/direction.hpp"
#include "lattice/grid.hpp"
#include "lattice/vec2.hpp"

namespace sb::lat {
namespace {

// ---------------------------------------------------------------------------
// Vec2
// ---------------------------------------------------------------------------

TEST(Vec2, Arithmetic) {
  EXPECT_EQ(Vec2(1, 2) + Vec2(3, -1), Vec2(4, 1));
  EXPECT_EQ(Vec2(1, 2) - Vec2(3, -1), Vec2(-2, 3));
  Vec2 v{0, 0};
  v += {2, 5};
  EXPECT_EQ(v, Vec2(2, 5));
}

TEST(Vec2, ManhattanMatchesEq10) {
  // Eq (10): |Ox-Bx| + |Oy-By|.
  EXPECT_EQ(manhattan({1, 0}, {1, 10}), 10);
  EXPECT_EQ(manhattan({3, 4}, {0, 0}), 7);
  EXPECT_EQ(manhattan({2, 2}, {2, 2}), 0);
}

TEST(Vec2, Chebyshev) {
  EXPECT_EQ(chebyshev({0, 0}, {3, 1}), 3);
  EXPECT_EQ(chebyshev({0, 0}, {1, 4}), 4);
}

TEST(Vec2, Adjacent4) {
  EXPECT_TRUE(adjacent4({2, 2}, {2, 3}));
  EXPECT_TRUE(adjacent4({2, 2}, {1, 2}));
  EXPECT_FALSE(adjacent4({2, 2}, {3, 3}));  // diagonal is not a contact
  EXPECT_FALSE(adjacent4({2, 2}, {2, 2}));
}

TEST(Vec2, RowMajorOrder) {
  EXPECT_LT(Vec2(5, 0), Vec2(0, 1));  // lower row first
  EXPECT_LT(Vec2(0, 1), Vec2(1, 1));  // then lower column
}

TEST(Vec2, HashSpreadsValues) {
  Vec2Hash hash;
  EXPECT_NE(hash({0, 1}), hash({1, 0}));
}

// ---------------------------------------------------------------------------
// Direction
// ---------------------------------------------------------------------------

TEST(Direction, DeltasAreUnitVectors) {
  EXPECT_EQ(delta(Direction::kNorth), Vec2(0, 1));
  EXPECT_EQ(delta(Direction::kEast), Vec2(1, 0));
  EXPECT_EQ(delta(Direction::kSouth), Vec2(0, -1));
  EXPECT_EQ(delta(Direction::kWest), Vec2(-1, 0));
}

TEST(Direction, OppositeIsInvolution) {
  for (Direction d : all_directions()) {
    EXPECT_EQ(opposite(opposite(d)), d);
    EXPECT_EQ(delta(d) + delta(opposite(d)), Vec2(0, 0));
  }
}

TEST(Direction, RotationCycle) {
  EXPECT_EQ(rotate_cw(Direction::kNorth), Direction::kEast);
  EXPECT_EQ(rotate_cw(Direction::kEast), Direction::kSouth);
  EXPECT_EQ(rotate_cw(Direction::kSouth), Direction::kWest);
  EXPECT_EQ(rotate_cw(Direction::kWest), Direction::kNorth);
  for (Direction d : all_directions()) {
    EXPECT_EQ(rotate_ccw(rotate_cw(d)), d);
  }
}

TEST(Direction, DirectionFromUnitStep) {
  EXPECT_EQ(direction_from({2, 2}, {2, 3}), Direction::kNorth);
  EXPECT_EQ(direction_from({2, 2}, {3, 2}), Direction::kEast);
  EXPECT_EQ(direction_from({2, 2}, {2, 1}), Direction::kSouth);
  EXPECT_EQ(direction_from({2, 2}, {1, 2}), Direction::kWest);
  EXPECT_FALSE(direction_from({2, 2}, {3, 3}).has_value());
  EXPECT_FALSE(direction_from({2, 2}, {2, 2}).has_value());
  EXPECT_FALSE(direction_from({2, 2}, {4, 2}).has_value());
}

// ---------------------------------------------------------------------------
// Grid
// ---------------------------------------------------------------------------

TEST(Grid, StartsEmpty) {
  const Grid grid(4, 3);
  EXPECT_EQ(grid.width(), 4);
  EXPECT_EQ(grid.height(), 3);
  EXPECT_EQ(grid.cell_count(), 12u);
  EXPECT_EQ(grid.block_count(), 0u);
  EXPECT_FALSE(grid.occupied({0, 0}));
}

TEST(Grid, BoundsChecks) {
  const Grid grid(4, 3);
  EXPECT_TRUE(grid.in_bounds({0, 0}));
  EXPECT_TRUE(grid.in_bounds({3, 2}));
  EXPECT_FALSE(grid.in_bounds({4, 0}));
  EXPECT_FALSE(grid.in_bounds({0, 3}));
  EXPECT_FALSE(grid.in_bounds({-1, 0}));
  // Out-of-bounds queries report empty, not a crash.
  EXPECT_FALSE(grid.occupied({-1, -1}));
  EXPECT_EQ(grid.at({99, 99}), kInvalidBlock);
}

TEST(Grid, PlaceAndQuery) {
  Grid grid(4, 4);
  grid.place(BlockId{7}, {1, 2});
  EXPECT_TRUE(grid.occupied({1, 2}));
  EXPECT_EQ(grid.at({1, 2}), BlockId{7});
  EXPECT_EQ(grid.position_of(BlockId{7}), Vec2(1, 2));
  EXPECT_TRUE(grid.contains(BlockId{7}));
  EXPECT_FALSE(grid.contains(BlockId{8}));
  EXPECT_EQ(grid.block_count(), 1u);
}

TEST(Grid, RemoveReturnsId) {
  Grid grid(4, 4);
  grid.place(BlockId{3}, {0, 0});
  EXPECT_EQ(grid.remove({0, 0}), BlockId{3});
  EXPECT_FALSE(grid.occupied({0, 0}));
  EXPECT_EQ(grid.block_count(), 0u);
}

TEST(Grid, MoveUpdatesBothMaps) {
  Grid grid(4, 4);
  grid.place(BlockId{1}, {0, 0});
  grid.move({0, 0}, {1, 0});
  EXPECT_FALSE(grid.occupied({0, 0}));
  EXPECT_EQ(grid.at({1, 0}), BlockId{1});
  EXPECT_EQ(grid.position_of(BlockId{1}), Vec2(1, 0));
}

TEST(Grid, SimultaneousHandoverChain) {
  // A -> B while B -> C: the carrying rule's signature move pattern.
  Grid grid(5, 1);
  grid.place(BlockId{1}, {0, 0});
  grid.place(BlockId{2}, {1, 0});
  grid.move_simultaneously({{{1, 0}, {2, 0}}, {{0, 0}, {1, 0}}});
  EXPECT_EQ(grid.at({1, 0}), BlockId{1});
  EXPECT_EQ(grid.at({2, 0}), BlockId{2});
  EXPECT_FALSE(grid.occupied({0, 0}));
}

TEST(Grid, SimultaneousSwapOrderIndependent) {
  // The same handover expressed in the opposite declaration order.
  Grid grid(5, 1);
  grid.place(BlockId{1}, {0, 0});
  grid.place(BlockId{2}, {1, 0});
  grid.move_simultaneously({{{0, 0}, {1, 0}}, {{1, 0}, {2, 0}}});
  EXPECT_EQ(grid.at({1, 0}), BlockId{1});
  EXPECT_EQ(grid.at({2, 0}), BlockId{2});
}

TEST(GridDeath, CollisionAborts) {
  Grid grid(4, 1);
  grid.place(BlockId{1}, {0, 0});
  grid.place(BlockId{2}, {2, 0});
  // Both blocks try to land on cell (1,0).
  EXPECT_DEATH(
      grid.move_simultaneously({{{0, 0}, {1, 0}}, {{2, 0}, {1, 0}}}), "");
}

TEST(GridDeath, PlacingOnOccupiedCellAborts) {
  Grid grid(2, 2);
  grid.place(BlockId{1}, {0, 0});
  EXPECT_DEATH(grid.place(BlockId{2}, {0, 0}), "already holds");
}

TEST(GridDeath, DuplicateIdAborts) {
  Grid grid(2, 2);
  grid.place(BlockId{1}, {0, 0});
  EXPECT_DEATH(grid.place(BlockId{1}, {1, 1}), "already on the surface");
}

TEST(Grid, NeighborsOf) {
  Grid grid(3, 3);
  grid.place(BlockId{1}, {1, 1});
  grid.place(BlockId{2}, {1, 2});  // north
  grid.place(BlockId{3}, {2, 1});  // east
  const auto neighbors = grid.neighbors_of({1, 1});
  EXPECT_EQ(neighbors[static_cast<size_t>(Direction::kNorth)], BlockId{2});
  EXPECT_EQ(neighbors[static_cast<size_t>(Direction::kEast)], BlockId{3});
  EXPECT_EQ(neighbors[static_cast<size_t>(Direction::kSouth)],
            kInvalidBlock);
  EXPECT_EQ(neighbors[static_cast<size_t>(Direction::kWest)], kInvalidBlock);
  EXPECT_EQ(grid.occupied_neighbor_count({1, 1}), 2);
}

TEST(Grid, BlockIdsSorted) {
  Grid grid(3, 3);
  grid.place(BlockId{5}, {0, 0});
  grid.place(BlockId{1}, {1, 0});
  grid.place(BlockId{3}, {2, 0});
  const auto ids = grid.block_ids();
  ASSERT_EQ(ids.size(), 3u);
  EXPECT_EQ(ids[0], BlockId{1});
  EXPECT_EQ(ids[1], BlockId{3});
  EXPECT_EQ(ids[2], BlockId{5});
}

TEST(Grid, EqualityComparesOccupancy) {
  Grid a(3, 3);
  Grid b(3, 3);
  EXPECT_EQ(a, b);
  a.place(BlockId{1}, {1, 1});
  EXPECT_FALSE(a == b);
  b.place(BlockId{1}, {1, 1});
  EXPECT_EQ(a, b);
}

TEST(BlockId, Validity) {
  EXPECT_FALSE(kInvalidBlock.valid());
  EXPECT_TRUE(BlockId{0}.valid());
  EXPECT_LT(BlockId{1}, BlockId{2});
}

}  // namespace
}  // namespace sb::lat
