// Integration tests: the full distributed algorithm end to end.

#include <gtest/gtest.h>

#include <set>

#include "core/reconfig.hpp"
#include "lattice/region.hpp"
#include "lattice/scenario.hpp"

namespace sb::core {
namespace {

using lat::BlockId;
using lat::Vec2;

SessionConfig quiet_config() {
  SessionConfig config;
  config.max_events = 50'000'000;
  return config;
}

// ---------------------------------------------------------------------------
// The paper's example (Figs 10-11)
// ---------------------------------------------------------------------------

TEST(Reconfig, Fig10Completes) {
  const auto result = ReconfigurationSession::run_scenario(
      lat::make_fig10_scenario(), quiet_config());
  EXPECT_TRUE(result.complete);
  EXPECT_FALSE(result.blocked);
  EXPECT_FALSE(result.premature_completion);
  EXPECT_EQ(result.stop_reason, sim::StopReason::kHalted);
  EXPECT_EQ(result.block_count, 12u);
  EXPECT_EQ(result.path_cells, 11);
  ASSERT_TRUE(result.path.has_value());
  EXPECT_EQ(result.path->size(), 11u);
  EXPECT_EQ(result.path->front(), Vec2(1, 0));
  EXPECT_EQ(result.path->back(), Vec2(1, 10));
}

TEST(Reconfig, Fig10MoveCountInPaperBallpark) {
  // The paper reports 55 elementary moves for its 12-block, 11-cell task;
  // our blob and rule set differ slightly, so check the same order of
  // magnitude (tens, more than the 10 strictly necessary) rather than the
  // exact count.
  const auto result = ReconfigurationSession::run_scenario(
      lat::make_fig10_scenario(), quiet_config());
  EXPECT_GE(result.elementary_moves, 20u);
  EXPECT_LE(result.elementary_moves, 110u);
  EXPECT_GE(result.hops, 10u);
  EXPECT_LE(result.hops, 80u);
}

TEST(Reconfig, Fig10OneSpareBlockOffPath) {
  // Lemma 1 / Fig 11: exactly one block ends off the path.
  ReconfigurationSession session(lat::make_fig10_scenario(), quiet_config());
  const auto result = session.run();
  ASSERT_TRUE(result.complete);
  const lat::Grid& grid = session.simulator().world().grid();
  std::set<Vec2> path_cells(result.path->begin(), result.path->end());
  int off_path = 0;
  for (const auto& [id, pos] : grid.blocks()) {
    if (!path_cells.count(pos)) ++off_path;
  }
  EXPECT_EQ(off_path, 1);
}

TEST(Reconfig, Fig10RootNeverMoves) {
  ReconfigurationSession session(lat::make_fig10_scenario(), quiet_config());
  const BlockId root = session.scenario().root_id();
  const auto result = session.run();
  ASSERT_TRUE(result.complete);
  EXPECT_EQ(session.simulator().world().grid().position_of(root),
            session.scenario().input);
}

TEST(Reconfig, Fig10MessageBudget) {
  const auto result = ReconfigurationSession::run_scenario(
      lat::make_fig10_scenario(), quiet_config());
  // Every Activate is eventually acknowledged exactly once.
  EXPECT_EQ(result.messages_by_kind.at("Activate"),
            result.messages_by_kind.at("Ack"));
  // One Select routing chain and one ElectedAck chain per election.
  EXPECT_GE(result.messages_by_kind.at("Select"),
            result.elections_completed);
  EXPECT_EQ(result.messages_dropped, 0u);
  EXPECT_EQ(result.messages_sent, result.messages_delivered);
}

TEST(Reconfig, MoveListenerSeesEveryHop) {
  ReconfigurationSession session(lat::make_fig10_scenario(), quiet_config());
  uint64_t observed = 0;
  Epoch last_epoch = 0;
  session.set_move_listener([&](Epoch epoch, BlockId mover,
                                const motion::RuleApplication& app) {
    ++observed;
    EXPECT_GT(epoch, last_epoch);  // strictly increasing epochs
    last_epoch = epoch;
    EXPECT_TRUE(mover.valid());
    EXPECT_NE(app.rule, nullptr);
  });
  const auto result = session.run();
  EXPECT_EQ(observed, result.hops);
}

// ---------------------------------------------------------------------------
// Invariants during the run
// ---------------------------------------------------------------------------

TEST(Reconfig, PathPrefixNeverVacated) {
  // Lemma 1(b): positions on the shortest path, once occupied, remain
  // occupied (ids may change).
  ReconfigurationSession session(lat::make_fig10_scenario(), quiet_config());
  const lat::Grid& grid = session.simulator().world().grid();
  const Vec2 output = session.scenario().output;
  const Vec2 input = session.scenario().input;
  std::set<Vec2> seen_occupied;
  session.set_move_listener([&](Epoch, BlockId,
                                const motion::RuleApplication&) {
    for (int32_t y = input.y; y <= output.y; ++y) {
      const Vec2 cell{output.x, y};
      if (grid.occupied(cell)) {
        seen_occupied.insert(cell);
      } else {
        EXPECT_FALSE(seen_occupied.count(cell))
            << "path cell " << cell << " was vacated";
      }
    }
  });
  EXPECT_TRUE(session.run().complete);
}

TEST(Reconfig, ConnectivityMaintainedThroughout) {
  ReconfigurationSession session(lat::make_fig10_scenario(), quiet_config());
  const lat::Grid& grid = session.simulator().world().grid();
  session.set_move_listener(
      [&](Epoch, BlockId, const motion::RuleApplication&) {
        EXPECT_TRUE(lat::is_connected(grid));
      });
  EXPECT_TRUE(session.run().complete);
}

// ---------------------------------------------------------------------------
// Determinism and configuration axes
// ---------------------------------------------------------------------------

TEST(Reconfig, DeterministicForFixedSeed) {
  SessionConfig config = quiet_config();
  config.sim.seed = 99;
  config.sim.latency = msg::LatencyModel::uniform(1, 7);
  const auto a = ReconfigurationSession::run_scenario(
      lat::make_fig10_scenario(), config);
  const auto b = ReconfigurationSession::run_scenario(
      lat::make_fig10_scenario(), config);
  EXPECT_EQ(a.complete, b.complete);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.elementary_moves, b.elementary_moves);
  EXPECT_EQ(a.messages_sent, b.messages_sent);
  EXPECT_EQ(a.sim_ticks, b.sim_ticks);
  EXPECT_EQ(a.distance_computations, b.distance_computations);
}

class LatencyModelsTest
    : public ::testing::TestWithParam<msg::LatencyModel> {};

TEST_P(LatencyModelsTest, Fig10CompletesUnderAnyLatency) {
  // Assumption 3 only requires finite delivery; the algorithm must work
  // under any latency distribution. When link latency exceeds the motion
  // duration, an ElectedAck can race the elected block's hop and be lost
  // with the broken contact - by design the Root keys progress off
  // MoveDone, so such losses are bounded by one per election and harmless.
  SessionConfig config = quiet_config();
  config.sim.latency = GetParam();
  const auto result = ReconfigurationSession::run_scenario(
      lat::make_fig10_scenario(), config);
  EXPECT_TRUE(result.complete) << GetParam().describe();
  EXPECT_LE(result.messages_dropped, result.elections_completed);
}

INSTANTIATE_TEST_SUITE_P(
    Latencies, LatencyModelsTest,
    ::testing::Values(msg::LatencyModel::fixed(1),
                      msg::LatencyModel::fixed(20),
                      msg::LatencyModel::uniform(1, 50),
                      msg::LatencyModel::exponential(8.0)),
    [](const auto& param_info) {
      std::string name = param_info.param.describe();
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

class ElectionTieTest : public ::testing::TestWithParam<ElectionTie> {};

TEST_P(ElectionTieTest, Fig10CompletesUnderAnyTiePolicy) {
  SessionConfig config = quiet_config();
  config.election_tie = GetParam();
  const auto result = ReconfigurationSession::run_scenario(
      lat::make_fig10_scenario(), config);
  EXPECT_TRUE(result.complete);
}

INSTANTIATE_TEST_SUITE_P(Ties, ElectionTieTest,
                         ::testing::Values(ElectionTie::kFirst,
                                           ElectionTie::kLowestId,
                                           ElectionTie::kRandom),
                         [](const auto& param_info) {
                           switch (param_info.param) {
                             case ElectionTie::kFirst: return "First";
                             case ElectionTie::kLowestId: return "LowestId";
                             case ElectionTie::kRandom: return "Random";
                           }
                           return "?";
                         });

TEST(Reconfig, PaperEq6InitializationHasDocumentedLimitation) {
  // With Eq (6)'s literal initialization (ShortestDistance = |I-O|,
  // IDshortest = Root), a block whose distance equals or exceeds |I-O| can
  // never win an election. fig10's feeder lane bottoms out at exactly that
  // distance, so under strict Eq (6) the run eventually reports blocked -
  // the reason the library defaults to a +inf initialization (DESIGN.md,
  // interpretation notes).
  SessionConfig config = quiet_config();
  config.paper_eq6_init = true;
  const auto result = ReconfigurationSession::run_scenario(
      lat::make_fig10_scenario(), config);
  EXPECT_FALSE(result.complete);
  EXPECT_TRUE(result.blocked);
  // It still makes partial progress before the floor bites.
  EXPECT_GT(result.elections_completed, 5u);
}

TEST(Reconfig, BucketQueueGivesIdenticalRun) {
  SessionConfig heap = quiet_config();
  heap.sim.queue = sim::QueueKind::kBinaryHeap;
  SessionConfig bucket = quiet_config();
  bucket.sim.queue = sim::QueueKind::kBucketMap;
  const auto a = ReconfigurationSession::run_scenario(
      lat::make_fig10_scenario(), heap);
  const auto b = ReconfigurationSession::run_scenario(
      lat::make_fig10_scenario(), bucket);
  EXPECT_EQ(a.elementary_moves, b.elementary_moves);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.sim_ticks, b.sim_ticks);
}

// ---------------------------------------------------------------------------
// Tower scaling (the Lemma 1 extremal family)
// ---------------------------------------------------------------------------

class TowerTest : public ::testing::TestWithParam<int32_t> {};

TEST_P(TowerTest, CompletesWithExactlyOneSpare) {
  const lat::Scenario scenario = lat::make_tower_scenario(GetParam());
  ReconfigurationSession session(scenario, quiet_config());
  const auto result = session.run();
  ASSERT_TRUE(result.complete) << "tower " << GetParam();
  EXPECT_FALSE(result.premature_completion);
  ASSERT_TRUE(result.path.has_value());
  // N blocks, N-1 path cells (Lemma 1's bound is tight).
  EXPECT_EQ(static_cast<int32_t>(result.block_count), result.path_cells + 1);
}

INSTANTIATE_TEST_SUITE_P(Sizes, TowerTest,
                         ::testing::Values(2, 3, 4, 5, 6, 8, 10, 12));

TEST(Reconfig, TowerHopsGrowQuadratically) {
  // Remark 4: building an O(N)-cell path with blocks traveling O(N) each
  // costs O(N^2) hops; doubling N should multiply hops by roughly 4.
  SessionConfig config = quiet_config();
  const auto small = ReconfigurationSession::run_scenario(
      lat::make_tower_scenario(4), config);
  const auto large = ReconfigurationSession::run_scenario(
      lat::make_tower_scenario(8), config);
  ASSERT_TRUE(small.complete);
  ASSERT_TRUE(large.complete);
  const double ratio = static_cast<double>(large.hops) /
                       static_cast<double>(small.hops);
  EXPECT_GT(ratio, 2.5);
  EXPECT_LT(ratio, 6.5);
}

// ---------------------------------------------------------------------------
// Blocked detection
// ---------------------------------------------------------------------------

TEST(Reconfig, ReportsBlockedWhenNoMoveExists) {
  // A 2x2 square with I at a corner: the square can only unroll away from
  // the column... construct a scenario that cannot complete: 2x2 blob far
  // from an output that needs 5 path cells but only 4 blocks exist ->
  // validation rejects; instead use a blob whose every move is forbidden:
  // a domino cannot move at all, but assumption 1 rejects dominoes.
  // Use: 2x2 square, output diagonal, enough blocks (path 3 cells).
  lat::Scenario s;
  s.name = "boxed";
  s.width = 8;
  s.height = 8;
  s.input = {1, 1};
  s.output = {2, 2};  // 3 path cells, manhattan 2
  s.blocks = {{BlockId{1}, {1, 1}},
              {BlockId{2}, {2, 1}},
              {BlockId{3}, {1, 2}},
              {BlockId{4}, {0, 1}}};
  ASSERT_TRUE(lat::validate(s).empty());
  SessionConfig config = quiet_config();
  config.max_iterations = 200;  // keep the failure quick
  const auto result = ReconfigurationSession::run_scenario(s, config);
  // Either the algorithm finishes (a block lands on (2,2)) or it reports
  // blocked; it must never hang or crash. For this shape completion is
  // actually possible, so just assert a clean terminal state.
  EXPECT_TRUE(result.complete || result.blocked);
}

TEST(Reconfig, IterationCapReportsBlocked) {
  SessionConfig config = quiet_config();
  config.max_iterations = 3;  // far too few for fig10
  const auto result = ReconfigurationSession::run_scenario(
      lat::make_fig10_scenario(), config);
  EXPECT_FALSE(result.complete);
  EXPECT_TRUE(result.blocked);
}

TEST(Reconfig, DiagonalIOTerminatesHonestly) {
  // The paper's Eq (8) metric is only demonstrated for I/O sharing a row
  // or column; diagonal placements typically wedge (DESIGN.md finding 8).
  // The contract: terminate cleanly with an honest diagnosis, never hang.
  lat::Scenario s;
  s.name = "diagonal";
  s.width = 10;
  s.height = 10;
  s.input = {2, 1};
  s.output = {6, 6};
  uint32_t id = 1;
  for (int32_t y = 0; y < 5; ++y) {
    for (int32_t x = 1; x <= 2; ++x) {
      s.blocks.emplace_back(BlockId{id++}, Vec2{x, y});
    }
  }
  ASSERT_TRUE(lat::validate(s).empty());
  SessionConfig config = quiet_config();
  config.max_iterations = 2000;
  const auto result = ReconfigurationSession::run_scenario(s, config);
  EXPECT_TRUE(result.complete || result.blocked);
  EXPECT_NE(result.stop_reason, sim::StopReason::kEventLimit);
  if (result.complete) {
    EXPECT_TRUE(result.path.has_value() || result.premature_completion);
  }
}

TEST(ReconfigDeath, InvalidScenarioAborts) {
  lat::Scenario s = lat::make_fig10_scenario();
  s.blocks.clear();
  EXPECT_DEATH(
      { ReconfigurationSession session(s, SessionConfig{}); }, "invalid");
}

TEST(Reconfig, SummaryMentionsKeyFields) {
  const auto result = ReconfigurationSession::run_scenario(
      lat::make_fig10_scenario(), quiet_config());
  const std::string summary = result.summary();
  EXPECT_NE(summary.find("complete"), std::string::npos);
  EXPECT_NE(summary.find("elections"), std::string::npos);
  EXPECT_NE(summary.find("Activate"), std::string::npos);
}

}  // namespace
}  // namespace sb::core
