// Tests for Table I (event codes), Table II (truth table), the matrices
// and the paper's MM (x) MP worked examples (Eqs 1-5, Figs 3-6).

#include <gtest/gtest.h>

#include "motion/code_matrix.hpp"
#include "motion/event_code.hpp"
#include "motion/truth_table.hpp"

namespace sb::motion {
namespace {

// ---------------------------------------------------------------------------
// Table I
// ---------------------------------------------------------------------------

TEST(TableI, CodesMatchPaperNumbering) {
  EXPECT_EQ(to_int(EventCode::kRemainsEmpty), 0);
  EXPECT_EQ(to_int(EventCode::kRemainsOccupied), 1);
  EXPECT_EQ(to_int(EventCode::kAny), 2);
  EXPECT_EQ(to_int(EventCode::kBecomesOccupied), 3);
  EXPECT_EQ(to_int(EventCode::kBecomesEmpty), 4);
  EXPECT_EQ(to_int(EventCode::kHandover), 5);
}

TEST(TableI, FromIntRejectsOutOfRange) {
  EXPECT_TRUE(event_code_from_int(0).has_value());
  EXPECT_TRUE(event_code_from_int(5).has_value());
  EXPECT_FALSE(event_code_from_int(6).has_value());
  EXPECT_FALSE(event_code_from_int(-1).has_value());
}

TEST(TableI, StaticVsDynamicClassification) {
  // Codes 0 and 1 are static; 3, 4, 5 dynamic; 2 is "static or dynamic".
  EXPECT_FALSE(is_dynamic(EventCode::kRemainsEmpty));
  EXPECT_FALSE(is_dynamic(EventCode::kRemainsOccupied));
  EXPECT_TRUE(is_dynamic(EventCode::kAny));
  EXPECT_TRUE(is_dynamic(EventCode::kBecomesOccupied));
  EXPECT_TRUE(is_dynamic(EventCode::kBecomesEmpty));
  EXPECT_TRUE(is_dynamic(EventCode::kHandover));
}

TEST(TableI, SourceAndDestinationPredicates) {
  EXPECT_TRUE(is_move_source(EventCode::kBecomesEmpty));
  EXPECT_TRUE(is_move_source(EventCode::kHandover));
  EXPECT_FALSE(is_move_source(EventCode::kBecomesOccupied));
  EXPECT_TRUE(is_move_destination(EventCode::kBecomesOccupied));
  EXPECT_TRUE(is_move_destination(EventCode::kHandover));
  EXPECT_FALSE(is_move_destination(EventCode::kBecomesEmpty));
}

TEST(TableI, PresenceRequirements) {
  EXPECT_TRUE(requires_block(EventCode::kRemainsOccupied));
  EXPECT_TRUE(requires_block(EventCode::kBecomesEmpty));
  EXPECT_TRUE(requires_block(EventCode::kHandover));
  EXPECT_TRUE(requires_empty(EventCode::kRemainsEmpty));
  EXPECT_TRUE(requires_empty(EventCode::kBecomesOccupied));
  EXPECT_FALSE(requires_block(EventCode::kAny));
  EXPECT_FALSE(requires_empty(EventCode::kAny));
}

// ---------------------------------------------------------------------------
// Table II - exhaustive
// ---------------------------------------------------------------------------

TEST(TableII, MatchesPaperExactly) {
  // Row presence 0: 1 0 1 1 0 0 ; row presence 1: 0 1 1 0 1 1.
  const bool expected_empty[6] = {true, false, true, true, false, false};
  const bool expected_occupied[6] = {false, true, true, false, true, true};
  for (int code = 0; code < kEventCodeCount; ++code) {
    const EventCode ec = *event_code_from_int(code);
    EXPECT_EQ(motion_entry_valid(false, ec), expected_empty[code])
        << "presence 0, code " << code;
    EXPECT_EQ(motion_entry_valid(true, ec), expected_occupied[code])
        << "presence 1, code " << code;
  }
}

TEST(TableII, DontCareValidForBoth) {
  EXPECT_TRUE(motion_entry_valid(false, EventCode::kAny));
  EXPECT_TRUE(motion_entry_valid(true, EventCode::kAny));
}

// ---------------------------------------------------------------------------
// CodeMatrix / PresenceMatrix
// ---------------------------------------------------------------------------

TEST(CodeMatrix, ParseRowMajor) {
  const CodeMatrix mm = CodeMatrix::parse("2 0 0\n2 4 3\n2 1 1");
  EXPECT_EQ(mm.size(), 3);
  EXPECT_EQ(mm.at(0, 0), EventCode::kAny);
  EXPECT_EQ(mm.at(1, 1), EventCode::kBecomesEmpty);
  EXPECT_EQ(mm.at(1, 2), EventCode::kBecomesOccupied);
  EXPECT_EQ(mm.at(2, 1), EventCode::kRemainsOccupied);
}

TEST(CodeMatrix, ParseRejectsNonSquare) {
  EXPECT_THROW(CodeMatrix::parse("1 2 3 4"), std::runtime_error);  // even
  EXPECT_THROW(CodeMatrix::parse("1 2 3"), std::runtime_error);
  EXPECT_THROW(CodeMatrix::parse(""), std::runtime_error);
}

TEST(CodeMatrix, ParseRejectsBadCodes) {
  EXPECT_THROW(CodeMatrix::parse("0 0 0\n0 9 0\n0 0 0"), std::runtime_error);
  EXPECT_THROW(CodeMatrix::parse("0 0 0\n0 x 0\n0 0 0"), std::runtime_error);
}

TEST(CodeMatrix, TextRoundTrip) {
  const CodeMatrix mm = CodeMatrix::parse("2 0 0\n2 4 3\n2 1 1");
  EXPECT_EQ(CodeMatrix::parse(mm.to_text()), mm);
}

TEST(CodeMatrix, WorldOffsetConvention) {
  // Row 0 is north (+y), column 2 is east (+x), center is (1,1).
  EXPECT_EQ(world_offset(3, {1, 1}), lat::Vec2(0, 0));
  EXPECT_EQ(world_offset(3, {0, 1}), lat::Vec2(0, 1));   // north
  EXPECT_EQ(world_offset(3, {1, 2}), lat::Vec2(1, 0));   // east
  EXPECT_EQ(world_offset(3, {2, 1}), lat::Vec2(0, -1));  // south
  EXPECT_EQ(world_offset(3, {1, 0}), lat::Vec2(-1, 0));  // west
}

TEST(CodeMatrix, MatrixCoordInvertsWorldOffset) {
  for (int32_t row = 0; row < 5; ++row) {
    for (int32_t col = 0; col < 5; ++col) {
      const MatrixCoord mc{row, col};
      EXPECT_EQ(matrix_coord(5, world_offset(5, mc)), mc);
    }
  }
}

TEST(PresenceMatrix, CaptureFromView) {
  struct FakeView {
    [[nodiscard]] bool occupied(lat::Vec2 p) const {
      return p.y == 0;  // an infinite row of blocks at y = 0
    }
  } view;
  const PresenceMatrix mp = PresenceMatrix::capture(view, {5, 1}, 3);
  // Anchor (5,1): matrix south row (row 2) maps to y=0 -> occupied.
  EXPECT_TRUE(mp.at(2, 0));
  EXPECT_TRUE(mp.at(2, 1));
  EXPECT_TRUE(mp.at(2, 2));
  EXPECT_FALSE(mp.at(1, 1));
  EXPECT_FALSE(mp.at(0, 1));
}

// ---------------------------------------------------------------------------
// The paper's worked example: Eq (1) x Eq (2) = Eq (3)
// ---------------------------------------------------------------------------

TEST(CombineOperator, PaperEq3EastSliding) {
  const CodeMatrix mm = CodeMatrix::from_rows({{2, 0, 0},    //
                                               {2, 4, 3},    //
                                               {2, 1, 1}});  //
  const PresenceMatrix mp = PresenceMatrix::from_rows({{0, 0, 0},    //
                                                       {1, 1, 0},    //
                                                       {1, 1, 1}});  //
  const ValidationMatrix result = combine(mm, mp);
  // Eq (3): the resulting matrix is filled by 1 -> motion valid.
  EXPECT_TRUE(result.all_valid());
  for (int32_t row = 0; row < 3; ++row) {
    for (int32_t col = 0; col < 3; ++col) {
      EXPECT_TRUE(result.at(row, col));
    }
  }
}

TEST(CombineOperator, Fig5InvalidSituations) {
  const CodeMatrix mm = CodeMatrix::from_rows({{2, 0, 0},    //
                                               {2, 4, 3},    //
                                               {2, 1, 1}});  //
  // Missing the support block under the destination.
  const PresenceMatrix no_support = PresenceMatrix::from_rows({{0, 0, 0},
                                                               {1, 1, 0},
                                                               {1, 1, 0}});
  EXPECT_FALSE(combine(mm, no_support).all_valid());
  EXPECT_FALSE(combine(mm, no_support).at(2, 2));

  // Destination already occupied.
  const PresenceMatrix dest_blocked = PresenceMatrix::from_rows({{0, 0, 0},
                                                                 {1, 1, 1},
                                                                 {1, 1, 1}});
  EXPECT_FALSE(combine(mm, dest_blocked).all_valid());

  // Required clearance above the path is blocked.
  const PresenceMatrix no_clearance = PresenceMatrix::from_rows({{0, 1, 0},
                                                                 {1, 1, 0},
                                                                 {1, 1, 1}});
  EXPECT_FALSE(combine(mm, no_clearance).all_valid());

  // No block at the source at all.
  const PresenceMatrix no_mover = PresenceMatrix::from_rows({{0, 0, 0},
                                                             {1, 0, 0},
                                                             {1, 1, 1}});
  EXPECT_FALSE(combine(mm, no_mover).all_valid());
}

TEST(CombineOperator, PaperEq4Eq5EastCarrying) {
  const CodeMatrix mm = CodeMatrix::from_rows({{0, 0, 0},    //
                                               {4, 5, 3},    //
                                               {2, 1, 2}});  //
  const PresenceMatrix mp = PresenceMatrix::from_rows({{0, 0, 0},    //
                                                       {1, 1, 0},    //
                                                       {1, 1, 0}});  //
  EXPECT_TRUE(combine(mm, mp).all_valid());
}

TEST(CombineOperator, DontCareColumnIgnoresContent) {
  const CodeMatrix mm = CodeMatrix::from_rows({{2, 0, 0},    //
                                               {2, 4, 3},    //
                                               {2, 1, 1}});  //
  // West column (all code 2) can hold anything.
  for (int west : {0, 1}) {
    const PresenceMatrix mp = PresenceMatrix::from_rows(
        {{west, 0, 0}, {west, 1, 0}, {west, 1, 1}});
    EXPECT_TRUE(combine(mm, mp).all_valid()) << "west=" << west;
  }
}

TEST(CombineOperator, SizeMismatchAborts) {
  const CodeMatrix mm(3);
  const PresenceMatrix mp(5);
  EXPECT_DEATH((void)combine(mm, mp), "equal size");
}

TEST(ValidationMatrix, ToTextShowsBits) {
  const CodeMatrix mm = CodeMatrix::from_rows({{2, 0, 0},    //
                                               {2, 4, 3},    //
                                               {2, 1, 1}});  //
  const PresenceMatrix mp = PresenceMatrix::from_rows({{0, 0, 0},
                                                       {1, 1, 0},
                                                       {1, 1, 0}});
  const std::string text = combine(mm, mp).to_text();
  EXPECT_EQ(text, "1 1 1\n1 1 1\n1 1 0\n");
}

}  // namespace
}  // namespace sb::motion
