// Randomized reference-model tests: the optimized implementations are
// checked against independently written naive models on random inputs.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "lattice/connectivity.hpp"
#include "motion/apply.hpp"
#include "motion/rule_xml.hpp"
#include "util/rng.hpp"

namespace sb {
namespace {

using lat::BlockId;
using lat::Grid;
using lat::Vec2;

Grid random_grid(Rng& rng, int32_t w, int32_t h, int blocks) {
  Grid grid(w, h);
  uint32_t id = 1;
  int placed = 0;
  int guard = 0;
  while (placed < blocks && guard++ < 10'000) {
    const Vec2 p{static_cast<int32_t>(rng.next_below(
                     static_cast<uint64_t>(w))),
                 static_cast<int32_t>(rng.next_below(
                     static_cast<uint64_t>(h)))};
    if (!grid.occupied(p)) {
      grid.place(BlockId{id++}, p);
      ++placed;
    }
  }
  return grid;
}

// ---------------------------------------------------------------------------
// Connectivity vs a naive union-find reference
// ---------------------------------------------------------------------------

int naive_component_count(const Grid& grid) {
  std::map<Vec2, Vec2> parent;
  for (const auto& [id, pos] : grid.blocks()) parent[pos] = pos;
  const std::function<Vec2(Vec2)> find = [&](Vec2 v) {
    while (parent.at(v) != v) v = parent.at(v);
    return v;
  };
  for (const auto& [id, pos] : grid.blocks()) {
    for (lat::Direction d : lat::all_directions()) {
      const Vec2 q = pos + delta(d);
      if (grid.occupied(q)) parent[find(pos)] = find(q);
    }
  }
  std::set<Vec2> roots;
  for (const auto& [id, pos] : grid.blocks()) roots.insert(find(pos));
  return static_cast<int>(roots.size());
}

TEST(ReferenceModel, ComponentCountMatchesUnionFind) {
  Rng rng(11);
  for (int trial = 0; trial < 200; ++trial) {
    const Grid grid =
        random_grid(rng, 8, 8, static_cast<int>(rng.next_in(0, 20)));
    EXPECT_EQ(lat::component_count(grid), naive_component_count(grid))
        << "trial " << trial;
    EXPECT_EQ(lat::is_connected(grid),
              naive_component_count(grid) <= 1)
        << "trial " << trial;
  }
}

TEST(ReferenceModel, ConnectedAfterMovesMatchesApplyThenCheck) {
  Rng rng(23);
  int checked = 0;
  for (int trial = 0; trial < 400; ++trial) {
    Grid grid = random_grid(rng, 7, 7, static_cast<int>(rng.next_in(2, 14)));
    // Pick a random block and a random empty destination adjacent to it.
    const auto ids = grid.block_ids();
    const BlockId mover = ids[rng.pick_index(ids)];
    const Vec2 from = grid.position_of(mover);
    const lat::Direction d =
        lat::all_directions()[rng.next_below(4)];
    const Vec2 to = from + delta(d);
    if (!grid.in_bounds(to) || grid.occupied(to)) continue;
    ++checked;
    const bool predicted = lat::connected_after_moves(grid, {{from, to}});
    grid.move(from, to);
    EXPECT_EQ(predicted, lat::is_connected(grid)) << "trial " << trial;
  }
  EXPECT_GT(checked, 100);
}

// ---------------------------------------------------------------------------
// Rule applicability vs a hand-written predicate
// ---------------------------------------------------------------------------

/// Naive restatement of the east-sliding conditions straight from the
/// paper's prose: mover present, destination free, two south supports,
/// two north clearances, everything motion-relevant in bounds.
bool naive_slide_es_applicable(const Grid& grid, Vec2 mover) {
  const Vec2 dst = mover + Vec2{1, 0};
  const auto occupied = [&](Vec2 p) { return grid.occupied(p); };
  if (!grid.in_bounds(mover) || !grid.in_bounds(dst)) return false;
  if (!grid.in_bounds(mover + Vec2{0, -1}) ||
      !grid.in_bounds(dst + Vec2{0, -1})) {
    return false;  // supports must be real cells
  }
  return occupied(mover) && !occupied(dst) &&
         occupied(mover + Vec2{0, -1}) && occupied(dst + Vec2{0, -1}) &&
         !occupied(mover + Vec2{0, 1}) && !occupied(dst + Vec2{0, 1});
}

TEST(ReferenceModel, SlideApplicabilityMatchesNaivePredicate) {
  const motion::RuleLibrary lib = motion::RuleLibrary::standard();
  const motion::MotionRule* rule = lib.find("slide_ES");
  ASSERT_NE(rule, nullptr);
  Rng rng(37);
  int agreements = 0;
  for (int trial = 0; trial < 300; ++trial) {
    const Grid grid =
        random_grid(rng, 6, 6, static_cast<int>(rng.next_in(3, 16)));
    for (const auto& [id, pos] : grid.blocks()) {
      const bool fast =
          motion::rule_applicable(*rule, motion::GridView{&grid}, pos);
      const bool naive = naive_slide_es_applicable(grid, pos);
      EXPECT_EQ(fast, naive) << "trial " << trial << " at " << pos;
      ++agreements;
    }
  }
  EXPECT_GT(agreements, 1000);
}

// ---------------------------------------------------------------------------
// XML round-trip on randomized libraries
// ---------------------------------------------------------------------------

TEST(ReferenceModel, RandomRuleLibrariesRoundTripThroughXml) {
  Rng rng(53);
  for (int trial = 0; trial < 30; ++trial) {
    // A random subset of the train-extended library under fresh names.
    const motion::RuleLibrary base =
        motion::RuleLibrary::standard_with_trains(4);
    motion::RuleLibrary subset;
    int added = 0;
    for (const motion::MotionRule& rule : base.rules()) {
      if (rng.next_bool(0.4)) {
        motion::MotionRule copy = rule;
        copy.set_name("r" + std::to_string(trial) + "_" +
                      std::to_string(added++));
        subset.add(copy);
      }
    }
    if (subset.empty()) continue;
    const motion::RuleLibrary reparsed =
        motion::parse_capabilities(motion::serialize_capabilities(subset));
    ASSERT_EQ(reparsed.size(), subset.size()) << "trial " << trial;
    for (size_t i = 0; i < subset.size(); ++i) {
      EXPECT_EQ(reparsed.rules()[i].canonical_key(),
                subset.rules()[i].canonical_key());
    }
  }
}

// ---------------------------------------------------------------------------
// Simultaneous moves vs a naive two-phase model
// ---------------------------------------------------------------------------

TEST(ReferenceModel, SimultaneousMovesMatchTwoPhaseModel) {
  Rng rng(71);
  int checked = 0;
  for (int trial = 0; trial < 300; ++trial) {
    Grid grid = random_grid(rng, 6, 6, static_cast<int>(rng.next_in(2, 10)));
    // Build a random chain of 1-3 moves shifting distinct blocks east;
    // model: lift all, then land all (collisions make it invalid).
    std::vector<std::pair<Vec2, Vec2>> moves;
    for (const auto& [id, pos] : grid.blocks()) {
      if (moves.size() >= 3) break;
      moves.emplace_back(pos, pos + Vec2{1, 0});
    }
    if (moves.empty()) continue;
    // Naive model.
    std::map<Vec2, BlockId> cells;
    for (const auto& [id, pos] : grid.blocks()) cells[pos] = id;
    bool valid = true;
    std::map<Vec2, BlockId> lifted;
    for (const auto& [from, to] : moves) {
      lifted[to] = cells.at(from);
      cells.erase(from);
      valid &= grid.in_bounds(to);
    }
    for (const auto& [to, id] : lifted) {
      if (cells.count(to)) valid = false;
    }
    if (!valid) continue;  // Grid asserts on invalid input by contract
    for (const auto& [to, id] : lifted) cells[to] = id;

    grid.move_simultaneously(moves);
    ++checked;
    for (const auto& [pos, id] : cells) {
      EXPECT_EQ(grid.at(pos), id) << "trial " << trial;
    }
    EXPECT_EQ(grid.block_count(), cells.size());
  }
  EXPECT_GT(checked, 50);
}

}  // namespace
}  // namespace sb
