// Regression corpus replay: every minimized repro committed under
// tests/corpus/ is run through the full differential harness (classic,
// sharded, sharded multi-threaded) with the invariant oracle attached, and
// must agree everywhere, forever. A case lands here because it once caught a
// real divergence — if one fails again, a fixed bug has come back.
//
// Reproduce one locally:  ./build/fuzz_sim --replay tests/corpus/<file>
// Corpus workflow: docs/TESTING.md.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "check/differential.hpp"
#include "check/fuzz_case.hpp"

namespace sb::check {
namespace {

namespace fs = std::filesystem;

std::vector<std::string> corpus_files() {
  std::vector<std::string> files;
  for (const fs::directory_entry& entry :
       fs::directory_iterator(SMARTBLOCKS_CORPUS_DIR)) {
    if (entry.path().extension() != ".json") continue;
    files.push_back(entry.path().string());
  }
  std::sort(files.begin(), files.end());
  return files;
}

TEST(FuzzCorpus, DirectoryIsPopulated) {
  ASSERT_TRUE(fs::is_directory(SMARTBLOCKS_CORPUS_DIR))
      << SMARTBLOCKS_CORPUS_DIR;
  EXPECT_GE(corpus_files().size(), 4u)
      << "the committed corpus should seed several diverse cases";
}

TEST(FuzzCorpus, EveryCaseReplaysCleanOnAllBackends) {
  for (const std::string& path : corpus_files()) {
    SCOPED_TRACE(path);
    FuzzCase fuzz_case;
    ASSERT_NO_THROW(fuzz_case = FuzzCase::load(path));
    const DiffOutcome outcome = run_case(fuzz_case);
    EXPECT_TRUE(outcome.ok())
        << "regression: replay with  ./build/fuzz_sim --replay " << path
        << "\n"
        << outcome.report();
  }
}

}  // namespace
}  // namespace sb::check
