// Consistency tests for the shipped data files: the capability XML and
// scenario files under data/ must stay in sync with the built-in
// generators (they are the on-disk form a hardware deployment would load).

#include <gtest/gtest.h>

#include "lattice/scenario.hpp"
#include "motion/rule_xml.hpp"

#ifndef SMARTBLOCKS_DATA_DIR
#error "SMARTBLOCKS_DATA_DIR must be defined by the build"
#endif

namespace sb {
namespace {

const std::string kDataDir = SMARTBLOCKS_DATA_DIR;

TEST(Data, ShippedCapabilitiesMatchBuiltinLibrary) {
  const motion::RuleLibrary shipped = motion::load_capabilities_file(
      kDataDir + "/rules/standard_capabilities.xml");
  const motion::RuleLibrary builtin = motion::RuleLibrary::standard();
  ASSERT_EQ(shipped.size(), builtin.size());
  for (size_t i = 0; i < builtin.size(); ++i) {
    EXPECT_EQ(shipped.rules()[i].name(), builtin.rules()[i].name());
    EXPECT_EQ(shipped.rules()[i].canonical_key(),
              builtin.rules()[i].canonical_key());
  }
}

TEST(Data, ShippedFig10MatchesGenerator) {
  const lat::Scenario shipped =
      lat::load_scenario(kDataDir + "/scenarios/fig10.surf");
  const lat::Scenario builtin = lat::make_fig10_scenario();
  EXPECT_EQ(shipped.width, builtin.width);
  EXPECT_EQ(shipped.height, builtin.height);
  EXPECT_EQ(shipped.input, builtin.input);
  EXPECT_EQ(shipped.output, builtin.output);
  EXPECT_EQ(shipped.blocks, builtin.blocks);
}

TEST(Data, ShippedTowerMatchesGenerator) {
  const lat::Scenario shipped =
      lat::load_scenario(kDataDir + "/scenarios/tower16.surf");
  const lat::Scenario builtin = lat::make_tower_scenario(8);
  EXPECT_EQ(shipped.width, builtin.width);
  EXPECT_EQ(shipped.height, builtin.height);
  EXPECT_EQ(shipped.input, builtin.input);
  EXPECT_EQ(shipped.output, builtin.output);
  EXPECT_EQ(shipped.blocks, builtin.blocks);
  EXPECT_TRUE(lat::validate(shipped).empty());
}

TEST(Data, ShippedScenariosAreValid) {
  for (const char* name : {"/scenarios/fig10.surf",
                           "/scenarios/tower16.surf"}) {
    const lat::Scenario scenario = lat::load_scenario(kDataDir + name);
    EXPECT_TRUE(lat::validate(scenario).empty()) << name;
  }
}

}  // namespace
}  // namespace sb
