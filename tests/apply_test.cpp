// Tests for rule application on the grid: enumeration, physics validation
// (connectivity / no-single-line per Remark 1), and execution.

#include <gtest/gtest.h>

#include "lattice/neighborhood.hpp"
#include "motion/apply.hpp"
#include "motion/validate.hpp"

namespace sb::motion {
namespace {

using lat::BlockId;
using lat::Grid;
using lat::Vec2;

Grid make_grid(std::initializer_list<Vec2> cells, int32_t w = 8,
               int32_t h = 8) {
  Grid grid(w, h);
  uint32_t id = 1;
  for (const Vec2 cell : cells) grid.place(BlockId{id++}, cell);
  return grid;
}

const RuleLibrary& lib() {
  static const RuleLibrary library = RuleLibrary::standard();
  return library;
}

// ---------------------------------------------------------------------------
// Applicability against views
// ---------------------------------------------------------------------------

TEST(Applicability, EastSlideOnSupportedRow) {
  // Mover at (1,1), supports at (1,0) and (2,0): the Fig. 3 situation.
  const Grid grid = make_grid({{1, 1}, {1, 0}, {2, 0}});
  const GridView view{&grid};
  const MotionRule* rule = lib().find("slide_ES");
  ASSERT_NE(rule, nullptr);
  EXPECT_TRUE(rule_applicable(*rule, view, {1, 1}));
}

TEST(Applicability, EastSlideFailsWithoutDestinationSupport) {
  const Grid grid = make_grid({{1, 1}, {1, 0}});
  const GridView view{&grid};
  EXPECT_FALSE(rule_applicable(*lib().find("slide_ES"), view, {1, 1}));
}

TEST(Applicability, EastSlideFailsWithBlockedClearance) {
  const Grid grid = make_grid({{1, 1}, {1, 0}, {2, 0}, {2, 2}});
  const GridView view{&grid};
  EXPECT_FALSE(rule_applicable(*lib().find("slide_ES"), view, {1, 1}));
}

TEST(Applicability, OutOfBoundsSupportInvalidatesPlacement) {
  // Mover on the bottom row: slide_ES would need supports below the
  // surface -> invalid placement.
  const Grid grid = make_grid({{1, 0}, {2, 0}});
  const GridView view{&grid};
  EXPECT_FALSE(placement_in_bounds(*lib().find("slide_ES"), view, {1, 0}));
  EXPECT_FALSE(rule_applicable(*lib().find("slide_ES"), view, {1, 0}));
}

TEST(Applicability, OutOfBoundsClearanceIsFine) {
  // Mover on the TOP row sliding east with south support: the required
  // clearance row is above the surface - nothing is there, so it's clear.
  Grid grid(8, 3);
  grid.place(BlockId{1}, {1, 2});
  grid.place(BlockId{2}, {1, 1});
  grid.place(BlockId{3}, {2, 1});
  const GridView view{&grid};
  EXPECT_TRUE(rule_applicable(*lib().find("slide_ES"), view, {1, 2}));
}

TEST(Applicability, WorksOnSensedNeighborhood) {
  const Grid grid = make_grid({{3, 3}, {3, 2}, {4, 2}});
  // Build the sensing window a block at (3,3) would have.
  lat::Neighborhood window({3, 3}, 2, grid.width(), grid.height());
  for (int32_t dy = -2; dy <= 2; ++dy) {
    for (int32_t dx = -2; dx <= 2; ++dx) {
      const Vec2 p = Vec2{3 + dx, 3 + dy};
      if (grid.in_bounds(p)) window.set_occupied(p, grid.occupied(p));
    }
  }
  EXPECT_TRUE(rule_applicable(*lib().find("slide_ES"), window, {3, 3}));
}

// ---------------------------------------------------------------------------
// Enumeration
// ---------------------------------------------------------------------------

TEST(Enumerate, FindsSlideAndNothingElseForIsolatedRow) {
  // Three-block row on y=0 with the mover on top at (1,1):
  const Grid grid = make_grid({{1, 1}, {0, 0}, {1, 0}, {2, 0}});
  const GridView view{&grid};
  const auto apps = enumerate_applications(lib(), view, {1, 1});
  // slide_ES (east over supports) and slide_WS (west over supports).
  std::set<std::string> names;
  for (const auto& app : apps) names.insert(app.rule->name());
  EXPECT_TRUE(names.count("slide_ES"));
  EXPECT_TRUE(names.count("slide_WS"));
  for (const auto& app : apps) {
    EXPECT_EQ(app.subject_from(), Vec2(1, 1));
  }
}

TEST(Enumerate, FindsCarryWithMoverAsSubjectOrPusher) {
  // The Fig. 6 east-carrying setup: pusher (0,1), mover (1,1), support
  // (1,0); destination (2,1) free.
  const Grid grid = make_grid({{0, 1}, {1, 1}, {1, 0}});
  const GridView view{&grid};

  const auto center_apps = enumerate_applications(lib(), view, {1, 1});
  const auto pusher_apps = enumerate_applications(lib(), view, {0, 1});
  const auto has_carry = [](const std::vector<RuleApplication>& apps,
                            Vec2 to) {
    for (const auto& app : apps) {
      if (app.rule->name().starts_with("carry_") && app.subject_to() == to) {
        return true;
      }
    }
    return false;
  };
  EXPECT_TRUE(has_carry(center_apps, {2, 1}));  // carried block
  EXPECT_TRUE(has_carry(pusher_apps, {1, 1}));  // pusher as subject
}

TEST(Enumerate, EmptyForIsolatedDomino) {
  // Two adjacent blocks alone: every rule needs a third block for support,
  // so a lone domino is physically immobile (why Assumption 1 excludes
  // single-line patterns).
  const Grid grid = make_grid({{1, 1}, {2, 1}}, 6, 6);
  const GridView view{&grid};
  EXPECT_TRUE(enumerate_applications(lib(), view, {1, 1}).empty());
  EXPECT_TRUE(enumerate_applications(lib(), view, {2, 1}).empty());
}

TEST(Enumerate, SquareUnrollsViaCarry) {
  // A 2x2 square is NOT immobile: a carry can roll one column down along
  // the other (the "square unrolling" motion).
  const Grid grid = make_grid({{1, 1}, {2, 1}, {1, 2}, {2, 2}}, 4, 4);
  const GridView view{&grid};
  const auto apps = enumerate_applications(lib(), view, {1, 1});
  EXPECT_FALSE(apps.empty());
  for (const auto& app : apps) {
    EXPECT_TRUE(app.rule->name().starts_with("carry_"));
  }
}

TEST(Enumerate, DeterministicOrder) {
  const Grid grid = make_grid({{1, 1}, {1, 0}, {2, 0}});
  const GridView view{&grid};
  const auto a = enumerate_applications(lib(), view, {1, 1});
  const auto b = enumerate_applications(lib(), view, {1, 1});
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].rule, b[i].rule);
    EXPECT_EQ(a[i].anchor, b[i].anchor);
    EXPECT_EQ(a[i].subject_move, b[i].subject_move);
  }
}

// ---------------------------------------------------------------------------
// Physics (Remark 1)
// ---------------------------------------------------------------------------

TEST(Physics, RejectsDisconnectingMove) {
  // Mover M at (1,1) slides east over supports (1,0),(2,0): matrix-valid.
  // Without a pendant the move is fine; with a pendant P at (0,1) whose
  // only contact is M, the same matrix-valid move would strand P, so the
  // physics oracle (Remark 1) rejects it.
  const MotionRule* rule = lib().find("slide_ES");
  ASSERT_NE(rule, nullptr);

  const Grid free_grid = make_grid({{1, 1}, {1, 0}, {2, 0}});
  RuleApplication app{rule, {1, 1}, 0};
  ASSERT_TRUE(rule_applicable(*rule, GridView{&free_grid}, {1, 1}));
  EXPECT_TRUE(physically_valid(free_grid, app));

  const Grid pendant_grid = make_grid({{1, 1}, {1, 0}, {2, 0}, {0, 1}});
  ASSERT_TRUE(rule_applicable(*rule, GridView{&pendant_grid}, {1, 1}));
  EXPECT_FALSE(physically_valid(pendant_grid, app));  // would strand (0,1)
}

TEST(Physics, RejectsSingleLineResult) {
  // Three blocks: an L whose corner move would leave a straight line.
  const Grid grid = make_grid({{1, 1}, {2, 1}, {1, 2}, {1, 0}}, 6, 6);
  // Move (2,1) somewhere that leaves a single column: slide (2,1) north
  // with west support at (1,1),(1,2): destination (2,2).
  const MotionRule* rule = lib().find("slide_NW");
  ASSERT_NE(rule, nullptr);
  RuleApplication app{rule, {2, 1}, 0};
  if (rule_applicable(*rule, GridView{&grid}, {2, 1})) {
    EXPECT_TRUE(physically_valid(grid, app));  // result is not a line
  }
  // Construct an actual line-forming move: blocks (1,0),(1,1),(2,1):
  // moving (2,1) north to (2,2)? Not a line. Moving (2,1) is the only
  // option; use single_line_after_moves directly for precision:
  const Grid three = make_grid({{1, 0}, {1, 1}, {2, 1}}, 6, 6);
  EXPECT_TRUE(lat::single_line_after_moves(three, {{{2, 1}, {1, 2}}}));
  EXPECT_FALSE(lat::single_line_after_moves(three, {{{2, 1}, {2, 2}}}));
}

TEST(Physics, ApplyExecutesAllMoves) {
  Grid grid = make_grid({{0, 1}, {1, 1}, {1, 0}});
  const MotionRule* rule = lib().find("carry_ES");
  ASSERT_NE(rule, nullptr);
  // Subject = the carried center block.
  RuleApplication app{rule, {1, 1}, 0};
  ASSERT_TRUE(physically_valid(grid, app));
  apply_to_grid(grid, app);
  EXPECT_EQ(grid.at({2, 1}), BlockId{2});  // carried block landed east
  EXPECT_EQ(grid.at({1, 1}), BlockId{1});  // pusher took its cell
  EXPECT_FALSE(grid.occupied({0, 1}));
  EXPECT_EQ(grid.at({1, 0}), BlockId{3});  // support did not move
}

TEST(Physics, DescribeMentionsRuleAndCells) {
  const MotionRule* rule = lib().find("slide_ES");
  RuleApplication app{rule, {4, 2}, 0};
  const std::string text = app.describe();
  EXPECT_NE(text.find("slide_ES"), std::string::npos);
  EXPECT_NE(text.find("(4,2)"), std::string::npos);
  EXPECT_NE(text.find("(5,2)"), std::string::npos);
}

}  // namespace
}  // namespace sb::motion
