// Tests for the correctness-tooling subsystem (src/check): generator
// determinism and validity, repro-file round trips, the invariant oracle's
// detection power, the delta-debugging minimizer, and the differential
// harness — including the acceptance self-test that plants a real lost-
// message bug in the sharded engine (SB_SIM_FAULT_DROP_FLUSH) and demands
// the fuzzer find it, minimize it small, and keep a replayable repro.

#include <gtest/gtest.h>

#include <cstdlib>
#include <set>

#include "check/differential.hpp"
#include "check/generator.hpp"
#include "check/minimize.hpp"
#include "check/oracle.hpp"
#include "core/reconfig.hpp"
#include "lattice/region.hpp"
#include "lattice/scenario.hpp"

namespace sb::check {
namespace {

// ---------------------------------------------------------------------------
// Generator
// ---------------------------------------------------------------------------

TEST(Generator, EveryCaseIsValidAndDeterministic) {
  std::set<std::string> families;
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    const FuzzCase a = generate_case(seed);
    EXPECT_TRUE(lat::validate(a.scenario).empty())
        << "seed " << seed << ": " << lat::validate(a.scenario).front();
    const FuzzCase b = generate_case(seed);
    EXPECT_EQ(a.to_json().dump(), b.to_json().dump()) << "seed " << seed;
    families.insert(a.scenario.name);
    if (!a.comparable) continue;
    // The comparability contract: fixed latency, order-free ties, no
    // timeout machinery.
    EXPECT_EQ(a.latency_kind, "fixed");
    EXPECT_EQ(a.election_tie, core::ElectionTie::kLowestId);
    EXPECT_EQ(a.ack_timeout, 0u);
  }
  // 40 seeds must exercise several of the five families.
  EXPECT_GE(families.size(), 3u) << "generator stuck on one family";
}

TEST(Generator, KillChurnIsNeverMarkedComparable) {
  for (uint64_t seed = 1; seed <= 60; ++seed) {
    const FuzzCase fuzz_case = generate_case(seed);
    const bool any_kill = std::any_of(
        fuzz_case.churn.begin(), fuzz_case.churn.end(),
        [](const ChurnOp& op) { return op.kind == ChurnOp::Kind::kKill; });
    if (any_kill) {
      EXPECT_FALSE(fuzz_case.comparable) << "seed " << seed;
      EXPECT_GT(fuzz_case.ack_timeout, 0u) << "seed " << seed;
    }
  }
}

TEST(Generator, AlwaysComparableForcesFullDiffKnobs) {
  GeneratorOptions options;
  options.always_comparable = true;
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    const FuzzCase fuzz_case = generate_case(seed, options);
    EXPECT_TRUE(fuzz_case.comparable);
    for (const ChurnOp& op : fuzz_case.churn) {
      EXPECT_EQ(op.kind, ChurnOp::Kind::kJoin);
    }
  }
}

// ---------------------------------------------------------------------------
// Repro files
// ---------------------------------------------------------------------------

TEST(FuzzCaseFile, JsonRoundTripIsExact) {
  for (uint64_t seed : {3ULL, 6ULL, 19ULL}) {  // cover churn + both kinds
    const FuzzCase original = generate_case(seed);
    const FuzzCase back = FuzzCase::from_json(original.to_json());
    EXPECT_EQ(original.to_json().dump(), back.to_json().dump());
    EXPECT_EQ(original.describe(), back.describe());
  }
}

TEST(FuzzCaseFile, MalformedInputThrows) {
  EXPECT_THROW(FuzzCase::from_json(util::parse_json("{}")),
               std::runtime_error);
  util::JsonValue bad = generate_case(1).to_json();
  bad["format"] = "sb-fuzz-case-v999";
  EXPECT_THROW(FuzzCase::from_json(bad), std::runtime_error);
  EXPECT_THROW(FuzzCase::load("/nonexistent/x.fuzz.json"),
               std::runtime_error);
}

// ---------------------------------------------------------------------------
// Invariant oracle
// ---------------------------------------------------------------------------

TEST(Oracle, CleanRunStaysClean) {
  const lat::Scenario scenario = lat::make_fig10_scenario();
  core::ReconfigurationSession session(scenario, core::SessionConfig{});
  InvariantOracle oracle;
  oracle.attach(session);
  const core::SessionResult result = session.run();
  EXPECT_TRUE(result.complete);
  EXPECT_TRUE(oracle.clean()) << oracle.violations().front();
  EXPECT_GT(oracle.checks_run(), 0u);
}

TEST(Oracle, DetectsDisconnectionAndLostBlocks) {
  // Corrupt the world behind the session's back: removing the far corner
  // block of a 2xN tower severs nothing, but removing a middle column cell
  // disconnects the top half. Either way conservation is broken.
  const lat::Scenario scenario = lat::make_tower_scenario(4);
  core::ReconfigurationSession session(scenario, core::SessionConfig{});
  InvariantOracle oracle;
  oracle.attach(session);

  lat::Grid& grid = session.simulator().world().grid();
  // Remove a block mid-structure: conservation + (likely) connectivity.
  grid.remove(scenario.blocks[2].second);
  oracle.check_now(session.simulator());
  ASSERT_FALSE(oracle.clean());
  bool conservation = false;
  for (const std::string& violation : oracle.violations()) {
    conservation |= violation.find("conservation") != std::string::npos;
  }
  EXPECT_TRUE(conservation) << oracle.violations().front();
}

TEST(Oracle, DetectsStaleConnectivityCache) {
  const lat::Scenario scenario = lat::make_tower_scenario(4);
  core::ReconfigurationSession session(scenario, core::SessionConfig{});
  OracleOptions options;
  options.hint_probe_rate = 1.0;  // always cross-check the cache
  InvariantOracle oracle(options);
  oracle.attach(session);

  // Plant a wrong cached verdict on a connected grid.
  const lat::Grid& grid = session.simulator().world().grid();
  grid.set_own_connectivity_hint(lat::ConnectivityHint::kDisconnected);
  oracle.check_now(session.simulator());
  ASSERT_FALSE(oracle.clean());
  EXPECT_NE(oracle.violations().front().find("cached connectivity"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Minimizer
// ---------------------------------------------------------------------------

TEST(Minimizer, ShrinksToPredicateCore) {
  // Synthetic predicate: the bug "needs" one specific block position. The
  // minimizer must strip most of the rest and keep every candidate valid.
  const FuzzCase failing = generate_case(2);
  ASSERT_GE(failing.scenario.block_count(), 20u);
  const lat::Vec2 needle =
      failing.scenario.blocks[failing.scenario.block_count() / 2].second;
  const auto still_fails = [needle](const FuzzCase& candidate) {
    if (!lat::validate(candidate.scenario).empty()) return false;
    for (const auto& [id, pos] : candidate.scenario.blocks) {
      if (pos == needle) return true;
    }
    return false;
  };

  const MinimizeResult result = minimize_case(failing, still_fails);
  EXPECT_TRUE(still_fails(result.minimized));
  EXPECT_TRUE(lat::validate(result.minimized.scenario).empty());
  EXPECT_LT(result.blocks_after, result.blocks_before);
  // validate() forbids fewer blocks than the I->O shortest path (Lemma 1),
  // so that is the floor; a handful above it covers the bridge the needle
  // block needs to stay connected.
  const auto floor = static_cast<size_t>(lat::shortest_path_cells(
      result.minimized.scenario.input, result.minimized.scenario.output));
  EXPECT_LE(result.blocks_after, floor + 8)
      << "ddmin left " << result.blocks_after << " of "
      << result.blocks_before << " blocks (validity floor " << floor << ")";
  // Knob simplification: the synthetic bug ignores knobs entirely, so they
  // must all land on their simplest values.
  EXPECT_EQ(result.minimized.latency_kind, "fixed");
  EXPECT_EQ(result.minimized.latency_lo, 1u);
  EXPECT_TRUE(result.minimized.churn.empty());
}

TEST(Minimizer, RespectsEvalBudget) {
  const FuzzCase failing = generate_case(2);
  uint64_t calls = 0;
  MinimizeOptions options;
  options.max_evals = 5;
  const MinimizeResult result = minimize_case(
      failing,
      [&calls](const FuzzCase&) {
        ++calls;
        return true;  // everything "fails": worst case for the budget
      },
      options);
  EXPECT_LE(result.evals, 5u);
  EXPECT_EQ(result.evals, calls);
}

// ---------------------------------------------------------------------------
// Differential harness
// ---------------------------------------------------------------------------

TEST(Differential, KnownGoodCaseAgreesEverywhere) {
  GeneratorOptions options;
  options.always_comparable = true;
  const DiffOutcome outcome = run_case(generate_case(11, options));
  EXPECT_TRUE(outcome.ok()) << outcome.report();
  ASSERT_EQ(outcome.runs.size(), 3u);
  EXPECT_GT(outcome.runs[0].move_trace.size(), 0u);
  // Comparable case: classic and sharded move traces byte-identical.
  EXPECT_EQ(outcome.runs[0].move_trace, outcome.runs[1].move_trace);
  EXPECT_EQ(outcome.runs[1].event_trace, outcome.runs[2].event_trace);
}

TEST(Differential, ReportNamesEveryBackend) {
  const DiffOutcome outcome = run_case(generate_case(4));
  const std::string report = outcome.report();
  EXPECT_NE(report.find("classic[shards=1]"), std::string::npos);
  EXPECT_NE(report.find("sharded[shards=4"), std::string::npos);
  EXPECT_NE(report.find("verdict:"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Acceptance self-test: plant a real engine bug, demand the pipeline
// catches it end to end (ISSUE: fuzz -> catch -> minimize <= 32 modules ->
// replayable repro).
// ---------------------------------------------------------------------------

/// Scoped env var: the fault must never leak into other tests.
class ScopedFaultInjection {
 public:
  explicit ScopedFaultInjection(const char* value) {
    ::setenv("SB_SIM_FAULT_DROP_FLUSH", value, 1);
  }
  ~ScopedFaultInjection() { ::unsetenv("SB_SIM_FAULT_DROP_FLUSH"); }
};

TEST(Acceptance, InjectedFlushDropIsCaughtMinimizedAndReplayable) {
  FuzzCase caught;
  {
    ScopedFaultInjection fault("25");
    // Sweep seeds until the dropped barrier flush produces a divergence —
    // the bug only fires in runs long enough to reach flush #25 with
    // cross-shard traffic in flight, exactly how tools/fuzz_sim hunts.
    bool found = false;
    for (uint64_t seed = 1; seed <= 40 && !found; ++seed) {
      const FuzzCase candidate = generate_case(seed);
      if (!candidate.comparable) continue;
      if (!run_case(candidate).ok()) {
        caught = candidate;
        found = true;
      }
    }
    ASSERT_TRUE(found) << "no seed in 1..40 tripped the injected bug";

    MinimizeOptions options;
    options.max_evals = 120;
    const MinimizeResult minimized = minimize_case(
        caught,
        [](const FuzzCase& candidate) { return !run_case(candidate).ok(); },
        options);
    EXPECT_LE(minimized.minimized.scenario.block_count(), 32u)
        << "minimizer stalled at " << minimized.minimized.scenario.block_count()
        << " blocks";

    // The minimized repro must survive a JSON round trip and still fail.
    const FuzzCase replayed =
        FuzzCase::from_json(minimized.minimized.to_json());
    const DiffOutcome bad = run_case(replayed);
    EXPECT_FALSE(bad.ok());
    EXPECT_FALSE(bad.report().empty());
    caught = replayed;
  }
  // Fault gone: the same repro must pass — the bug was the engine's, not
  // the case's.
  const DiffOutcome good = run_case(caught);
  EXPECT_TRUE(good.ok()) << good.report();
}

}  // namespace
}  // namespace sb::check
