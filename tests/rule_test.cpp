// Tests for motion rules, symmetry transforms, and the rule library.

#include <gtest/gtest.h>

#include <set>

#include "motion/rule.hpp"
#include "motion/rule_library.hpp"
#include "motion/transform.hpp"

namespace sb::motion {
namespace {

MotionRule east_sliding() {
  return MotionRule("slide_ES",
                    CodeMatrix::from_rows({{2, 0, 0},    //
                                           {2, 4, 3},    //
                                           {2, 1, 1}}),  //
                    {{0, {1, 1}, {1, 2}}});
}

MotionRule east_carrying() {
  return MotionRule("carry_ES",
                    CodeMatrix::from_rows({{0, 0, 0},    //
                                           {4, 5, 3},    //
                                           {2, 1, 2}}),  //
                    {{0, {1, 1}, {1, 2}}, {0, {1, 0}, {1, 1}}});
}

// ---------------------------------------------------------------------------
// Semantic validation
// ---------------------------------------------------------------------------

TEST(RuleSemantics, PaperRulesAreWellFormed) {
  EXPECT_TRUE(east_sliding().semantic_issues().empty());
  EXPECT_TRUE(east_carrying().semantic_issues().empty());
}

TEST(RuleSemantics, RejectsEmptyMoveList) {
  const MotionRule rule("r", CodeMatrix::from_rows({{2, 0, 0},
                                                    {2, 1, 1},
                                                    {2, 1, 1}}),
                        {});
  EXPECT_FALSE(rule.semantic_issues().empty());
}

TEST(RuleSemantics, RejectsMoveFromStaticCell) {
  // Move starts at a code-1 cell.
  const MotionRule rule("r", CodeMatrix::from_rows({{2, 0, 0},
                                                    {2, 1, 3},
                                                    {2, 1, 1}}),
                        {{0, {1, 1}, {1, 2}}});
  EXPECT_FALSE(rule.semantic_issues().empty());
}

TEST(RuleSemantics, RejectsVacatedCellWithoutMove) {
  // Code 4 present but the move list does not vacate it.
  const MotionRule rule("r", CodeMatrix::from_rows({{2, 0, 3},
                                                    {2, 4, 4},
                                                    {2, 1, 1}}),
                        {{0, {1, 1}, {0, 2}}});
  EXPECT_FALSE(rule.semantic_issues().empty());
}

TEST(RuleSemantics, RejectsDiagonalMove) {
  const MotionRule rule("r", CodeMatrix::from_rows({{2, 0, 3},
                                                    {2, 4, 0},
                                                    {2, 1, 1}}),
                        {{0, {1, 1}, {0, 2}}});  // one-cell diagonal
  const auto issues = rule.semantic_issues();
  ASSERT_FALSE(issues.empty());
  EXPECT_NE(issues[0].find("rectilinear"), std::string::npos);
}

TEST(RuleSemantics, RejectsHandoverWithoutRefill) {
  // Code 5 vacated but never refilled.
  const MotionRule rule("r", CodeMatrix::from_rows({{0, 0, 0},
                                                    {2, 5, 3},
                                                    {2, 1, 2}}),
                        {{0, {1, 1}, {1, 2}}});
  EXPECT_FALSE(rule.semantic_issues().empty());
}

TEST(RuleSemantics, RejectsMoveOutsideMatrix) {
  const MotionRule rule("r", CodeMatrix::from_rows({{2, 0, 0},
                                                    {2, 4, 3},
                                                    {2, 1, 1}}),
                        {{0, {1, 1}, {1, 3}}});
  EXPECT_FALSE(rule.semantic_issues().empty());
}

// ---------------------------------------------------------------------------
// World moves
// ---------------------------------------------------------------------------

TEST(Rule, WorldMovesAnchored) {
  const auto moves = east_sliding().world_moves({5, 5});
  ASSERT_EQ(moves.size(), 1u);
  EXPECT_EQ(moves[0].first, lat::Vec2(5, 5));   // matrix center
  EXPECT_EQ(moves[0].second, lat::Vec2(6, 5));  // one cell east
}

TEST(Rule, WorldMovesOrderedByTime) {
  MotionRule rule("r",
                  CodeMatrix::from_rows({{0, 0, 0},    //
                                         {4, 5, 3},    //
                                         {2, 1, 2}}),  //
                  {{1, {1, 0}, {1, 1}}, {0, {1, 1}, {1, 2}}});
  const auto moves = rule.world_moves({0, 0});
  ASSERT_EQ(moves.size(), 2u);
  // time 0 move (center -> east) first, then the time-1 follower.
  EXPECT_EQ(moves[0].first, lat::Vec2(0, 0));
  EXPECT_EQ(moves[1].first, lat::Vec2(-1, 0));
}

TEST(Rule, CanonicalKeyIgnoresName) {
  MotionRule a = east_sliding();
  MotionRule b = east_sliding();
  b.set_name("renamed");
  EXPECT_EQ(a.canonical_key(), b.canonical_key());
  EXPECT_NE(a.canonical_key(), east_carrying().canonical_key());
}

// ---------------------------------------------------------------------------
// Transforms (paper §IV: rules derived by symmetry and rotation)
// ---------------------------------------------------------------------------

TEST(Transform, FourRotationsAreIdentity) {
  const MotionRule original = east_sliding();
  MotionRule rotated = original;
  for (int i = 0; i < 4; ++i) rotated = rotate_cw(rotated, "tmp");
  EXPECT_EQ(rotated.matrix(), original.matrix());
  EXPECT_EQ(rotated.moves(), original.moves());
}

TEST(Transform, MirrorsAreInvolutions) {
  const MotionRule original = east_carrying();
  EXPECT_EQ(mirror_vertical(mirror_vertical(original, "t"), "t").matrix(),
            original.matrix());
  EXPECT_EQ(
      mirror_horizontal(mirror_horizontal(original, "t"), "t").matrix(),
      original.matrix());
}

TEST(Transform, RotationTurnsEastIntoSouth) {
  const MotionRule rotated = rotate_cw(east_sliding(), "slide_S");
  ASSERT_EQ(rotated.moves().size(), 1u);
  const lat::Vec2 from =
      world_offset(rotated.size(), rotated.moves()[0].from);
  const lat::Vec2 to = world_offset(rotated.size(), rotated.moves()[0].to);
  EXPECT_EQ(to - from, lat::Vec2(0, -1));  // east rotated cw = south
}

TEST(Transform, VerticalMirrorMatchesPaperFig4) {
  // Fig 4: the vertical symmetry of east sliding - support moves to the
  // north row, clearance to the south row.
  const MotionRule mirrored = mirror_vertical(east_sliding(), "slide_EN");
  EXPECT_EQ(mirrored.matrix(), CodeMatrix::from_rows({{2, 1, 1},    //
                                                      {2, 4, 3},    //
                                                      {2, 0, 0}}));  //
  // The move still goes east.
  const lat::Vec2 from =
      world_offset(mirrored.size(), mirrored.moves()[0].from);
  const lat::Vec2 to = world_offset(mirrored.size(), mirrored.moves()[0].to);
  EXPECT_EQ(to - from, lat::Vec2(1, 0));
}

TEST(Transform, MatrixCoordMaps) {
  EXPECT_EQ(rotate_cw(3, MatrixCoord{0, 0}), (MatrixCoord{0, 2}));
  EXPECT_EQ(rotate_cw(3, MatrixCoord{1, 1}), (MatrixCoord{1, 1}));
  EXPECT_EQ(mirror_vertical(3, MatrixCoord{0, 1}), (MatrixCoord{2, 1}));
  EXPECT_EQ(mirror_horizontal(3, MatrixCoord{1, 0}), (MatrixCoord{1, 2}));
}

// ---------------------------------------------------------------------------
// RuleLibrary
// ---------------------------------------------------------------------------

TEST(RuleLibrary, StandardHasSixteenRules) {
  const RuleLibrary lib = RuleLibrary::standard();
  EXPECT_EQ(lib.size(), 16u);
  int slides = 0;
  int carries = 0;
  for (const MotionRule& rule : lib.rules()) {
    EXPECT_TRUE(rule.semantic_issues().empty()) << rule.name();
    if (rule.name().starts_with("slide_")) ++slides;
    if (rule.name().starts_with("carry_")) ++carries;
  }
  EXPECT_EQ(slides, 8);
  EXPECT_EQ(carries, 8);
}

TEST(RuleLibrary, AllBehavioursDistinct) {
  const RuleLibrary lib = RuleLibrary::standard();
  std::set<std::string> keys;
  for (const MotionRule& rule : lib.rules()) {
    EXPECT_TRUE(keys.insert(rule.canonical_key()).second)
        << "duplicate behaviour: " << rule.name();
  }
}

TEST(RuleLibrary, CanonicalNamesPresent) {
  const RuleLibrary lib = RuleLibrary::standard();
  for (const char* name :
       {"slide_ES", "slide_EN", "slide_NE", "slide_NW", "slide_WS",
        "slide_WN", "slide_SE", "slide_SW", "carry_ES", "carry_EN",
        "carry_NE", "carry_NW", "carry_WS", "carry_WN", "carry_SE",
        "carry_SW"}) {
    EXPECT_NE(lib.find(name), nullptr) << name;
  }
  EXPECT_EQ(lib.find("nope"), nullptr);
}

TEST(RuleLibrary, SlideESMatchesPaperEq1) {
  const RuleLibrary lib = RuleLibrary::standard();
  const MotionRule* rule = lib.find("slide_ES");
  ASSERT_NE(rule, nullptr);
  EXPECT_EQ(rule->matrix(), CodeMatrix::from_rows({{2, 0, 0},
                                                   {2, 4, 3},
                                                   {2, 1, 1}}));
}

TEST(RuleLibrary, CarryESMatchesPaperEq4) {
  const RuleLibrary lib = RuleLibrary::standard();
  const MotionRule* rule = lib.find("carry_ES");
  ASSERT_NE(rule, nullptr);
  EXPECT_EQ(rule->matrix(), CodeMatrix::from_rows({{0, 0, 0},
                                                   {4, 5, 3},
                                                   {2, 1, 2}}));
  EXPECT_EQ(rule->moves().size(), 2u);
}

TEST(RuleLibrary, SensingRadius) {
  const RuleLibrary lib = RuleLibrary::standard();
  EXPECT_EQ(lib.max_rule_size(), 3);
  EXPECT_EQ(lib.sensing_radius(), 2);
  EXPECT_EQ(RuleLibrary{}.sensing_radius(), 0);
}

TEST(RuleLibraryDeath, RejectsDuplicateName) {
  RuleLibrary lib;
  lib.add(east_sliding());
  MotionRule same_name = east_carrying();
  same_name.set_name("slide_ES");
  EXPECT_DEATH(lib.add(same_name), "duplicate rule name");
}

TEST(RuleLibraryDeath, RejectsDuplicateBehaviour) {
  RuleLibrary lib;
  lib.add(east_sliding());
  MotionRule renamed = east_sliding();
  renamed.set_name("other");
  EXPECT_DEATH(lib.add(renamed), "duplicates the behaviour");
}

TEST(RuleLibraryDeath, RejectsMalformedRule) {
  RuleLibrary lib;
  const MotionRule bad("bad", CodeMatrix::from_rows({{2, 0, 0},
                                                     {2, 4, 3},
                                                     {2, 1, 1}}),
                       {});
  EXPECT_DEATH(lib.add(bad), "malformed");
}

}  // namespace
}  // namespace sb::motion
