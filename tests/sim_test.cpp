// Tests for the discrete-event simulator: queues, scheduling, messaging,
// motion execution, neighbor-change notifications, determinism.

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"

namespace sb::sim {
namespace {

using lat::BlockId;
using lat::Direction;
using lat::Vec2;

// ---------------------------------------------------------------------------
// Event queues
// ---------------------------------------------------------------------------

class ProbeEvent final : public Event {
 public:
  ProbeEvent(SimTime time, int label, std::vector<int>* sink)
      : Event(time), label_(label), sink_(sink) {}
  [[nodiscard]] std::string_view kind() const override { return "Probe"; }
  void execute(Simulator&) override { sink_->push_back(label_); }
  [[nodiscard]] int label() const { return label_; }

 private:
  int label_;
  std::vector<int>* sink_;
};

class QueueKindsTest : public ::testing::TestWithParam<QueueKind> {};

/// Wraps a ProbeEvent (label carrier) into a by-value record.
EventRecord probe(SimTime time, int label, std::vector<int>* sink) {
  return EventRecord::wrap(time,
                           std::make_unique<ProbeEvent>(time, label, sink));
}

int label_of(const EventRecord& record) {
  return static_cast<const ProbeEvent*>(record.external.get())->label();
}

TEST_P(QueueKindsTest, PopsInTimeOrder) {
  auto queue = make_event_queue(GetParam());
  std::vector<int> sink;
  queue->push(probe(30, 3, &sink));
  queue->push(probe(10, 1, &sink));
  queue->push(probe(20, 2, &sink));
  EXPECT_EQ(queue->size(), 3u);
  EXPECT_EQ(queue->pop().time, 10u);
  EXPECT_EQ(queue->pop().time, 20u);
  EXPECT_EQ(queue->pop().time, 30u);
  EXPECT_TRUE(queue->empty());
}

TEST_P(QueueKindsTest, TiesBreakByInsertionOrder) {
  auto queue = make_event_queue(GetParam());
  std::vector<int> sink;
  for (int i = 0; i < 10; ++i) {
    queue->push(probe(5, i, &sink));
  }
  for (int i = 0; i < 10; ++i) {
    const EventRecord record = queue->pop();
    EXPECT_EQ(label_of(record), i);
  }
}

TEST_P(QueueKindsTest, MixedRecordKindsOrderByTimeThenInsertion) {
  auto queue = make_event_queue(GetParam());
  std::vector<int> sink;
  queue->push(EventRecord::timer(5, lat::BlockId{1}, 42));
  queue->push(probe(5, 1, &sink));
  queue->push(EventRecord::start(2, lat::BlockId{1}));
  EXPECT_EQ(queue->pop().kind, EventKind::kStart);
  EXPECT_EQ(queue->pop().kind, EventKind::kTimer);  // same time, pushed first
  EXPECT_EQ(queue->pop().kind, EventKind::kExternal);
}

TEST_P(QueueKindsTest, PeekDoesNotRemove) {
  auto queue = make_event_queue(GetParam());
  std::vector<int> sink;
  EXPECT_EQ(queue->peek(), nullptr);
  queue->push(probe(7, 0, &sink));
  ASSERT_NE(queue->peek(), nullptr);
  EXPECT_EQ(queue->peek()->time, 7u);
  EXPECT_EQ(queue->size(), 1u);
}

TEST_P(QueueKindsTest, InterleavedPushPop) {
  auto queue = make_event_queue(GetParam());
  std::vector<int> sink;
  queue->push(probe(10, 1, &sink));
  queue->push(probe(5, 0, &sink));
  EXPECT_EQ(queue->pop().time, 5u);
  queue->push(probe(3, 2, &sink));  // earlier again
  EXPECT_EQ(queue->pop().time, 3u);
  EXPECT_EQ(queue->pop().time, 10u);
}

INSTANTIATE_TEST_SUITE_P(AllQueues, QueueKindsTest,
                         ::testing::Values(QueueKind::kBinaryHeap,
                                           QueueKind::kBucketMap),
                         [](const auto& param_info) {
                           return param_info.param == QueueKind::kBinaryHeap
                                      ? "BinaryHeap"
                                      : "BucketMap";
                         });

// ---------------------------------------------------------------------------
// Calendar-queue ring horizon
//
// The bucket queue keeps a kRingSize-tick ring for the near future and
// spills later timestamps into an ordered overflow map. The boundary —
// events landing exactly on cursor + kRingSize — is where a push must
// spill, and where overflow buckets must migrate back as the cursor
// advances. Pop order must match the binary heap bit for bit either way.
// ---------------------------------------------------------------------------

TEST(BucketMapRing, PushExactlyOnHorizonSpillsAndPopsInOrder) {
  constexpr SimTime kHorizon = BucketMapEventQueue::kRingSize;  // cursor = 0
  BucketMapEventQueue queue;
  std::vector<int> sink;
  queue.push(probe(kHorizon, 2, &sink));      // first tick beyond the ring
  queue.push(probe(kHorizon - 1, 1, &sink));  // last in-ring tick
  queue.push(probe(kHorizon + 1, 3, &sink));  // deeper overflow
  queue.push(probe(0, 0, &sink));
  ASSERT_EQ(queue.size(), 4u);
  EXPECT_EQ(label_of(queue.pop()), 0);
  EXPECT_EQ(label_of(queue.pop()), 1);
  // Popping t = kHorizon - 1 moved the cursor; the horizon events migrate
  // into the ring and pop in (time, seq) order.
  EXPECT_EQ(label_of(queue.pop()), 2);
  EXPECT_EQ(label_of(queue.pop()), 3);
  EXPECT_TRUE(queue.empty());
}

TEST(BucketMapRing, SameTickSplitAcrossRingAndOverflowKeepsSeqOrder) {
  constexpr SimTime kHorizon = BucketMapEventQueue::kRingSize;
  BucketMapEventQueue queue;
  std::vector<int> sink;
  // Same future timestamp, pushed while it is beyond the horizon...
  queue.push(probe(kHorizon, 0, &sink));
  queue.push(probe(kHorizon, 1, &sink));
  // ...then the cursor advances (pop at t=1) so kHorizon enters the ring
  // window, and two more records for the same tick land in the ring.
  queue.push(probe(1, 99, &sink));
  EXPECT_EQ(label_of(queue.pop()), 99);
  queue.push(probe(kHorizon, 2, &sink));
  queue.push(probe(kHorizon, 3, &sink));
  for (int expected = 0; expected < 4; ++expected) {
    const EventRecord record = queue.pop();
    EXPECT_EQ(record.time, kHorizon);
    EXPECT_EQ(label_of(record), expected) << "seq order broken at horizon";
  }
  EXPECT_TRUE(queue.empty());
}

TEST(BucketMapRing, MatchesBinaryHeapAcrossHorizonBoundary) {
  // Randomized cross-check hammering timestamps around multiples of the
  // ring span: both queues must pop the identical (time, label) sequence.
  constexpr SimTime kHorizon = BucketMapEventQueue::kRingSize;
  BinaryHeapEventQueue heap;
  BucketMapEventQueue calendar;
  std::vector<int> sink;
  Rng rng(0xCA1E17DA);
  int label = 0;
  SimTime base = 0;
  for (int burst = 0; burst < 64; ++burst) {
    const int pushes = static_cast<int>(rng.next_below(6)) + 1;
    for (int i = 0; i < pushes; ++i) {
      // Cluster around the horizon: offsets in [kHorizon - 2, kHorizon + 2].
      const SimTime offset =
          kHorizon - 2 + static_cast<SimTime>(rng.next_below(5));
      heap.push(probe(base + offset, label, &sink));
      calendar.push(probe(base + offset, label, &sink));
      ++label;
    }
    const int pops = static_cast<int>(rng.next_below(3));
    for (int i = 0; i < pops && !heap.empty(); ++i) {
      const EventRecord a = heap.pop();
      const EventRecord b = calendar.pop();
      ASSERT_EQ(a.time, b.time);
      ASSERT_EQ(label_of(a), label_of(b));
      base = a.time;  // simulated time advances with the pops
    }
  }
  while (!heap.empty()) {
    const EventRecord a = heap.pop();
    const EventRecord b = calendar.pop();
    ASSERT_EQ(a.time, b.time);
    ASSERT_EQ(label_of(a), label_of(b));
  }
  EXPECT_TRUE(calendar.empty());
}

struct ExtractProbeMsg final : msg::Message {
  [[nodiscard]] std::string_view kind() const override { return "Extract"; }
  [[nodiscard]] msg::MessagePtr clone() const override {
    return std::make_unique<ExtractProbeMsg>(*this);
  }
};

TEST_P(QueueKindsTest, ExtractForPullsTargetedEventsInOrder) {
  auto queue = make_event_queue(GetParam());
  const lat::BlockId mover{7};
  const lat::BlockId other{9};
  queue->push(EventRecord::timer(12, mover, 1));
  queue->push(EventRecord::timer(5, other, 2));
  queue->push(EventRecord::start(3, mover));
  queue->push(EventRecord::delivery(
      9, other, mover, std::make_unique<ExtractProbeMsg>(), 0));
  queue->push(EventRecord::delivery(
      6, mover, other, std::make_unique<ExtractProbeMsg>(),
      0));  // mover is sender
  // Beyond the bucket queue's ring horizon, so extraction sweeps overflow.
  queue->push(
      EventRecord::timer(BucketMapEventQueue::kRingSize + 40, mover, 3));

  std::vector<EventRecord> extracted;
  queue->extract_for(mover, extracted);
  ASSERT_EQ(extracted.size(), 4u);
  EXPECT_EQ(extracted[0].kind, EventKind::kStart);
  EXPECT_EQ(extracted[1].time, 9u);  // delivery addressed *to* the mover
  EXPECT_EQ(extracted[2].time, 12u);
  EXPECT_EQ(extracted[3].time, BucketMapEventQueue::kRingSize + 40);

  // Survivors: other's timer, the delivery mover sent to other.
  EXPECT_EQ(queue->size(), 2u);
  EXPECT_EQ(queue->pop().time, 5u);
  EXPECT_EQ(queue->pop().time, 6u);
  EXPECT_TRUE(queue->empty());
}

TEST_P(QueueKindsTest, ExtractForDropsEmptiedOverflowBuckets) {
  // Regression: extracting the only record of a beyond-horizon bucket left
  // a drained bucket behind, and the bucket queue's pop() fall-through —
  // which trusts the earliest overflow bucket to hold a live record —
  // migrated it into the ring and read past its end.
  auto queue = make_event_queue(GetParam());
  const SimTime far = BucketMapEventQueue::kRingSize + 50;
  queue->push(EventRecord::timer(far, lat::BlockId{7}, 1));
  queue->push(EventRecord::timer(far + 3, lat::BlockId{9}, 2));

  std::vector<EventRecord> extracted;
  queue->extract_for(lat::BlockId{7}, extracted);
  ASSERT_EQ(extracted.size(), 1u);
  EXPECT_EQ(extracted[0].time, far);

  ASSERT_EQ(queue->peek() != nullptr, true);
  EXPECT_EQ(queue->peek()->time, far + 3);
  EXPECT_EQ(queue->pop().time, far + 3);
  EXPECT_TRUE(queue->empty());
}

// ---------------------------------------------------------------------------
// Test module
// ---------------------------------------------------------------------------

struct PingMsg final : msg::Message {
  int hops = 0;
  [[nodiscard]] std::string_view kind() const override { return "Ping"; }
  [[nodiscard]] msg::MessagePtr clone() const override {
    return std::make_unique<PingMsg>(*this);
  }
  [[nodiscard]] size_t payload_bytes() const override { return sizeof(hops); }
};

/// Records everything that happens to it; can be told to forward pings.
class RecorderModule final : public Module {
 public:
  explicit RecorderModule(BlockId id, bool forward = false)
      : Module(id), forward_(forward) {}

  void on_start() override { ++starts; }
  void on_message(Direction from, const msg::Message& m) override {
    received.emplace_back(from, std::string(m.kind()));
    if (forward_) {
      if (const auto* ping = dynamic_cast<const PingMsg*>(&m)) {
        if (ping->hops > 0) {
          auto next = std::make_unique<PingMsg>(*ping);
          next->hops -= 1;
          send(opposite(from), std::move(next));
        }
      }
    }
  }
  void on_timer(uint64_t tag) override { timer_tags.push_back(tag); }
  void on_motion_complete() override { ++motions; }
  void on_neighbor_change(Direction side, BlockId now) override {
    neighbor_changes.emplace_back(side, now);
  }

  int starts = 0;
  int motions = 0;
  std::vector<std::pair<Direction, std::string>> received;
  std::vector<uint64_t> timer_tags;
  std::vector<std::pair<Direction, BlockId>> neighbor_changes;

 private:
  bool forward_;
};

World make_world(std::initializer_list<Vec2> cells, int32_t w = 8,
                 int32_t h = 8) {
  World world(w, h, motion::RuleLibrary::standard());
  uint32_t id = 1;
  for (const Vec2 cell : cells) world.grid().place(BlockId{id++}, cell);
  return world;
}

/// Schedules a single send from a module at t=0.
class SendAtStart final : public Event {
 public:
  SendAtStart(Module* module, Direction side, int hops = 0)
      : Event(0), module_(module), side_(side), hops_(hops) {}
  [[nodiscard]] std::string_view kind() const override { return "Kick"; }
  void execute(Simulator& sim) override {
    auto ping = std::make_unique<PingMsg>();
    ping->hops = hops_;
    sim.send_from(*module_, side_, std::move(ping));
  }

 private:
  Module* module_;
  Direction side_;
  int hops_;
};

// ---------------------------------------------------------------------------
// Simulator basics
// ---------------------------------------------------------------------------

TEST(Simulator, StartsAllModules) {
  Simulator sim(make_world({{1, 1}, {2, 1}}));
  auto& a = static_cast<RecorderModule&>(
      sim.add_module(std::make_unique<RecorderModule>(BlockId{1})));
  auto& b = static_cast<RecorderModule&>(
      sim.add_module(std::make_unique<RecorderModule>(BlockId{2})));
  sim.start_all_modules();
  EXPECT_EQ(sim.run(), StopReason::kQueueEmpty);
  EXPECT_EQ(a.starts, 1);
  EXPECT_EQ(b.starts, 1);
  EXPECT_EQ(sim.stats().events_processed, 2u);
}

TEST(Simulator, NeighborTableInitializedFromGrid) {
  Simulator sim(make_world({{1, 1}, {2, 1}, {1, 2}}));
  auto& a = sim.add_module(std::make_unique<RecorderModule>(BlockId{1}));
  EXPECT_EQ(a.neighbor_table().neighbor(Direction::kEast), BlockId{2});
  EXPECT_EQ(a.neighbor_table().neighbor(Direction::kNorth), BlockId{3});
  EXPECT_EQ(a.neighbor_table().neighbor(Direction::kSouth),
            lat::kInvalidBlock);
  EXPECT_EQ(a.neighbor_table().attached_count(), 2);
}

TEST(Simulator, MessageDeliveryWithFixedLatency) {
  SimConfig config;
  config.latency = msg::LatencyModel::fixed(5);
  Simulator sim(make_world({{1, 1}, {2, 1}}), config);
  auto& a = static_cast<RecorderModule&>(
      sim.add_module(std::make_unique<RecorderModule>(BlockId{1})));
  auto& b = static_cast<RecorderModule&>(
      sim.add_module(std::make_unique<RecorderModule>(BlockId{2})));

  sim.schedule(0, std::make_unique<SendAtStart>(&a, Direction::kEast));
  EXPECT_EQ(sim.run(), StopReason::kQueueEmpty);
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(b.received[0].first, Direction::kWest);  // arrived on west port
  EXPECT_EQ(sim.now(), 5u);                          // latency respected
  EXPECT_EQ(sim.stats().messages_sent, 1u);
  EXPECT_EQ(sim.stats().messages_delivered, 1u);
  EXPECT_EQ(b.mailbox().side(Direction::kWest).messages_received, 1u);
  EXPECT_EQ(a.mailbox().side(Direction::kEast).messages_sent, 1u);
  EXPECT_EQ(b.mailbox().side(Direction::kWest).bytes_received,
            sizeof(int));
}

TEST(Simulator, SendWithoutNeighborIsDropped) {
  Simulator sim(make_world({{1, 1}, {2, 1}}));
  auto& a = sim.add_module(std::make_unique<RecorderModule>(BlockId{1}));
  sim.add_module(std::make_unique<RecorderModule>(BlockId{2}));
  sim.schedule(0, std::make_unique<SendAtStart>(&a, Direction::kNorth));
  sim.run();
  EXPECT_EQ(sim.stats().messages_dropped, 1u);
  EXPECT_EQ(sim.stats().messages_delivered, 0u);
  EXPECT_EQ(a.mailbox().total_dropped(), 1u);
}

TEST(Simulator, PingChainTraversesRow) {
  // Five modules in a row; a ping forwarded with hops=3 crosses 4 links.
  SimConfig config;
  config.latency = msg::LatencyModel::fixed(2);
  Simulator sim(make_world({{0, 0}, {1, 0}, {2, 0}, {3, 0}, {4, 0}}),
                config);
  std::vector<RecorderModule*> modules;
  for (uint32_t id = 1; id <= 5; ++id) {
    modules.push_back(static_cast<RecorderModule*>(&sim.add_module(
        std::make_unique<RecorderModule>(BlockId{id}, /*forward=*/true))));
  }
  sim.schedule(
      0, std::make_unique<SendAtStart>(modules[0], Direction::kEast, 3));
  sim.run();
  EXPECT_EQ(modules[1]->received.size(), 1u);
  EXPECT_EQ(modules[2]->received.size(), 1u);
  EXPECT_EQ(modules[3]->received.size(), 1u);
  EXPECT_EQ(modules[4]->received.size(), 1u);
  EXPECT_EQ(sim.now(), 8u);  // 4 links x 2 ticks
  EXPECT_EQ(sim.stats().messages_by_kind.at("Ping"), 4u);
}

TEST(Simulator, TimersFireWithTags) {
  Simulator sim(make_world({{1, 1}, {2, 1}}));
  auto& a = static_cast<RecorderModule&>(
      sim.add_module(std::make_unique<RecorderModule>(BlockId{1})));
  sim.timer_for(a, 10, 42);
  sim.timer_for(a, 5, 7);
  sim.run();
  ASSERT_EQ(a.timer_tags.size(), 2u);
  EXPECT_EQ(a.timer_tags[0], 7u);  // earlier timer first
  EXPECT_EQ(a.timer_tags[1], 42u);
  EXPECT_EQ(sim.now(), 10u);
}

TEST(Simulator, RunLimits) {
  Simulator sim(make_world({{1, 1}, {2, 1}}));
  auto& a = static_cast<RecorderModule&>(
      sim.add_module(std::make_unique<RecorderModule>(BlockId{1})));
  for (int i = 0; i < 10; ++i) {
    sim.timer_for(a, static_cast<Ticks>(i + 1), 0);
  }
  RunLimits limits;
  limits.max_events = 3;
  EXPECT_EQ(sim.run(limits), StopReason::kEventLimit);
  EXPECT_EQ(a.timer_tags.size(), 3u);

  RunLimits time_limit;
  time_limit.until = 6;
  EXPECT_EQ(sim.run(time_limit), StopReason::kTimeLimit);
  EXPECT_EQ(sim.now(), 6u);
}

TEST(Simulator, HaltStopsRun) {
  Simulator sim(make_world({{1, 1}, {2, 1}}));
  auto& a = sim.add_module(std::make_unique<RecorderModule>(BlockId{1}));
  class Halter final : public Event {
   public:
    Halter() : Event(3) {}
    [[nodiscard]] std::string_view kind() const override { return "Halt"; }
    void execute(Simulator& sim) override { sim.halt(); }
  };
  sim.timer_for(a, 100, 0);
  sim.schedule(3, std::make_unique<Halter>());
  EXPECT_EQ(sim.run(), StopReason::kHalted);
  EXPECT_EQ(sim.pending_events(), 1u);  // the far timer still queued
}

TEST(Simulator, ModuleLookup) {
  Simulator sim(make_world({{1, 1}, {2, 1}}));
  sim.add_module(std::make_unique<RecorderModule>(BlockId{1}));
  EXPECT_NE(sim.find_module(BlockId{1}), nullptr);
  EXPECT_EQ(sim.find_module(BlockId{9}), nullptr);
  EXPECT_EQ(sim.module_count(), 1u);
  EXPECT_EQ(sim.module_as<RecorderModule>(BlockId{1}).id(), BlockId{1});
}

TEST(SimulatorDeath, ModuleWithoutGridBlockAborts) {
  Simulator sim(make_world({{1, 1}}));
  EXPECT_DEATH(sim.add_module(std::make_unique<RecorderModule>(BlockId{9})),
               "placed on the grid");
}

// ---------------------------------------------------------------------------
// Motion through the simulator
// ---------------------------------------------------------------------------

TEST(Simulator, MotionCompletesAndNotifies) {
  SimConfig config;
  config.motion_duration = 7;
  // slide_ES setup: mover (1,1) over supports (1,0),(2,0).
  Simulator sim(make_world({{1, 1}, {1, 0}, {2, 0}}), config);
  auto& mover = static_cast<RecorderModule&>(
      sim.add_module(std::make_unique<RecorderModule>(BlockId{1})));
  auto& support_a = static_cast<RecorderModule&>(
      sim.add_module(std::make_unique<RecorderModule>(BlockId{2})));
  auto& support_b = static_cast<RecorderModule&>(
      sim.add_module(std::make_unique<RecorderModule>(BlockId{3})));

  const motion::MotionRule* rule = sim.world().rules().find("slide_ES");
  motion::RuleApplication app{rule, {1, 1}, 0};
  sim.start_motion_for(mover, app);
  sim.run();

  EXPECT_EQ(sim.world().grid().at({2, 1}), BlockId{1});
  EXPECT_EQ(mover.motions, 1);
  EXPECT_EQ(sim.now(), 7u);
  EXPECT_EQ(sim.stats().motions_completed, 1u);
  EXPECT_EQ(sim.world().elementary_moves(), 1u);

  // Neighbor updates: support (1,0) lost its north neighbor; support (2,0)
  // gained one; the mover's own table moved with it.
  ASSERT_FALSE(support_a.neighbor_changes.empty());
  EXPECT_EQ(support_a.neighbor_table().neighbor(Direction::kNorth),
            lat::kInvalidBlock);
  EXPECT_EQ(support_b.neighbor_table().neighbor(Direction::kNorth),
            BlockId{1});
  EXPECT_EQ(mover.neighbor_table().neighbor(Direction::kSouth), BlockId{3});
}

TEST(Simulator, InvalidMotionIsRejectedNotStarted) {
  // A physically impossible request is rejected gracefully (the world can
  // change between sensing and election under external churn), not aborted:
  // the mover stays put and the rejection is counted.
  Simulator sim(make_world({{1, 1}, {2, 1}}));
  auto& mover = sim.add_module(std::make_unique<RecorderModule>(BlockId{1}));
  const motion::MotionRule* rule = sim.world().rules().find("slide_ES");
  motion::RuleApplication app{rule, {1, 1}, 0};  // no supports -> invalid
  sim.start_motion_for(mover, app);
  EXPECT_EQ(sim.stats().motions_started, 0u);
  EXPECT_EQ(sim.stats().motions_rejected, 1u);
  EXPECT_TRUE(sim.world().grid().occupied({1, 1}));  // did not move
}

TEST(Simulator, KilledModuleReceivesNothing) {
  Simulator sim(make_world({{1, 1}, {2, 1}}));
  auto& a = sim.add_module(std::make_unique<RecorderModule>(BlockId{1}));
  auto& b = static_cast<RecorderModule&>(
      sim.add_module(std::make_unique<RecorderModule>(BlockId{2})));
  sim.kill_module(BlockId{2});
  sim.schedule(0, std::make_unique<SendAtStart>(&a, Direction::kEast));
  sim.run();
  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(sim.stats().messages_dropped, 1u);
}

// ---------------------------------------------------------------------------
// Sensing
// ---------------------------------------------------------------------------

TEST(World, SenseCapturesWindow) {
  const World world = make_world({{2, 2}, {3, 2}, {2, 3}});
  const lat::Neighborhood window = world.sense({2, 2});
  EXPECT_EQ(window.radius(), 2);  // rule size 3 -> radius 2
  EXPECT_TRUE(window.occupied({3, 2}));
  EXPECT_TRUE(window.occupied({2, 3}));
  EXPECT_FALSE(window.occupied({4, 2}));
  EXPECT_FALSE(window.occupied({0, 0}));
  EXPECT_FALSE(window.in_bounds({-1, 2}));
}

// ---------------------------------------------------------------------------
// Determinism & latency models
// ---------------------------------------------------------------------------

TEST(Latency, ModelsRespectBounds) {
  Rng rng(1);
  const auto fixed = msg::LatencyModel::fixed(4);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(fixed.sample(rng), 4u);

  const auto uniform = msg::LatencyModel::uniform(2, 9);
  for (int i = 0; i < 1000; ++i) {
    const Ticks t = uniform.sample(rng);
    EXPECT_GE(t, 2u);
    EXPECT_LE(t, 9u);
  }

  const auto expo = msg::LatencyModel::exponential(6.0);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) {
    const Ticks t = expo.sample(rng);
    EXPECT_GE(t, 1u);
    sum += static_cast<double>(t);
  }
  EXPECT_NEAR(sum / 20000.0, 6.0, 0.5);
}

TEST(Latency, DescribeNamesModel) {
  EXPECT_EQ(msg::LatencyModel::fixed(3).describe(), "fixed(3)");
  EXPECT_EQ(msg::LatencyModel::uniform(1, 5).describe(), "uniform(1,5)");
  EXPECT_NE(
      msg::LatencyModel::exponential(2.0).describe().find("exponential"),
      std::string::npos);
}

TEST(Simulator, SameSeedSameTrajectory) {
  const auto run_once = [](uint64_t seed) {
    SimConfig config;
    config.seed = seed;
    config.latency = msg::LatencyModel::uniform(1, 9);
    Simulator sim(make_world({{0, 0}, {1, 0}, {2, 0}}), config);
    std::vector<RecorderModule*> modules;
    for (uint32_t id = 1; id <= 3; ++id) {
      modules.push_back(static_cast<RecorderModule*>(&sim.add_module(
          std::make_unique<RecorderModule>(BlockId{id}, true))));
    }
    sim.schedule(
        0, std::make_unique<SendAtStart>(modules[0], Direction::kEast, 5));
    sim.run();
    return sim.now();
  };
  EXPECT_EQ(run_once(123), run_once(123));
  // Different seeds should (almost surely) give different random latencies.
  EXPECT_NE(run_once(123), run_once(456));
}

TEST(Simulator, StopReasonNames) {
  EXPECT_EQ(to_string(StopReason::kQueueEmpty), "queue-empty");
  EXPECT_EQ(to_string(StopReason::kEventLimit), "event-limit");
  EXPECT_EQ(to_string(StopReason::kTimeLimit), "time-limit");
  EXPECT_EQ(to_string(StopReason::kHalted), "halted");
}

}  // namespace
}  // namespace sb::sim
