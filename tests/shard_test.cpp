// Tests for the sharded world: ShardMap geometry, the windowed sharded
// schedule (sim/simulator_sharded.cpp), cross-shard messaging, event
// re-homing on stripe migration, and the determinism contract — event and
// move traces byte-identical across shard-thread counts (the sharded
// counterpart of runner_test's sweep determinism).

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <string>
#include <vector>

#include "check/oracle.hpp"
#include "core/reconfig.hpp"
#include "lattice/scenario.hpp"
#include "lattice/shard.hpp"
#include "sim/shard.hpp"
#include "util/fmt.hpp"

namespace sb {
namespace {

// ---------------------------------------------------------------------------
// ShardMap geometry
// ---------------------------------------------------------------------------

TEST(ShardMap, SplitsWidthIntoStripes) {
  const lat::ShardMap map(8, 4);
  EXPECT_EQ(map.count(), 4u);
  EXPECT_EQ(map.stripe_width(), 2);
  EXPECT_EQ(map.shard_of({0, 5}), 0u);
  EXPECT_EQ(map.shard_of({1, 0}), 0u);
  EXPECT_EQ(map.shard_of({2, 0}), 1u);
  EXPECT_EQ(map.shard_of({7, 3}), 3u);
  EXPECT_EQ(map.first_column(2), 4);
}

TEST(ShardMap, RoundsStripeWidthUp) {
  // 10 columns over 4 shards: stripes of 3 columns; the last holds one.
  const lat::ShardMap map(10, 4);
  EXPECT_EQ(map.count(), 4u);
  EXPECT_EQ(map.stripe_width(), 3);
  EXPECT_EQ(map.shard_of({8, 0}), 2u);
  EXPECT_EQ(map.shard_of({9, 0}), 3u);
}

TEST(ShardMap, NeverCreatesEmptyTrailingStripes) {
  // Width 10 over 8 requested shards: ceil-rounded stripes of 2 columns
  // cover the surface with 5 stripes; the count must say 5, not 8.
  const lat::ShardMap map(10, 8);
  EXPECT_EQ(map.stripe_width(), 2);
  EXPECT_EQ(map.count(), 5u);
  EXPECT_EQ(map.shard_of({9, 0}), map.count() - 1);
  // Every shard owns at least one column.
  for (size_t shard = 0; shard < map.count(); ++shard) {
    EXPECT_LT(map.first_column(shard), 10);
  }
}

TEST(ShardMap, ClampsCountToWidth) {
  const lat::ShardMap map(3, 16);
  EXPECT_EQ(map.count(), 3u);
  EXPECT_EQ(map.stripe_width(), 1);
  EXPECT_EQ(map.shard_of({2, 0}), 2u);
}

TEST(ShardMap, SingleShardOwnsEverything) {
  const lat::ShardMap map(64, 1);
  EXPECT_EQ(map.count(), 1u);
  EXPECT_EQ(map.shard_of({0, 0}), 0u);
  EXPECT_EQ(map.shard_of({63, 9}), 0u);
}

// ---------------------------------------------------------------------------
// Sharded sessions: correctness and determinism
// ---------------------------------------------------------------------------

struct SessionRun {
  core::SessionResult result;
  std::vector<std::string> move_trace;
  std::vector<std::vector<std::string>> event_trace;
  /// Invariant-oracle verdict for the run (src/check/oracle.hpp): every
  /// e2e session below must finish with an empty list.
  std::vector<std::string> violations;
};

SessionRun run_session(const lat::Scenario& scenario,
                       core::SessionConfig config, size_t shards,
                       size_t shard_threads) {
  config.sim.shards = shards;
  config.sim.shard_threads = shard_threads;
  core::ReconfigurationSession session(scenario, config);
  SessionRun run;
  check::InvariantOracle oracle;
  oracle.attach(session, [&run](core::Epoch epoch, lat::BlockId block,
                                const motion::RuleApplication& app) {
    run.move_trace.push_back(fmt("{} {} {}", epoch, block, app.describe()));
  });
  session.simulator().enable_event_trace();
  run.result = session.run();
  run.event_trace = session.simulator().event_trace();
  oracle.check_now(session.simulator());
  run.violations = oracle.violations();
  return run;
}

/// gtest-friendly wrapper: prints the first violation on failure.
testing::AssertionResult oracle_clean(const SessionRun& run) {
  if (run.violations.empty()) return testing::AssertionSuccess();
  return testing::AssertionFailure()
         << run.violations.size() << " invariant violations, first: "
         << run.violations.front();
}

core::SessionConfig jittery_config() {
  core::SessionConfig config;
  config.sim.latency = msg::LatencyModel::uniform(1, 8);
  return config;
}

// The tentpole determinism property: for a fixed shard count, event and
// move traces are byte-identical whether windows drain on 1 thread or many.
TEST(ShardedDeterminism, TracesIdenticalAcrossThreadCountsTower16) {
  const lat::Scenario scenario = lat::make_tower_scenario(8);
  const SessionRun serial = run_session(scenario, {}, 3, 1);
  const SessionRun parallel = run_session(scenario, {}, 3, 4);
  const SessionRun two = run_session(scenario, {}, 3, 2);

  ASSERT_TRUE(serial.result.complete);
  ASSERT_FALSE(serial.move_trace.empty());
  EXPECT_TRUE(oracle_clean(serial));
  EXPECT_TRUE(oracle_clean(parallel));
  EXPECT_EQ(serial.event_trace, parallel.event_trace);
  EXPECT_EQ(serial.event_trace, two.event_trace);
  EXPECT_EQ(serial.move_trace, parallel.move_trace);
  EXPECT_EQ(serial.result.events_processed, parallel.result.events_processed);
  EXPECT_EQ(serial.result.sim_ticks, parallel.result.sim_ticks);
  EXPECT_EQ(serial.result.shard_events, parallel.result.shard_events);
}

TEST(ShardedDeterminism, TracesIdenticalAcrossThreadCountsFig10) {
  const lat::Scenario scenario = lat::make_fig10_scenario();
  const SessionRun serial = run_session(scenario, {}, 3, 1);
  const SessionRun parallel = run_session(scenario, {}, 3, 4);

  ASSERT_TRUE(serial.result.complete);
  EXPECT_EQ(serial.event_trace, parallel.event_trace);
  EXPECT_EQ(serial.move_trace, parallel.move_trace);
  EXPECT_EQ(serial.result.events_processed, parallel.result.events_processed);
}

// Randomized latency exercises the per-shard RNG streams: draws must land
// identically regardless of which OS thread executes a shard's window.
TEST(ShardedDeterminism, JitteryLatencyStableAcrossThreads) {
  const lat::Scenario scenario = lat::make_tower_scenario(8);
  const SessionRun serial = run_session(scenario, jittery_config(), 3, 1);
  const SessionRun parallel = run_session(scenario, jittery_config(), 3, 4);

  ASSERT_TRUE(serial.result.complete);
  EXPECT_EQ(serial.event_trace, parallel.event_trace);
  EXPECT_EQ(serial.move_trace, parallel.move_trace);
}

// A link latency longer than the motion duration must not let a window
// straddle a motion landing: the lookahead is min(latency, motion
// duration), so motions requested inside a window always land beyond its
// horizon (regression: with lookahead = 20 > motion_duration = 10, shards
// kept draining past the landing tick against the pre-move grid).
TEST(ShardedDeterminism, SlowLinksStayBehindMotionLandings) {
  core::SessionConfig config;
  config.sim.latency = msg::LatencyModel::fixed(20);
  const lat::Scenario scenario = lat::make_tower_scenario(8);
  const SessionRun classic = run_session(scenario, config, 1, 1);
  const SessionRun serial = run_session(scenario, config, 3, 1);
  const SessionRun parallel = run_session(scenario, config, 3, 4);

  ASSERT_TRUE(classic.result.complete);
  ASSERT_TRUE(serial.result.complete);
  EXPECT_EQ(serial.event_trace, parallel.event_trace);
  EXPECT_EQ(serial.result.hops, classic.result.hops);
  EXPECT_EQ(serial.move_trace, classic.move_trace);
}

// shards = 1 must stay the classic engine: byte-identical to a default
// configuration, single trace stream.
TEST(ShardedDeterminism, SingleShardReducesToClassicSchedule) {
  const lat::Scenario scenario = lat::make_tower_scenario(8);
  const SessionRun classic = run_session(scenario, {}, 1, 1);
  const SessionRun classic_threaded = run_session(scenario, {}, 1, 8);

  ASSERT_TRUE(classic.result.complete);
  EXPECT_EQ(classic.result.shards, 1u);
  EXPECT_TRUE(classic.result.shard_events.empty());
  ASSERT_EQ(classic.event_trace.size(), 1u);
  EXPECT_EQ(classic.event_trace, classic_threaded.event_trace);
}

// One-column-per-stripe sharding maximizes cross-shard traffic and makes
// every horizontal hop a migration — the re-homing path gets no mercy.
TEST(ShardedSession, MaximallyShardedTowerCompletes) {
  const lat::Scenario scenario = lat::make_tower_scenario(8);
  const SessionRun classic = run_session(scenario, {}, 1, 1);
  const SessionRun sharded =
      run_session(scenario, {}, static_cast<size_t>(scenario.width), 2);

  ASSERT_TRUE(sharded.result.complete);
  EXPECT_TRUE(oracle_clean(sharded));
  EXPECT_GT(sharded.result.shards, 2u);
  // The distributed algorithm's outcome metrics are schedule-independent.
  EXPECT_EQ(sharded.result.hops, classic.result.hops);
  EXPECT_EQ(sharded.result.elementary_moves, classic.result.elementary_moves);
  EXPECT_EQ(sharded.result.path, classic.result.path);
}

// Fault-mode timers (ack_timeout) ride the shard queues; a sharded world
// with timers must still terminate and stay thread-count deterministic.
TEST(ShardedSession, FaultModeTimersStayDeterministic) {
  core::SessionConfig config;
  config.ack_timeout = 64;
  const lat::Scenario scenario = lat::make_tower_scenario(8);
  const SessionRun serial = run_session(scenario, config, 3, 1);
  const SessionRun parallel = run_session(scenario, config, 3, 3);

  ASSERT_TRUE(serial.result.complete);
  EXPECT_TRUE(oracle_clean(serial));
  EXPECT_TRUE(oracle_clean(parallel));
  EXPECT_EQ(serial.event_trace, parallel.event_trace);
}

// Per-shard counters merge into the session totals: the by-kind map sums
// to the scalar, and per-shard event counts sum to the processed total
// minus the sequential (grid-mutating) steps.
TEST(ShardedSession, PerShardCountersMergeIntoTotals) {
  const lat::Scenario scenario = lat::make_tower_scenario(8);
  const SessionRun run = run_session(scenario, {}, 3, 2);

  ASSERT_TRUE(run.result.complete);
  EXPECT_EQ(run.result.shards, 3u);
  ASSERT_EQ(run.result.shard_events.size(), 3u);

  uint64_t by_kind = 0;
  for (const auto& [kind, count] : run.result.messages_by_kind) {
    by_kind += count;
  }
  EXPECT_EQ(by_kind, run.result.messages_sent);

  const uint64_t shard_sum =
      std::accumulate(run.result.shard_events.begin(),
                      run.result.shard_events.end(), uint64_t{0});
  EXPECT_GT(shard_sum, 0u);
  EXPECT_LT(shard_sum, run.result.events_processed);
  // The sequential stream holds exactly the remaining (motion) events.
  const SessionRun retrace = run_session(scenario, {}, 3, 1);
  ASSERT_EQ(retrace.event_trace.size(), 4u);
  EXPECT_EQ(retrace.event_trace.back().size(),
            retrace.result.events_processed - shard_sum);
}

// Metrics that the paper reasons about must not depend on the engine: the
// sharded schedule may reorder same-tick events, but with fixed latency the
// tower election is tie-free and lands the same hop sequence.
TEST(ShardedSession, FixedLatencyMetricsMatchClassic) {
  const lat::Scenario scenario = lat::make_tower_scenario(8);
  const SessionRun classic = run_session(scenario, {}, 1, 1);
  const SessionRun sharded = run_session(scenario, {}, 4, 2);

  ASSERT_TRUE(classic.result.complete);
  ASSERT_TRUE(sharded.result.complete);
  EXPECT_TRUE(oracle_clean(classic));
  EXPECT_TRUE(oracle_clean(sharded));
  EXPECT_EQ(sharded.move_trace, classic.move_trace);
  EXPECT_EQ(sharded.result.hops, classic.result.hops);
  EXPECT_EQ(sharded.result.distance_computations,
            classic.result.distance_computations);
  EXPECT_EQ(sharded.result.messages_sent, classic.result.messages_sent);
}

// Re-running the same sharded configuration reproduces byte-identically
// (fresh simulator, same seed).
TEST(ShardedDeterminism, RerunReproducesByteIdentically) {
  const lat::Scenario scenario = lat::make_fig10_scenario();
  const SessionRun first = run_session(scenario, jittery_config(), 2, 2);
  const SessionRun second = run_session(scenario, jittery_config(), 2, 2);
  EXPECT_EQ(first.event_trace, second.event_trace);
  EXPECT_EQ(first.move_trace, second.move_trace);
}

// ---------------------------------------------------------------------------
// ShardWorkerPool
// ---------------------------------------------------------------------------

TEST(ShardWorkerPool, RunsEveryJobExactlyOnce) {
  sim::ShardWorkerPool pool(4);
  std::vector<std::atomic<int>> hits(64);
  pool.run(64, [&](size_t i) { hits[i].fetch_add(1); });
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ShardWorkerPool, ReusableAcrossRounds) {
  sim::ShardWorkerPool pool(3);
  std::atomic<int> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.run(5, [&](size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 250);
}

TEST(ShardWorkerPool, SingleThreadRunsInline) {
  sim::ShardWorkerPool pool(1);
  EXPECT_EQ(pool.threads(), 1u);
  int calls = 0;
  pool.run(7, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 7);
}

}  // namespace
}  // namespace sb
