// Tests for the sharded world: ShardMap geometry (columns, rows, tiles,
// adaptive re-striping), the channel-driven sharded schedule
// (sim/simulator_sharded.cpp), cross-shard messaging, event re-homing on
// shard migration, and the determinism contract — event and move traces
// byte-identical across shard-thread counts (the sharded counterpart of
// runner_test's sweep determinism).

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "check/oracle.hpp"
#include "core/reconfig.hpp"
#include "lattice/scenario.hpp"
#include "lattice/shard.hpp"
#include "sim/shard.hpp"
#include "util/fmt.hpp"

namespace sb {
namespace {

// ---------------------------------------------------------------------------
// ShardMap geometry
// ---------------------------------------------------------------------------

TEST(ShardMap, SplitsWidthIntoStripes) {
  const lat::ShardMap map(8, 4);
  EXPECT_EQ(map.count(), 4u);
  EXPECT_EQ(map.stripe_width(), 2);
  EXPECT_EQ(map.shard_of({0, 5}), 0u);
  EXPECT_EQ(map.shard_of({1, 0}), 0u);
  EXPECT_EQ(map.shard_of({2, 0}), 1u);
  EXPECT_EQ(map.shard_of({7, 3}), 3u);
  EXPECT_EQ(map.first_column(2), 4);
}

TEST(ShardMap, RoundsStripeWidthUp) {
  // 10 columns over 4 shards: stripes of 3 columns; the last holds one.
  const lat::ShardMap map(10, 4);
  EXPECT_EQ(map.count(), 4u);
  EXPECT_EQ(map.stripe_width(), 3);
  EXPECT_EQ(map.shard_of({8, 0}), 2u);
  EXPECT_EQ(map.shard_of({9, 0}), 3u);
}

TEST(ShardMap, NeverCreatesEmptyTrailingStripes) {
  // Width 10 over 8 requested shards: ceil-rounded stripes of 2 columns
  // cover the surface with 5 stripes; the count must say 5, not 8.
  const lat::ShardMap map(10, 8);
  EXPECT_EQ(map.stripe_width(), 2);
  EXPECT_EQ(map.count(), 5u);
  EXPECT_EQ(map.shard_of({9, 0}), map.count() - 1);
  // Every shard owns at least one column.
  for (size_t shard = 0; shard < map.count(); ++shard) {
    EXPECT_LT(map.first_column(shard), 10);
  }
}

TEST(ShardMap, ClampsCountToWidth) {
  const lat::ShardMap map(3, 16);
  EXPECT_EQ(map.count(), 3u);
  EXPECT_EQ(map.stripe_width(), 1);
  EXPECT_EQ(map.shard_of({2, 0}), 2u);
}

TEST(ShardMap, SingleShardOwnsEverything) {
  const lat::ShardMap map(64, 1);
  EXPECT_EQ(map.count(), 1u);
  EXPECT_EQ(map.shard_of({0, 0}), 0u);
  EXPECT_EQ(map.shard_of({63, 9}), 0u);
}

TEST(ShardMap, RowStripesSplitHeight) {
  const lat::ShardMap map = lat::ShardMap::rows(8, 12, 4);
  EXPECT_EQ(map.kind(), lat::ShardMapKind::kRows);
  EXPECT_EQ(map.count(), 4u);
  EXPECT_EQ(map.stripe_height(), 3);
  EXPECT_EQ(map.shard_of({0, 0}), 0u);
  EXPECT_EQ(map.shard_of({7, 2}), 0u);
  EXPECT_EQ(map.shard_of({3, 3}), 1u);
  EXPECT_EQ(map.shard_of({0, 11}), 3u);
}

TEST(ShardMap, TileMapCoversTheSurfaceInQuadrants) {
  const lat::ShardMap map = lat::ShardMap::tiles(16, 16, 4);
  EXPECT_EQ(map.kind(), lat::ShardMapKind::kTiles);
  EXPECT_EQ(map.count(), 4u);
  EXPECT_EQ(map.shard_of({0, 0}), 0u);
  EXPECT_EQ(map.shard_of({15, 0}), 1u);
  EXPECT_EQ(map.shard_of({0, 15}), 2u);
  EXPECT_EQ(map.shard_of({15, 15}), 3u);
}

TEST(ShardMap, TileMapNeverCreatesEmptyTiles) {
  // A short surface clamps the tile rows: every shard index must own at
  // least one cell, and every cell must map into range.
  const lat::ShardMap map = lat::ShardMap::tiles(10, 3, 8);
  std::vector<int> owned(map.count(), 0);
  for (int32_t y = 0; y < 3; ++y) {
    for (int32_t x = 0; x < 10; ++x) {
      const size_t shard = map.shard_of({x, y});
      ASSERT_LT(shard, map.count());
      ++owned[shard];
    }
  }
  for (size_t shard = 0; shard < map.count(); ++shard) {
    EXPECT_GT(owned[shard], 0) << "tile " << shard << " owns no cells";
  }
}

TEST(ShardMap, AdaptiveColumnsSplitTheHotRegionFiner) {
  // All load in the first four columns: the boundaries crowd there and the
  // cold tail collapses into one wide stripe.
  std::vector<uint64_t> load(16, 0);
  for (size_t c = 0; c < 4; ++c) load[c] = 100;
  const lat::ShardMap map = lat::ShardMap::adaptive_columns(16, load, 4);
  EXPECT_EQ(map.count(), 4u);
  EXPECT_EQ(map.stripe_width(), 0);  // explicit boundaries
  EXPECT_EQ(map.shard_of_column(0), 0u);
  EXPECT_EQ(map.shard_of_column(1), 1u);
  EXPECT_EQ(map.shard_of_column(2), 2u);
  EXPECT_EQ(map.shard_of_column(3), 3u);
  EXPECT_EQ(map.shard_of_column(15), 3u);
  EXPECT_NE(map.describe().find("adaptive"), std::string::npos);
}

TEST(ShardMap, AdaptiveWithZeroLoadFallsBackToUniform) {
  const std::vector<uint64_t> load(8, 0);
  const lat::ShardMap map = lat::ShardMap::adaptive_columns(8, load, 4);
  EXPECT_EQ(map.count(), 4u);
  EXPECT_EQ(map.stripe_width(), 2);
}

TEST(ShardMap, RestripedSpreadsAPreviousRunsLoad) {
  // Shard 0 of a uniform 4-stripe map did 100x the work: the re-striped
  // map gives its columns three of the four stripes.
  const lat::ShardMap uniform(16, 4);
  const std::vector<uint64_t> shard_events = {1000, 10, 10, 10};
  const lat::ShardMap map = lat::ShardMap::restriped(uniform, shard_events, 4);
  EXPECT_EQ(map.count(), 4u);
  EXPECT_EQ(map.first_column(0), 0);
  EXPECT_LE(map.first_column(3), 4);  // stripes 0-2 all inside old shard 0
  // Every column still maps to exactly one in-range shard, monotonically.
  size_t prev = 0;
  for (int32_t x = 0; x < 16; ++x) {
    const size_t shard = map.shard_of_column(x);
    ASSERT_LT(shard, map.count());
    ASSERT_GE(shard, prev);
    prev = shard;
  }
  EXPECT_EQ(prev, map.count() - 1);
}

// ---------------------------------------------------------------------------
// Sharded sessions: correctness and determinism
// ---------------------------------------------------------------------------

struct SessionRun {
  core::SessionResult result;
  std::vector<std::string> move_trace;
  std::vector<std::vector<std::string>> event_trace;
  /// Invariant-oracle verdict for the run (src/check/oracle.hpp): every
  /// e2e session below must finish with an empty list.
  std::vector<std::string> violations;
};

SessionRun run_session(const lat::Scenario& scenario,
                       core::SessionConfig config, size_t shards,
                       size_t shard_threads) {
  config.sim.shards = shards;
  config.sim.shard_threads = shard_threads;
  core::ReconfigurationSession session(scenario, config);
  SessionRun run;
  check::InvariantOracle oracle;
  oracle.attach(session, [&run](core::Epoch epoch, lat::BlockId block,
                                const motion::RuleApplication& app) {
    run.move_trace.push_back(fmt("{} {} {}", epoch, block, app.describe()));
  });
  session.simulator().enable_event_trace();
  run.result = session.run();
  run.event_trace = session.simulator().event_trace();
  oracle.check_now(session.simulator());
  run.violations = oracle.violations();
  return run;
}

/// gtest-friendly wrapper: prints the first violation on failure.
testing::AssertionResult oracle_clean(const SessionRun& run) {
  if (run.violations.empty()) return testing::AssertionSuccess();
  return testing::AssertionFailure()
         << run.violations.size() << " invariant violations, first: "
         << run.violations.front();
}

core::SessionConfig jittery_config() {
  core::SessionConfig config;
  config.sim.latency = msg::LatencyModel::uniform(1, 8);
  return config;
}

// The tentpole determinism property: for a fixed shard count, event and
// move traces are byte-identical whether windows drain on 1 thread or many.
TEST(ShardedDeterminism, TracesIdenticalAcrossThreadCountsTower16) {
  const lat::Scenario scenario = lat::make_tower_scenario(8);
  const SessionRun serial = run_session(scenario, {}, 3, 1);
  const SessionRun parallel = run_session(scenario, {}, 3, 4);
  const SessionRun two = run_session(scenario, {}, 3, 2);

  ASSERT_TRUE(serial.result.complete);
  ASSERT_FALSE(serial.move_trace.empty());
  EXPECT_TRUE(oracle_clean(serial));
  EXPECT_TRUE(oracle_clean(parallel));
  EXPECT_EQ(serial.event_trace, parallel.event_trace);
  EXPECT_EQ(serial.event_trace, two.event_trace);
  EXPECT_EQ(serial.move_trace, parallel.move_trace);
  EXPECT_EQ(serial.result.events_processed, parallel.result.events_processed);
  EXPECT_EQ(serial.result.sim_ticks, parallel.result.sim_ticks);
  EXPECT_EQ(serial.result.shard_events, parallel.result.shard_events);
}

TEST(ShardedDeterminism, TracesIdenticalAcrossThreadCountsFig10) {
  const lat::Scenario scenario = lat::make_fig10_scenario();
  const SessionRun serial = run_session(scenario, {}, 3, 1);
  const SessionRun parallel = run_session(scenario, {}, 3, 4);

  ASSERT_TRUE(serial.result.complete);
  EXPECT_EQ(serial.event_trace, parallel.event_trace);
  EXPECT_EQ(serial.move_trace, parallel.move_trace);
  EXPECT_EQ(serial.result.events_processed, parallel.result.events_processed);
}

// Randomized latency exercises the per-shard RNG streams: draws must land
// identically regardless of which OS thread executes a shard's window.
TEST(ShardedDeterminism, JitteryLatencyStableAcrossThreads) {
  const lat::Scenario scenario = lat::make_tower_scenario(8);
  const SessionRun serial = run_session(scenario, jittery_config(), 3, 1);
  const SessionRun parallel = run_session(scenario, jittery_config(), 3, 4);

  ASSERT_TRUE(serial.result.complete);
  EXPECT_EQ(serial.event_trace, parallel.event_trace);
  EXPECT_EQ(serial.move_trace, parallel.move_trace);
}

// A link latency longer than the motion duration must not let a window
// straddle a motion landing: the lookahead is min(latency, motion
// duration), so motions requested inside a window always land beyond its
// horizon (regression: with lookahead = 20 > motion_duration = 10, shards
// kept draining past the landing tick against the pre-move grid).
TEST(ShardedDeterminism, SlowLinksStayBehindMotionLandings) {
  core::SessionConfig config;
  config.sim.latency = msg::LatencyModel::fixed(20);
  const lat::Scenario scenario = lat::make_tower_scenario(8);
  const SessionRun classic = run_session(scenario, config, 1, 1);
  const SessionRun serial = run_session(scenario, config, 3, 1);
  const SessionRun parallel = run_session(scenario, config, 3, 4);

  ASSERT_TRUE(classic.result.complete);
  ASSERT_TRUE(serial.result.complete);
  EXPECT_EQ(serial.event_trace, parallel.event_trace);
  EXPECT_EQ(serial.result.hops, classic.result.hops);
  EXPECT_EQ(serial.move_trace, classic.move_trace);
}

// shards = 1 must stay the classic engine: byte-identical to a default
// configuration, single trace stream.
TEST(ShardedDeterminism, SingleShardReducesToClassicSchedule) {
  const lat::Scenario scenario = lat::make_tower_scenario(8);
  const SessionRun classic = run_session(scenario, {}, 1, 1);
  const SessionRun classic_threaded = run_session(scenario, {}, 1, 8);

  ASSERT_TRUE(classic.result.complete);
  EXPECT_EQ(classic.result.shards, 1u);
  EXPECT_TRUE(classic.result.shard_events.empty());
  ASSERT_EQ(classic.event_trace.size(), 1u);
  EXPECT_EQ(classic.event_trace, classic_threaded.event_trace);
}

// One-column-per-stripe sharding maximizes cross-shard traffic and makes
// every horizontal hop a migration — the re-homing path gets no mercy.
TEST(ShardedSession, MaximallyShardedTowerCompletes) {
  const lat::Scenario scenario = lat::make_tower_scenario(8);
  const SessionRun classic = run_session(scenario, {}, 1, 1);
  const SessionRun sharded =
      run_session(scenario, {}, static_cast<size_t>(scenario.width), 2);

  ASSERT_TRUE(sharded.result.complete);
  EXPECT_TRUE(oracle_clean(sharded));
  EXPECT_GT(sharded.result.shards, 2u);
  // The distributed algorithm's outcome metrics are schedule-independent.
  EXPECT_EQ(sharded.result.hops, classic.result.hops);
  EXPECT_EQ(sharded.result.elementary_moves, classic.result.elementary_moves);
  EXPECT_EQ(sharded.result.path, classic.result.path);
}

// Fault-mode timers (ack_timeout) ride the shard queues; a sharded world
// with timers must still terminate and stay thread-count deterministic.
TEST(ShardedSession, FaultModeTimersStayDeterministic) {
  core::SessionConfig config;
  config.ack_timeout = 64;
  const lat::Scenario scenario = lat::make_tower_scenario(8);
  const SessionRun serial = run_session(scenario, config, 3, 1);
  const SessionRun parallel = run_session(scenario, config, 3, 3);

  ASSERT_TRUE(serial.result.complete);
  EXPECT_TRUE(oracle_clean(serial));
  EXPECT_TRUE(oracle_clean(parallel));
  EXPECT_EQ(serial.event_trace, parallel.event_trace);
}

// Per-shard counters merge into the session totals: the by-kind map sums
// to the scalar, and per-shard event counts sum to the processed total
// minus the sequential (grid-mutating) steps.
TEST(ShardedSession, PerShardCountersMergeIntoTotals) {
  const lat::Scenario scenario = lat::make_tower_scenario(8);
  const SessionRun run = run_session(scenario, {}, 3, 2);

  ASSERT_TRUE(run.result.complete);
  EXPECT_EQ(run.result.shards, 3u);
  ASSERT_EQ(run.result.shard_events.size(), 3u);

  uint64_t by_kind = 0;
  for (const auto& [kind, count] : run.result.messages_by_kind) {
    by_kind += count;
  }
  EXPECT_EQ(by_kind, run.result.messages_sent);

  const uint64_t shard_sum =
      std::accumulate(run.result.shard_events.begin(),
                      run.result.shard_events.end(), uint64_t{0});
  EXPECT_GT(shard_sum, 0u);
  EXPECT_LT(shard_sum, run.result.events_processed);
  // The sequential stream holds exactly the remaining (motion) events.
  const SessionRun retrace = run_session(scenario, {}, 3, 1);
  ASSERT_EQ(retrace.event_trace.size(), 4u);
  EXPECT_EQ(retrace.event_trace.back().size(),
            retrace.result.events_processed - shard_sum);
}

// Metrics that the paper reasons about must not depend on the engine: the
// sharded schedule may reorder same-tick events, but with fixed latency the
// tower election is tie-free and lands the same hop sequence.
TEST(ShardedSession, FixedLatencyMetricsMatchClassic) {
  const lat::Scenario scenario = lat::make_tower_scenario(8);
  const SessionRun classic = run_session(scenario, {}, 1, 1);
  const SessionRun sharded = run_session(scenario, {}, 4, 2);

  ASSERT_TRUE(classic.result.complete);
  ASSERT_TRUE(sharded.result.complete);
  EXPECT_TRUE(oracle_clean(classic));
  EXPECT_TRUE(oracle_clean(sharded));
  EXPECT_EQ(sharded.move_trace, classic.move_trace);
  EXPECT_EQ(sharded.result.hops, classic.result.hops);
  EXPECT_EQ(sharded.result.distance_computations,
            classic.result.distance_computations);
  EXPECT_EQ(sharded.result.messages_sent, classic.result.messages_sent);
}

// Re-running the same sharded configuration reproduces byte-identically
// (fresh simulator, same seed).
TEST(ShardedDeterminism, RerunReproducesByteIdentically) {
  const lat::Scenario scenario = lat::make_fig10_scenario();
  const SessionRun first = run_session(scenario, jittery_config(), 2, 2);
  const SessionRun second = run_session(scenario, jittery_config(), 2, 2);
  EXPECT_EQ(first.event_trace, second.event_trace);
  EXPECT_EQ(first.move_trace, second.move_trace);
}

// ---------------------------------------------------------------------------
// Shard-map kinds drive whole sessions
// ---------------------------------------------------------------------------

// Row stripes and tiles are full peers of the column map: sessions finish,
// the oracle stays clean, outcome metrics match the classic engine, and the
// thread-count determinism contract holds per map.
TEST(ShardedSession, RowMapMatchesClassicOutcome) {
  core::SessionConfig config;
  config.sim.shard_map = lat::ShardMapKind::kRows;
  const lat::Scenario scenario = lat::make_tower_scenario(8);
  const SessionRun classic = run_session(scenario, {}, 1, 1);
  const SessionRun serial = run_session(scenario, config, 3, 1);
  const SessionRun parallel = run_session(scenario, config, 3, 4);

  ASSERT_TRUE(serial.result.complete);
  EXPECT_TRUE(oracle_clean(serial));
  EXPECT_TRUE(oracle_clean(parallel));
  EXPECT_EQ(serial.event_trace, parallel.event_trace);
  EXPECT_EQ(serial.move_trace, parallel.move_trace);
  EXPECT_EQ(serial.result.hops, classic.result.hops);
  EXPECT_EQ(serial.result.elementary_moves, classic.result.elementary_moves);
}

TEST(ShardedSession, TileMapMatchesClassicOutcome) {
  core::SessionConfig config;
  config.sim.shard_map = lat::ShardMapKind::kTiles;
  const lat::Scenario scenario = lat::make_tower_scenario(8);
  const SessionRun classic = run_session(scenario, {}, 1, 1);
  const SessionRun serial = run_session(scenario, config, 4, 1);
  const SessionRun parallel = run_session(scenario, config, 4, 4);

  ASSERT_TRUE(serial.result.complete);
  EXPECT_TRUE(oracle_clean(serial));
  EXPECT_TRUE(oracle_clean(parallel));
  EXPECT_EQ(serial.event_trace, parallel.event_trace);
  EXPECT_EQ(serial.move_trace, parallel.move_trace);
  EXPECT_EQ(serial.result.hops, classic.result.hops);
}

// Feeding a run's per-shard event counts back as load hints re-stripes the
// columns; the adapted map is still a deterministic, oracle-clean engine.
TEST(ShardedSession, AdaptiveHintsKeepDeterminism) {
  const lat::Scenario scenario = lat::make_tower_scenario(8);
  const SessionRun pilot = run_session(scenario, {}, 3, 1);
  ASSERT_TRUE(pilot.result.complete);
  ASSERT_EQ(pilot.result.shard_events.size(), 3u);

  core::SessionConfig config;
  config.sim.shard_load_hints = pilot.result.shard_events;
  const lat::Scenario rerun = lat::make_tower_scenario(8);
  const SessionRun serial = run_session(rerun, config, 3, 1);
  const SessionRun parallel = run_session(rerun, config, 3, 4);

  ASSERT_TRUE(serial.result.complete);
  EXPECT_TRUE(oracle_clean(serial));
  EXPECT_TRUE(oracle_clean(parallel));
  EXPECT_EQ(serial.event_trace, parallel.event_trace);
  EXPECT_EQ(serial.move_trace, parallel.move_trace);
  EXPECT_EQ(serial.result.hops, pilot.result.hops);
}

// ---------------------------------------------------------------------------
// WindowBarrier / ShardEngine
// ---------------------------------------------------------------------------

TEST(WindowBarrier, RunsTheSerialSectionOncePerRendezvous) {
  constexpr uint32_t kThreads = 4;
  constexpr int kRounds = 200;
  sim::WindowBarrier barrier(kThreads);
  int serial_runs = 0;  // written only inside the serial section
  std::atomic<int> parallel_work{0};
  auto participant = [&] {
    for (int round = 0; round < kRounds; ++round) {
      parallel_work.fetch_add(1, std::memory_order_relaxed);
      barrier.arrive([&] { ++serial_runs; });
    }
  };
  std::vector<std::thread> threads;
  for (uint32_t t = 1; t < kThreads; ++t) threads.emplace_back(participant);
  participant();
  for (auto& t : threads) t.join();
  EXPECT_EQ(serial_runs, kRounds);
  EXPECT_EQ(parallel_work.load(), kRounds * static_cast<int>(kThreads));
}

TEST(ShardEngine, CyclesFoldIntegrateDecideDrainRounds) {
  constexpr size_t kShards = 6;
  sim::ShardEngine engine(3, kShards);
  EXPECT_EQ(engine.threads(), 3u);
  int folds = 0;
  int windows = 0;
  std::atomic<int> integrates{0};
  std::atomic<int> drains{0};
  sim::ShardEngine::Hooks hooks;
  hooks.fold = [&] { ++folds; };
  hooks.integrate = [&](size_t) { integrates.fetch_add(1); };
  hooks.decide = [&](sim::SimTime* window_end) {
    if (windows == 4) return false;
    *window_end = static_cast<sim::SimTime>(++windows);
    return true;
  };
  hooks.drain = [&](size_t, sim::SimTime) { drains.fetch_add(1); };
  engine.run(hooks);
  // 4 windows: each preceded by a fold+integrate round, plus the final
  // round that folds the last window and decides to stop.
  EXPECT_EQ(folds, 5);
  EXPECT_EQ(integrates.load(), 5 * static_cast<int>(kShards));
  EXPECT_EQ(drains.load(), 4 * static_cast<int>(kShards));
}

TEST(ShardEngine, SingleThreadRunsInline) {
  sim::ShardEngine engine(1, 3);
  EXPECT_EQ(engine.threads(), 1u);
  const std::thread::id caller = std::this_thread::get_id();
  bool inline_drain = true;
  int windows = 0;
  sim::ShardEngine::Hooks hooks;
  hooks.fold = [] {};
  hooks.integrate = [](size_t) {};
  hooks.decide = [&](sim::SimTime* window_end) {
    *window_end = 1;
    return windows++ < 1;
  };
  hooks.drain = [&](size_t, sim::SimTime) {
    inline_drain = inline_drain && std::this_thread::get_id() == caller;
  };
  engine.run(hooks);
  EXPECT_TRUE(inline_drain);
}

TEST(ShardEngine, ReusableAcrossRuns) {
  sim::ShardEngine engine(2, 4);
  std::atomic<int> drains{0};
  for (int round = 0; round < 25; ++round) {
    int windows = 0;
    sim::ShardEngine::Hooks hooks;
    hooks.fold = [] {};
    hooks.integrate = [](size_t) {};
    hooks.decide = [&](sim::SimTime* window_end) {
      *window_end = 1;
      return windows++ < 2;
    };
    hooks.drain = [&](size_t, sim::SimTime) { drains.fetch_add(1); };
    engine.run(hooks);
  }
  EXPECT_EQ(drains.load(), 25 * 2 * 4);
}

}  // namespace
}  // namespace sb
