// Tests for capability XML I/O (paper Fig. 7).

#include <gtest/gtest.h>

#include "motion/rule_xml.hpp"

namespace sb::motion {
namespace {

// The exact extract printed in the paper's Fig. 7.
constexpr const char* kPaperFig7 = R"(<?xml version="1.0" encoding="utf-8"?>
<capabilities>
  <capability name="east1" size="3,3">
    <states>
      2 0 0
      2 4 3
      2 1 1
    </states>
    <motions>
      <motion time="0" from="1,1" to="2,1"/>
    </motions>
  </capability>
  <capability name="carryeast1" size="3,3">
    <states>
      0 0 0
      4 5 3
      2 1 2
    </states>
    <motions>
      <motion time="0" from="1,1" to="2,1"/>
      <motion time="0" from="0,1" to="1,1"/>
    </motions>
  </capability>
</capabilities>)";

TEST(RuleXml, ParsesPaperFig7) {
  const RuleLibrary lib = parse_capabilities(kPaperFig7);
  ASSERT_EQ(lib.size(), 2u);

  const MotionRule* east1 = lib.find("east1");
  ASSERT_NE(east1, nullptr);
  // "east1" is exactly the paper's Eq (1) east-sliding matrix.
  EXPECT_EQ(east1->matrix(), CodeMatrix::from_rows({{2, 0, 0},
                                                    {2, 4, 3},
                                                    {2, 1, 1}}));
  ASSERT_EQ(east1->moves().size(), 1u);
  // from="1,1" is (x=1, y=1): matrix row 1, column 1 - the center.
  EXPECT_EQ(east1->moves()[0].from, (MatrixCoord{1, 1}));
  EXPECT_EQ(east1->moves()[0].to, (MatrixCoord{1, 2}));

  const MotionRule* carry = lib.find("carryeast1");
  ASSERT_NE(carry, nullptr);
  EXPECT_EQ(carry->matrix(), CodeMatrix::from_rows({{0, 0, 0},
                                                    {4, 5, 3},
                                                    {2, 1, 2}}));
  EXPECT_EQ(carry->moves().size(), 2u);
}

TEST(RuleXml, PaperRulesEqualBuiltinCanonicals) {
  const RuleLibrary paper = parse_capabilities(kPaperFig7);
  const RuleLibrary standard = RuleLibrary::standard();
  // Same behaviour under different names.
  EXPECT_EQ(paper.find("east1")->canonical_key(),
            standard.find("slide_ES")->canonical_key());
  EXPECT_EQ(paper.find("carryeast1")->canonical_key(),
            standard.find("carry_ES")->canonical_key());
}

TEST(RuleXml, StandardLibraryRoundTrips) {
  const RuleLibrary original = RuleLibrary::standard();
  const RuleLibrary reparsed =
      parse_capabilities(serialize_capabilities(original));
  ASSERT_EQ(reparsed.size(), original.size());
  for (size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(reparsed.rules()[i].name(), original.rules()[i].name());
    EXPECT_EQ(reparsed.rules()[i].canonical_key(),
              original.rules()[i].canonical_key());
  }
}

TEST(RuleXml, RejectsWrongRoot) {
  EXPECT_THROW(parse_capabilities("<rules/>"), std::runtime_error);
}

TEST(RuleXml, RejectsMissingStates) {
  EXPECT_THROW(parse_capabilities(
                   R"(<capabilities><capability name="x" size="3,3">
                        <motions/></capability></capabilities>)"),
               std::runtime_error);
}

TEST(RuleXml, RejectsSizeMismatch) {
  EXPECT_THROW(parse_capabilities(
                   R"(<capabilities><capability name="x" size="5,5">
                        <states>2 0 0 2 4 3 2 1 1</states>
                        <motions><motion time="0" from="1,1" to="2,1"/></motions>
                      </capability></capabilities>)"),
               std::runtime_error);
}

TEST(RuleXml, RejectsNonSquareSize) {
  EXPECT_THROW(parse_capabilities(
                   R"(<capabilities><capability name="x" size="3,5">
                        <states>2 0 0 2 4 3 2 1 1</states>
                        <motions><motion time="0" from="1,1" to="2,1"/></motions>
                      </capability></capabilities>)"),
               std::runtime_error);
}

TEST(RuleXml, RejectsOutOfRangeMotionCoord) {
  EXPECT_THROW(parse_capabilities(
                   R"(<capabilities><capability name="x" size="3,3">
                        <states>2 0 0 2 4 3 2 1 1</states>
                        <motions><motion time="0" from="1,1" to="3,1"/></motions>
                      </capability></capabilities>)"),
               std::runtime_error);
}

TEST(RuleXml, RejectsInconsistentRule) {
  // Motion list does not match the matrix codes.
  EXPECT_THROW(parse_capabilities(
                   R"(<capabilities><capability name="x" size="3,3">
                        <states>2 0 0 2 4 3 2 1 1</states>
                        <motions><motion time="0" from="0,0" to="1,0"/></motions>
                      </capability></capabilities>)"),
               std::runtime_error);
}

TEST(RuleXml, MissingFileThrows) {
  EXPECT_THROW(load_capabilities_file("/nonexistent.xml"),
               std::runtime_error);
}

TEST(RuleXml, SerializedFormUsesPaperVocabulary) {
  const std::string text = serialize_capabilities(RuleLibrary::standard());
  EXPECT_NE(text.find("<capabilities>"), std::string::npos);
  EXPECT_NE(text.find("<capability name=\"slide_ES\" size=\"3,3\">"),
            std::string::npos);
  EXPECT_NE(text.find("<states>"), std::string::npos);
  EXPECT_NE(text.find("<motion time=\"0\""), std::string::npos);
}

}  // namespace
}  // namespace sb::motion
