// Tests for the distance metric (Eqs 6, 8-10) and the motion planner's
// two-tier eligibility.

#include <gtest/gtest.h>

#include "core/motion_planner.hpp"
#include "core/tabu.hpp"

namespace sb::core {
namespace {

using lat::BlockId;
using lat::Vec2;

sim::World make_world(std::initializer_list<Vec2> cells, int32_t w = 8,
                      int32_t h = 12) {
  sim::World world(w, h, motion::RuleLibrary::standard());
  uint32_t id = 1;
  for (const Vec2 cell : cells) world.grid().place(BlockId{id++}, cell);
  return world;
}

DistanceParams fig10_params() {
  DistanceParams params;
  params.input = {1, 0};
  params.output = {1, 10};
  return params;
}

// ---------------------------------------------------------------------------
// base_distance (Eqs 8 and 10)
// ---------------------------------------------------------------------------

TEST(Distance, Eq10ManhattanForUnalignedBlocks) {
  const DistanceParams params = fig10_params();
  EXPECT_EQ(base_distance({2, 3}, params), 1 + 7);
  EXPECT_EQ(base_distance({0, 0}, params), 1 + 10);
  EXPECT_EQ(base_distance({4, 10}, params), 3);
}

TEST(Distance, Eq8FreezesAlignedInsideRect) {
  const DistanceParams params = fig10_params();
  // On the I/O column, inside the rectangle, more than one hop away.
  EXPECT_EQ(base_distance({1, 3}, params), kInfiniteDistance);
  EXPECT_EQ(base_distance({1, 0}, params), kInfiniteDistance);  // at I
}

TEST(Distance, OneHopExceptionNotFrozen) {
  // §V.A: a block "at one hop of O" may move directly onto O, so its
  // distance stays 1 even though it is aligned with O.
  const DistanceParams params = fig10_params();
  EXPECT_EQ(base_distance({1, 9}, params), 1);   // directly below O
  EXPECT_EQ(base_distance({0, 10}, params), 1);  // west of O (O's row)
  EXPECT_EQ(base_distance({2, 10}, params), 1);  // east of O
}

TEST(Distance, AlignedOutsideRectNotFrozen) {
  // Aligned with O but outside the I/O rectangle: still eligible
  // (DESIGN.md interpretation note 1).
  const DistanceParams params = fig10_params();
  EXPECT_EQ(base_distance({1, 11}, params), 1);   // above O, outside rect
  EXPECT_EQ(base_distance({4, 10}, params), 3);   // O's row, outside rect
}

TEST(Distance, GeneralRectFreezing) {
  DistanceParams params;
  params.input = {5, 1};
  params.output = {2, 7};  // left-up oriented graph, as in Fig 2
  // O's column inside the rect: frozen.
  EXPECT_EQ(base_distance({2, 4}, params), kInfiniteDistance);
  // O's row inside the rect: frozen.
  EXPECT_EQ(base_distance({4, 7}, params), kInfiniteDistance);
  // O's column *outside* the rect (below I's row): not frozen.
  EXPECT_EQ(base_distance({2, 0}, params), 7);
  // Interior unaligned cell: plain Manhattan.
  EXPECT_EQ(base_distance({4, 4}, params), 2 + 3);
}

TEST(Distance, FreezingCanBeDisabled) {
  DistanceParams params = fig10_params();
  params.freeze_aligned = false;
  EXPECT_EQ(base_distance({1, 3}, params), 7);
}

TEST(Distance, AtOutputIsZero) {
  EXPECT_EQ(base_distance({1, 10}, fig10_params()), 0);
}

TEST(Distance, Eq6InitialEstimate) {
  EXPECT_EQ(initial_shortest_distance({1, 0}, {1, 10}), 10);
  EXPECT_EQ(initial_shortest_distance({5, 1}, {2, 7}), 9);
}

// ---------------------------------------------------------------------------
// net_progress
// ---------------------------------------------------------------------------

TEST(NetProgress, SlideTowardOutputIsPlusOne) {
  const sim::World world = make_world({{2, 3}, {2, 2}, {3, 2}, {1, 2}});
  const motion::MotionRule* rule = world.rules().find("slide_WS");
  ASSERT_NE(rule, nullptr);
  // (2,3) slides west toward the output column.
  const motion::RuleApplication app{rule, {2, 3}, 0};
  EXPECT_EQ(net_progress(app, {1, 10}), 1);
}

TEST(NetProgress, CarryBothImprovingIsPlusTwo) {
  const sim::World world = make_world({{2, 4}, {2, 3}, {1, 4}});
  const motion::MotionRule* rule = world.rules().find("carry_NW");
  ASSERT_NE(rule, nullptr);
  const motion::RuleApplication app{rule, {2, 4}, 0};  // subject north
  EXPECT_EQ(net_progress(app, {1, 10}), 2);
}

TEST(NetProgress, EvictingPathBlockSidewaysIsZero) {
  // The livelock pattern: a pusher enters the path cell while the occupant
  // is evicted sideways - subject +1, evicted -1.
  const sim::World world = make_world({{0, 3}, {1, 3}, {1, 2}});
  const motion::MotionRule* rule = world.rules().find("carry_ES");
  ASSERT_NE(rule, nullptr);
  // Subject move index 1 = the pusher (west cell).
  const motion::RuleApplication app{rule, {1, 3}, 1};
  EXPECT_EQ(app.subject_from(), Vec2(0, 3));
  EXPECT_EQ(net_progress(app, {1, 10}), 0);
}

// ---------------------------------------------------------------------------
// MotionPlanner.evaluate
// ---------------------------------------------------------------------------

MotionPlanner make_planner(const sim::World& world,
                           MoveTie tie = MoveTie::kPreferEnterPath,
                           bool reposition = true) {
  PlannerConfig config;
  config.distance = fig10_params();
  config.tie = tie;
  config.allow_repositioning = reposition;
  return MotionPlanner(&world.rules(), config);
}

TEST(Planner, FrozenBlockIneligible) {
  const sim::World world = make_world({{1, 3}, {1, 2}, {2, 2}, {2, 3}});
  const MotionPlanner planner = make_planner(world);
  const MoveDecision decision =
      planner.evaluate(world, {1, 3}, nullptr, 0, nullptr, nullptr);
  EXPECT_FALSE(decision.eligible());
  EXPECT_EQ(decision.distance, kInfiniteDistance);
}

TEST(Planner, Tier1ClimberOnLane) {
  // Lane climber beside the path column: slide north is strictly improving.
  const sim::World world =
      make_world({{2, 2}, {1, 2}, {1, 3}, {1, 1}, {2, 1}});
  const MotionPlanner planner = make_planner(world);
  const MoveDecision decision =
      planner.evaluate(world, {2, 2}, nullptr, 0, nullptr, nullptr);
  ASSERT_TRUE(decision.eligible());
  EXPECT_FALSE(decision.repositioning);
  EXPECT_EQ(decision.distance, 1 + 8);  // Eq (10)
  EXPECT_EQ(decision.move->subject_to(), Vec2(2, 3));
}

TEST(Planner, PrefersEnteringPathOnTie) {
  // A block level with the path top: entering the path (west) and climbing
  // (north) both reduce the distance by one; kPreferEnterPath picks west.
  const sim::World world =
      make_world({{2, 3}, {2, 2}, {1, 2}, {1, 1}, {2, 1}});
  // Path cells (1,1),(1,2) occupied; (1,3) empty; (2,3) climber.
  const MotionPlanner planner = make_planner(world);
  const MoveDecision decision =
      planner.evaluate(world, {2, 3}, nullptr, 0, nullptr, nullptr);
  ASSERT_TRUE(decision.eligible());
  EXPECT_EQ(decision.move->subject_to(), Vec2(1, 3));
}

TEST(Planner, CountsDistanceComputations) {
  const sim::World world = make_world({{2, 2}, {1, 2}, {1, 1}, {2, 1}});
  const MotionPlanner planner = make_planner(world);
  ReconfigMetrics metrics;
  (void)planner.evaluate(world, {2, 2}, nullptr, 0, &metrics, nullptr);
  (void)planner.evaluate(world, {2, 1}, nullptr, 0, &metrics, nullptr);
  EXPECT_EQ(metrics.distance_computations, 2u);
}

TEST(Planner, RejectsZeroNetProgressEviction) {
  // The original livelock configuration: pusher at (0,3) would enter the
  // path by evicting the path block sideways. Must be ineligible (no other
  // improving move, and tier-2 excludes helper-displacing rules).
  const sim::World world = make_world({{0, 3}, {1, 3}, {1, 2}, {1, 1},
                                       {2, 1}, {2, 2}});
  const MotionPlanner planner = make_planner(world);
  TabuList tabu;
  const MoveDecision decision =
      planner.evaluate(world, {0, 3}, &tabu, 0, nullptr, nullptr);
  if (decision.eligible()) {
    // Any offered move must be a tier-2 single-block detour, never the
    // eviction.
    EXPECT_TRUE(decision.repositioning);
    EXPECT_EQ(decision.move->world_moves().size(), 1u);
  }
}

TEST(Planner, Tier2OffersDetourWhenStuck) {
  // A block with no improving move but a legal sideways slide.
  // Row of three on y=4 against the west wall... use: block at (0,4) with
  // path beside; its only moves go south along the wall.
  const sim::World world =
      make_world({{0, 4}, {1, 4}, {1, 3}, {1, 2}, {2, 2}});
  const MotionPlanner planner = make_planner(world);
  TabuList tabu;
  const MoveDecision decision =
      planner.evaluate(world, {0, 4}, &tabu, 0, nullptr, nullptr);
  ASSERT_TRUE(decision.eligible());
  EXPECT_TRUE(decision.repositioning);
  EXPECT_GE(decision.distance, kRepositionPenalty);
  EXPECT_EQ(decision.move->subject_to(), Vec2(0, 3));
}

TEST(Planner, Tier2RespectsTabu) {
  const sim::World world =
      make_world({{0, 4}, {1, 4}, {1, 3}, {1, 2}, {2, 2}});
  const MotionPlanner planner = make_planner(world);
  TabuList tabu;
  tabu.push({0, 3});  // the only detour destination is tabu
  const MoveDecision decision =
      planner.evaluate(world, {0, 4}, &tabu, 0, nullptr, nullptr);
  EXPECT_FALSE(decision.eligible());
}

TEST(Planner, Tier2CanBeDisabled) {
  const sim::World world =
      make_world({{0, 4}, {1, 4}, {1, 3}, {1, 2}, {2, 2}});
  const MotionPlanner planner =
      make_planner(world, MoveTie::kPreferEnterPath, /*reposition=*/false);
  const MoveDecision decision =
      planner.evaluate(world, {0, 4}, nullptr, 0, nullptr, nullptr);
  EXPECT_FALSE(decision.eligible());  // Eq (9) strict
}

TEST(Planner, RandomTieIsSeedStable) {
  const sim::World world =
      make_world({{2, 3}, {2, 2}, {1, 2}, {1, 1}, {2, 1}});
  const MotionPlanner planner = make_planner(world, MoveTie::kRandom);
  Rng rng_a(9);
  Rng rng_b(9);
  const MoveDecision a =
      planner.evaluate(world, {2, 3}, nullptr, 0, nullptr, &rng_a);
  const MoveDecision b =
      planner.evaluate(world, {2, 3}, nullptr, 0, nullptr, &rng_b);
  ASSERT_TRUE(a.eligible());
  ASSERT_TRUE(b.eligible());
  EXPECT_EQ(a.move->subject_to(), b.move->subject_to());
}

TEST(Planner, LegalMovesMatchPhysics) {
  const sim::World world = make_world({{2, 2}, {1, 2}, {1, 1}, {2, 1}});
  const MotionPlanner planner = make_planner(world);
  for (const auto& app : planner.legal_moves(world, {2, 2})) {
    EXPECT_TRUE(world.can_apply(app)) << app.describe();
    EXPECT_EQ(app.subject_from(), Vec2(2, 2));
  }
}

// ---------------------------------------------------------------------------
// TabuList
// ---------------------------------------------------------------------------

TEST(Tabu, EvictsOldestAtCapacity) {
  TabuList tabu(2);
  tabu.push({0, 0});
  tabu.push({1, 1});
  tabu.push({2, 2});  // evicts (0,0)
  EXPECT_FALSE(tabu.contains({0, 0}));
  EXPECT_TRUE(tabu.contains({1, 1}));
  EXPECT_TRUE(tabu.contains({2, 2}));
  EXPECT_EQ(tabu.size(), 2u);
}

TEST(Tabu, ZeroCapacityNeverBlocks) {
  TabuList tabu(0);
  tabu.push({0, 0});
  EXPECT_FALSE(tabu.contains({0, 0}));
}

TEST(Tabu, ClearEmpties) {
  TabuList tabu;
  tabu.push({3, 3});
  tabu.clear();
  EXPECT_FALSE(tabu.contains({3, 3}));
  EXPECT_EQ(tabu.size(), 0u);
}

}  // namespace
}  // namespace sb::core
