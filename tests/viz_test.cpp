// Tests for ASCII/SVG rendering and move-trace export/replay.

#include <gtest/gtest.h>

#include <fstream>

#include "core/reconfig.hpp"
#include "lattice/scenario.hpp"
#include "viz/ascii.hpp"
#include "viz/svg.hpp"
#include "viz/trace.hpp"
#include "xml/xml.hpp"

namespace sb::viz {
namespace {

using lat::BlockId;
using lat::Vec2;

lat::Grid small_grid() {
  lat::Grid grid(4, 3);
  grid.place(BlockId{1}, {1, 0});
  grid.place(BlockId{12}, {2, 0});
  return grid;
}

/// The render APIs take the read facade; tests view a scoped copy.
struct SmallWorld {
  lat::Grid grid = small_grid();
  [[nodiscard]] lat::WorldView view() const { return lat::WorldView(grid); }
};

TEST(Ascii, MarksInputOutputAndBlocks) {
  const std::string art = render_ascii(SmallWorld().view(), {1, 0}, {3, 2});
  EXPECT_NE(art.find(" O "), std::string::npos);  // free output cell
  EXPECT_NE(art.find("1i"), std::string::npos);   // block 1 on the input
  EXPECT_NE(art.find("12"), std::string::npos);   // id rendering
  EXPECT_NE(art.find("+"), std::string::npos);    // border
}

TEST(Ascii, NorthRowRendersFirst) {
  const std::string art = render_ascii(SmallWorld().view(), {1, 0}, {3, 2});
  // Output (3,2) is on the top row; blocks on the bottom row.
  EXPECT_LT(art.find(" O "), art.find("12"));
}

TEST(Ascii, CompactModeUsesHashes) {
  AsciiOptions options;
  options.show_ids = false;
  const std::string art = render_ascii(SmallWorld().view(), {1, 0}, {3, 2}, options);
  EXPECT_NE(art.find('#'), std::string::npos);
  EXPECT_EQ(art.find("12"), std::string::npos);
}

TEST(Svg, IsWellFormedXml) {
  const std::string svg = render_svg(SmallWorld().view(), {1, 0}, {3, 2});
  // Our own XML parser accepts it: structurally sound markup.
  const xml::Document doc = xml::parse(svg);
  EXPECT_EQ(doc.root->name(), "svg");
  EXPECT_FALSE(doc.root->children().empty());
}

TEST(Svg, ContainsBlockIdsAndMarkers) {
  const std::string svg = render_svg(SmallWorld().view(), {1, 0}, {3, 2});
  EXPECT_NE(svg.find(">12<"), std::string::npos);
  EXPECT_NE(svg.find("#3a6fd8"), std::string::npos);  // input marker
  EXPECT_NE(svg.find("#c33ad8"), std::string::npos);  // output marker
}

TEST(Svg, SaveWritesFile) {
  const std::string path = ::testing::TempDir() + "/surface.svg";
  save_svg(path, SmallWorld().view(), {1, 0}, {3, 2});
  std::ifstream in(path);
  EXPECT_TRUE(in.good());
}

TEST(Trace, RecordsThroughSessionListener) {
  core::ReconfigurationSession session(lat::make_fig10_scenario(), {});
  MoveTrace trace;
  session.set_move_listener(trace.recorder());
  const auto result = session.run();
  ASSERT_TRUE(result.complete);
  EXPECT_EQ(trace.size(), result.hops);
  // Epochs strictly increase.
  for (size_t i = 1; i < trace.entries().size(); ++i) {
    EXPECT_GT(trace.entries()[i].epoch, trace.entries()[i - 1].epoch);
  }
}

TEST(Trace, ReplayReproducesFinalGrid) {
  const lat::Scenario scenario = lat::make_fig10_scenario();
  core::ReconfigurationSession session(scenario, {});
  MoveTrace trace;
  session.set_move_listener(trace.recorder());
  ASSERT_TRUE(session.run().complete);

  lat::Grid replayed = scenario.to_grid();
  trace.replay(replayed);
  EXPECT_EQ(replayed, session.simulator().world().grid());
}

TEST(Trace, JsonlHasOneObjectPerHop) {
  core::ReconfigurationSession session(lat::make_fig10_scenario(), {});
  MoveTrace trace;
  session.set_move_listener(trace.recorder());
  const auto result = session.run();
  const std::string jsonl = trace.to_jsonl();
  size_t lines = 0;
  for (char c : jsonl) lines += c == '\n';
  EXPECT_EQ(lines, result.hops);
  EXPECT_NE(jsonl.find("\"rule\":\"carry_NW\""), std::string::npos);
}

TEST(Trace, CsvListsHelpersSeparately) {
  core::ReconfigurationSession session(lat::make_fig10_scenario(), {});
  MoveTrace trace;
  session.set_move_listener(trace.recorder());
  const auto result = session.run();
  const std::string csv = trace.to_csv();
  size_t rows = 0;
  for (char c : csv) rows += c == '\n';
  // Header + one row per elementary displacement.
  EXPECT_EQ(rows, result.elementary_moves + 1);
  EXPECT_NE(csv.find("subject"), std::string::npos);
  EXPECT_NE(csv.find("helper"), std::string::npos);
}

}  // namespace
}  // namespace sb::viz
