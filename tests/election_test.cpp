// Protocol-level tests of the distributed election: message counts that
// must follow exactly from the contact-graph structure, argmin
// correctness, and per-epoch activation coverage.

#include <gtest/gtest.h>

#include "core/motion_planner.hpp"
#include "core/reconfig.hpp"
#include "lattice/scenario.hpp"

namespace sb::core {
namespace {

using lat::BlockId;
using lat::Vec2;

/// Number of lateral contacts (edges) in the scenario's initial layout.
size_t contact_edges(const lat::Scenario& scenario) {
  const lat::Grid grid = scenario.to_grid();
  size_t twice_edges = 0;
  for (const auto& [id, pos] : grid.blocks()) {
    twice_edges += static_cast<size_t>(grid.occupied_neighbor_count(pos));
  }
  return twice_edges / 2;
}

/// Runs the session one event at a time until the predicate holds.
template <typename Pred>
void step_until(ReconfigurationSession& session, Pred&& done) {
  for (int guard = 0; guard < 1'000'000; ++guard) {
    if (done()) return;
    if (session.step_events(1) == sim::StopReason::kQueueEmpty) break;
    if (session.simulator().halted()) break;
  }
  ASSERT_TRUE(done()) << "predicate never satisfied";
}

class ActivateFormulaTest : public ::testing::TestWithParam<int> {};

TEST_P(ActivateFormulaTest, FirstElectionSendsExactly2EMinusNPlus1) {
  // Dijkstra-Scholten accounting on a static graph: the Root sends
  // deg(root) Activates; every other block sends deg(v) - 1 on engagement.
  // Total = sum(deg) - (N-1) = 2E - N + 1, each answered by exactly one
  // Ack before the Root concludes.
  lat::Scenario scenario;
  switch (GetParam()) {
    case 0: scenario = lat::make_fig10_scenario(); break;
    case 1: scenario = lat::make_tower_scenario(3); break;
    default: scenario = lat::make_lpath_scenario(4, 5, 3); break;
  }
  const size_t n = scenario.block_count();
  const size_t e = contact_edges(scenario);
  const auto expected = static_cast<uint64_t>(2 * e - n + 1);

  SessionConfig config;
  if (GetParam() == 2) config.path_shape = PathShape::kCanonicalMonotone;
  ReconfigurationSession session(scenario, config);
  step_until(session, [&] {
    return session.metrics().elections_completed >= 1;
  });
  const auto& stats = session.simulator().stats();
  EXPECT_EQ(stats.messages_by_kind.at("Activate"), expected);
  EXPECT_EQ(stats.messages_by_kind.at("Ack"), expected);
}

INSTANTIATE_TEST_SUITE_P(Scenarios, ActivateFormulaTest,
                         ::testing::Values(0, 1, 2),
                         [](const auto& param_info) {
                           switch (param_info.param) {
                             case 0: return "fig10";
                             case 1: return "tower6";
                             default: return "lpath";
                           }
                         });

TEST(Election, FirstElectedIsGlobalArgmin) {
  const lat::Scenario scenario = lat::make_fig10_scenario();
  ReconfigurationSession session(scenario, {});

  // Compute the expected winner externally with an identical planner.
  PlannerConfig planner_config;
  planner_config.distance.input = scenario.input;
  planner_config.distance.output = scenario.output;
  const MotionPlanner planner(&session.simulator().world().rules(),
                              planner_config);
  int32_t best = kInfiniteDistance;
  BlockId expected;
  for (const auto& [id, pos] : session.simulator().world().grid().blocks()) {
    if (pos == scenario.input) continue;  // the Root
    const MoveDecision d = planner.evaluate(session.simulator().world(), pos,
                                            nullptr, 0, nullptr, nullptr);
    if (d.distance < best) {
      best = d.distance;
      expected = id;
    }
  }
  ASSERT_TRUE(expected.valid());

  BlockId first_mover;
  session.set_move_listener(
      [&](Epoch epoch, BlockId mover, const motion::RuleApplication&) {
        if (epoch == 1) first_mover = mover;
      });
  ASSERT_TRUE(session.run().complete);
  EXPECT_EQ(first_mover, expected);
}

TEST(Election, EveryEpochEvaluatesEveryNonRootBlock) {
  // Remark 2's unit of work: each election activates all N-1 non-root
  // blocks exactly once (connected static graph, no faults).
  const lat::Scenario scenario = lat::make_fig10_scenario();
  ReconfigurationSession session(scenario, {});
  const auto result = session.run();
  ASSERT_TRUE(result.complete);
  EXPECT_EQ(result.distance_computations,
            static_cast<uint64_t>(result.iterations) *
                (scenario.block_count() - 1));
}

TEST(Election, SelectRoutingBoundedByTreeDepth) {
  const auto result =
      ReconfigurationSession::run_scenario(lat::make_fig10_scenario(), {});
  ASSERT_TRUE(result.complete);
  // Each Select traverses at most N-1 tree edges; forwards exclude the
  // Root's initial send.
  EXPECT_LT(result.messages_by_kind.at("Select"),
            result.elections_completed * result.block_count);
  // One Select chain and one ElectedAck chain per election: equal counts.
  EXPECT_EQ(result.messages_by_kind.at("Select"),
            result.messages_by_kind.at("ElectedAck"));
}

TEST(Election, EpochTagsNeverRegress) {
  // The mover's epoch sequence equals 1..iterations with no gaps: exactly
  // one elected hop per Algorithm-1 iteration.
  ReconfigurationSession session(lat::make_fig10_scenario(), {});
  Epoch previous = 0;
  bool contiguous = true;
  session.set_move_listener(
      [&](Epoch epoch, BlockId, const motion::RuleApplication&) {
        contiguous &= epoch == previous + 1;
        previous = epoch;
      });
  const auto result = session.run();
  ASSERT_TRUE(result.complete);
  EXPECT_TRUE(contiguous);
  EXPECT_EQ(previous, result.iterations);
}

TEST(Election, NoSonNotifyWithoutFaultMode) {
  const auto result =
      ReconfigurationSession::run_scenario(lat::make_fig10_scenario(), {});
  EXPECT_EQ(result.messages_by_kind.count("SonNotify"), 0u);
}

TEST(Election, MessageTotalsAreConsistent) {
  const auto result =
      ReconfigurationSession::run_scenario(lat::make_fig10_scenario(), {});
  uint64_t by_kind = 0;
  for (const auto& [kind, count] : result.messages_by_kind) by_kind += count;
  EXPECT_EQ(by_kind, result.messages_sent);
  EXPECT_EQ(result.messages_sent,
            result.messages_delivered + result.messages_dropped);
}

}  // namespace
}  // namespace sb::core
