// Regression-corpus replay through the distributed backend: every minimized
// repro under tests/corpus/ has its scenario swept through a 2-worker
// *spawned* sweep_worker fleet (the full wire path, process boundary
// included) and the merged report must byte-match the local thread-pool
// backend's.
//
// fuzz_corpus_test.cpp proves the corpus agrees across the in-process
// engines; this suite proves the same hostile scenario shapes survive the
// dist machinery — serialization, dispatch to real subprocesses, and the
// at-most-once merge — unchanged. Churn ops never enter a sweep grid on
// either side (compare_dist_backend sweeps only the case's scenario), so
// unlike run_case's dist demotion, churn cases are fair game here: both
// legs ignore the churn plan identically.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "check/differential.hpp"
#include "check/fuzz_case.hpp"

namespace sb::check {
namespace {

namespace fs = std::filesystem;

std::vector<std::string> corpus_files() {
  std::vector<std::string> files;
  for (const fs::directory_entry& entry :
       fs::directory_iterator(SMARTBLOCKS_CORPUS_DIR)) {
    if (entry.path().extension() != ".json") continue;
    files.push_back(entry.path().string());
  }
  std::sort(files.begin(), files.end());
  return files;
}

TEST(CorpusDist, EveryCaseScenarioMatchesLocalThroughSpawnedFleet) {
  DiffOptions options;
  options.run_dist = true;
  options.dist_workers = 2;
  options.dist_worker_binary =
      std::string(SMARTBLOCKS_BIN_DIR) + "/sweep_worker";
  // Sanitizer builds (ASan Debug especially) take minutes per run on the
  // heavy corpus cases; the default 60 s coordinator backstop would read as
  // a spurious timeout divergence. This is a correctness suite, not a
  // latency gate, so give each case ten minutes.
  options.dist_total_timeout_ms = 600000;

  size_t replayed = 0;
  for (const std::string& path : corpus_files()) {
    SCOPED_TRACE(path);
    FuzzCase fuzz_case;
    ASSERT_NO_THROW(fuzz_case = FuzzCase::load(path));
    EXPECT_EQ(compare_dist_backend(fuzz_case, options), "");
    ++replayed;
  }
  EXPECT_GE(replayed, 4u)
      << "the committed corpus should seed several diverse cases";
}

}  // namespace
}  // namespace sb::check
