// Tests for the shared sweep CLI vocabulary (runner/cli_options): flag
// registration/parsing shared by tools/sweep, tools/sweep_worker, and
// examples/large_scale, and the loud-failure validation paths (the flags
// used to fail silently or abort — see ISSUE 5's satellite list).

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "runner/cli_options.hpp"
#include "runner/sweep.hpp"

namespace sb::runner {
namespace {

SweepCliOptions parse(std::vector<std::string> args,
                      size_t min_seeds = 1,
                      SweepCliOptions defaults = [] {
                        SweepCliOptions d;
                        d.scenarios = {"tower16"};
                        return d;
                      }()) {
  CliParser cli("test");
  add_sweep_flags(cli, defaults);
  std::vector<const char*> argv = {"test"};
  for (const std::string& arg : args) argv.push_back(arg.c_str());
  if (!cli.parse(static_cast<int>(argv.size()), argv.data())) {
    throw std::runtime_error("flag-level parse failure");
  }
  return parse_sweep_flags(cli, min_seeds);
}

TEST(SweepCli, DefaultsRoundTrip) {
  const SweepCliOptions options = parse({});
  EXPECT_EQ(options.scenarios, std::vector<std::string>{"tower16"});
  EXPECT_EQ(options.seed_count, 4u);
  EXPECT_EQ(options.master_seed, 0x5eedULL);
  EXPECT_EQ(options.latency, "fixed");
  EXPECT_EQ(options.shards, 1u);
  EXPECT_EQ(ruleset_label(options), "standard");
}

TEST(SweepCli, ParsesTheFullVocabulary) {
  const SweepCliOptions options =
      parse({"--scenario", "tower16,tower64", "--seeds", "8", "--master-seed",
             "0xabc", "--latency", "uniform", "--max-events", "1000",
             "--shards", "4", "--shard-threads", "2", "--threads", "3",
             "extra.surf"});
  EXPECT_EQ(options.scenarios,
            (std::vector<std::string>{"tower16", "tower64", "extra.surf"}));
  EXPECT_EQ(options.seed_count, 8u);
  EXPECT_EQ(options.master_seed, 0xabcULL);
  EXPECT_EQ(options.latency, "uniform");
  EXPECT_EQ(ruleset_label(options), "uniform");
  EXPECT_EQ(options.max_events, 1000u);
  EXPECT_EQ(options.shards, 4u);
  EXPECT_EQ(options.shard_threads, 2u);
  EXPECT_EQ(options.threads, 3u);

  const core::SessionConfig config = make_session_config(options);
  EXPECT_EQ(config.max_events, 1000u);
  EXPECT_EQ(config.sim.shards, 4u);
  EXPECT_EQ(config.sim.shard_threads, 2u);
}

TEST(SweepCli, RejectsOutOfRangeCounts) {
  EXPECT_THROW(parse({"--seeds", "0"}), std::runtime_error);
  EXPECT_THROW(parse({"--seeds", "-3"}), std::runtime_error);
  EXPECT_THROW(parse({"--shards", "0"}), std::runtime_error);
  EXPECT_THROW(parse({"--shard-threads", "-1"}), std::runtime_error);
  EXPECT_THROW(parse({"--threads", "-1"}), std::runtime_error);
  EXPECT_THROW(parse({"--max-events", "-5"}), std::runtime_error);
  // large_scale's single-run mode admits --seeds 0 but not negatives.
  EXPECT_EQ(parse({"--seeds", "0"}, /*min_seeds=*/0).seed_count, 0u);
  EXPECT_THROW(parse({"--seeds", "-1"}, /*min_seeds=*/0),
               std::runtime_error);
}

TEST(SweepCli, ClampsShardThreadsToTheShardCount) {
  // A shard window is drained by at most one thread, so threads beyond the
  // shard count would silently idle; parse_sweep_flags clamps (loudly).
  const SweepCliOptions clamped =
      parse({"--shards", "2", "--shard-threads", "8"});
  EXPECT_EQ(clamped.shards, 2u);
  EXPECT_EQ(clamped.shard_threads, 2u);
  // At or below the shard count passes through untouched.
  EXPECT_EQ(parse({"--shards", "4", "--shard-threads", "4"}).shard_threads,
            4u);
  EXPECT_EQ(parse({"--shards", "4", "--shard-threads", "3"}).shard_threads,
            3u);
  // 0 is the hardware-concurrency sentinel, never clamped here (the engine
  // still caps the resolved value at the shard count).
  EXPECT_EQ(parse({"--shards", "2", "--shard-threads", "0"}).shard_threads,
            0u);
}

TEST(SweepCli, RejectsNonNumericFlagsAtTheParserLevel) {
  // CliParser itself refuses non-numeric values for int flags — parse()
  // maps that to a throw here; the tools print the message and exit 1.
  EXPECT_THROW(parse({"--shards", "abc"}), std::runtime_error);
  EXPECT_THROW(parse({"--shard-threads", "2x"}), std::runtime_error);
  EXPECT_THROW(parse({"--seeds", "4.5"}), std::runtime_error);
}

TEST(SweepCli, RejectsBadMasterSeedAndLatency) {
  EXPECT_THROW(parse({"--master-seed", "not-a-seed"}), std::runtime_error);
  EXPECT_THROW(parse({"--latency", "warp"}), std::runtime_error);
  EXPECT_THROW(parse({"--scenario", "tower16,,tower64"}),
               std::runtime_error);
}

TEST(SweepCli, GridResolutionFailsLoudlyWithAHint) {
  SweepCliOptions options;
  options.scenarios = {"towerX"};
  try {
    (void)make_sweep_grid(options);
    FAIL() << "expected make_sweep_grid to throw";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("--list-scenarios"),
              std::string::npos);
  }
  SweepCliOptions empty;
  EXPECT_THROW((void)make_sweep_grid(empty), std::runtime_error);
}

TEST(SweepCli, GridMatchesTheGridTheSweepToolBuilds) {
  const SweepCliOptions options =
      parse({"--scenario", "tower16", "--seeds", "2", "--latency",
             "uniform"});
  const SweepGrid grid = make_sweep_grid(options);
  ASSERT_EQ(grid.scenarios.size(), 1u);
  EXPECT_EQ(grid.scenarios[0].first, "tower16");
  ASSERT_EQ(grid.configs.size(), 1u);
  EXPECT_EQ(grid.configs[0].first, "uniform");
  const std::vector<RunSpec> specs = expand(grid);
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_EQ(specs[0].seed, derive_run_seed(options.master_seed, 0));
  EXPECT_EQ(specs[1].seed, derive_run_seed(options.master_seed, 1));
}

TEST(SweepCli, VocabularyMentionsEveryFamily) {
  const std::string vocabulary = scenario_vocabulary();
  for (const char* family : {"tower<N>", "blob<N>", "rect<N>", "fig10"}) {
    EXPECT_NE(vocabulary.find(family), std::string::npos) << family;
  }
}

}  // namespace
}  // namespace sb::runner
