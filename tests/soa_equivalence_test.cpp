// SoA <-> AoS equivalence suite for the WorldState column store and the
// batched connectivity oracle (the PR-7 redesign).
//
// Three layers of evidence, from micro to end-to-end:
//
//   1. Column mirroring: random mutation sequences (place / remove / move /
//      simultaneous handover chains) through Grid must keep the SoA columns
//      (occupancy byte image, position columns) byte-consistent with the
//      AoS cell array they shadow, as observed through lat::WorldView.
//
//   2. Oracle verdicts: the batched row sweeps over the occupancy image
//      must produce exactly the verdict bytes of the per-candidate scalar
//      path (forced by installing a ConnectivityScratchView, the same
//      mechanism parallel shard windows use), including after mutations
//      that stale the per-row version stamps.
//
//   3. Traces: every committed corpus repro and a batch of fresh fuzz
//      seeds run through the full differential harness. Backend A (classic)
//      answers probes from the batched row cache while backends B/C answer
//      window probes on the per-candidate path, so the harness's
//      byte-for-byte move-trace / final-occupancy comparison crosses the
//      two oracle implementations on every case.
//
// The binary is registered with ctest twice (tests/CMakeLists.txt): once
// with the default batched oracle and once under SB_CONN_BATCH=0, so both
// layouts replay the corpus on every test run and a digest that drifts on
// either path fails loudly.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "check/differential.hpp"
#include "check/generator.hpp"
#include "lattice/connectivity.hpp"
#include "lattice/grid.hpp"
#include "lattice/world_view.hpp"
#include "util/rng.hpp"

namespace sb {
namespace {

namespace fs = std::filesystem;

// -- shared random-grid machinery -------------------------------------------

/// Random surface with a mix of connected-blob growth and loose sprinkles;
/// `occupied_cells` tracks the occupied positions for the mutation driver.
lat::Grid random_grid(Rng& rng, std::vector<lat::Vec2>& occupied_cells,
                      uint32_t& next_id) {
  const auto w = static_cast<int32_t>(rng.next_in(4, 14));
  const auto h = static_cast<int32_t>(rng.next_in(4, 14));
  lat::Grid grid(w, h);
  occupied_cells.clear();
  if (rng.next_bool()) {
    const lat::Vec2 seed{static_cast<int32_t>(rng.next_in(0, w - 1)),
                         static_cast<int32_t>(rng.next_in(0, h - 1))};
    grid.place(lat::BlockId{next_id++}, seed);
    occupied_cells.push_back(seed);
    const auto target = static_cast<size_t>(
        rng.next_in(2, static_cast<int64_t>(w) * h / 2));
    for (size_t attempts = 0;
         grid.block_count() < target && attempts < 400; ++attempts) {
      const lat::Vec2 base = occupied_cells[rng.pick_index(occupied_cells)];
      const lat::Vec2 q =
          base + delta(static_cast<lat::Direction>(rng.next_in(0, 3)));
      if (grid.in_bounds(q) && !grid.occupied(q)) {
        grid.place(lat::BlockId{next_id++}, q);
        occupied_cells.push_back(q);
      }
    }
  } else {
    for (int32_t y = 0; y < h; ++y) {
      for (int32_t x = 0; x < w; ++x) {
        if (rng.next_in(0, 2) == 0) {
          grid.place(lat::BlockId{next_id++}, {x, y});
          occupied_cells.push_back({x, y});
        }
      }
    }
  }
  return grid;
}

/// Asserts that the SoA columns agree with the AoS cell array everywhere:
/// occupancy bytes (including the always-empty padding ring) against at(),
/// and the position columns against the cells via WorldView round-trips.
void expect_columns_mirror_cells(const lat::Grid& grid) {
  const lat::WorldView view(grid);
  const lat::WorldState& state = grid.state();
  // Occupancy image vs cell array, cell by cell.
  for (int32_t y = 0; y < grid.height(); ++y) {
    const uint8_t* row = state.occupancy_row(y);
    for (int32_t x = 0; x < grid.width(); ++x) {
      const bool cell_says = view.at({x, y}).valid();
      ASSERT_EQ(row[x] != 0, cell_says)
          << "occupancy byte disagrees with the cell array at (" << x << ","
          << y << ")";
    }
    // Padding columns never go occupied.
    ASSERT_EQ(row[-1], 0) << "left padding dirty in row " << y;
    ASSERT_EQ(row[grid.width()], 0) << "right padding dirty in row " << y;
  }
  for (const int32_t y : {-1, grid.height()}) {
    const uint8_t* row = state.occupancy_row(y);
    for (int32_t x = -1; x <= grid.width(); ++x) {
      ASSERT_EQ(row[x], 0) << "padding row " << y << " dirty at x=" << x;
    }
  }
  // Position columns vs cells: every occupied cell round-trips through
  // position_of, and every placed id points at a cell holding it.
  size_t from_cells = 0;
  for (int32_t y = 0; y < grid.height(); ++y) {
    for (int32_t x = 0; x < grid.width(); ++x) {
      const lat::BlockId id = view.at({x, y});
      if (!id.valid()) continue;
      ++from_cells;
      ASSERT_TRUE(view.contains(id));
      ASSERT_EQ(view.position_of(id), (lat::Vec2{x, y}));
    }
  }
  ASSERT_EQ(from_cells, view.block_count());
  for (const auto& [id, pos] : view.blocks()) {
    ASSERT_EQ(view.at(pos), id);
  }
}

TEST(SoaEquivalence, ColumnsMirrorTheCellArrayUnderRandomMutations) {
  Rng rng(0x50A50A50AULL);
  std::vector<lat::Vec2> cells;
  for (int trial = 0; trial < 60; ++trial) {
    uint32_t next_id = 1;
    lat::Grid grid = random_grid(rng, cells, next_id);
    expect_columns_mirror_cells(grid);
    for (int step = 0; step < 40; ++step) {
      const int action = static_cast<int>(rng.next_in(0, 3));
      if (action == 0 || cells.empty()) {  // place
        const lat::Vec2 q{
            static_cast<int32_t>(rng.next_in(0, grid.width() - 1)),
            static_cast<int32_t>(rng.next_in(0, grid.height() - 1))};
        if (!grid.occupied(q)) {
          grid.place(lat::BlockId{next_id++}, q);
          cells.push_back(q);
        }
      } else if (action == 1) {  // remove
        const size_t index = rng.pick_index(cells);
        grid.remove(cells[index]);
        cells[index] = cells.back();
        cells.pop_back();
      } else if (action == 2) {  // single move
        const size_t index = rng.pick_index(cells);
        const lat::Vec2 from = cells[index];
        const lat::Vec2 to =
            from + delta(static_cast<lat::Direction>(rng.next_in(0, 3)));
        if (grid.in_bounds(to) && !grid.occupied(to)) {
          grid.move(from, to);
          cells[index] = to;
        }
      } else {  // handover chain A->B, B->C as one atomic step
        const size_t index = rng.pick_index(cells);
        const lat::Vec2 a = cells[index];
        const lat::Vec2 b =
            a + delta(static_cast<lat::Direction>(rng.next_in(0, 3)));
        const lat::Vec2 c =
            b + delta(static_cast<lat::Direction>(rng.next_in(0, 3)));
        if (grid.occupied(b) && grid.in_bounds(c) && !grid.occupied(c) &&
            c != a) {
          grid.move_simultaneously({{a, b}, {b, c}});
          const auto b_at = std::find(cells.begin(), cells.end(), b);
          ASSERT_NE(b_at, cells.end());
          *b_at = c;
          cells[index] = b;
        }
      }
      expect_columns_mirror_cells(grid);
    }
  }
}

// -- batched vs scalar verdicts ---------------------------------------------

/// Scalar removal verdicts for `cells`, via the same escape hatch the
/// sharded simulator uses: with a ConnectivityScratchView installed on the
/// thread, batch_removal_verdicts serves every probe from the per-candidate
/// ring-mask lookup and never touches the shared row cache. The grid is not
/// mutated while the view is installed (mirroring the frozen-window
/// contract), so the redirected hint cache cannot go stale.
std::vector<uint8_t> scalar_verdicts(const lat::Grid& grid,
                                     const std::vector<lat::Vec2>& cells) {
  std::vector<uint8_t> out(cells.size(), 0xAA);
  lat::ConnectivityScratchView view;
  lat::Grid::install_connectivity_view(&view);
  lat::batch_removal_verdicts(grid, cells.data(), cells.size(), out.data());
  lat::Grid::install_connectivity_view(nullptr);
  return out;
}

TEST(SoaEquivalence, BatchedVerdictRowsMatchTheScalarOracle) {
  Rng rng(0xBA7C4EDULL);
  std::vector<lat::Vec2> cells;
  for (int trial = 0; trial < 150; ++trial) {
    uint32_t next_id = 1;
    lat::Grid grid = random_grid(rng, cells, next_id);
    // Every cell of every row, not just occupied ones: the verdict bytes
    // must agree on empty cells too (the sweep computes whole rows).
    std::vector<lat::Vec2> all_cells;
    for (int32_t y = 0; y < grid.height(); ++y) {
      for (int32_t x = 0; x < grid.width(); ++x) {
        all_cells.push_back({x, y});
      }
    }
    const std::vector<uint8_t> scalar = scalar_verdicts(grid, all_cells);
    std::vector<uint8_t> batched(all_cells.size(), 0x55);
    lat::batch_removal_verdicts(grid, all_cells.data(), all_cells.size(),
                                batched.data());
    ASSERT_EQ(batched, scalar) << "trial " << trial;

    // Mutate and re-compare: the per-row version stamps must invalidate
    // exactly the rows whose verdicts can change.
    for (int step = 0; step < 6; ++step) {
      if (cells.empty()) break;
      const size_t index = rng.pick_index(cells);
      const lat::Vec2 from = cells[index];
      const lat::Vec2 to =
          from + delta(static_cast<lat::Direction>(rng.next_in(0, 3)));
      if (!grid.in_bounds(to) || grid.occupied(to)) continue;
      grid.move(from, to);
      cells[index] = to;
      const std::vector<uint8_t> scalar_after =
          scalar_verdicts(grid, all_cells);
      std::vector<uint8_t> batched_after(all_cells.size(), 0x55);
      lat::batch_removal_verdicts(grid, all_cells.data(), all_cells.size(),
                                  batched_after.data());
      ASSERT_EQ(batched_after, scalar_after)
          << "trial " << trial << " step " << step
          << ": stale verdict row survived a mutation";
    }
  }
}

TEST(SoaEquivalence, WideRowSweepMatchesTheScalarKernel) {
  // The SIMD row kernel (16 cells per step, SSSE3 bitset gathers) against
  // the scalar reference, cell for cell. Widths straddle the vector step:
  // below 16 (pure scalar tail), exact multiples (no tail), and odd
  // offsets around them (worst-case tails). On hosts without SSSE3 the
  // wide kernel falls back to the scalar one and the test pins that too.
  Rng rng(0x51DE0ULL);
  for (const int32_t width : {5, 15, 16, 17, 31, 32, 33, 48, 61}) {
    for (int trial = 0; trial < 20; ++trial) {
      lat::Grid grid(width, 12);
      uint32_t next_id = 1;
      for (int32_t y = 0; y < grid.height(); ++y) {
        for (int32_t x = 0; x < width; ++x) {
          // Trial 0 is fully occupied (every cell takes the 0xFF full-ring
          // mask); later trials thin out at random.
          if (trial != 0 && rng.next_in(0, 2) != 0) continue;
          grid.place(lat::BlockId{next_id++}, {x, y});
        }
      }
      std::vector<uint8_t> scalar(static_cast<size_t>(width), 0xAA);
      std::vector<uint8_t> wide(static_cast<size_t>(width), 0x55);
      for (int32_t y = 0; y < grid.height(); ++y) {
        lat::detail::compute_removal_row_scalar(grid, y, scalar.data());
        lat::detail::compute_removal_row_wide(grid, y, wide.data());
        ASSERT_EQ(wide, scalar)
            << "width " << width << " trial " << trial << " row " << y;
      }
    }
  }
}

TEST(SoaEquivalence, LocalChecksAgreeAcrossThePathSelector) {
  // local_removal_check routes through the row cache sequentially and
  // through the scalar lookup under a scratch view; both must answer
  // identically for every occupied cell.
  Rng rng(0x10CA1ULL);
  std::vector<lat::Vec2> cells;
  int probes = 0;
  for (int trial = 0; trial < 80; ++trial) {
    uint32_t next_id = 1;
    const lat::Grid grid = random_grid(rng, cells, next_id);
    for (const lat::Vec2 p : cells) {
      const lat::LocalVerdict batched = lat::local_removal_check(grid, p);
      lat::ConnectivityScratchView view;
      lat::Grid::install_connectivity_view(&view);
      const lat::LocalVerdict scalar = lat::local_removal_check(grid, p);
      lat::Grid::install_connectivity_view(nullptr);
      ASSERT_EQ(batched, scalar) << "trial " << trial << " at " << p;
      ++probes;
    }
  }
  EXPECT_GT(probes, 1000);
}

// -- end-to-end: corpus + fresh seeds through both oracle paths -------------

std::vector<std::string> corpus_files() {
  std::vector<std::string> files;
  for (const fs::directory_entry& entry :
       fs::directory_iterator(SMARTBLOCKS_CORPUS_DIR)) {
    if (entry.path().extension() != ".json") continue;
    files.push_back(entry.path().string());
  }
  std::sort(files.begin(), files.end());
  return files;
}

TEST(SoaEquivalence, CorpusReplaysAgreeAcrossOraclePaths) {
  // Backend A (classic) serves probes from the batched row cache; backends
  // B/C serve their parallel-window probes per-candidate. run_case compares
  // their move traces and final occupancy byte-for-byte, so each replay is
  // a batched-vs-scalar trace equality check. (Under the SB_CONN_BATCH=0
  // ctest registration all backends run scalar and the same comparison
  // pins the scalar path against itself across engines.)
  for (const std::string& path : corpus_files()) {
    SCOPED_TRACE(path);
    check::FuzzCase fuzz_case;
    ASSERT_NO_THROW(fuzz_case = check::FuzzCase::load(path));
    const check::DiffOutcome outcome = check::run_case(fuzz_case);
    EXPECT_TRUE(outcome.ok()) << outcome.report();
  }
}

TEST(SoaEquivalence, FreshFuzzSeedsAgreeAcrossOraclePaths) {
  // Fresh seeds (not the minimized corpus shapes), forced comparable so
  // the harness holds move traces byte-identical between the batched
  // classic run and the scalar-window sharded runs.
  check::GeneratorOptions options;
  options.always_comparable = true;
  for (uint64_t seed = 0x50A00; seed < 0x50A0C; ++seed) {
    const check::FuzzCase fuzz_case = check::generate_case(seed, options);
    SCOPED_TRACE(fuzz_case.describe());
    const check::DiffOutcome outcome = check::run_case(fuzz_case);
    EXPECT_TRUE(outcome.ok()) << outcome.report();
  }
}

}  // namespace
}  // namespace sb
