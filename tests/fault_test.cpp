// Tests for the fault-tolerance extension (paper §VI future work: "we plan
// also to deal with fault detection, e.g., block failures").

#include <gtest/gtest.h>

#include "check/oracle.hpp"
#include "core/reconfig.hpp"
#include "lattice/scenario.hpp"

namespace sb::core {
namespace {

using lat::BlockId;
using lat::Vec2;

SessionConfig fault_config() {
  SessionConfig config;
  config.ack_timeout = 500;  // latency is fixed(1); generous margin
  config.max_events = 100'000'000;
  return config;
}

BlockId block_at(const lat::Scenario& scenario, Vec2 pos) {
  for (const auto& [id, p] : scenario.blocks) {
    if (p == pos) return id;
  }
  return lat::kInvalidBlock;
}

/// fig10 with one extra feeder block: the lane holds 7 blocks for 5 path
/// entries, so the system tolerates losing one lane block outright.
lat::Scenario slack_scenario() {
  lat::Scenario s = lat::make_fig10_scenario();
  s.name = "fig10-slack";
  s.blocks.emplace_back(BlockId{13}, Vec2{2, 6});
  SB_ASSERT(lat::validate(s).empty());
  return s;
}

TEST(Fault, RedundantLaneBlockFailureSurvived) {
  // Kill the lane's bottom block early. The remaining six feeders still
  // cover five path entries plus the final-carry helper, and the dead
  // block stays attached beside the Root, so the alive subgraph remains
  // connected. With ack timeouts the elections route around the silent
  // block and the path completes.
  const lat::Scenario scenario = slack_scenario();
  ReconfigurationSession session(scenario, fault_config());
  session.step_events(300);
  session.simulator().kill_module(block_at(scenario, {2, 0}));
  const SessionResult result = session.run();
  EXPECT_TRUE(result.complete)
      << "blocked=" << result.blocked
      << " stop=" << to_string(result.stop_reason);
}

TEST(Fault, CutVertexFailureReportsBlocked) {
  // A dead path-seed block eventually becomes a cut vertex of the alive
  // graph (once its lane neighbour climbs away), splitting the Root from
  // the upper half. The algorithm cannot finish - but it must *diagnose*
  // this (blocked) rather than hang.
  const lat::Scenario scenario = lat::make_fig10_scenario();
  ReconfigurationSession session(scenario, fault_config());
  session.step_events(500);
  session.simulator().kill_module(block_at(scenario, {1, 2}));
  const SessionResult result = session.run();
  EXPECT_FALSE(result.complete);
  EXPECT_TRUE(result.blocked);
  EXPECT_EQ(result.stop_reason, sim::StopReason::kHalted);
}

TEST(Fault, WithoutTimeoutsAFailureDeadlocks) {
  // The control experiment: the same failure with ack_timeout = 0 starves
  // the election (the dead block's father waits forever) and the event
  // queue simply drains.
  const lat::Scenario scenario = lat::make_fig10_scenario();
  SessionConfig config;
  config.ack_timeout = 0;
  ReconfigurationSession session(scenario, config);
  session.step_events(500);
  session.simulator().kill_module(block_at(scenario, {1, 2}));
  const SessionResult result = session.run();
  EXPECT_FALSE(result.complete);
  EXPECT_EQ(result.stop_reason, sim::StopReason::kQueueEmpty);
}

TEST(Fault, DeadLaneBlockTerminatesCleanly) {
  // Killing a feeder-lane block may make completion impossible (the tower
  // has exactly one spare); the run must still end in a clean terminal
  // state - complete or blocked - rather than hanging.
  const lat::Scenario scenario = lat::make_fig10_scenario();
  ReconfigurationSession session(scenario, fault_config());
  session.step_events(300);
  session.simulator().kill_module(block_at(scenario, {2, 0}));
  const SessionResult result = session.run();
  EXPECT_TRUE(result.complete || result.blocked)
      << to_string(result.stop_reason);
  EXPECT_NE(result.stop_reason, sim::StopReason::kEventLimit);
}

TEST(Fault, KillingLaneTopMidElectionRecovers) {
  // The lane-top block is the likeliest elected block early on; killing it
  // shortly after the start exercises the Root's Select/MoveDone timeout
  // and the election-restart path.
  const lat::Scenario scenario = lat::make_fig10_scenario();
  ReconfigurationSession session(scenario, fault_config());
  session.step_events(40);  // mid-first-election
  session.simulator().kill_module(block_at(scenario, {2, 5}));
  const SessionResult result = session.run();
  EXPECT_TRUE(result.complete || result.blocked);
  EXPECT_NE(result.stop_reason, sim::StopReason::kEventLimit);
}

TEST(Fault, HealthyRunWithTimeoutsMatchesPlainRun) {
  // Arming timeouts must not change a failure-free execution's outcome.
  const lat::Scenario scenario = lat::make_fig10_scenario();
  const SessionResult plain =
      ReconfigurationSession::run_scenario(scenario, SessionConfig{});
  const SessionResult armed =
      ReconfigurationSession::run_scenario(scenario, fault_config());
  ASSERT_TRUE(plain.complete);
  ASSERT_TRUE(armed.complete);
  EXPECT_EQ(armed.elementary_moves, plain.elementary_moves);
  EXPECT_EQ(armed.iterations, plain.iterations);
  EXPECT_EQ(armed.election_restarts, 0u);
}

TEST(Fault, RestartCounterVisibleInResult) {
  const lat::Scenario scenario = lat::make_fig10_scenario();
  ReconfigurationSession session(scenario, fault_config());
  session.step_events(40);
  session.simulator().kill_module(block_at(scenario, {2, 5}));
  const SessionResult result = session.run();
  // Whatever the terminal state, the counters must be consistent.
  EXPECT_EQ(result.election_restarts, session.metrics().election_restarts);
  EXPECT_GE(result.iterations, 1u);
}

/// First free in-bounds cell (row-major) attachable to the structure and
/// distinct from the output — where a hot-joining block can land right now.
Vec2 join_site(ReconfigurationSession& session) {
  const lat::Grid& grid = session.simulator().world().grid();
  for (int32_t y = 0; y < grid.height(); ++y) {
    for (int32_t x = 0; x < grid.width(); ++x) {
      const Vec2 pos{x, y};
      if (grid.occupied(pos) || pos == session.scenario().output) continue;
      if (grid.occupied_neighbor_count(pos) == 0) continue;
      if (session.simulator().cell_in_motion(pos)) continue;
      return pos;
    }
  }
  return {-1, -1};
}

TEST(Fault, HotJoinDuringReconfigurationIsAdopted) {
  // A block that docks onto the surface mid-run must be started, counted,
  // and folded into the ongoing reconfiguration; the extra spare must not
  // break completion.
  const lat::Scenario scenario = lat::make_fig10_scenario();
  ReconfigurationSession session(scenario, SessionConfig{});
  check::InvariantOracle oracle;
  oracle.attach(session);
  session.step_events(200);
  const size_t before = session.simulator().module_count();
  const Vec2 site = join_site(session);
  ASSERT_NE(site.x, -1);
  session.hot_join(BlockId{99}, site);
  oracle.expect_join();
  EXPECT_EQ(session.simulator().module_count(), before + 1);
  const SessionResult result = session.run();
  EXPECT_TRUE(result.complete || result.blocked)
      << to_string(result.stop_reason);
  EXPECT_NE(result.stop_reason, sim::StopReason::kEventLimit);
  EXPECT_TRUE(oracle.clean()) << oracle.violations().front();
}

TEST(Fault, DeathAndHotJoinChurnTogether) {
  // The full churn gauntlet in one run: a lane block dies mid-election,
  // then a replacement hot-joins while the timeout machinery is still
  // routing around the corpse. The run must reach a clean terminal state
  // with every invariant intact (the dead block stays on the surface, so
  // conservation holds without adjustment; the join adds one).
  const lat::Scenario scenario = slack_scenario();
  ReconfigurationSession session(scenario, fault_config());
  check::InvariantOracle oracle;
  oracle.attach(session);
  session.step_events(300);
  session.simulator().kill_module(block_at(scenario, {2, 0}));
  session.step_events(200);
  const Vec2 site = join_site(session);
  ASSERT_NE(site.x, -1);
  session.hot_join(BlockId{99}, site);
  oracle.expect_join();
  const SessionResult result = session.run();
  EXPECT_TRUE(result.complete || result.blocked)
      << to_string(result.stop_reason);
  EXPECT_NE(result.stop_reason, sim::StopReason::kEventLimit);
  EXPECT_TRUE(oracle.clean()) << oracle.violations().front();
  EXPECT_GT(oracle.checks_run(), 0u);
}

TEST(Fault, StepEventsIsIdempotentOnStart) {
  ReconfigurationSession session(lat::make_fig10_scenario(),
                                 SessionConfig{});
  session.step_events(10);
  session.step_events(10);  // must not re-start modules
  const SessionResult result = session.run();
  EXPECT_TRUE(result.complete);
}

}  // namespace
}  // namespace sb::core
