// Regenerates the shipped data files under data/ from the built-in
// generators, so the on-disk form (what a hardware deployment would load)
// can never drift from the code. Run from the repo root:
//
//   $ ./build/gen_data data
//
// data_test.cpp asserts the round-trip.

#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>

#include "lattice/scenario.hpp"
#include "motion/rule_library.hpp"
#include "motion/rule_xml.hpp"

namespace {

void write_file(const std::filesystem::path& path, const std::string& text) {
  std::filesystem::create_directories(path.parent_path());
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("cannot open " + path.string());
  }
  out << text;
  std::cout << "wrote " << path.string() << " (" << text.size() << " bytes)\n";
}

}  // namespace

int main(int argc, char** argv) {
  const std::filesystem::path root = argc > 1 ? argv[1] : "data";
  try {
    write_file(root / "rules" / "standard_capabilities.xml",
               sb::motion::serialize_capabilities(
                   sb::motion::RuleLibrary::standard()));
    write_file(root / "scenarios" / "fig10.surf",
               sb::lat::serialize_scenario(sb::lat::make_fig10_scenario()));
    write_file(root / "scenarios" / "tower16.surf",
               sb::lat::serialize_scenario(sb::lat::make_tower_scenario(8)));
  } catch (const std::exception& e) {
    std::cerr << "gen_data: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
