// Multi-run sweep driver: scenario x seed x rule-set grids with
// machine-readable BENCH_sim.json output, on either the in-process
// thread-pool backend or a multi-process coordinator/worker fleet.
//
//   $ ./sweep --scenario tower16 --seeds 8 --threads 4
//   $ ./sweep data/scenarios/fig10.surf --seeds 4 --json out.json
//   $ ./sweep --scenario blob100000 --shards 8 --max-events 2000000
//   $ ./sweep --scenario tower16,tower64 --backend dist --workers 3
//   $ ./sweep --backend dist --workers 0 --bind 0.0.0.0 --port 7777
//         # then on other machines: ./sweep_worker --connect <host>:7777
//
// Scenario names are resolved by lat::resolve_scenario (--list-scenarios
// prints the vocabulary). The two backends produce byte-identical
// BENCH_sim.json for the same grid modulo the wall-clock fields; pass
// --scrub-timing to zero those and make the file a pure function of the
// grid (the CI dist-smoke job diffs the backends this way).

#include <cstdio>
#include <cstdlib>
#include <exception>
#include <stdexcept>
#include <string>
#include <vector>

#include "dist/coordinator.hpp"
#include "dist/spawn.hpp"
#include "dist/worker.hpp"
#include "runner/cli_options.hpp"
#include "runner/sweep.hpp"
#include "util/fmt.hpp"
#include "util/string_util.hpp"

namespace {

using namespace sb;

/// Runs the grid on the coordinator/worker fleet; returns rows in spec
/// order (byte-identical to what the local backend computes).
std::vector<runner::RunRow> run_dist(const runner::SweepCliOptions& options,
                                     const CliParser& cli) {
  dist::Coordinator::Options copts;
  copts.bind_address = cli.get_string("bind");
  const int64_t port = cli.get_int("port");
  if (port < 0 || port > 65535) {
    throw std::runtime_error(fmt("--port must be in [0, 65535], got {}",
                                 port));
  }
  copts.port = static_cast<uint16_t>(port);
  const int64_t unit_size = cli.get_int("unit-size");
  if (unit_size < 1) {
    throw std::runtime_error(fmt("--unit-size must be >= 1, got {}",
                                 unit_size));
  }
  copts.unit_size = static_cast<size_t>(unit_size);
  copts.unit_timeout_ms = runner::parse_ms_flag(cli, "unit-timeout-ms", 1);
  copts.verbose = cli.get_bool("verbose");

  const int64_t workers = cli.get_int("workers");
  if (workers < 0) {
    throw std::runtime_error(
        fmt("--workers must be >= 0 (0 = serve external sweep_worker "
            "processes only), got {}",
            workers));
  }

  dist::Coordinator coordinator(options, copts);
  std::printf("sweep: %zu runs on %lld dist workers (port %u)\n",
              coordinator.spec_count(), static_cast<long long>(workers),
              coordinator.port());

  // Spawn the local fleet before run() starts service threads (fork in a
  // threaded process is not survivable). Workers connect and are queued by
  // the listener backlog until the coordinator starts accepting.
  std::vector<dist::WorkerProcess> fleet;
  if (workers > 0) {
    long fault_after = -1;
    if (const char* fault = std::getenv(dist::kFleetFaultEnv)) {
      const auto parsed = parse_int(fault);
      if (!parsed.has_value() || *parsed < 0) {
        throw std::runtime_error(
            fmt("{} must be a non-negative unit count, got '{}'",
                dist::kFleetFaultEnv, fault));
      }
      fault_after = static_cast<long>(*parsed);
      std::printf("sweep: fault injection armed — worker 0 dies after %ld "
                  "units\n",
                  fault_after);
    }
    fleet = dist::spawn_worker_fleet(dist::default_worker_binary(),
                                     "127.0.0.1", coordinator.port(),
                                     static_cast<size_t>(workers),
                                     fault_after, copts.verbose);
  }

  std::vector<runner::RunRow> rows = coordinator.run();

  for (size_t i = 0; i < fleet.size(); ++i) {
    const int code = dist::reap_worker(fleet[i]);
    if (code == dist::Worker::kExitFault) {
      std::printf("sweep: worker %zu died by fault injection (reassignment "
                  "covered its units)\n",
                  i);
    } else if (code != 0) {
      std::fprintf(stderr, "sweep: worker %zu exited with code %d\n", i,
                   code);
    }
  }
  return rows;
}

int run_sweep(int argc, char** argv) {
  CliParser cli("parallel scenario/seed/rule-set sweep harness");
  runner::SweepCliOptions defaults;
  defaults.scenarios = {"tower16"};
  runner::add_sweep_flags(cli, defaults);
  cli.add_string("json", "", "write BENCH_sim.json here ('-' = stdout)");
  cli.add_bool("trace", false,
               "capture per-run move traces (printed count; local backend "
               "only)");
  cli.add_bool("list-scenarios", false,
               "print the scenario vocabulary and exit");
  cli.add_bool("scrub-timing", false,
               "zero wall-clock fields in the report so the JSON is a pure "
               "function of the grid (backend-independent byte-for-byte)");
  cli.add_string("backend", "local",
                 "execution backend: local (in-process thread pool) | dist "
                 "(coordinator + worker fleet)");
  cli.add_int("workers", 3,
              "dist: subprocess workers to spawn (0 = only serve external "
              "sweep_worker connections)");
  cli.add_string("bind", "127.0.0.1",
                 "dist: coordinator listen address (0.0.0.0 for remote "
                 "workers)");
  cli.add_int("port", 0, "dist: coordinator listen port (0 = ephemeral)");
  cli.add_int("unit-size", 1, "dist: specs per work unit");
  cli.add_int("unit-timeout-ms", 600000,
              "dist: hard per-unit deadline before an in-flight unit is "
              "also handed to another worker (set above the worst-case "
              "runtime of one unit)");
  cli.add_bool("verbose", false, "dist: fleet chatter on stderr");
  if (!cli.parse(argc, argv)) return 1;

  if (cli.get_bool("list-scenarios")) {
    std::printf("%s", runner::scenario_vocabulary().c_str());
    return 0;
  }

  const runner::SweepCliOptions options = runner::parse_sweep_flags(cli);
  const std::string backend = cli.get_string("backend");
  if (backend != "local" && backend != "dist") {
    throw std::runtime_error("unknown --backend '" + backend +
                             "' (local | dist)");
  }

  runner::SweepRunner::Options ropts;
  ropts.threads = options.threads;
  ropts.master_seed = options.master_seed;
  ropts.capture_traces = backend == "local" && cli.get_bool("trace");
  ropts.generator = "sweep";

  // Both branches leave the report built by the same construction path:
  // SweepRunner::run assembles through assemble_report internally.
  runner::BenchReport report{"sweep"};
  std::vector<runner::SweepRun> runs;  // local backend only (traces)
  if (backend == "dist") {
    report = runner::assemble_report(ropts, run_dist(options, cli));
  } else {
    const runner::SweepGrid grid = runner::make_sweep_grid(options);
    const runner::SweepRunner runner(ropts);
    const std::vector<runner::RunSpec> specs = runner::expand(grid);
    std::printf("sweep: %zu runs on %zu threads\n", specs.size(),
                runner.effective_threads(specs.size()));
    runner::SweepResult result = runner.run(specs);
    report = std::move(result.report);
    runs = std::move(result.runs);
  }
  if (cli.get_bool("scrub-timing")) report.scrub_timing();

  std::printf("%-12s %-12s %6s %6s %10s %14s %10s %10s %10s\n", "scenario",
              "ruleset", "shards", "runs", "completed", "events/s mean",
              "hops mean", "moves", "conn fast");
  for (const auto& group : report.summarize()) {
    std::printf("%-12s %-12s %6zu %6zu %10zu %14.0f %10.1f %10.1f %10.4f\n",
                group.scenario.c_str(), group.ruleset.c_str(), group.shards,
                group.runs, group.completed, group.events_per_sec.mean,
                group.hops.mean, group.elementary_moves.mean,
                group.conn_fast_rate.mean);
  }
  if (ropts.capture_traces) {
    size_t moves = 0;
    for (const auto& run : runs) moves += run.move_trace.size();
    std::printf("captured %zu move-trace lines\n", moves);
  }

  const std::string json_path = cli.get_string("json");
  if (json_path == "-") {
    std::printf("%s", report.to_json_text().c_str());
  } else if (!json_path.empty()) {
    report.write_file(json_path);  // throws a clear error when unwritable
    std::printf("wrote %s\n", json_path.c_str());
  }

  // Exit non-zero when any run failed to complete, so scripted sweeps fail
  // loudly. Runs stopped by an explicit --max-events budget are expected to
  // be incomplete (the giant throughput workloads) and do not fail.
  for (const runner::RunRow& row : report.rows()) {
    if (!row.complete &&
        !(options.max_events > 0 &&
          row.stop_reason == sim::StopReason::kEventLimit)) {
      return 2;
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // CLI mistakes (typo'd scenario names, bad seeds, unwritable --json
  // paths, missing files) surface as exceptions; report them as usage
  // errors instead of aborting.
  try {
    return run_sweep(argc, argv);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "sweep: %s\n", error.what());
    return 1;
  }
}
