// Parallel multi-run sweep driver: scenario x seed x rule-set grids on the
// thread-pool SweepRunner, with machine-readable BENCH_sim.json output.
//
//   $ ./sweep --scenario tower16 --seeds 8 --threads 4
//   $ ./sweep data/scenarios/fig10.surf --seeds 4 --json out.json
//   $ ./sweep --scenario tower16,tower64 --latency uniform --json -
//   $ ./sweep --scenario blob100000 --shards 8 --shard-threads 8 \
//         --max-events 2000000
//
// Scenario names are resolved by lat::resolve_scenario: tower<N>, blob<N>,
// rect<N>, fig10, or a path to a .surf scenario file. --shards splits each
// world into column stripes with per-stripe event queues; --shard-threads
// drains stripe windows in parallel (traces stay byte-identical at any
// thread count).

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "lattice/scenario.hpp"
#include "runner/sweep.hpp"
#include "util/cli.hpp"
#include "util/fmt.hpp"

namespace {

using namespace sb;

/// Splits "a,b,c" into parts; empty input gives an empty list.
std::vector<std::string> split_csv(const std::string& text) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= text.size() && !text.empty()) {
    const size_t comma = text.find(',', start);
    if (comma == std::string::npos) {
      out.push_back(text.substr(start));
      break;
    }
    out.push_back(text.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

}  // namespace

int run_sweep(int argc, char** argv);

int main(int argc, char** argv) {
  // CLI mistakes (typo'd scenario names, bad seeds, missing files) surface
  // as exceptions; report them as usage errors instead of aborting.
  try {
    return run_sweep(argc, argv);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "sweep: %s\n", error.what());
    return 1;
  }
}

int run_sweep(int argc, char** argv) {
  CliParser cli("parallel scenario/seed/rule-set sweep harness");
  cli.add_string("scenario", "tower16",
                 "comma-separated scenario names (tower<N>, blob<N>, "
                 "rect<N>, fig10) — .surf paths go as positional arguments");
  cli.add_int("seeds", 4, "number of seeds forked from --master-seed");
  cli.add_string("master-seed", "0x5eed", "master seed for RNG forking");
  cli.add_int("threads", 0, "worker threads (0 = hardware concurrency)");
  cli.add_string("latency", "fixed",
                 "link latency model: fixed | uniform | exponential");
  cli.add_int("max-events", 0,
              "event budget per run (0 = default; giant blob/rect runs "
              "need a cap — completion is O(N^2) hops)");
  cli.add_int("shards", 1,
              "column-stripe shards per world (1 = classic event loop)");
  cli.add_int("shard-threads", 1,
              "threads draining shard windows per world (0 = hardware "
              "concurrency; multiplies with --threads)");
  cli.add_string("json", "", "write BENCH_sim.json here ('-' = stdout)");
  cli.add_bool("trace", false, "capture per-run move traces (printed count)");
  if (!cli.parse(argc, argv)) return 1;

  runner::SweepGrid grid;
  grid.master_seed = util::parse_u64(cli.get_string("master-seed"));
  grid.seed_count = static_cast<size_t>(cli.get_int("seeds"));

  std::vector<std::string> names = split_csv(cli.get_string("scenario"));
  for (const std::string& path : cli.positionals()) names.push_back(path);
  for (const std::string& name : names) {
    if (name.empty()) {
      throw std::runtime_error("empty scenario name in --scenario list");
    }
    grid.scenarios.push_back(
        {name, lat::resolve_scenario(name, grid.master_seed)});
  }

  core::SessionConfig config;
  const int max_events = cli.get_int("max-events");
  if (max_events > 0) {
    config.max_events = static_cast<uint64_t>(max_events);
  }
  const int shards = cli.get_int("shards");
  if (shards < 1) throw std::runtime_error("--shards must be >= 1");
  config.sim.shards = static_cast<size_t>(shards);
  // Written onto the config directly (not via Options::shard_threads,
  // whose 0 means "leave the spec's value") so that --shard-threads 0
  // really selects hardware concurrency.
  const int shard_threads = cli.get_int("shard-threads");
  if (shard_threads < 0) {
    throw std::runtime_error("--shard-threads must be >= 0");
  }
  config.sim.shard_threads = static_cast<size_t>(shard_threads);
  const std::string latency = cli.get_string("latency");
  if (latency == "uniform") {
    config.sim.latency = msg::LatencyModel::uniform(1, 8);
  } else if (latency == "exponential") {
    config.sim.latency = msg::LatencyModel::exponential(3.0);
  } else if (latency != "fixed") {
    throw std::runtime_error("unknown --latency '" + latency +
                             "' (fixed | uniform | exponential)");
  }
  grid.configs.push_back({latency == "fixed" ? "standard" : latency, config});

  runner::SweepRunner::Options options;
  options.threads = static_cast<size_t>(cli.get_int("threads"));
  options.master_seed = grid.master_seed;
  options.capture_traces = cli.get_bool("trace");
  options.generator = "sweep";
  runner::SweepRunner runner(options);

  const std::vector<runner::RunSpec> specs = runner::expand(grid);
  std::printf("sweep: %zu runs on %zu threads\n", specs.size(),
              runner.effective_threads(specs.size()));
  const runner::SweepResult result = runner.run(specs);

  std::printf("%-12s %-12s %6s %6s %10s %14s %10s %10s %10s\n", "scenario",
              "ruleset", "shards", "runs", "completed", "events/s mean",
              "hops mean", "moves", "conn fast");
  for (const auto& group : result.report.summarize()) {
    std::printf("%-12s %-12s %6zu %6zu %10zu %14.0f %10.1f %10.1f %10.4f\n",
                group.scenario.c_str(), group.ruleset.c_str(), group.shards,
                group.runs, group.completed, group.events_per_sec.mean,
                group.hops.mean, group.elementary_moves.mean,
                group.conn_fast_rate.mean);
  }
  if (cli.get_bool("trace")) {
    size_t moves = 0;
    for (const auto& run : result.runs) moves += run.move_trace.size();
    std::printf("captured %zu move-trace lines\n", moves);
  }

  const std::string json_path = cli.get_string("json");
  if (json_path == "-") {
    std::printf("%s", result.report.to_json_text().c_str());
  } else if (!json_path.empty()) {
    result.report.write_file(json_path);
    std::printf("wrote %s\n", json_path.c_str());
  }

  // Exit non-zero when any run failed to complete, so scripted sweeps fail
  // loudly. Runs stopped by an explicit --max-events budget are expected to
  // be incomplete (the giant throughput workloads) and do not fail.
  for (const auto& run : result.runs) {
    if (!run.row.complete &&
        !(max_events > 0 &&
          run.session.stop_reason == sim::StopReason::kEventLimit)) {
      return 2;
    }
  }
  return 0;
}
