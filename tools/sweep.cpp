// Multi-run sweep driver: scenario x seed x rule-set grids with
// machine-readable BENCH_sim.json output, on either the in-process
// thread-pool backend or a multi-process coordinator/worker fleet.
//
//   $ ./sweep --scenario tower16 --seeds 8 --threads 4
//   $ ./sweep data/scenarios/fig10.surf --seeds 4 --json out.json
//   $ ./sweep --scenario blob100000 --shards 8 --max-events 2000000
//   $ ./sweep --scenario tower16,tower64 --backend dist --workers 3
//   $ ./sweep --backend dist --workers 0 --bind 0.0.0.0 --port 7777
//         # then on other machines: ./sweep_worker --connect <host>:7777
//
// Resilience (docs/ARCHITECTURE.md "Distributed sweep backend"):
//
//   $ ./sweep --backend dist --journal sweep.journal ...   # crash-safe
//   $ ./sweep --resume sweep.journal                       # after a crash
//
// Job-queue service — one long-lived fleet, many queued sweeps:
//
//   $ ./sweep --serve --port 7777 --workers 4 --journal queue.journal
//   $ ./sweep --coordinator 127.0.0.1:7777 --submit --scenario tower16
//   $ ./sweep --coordinator 127.0.0.1:7777 --status 1
//   $ ./sweep --coordinator 127.0.0.1:7777 --fetch 1 --json out.json
//   $ ./sweep --coordinator 127.0.0.1:7777 --cancel 1
//
// Scenario names are resolved by lat::resolve_scenario (--list-scenarios
// prints the vocabulary). The two backends produce byte-identical
// BENCH_sim.json for the same grid modulo the wall-clock fields; pass
// --scrub-timing to zero those and make the file a pure function of the
// grid (the CI dist-smoke and dist-chaos jobs diff the backends this way,
// across coordinator kills and worker reconnects).

#include <algorithm>
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "dist/client.hpp"
#include "dist/coordinator.hpp"
#include "dist/journal.hpp"
#include "dist/spawn.hpp"
#include "dist/worker.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runner/cli_options.hpp"
#include "runner/sweep.hpp"
#include "util/fmt.hpp"
#include "util/string_util.hpp"

namespace {

using namespace sb;

volatile std::sig_atomic_t g_shutdown_requested = 0;

void request_shutdown(int) { g_shutdown_requested = 1; }

struct HostPort {
  std::string host;
  uint16_t port = 0;
};

HostPort parse_host_port(const std::string& text, const char* flag) {
  const size_t colon = text.rfind(':');
  if (text.empty() || colon == std::string::npos) {
    throw std::runtime_error(
        fmt("{} expects host:port, e.g. {} 127.0.0.1:7777", flag, flag));
  }
  const auto port = parse_int(text.substr(colon + 1));
  if (!port.has_value() || *port < 1 || *port > 65535) {
    throw std::runtime_error(fmt("{} port must be in [1, 65535], got '{}'",
                                 flag, text.substr(colon + 1)));
  }
  return {text.substr(0, colon), static_cast<uint16_t>(*port)};
}

dist::Coordinator::Options coordinator_options(const CliParser& cli) {
  dist::Coordinator::Options copts;
  copts.bind_address = cli.get_string("bind");
  const int64_t port = cli.get_int("port");
  if (port < 0 || port > 65535) {
    throw std::runtime_error(fmt("--port must be in [0, 65535], got {}",
                                 port));
  }
  copts.port = static_cast<uint16_t>(port);
  const int64_t unit_size = cli.get_int("unit-size");
  if (unit_size < 1) {
    throw std::runtime_error(fmt("--unit-size must be >= 1, got {}",
                                 unit_size));
  }
  copts.unit_size = static_cast<size_t>(unit_size);
  copts.unit_timeout_ms = runner::parse_ms_flag(cli, "unit-timeout-ms", 1);
  copts.journal_path = cli.get_string("journal");
  copts.verbose = cli.get_bool("verbose");
  return copts;
}

/// Spawns the --workers subprocess fleet against `port`. Must run before
/// Coordinator::run starts service threads (fork in a threaded process is
/// not survivable). Workers connect and are queued by the listener backlog
/// until the coordinator starts accepting.
std::vector<dist::WorkerProcess> spawn_fleet(const CliParser& cli,
                                             uint16_t port,
                                             const char* argv0) {
  const int64_t workers = cli.get_int("workers");
  if (workers < 0) {
    throw std::runtime_error(
        fmt("--workers must be >= 0 (0 = serve external sweep_worker "
            "processes only), got {}",
            workers));
  }
  if (workers == 0) return {};
  dist::FleetOptions fopts;
  if (const char* fault = std::getenv(dist::kFleetFaultEnv)) {
    const auto parsed = parse_int(fault);
    if (!parsed.has_value() || *parsed < 0) {
      throw std::runtime_error(
          fmt("{} must be a non-negative unit count, got '{}'",
              dist::kFleetFaultEnv, fault));
    }
    fopts.fault_after_units = static_cast<long>(*parsed);
    std::printf("sweep: fault injection armed — worker 0 dies after %ld "
                "units\n",
                fopts.fault_after_units);
  }
  fopts.reconnect_window_ms =
      runner::parse_ms_flag(cli, "worker-reconnect-ms", 0);
  fopts.verbose = cli.get_bool("verbose");
  return dist::spawn_worker_fleet(dist::default_worker_binary(argv0),
                                  "127.0.0.1", port,
                                  static_cast<size_t>(workers), fopts);
}

void reap_fleet(const std::vector<dist::WorkerProcess>& fleet) {
  for (size_t i = 0; i < fleet.size(); ++i) {
    const int code = dist::reap_worker(fleet[i]);
    if (code == dist::Worker::kExitFault) {
      std::printf("sweep: worker %zu died by fault injection (reassignment "
                  "covered its units)\n",
                  i);
    } else if (code != 0) {
      std::fprintf(stderr, "sweep: worker %zu exited with code %d\n", i,
                   code);
    }
  }
}

/// Runs the grid on the coordinator/worker fleet; returns rows in spec
/// order (byte-identical to what the local backend computes).
std::vector<runner::RunRow> run_dist(const runner::SweepCliOptions& options,
                                     const CliParser& cli,
                                     const char* argv0) {
  dist::Coordinator coordinator(options, coordinator_options(cli));
  std::printf("sweep: %zu runs on %lld dist workers (port %u)\n",
              coordinator.spec_count(),
              static_cast<long long>(cli.get_int("workers")),
              coordinator.port());
  const std::vector<dist::WorkerProcess> fleet =
      spawn_fleet(cli, coordinator.port(), argv0);
  std::vector<runner::RunRow> rows = coordinator.run();
  reap_fleet(fleet);
  return rows;
}

/// Resumes a crashed dist sweep from its journal. The journal pins the
/// primary job's grid (so the rebuilt report is byte-identical to an
/// uninterrupted run) and the coordinator's bind address (so orphaned
/// workers reconnect); `options` is overwritten with the journaled grid.
std::vector<runner::RunRow> resume_dist(const std::string& journal_path,
                                        const CliParser& cli,
                                        const char* argv0,
                                        runner::SweepCliOptions& options) {
  const dist::JournalContents contents = dist::read_journal(journal_path);
  const dist::JournalJob* primary = nullptr;
  for (const dist::JournalJob& job : contents.jobs) {
    if (job.job == 0) primary = &job;
  }
  if (primary == nullptr) {
    throw std::runtime_error(fmt(
        "journal '{}' has no primary sweep (job 0) to resume",
        journal_path));
  }
  options = primary->options;
  dist::Coordinator::Options copts = coordinator_options(cli);
  copts.journal_path = journal_path;  // keep appending to the same file
  dist::Coordinator coordinator(contents, copts);
  std::printf("sweep: resuming %zu-run sweep from %s (%zu batches "
              "journaled, port %u)\n",
              coordinator.spec_count(), journal_path.c_str(),
              contents.batches.size(), coordinator.port());
  const std::vector<dist::WorkerProcess> fleet =
      spawn_fleet(cli, coordinator.port(), argv0);
  std::vector<runner::RunRow> rows = coordinator.run();
  reap_fleet(fleet);
  return rows;
}

/// Long-lived job-queue service: no primary sweep, jobs arrive from
/// `--coordinator ... --submit` clients. SIGINT/SIGTERM wind it down.
int run_serve(const CliParser& cli, const char* argv0) {
  dist::Coordinator::Options copts = coordinator_options(cli);
  copts.serve = true;
  dist::Coordinator coordinator(copts);
  // Flushed immediately: scripts discover the bound port (--port 0) by
  // watching this line, and a pipe- or file-redirected stdout is fully
  // buffered by default.
  std::printf("sweep: serving the sweep job queue on %s:%u\n",
              copts.bind_address.c_str(), coordinator.port());
  std::fflush(stdout);
  const std::vector<dist::WorkerProcess> fleet =
      spawn_fleet(cli, coordinator.port(), argv0);
  std::signal(SIGINT, request_shutdown);
  std::signal(SIGTERM, request_shutdown);
  // The handler only flips a flag (shutdown() takes locks, which are off
  // limits in a signal context); this thread turns the flag into the call.
  std::atomic<bool> finished{false};
  std::thread watcher([&] {
    while (!finished.load()) {
      if (g_shutdown_requested != 0) {
        coordinator.shutdown();
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
  });
  (void)coordinator.run();
  finished.store(true);
  watcher.join();
  reap_fleet(fleet);
  std::printf("sweep: job queue stopped\n");
  return 0;
}

/// Prints the summary table, writes --json, and derives the exit code —
/// shared by every mode that ends holding a finished report.
int emit_report(runner::BenchReport& report, const CliParser& cli,
                const runner::SweepCliOptions& options) {
  if (cli.get_bool("scrub-timing")) report.scrub_timing();

  std::printf("%-12s %-12s %6s %6s %10s %14s %10s %10s %10s\n", "scenario",
              "ruleset", "shards", "runs", "completed", "events/s mean",
              "hops mean", "moves", "conn fast");
  for (const auto& group : report.summarize()) {
    std::printf("%-12s %-12s %6zu %6zu %10zu %14.0f %10.1f %10.1f %10.4f\n",
                group.scenario.c_str(), group.ruleset.c_str(), group.shards,
                group.runs, group.completed, group.events_per_sec.mean,
                group.hops.mean, group.elementary_moves.mean,
                group.conn_fast_rate.mean);
    if (group.shards < 2) continue;
    // Shard-load diagnostic: a pathological map shows up as a busiest
    // shard far above the mean (imbalance 1.0 = perfectly balanced).
    uint64_t lightest = UINT64_MAX;
    uint64_t busiest = 0;
    for (const runner::RunRow& row : report.rows()) {
      if (row.scenario != group.scenario || row.ruleset != group.ruleset) {
        continue;
      }
      for (const uint64_t events : row.shard_events) {
        lightest = std::min(lightest, events);
        busiest = std::max(busiest, events);
      }
    }
    if (busiest == 0) continue;
    std::printf("  %-10s shard events min %llu max %llu imbalance %.2fx "
                "(busiest/mean)\n",
                "", static_cast<unsigned long long>(lightest),
                static_cast<unsigned long long>(busiest),
                group.shard_imbalance.mean);
  }

  const std::string json_path = cli.get_string("json");
  if (json_path == "-") {
    std::printf("%s", report.to_json_text().c_str());
  } else if (!json_path.empty()) {
    report.write_file(json_path);  // throws a clear error when unwritable
    std::printf("wrote %s\n", json_path.c_str());
  }

  // Exit non-zero when any run failed to complete, so scripted sweeps fail
  // loudly. Runs stopped by an explicit --max-events budget are expected to
  // be incomplete (the giant throughput workloads) and do not fail.
  for (const runner::RunRow& row : report.rows()) {
    if (!row.complete &&
        !(options.max_events > 0 &&
          row.stop_reason == sim::StopReason::kEventLimit)) {
      return 2;
    }
  }
  return 0;
}

/// Scoped trace capture: enables the process-wide TraceWriter when a path
/// was given and serializes the buffer on scope exit — every mode path
/// (local, dist, serve, client) and the exception unwind all pass through
/// the same destructor.
class TraceCapture {
 public:
  explicit TraceCapture(std::string path) : path_(std::move(path)) {
    if (!path_.empty()) obs::TraceWriter::instance().enable();
  }
  ~TraceCapture() {
    if (path_.empty()) return;
    obs::TraceWriter& tracer = obs::TraceWriter::instance();
    tracer.disable();
    if (!tracer.write_file(path_)) {
      std::fprintf(stderr, "sweep: cannot write trace to %s\n",
                   path_.c_str());
      return;
    }
    if (tracer.dropped() != 0) {
      std::fprintf(stderr,
                   "sweep: trace buffer overflowed, %llu events dropped\n",
                   static_cast<unsigned long long>(tracer.dropped()));
    }
    std::printf("wrote %s\n", path_.c_str());
  }
  TraceCapture(const TraceCapture&) = delete;
  TraceCapture& operator=(const TraceCapture&) = delete;

 private:
  std::string path_;
};

double metrics_number(const util::JsonValue& metrics, const char* group,
                      const char* name) {
  const util::JsonValue* value = metrics.find_path({group, name});
  if (value == nullptr) return 0.0;
  if (value->kind() == util::JsonValue::Kind::kString) {
    return static_cast<double>(util::parse_u64(value->as_string()));
  }
  return value->as_number();
}

/// Prints the coordinator's live metrics under a --status line: queue and
/// fleet gauges first, then one row per worker the coordinator has seen.
void print_service_metrics(const util::JsonValue& reply) {
  const util::JsonValue* metrics = reply.find("metrics");
  if (metrics == nullptr) return;
  std::printf(
      "  queue depth %.0f  in-flight %.0f  workers %.0f  "
      "reassignments %.0f  dispatched %.0f  merged %.0f\n",
      metrics_number(*metrics, "gauges", "coord.queue_depth"),
      metrics_number(*metrics, "gauges", "coord.in_flight"),
      metrics_number(*metrics, "gauges", "coord.workers_connected"),
      metrics_number(*metrics, "counters", "coord.reassignments"),
      metrics_number(*metrics, "counters", "coord.units_dispatched"),
      metrics_number(*metrics, "counters", "coord.results_merged"));
  const util::JsonValue* workers = reply.find("workers");
  if (workers == nullptr || workers->as_array().empty()) return;
  std::printf("  %-6s %-8s %6s %10s %6s %8s %11s %14s\n", "conn", "pid",
              "cores", "memory_mb", "units", "merged", "hb gap p95",
              "state");
  for (const util::JsonValue& worker : workers->as_array()) {
    const auto number = [&worker](const char* name) {
      const util::JsonValue* value = worker.find(name);
      return value != nullptr ? value->as_number() : 0.0;
    };
    const util::JsonValue* connected = worker.find("connected");
    std::printf("  %-6.0f %-8.0f %6.0f %10.0f %6.0f %8.0f %9.0fms %14s\n",
                number("conn"), number("pid"), number("cores"),
                number("memory_mb"), number("units_dispatched"),
                number("results_merged"), number("heartbeat_gap_p95_ms"),
                connected != nullptr && connected->as_bool()
                    ? "connected"
                    : "disconnected");
  }
}

/// Client verbs against a `--serve` coordinator.
int run_client(const CliParser& cli) {
  const HostPort addr =
      parse_host_port(cli.get_string("coordinator"), "--coordinator");
  dist::Client::Options copts;
  copts.host = addr.host;
  copts.port = addr.port;
  copts.verbose = cli.get_bool("verbose");
  dist::Client client(copts);

  if (cli.get_bool("submit")) {
    const runner::SweepCliOptions grid = runner::parse_sweep_flags(cli);
    const int64_t unit_size = cli.get_int("unit-size");
    const int64_t min_cores = cli.get_int("min-cores");
    if (unit_size < 1 || min_cores < 0) {
      throw std::runtime_error(
          "--unit-size must be >= 1 and --min-cores >= 0");
    }
    const uint64_t job =
        client.submit(grid, static_cast<size_t>(unit_size),
                      static_cast<size_t>(min_cores));
    std::printf("sweep: submitted job %llu\n",
                static_cast<unsigned long long>(job));
    return 0;
  }
  if (const int64_t id = cli.get_int("status"); id >= 0) {
    const dist::Client::JobStatus status =
        client.status(static_cast<uint64_t>(id));
    std::printf("sweep: job %lld %s %zu/%zu\n", static_cast<long long>(id),
                std::string(dist::to_string(status.state)).c_str(),
                status.merged, status.total);
    const util::JsonValue reply = client.metrics();
    print_service_metrics(reply);
    const std::string metrics_path = cli.get_string("metrics-out");
    if (!metrics_path.empty()) {
      const util::JsonValue* registry_json = reply.find("metrics");
      const obs::Registry registry =
          registry_json != nullptr ? obs::Registry::from_json(*registry_json)
                                   : obs::Registry{};
      std::FILE* out = std::fopen(metrics_path.c_str(), "w");
      if (out == nullptr) {
        throw std::runtime_error(
            fmt("cannot write --metrics-out '{}'", metrics_path));
      }
      const std::string text = registry.to_prometheus();
      std::fwrite(text.data(), 1, text.size(), out);
      std::fclose(out);
      std::printf("wrote %s\n", metrics_path.c_str());
    }
    return status.state == dist::JobState::kCancelled ? 3 : 0;
  }
  if (const int64_t id = cli.get_int("cancel"); id >= 0) {
    const dist::Client::JobStatus status =
        client.cancel(static_cast<uint64_t>(id));
    std::printf("sweep: job %lld %s %zu/%zu\n", static_cast<long long>(id),
                std::string(dist::to_string(status.state)).c_str(),
                status.merged, status.total);
    return 0;
  }
  if (const int64_t id = cli.get_int("fetch"); id >= 0) {
    // The journaled/announced grid drives the report header, so a fetched
    // report is byte-identical (modulo timing) to a local run of the same
    // grid even when the fetching client passed no grid flags at all.
    const runner::SweepCliOptions options =
        client.describe(static_cast<uint64_t>(id));
    std::vector<runner::RunRow> rows =
        client.fetch(static_cast<uint64_t>(id));
    runner::SweepRunner::Options ropts;
    ropts.threads = options.threads;
    ropts.master_seed = options.master_seed;
    ropts.generator = "sweep";
    runner::BenchReport report =
        runner::assemble_report(ropts, std::move(rows));
    return emit_report(report, cli, options);
  }
  throw std::runtime_error(
      "--coordinator needs one of --submit, --status <id>, --fetch <id>, "
      "--cancel <id>");
}

int run_sweep(int argc, char** argv) {
  CliParser cli("parallel scenario/seed/rule-set sweep harness");
  runner::SweepCliOptions defaults;
  defaults.scenarios = {"tower16"};
  runner::add_sweep_flags(cli, defaults);
  cli.add_string("json", "", "write BENCH_sim.json here ('-' = stdout)");
  cli.add_bool("trace", false,
               "capture per-run move traces (printed count; local backend "
               "only)");
  cli.add_bool("list-scenarios", false,
               "print the scenario vocabulary and exit");
  cli.add_bool("scrub-timing", false,
               "zero wall-clock fields in the report so the JSON is a pure "
               "function of the grid (backend-independent byte-for-byte)");
  cli.add_string("backend", "local",
                 "execution backend: local (in-process thread pool) | dist "
                 "(coordinator + worker fleet)");
  cli.add_int("workers", 3,
              "dist: subprocess workers to spawn (0 = only serve external "
              "sweep_worker connections)");
  cli.add_string("bind", "127.0.0.1",
                 "dist: coordinator listen address (0.0.0.0 for remote "
                 "workers)");
  cli.add_int("port", 0, "dist: coordinator listen port (0 = ephemeral)");
  cli.add_int("unit-size", 1, "dist: specs per work unit");
  cli.add_int("unit-timeout-ms", 600000,
              "dist: hard per-unit deadline before an in-flight unit is "
              "also handed to another worker (set above the worst-case "
              "runtime of one unit)");
  cli.add_string("journal", "",
                 "dist: write-ahead result journal — every merged batch is "
                 "fsync'd here before acknowledgment, so a killed "
                 "coordinator can be resumed losslessly");
  cli.add_string("resume", "",
                 "resume a dist sweep from this journal (rebinds the "
                 "journaled port so orphaned workers reconnect; only "
                 "unfinished units re-execute)");
  cli.add_int("worker-reconnect-ms", 0,
              "dist: reconnect window passed to spawned workers so they "
              "survive a coordinator kill + --resume cycle (0 = off)");
  cli.add_bool("serve", false,
               "dist: run as a long-lived job-queue service (no primary "
               "sweep; SIGINT/SIGTERM stops it)");
  cli.add_string("coordinator", "",
                 "client mode: address of a --serve coordinator to talk to");
  cli.add_bool("submit", false,
               "client: queue the grid described by the sweep flags; "
               "prints the job id");
  cli.add_int("status", -1, "client: report a job's state and progress");
  cli.add_int("fetch", -1,
              "client: stream a job's merged rows and emit the report "
              "(blocks until the job completes)");
  cli.add_int("cancel", -1, "client: cancel a running job");
  cli.add_int("min-cores", 0,
              "client --submit: only dispatch to workers announcing at "
              "least this many cores");
  cli.add_string("trace-out", "",
                 "write a Chrome Trace Event Format file (load in Perfetto "
                 "or chrome://tracing) covering this process's shard "
                 "phases and dist milestones");
  cli.add_string("metrics-out", "",
                 "client --status: also write the coordinator's metrics in "
                 "Prometheus text format here");
  cli.add_bool("verbose", false, "dist: fleet chatter on stderr");
  if (!cli.parse(argc, argv)) return 1;

  if (cli.get_bool("list-scenarios")) {
    std::printf("%s", runner::scenario_vocabulary().c_str());
    return 0;
  }

  const TraceCapture capture(cli.get_string("trace-out"));

  if (!cli.get_string("coordinator").empty()) return run_client(cli);
  if (cli.get_bool("serve")) return run_serve(cli, argv[0]);

  const std::string resume_path = cli.get_string("resume");
  runner::SweepCliOptions options = runner::parse_sweep_flags(cli);
  const std::string backend = cli.get_string("backend");
  if (backend != "local" && backend != "dist") {
    throw std::runtime_error("unknown --backend '" + backend +
                             "' (local | dist)");
  }

  std::vector<runner::SweepRun> runs;  // local backend only (traces)
  runner::BenchReport report{"sweep"};
  if (!resume_path.empty()) {
    // resume_dist replaces `options` with the journaled grid — the report
    // must describe the original sweep, not this process's default flags.
    std::vector<runner::RunRow> rows =
        resume_dist(resume_path, cli, argv[0], options);
    runner::SweepRunner::Options ropts;
    ropts.threads = options.threads;
    ropts.master_seed = options.master_seed;
    ropts.generator = "sweep";
    report = runner::assemble_report(ropts, std::move(rows));
  } else if (backend == "dist") {
    runner::SweepRunner::Options ropts;
    ropts.threads = options.threads;
    ropts.master_seed = options.master_seed;
    ropts.generator = "sweep";
    report = runner::assemble_report(ropts, run_dist(options, cli, argv[0]));
  } else {
    runner::SweepRunner::Options ropts;
    ropts.threads = options.threads;
    ropts.master_seed = options.master_seed;
    ropts.capture_traces = cli.get_bool("trace");
    ropts.generator = "sweep";
    const runner::SweepGrid grid = runner::make_sweep_grid(options);
    const runner::SweepRunner runner(ropts);
    const std::vector<runner::RunSpec> specs = runner::expand(grid);
    std::printf("sweep: %zu runs on %zu threads\n", specs.size(),
                runner.effective_threads(specs.size()));
    runner::SweepResult result = runner.run(specs);
    report = std::move(result.report);
    runs = std::move(result.runs);
    if (ropts.capture_traces) {
      size_t moves = 0;
      for (const auto& run : runs) moves += run.move_trace.size();
      std::printf("captured %zu move-trace lines\n", moves);
    }
  }
  return emit_report(report, cli, options);
}

}  // namespace

int main(int argc, char** argv) {
  // CLI mistakes (typo'd scenario names, bad seeds, unwritable --json
  // paths, missing files) and service failures (occupied --port, corrupt
  // --resume journals) surface as exceptions; report them as one-line
  // errors instead of aborting.
  try {
    return run_sweep(argc, argv);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "sweep: %s\n", error.what());
    return 1;
  }
}
