// CI perf gate: compares a fresh BENCH_sim.json against the committed
// baseline and fails when throughput regresses beyond the tolerance.
//
//   $ ./perf_check bench/BENCH_sim.json /tmp/current.json --tolerance 0.30
//
// For every (scenario, ruleset) group present in the *baseline*, the
// current report must contain the same group with
//   events_per_sec.mean >= baseline_mean * (1 - tolerance).
// Extra groups in the current report are informational. Exit codes:
// 0 = pass, 1 = usage/IO error, 3 = regression detected.

#include <cstdio>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>

#include "util/cli.hpp"
#include "util/json.hpp"

namespace {

using sb::util::JsonValue;

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) {
    std::fprintf(stderr, "perf_check: cannot read '%s'\n", path.c_str());
    std::exit(1);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Finds the summary group for (scenario, ruleset); nullptr when absent.
const JsonValue* find_group(const JsonValue& report,
                            const std::string& scenario,
                            const std::string& ruleset) {
  const JsonValue* summary = report.find("summary");
  if (summary == nullptr || !summary->is_array()) return nullptr;
  for (const JsonValue& group : summary->as_array()) {
    const JsonValue* s = group.find("scenario");
    const JsonValue* r = group.find("ruleset");
    if (s != nullptr && r != nullptr && s->as_string() == scenario &&
        r->as_string() == ruleset) {
      return &group;
    }
  }
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  sb::CliParser cli(
      "compare BENCH_sim.json reports; fail on throughput regression");
  cli.add_double("tolerance", 0.30,
                 "allowed fractional drop in events_per_sec.mean");
  if (!cli.parse(argc, argv)) return 1;
  if (cli.positionals().size() != 2) {
    std::fprintf(stderr,
                 "usage: perf_check <baseline.json> <current.json> "
                 "[--tolerance 0.30]\n");
    return 1;
  }

  const double tolerance = cli.get_double("tolerance");
  const JsonValue baseline = sb::util::parse_json(
      read_file(cli.positionals()[0]));
  const JsonValue current = sb::util::parse_json(
      read_file(cli.positionals()[1]));

  for (const JsonValue* report : {&baseline, &current}) {
    const JsonValue* schema = report->find("schema");
    if (schema == nullptr || schema->as_string() != "sb-bench-sim/v1") {
      std::fprintf(stderr, "perf_check: unexpected schema (want "
                           "sb-bench-sim/v1)\n");
      return 1;
    }
  }

  const JsonValue* summary = baseline.find("summary");
  if (summary == nullptr || summary->size() == 0) {
    std::fprintf(stderr, "perf_check: baseline has no summary groups\n");
    return 1;
  }

  bool failed = false;
  std::printf("%-16s %-12s %6s %14s %14s %8s %10s  %s\n", "scenario",
              "ruleset", "shards", "baseline ev/s", "current ev/s", "ratio",
              "conn fast", "verdict");
  for (const JsonValue& group : summary->as_array()) {
    const JsonValue* scenario_v = group.find("scenario");
    const JsonValue* ruleset_v = group.find("ruleset");
    const JsonValue* base_mean_v =
        group.find_path({"events_per_sec", "mean"});
    if (scenario_v == nullptr || ruleset_v == nullptr ||
        base_mean_v == nullptr) {
      std::fprintf(stderr,
                   "perf_check: malformed baseline summary group (needs "
                   "scenario, ruleset, events_per_sec.mean)\n");
      return 1;
    }
    const std::string& scenario = scenario_v->as_string();
    const std::string& ruleset = ruleset_v->as_string();
    const double base_mean = base_mean_v->as_number();
    const JsonValue* current_group = find_group(current, scenario, ruleset);
    const JsonValue* cur_mean_v =
        current_group == nullptr
            ? nullptr
            : current_group->find_path({"events_per_sec", "mean"});
    // Shard-scaling groups (docs/BENCHMARKS.md): the shard count rides in
    // the summary so the gate output shows which engine configuration a
    // group measured (absent in pre-sharding reports).
    const JsonValue* shards_v = group.find("shards");
    char shards[8] = "-";
    if (shards_v != nullptr) {
      std::snprintf(shards, sizeof(shards), "%.0f", shards_v->as_number());
    }
    if (cur_mean_v == nullptr) {
      std::printf("%-16s %-12s %6s %14.0f %14s %8s %10s  MISSING\n",
                  scenario.c_str(), ruleset.c_str(), shards, base_mean, "-",
                  "-", "-");
      failed = true;
      continue;
    }
    const double cur_mean = cur_mean_v->as_number();
    const double ratio = base_mean > 0.0 ? cur_mean / base_mean : 1.0;
    const bool ok = ratio >= 1.0 - tolerance;
    // Informational: the connectivity-oracle fast-path hit rate of the
    // current run (absent in pre-fast-path reports).
    const JsonValue* fast_v =
        current_group->find_path({"conn_fast_rate", "mean"});
    char fast[16] = "-";
    if (fast_v != nullptr) {
      std::snprintf(fast, sizeof(fast), "%.4f", fast_v->as_number());
    }
    std::printf("%-16s %-12s %6s %14.0f %14.0f %8.2f %10s  %s\n",
                scenario.c_str(), ruleset.c_str(), shards, base_mean,
                cur_mean, ratio, fast, ok ? "ok" : "REGRESSED");
    failed |= !ok;
  }
  if (failed) {
    std::fprintf(stderr,
                 "perf_check: regression beyond %.0f%% tolerance (or missing "
                 "group); refresh the baseline with bench_sim_throughput "
                 "--json if intentional\n",
                 tolerance * 100.0);
    return 3;
  }
  std::printf("perf_check: all groups within %.0f%% of baseline\n",
              tolerance * 100.0);
  return 0;
}
