// CI perf gate: compares a fresh BENCH_sim.json against the committed
// baseline and fails when throughput regresses beyond the tolerance.
//
//   $ ./perf_check bench/BENCH_sim.json /tmp/current.json --tolerance 0.30
//
// For every (scenario, ruleset) group present in the *baseline*, the
// current report must contain the same group with
//   events_per_sec.mean >= baseline_mean * (1 - tolerance).
// Groups listed in --optional may be absent from the current report
// (SKIPPED) — used for the gated giant workloads CI runners cannot afford.
// Extra groups in the current report are informational.
//
// Shard-scaling gate (--min-shard-speedup, docs/BENCHMARKS.md): for every
// scenario whose current report has both a shards1 and a shards4 ruleset
// group, events_per_sec.mean(shards4) / mean(shards1) must reach the
// minimum — enforced only when the measuring host recorded >= 4 cores
// (single-core boxes cannot demonstrate parallel speedup; the windows
// serialize). 0 disables the gate.
//
// Exit codes: 0 = pass, 1 = usage/IO error, 3 = regression detected.

#include <cstdio>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "util/cli.hpp"
#include "util/json.hpp"
#include "util/string_util.hpp"

namespace {

using sb::util::JsonValue;

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) {
    std::fprintf(stderr, "perf_check: cannot read '%s'\n", path.c_str());
    std::exit(1);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Finds the summary group for (scenario, ruleset); nullptr when absent.
const JsonValue* find_group(const JsonValue& report,
                            const std::string& scenario,
                            const std::string& ruleset) {
  const JsonValue* summary = report.find("summary");
  if (summary == nullptr || !summary->is_array()) return nullptr;
  for (const JsonValue& group : summary->as_array()) {
    const JsonValue* s = group.find("scenario");
    const JsonValue* r = group.find("ruleset");
    if (s != nullptr && r != nullptr && s->as_string() == scenario &&
        r->as_string() == ruleset) {
      return &group;
    }
  }
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  sb::CliParser cli(
      "compare BENCH_sim.json reports; fail on throughput regression");
  cli.add_double("tolerance", 0.30,
                 "allowed fractional drop in events_per_sec.mean");
  cli.add_string("optional", "",
                 "comma-separated scenarios whose baseline groups may be "
                 "absent from the current report (gated giant workloads)");
  cli.add_double("min-shard-speedup", 2.0,
                 "required events_per_sec ratio shards4/shards1 per "
                 "scenario; enforced only when the current report was "
                 "measured on >= 4 cores (0 = off)");
  cli.add_double("max-barrier-wait", 0.0,
                 "fail when a current sharded group's mean "
                 "barrier_wait_fraction exceeds this (0 = report only)");
  if (!cli.parse(argc, argv)) return 1;
  if (cli.positionals().size() != 2) {
    std::fprintf(stderr,
                 "usage: perf_check <baseline.json> <current.json> "
                 "[--tolerance 0.30]\n");
    return 1;
  }

  const double tolerance = cli.get_double("tolerance");
  const JsonValue baseline = sb::util::parse_json(
      read_file(cli.positionals()[0]));
  const JsonValue current = sb::util::parse_json(
      read_file(cli.positionals()[1]));

  for (const JsonValue* report : {&baseline, &current}) {
    const JsonValue* schema = report->find("schema");
    if (schema == nullptr || schema->as_string() != "sb-bench-sim/v1") {
      std::fprintf(stderr, "perf_check: unexpected schema (want "
                           "sb-bench-sim/v1)\n");
      return 1;
    }
  }

  const JsonValue* summary = baseline.find("summary");
  if (summary == nullptr || summary->size() == 0) {
    std::fprintf(stderr, "perf_check: baseline has no summary groups\n");
    return 1;
  }

  bool failed = false;
  std::printf("%-16s %-12s %6s %14s %14s %8s %10s  %s\n", "scenario",
              "ruleset", "shards", "baseline ev/s", "current ev/s", "ratio",
              "conn fast", "verdict");
  for (const JsonValue& group : summary->as_array()) {
    const JsonValue* scenario_v = group.find("scenario");
    const JsonValue* ruleset_v = group.find("ruleset");
    const JsonValue* base_mean_v =
        group.find_path({"events_per_sec", "mean"});
    if (scenario_v == nullptr || ruleset_v == nullptr ||
        base_mean_v == nullptr) {
      std::fprintf(stderr,
                   "perf_check: malformed baseline summary group (needs "
                   "scenario, ruleset, events_per_sec.mean)\n");
      return 1;
    }
    const std::string& scenario = scenario_v->as_string();
    const std::string& ruleset = ruleset_v->as_string();
    const double base_mean = base_mean_v->as_number();
    const JsonValue* current_group = find_group(current, scenario, ruleset);
    const JsonValue* cur_mean_v =
        current_group == nullptr
            ? nullptr
            : current_group->find_path({"events_per_sec", "mean"});
    // Shard-scaling groups (docs/BENCHMARKS.md): the shard count rides in
    // the summary so the gate output shows which engine configuration a
    // group measured (absent in pre-sharding reports).
    const JsonValue* shards_v = group.find("shards");
    char shards[8] = "-";
    if (shards_v != nullptr) {
      std::snprintf(shards, sizeof(shards), "%.0f", shards_v->as_number());
    }
    if (cur_mean_v == nullptr) {
      // Gated giant workloads are measured out-of-band and committed to
      // the baseline; a CI runner that did not produce them must not fail
      // on their absence.
      bool optional = false;
      for (const std::string& name :
           sb::split(cli.get_string("optional"), ',')) {
        optional |= name == scenario;
      }
      std::printf("%-16s %-12s %6s %14.0f %14s %8s %10s  %s\n",
                  scenario.c_str(), ruleset.c_str(), shards, base_mean, "-",
                  "-", "-", optional ? "SKIPPED (optional)" : "MISSING");
      failed |= !optional;
      continue;
    }
    const double cur_mean = cur_mean_v->as_number();
    const double ratio = base_mean > 0.0 ? cur_mean / base_mean : 1.0;
    const bool ok = ratio >= 1.0 - tolerance;
    // Informational: the connectivity-oracle fast-path hit rate of the
    // current run (absent in pre-fast-path reports).
    const JsonValue* fast_v =
        current_group->find_path({"conn_fast_rate", "mean"});
    char fast[16] = "-";
    if (fast_v != nullptr) {
      std::snprintf(fast, sizeof(fast), "%.4f", fast_v->as_number());
    }
    std::printf("%-16s %-12s %6s %14.0f %14.0f %8.2f %10s  %s\n",
                scenario.c_str(), ruleset.c_str(), shards, base_mean,
                cur_mean, ratio, fast, ok ? "ok" : "REGRESSED");
    failed |= !ok;
  }

  // Per-shard load balance of the current sharded groups (the mean of
  // RunRow::shard_imbalance — busiest shard relative to the mean shard;
  // 1.0 is perfectly balanced). Informational: a lopsided map explains a
  // weak speedup before anyone re-runs the bench by hand.
  const JsonValue* cur_summary = current.find("summary");
  if (cur_summary != nullptr && cur_summary->is_array()) {
    for (const JsonValue& group : cur_summary->as_array()) {
      const JsonValue* scenario_v = group.find("scenario");
      const JsonValue* ruleset_v = group.find("ruleset");
      const JsonValue* shards_v = group.find("shards");
      const JsonValue* imbalance_v =
          group.find_path({"shard_imbalance", "mean"});
      if (scenario_v == nullptr || ruleset_v == nullptr ||
          shards_v == nullptr || imbalance_v == nullptr ||
          shards_v->as_number() < 2.0 || imbalance_v->as_number() <= 0.0) {
        continue;
      }
      std::printf("shard balance  %-16s %-12s busiest/mean %.2fx\n",
                  scenario_v->as_string().c_str(),
                  ruleset_v->as_string().c_str(), imbalance_v->as_number());
    }
  }

  // Barrier-wait share of worker time per current sharded group — the time
  // counterpart of the balance figure above. --max-barrier-wait turns the
  // report line into a gate.
  const double max_barrier_wait = cli.get_double("max-barrier-wait");
  if (cur_summary != nullptr && cur_summary->is_array()) {
    for (const JsonValue& group : cur_summary->as_array()) {
      const JsonValue* scenario_v = group.find("scenario");
      const JsonValue* ruleset_v = group.find("ruleset");
      const JsonValue* shards_v = group.find("shards");
      const JsonValue* wait_v =
          group.find_path({"barrier_wait_fraction", "mean"});
      if (scenario_v == nullptr || ruleset_v == nullptr ||
          shards_v == nullptr || wait_v == nullptr ||
          shards_v->as_number() < 2.0 || wait_v->as_number() <= 0.0) {
        continue;
      }
      const double wait = wait_v->as_number();
      const bool gated = max_barrier_wait > 0.0;
      const bool ok = !gated || wait <= max_barrier_wait;
      std::printf("barrier wait   %-16s %-12s %.1f%% of worker time%s%s\n",
                  scenario_v->as_string().c_str(),
                  ruleset_v->as_string().c_str(), wait * 100.0,
                  gated ? "" : " (not gated)", ok ? "" : "  TOO HIGH");
      failed |= !ok;
    }
  }

  // Shard-scaling gate: the parallel speedup the channel engine actually
  // delivered. Compares the shards4 and shards1 ruleset groups of the
  // *current* report per scenario; enforced only when that report recorded
  // >= 4 cores (a smaller box serializes the windows and the figure says
  // nothing about the engine).
  const double min_speedup = cli.get_double("min-shard-speedup");
  const JsonValue* cores_v = current.find("cores");
  const double cores = cores_v == nullptr ? 0.0 : cores_v->as_number();
  if (min_speedup > 0.0 && cur_summary != nullptr &&
      cur_summary->is_array()) {
    for (const JsonValue& group : cur_summary->as_array()) {
      const JsonValue* scenario_v = group.find("scenario");
      const JsonValue* ruleset_v = group.find("ruleset");
      if (scenario_v == nullptr || ruleset_v == nullptr ||
          ruleset_v->as_string() != "shards1") {
        continue;
      }
      const std::string& scenario = scenario_v->as_string();
      const JsonValue* narrow_v = group.find_path({"events_per_sec", "mean"});
      const JsonValue* wide = find_group(current, scenario, "shards4");
      const JsonValue* wide_v =
          wide == nullptr ? nullptr
                          : wide->find_path({"events_per_sec", "mean"});
      if (narrow_v == nullptr || wide_v == nullptr ||
          narrow_v->as_number() <= 0.0) {
        continue;
      }
      const double speedup = wide_v->as_number() / narrow_v->as_number();
      const bool enforced = cores >= 4.0;
      const bool ok = !enforced || speedup >= min_speedup;
      std::printf("shard scaling  %-16s shards4/shards1 %.2fx (min %.2fx, "
                  "%.0f cores%s)  %s\n",
                  scenario.c_str(), speedup, min_speedup, cores,
                  enforced ? "" : "; not enforced",
                  ok ? "ok" : "TOO SLOW");
      failed |= !ok;
    }
  }

  if (failed) {
    std::fprintf(stderr,
                 "perf_check: regression beyond %.0f%% tolerance (or missing "
                 "group, or shard scaling below the minimum); refresh the "
                 "baseline with bench_sim_throughput --json if intentional\n",
                 tolerance * 100.0);
    return 3;
  }
  std::printf("perf_check: all groups within %.0f%% of baseline\n",
              tolerance * 100.0);
  return 0;
}
