// Validates a Chrome Trace Event Format file produced by --trace-out:
//
//   $ ./trace_check trace.json
//   $ ./trace_check trace.json --require-spans fold,integrate,decide,drain
//
// Checks, in order:
//   1. the file parses with util/json and has a traceEvents array;
//   2. every event carries name/ph/pid/tid/ts with sane types;
//   3. per (pid, tid), non-metadata events are nondecreasing in ts in
//      array order (the writer stamps events at emission, so any
//      violation means a clock or buffering bug);
//   4. per (pid, tid), B/E events balance like parentheses and each E
//      matches the name of the innermost open B (proper nesting);
//   5. each --require-spans name appears as a B event on every thread
//      that emitted any span at all (CI uses this to prove the shard
//      phase instrumentation covered every worker).
//
// Exit codes: 0 = valid, 1 = usage/IO error, 2 = validation failure.

#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "util/cli.hpp"
#include "util/fmt.hpp"
#include "util/json.hpp"
#include "util/string_util.hpp"

namespace {

using sb::util::JsonValue;

int fail(const std::string& message) {
  std::fprintf(stderr, "trace_check: %s\n", message.c_str());
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  sb::CliParser cli("validate a Chrome Trace Event Format file");
  cli.add_string("require-spans", "",
                 "comma-separated span names that must open on every "
                 "thread that emitted spans");
  if (!cli.parse(argc, argv)) return 1;
  if (cli.positionals().size() != 1) {
    std::fprintf(stderr, "usage: trace_check <trace.json> "
                         "[--require-spans fold,drain,...]\n");
    return 1;
  }

  const std::string path = cli.positionals()[0];
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    std::fprintf(stderr, "trace_check: cannot read '%s'\n", path.c_str());
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();

  JsonValue trace;
  try {
    trace = sb::util::parse_json(buffer.str());
  } catch (const std::exception& error) {
    return fail(sb::fmt("'{}' is not valid JSON: {}", path, error.what()));
  }
  const JsonValue* events = trace.find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    return fail("top-level traceEvents array is missing");
  }

  using ThreadKey = std::pair<double, double>;  // (pid, tid)
  std::map<ThreadKey, double> last_ts;
  std::map<ThreadKey, std::vector<std::string>> open_spans;
  std::map<ThreadKey, std::set<std::string>> begun;
  size_t index = 0;
  for (const JsonValue& event : events->as_array()) {
    ++index;
    const JsonValue* name = event.find("name");
    const JsonValue* phase = event.find("ph");
    const JsonValue* pid = event.find("pid");
    const JsonValue* tid = event.find("tid");
    const JsonValue* ts = event.find("ts");
    const auto is_kind = [](const JsonValue* v, JsonValue::Kind kind) {
      return v != nullptr && v->kind() == kind;
    };
    if (!is_kind(name, JsonValue::Kind::kString) ||
        !is_kind(phase, JsonValue::Kind::kString) ||
        !is_kind(pid, JsonValue::Kind::kNumber) ||
        !is_kind(tid, JsonValue::Kind::kNumber) ||
        !is_kind(ts, JsonValue::Kind::kNumber)) {
      return fail(sb::fmt("event {} is missing one of name/ph/pid/tid/ts",
                          index));
    }
    const std::string& ph = phase->as_string();
    if (ph == "M") continue;  // metadata carries no meaningful ts
    const ThreadKey key{pid->as_number(), tid->as_number()};
    const auto seen = last_ts.find(key);
    if (seen != last_ts.end() && ts->as_number() < seen->second) {
      return fail(sb::fmt(
          "event {} ('{}') runs backward on tid {}: ts {} after {}", index,
          name->as_string(), tid->as_number(), ts->as_number(),
          seen->second));
    }
    last_ts[key] = ts->as_number();
    if (ph == "B") {
      open_spans[key].push_back(name->as_string());
      begun[key].insert(name->as_string());
    } else if (ph == "E") {
      std::vector<std::string>& stack = open_spans[key];
      if (stack.empty() || stack.back() != name->as_string()) {
        return fail(sb::fmt(
            "event {} closes '{}' on tid {} but the innermost open span "
            "is '{}'",
            index, name->as_string(), tid->as_number(),
            stack.empty() ? "<none>" : stack.back()));
      }
      stack.pop_back();
    } else if (ph != "i") {
      return fail(sb::fmt("event {} has unknown phase '{}'", index, ph));
    }
  }
  for (const auto& [key, stack] : open_spans) {
    if (!stack.empty()) {
      return fail(sb::fmt("tid {} ends the capture with '{}' still open",
                          key.second, stack.back()));
    }
  }

  for (const std::string& required :
       sb::split(cli.get_string("require-spans"), ',')) {
    if (required.empty()) continue;
    for (const auto& [key, names] : begun) {
      if (names.empty()) continue;  // thread emitted no spans, only instants
      if (names.find(required) == names.end()) {
        return fail(sb::fmt(
            "tid {} emitted spans but never opened required span '{}'",
            key.second, required));
      }
    }
  }

  std::printf("trace_check: %s valid (%zu events, %zu threads)\n",
              path.c_str(), events->size(), last_ts.size());
  return 0;
}
