// Differential scenario fuzzer (docs/TESTING.md).
//
// Generates seeded adversarial scenarios, runs each through every execution
// backend (classic, sharded, sharded multi-thread, optionally the dist
// sweep), and cross-checks traces, outcomes, and the invariant oracle.
// Failing cases are delta-debugged to a minimal repro and written to the
// corpus directory, where tests/fuzz_corpus_test replays them forever.
//
//   fuzz_sim --runs 500 --seed 1          # the standing acceptance sweep
//   fuzz_sim --replay tests/corpus/x.fuzz.json   # re-run one repro, verbose
//   fuzz_sim --emit case.fuzz.json --seed 7      # save a generated case
//
// Exit codes: 0 clean, 1 findings (divergence/violation), 2 usage error.

#include <cstdio>
#include <exception>
#include <filesystem>
#include <string>

#include "check/differential.hpp"
#include "check/generator.hpp"
#include "check/minimize.hpp"
#include "util/cli.hpp"
#include "util/fmt.hpp"
#include "util/json.hpp"

namespace {

using namespace sb;

struct FuzzStats {
  uint64_t runs = 0;
  uint64_t comparable = 0;
  uint64_t churned = 0;
  uint64_t findings = 0;
};

check::DiffOptions diff_options_from(const CliParser& cli) {
  check::DiffOptions options;
  options.alt_shards = static_cast<size_t>(cli.get_int("shards"));
  options.alt_threads = static_cast<size_t>(cli.get_int("threads"));
  options.run_dist = cli.get_bool("dist");
  return options;
}

int replay(const std::string& path, const check::DiffOptions& options) {
  const check::FuzzCase fuzz_case = check::FuzzCase::load(path);
  const check::DiffOutcome outcome = check::run_case(fuzz_case, options);
  std::fputs(outcome.report().c_str(), stdout);
  return outcome.ok() ? 0 : 1;
}

int emit(const std::string& path, uint64_t seed) {
  const check::FuzzCase fuzz_case = check::generate_case(seed);
  fuzz_case.save(path);
  std::printf("wrote %s: %s\n", path.c_str(),
              fuzz_case.describe().c_str());
  return 0;
}

/// Shrinks a failing case and writes the repro into the corpus directory.
void minimize_and_save(const check::FuzzCase& failing,
                       const check::DiffOptions& options,
                       const std::string& corpus_dir, bool no_minimize) {
  check::FuzzCase repro = failing;
  if (!no_minimize) {
    const check::MinimizeResult minimized = check::minimize_case(
        failing, [&options](const check::FuzzCase& candidate) {
          return !check::run_case(candidate, options).ok();
        });
    repro = minimized.minimized;
    std::printf("minimized: %zu -> %zu blocks in %llu evaluations\n",
                minimized.blocks_before, minimized.blocks_after,
                static_cast<unsigned long long>(minimized.evals));
  }
  std::error_code ignored;
  std::filesystem::create_directories(corpus_dir, ignored);
  const std::string path =
      fmt("{}/min-{}.fuzz.json", corpus_dir, util::hex_u64(repro.seed));
  repro.save(path);
  std::printf("repro written: %s\n  replay: fuzz_sim --replay %s\n",
              path.c_str(), path.c_str());
}

int fuzz(const CliParser& cli) {
  const check::DiffOptions options = diff_options_from(cli);
  const uint64_t runs = static_cast<uint64_t>(cli.get_int("runs"));
  const uint64_t seed0 = static_cast<uint64_t>(cli.get_int("seed"));
  const uint64_t max_findings =
      static_cast<uint64_t>(cli.get_int("max-findings"));
  const bool verbose = cli.get_bool("verbose");
  check::GeneratorOptions generator;
  generator.churn_rate = cli.get_double("churn-rate");

  FuzzStats stats;
  for (uint64_t i = 0; i < runs; ++i) {
    const uint64_t seed = seed0 + i;
    const check::FuzzCase fuzz_case = check::generate_case(seed, generator);
    ++stats.runs;
    stats.comparable += fuzz_case.comparable ? 1 : 0;
    stats.churned += fuzz_case.churn.empty() ? 0 : 1;
    if (verbose) {
      std::printf("[%llu/%llu] %s\n", static_cast<unsigned long long>(i + 1),
                  static_cast<unsigned long long>(runs),
                  fuzz_case.describe().c_str());
    }
    const check::DiffOutcome outcome = check::run_case(fuzz_case, options);
    if (outcome.ok()) continue;

    ++stats.findings;
    std::printf("FINDING (seed %s):\n%s",
                util::hex_u64(seed).c_str(), outcome.report().c_str());
    minimize_and_save(fuzz_case, options, cli.get_string("corpus-dir"),
                      cli.get_bool("no-minimize"));
    if (stats.findings >= max_findings) {
      std::printf("stopping after %llu findings (--max-findings)\n",
                  static_cast<unsigned long long>(stats.findings));
      break;
    }
  }

  std::printf(
      "fuzz_sim: %llu runs (seeds %s..%s), %llu full-diff, %llu with churn, "
      "%llu findings\n",
      static_cast<unsigned long long>(stats.runs),
      util::hex_u64(seed0).c_str(),
      util::hex_u64(seed0 + (runs == 0 ? 0 : runs - 1)).c_str(),
      static_cast<unsigned long long>(stats.comparable),
      static_cast<unsigned long long>(stats.churned),
      static_cast<unsigned long long>(stats.findings));
  return stats.findings == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli(
      "Differential scenario fuzzer: generates adversarial scenarios, runs "
      "them through the classic, sharded, and multi-threaded backends, "
      "cross-checks traces and invariants, and minimizes any failure into a "
      "replayable corpus file (docs/TESTING.md).");
  cli.add_int("runs", 50, "number of generated cases");
  cli.add_int("seed", 1, "first generator seed (cases use seed, seed+1, ...)");
  cli.add_int("shards", 4, "shard count of the sharded backends");
  cli.add_int("threads", 3, "worker threads of the multi-threaded backend");
  cli.add_bool("dist", false,
               "also differential-test the distributed sweep backend "
               "(slower; non-churn cases only)");
  cli.add_double("churn-rate", 0.35,
                 "fraction of cases carrying kill/hot-join churn plans");
  cli.add_string("corpus-dir", "tests/corpus",
                 "where minimized repro files are written");
  cli.add_bool("no-minimize", false, "save failing cases unminimized");
  cli.add_int("max-findings", 5, "stop after this many failing cases");
  cli.add_string("replay", "",
                 "re-run one saved case and print the divergence report");
  cli.add_string("emit", "", "generate one case from --seed and save it");
  cli.add_bool("verbose", false, "print every case before running it");
  if (!cli.parse(argc, argv)) return 2;

  try {
    if (!cli.get_string("replay").empty()) {
      return replay(cli.get_string("replay"), diff_options_from(cli));
    }
    if (!cli.get_string("emit").empty()) {
      return emit(cli.get_string("emit"),
                  static_cast<uint64_t>(cli.get_int("seed")));
    }
    return fuzz(cli);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "fuzz_sim: %s\n", error.what());
    return 2;
  }
}
