// Distributed sweep worker process (see docs/ARCHITECTURE.md "Distributed
// sweep backend"). Normally spawned by `sweep --backend dist --workers N`,
// but can also be pointed at a remote coordinator by hand:
//
//   $ ./sweep_worker --connect 192.168.1.10:7777
//
// The worker re-materializes the sweep grid from the coordinator's job
// message, pulls work units until told to stop, and exits 0. Exit code 3
// means the SB_SWEEP_WORKER_FAULT_AFTER fault injection tripped (CI uses it
// to prove unit reassignment); any other nonzero exit is a real failure.

#include <cstdio>
#include <cstdlib>
#include <exception>
#include <stdexcept>
#include <string>

#include "dist/spawn.hpp"
#include "dist/worker.hpp"
#include "obs/trace.hpp"
#include "runner/cli_options.hpp"
#include "util/cli.hpp"
#include "util/string_util.hpp"

int main(int argc, char** argv) {
  sb::CliParser cli("distributed sweep worker");
  cli.add_string("connect", "",
                 "coordinator address as host:port (required)");
  cli.add_int("connect-timeout-ms", 10000,
              "how long to keep retrying the initial connect");
  cli.add_int("heartbeat-ms", 1000, "liveness heartbeat period");
  cli.add_int("reconnect-window-ms", 0,
              "keep retrying a lost coordinator (jittered exponential "
              "backoff) for this long before giving up; in-flight results "
              "are redelivered on reconnect (0 = exit on disconnect)");
  cli.add_int("reconnect-base-ms", 100, "first reconnect backoff step");
  cli.add_int("cores", 0,
              "cores to announce in the hello (0 = detect); coordinators "
              "use it for min-cores dispatch");
  cli.add_int("shard-threads", 0,
              "override SimConfig::shard_threads on every run executed here "
              "(0 = keep each spec's value); rows are independent of it, so "
              "big boxes can raise it safely");
  cli.add_string("trace-out", "",
                 "write a Chrome Trace Event Format file of this worker's "
                 "unit executions and reconnects on exit");
  cli.add_bool("verbose", false, "progress chatter on stderr");
  if (!cli.parse(argc, argv)) return 1;

  try {
    const std::string connect = cli.get_string("connect");
    const size_t colon = connect.rfind(':');
    if (connect.empty() || colon == std::string::npos) {
      throw std::runtime_error(
          "--connect expects host:port, e.g. --connect 127.0.0.1:7777");
    }
    const auto port = sb::parse_int(connect.substr(colon + 1));
    if (!port.has_value() || *port < 1 || *port > 65535) {
      throw std::runtime_error("--connect port must be in [1, 65535], got '" +
                               connect.substr(colon + 1) + "'");
    }

    sb::dist::Worker::Options options;
    options.host = connect.substr(0, colon);
    options.port = static_cast<uint16_t>(*port);
    options.connect_timeout_ms =
        sb::runner::parse_ms_flag(cli, "connect-timeout-ms", 1);
    options.heartbeat_ms = sb::runner::parse_ms_flag(cli, "heartbeat-ms", 1);
    options.reconnect_window_ms =
        sb::runner::parse_ms_flag(cli, "reconnect-window-ms", 0);
    options.reconnect_base_ms =
        sb::runner::parse_ms_flag(cli, "reconnect-base-ms", 1);
    const int64_t cores = cli.get_int("cores");
    const int64_t shard_threads = cli.get_int("shard-threads");
    if (cores < 0 || shard_threads < 0) {
      throw std::runtime_error("--cores and --shard-threads must be >= 0");
    }
    options.cores = static_cast<size_t>(cores);
    options.shard_threads = static_cast<size_t>(shard_threads);
    options.verbose = cli.get_bool("verbose");
    if (const char* fault = std::getenv(sb::dist::kWorkerFaultEnv)) {
      const auto after = sb::parse_int(fault);
      if (!after.has_value() || *after < 0) {
        throw std::runtime_error(std::string(sb::dist::kWorkerFaultEnv) +
                                 " must be a non-negative unit count");
      }
      options.abandon_after_units = static_cast<size_t>(*after);
    }
    const std::string trace_out = cli.get_string("trace-out");
    if (!trace_out.empty()) sb::obs::TraceWriter::instance().enable();
    const int code = sb::dist::Worker(options).run();
    if (!trace_out.empty()) {
      sb::obs::TraceWriter::instance().disable();
      if (!sb::obs::TraceWriter::instance().write_file(trace_out)) {
        std::fprintf(stderr, "sweep_worker: cannot write trace to %s\n",
                     trace_out.c_str());
      }
    }
    return code;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "sweep_worker: %s\n", error.what());
    return 1;
  }
}
