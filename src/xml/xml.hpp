#pragma once
// Minimal XML DOM used for the motion-capability files (paper Fig. 7).
//
// Deliberately small: elements, attributes, text content, comments and the
// XML declaration are supported; namespaces, DTDs, CDATA and processing
// instructions beyond the declaration are not (the capability vocabulary
// needs none of them). Parsing errors carry line/column positions.

#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace sb::xml {

/// Thrown on malformed input; what() includes the 1-based line:column.
class ParseError : public std::runtime_error {
 public:
  ParseError(std::string message, int line, int column);
  [[nodiscard]] int line() const { return line_; }
  [[nodiscard]] int column() const { return column_; }

 private:
  int line_;
  int column_;
};

struct Attribute {
  std::string name;
  std::string value;
};

/// An XML element. Text content is accumulated across child text nodes,
/// preserving order relative to nothing (the capability format never mixes
/// text and elements at the same level).
class Element {
 public:
  explicit Element(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  [[nodiscard]] const std::string& text() const { return text_; }
  void set_text(std::string text) { text_ = std::move(text); }
  void append_text(std::string_view text) { text_ += text; }

  // -- attributes ---------------------------------------------------------
  [[nodiscard]] const std::vector<Attribute>& attributes() const {
    return attributes_;
  }
  /// Returns the attribute value, or nullopt when absent.
  [[nodiscard]] std::optional<std::string> attribute(
      std::string_view name) const;
  /// Returns the attribute value; throws std::out_of_range when absent.
  [[nodiscard]] const std::string& require_attribute(
      std::string_view name) const;
  /// Adds or replaces an attribute.
  void set_attribute(std::string_view name, std::string_view value);

  // -- children -----------------------------------------------------------
  [[nodiscard]] const std::vector<std::unique_ptr<Element>>& children() const {
    return children_;
  }
  /// Appends a child element and returns a reference to it.
  Element& add_child(std::string name);
  /// Appends an already-built child element (used by the parser).
  Element& adopt_child(std::unique_ptr<Element> child);
  /// First child with the given element name, or nullptr.
  [[nodiscard]] const Element* first_child(std::string_view name) const;
  /// All children with the given element name.
  [[nodiscard]] std::vector<const Element*> children_named(
      std::string_view name) const;

 private:
  std::string name_;
  std::string text_;
  std::vector<Attribute> attributes_;
  std::vector<std::unique_ptr<Element>> children_;
};

/// A parsed document: the root element plus the declaration flag.
struct Document {
  std::unique_ptr<Element> root;
  bool had_declaration = false;
};

/// Parses a complete XML document. Throws ParseError on malformed input.
[[nodiscard]] Document parse(std::string_view input);

/// Parses the file at `path`. Throws ParseError / std::runtime_error.
[[nodiscard]] Document parse_file(const std::string& path);

/// Serializes with 2-space indentation and an XML declaration.
[[nodiscard]] std::string serialize(const Element& root,
                                    bool with_declaration = true);

/// Escapes the five XML entities in text/attribute content.
[[nodiscard]] std::string escape(std::string_view raw);

}  // namespace sb::xml
