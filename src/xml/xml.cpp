#include "xml/xml.hpp"

#include <cctype>
#include <fstream>
#include <sstream>

#include "util/fmt.hpp"

namespace sb::xml {

ParseError::ParseError(std::string message, int line, int column)
    : std::runtime_error(fmt("XML parse error at {}:{}: {}", line, column,
                             message)),
      line_(line),
      column_(column) {}

std::optional<std::string> Element::attribute(std::string_view name) const {
  for (const auto& attr : attributes_) {
    if (attr.name == name) return attr.value;
  }
  return std::nullopt;
}

const std::string& Element::require_attribute(std::string_view name) const {
  for (const auto& attr : attributes_) {
    if (attr.name == name) return attr.value;
  }
  throw std::out_of_range(
      fmt("element <{}> is missing required attribute '{}'", name_, name));
}

void Element::set_attribute(std::string_view name, std::string_view value) {
  for (auto& attr : attributes_) {
    if (attr.name == name) {
      attr.value = std::string(value);
      return;
    }
  }
  attributes_.push_back({std::string(name), std::string(value)});
}

Element& Element::add_child(std::string name) {
  children_.push_back(std::make_unique<Element>(std::move(name)));
  return *children_.back();
}

Element& Element::adopt_child(std::unique_ptr<Element> child) {
  children_.push_back(std::move(child));
  return *children_.back();
}

const Element* Element::first_child(std::string_view name) const {
  for (const auto& child : children_) {
    if (child->name() == name) return child.get();
  }
  return nullptr;
}

std::vector<const Element*> Element::children_named(
    std::string_view name) const {
  std::vector<const Element*> out;
  for (const auto& child : children_) {
    if (child->name() == name) out.push_back(child.get());
  }
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view input) : input_(input) {}

  Document parse_document() {
    Document doc;
    skip_prolog(doc);
    doc.root = parse_element();
    skip_misc();
    if (!at_end()) fail("trailing content after root element");
    return doc;
  }

 private:
  [[nodiscard]] bool at_end() const { return pos_ >= input_.size(); }

  [[nodiscard]] char peek() const {
    return at_end() ? '\0' : input_[pos_];
  }

  [[nodiscard]] bool peek_is(std::string_view prefix) const {
    return input_.substr(pos_, prefix.size()) == prefix;
  }

  char advance() {
    if (at_end()) fail("unexpected end of input");
    const char c = input_[pos_++];
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }

  void expect(char c) {
    if (peek() != c) fail(fmt("expected '{}'", c));
    advance();
  }

  void expect(std::string_view literal) {
    for (char c : literal) expect(c);
  }

  [[noreturn]] void fail(const std::string& message) const {
    throw ParseError(message, line_, column_);
  }

  static bool is_space(char c) {
    return c == ' ' || c == '\t' || c == '\n' || c == '\r';
  }

  static bool is_name_start(char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
  }

  static bool is_name_char(char c) {
    return is_name_start(c) || std::isdigit(static_cast<unsigned char>(c)) ||
           c == '-' || c == '.';
  }

  void skip_ws() {
    while (!at_end() && is_space(peek())) advance();
  }

  void skip_comment() {
    expect("<!--");
    while (!peek_is("-->")) {
      if (at_end()) fail("unterminated comment");
      advance();
    }
    expect("-->");
  }

  void skip_misc() {
    for (;;) {
      skip_ws();
      if (peek_is("<!--")) {
        skip_comment();
      } else {
        return;
      }
    }
  }

  void skip_prolog(Document& doc) {
    skip_ws();
    if (peek_is("<?xml")) {
      doc.had_declaration = true;
      while (!peek_is("?>")) {
        if (at_end()) fail("unterminated XML declaration");
        advance();
      }
      expect("?>");
    }
    skip_misc();
  }

  std::string parse_name() {
    if (!is_name_start(peek())) fail("expected a name");
    std::string name;
    while (!at_end() && is_name_char(peek())) name += advance();
    return name;
  }

  std::string decode_entities(std::string_view raw) {
    std::string out;
    out.reserve(raw.size());
    for (size_t i = 0; i < raw.size(); ++i) {
      if (raw[i] != '&') {
        out += raw[i];
        continue;
      }
      const size_t semi = raw.find(';', i);
      if (semi == std::string_view::npos) fail("unterminated entity");
      const std::string_view entity = raw.substr(i + 1, semi - i - 1);
      if (entity == "lt") {
        out += '<';
      } else if (entity == "gt") {
        out += '>';
      } else if (entity == "amp") {
        out += '&';
      } else if (entity == "quot") {
        out += '"';
      } else if (entity == "apos") {
        out += '\'';
      } else if (!entity.empty() && entity[0] == '#') {
        const std::string_view digits = entity.substr(1);
        int code = 0;
        for (char c : digits) {
          if (!std::isdigit(static_cast<unsigned char>(c))) {
            fail(fmt("unsupported character reference '&{};'",
                     std::string(entity)));
          }
          code = code * 10 + (c - '0');
        }
        if (code <= 0 || code > 127) {
          fail("only ASCII character references are supported");
        }
        out += static_cast<char>(code);
      } else {
        fail(fmt("unknown entity '&{};'", std::string(entity)));
      }
      i = semi;
    }
    return out;
  }

  Attribute parse_attribute() {
    Attribute attr;
    attr.name = parse_name();
    skip_ws();
    expect('=');
    skip_ws();
    const char quote = peek();
    if (quote != '"' && quote != '\'') fail("attribute value must be quoted");
    advance();
    std::string raw;
    while (peek() != quote) {
      if (at_end()) fail("unterminated attribute value");
      raw += advance();
    }
    advance();  // closing quote
    attr.value = decode_entities(raw);
    return attr;
  }

  std::unique_ptr<Element> parse_element() {
    expect('<');
    auto element = std::make_unique<Element>(parse_name());
    for (;;) {
      skip_ws();
      if (peek() == '/') {
        expect("/>");
        return element;
      }
      if (peek() == '>') {
        advance();
        break;
      }
      Attribute attr = parse_attribute();
      if (element->attribute(attr.name)) {
        fail(fmt("duplicate attribute '{}'", attr.name));
      }
      element->set_attribute(attr.name, attr.value);
    }
    // Content: text, children, comments, then the closing tag.
    std::string text;
    for (;;) {
      if (at_end()) fail(fmt("unterminated element <{}>", element->name()));
      if (peek_is("<!--")) {
        skip_comment();
        continue;
      }
      if (peek_is("</")) {
        expect("</");
        const std::string closing = parse_name();
        if (closing != element->name()) {
          fail(fmt("mismatched closing tag </{}> for <{}>", closing,
                   element->name()));
        }
        skip_ws();
        expect('>');
        element->set_text(decode_entities(text));
        return element;
      }
      if (peek() == '<') {
        element->adopt_child(parse_element());
        continue;
      }
      text += advance();
    }
  }

  std::string_view input_;
  size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

}  // namespace

Document parse(std::string_view input) {
  return Parser(input).parse_document();
}

Document parse_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error(fmt("cannot open XML file '{}'", path));
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse(buffer.str());
}

std::string escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '&': out += "&amp;"; break;
      case '"': out += "&quot;"; break;
      case '\'': out += "&apos;"; break;
      default: out += c;
    }
  }
  return out;
}

namespace {

void serialize_element(const Element& element, std::ostringstream& os,
                       int depth) {
  const std::string indent(static_cast<size_t>(depth) * 2, ' ');
  os << indent << '<' << element.name();
  for (const auto& attr : element.attributes()) {
    os << ' ' << attr.name << "=\"" << escape(attr.value) << '"';
  }
  const bool has_children = !element.children().empty();
  const bool has_text = !element.text().empty();
  if (!has_children && !has_text) {
    os << "/>\n";
    return;
  }
  os << '>';
  if (has_text) {
    // Text is re-indented one level deeper, one line per input line, so the
    // matrix blocks in capability files stay human-readable.
    os << '\n';
    std::istringstream text(element.text());
    std::string line;
    const std::string text_indent(static_cast<size_t>(depth + 1) * 2, ' ');
    while (std::getline(text, line)) {
      std::string_view trimmed = line;
      while (!trimmed.empty() &&
             (trimmed.front() == ' ' || trimmed.front() == '\t')) {
        trimmed.remove_prefix(1);
      }
      while (!trimmed.empty() &&
             (trimmed.back() == ' ' || trimmed.back() == '\t' ||
              trimmed.back() == '\r')) {
        trimmed.remove_suffix(1);
      }
      if (!trimmed.empty()) os << text_indent << escape(trimmed) << '\n';
    }
  } else {
    os << '\n';
  }
  for (const auto& child : element.children()) {
    serialize_element(*child, os, depth + 1);
  }
  os << indent << "</" << element.name() << ">\n";
}

}  // namespace

std::string serialize(const Element& root, bool with_declaration) {
  std::ostringstream os;
  if (with_declaration) {
    os << "<?xml version=\"1.0\" encoding=\"utf-8\"?>\n";
  }
  serialize_element(root, os, 0);
  return os.str();
}

}  // namespace sb::xml
