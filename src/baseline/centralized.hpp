#pragma once
// Baseline: an omniscient centralized planner.
//
// With global knowledge, path construction reduces to an assignment
// problem: match blocks to the canonical path cells minimizing total
// travel. The greedy matching below (repeatedly take the globally cheapest
// unassigned block/cell pair) lower-bounds what any distributed execution
// can achieve in elementary moves, giving the optimality yardstick for
// bench_baselines. Collisions and support constraints are deliberately
// ignored - this is a bound, not an executable plan.

#include <cstdint>
#include <vector>

#include "lattice/scenario.hpp"

namespace sb::baseline {

struct Assignment {
  lat::BlockId block;
  lat::Vec2 from;
  lat::Vec2 to;
  int32_t moves = 0;  // Manhattan travel
};

struct CentralizedResult {
  bool feasible = false;
  /// Sum of assigned Manhattan distances (lower bound on total moves).
  uint64_t total_moves = 0;
  /// Longest single assignment (lower bound on makespan in hops).
  int32_t max_single_trip = 0;
  std::vector<Assignment> assignments;
};

/// Plans the canonical-path construction with global knowledge.
[[nodiscard]] CentralizedResult plan_centralized(
    const lat::Scenario& scenario);

}  // namespace sb::baseline
