#include "baseline/free_motion.hpp"

#include <algorithm>
#include <queue>
#include <unordered_map>

#include "core/distance.hpp"
#include "lattice/connectivity.hpp"
#include "lattice/region.hpp"
#include "lattice/world_view.hpp"
#include "util/assert.hpp"

namespace sb::baseline {

std::vector<lat::Vec2> canonical_path(lat::Vec2 input, lat::Vec2 output) {
  std::vector<lat::Vec2> path;
  lat::Vec2 cursor = input;
  path.push_back(cursor);
  const int32_t step_x = output.x > input.x ? 1 : -1;
  while (cursor.x != output.x) {
    cursor.x += step_x;
    path.push_back(cursor);
  }
  const int32_t step_y = output.y > input.y ? 1 : -1;
  while (cursor.y != output.y) {
    cursor.y += step_y;
    path.push_back(cursor);
  }
  return path;
}

namespace {

/// BFS through empty cells from `from` to `to`; returns the hop count, or
/// -1 when unreachable. Free motion: any empty in-bounds cell is passable.
int64_t bfs_walk_length(lat::WorldView view, lat::Vec2 from, lat::Vec2 to) {
  if (from == to) return 0;
  std::unordered_map<lat::Vec2, int64_t, lat::Vec2Hash> dist;
  std::queue<lat::Vec2> queue;
  dist[from] = 0;
  queue.push(from);
  while (!queue.empty()) {
    const lat::Vec2 p = queue.front();
    queue.pop();
    for (lat::Direction d : lat::all_directions()) {
      const lat::Vec2 q = p + delta(d);
      if (q == to) return dist[p] + 1;
      if (!view.in_bounds(q) || view.occupied(q) || dist.count(q)) continue;
      dist[q] = dist[p] + 1;
      queue.push(q);
    }
  }
  return -1;
}

}  // namespace

FreeMotionResult run_free_motion(const lat::Scenario& scenario,
                                 FreeMotionConfig config) {
  const auto issues = lat::validate(scenario);
  SB_EXPECTS(issues.empty(), "invalid scenario for the free-motion baseline");

  FreeMotionResult result;
  result.path = canonical_path(scenario.input, scenario.output);
  lat::Grid grid = scenario.to_grid();
  const lat::WorldView view(grid);  // reads go through the facade

  core::DistanceParams params;
  params.input = scenario.input;
  params.output = scenario.output;
  params.freeze_aligned = config.freeze_aligned;

  const lat::BlockId root = scenario.root_id();

  for (uint64_t iteration = 0; iteration < config.max_iterations;
       ++iteration) {
    // Next empty cell of the canonical path (filled from I towards O).
    const auto next_cell =
        std::find_if(result.path.begin(), result.path.end(),
                     [&](lat::Vec2 cell) { return !view.occupied(cell); });
    if (next_cell == result.path.end()) {
      result.complete = true;
      return result;
    }

    // Election: every block evaluates dBO (a distance computation each);
    // candidates are the movable blocks, ordered by distance then id.
    struct Candidate {
      int32_t distance;
      lat::BlockId id;
    };
    std::vector<Candidate> candidates;
    for (const auto& [id, pos] : view.blocks()) {
      ++result.distance_computations;
      if (id == root) continue;  // the Root anchors I
      // Lemma 1(b): blocks that joined the path stay there. (Eq (8) covers
      // most of this, but its one-hop-from-O exception must not re-elect a
      // block already resting one cell before O.)
      if (std::find(result.path.begin(), result.path.end(), pos) !=
          result.path.end()) {
        continue;
      }
      const int32_t d = core::base_distance(pos, params);
      if (d == core::kInfiniteDistance) continue;
      candidates.push_back({d, id});
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate& a, const Candidate& b) {
                if (a.distance != b.distance) return a.distance < b.distance;
                return a.id < b.id;
              });

    ++result.elections;
    bool moved = false;
    for (const Candidate& candidate : candidates) {
      const lat::Vec2 from = view.position_of(candidate.id);
      const int64_t walk = bfs_walk_length(view, from, *next_cell);
      if (walk < 0) continue;  // boxed in; try the next candidate
      grid.move(from, *next_cell);
      result.elementary_moves += static_cast<uint64_t>(walk);
      moved = true;
      break;
    }
    if (!moved) {
      result.blocked = true;
      return result;
    }
  }
  result.blocked = true;  // iteration cap
  return result;
}

}  // namespace sb::baseline
