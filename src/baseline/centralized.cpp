#include "baseline/centralized.hpp"

#include <algorithm>
#include <set>

#include "baseline/free_motion.hpp"
#include "lattice/world_view.hpp"
#include "util/assert.hpp"

namespace sb::baseline {

CentralizedResult plan_centralized(const lat::Scenario& scenario) {
  const auto issues = lat::validate(scenario);
  SB_EXPECTS(issues.empty(), "invalid scenario for the centralized planner");

  CentralizedResult result;
  const std::vector<lat::Vec2> path =
      canonical_path(scenario.input, scenario.output);

  // Cells already holding a block stay as they are (Lemma 1(b): occupied
  // path positions never empty again); only the rest need assignees.
  const lat::Grid grid = scenario.to_grid();
  const lat::WorldView view(grid);  // reads go through the facade
  std::vector<lat::Vec2> targets;
  for (const lat::Vec2 cell : path) {
    if (!view.occupied(cell)) targets.push_back(cell);
  }
  std::set<lat::BlockId> free_blocks;
  for (const auto& [id, pos] : view.blocks()) {
    const bool on_path =
        std::find(path.begin(), path.end(), pos) != path.end();
    if (!on_path) free_blocks.insert(id);
  }
  if (free_blocks.size() < targets.size()) {
    return result;  // infeasible: not enough movable blocks
  }

  // Greedy global matching: repeatedly take the cheapest (block, cell)
  // pair. O(B * C * min(B, C)); fine at experiment scale.
  std::vector<lat::Vec2> remaining = targets;
  while (!remaining.empty()) {
    int32_t best_cost = INT32_MAX;
    lat::BlockId best_block;
    size_t best_target = 0;
    for (const lat::BlockId id : free_blocks) {
      const lat::Vec2 pos = view.position_of(id);
      for (size_t t = 0; t < remaining.size(); ++t) {
        const int32_t cost = manhattan(pos, remaining[t]);
        if (cost < best_cost ||
            (cost == best_cost && id < best_block)) {
          best_cost = cost;
          best_block = id;
          best_target = t;
        }
      }
    }
    Assignment assignment;
    assignment.block = best_block;
    assignment.from = view.position_of(best_block);
    assignment.to = remaining[best_target];
    assignment.moves = best_cost;
    result.assignments.push_back(assignment);
    result.total_moves += static_cast<uint64_t>(best_cost);
    result.max_single_trip = std::max(result.max_single_trip, best_cost);
    free_blocks.erase(best_block);
    remaining.erase(remaining.begin() +
                    static_cast<std::ptrdiff_t>(best_target));
  }
  result.feasible = true;
  return result;
}

}  // namespace sb::baseline
