#pragma once
// Baseline: the free-motion model of the paper's predecessor [14]
// (Tembo & El-Baz, iThings 2013).
//
// In [14] blocks move on the surface without needing support from other
// blocks (only the surface contact below), so an elected block travels
// directly to its destination. This baseline reuses the same election
// semantics (minimum hop distance, Eq (8) alignment freezing) but lets the
// elected block walk an unobstructed BFS route to the next empty path
// cell. Comparing it against the constrained algorithm quantifies the cost
// of the Smart Blocks support constraints (paper §II: "the context
// considered in this paper is far more constrained").

#include <cstdint>
#include <vector>

#include "lattice/scenario.hpp"

namespace sb::baseline {

struct FreeMotionConfig {
  /// Keep Eq (8) freezing so the election semantics match the main
  /// algorithm.
  bool freeze_aligned = true;
  uint64_t max_iterations = 1'000'000;
};

struct FreeMotionResult {
  bool complete = false;
  bool blocked = false;
  /// Elections run (= elected-block trips).
  uint64_t elections = 0;
  /// Total one-cell moves walked by elected blocks.
  uint64_t elementary_moves = 0;
  /// dBO evaluations, one per block per election (Remark 2 equivalent).
  uint64_t distance_computations = 0;
  /// The canonical path cells, in order from I to O.
  std::vector<lat::Vec2> path;
};

/// The canonical shortest path used by the baseline and the centralized
/// planner: x varies first (from I's column to O's column at I's row),
/// then y (along O's column). For aligned I/O this is the straight segment.
[[nodiscard]] std::vector<lat::Vec2> canonical_path(lat::Vec2 input,
                                                    lat::Vec2 output);

/// Runs the free-motion baseline to completion on a copy of the scenario.
[[nodiscard]] FreeMotionResult run_free_motion(
    const lat::Scenario& scenario, FreeMotionConfig config = FreeMotionConfig{});

}  // namespace sb::baseline
