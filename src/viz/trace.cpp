#include "viz/trace.hpp"

#include <sstream>

#include "util/fmt.hpp"

namespace sb::viz {

void MoveTrace::record(core::Epoch epoch, lat::BlockId mover,
                       const motion::RuleApplication& app) {
  TraceEntry entry;
  entry.epoch = epoch;
  entry.mover = mover;
  entry.rule = app.rule->name();
  entry.from = app.subject_from();
  entry.to = app.subject_to();
  entry.moves = app.world_moves();
  entries_.push_back(std::move(entry));
}

std::string MoveTrace::to_jsonl() const {
  std::ostringstream os;
  for (const TraceEntry& e : entries_) {
    os << fmt(
        R"({{"epoch":{},"mover":{},"rule":"{}","from":[{},{}],"to":[{},{}],"moves":[)",
        e.epoch, e.mover.value, e.rule, e.from.x, e.from.y, e.to.x, e.to.y);
    for (size_t i = 0; i < e.moves.size(); ++i) {
      if (i) os << ',';
      os << fmt(R"([[{},{}],[{},{}]])", e.moves[i].first.x,
                e.moves[i].first.y, e.moves[i].second.x, e.moves[i].second.y);
    }
    os << "]}\n";
  }
  return os.str();
}

std::string MoveTrace::to_csv() const {
  std::ostringstream os;
  os << "epoch,mover,rule,role,from_x,from_y,to_x,to_y\n";
  for (const TraceEntry& e : entries_) {
    for (const auto& [from, to] : e.moves) {
      const bool is_subject = from == e.from && to == e.to;
      os << fmt("{},{},{},{},{},{},{},{}\n", e.epoch, e.mover.value, e.rule,
                is_subject ? "subject" : "helper", from.x, from.y, to.x,
                to.y);
    }
  }
  return os.str();
}

void MoveTrace::replay(lat::Grid& grid) const {
  for (const TraceEntry& e : entries_) {
    grid.move_simultaneously(e.moves);
  }
}

}  // namespace sb::viz
