#pragma once
// Move-trace recording and export (JSONL / CSV) for post-hoc analysis and
// replay, mirroring VisibleSim's debugging role in the paper's §V.E.

#include <string>
#include <vector>

#include "core/messages.hpp"
#include "lattice/grid.hpp"
#include "motion/apply.hpp"

namespace sb::viz {

struct TraceEntry {
  core::Epoch epoch = 0;
  lat::BlockId mover;
  std::string rule;
  lat::Vec2 from;
  lat::Vec2 to;
  /// All elementary displacements (helpers included).
  std::vector<std::pair<lat::Vec2, lat::Vec2>> moves;
};

class MoveTrace {
 public:
  /// Records one elected hop; wire this into
  /// ReconfigurationSession::set_move_listener via recorder().
  void record(core::Epoch epoch, lat::BlockId mover,
              const motion::RuleApplication& app);

  /// Adapter with the session listener's exact signature.
  [[nodiscard]] auto recorder() {
    return [this](core::Epoch epoch, lat::BlockId mover,
                  const motion::RuleApplication& app) {
      record(epoch, mover, app);
    };
  }

  [[nodiscard]] const std::vector<TraceEntry>& entries() const {
    return entries_;
  }
  [[nodiscard]] size_t size() const { return entries_.size(); }

  /// One JSON object per line.
  [[nodiscard]] std::string to_jsonl() const;
  /// Header + one row per elementary displacement.
  [[nodiscard]] std::string to_csv() const;

  /// Replays the recorded moves onto a grid (for checkpoint-free replay of
  /// a reconfiguration from its initial state).
  void replay(lat::Grid& grid) const;

 private:
  std::vector<TraceEntry> entries_;
};

}  // namespace sb::viz
