#include "viz/svg.hpp"

#include <fstream>
#include <sstream>

#include "lattice/region.hpp"
#include "util/fmt.hpp"

namespace sb::viz {

std::string render_svg(lat::WorldView view, lat::Vec2 input,
                       lat::Vec2 output, SvgOptions options) {
  const int c = options.cell_pixels;
  const int width = static_cast<int>(view.width()) * c;
  const int height = static_cast<int>(view.height()) * c;
  const lat::Rect rect = lat::bounding_rect(input, output);

  // y is flipped: surface north (max y) renders at the top.
  const auto px = [&](lat::Vec2 p) {
    return std::pair<int, int>{p.x * c,
                               (view.height() - 1 - p.y) * c};
  };

  std::ostringstream os;
  os << fmt(
      "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{}\" height=\"{}\" "
      "viewBox=\"0 0 {} {}\">\n",
      width, height, width, height);
  os << fmt("<rect width=\"{}\" height=\"{}\" fill=\"#f8f8f8\"/>\n", width,
            height);

  // Path-cell highlight.
  if (options.highlight_path) {
    for (int32_t y = 0; y < view.height(); ++y) {
      for (int32_t x = 0; x < view.width(); ++x) {
        const lat::Vec2 p{x, y};
        if (rect.contains(p) && (p.x == output.x || p.y == output.y)) {
          const auto [sx, sy] = px(p);
          os << fmt(
              "<rect x=\"{}\" y=\"{}\" width=\"{}\" height=\"{}\" "
              "fill=\"#fff3c4\"/>\n",
              sx, sy, c, c);
        }
      }
    }
  }

  // Grid lines.
  for (int32_t x = 0; x <= view.width(); ++x) {
    os << fmt(
        "<line x1=\"{}\" y1=\"0\" x2=\"{}\" y2=\"{}\" stroke=\"#ddd\"/>\n",
        x * c, x * c, height);
  }
  for (int32_t y = 0; y <= view.height(); ++y) {
    os << fmt(
        "<line x1=\"0\" y1=\"{}\" x2=\"{}\" y2=\"{}\" stroke=\"#ddd\"/>\n",
        y * c, width, y * c);
  }

  // I / O markers.
  const auto marker = [&](lat::Vec2 p, const char* color) {
    const auto [sx, sy] = px(p);
    os << fmt(
        "<rect x=\"{}\" y=\"{}\" width=\"{}\" height=\"{}\" rx=\"6\" "
        "fill=\"none\" stroke=\"{}\" stroke-width=\"3\"/>\n",
        sx + 2, sy + 2, c - 4, c - 4, color);
  };
  marker(input, "#3a6fd8");    // blue rounded square (paper Fig 10)
  marker(output, "#c33ad8");   // magenta rounded square

  // Blocks.
  for (const auto& [id, pos] : view.blocks()) {
    const auto [sx, sy] = px(pos);
    os << fmt(
        "<rect x=\"{}\" y=\"{}\" width=\"{}\" height=\"{}\" fill=\"#9aa7b4\" "
        "stroke=\"#4d5a66\"/>\n",
        sx + 3, sy + 3, c - 6, c - 6);
    if (options.show_ids) {
      os << fmt(
          "<text x=\"{}\" y=\"{}\" font-size=\"{}\" text-anchor=\"middle\" "
          "font-family=\"sans-serif\" fill=\"#1c2833\">{}</text>\n",
          sx + c / 2, sy + c / 2 + c / 6, c / 2, id.value);
    }
  }
  os << "</svg>\n";
  return os.str();
}

void save_svg(const std::string& path, lat::WorldView view, lat::Vec2 input,
              lat::Vec2 output, SvgOptions options) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error(fmt("cannot write SVG '{}'", path));
  out << render_svg(view, input, output, options);
}

}  // namespace sb::viz
