#pragma once
// ASCII rendering of surface states (the library's stand-in for the
// paper's external 3-D renderer).

#include <string>

#include "lattice/world_view.hpp"

namespace sb::viz {

struct AsciiOptions {
  /// Render two characters per cell showing block ids modulo 100; with
  /// false, blocks render as '#'.
  bool show_ids = true;
  /// Mark the input/output cells (I is drawn under its block as 'I').
  bool mark_io = true;
};

/// Renders the surface with north (max y) at the top, matching the paper's
/// figures. Input renders as 'I'/'i' (free/occupied), output as 'O'/'o'.
/// Takes the read facade (sim::World::view() or lat::WorldView(grid)).
[[nodiscard]] std::string render_ascii(lat::WorldView view, lat::Vec2 input,
                                       lat::Vec2 output,
                                       AsciiOptions options = AsciiOptions{});

}  // namespace sb::viz
