#pragma once
// ASCII rendering of surface states (the library's stand-in for the
// paper's external 3-D renderer).

#include <string>

#include "lattice/grid.hpp"

namespace sb::viz {

struct AsciiOptions {
  /// Render two characters per cell showing block ids modulo 100; with
  /// false, blocks render as '#'.
  bool show_ids = true;
  /// Mark the input/output cells (I is drawn under its block as 'I').
  bool mark_io = true;
};

/// Renders the grid with north (max y) at the top, matching the paper's
/// figures. Input renders as 'I'/'i' (free/occupied), output as 'O'/'o'.
[[nodiscard]] std::string render_ascii(const lat::Grid& grid,
                                       lat::Vec2 input, lat::Vec2 output,
                                       AsciiOptions options = AsciiOptions{});

}  // namespace sb::viz
