#pragma once
// SVG snapshots of surface states, for figure-quality output akin to the
// paper's Figs 2 and 10-11.

#include <string>

#include "lattice/world_view.hpp"

namespace sb::viz {

struct SvgOptions {
  int cell_pixels = 28;
  bool show_ids = true;
  /// Highlight cells aligned with O inside the I/O rectangle (the path).
  bool highlight_path = true;
};

/// Renders the surface as a standalone SVG document. Takes the read
/// facade (sim::World::view() or lat::WorldView(grid)).
[[nodiscard]] std::string render_svg(lat::WorldView view, lat::Vec2 input,
                                     lat::Vec2 output,
                                     SvgOptions options = SvgOptions{});

/// Writes render_svg() output to a file. Throws std::runtime_error on I/O
/// failure.
void save_svg(const std::string& path, lat::WorldView view, lat::Vec2 input,
              lat::Vec2 output, SvgOptions options = SvgOptions{});

}  // namespace sb::viz
