#pragma once
// SVG snapshots of surface states, for figure-quality output akin to the
// paper's Figs 2 and 10-11.

#include <string>

#include "lattice/grid.hpp"

namespace sb::viz {

struct SvgOptions {
  int cell_pixels = 28;
  bool show_ids = true;
  /// Highlight cells aligned with O inside the I/O rectangle (the path).
  bool highlight_path = true;
};

/// Renders the grid as a standalone SVG document.
[[nodiscard]] std::string render_svg(const lat::Grid& grid, lat::Vec2 input,
                                     lat::Vec2 output,
                                     SvgOptions options = SvgOptions{});

/// Writes render_svg() output to a file. Throws std::runtime_error on I/O
/// failure.
void save_svg(const std::string& path, const lat::Grid& grid,
              lat::Vec2 input, lat::Vec2 output,
              SvgOptions options = SvgOptions{});

}  // namespace sb::viz
