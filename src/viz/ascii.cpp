#include "viz/ascii.hpp"

#include <sstream>

namespace sb::viz {

std::string render_ascii(lat::WorldView view, lat::Vec2 input,
                         lat::Vec2 output, AsciiOptions options) {
  std::ostringstream os;
  const int cell_width = options.show_ids ? 3 : 2;
  const auto horizontal_rule = [&] {
    os << '+';
    for (int32_t x = 0; x < view.width(); ++x) {
      os << std::string(static_cast<size_t>(cell_width), '-');
    }
    os << "+\n";
  };

  horizontal_rule();
  for (int32_t y = view.height() - 1; y >= 0; --y) {
    os << '|';
    for (int32_t x = 0; x < view.width(); ++x) {
      const lat::Vec2 p{x, y};
      const lat::BlockId id = view.at(p);
      std::string cell;
      if (id.valid()) {
        if (options.show_ids) {
          cell = std::to_string(id.value % 100);
          while (cell.size() < 2) cell = " " + cell;
        } else {
          cell = "#";
        }
        if (options.mark_io && p == input) {
          cell += "i";
        } else if (options.mark_io && p == output) {
          cell += "o";
        } else {
          cell += " ";
        }
      } else {
        if (options.mark_io && p == input) {
          cell = options.show_ids ? " I " : "I ";
        } else if (options.mark_io && p == output) {
          cell = options.show_ids ? " O " : "O ";
        } else {
          cell = options.show_ids ? " . " : ". ";
        }
      }
      if (!options.show_ids) cell = cell.substr(0, 2);
      os << cell;
    }
    os << "|\n";
  }
  horizontal_rule();
  return os.str();
}

}  // namespace sb::viz
