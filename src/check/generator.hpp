#pragma once
// Seeded random scenario generator for the differential fuzzer.
//
// generate_case(seed) derives everything — surface shape, block layout,
// latency model, tie policy, timing knobs, churn plan — from one uint64
// seed, so every case is reproducible from its seed alone (the repro file
// exists so a *minimized* case survives generator evolution).
//
// The generator is biased adversarial: besides compact blobs it produces
// loose tendril growth (the shapes Assumption 1 exists to exclude), blobs
// with carved-out pockets, dumbbells joined by a 1-2 cell bridge (one move
// away from disconnection), and near-degenerate I/O placements. Every
// emitted scenario still satisfies lat::validate() — the fuzzer explores
// the algorithm's behaviour on hostile-but-legal inputs, not the
// constructor's error handling.

#include <cstdint>

#include "check/fuzz_case.hpp"

namespace sb::check {

struct GeneratorOptions {
  /// Probability that a case carries a churn plan (kills / hot-joins).
  double churn_rate = 0.35;
  /// Force comparable knobs (fixed latency + kLowestId) on every case;
  /// engine-only knobs (random latency, arrival-order ties) are still
  /// exercised for determinism + invariants when false.
  bool always_comparable = false;
};

/// Derives a complete fuzz case from `seed`. Deterministic; the result's
/// scenario always passes lat::validate().
[[nodiscard]] FuzzCase generate_case(uint64_t seed,
                                     const GeneratorOptions& options = {});

}  // namespace sb::check
