#pragma once
// Differential harness: runs one FuzzCase through every execution backend
// and cross-checks the runs against each other and the invariant oracle.
//
// Backends and what is compared (docs/TESTING.md has the full rationale):
//
//   A  classic      shards=1                 the reference execution
//   B  sharded      shards=alt_shards, t=1   window schedule, one thread
//   C  sharded-mt   shards=alt_shards, t>1   same schedule, parallel drain
//
//   B vs C   byte-identical event traces, move traces, and full results —
//            thread count must never be observable (the engine's hardest
//            determinism contract).
//   A vs B   move traces plus schedule-independent outcome digest — only
//            for `comparable` cases (fixed latency + kLowestId ties; see
//            FuzzCase::comparable) that did not hit the event budget
//            (budgets land at window granularity in sharded mode).
//   dist     optional (DiffOptions::run_dist): the same scenario swept
//            through an in-process coordinator/worker fleet; the merged
//            report must byte-match the local thread-pool backend's.
//
// Every backend run also carries the InvariantOracle; any recorded
// violation fails the case regardless of agreement between backends.

#include <string>
#include <vector>

#include "check/fuzz_case.hpp"
#include "check/oracle.hpp"

namespace sb::check {

struct DiffOptions {
  /// Shard count of backends B and C (clamped to surface width by the sim).
  size_t alt_shards = 4;
  /// Worker threads of backend C.
  size_t alt_threads = 3;
  /// Also differential-test the distributed sweep backend (skipped for
  /// churn cases, which the sweep grid cannot express).
  bool run_dist = false;
  /// Fleet size of the dist leg. More than one worker races the pull
  /// scheduling, proving merge-order independence on hostile scenarios.
  size_t dist_workers = 1;
  /// When non-empty, the dist leg forks/execs this sweep_worker binary
  /// instead of running workers in-process — the full wire path, process
  /// boundary included (the corpus dist smoke test uses this).
  std::string dist_worker_binary;
  /// Coordinator total-timeout backstop for the dist leg. The default suits
  /// optimized builds; sanitizer builds replaying heavy corpus cases need
  /// minutes per run and must raise it or every case reads as a timeout.
  size_t dist_total_timeout_ms = 60000;
  OracleOptions oracle;
};

/// One backend execution of the case.
struct BackendRun {
  std::string name;
  core::SessionResult result;
  /// One line per elected hop: "epoch block rule@anchor from->to".
  std::vector<std::string> move_trace;
  /// Simulator event trace streams (per shard + sequential).
  std::vector<std::vector<std::string>> event_trace;
  /// Canonical final occupancy, one "id@x,y" per line in id order.
  std::string final_blocks;
  std::vector<std::string> violations;
  uint64_t oracle_checks = 0;
};

struct DiffOutcome {
  std::string case_description;
  std::vector<BackendRun> runs;
  /// Cross-backend mismatches; empty on agreement.
  std::vector<std::string> divergences;
  /// Non-failing observations (event budget hit, comparison demotions).
  std::vector<std::string> notes;

  /// No divergences and no invariant violations in any run.
  [[nodiscard]] bool ok() const;
  /// Human-readable report: verdict, per-backend outcome, first differing
  /// trace line, invariant violations (the --replay output).
  [[nodiscard]] std::string report() const;
};

/// Executes one backend (classic when shards == 1). Exposed for the corpus
/// replay test; most callers want run_case.
[[nodiscard]] BackendRun run_backend(const FuzzCase& fuzz_case,
                                     std::string name, size_t shards,
                                     size_t threads,
                                     const OracleOptions& oracle_options = {});

/// The dist leg alone: sweeps the case's scenario through the local
/// thread-pool backend and a coordinator/worker fleet (in-process workers,
/// or forked `options.dist_worker_binary` subprocesses) and byte-compares
/// the timing-scrubbed reports. Returns a divergence description, or "" on
/// agreement. Exposed for the corpus dist smoke test; run_case calls it for
/// churn-free cases when `options.run_dist`.
[[nodiscard]] std::string compare_dist_backend(const FuzzCase& fuzz_case,
                                               const DiffOptions& options = {});

/// Runs the case through all backends and populates divergences.
[[nodiscard]] DiffOutcome run_case(const FuzzCase& fuzz_case,
                                   const DiffOptions& options = {});

}  // namespace sb::check
