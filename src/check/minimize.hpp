#pragma once
// Delta-debugging minimizer for failing fuzz cases.
//
// minimize_case() shrinks a case while a caller-supplied predicate keeps
// failing (ddmin over the block set, plus structural simplifications), so a
// corpus entry reproduces its bug with the fewest moving parts:
//
//   1. churn pruning      drop the whole plan, then each op individually;
//   2. block ddmin        remove chunks of blocks, halving the chunk size
//                         down to single blocks; every candidate must still
//                         satisfy lat::validate() (root kept, connectivity
//                         and path-coverage preserved);
//   3. bounding-box trim  shrink the surface to the blocks' bounding box
//                         (plus a 1-cell margin and the I/O cells);
//   4. knob simplification ack_timeout -> 0 when no kills remain,
//                         latency -> fixed(1), motion_duration -> 10.
//
// Steps repeat until a full pass removes nothing ("1-minimal" in
// delta-debugging terms) or the evaluation budget runs out. The predicate
// re-runs the differential harness, so minimization cost is bounded by
// `max_evals` harness executions.

#include <cstdint>
#include <functional>

#include "check/fuzz_case.hpp"

namespace sb::check {

struct MinimizeOptions {
  /// Budget of predicate evaluations (each typically a full run_case()).
  uint64_t max_evals = 250;
};

struct MinimizeResult {
  FuzzCase minimized;
  uint64_t evals = 0;       ///< predicate evaluations spent
  size_t blocks_before = 0;
  size_t blocks_after = 0;
};

/// Shrinks `failing` while `still_fails` returns true for the candidate.
/// `still_fails(failing)` is assumed true and is not re-checked; every
/// returned case satisfies lat::validate().
[[nodiscard]] MinimizeResult minimize_case(
    const FuzzCase& failing,
    const std::function<bool(const FuzzCase&)>& still_fails,
    const MinimizeOptions& options = {});

}  // namespace sb::check
