#pragma once
// FuzzCase: one self-contained differential-fuzzer input — a scenario plus
// every session knob the generator randomizes (latency model, tie policy,
// timing, churn plan) under a single identifying seed.
//
// A case serializes to a compact JSON repro file (the scenario rides along
// as its canonical .surf text, so repros are self-contained and readable).
// Failing cases are minimized (src/check/minimize.hpp) and committed under
// tests/corpus/, where tests/fuzz_corpus_test replays them forever after;
// `tools/fuzz_sim --replay <file>` re-runs one interactively. See
// docs/TESTING.md for the corpus workflow.

#include <string>
#include <vector>

#include "core/reconfig.hpp"
#include "lattice/scenario.hpp"
#include "sim/time.hpp"
#include "util/json.hpp"

namespace sb::check {

/// One scheduled mid-run churn action. Victims and join sites are resolved
/// at execution time from `ordinal` and the grid state — never from
/// positions recorded at generation time — so a plan stays meaningful while
/// the minimizer removes blocks.
struct ChurnOp {
  enum class Kind { kKill, kJoin };
  sim::SimTime at = 0;  ///< simulated time the action fires (>= 1)
  Kind kind = Kind::kKill;
  /// Deterministic pick among the candidates alive at execution time
  /// (kKill: ordinal % live non-root modules, in id order; kJoin: row-major
  /// scan offset into the surface for the first attachable free cell).
  uint64_t ordinal = 0;
};

[[nodiscard]] std::string_view to_string(ChurnOp::Kind kind);

struct FuzzCase {
  /// Generator seed this case was derived from (identity; 0 = hand-made).
  uint64_t seed = 0;
  std::string name = "case";
  lat::Scenario scenario;

  // -- session knobs ---------------------------------------------------------
  /// Link latency: "fixed" (latency_lo) or "uniform" ([lo, hi]).
  std::string latency_kind = "fixed";
  sim::Ticks latency_lo = 1;
  sim::Ticks latency_hi = 1;
  core::ElectionTie election_tie = core::ElectionTie::kLowestId;
  sim::Ticks motion_duration = 10;
  sim::Ticks ack_timeout = 0;
  /// Epoch cap (0 = the session's 20N^2+500 auto cap). Adversarial shapes
  /// can livelock the algorithm (elected moves that never converge), so the
  /// generator sets a small cap: hitting it ends the run as `blocked` at a
  /// deterministic epoch — schedule-independent, unlike the event budget.
  uint32_t max_iterations = 0;
  /// Event budget per backend run; hitting it demotes the case to
  /// engine-only comparison (limits land at window granularity, so
  /// backends stop at different logical points).
  uint64_t max_events = 2'000'000;
  std::vector<ChurnOp> churn;

  /// True when the case's knobs make the classic (shards=1) and sharded
  /// executions logically comparable: fixed latency (per-shard RNG streams
  /// draw independently, so jitter diverges by construction), an
  /// arrival-order-independent tie policy (kLowestId), and ack_timeout == 0
  /// (timeout timers race same-tick message deliveries, whose relative
  /// order is a queue-insertion artifact that legitimately differs between
  /// the global and per-shard queues). Engine-only cases still check
  /// thread-count determinism and all invariants.
  bool comparable = true;

  /// Session config implied by the knobs (shards/threads left at 1; the
  /// differential harness overrides them per backend).
  [[nodiscard]] core::SessionConfig session_config() const;

  /// One-line human description ("seed=0x.. blob 42 blocks 12x9 fixed:3").
  [[nodiscard]] std::string describe() const;

  [[nodiscard]] util::JsonValue to_json() const;
  /// Inverse of to_json. Throws std::runtime_error on malformed input.
  [[nodiscard]] static FuzzCase from_json(const util::JsonValue& json);

  /// File round-trip; throws std::runtime_error on IO or parse errors.
  void save(const std::string& path) const;
  [[nodiscard]] static FuzzCase load(const std::string& path);
};

}  // namespace sb::check
