#include "check/oracle.hpp"

#include <unordered_set>

#include "core/block_code.hpp"
#include "lattice/world_view.hpp"
#include "util/fmt.hpp"

namespace sb::check {

InvariantOracle::InvariantOracle(OracleOptions options)
    : options_(options), rng_(options.seed) {
  SB_EXPECTS(options_.check_every > 0, "check_every must be >= 1");
}

void InvariantOracle::attach(
    core::ReconfigurationSession& session,
    std::function<void(core::Epoch, lat::BlockId,
                       const motion::RuleApplication&)>
        chain) {
  SB_EXPECTS(!attached_, "oracle already attached to a session");
  attached_ = true;
  expected_blocks_ = session.simulator().world().view().block_count();
  session.simulator().set_mutation_observer(
      [this](sim::Simulator& sim) { on_mutation(sim); });
  session.set_move_listener(
      [this, chain = std::move(chain)](core::Epoch epoch, lat::BlockId mover,
                                       const motion::RuleApplication& app) {
        on_move(epoch, mover);
        if (chain) chain(epoch, mover, app);
      });
}

void InvariantOracle::on_mutation(sim::Simulator& sim) {
  ++mutations_seen_;
  if ((mutations_seen_ - 1) % options_.check_every != 0) return;
  check_now(sim);
}

void InvariantOracle::check_now(sim::Simulator& sim) {
  ++checks_run_;
  check_occupancy(sim);
  check_connectivity(sim);
  check_conservation(sim);
  check_columns(sim);
}

void InvariantOracle::on_move(core::Epoch epoch, lat::BlockId mover) {
  if (epoch < last_epoch_ && violations_.size() < options_.max_violations) {
    violations_.push_back(fmt(
        "epoch regression: move by block {} carries epoch {} after epoch {}",
        mover.value, epoch, last_epoch_));
  }
  if (epoch > last_epoch_) last_epoch_ = epoch;
}

void InvariantOracle::record(sim::Simulator& sim, std::string what) {
  if (violations_.size() >= options_.max_violations) {
    ++suppressed_;
    return;
  }
  violations_.push_back(fmt("t={}: {}", sim.now(), what));
}

void InvariantOracle::check_occupancy(sim::Simulator& sim) {
  const lat::WorldView view = sim.world().view();
  std::unordered_set<uint32_t> seen;
  std::vector<size_t> rows(static_cast<size_t>(view.height()), 0);
  std::vector<size_t> cols(static_cast<size_t>(view.width()), 0);
  size_t counted = 0;
  for (int32_t y = 0; y < view.height(); ++y) {
    for (int32_t x = 0; x < view.width(); ++x) {
      const lat::Vec2 p{x, y};
      const lat::BlockId id = view.at(p);
      if (!id.valid()) continue;
      ++counted;
      ++rows[static_cast<size_t>(y)];
      ++cols[static_cast<size_t>(x)];
      if (!seen.insert(id.value).second) {
        record(sim, fmt("block {} occupies more than one cell (second at {})",
                        id.value, p));
        continue;
      }
      if (!view.contains(id)) {
        record(sim,
               fmt("cell {} holds block {} but the id index disowns it", p,
                   id.value));
      } else if (view.position_of(id) != p) {
        record(sim, fmt("block {} indexed at {} but cell {} holds it",
                        id.value, view.position_of(id), p));
      }
    }
  }
  if (counted != view.block_count()) {
    record(sim, fmt("block_count says {} but {} cells are occupied",
                    view.block_count(), counted));
  }
  for (int32_t y = 0; y < view.height(); ++y) {
    if (view.blocks_in_row(y) != rows[static_cast<size_t>(y)]) {
      record(sim, fmt("row {} count cache says {} but {} cells are occupied",
                      y, view.blocks_in_row(y),
                      rows[static_cast<size_t>(y)]));
    }
  }
  for (int32_t x = 0; x < view.width(); ++x) {
    if (view.blocks_in_column(x) != cols[static_cast<size_t>(x)]) {
      record(sim,
             fmt("column {} count cache says {} but {} cells are occupied", x,
                 view.blocks_in_column(x), cols[static_cast<size_t>(x)]));
    }
  }
}

void InvariantOracle::check_connectivity(sim::Simulator& sim) {
  const lat::WorldView view = sim.world().view();
  const bool connected = view.connected_ground_truth();
  const lat::ConnectivityHint hint = view.connectivity_hint();
  if (!connected) {
    record(sim, fmt("surface disconnected: {} blocks no longer form one "
                    "component (Remark 1 violated)",
                    view.block_count()));
    if (hint == lat::ConnectivityHint::kConnected) {
      record(sim,
             "cached connectivity verdict says connected but the "
             "ground-truth flood says disconnected");
    }
    return;
  }
  if (hint == lat::ConnectivityHint::kUnknown) return;
  if (!rng_.next_bool(options_.hint_probe_rate)) return;
  ++hint_probes_;
  if (hint == lat::ConnectivityHint::kDisconnected) {
    record(sim,
           "cached connectivity verdict says disconnected but the "
           "ground-truth flood says connected");
  }
}

void InvariantOracle::check_conservation(sim::Simulator& sim) {
  const lat::WorldView view = sim.world().view();
  if (view.block_count() != expected_blocks_) {
    record(sim, fmt("module conservation broken: {} blocks on the surface, "
                    "expected {} (initial + hot-joins; deaths keep their "
                    "block in place)",
                    view.block_count(), expected_blocks_));
    // Resync so one lost block doesn't re-report on every later mutation.
    expected_blocks_ = view.block_count();
  }
  if (sim.module_count() > view.block_count()) {
    record(sim, fmt("{} modules registered for {} blocks",
                    sim.module_count(), view.block_count()));
  }
}

void InvariantOracle::check_columns(sim::Simulator& sim) {
  const lat::WorldView view = sim.world().view();
  // Occupancy image vs cell array: the SoA byte image is a second store of
  // the same truth, kept in lock-step by Grid's mutations.
  for (int32_t y = 0; y < view.height(); ++y) {
    const uint8_t* row = view.occupancy_row(y);
    for (int32_t x = 0; x < view.width(); ++x) {
      const bool image = row[x] != 0;
      const bool cell = view.at({x, y}).valid();
      if (image != cell) {
        record(sim, fmt("occupancy image disagrees with the cell array at "
                        "({},{}): image says {}, cells say {}",
                        x, y, image ? "occupied" : "empty",
                        cell ? "occupied" : "empty"));
      }
    }
  }
  // State tags and epochs vs the module table: registration stamps kAlive,
  // kill_module stamps kDead, nothing else writes the tag column; the epoch
  // column mirrors each program's own counter.
  sim.for_each_module([&](sim::Module& module) {
    if (view.tag(module.id()) == lat::ModuleTag::kUnregistered) {
      record(sim, fmt("block {} has a registered module but its state tag "
                      "says unregistered",
                      module.id().value));
    }
    if (const auto* code = dynamic_cast<core::SmartBlockCode*>(&module)) {
      if (view.epoch(module.id()) != code->epoch()) {
        record(sim, fmt("epoch column says {} for block {} but its program "
                        "is at epoch {}",
                        view.epoch(module.id()), module.id().value,
                        code->epoch()));
      }
    }
  });
  // Pending-move column vs the in-flight registry (bit-for-bit mirror).
  if (view.pending_move_count() != sim.inflight_motion_count()) {
    record(sim, fmt("pending-move column has {} bits set but {} motions are "
                    "in flight",
                    view.pending_move_count(), sim.inflight_motion_count()));
  }
  for (const lat::BlockId id : view.block_ids()) {
    if (view.move_pending(id) != sim.motion_inflight(id)) {
      record(sim, fmt("pending-move bit for block {} says {} but the "
                      "in-flight registry says {}",
                      id.value, view.move_pending(id),
                      sim.motion_inflight(id)));
    }
  }
}

}  // namespace sb::check
