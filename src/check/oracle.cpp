#include "check/oracle.hpp"

#include <unordered_set>

#include "lattice/connectivity.hpp"
#include "util/fmt.hpp"

namespace sb::check {

InvariantOracle::InvariantOracle(OracleOptions options)
    : options_(options), rng_(options.seed) {
  SB_EXPECTS(options_.check_every > 0, "check_every must be >= 1");
}

void InvariantOracle::attach(
    core::ReconfigurationSession& session,
    std::function<void(core::Epoch, lat::BlockId,
                       const motion::RuleApplication&)>
        chain) {
  SB_EXPECTS(!attached_, "oracle already attached to a session");
  attached_ = true;
  expected_blocks_ = session.simulator().world().grid().block_count();
  session.simulator().set_mutation_observer(
      [this](sim::Simulator& sim) { on_mutation(sim); });
  session.set_move_listener(
      [this, chain = std::move(chain)](core::Epoch epoch, lat::BlockId mover,
                                       const motion::RuleApplication& app) {
        on_move(epoch, mover);
        if (chain) chain(epoch, mover, app);
      });
}

void InvariantOracle::on_mutation(sim::Simulator& sim) {
  ++mutations_seen_;
  if ((mutations_seen_ - 1) % options_.check_every != 0) return;
  check_now(sim);
}

void InvariantOracle::check_now(sim::Simulator& sim) {
  ++checks_run_;
  check_occupancy(sim);
  check_connectivity(sim);
  check_conservation(sim);
}

void InvariantOracle::on_move(core::Epoch epoch, lat::BlockId mover) {
  if (epoch < last_epoch_ && violations_.size() < options_.max_violations) {
    violations_.push_back(fmt(
        "epoch regression: move by block {} carries epoch {} after epoch {}",
        mover.value, epoch, last_epoch_));
  }
  if (epoch > last_epoch_) last_epoch_ = epoch;
}

void InvariantOracle::record(sim::Simulator& sim, std::string what) {
  if (violations_.size() >= options_.max_violations) {
    ++suppressed_;
    return;
  }
  violations_.push_back(fmt("t={}: {}", sim.now(), what));
}

void InvariantOracle::check_occupancy(sim::Simulator& sim) {
  const lat::Grid& grid = sim.world().grid();
  std::unordered_set<uint32_t> seen;
  std::vector<size_t> rows(static_cast<size_t>(grid.height()), 0);
  std::vector<size_t> cols(static_cast<size_t>(grid.width()), 0);
  size_t counted = 0;
  for (int32_t y = 0; y < grid.height(); ++y) {
    for (int32_t x = 0; x < grid.width(); ++x) {
      const lat::Vec2 p{x, y};
      const lat::BlockId id = grid.at(p);
      if (!id.valid()) continue;
      ++counted;
      ++rows[static_cast<size_t>(y)];
      ++cols[static_cast<size_t>(x)];
      if (!seen.insert(id.value).second) {
        record(sim, fmt("block {} occupies more than one cell (second at {})",
                        id.value, p));
        continue;
      }
      if (!grid.contains(id)) {
        record(sim,
               fmt("cell {} holds block {} but the id index disowns it", p,
                   id.value));
      } else if (grid.position_of(id) != p) {
        record(sim, fmt("block {} indexed at {} but cell {} holds it",
                        id.value, grid.position_of(id), p));
      }
    }
  }
  if (counted != grid.block_count()) {
    record(sim, fmt("block_count says {} but {} cells are occupied",
                    grid.block_count(), counted));
  }
  for (int32_t y = 0; y < grid.height(); ++y) {
    if (grid.blocks_in_row(y) != rows[static_cast<size_t>(y)]) {
      record(sim, fmt("row {} count cache says {} but {} cells are occupied",
                      y, grid.blocks_in_row(y),
                      rows[static_cast<size_t>(y)]));
    }
  }
  for (int32_t x = 0; x < grid.width(); ++x) {
    if (grid.blocks_in_column(x) != cols[static_cast<size_t>(x)]) {
      record(sim,
             fmt("column {} count cache says {} but {} cells are occupied", x,
                 grid.blocks_in_column(x), cols[static_cast<size_t>(x)]));
    }
  }
}

void InvariantOracle::check_connectivity(sim::Simulator& sim) {
  const lat::Grid& grid = sim.world().grid();
  const bool connected = lat::is_connected_ground_truth(grid);
  const lat::ConnectivityHint hint = grid.own_connectivity_hint();
  if (!connected) {
    record(sim, fmt("surface disconnected: {} blocks no longer form one "
                    "component (Remark 1 violated)",
                    grid.block_count()));
    if (hint == lat::ConnectivityHint::kConnected) {
      record(sim,
             "cached connectivity verdict says connected but the "
             "ground-truth flood says disconnected");
    }
    return;
  }
  if (hint == lat::ConnectivityHint::kUnknown) return;
  if (!rng_.next_bool(options_.hint_probe_rate)) return;
  ++hint_probes_;
  if (hint == lat::ConnectivityHint::kDisconnected) {
    record(sim,
           "cached connectivity verdict says disconnected but the "
           "ground-truth flood says connected");
  }
}

void InvariantOracle::check_conservation(sim::Simulator& sim) {
  const lat::Grid& grid = sim.world().grid();
  if (grid.block_count() != expected_blocks_) {
    record(sim, fmt("module conservation broken: {} blocks on the surface, "
                    "expected {} (initial + hot-joins; deaths keep their "
                    "block in place)",
                    grid.block_count(), expected_blocks_));
    // Resync so one lost block doesn't re-report on every later mutation.
    expected_blocks_ = grid.block_count();
  }
  if (sim.module_count() > grid.block_count()) {
    record(sim, fmt("{} modules registered for {} blocks",
                    sim.module_count(), grid.block_count()));
  }
}

}  // namespace sb::check
