#include "check/generator.hpp"

#include <algorithm>

#include "util/fmt.hpp"
#include "util/rng.hpp"

namespace sb::check {

namespace {

// One scenario family per adversarial shape the fuzzer hunts with. Weights
// live in pick_family().
enum class Family : uint8_t {
  kCompactBlob,  // the benign baseline
  kTendril,      // loose growth: 1-high arms the motion rules hate
  kPocket,       // compact blob with interior cells carved back out
  kDumbbell,     // two masses joined by a 1-2 cell bridge
  kTightIo,      // I and O almost on top of each other
};

constexpr std::string_view family_name(Family family) {
  switch (family) {
    case Family::kCompactBlob: return "compact-blob";
    case Family::kTendril: return "tendril-blob";
    case Family::kPocket: return "pocket-blob";
    case Family::kDumbbell: return "dumbbell";
    case Family::kTightIo: return "tight-io";
  }
  return "?";
}

Family pick_family(Rng& rng) {
  const uint64_t roll = rng.next_below(100);
  if (roll < 25) return Family::kCompactBlob;
  if (roll < 45) return Family::kTendril;
  if (roll < 65) return Family::kPocket;
  if (roll < 85) return Family::kDumbbell;
  return Family::kTightIo;
}

/// Surface dims + I/O placement shared by the blob families. `min_dist` /
/// `max_dist` bound manhattan(I, O).
struct Frame {
  int32_t width = 0;
  int32_t height = 0;
  lat::Vec2 input;
  lat::Vec2 output;
};

Frame pick_frame(Rng& rng, int32_t min_dist, int32_t max_dist) {
  Frame frame;
  frame.width = static_cast<int32_t>(rng.next_in(8, 24));
  frame.height = static_cast<int32_t>(rng.next_in(8, 24));
  frame.input = {static_cast<int32_t>(rng.next_in(1, frame.width / 3)),
                 static_cast<int32_t>(rng.next_in(1, frame.height / 3))};
  for (int tries = 0; tries < 64; ++tries) {
    const lat::Vec2 candidate{
        static_cast<int32_t>(rng.next_in(0, frame.width - 1)),
        static_cast<int32_t>(rng.next_in(0, frame.height - 1))};
    const int32_t dist = lat::manhattan(frame.input, candidate);
    if (dist >= min_dist && dist <= max_dist) {
      frame.output = candidate;
      return frame;
    }
  }
  // Nothing in range after 64 draws; take the far corner and let the
  // validate() retry loop sort out degenerate frames.
  frame.output = {frame.width - 1, frame.height - 1};
  return frame;
}

int32_t pick_block_count(Rng& rng, const Frame& frame) {
  const int32_t path_cells = lat::manhattan(frame.input, frame.output) + 1;
  const int32_t area_cap =
      std::max(path_cells + 2, frame.width * frame.height / 3);
  const int32_t lo = std::max<int32_t>(12, path_cells);
  const int32_t hi = std::max(lo + 1, std::min<int32_t>(100, area_cap));
  return static_cast<int32_t>(rng.next_in(lo, hi));
}

lat::Scenario blob(Rng& rng, const Frame& frame, double compactness) {
  lat::BlobParams params;
  params.surface_width = frame.width;
  params.surface_height = frame.height;
  params.input = frame.input;
  params.output = frame.output;
  params.block_count = pick_block_count(rng, frame);
  params.compactness = compactness;
  return lat::random_blob_scenario(params, rng);
}

lat::Scenario compact_blob(Rng& rng) {
  return blob(rng, pick_frame(rng, 6, 28), 0.85);
}

lat::Scenario tendril_blob(Rng& rng) {
  return blob(rng, pick_frame(rng, 6, 28), rng.next_double_in(0.0, 0.4));
}

/// Compact blob, then carve interior pockets: repeatedly drop a random
/// non-root block and keep the removal only if the scenario stays valid
/// (connected, path coverable). Produces concave boundaries and holes the
/// frozen-path rule must route around.
lat::Scenario pocket_blob(Rng& rng) {
  lat::Scenario scenario = blob(rng, pick_frame(rng, 6, 24), 0.9);
  const size_t carve_attempts = scenario.blocks.size() / 3;
  for (size_t i = 0; i < carve_attempts; ++i) {
    const size_t victim = 1 + rng.pick_index(scenario.blocks) %
                                  (scenario.blocks.size() - 1);
    if (scenario.blocks[victim].second == scenario.input) continue;
    const auto removed = scenario.blocks[victim];
    scenario.blocks.erase(scenario.blocks.begin() +
                          static_cast<ptrdiff_t>(victim));
    if (!lat::validate(scenario).empty()) {
      scenario.blocks.insert(
          scenario.blocks.begin() + static_cast<ptrdiff_t>(victim), removed);
    }
  }
  scenario.name = "pocket";
  return scenario;
}

/// Two block rectangles joined by a 1-2 cell high bridge: one elected move
/// near the bridge away from a disconnection verdict, so the connectivity
/// rule and its cache carry the run.
lat::Scenario dumbbell(Rng& rng) {
  lat::Scenario scenario;
  scenario.name = "dumbbell";
  const int32_t left_w = static_cast<int32_t>(rng.next_in(3, 5));
  const int32_t left_h = static_cast<int32_t>(rng.next_in(3, 6));
  const int32_t right_w = static_cast<int32_t>(rng.next_in(3, 5));
  const int32_t right_h = static_cast<int32_t>(rng.next_in(3, 6));
  const int32_t bridge_w = static_cast<int32_t>(rng.next_in(2, 5));
  const int32_t bridge_h = static_cast<int32_t>(rng.next_in(1, 2));
  scenario.width = 1 + left_w + bridge_w + right_w + 2 +
                   static_cast<int32_t>(rng.next_in(0, 3));
  const int32_t tallest = std::max(left_h, right_h);
  const int32_t base = static_cast<int32_t>(rng.next_in(1, 3));
  scenario.height = base + tallest + 2 + static_cast<int32_t>(rng.next_in(0, 3));

  uint32_t next_id = 1;
  const auto fill = [&](int32_t x0, int32_t y0, int32_t w, int32_t h) {
    for (int32_t y = y0; y < y0 + h; ++y) {
      for (int32_t x = x0; x < x0 + w; ++x) {
        scenario.blocks.emplace_back(lat::BlockId{next_id++}, lat::Vec2{x, y});
      }
    }
  };
  const int32_t left_x = 1;
  const int32_t bridge_x = left_x + left_w;
  const int32_t right_x = bridge_x + bridge_w;
  fill(left_x, base, left_w, left_h);
  fill(bridge_x, base, bridge_w, bridge_h);
  fill(right_x, base, right_w, right_h);

  scenario.input = {left_x, base};
  // O just past the right mass: every path crosses the bridge.
  scenario.output = {right_x + right_w + 1,
                     base + static_cast<int32_t>(
                                rng.next_in(0, std::max(0, right_h - 1)))};
  return scenario;
}

/// Compact blob with O a couple of cells from I: termination fires almost
/// immediately, racing completion against in-flight elections and motions.
lat::Scenario tight_io(Rng& rng) {
  return blob(rng, pick_frame(rng, 2, 4), 0.85);
}

lat::Scenario build_scenario(Family family, Rng& rng) {
  switch (family) {
    case Family::kCompactBlob: return compact_blob(rng);
    case Family::kTendril: return tendril_blob(rng);
    case Family::kPocket: return pocket_blob(rng);
    case Family::kDumbbell: return dumbbell(rng);
    case Family::kTightIo: return tight_io(rng);
  }
  return compact_blob(rng);
}

}  // namespace

FuzzCase generate_case(uint64_t seed, const GeneratorOptions& options) {
  Rng rng(seed ^ 0xf0220f0220f0220fULL);  // salt so seed 0 still mixes

  FuzzCase fuzz_case;
  fuzz_case.seed = seed;

  Family family = pick_family(rng);
  for (int attempt = 0;; ++attempt) {
    fuzz_case.scenario = build_scenario(family, rng);
    if (lat::validate(fuzz_case.scenario).empty()) break;
    // Hostile frame didn't come together; after a few tries fall back to
    // the family random_blob_scenario guarantees valid.
    if (attempt >= 8) family = Family::kCompactBlob;
  }
  fuzz_case.scenario.name = std::string(family_name(family));
  fuzz_case.name =
      fmt("{}-{}", family_name(family), fuzz_case.scenario.block_count());

  // Churn first: a kill forces the ack-timeout recovery machinery on, and
  // timeout-vs-delivery ordering at equal ticks is schedule-dependent (see
  // FuzzCase::comparable) — so kill cases are engine-only by construction.
  bool any_kill = false;
  if (rng.next_bool(options.churn_rate)) {
    const size_t ops = 1 + rng.next_below(3);
    for (size_t i = 0; i < ops; ++i) {
      ChurnOp op;
      op.kind = rng.next_bool(0.6) ? ChurnOp::Kind::kKill
                                   : ChurnOp::Kind::kJoin;
      if (options.always_comparable) op.kind = ChurnOp::Kind::kJoin;
      any_kill = any_kill || op.kind == ChurnOp::Kind::kKill;
      op.at = static_cast<sim::SimTime>(rng.next_in(80, 1200));
      op.ordinal = rng.next();
      fuzz_case.churn.push_back(op);
    }
    std::sort(fuzz_case.churn.begin(), fuzz_case.churn.end(),
              [](const ChurnOp& a, const ChurnOp& b) { return a.at < b.at; });
    if (any_kill) {
      // Dead blocks stall elections forever without the ack-timeout
      // recovery extension; arm it so kill cases still make progress.
      fuzz_case.ack_timeout = static_cast<sim::Ticks>(rng.next_in(300, 1000));
    }
  }

  fuzz_case.comparable =
      options.always_comparable || (!any_kill && rng.next_bool(0.7));
  if (fuzz_case.comparable) {
    fuzz_case.latency_kind = "fixed";
    fuzz_case.latency_lo = static_cast<sim::Ticks>(rng.next_in(1, 8));
    fuzz_case.latency_hi = fuzz_case.latency_lo;
    fuzz_case.election_tie = core::ElectionTie::kLowestId;
  } else if (rng.next_bool(0.5)) {
    fuzz_case.latency_kind = "uniform";
    fuzz_case.latency_lo = static_cast<sim::Ticks>(rng.next_in(1, 4));
    fuzz_case.latency_hi =
        fuzz_case.latency_lo + static_cast<sim::Ticks>(rng.next_in(1, 8));
    const core::ElectionTie ties[] = {core::ElectionTie::kFirst,
                                      core::ElectionTie::kLowestId,
                                      core::ElectionTie::kRandom};
    fuzz_case.election_tie = ties[rng.next_below(3)];
  } else {
    fuzz_case.latency_kind = "fixed";
    fuzz_case.latency_lo = static_cast<sim::Ticks>(rng.next_in(1, 8));
    fuzz_case.latency_hi = fuzz_case.latency_lo;
    fuzz_case.election_tie = rng.next_bool(0.5) ? core::ElectionTie::kFirst
                                                : core::ElectionTie::kRandom;
  }
  fuzz_case.motion_duration = static_cast<sim::Ticks>(rng.next_in(5, 15));
  // Small epoch cap: adversarial shapes can livelock (see
  // FuzzCase::max_iterations); a few hundred epochs is plenty of algorithm
  // behaviour per case and keeps every backend run bounded.
  fuzz_case.max_iterations = static_cast<uint32_t>(rng.next_in(150, 500));
  return fuzz_case;
}

}  // namespace sb::check
