#include "check/minimize.hpp"

#include <algorithm>

namespace sb::check {

namespace {

class Minimizer {
 public:
  Minimizer(FuzzCase seed, const std::function<bool(const FuzzCase&)>& fails,
            const MinimizeOptions& options)
      : current_(std::move(seed)), fails_(fails), options_(options) {}

  MinimizeResult run() {
    MinimizeResult result;
    result.blocks_before = current_.scenario.block_count();
    bool progress = true;
    while (progress && !exhausted()) {
      progress = false;
      progress |= prune_churn();
      progress |= ddmin_blocks();
      progress |= trim_surface();
      progress |= simplify_knobs();
    }
    result.minimized = std::move(current_);
    result.evals = evals_;
    result.blocks_after = result.minimized.scenario.block_count();
    return result;
  }

 private:
  [[nodiscard]] bool exhausted() const { return evals_ >= options_.max_evals; }

  /// True (and commits) when the candidate is valid and still failing.
  bool accept(const FuzzCase& candidate) {
    if (exhausted()) return false;
    if (!lat::validate(candidate.scenario).empty()) return false;
    ++evals_;
    if (!fails_(candidate)) return false;
    current_ = candidate;
    return true;
  }

  bool prune_churn() {
    bool progress = false;
    if (!current_.churn.empty()) {
      FuzzCase candidate = current_;
      candidate.churn.clear();
      progress |= accept(candidate);
    }
    for (size_t i = 0; i < current_.churn.size() && !exhausted();) {
      FuzzCase candidate = current_;
      candidate.churn.erase(candidate.churn.begin() +
                            static_cast<ptrdiff_t>(i));
      if (accept(candidate)) {
        progress = true;  // current_ shrank; same index is the next op
      } else {
        ++i;
      }
    }
    return progress;
  }

  /// Classic ddmin over the block list: try removing chunks, halving the
  /// chunk size until single blocks. The root (block on I) is never removed
  /// — validate() would reject the candidate anyway; skipping it saves the
  /// wasted evaluations.
  bool ddmin_blocks() {
    bool progress = false;
    size_t chunk = std::max<size_t>(1, current_.scenario.block_count() / 2);
    while (chunk >= 1 && !exhausted()) {
      bool removed_any = false;
      for (size_t start = 0;
           start < current_.scenario.block_count() && !exhausted();) {
        FuzzCase candidate = current_;
        auto& blocks = candidate.scenario.blocks;
        const size_t end = std::min(start + chunk, blocks.size());
        const lat::Vec2 input = candidate.scenario.input;
        std::vector<std::pair<lat::BlockId, lat::Vec2>> kept;
        kept.reserve(blocks.size());
        for (size_t i = 0; i < blocks.size(); ++i) {
          const bool in_chunk = i >= start && i < end;
          if (in_chunk && blocks[i].second != input) continue;
          kept.push_back(blocks[i]);
        }
        blocks = std::move(kept);
        if (blocks.size() < current_.scenario.blocks.size() &&
            accept(candidate)) {
          progress = true;
          removed_any = true;  // retry same start against the shrunk list
        } else {
          start += chunk;
        }
      }
      if (!removed_any || chunk == 1) {
        if (chunk == 1) break;
        chunk = std::max<size_t>(1, chunk / 2);
      }
    }
    return progress;
  }

  /// Shrinks the surface to the bounding box of blocks + I + O with a
  /// 1-cell margin, shifting every coordinate accordingly.
  bool trim_surface() {
    const lat::Scenario& s = current_.scenario;
    int32_t min_x = std::min(s.input.x, s.output.x);
    int32_t max_x = std::max(s.input.x, s.output.x);
    int32_t min_y = std::min(s.input.y, s.output.y);
    int32_t max_y = std::max(s.input.y, s.output.y);
    for (const auto& [id, pos] : s.blocks) {
      min_x = std::min(min_x, pos.x);
      max_x = std::max(max_x, pos.x);
      min_y = std::min(min_y, pos.y);
      max_y = std::max(max_y, pos.y);
    }
    const int32_t shift_x = std::max(0, min_x - 1);
    const int32_t shift_y = std::max(0, min_y - 1);
    const int32_t new_w = max_x - shift_x + 2;
    const int32_t new_h = max_y - shift_y + 2;
    if (shift_x == 0 && shift_y == 0 && new_w >= s.width && new_h >= s.height) {
      return false;  // nothing to trim
    }
    FuzzCase candidate = current_;
    candidate.scenario.width = std::min(s.width, new_w);
    candidate.scenario.height = std::min(s.height, new_h);
    const auto shift = [&](lat::Vec2 p) {
      return lat::Vec2{p.x - shift_x, p.y - shift_y};
    };
    candidate.scenario.input = shift(s.input);
    candidate.scenario.output = shift(s.output);
    for (auto& [id, pos] : candidate.scenario.blocks) pos = shift(pos);
    return accept(candidate);
  }

  bool simplify_knobs() {
    bool progress = false;
    const bool any_kill =
        std::any_of(current_.churn.begin(), current_.churn.end(),
                    [](const ChurnOp& op) {
                      return op.kind == ChurnOp::Kind::kKill;
                    });
    if (current_.ack_timeout != 0 && !any_kill) {
      FuzzCase candidate = current_;
      candidate.ack_timeout = 0;
      progress |= accept(candidate);
    }
    if (current_.latency_kind != "fixed" || current_.latency_lo != 1) {
      FuzzCase candidate = current_;
      candidate.latency_kind = "fixed";
      candidate.latency_lo = 1;
      candidate.latency_hi = 1;
      progress |= accept(candidate);
    }
    if (current_.motion_duration != 10) {
      FuzzCase candidate = current_;
      candidate.motion_duration = 10;
      progress |= accept(candidate);
    }
    return progress;
  }

  FuzzCase current_;
  const std::function<bool(const FuzzCase&)>& fails_;
  MinimizeOptions options_;
  uint64_t evals_ = 0;
};

}  // namespace

MinimizeResult minimize_case(
    const FuzzCase& failing,
    const std::function<bool(const FuzzCase&)>& still_fails,
    const MinimizeOptions& options) {
  FuzzCase seed = failing;
  seed.name = failing.name + "-min";
  return Minimizer(std::move(seed), still_fails, options).run();
}

}  // namespace sb::check
