#include "check/differential.hpp"

#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <thread>

#include "dist/coordinator.hpp"
#include "dist/spawn.hpp"
#include "dist/worker.hpp"
#include "lattice/world_view.hpp"
#include "runner/cli_options.hpp"
#include "runner/sweep.hpp"
#include "sim/event.hpp"
#include "util/fmt.hpp"

namespace sb::check {

namespace {

/// Shared by the churn events of one backend run (owned by run_backend's
/// stack frame, which outlives the simulator run).
struct ChurnState {
  core::ReconfigurationSession* session = nullptr;
  InvariantOracle* oracle = nullptr;
  /// Next id handed to a hot-joined block (starts past the scenario's max).
  uint32_t next_id = 0;
};

/// External event executing one ChurnOp. Victims and join sites are
/// resolved from the live grid at fire time (see ChurnOp::ordinal), so the
/// same plan stays meaningful while the minimizer shrinks the scenario.
class ChurnEvent : public sim::Event {
 public:
  ChurnEvent(sim::SimTime time, ChurnOp op, ChurnState* state)
      : sim::Event(time), op_(op), state_(state) {}

  [[nodiscard]] std::string_view kind() const override { return "Churn"; }

  void execute(sim::Simulator& sim) override {
    if (op_.kind == ChurnOp::Kind::kKill) {
      execute_kill(sim);
    } else {
      execute_join(sim);
    }
  }

 private:
  void execute_kill(sim::Simulator& sim) {
    const lat::BlockId root = state_->session->scenario().root_id();
    std::vector<lat::BlockId> candidates;
    sim.for_each_module([&](sim::Module& module) {
      if (module.alive() && module.id() != root) {
        candidates.push_back(module.id());
      }
    });
    if (candidates.empty()) return;  // everyone already dead; no-op
    sim.kill_module(candidates[op_.ordinal % candidates.size()]);
  }

  void execute_join(sim::Simulator& sim) {
    const lat::WorldView view = sim.world().view();
    const lat::Vec2 output = state_->session->scenario().output;
    const size_t cells = view.cell_count();
    const size_t offset = op_.ordinal % cells;
    for (size_t i = 0; i < cells; ++i) {
      const size_t index = (offset + i) % cells;
      const lat::Vec2 pos{
          static_cast<int32_t>(index % static_cast<size_t>(view.width())),
          static_cast<int32_t>(index / static_cast<size_t>(view.width()))};
      if (view.occupied(pos) || pos == output) continue;
      if (view.occupied_neighbor_count(pos) == 0) continue;
      // A cell an in-flight motion sweeps is not really free: the mover
      // lands there before this join's effects settle. Docking into it
      // would make the landing physically impossible.
      if (sim.cell_in_motion(pos)) continue;
      state_->session->hot_join(lat::BlockId{state_->next_id++}, pos);
      if (state_->oracle != nullptr) state_->oracle->expect_join();
      return;
    }
    // No attachable free cell (surface packed solid): drop the op.
  }

  ChurnOp op_;
  ChurnState* state_;
};

std::string dump_final_blocks(lat::WorldView view) {
  std::ostringstream os;
  for (const auto& [id, pos] : view.blocks()) {
    os << id.value << '@' << pos.x << ',' << pos.y << '\n';
  }
  return os.str();
}

/// First index at which two string vectors differ; SIZE_MAX when equal.
size_t first_difference(const std::vector<std::string>& a,
                        const std::vector<std::string>& b) {
  const size_t common = std::min(a.size(), b.size());
  for (size_t i = 0; i < common; ++i) {
    if (a[i] != b[i]) return i;
  }
  return a.size() == b.size() ? SIZE_MAX : common;
}

void diff_traces(const std::string& label, const std::vector<std::string>& a,
                 const std::string& a_name,
                 const std::vector<std::string>& b,
                 const std::string& b_name,
                 std::vector<std::string>& divergences) {
  const size_t at = first_difference(a, b);
  if (at == SIZE_MAX) return;
  const auto line_of = [at](const std::vector<std::string>& trace) {
    return at < trace.size() ? trace[at]
                             : fmt("<ended at {} lines>", trace.size());
  };
  divergences.push_back(fmt("{} diverges at line {}:\n  {}: {}\n  {}: {}",
                            label, at, a_name, line_of(a), b_name,
                            line_of(b)));
}

/// Outcome fields that must agree across *engines* (schedule-independent
/// under comparable knobs). Message and planner-memo counters are
/// deliberately absent: they depend on the shard layout by construction.
std::string outcome_digest(const core::SessionResult& result) {
  return fmt(
      "complete={} blocked={} stop={} iterations={} hops={} "
      "repositioning={} elementary_moves={} premature={}",
      result.complete, result.blocked, to_string(result.stop_reason),
      result.iterations, result.hops, result.repositioning_hops,
      result.elementary_moves, result.premature_completion);
}

/// Full-result digest for same-engine comparisons (B vs C), where every
/// counter — messages included — must be identical.
std::string full_digest(const core::SessionResult& result) {
  return fmt("{} messages_sent={} messages_delivered={} messages_dropped={} "
             "distance_computations={} elections={} sim_ticks={} events={}",
             outcome_digest(result), result.messages_sent,
             result.messages_delivered, result.messages_dropped,
             result.distance_computations, result.elections_completed,
             result.sim_ticks, result.events_processed);
}

}  // namespace

// -- distributed backend comparison -----------------------------------------

std::string compare_dist_backend(const FuzzCase& fuzz_case,
                                 const DiffOptions& options) {
  namespace fs = std::filesystem;
  const fs::path path =
      fs::temp_directory_path() /
      fmt("sb-fuzz-dist-{}-{}.surf", ::getpid(), util::hex_u64(fuzz_case.seed));
  {
    std::ofstream out(path);
    if (!out) return fmt("dist: cannot write scratch scenario '{}'",
                         path.string());
    out << lat::serialize_scenario(fuzz_case.scenario);
  }

  runner::SweepCliOptions grid;
  grid.scenarios = {path.string()};
  grid.seed_count = 1;
  grid.master_seed = fuzz_case.seed;
  grid.latency = fuzz_case.latency_kind == "uniform" ? "uniform" : "fixed";
  grid.threads = 1;

  std::string divergence;
  try {
    runner::SweepRunner::Options ropts;
    ropts.threads = 1;
    ropts.master_seed = grid.master_seed;
    runner::BenchReport local = runner::SweepRunner(ropts)
                                    .run(runner::expand(
                                        runner::make_sweep_grid(grid)))
                                    .report;
    local.scrub_timing();

    dist::Coordinator::Options copts;
    copts.total_timeout_ms = options.dist_total_timeout_ms;
    dist::Coordinator coordinator(grid, copts);
    const size_t fleet_size = std::max<size_t>(1, options.dist_workers);
    std::vector<dist::WorkerProcess> fleet;
    std::vector<std::thread> threads;
    std::vector<int> codes(fleet_size, -1);
    if (!options.dist_worker_binary.empty()) {
      fleet = dist::spawn_worker_fleet(options.dist_worker_binary,
                                       "127.0.0.1", coordinator.port(),
                                       fleet_size);
    } else {
      dist::Worker::Options wopts;
      wopts.port = coordinator.port();
      wopts.heartbeat_ms = 50;
      for (size_t i = 0; i < fleet_size; ++i) {
        threads.emplace_back(
            [&, i] { codes[i] = dist::Worker(wopts).run(); });
      }
    }
    const std::vector<runner::RunRow> rows = coordinator.run();
    for (std::thread& thread : threads) thread.join();
    for (size_t i = 0; i < fleet.size(); ++i) {
      codes[i] = dist::reap_worker(fleet[i]);
    }

    runner::BenchReport merged = runner::assemble_report(ropts, rows);
    merged.scrub_timing();
    const auto bad = std::find_if(codes.begin(), codes.end(),
                                  [](int code) { return code != 0; });
    if (bad != codes.end()) {
      divergence = fmt("dist: worker {} exited {}", bad - codes.begin(), *bad);
    } else if (merged.to_json_text() != local.to_json_text()) {
      divergence = fmt(
          "dist: merged report differs from local sweep\n  local: {}\n  "
          "dist:  {}",
          local.to_json_text(), merged.to_json_text());
    }
  } catch (const std::exception& error) {
    divergence = fmt("dist: {}", error.what());
  }
  std::error_code ignored;
  fs::remove(path, ignored);
  return divergence;
}

BackendRun run_backend(const FuzzCase& fuzz_case, std::string name,
                       size_t shards, size_t threads,
                       const OracleOptions& oracle_options) {
  core::SessionConfig config = fuzz_case.session_config();
  config.sim.seed = fuzz_case.seed;
  config.sim.shards = shards;
  config.sim.shard_threads = threads;

  BackendRun run;
  run.name = std::move(name);

  core::ReconfigurationSession session(fuzz_case.scenario, config);
  session.simulator().enable_event_trace();

  InvariantOracle oracle(oracle_options);
  oracle.attach(session,
                [&run](core::Epoch epoch, lat::BlockId mover,
                       const motion::RuleApplication& app) {
                  run.move_trace.push_back(
                      fmt("{} {} {}", epoch, mover, app.describe()));
                });

  uint32_t max_id = 0;
  for (const auto& [id, pos] : fuzz_case.scenario.blocks) {
    max_id = std::max(max_id, id.value);
  }
  ChurnState churn_state{&session, &oracle, max_id + 1};
  for (const ChurnOp& op : fuzz_case.churn) {
    session.simulator().schedule(
        op.at, std::make_unique<ChurnEvent>(op.at, op, &churn_state));
  }

  run.result = session.run();
  run.event_trace = session.simulator().event_trace();
  run.final_blocks = dump_final_blocks(session.simulator().world().view());
  oracle.check_now(session.simulator());
  run.violations = oracle.violations();
  run.oracle_checks = oracle.checks_run();
  return run;
}

DiffOutcome run_case(const FuzzCase& fuzz_case, const DiffOptions& options) {
  DiffOutcome outcome;
  outcome.case_description = fuzz_case.describe();

  // SB_DIFF_THREADS_OVERRIDE widens backend C's shard-thread count without
  // touching every call site — CI reruns the suites at 4 threads to sweep
  // the channel engine's rendezvous under real contention. Determinism
  // makes the override safe: traces must not depend on the thread count,
  // which is exactly what the comparison below enforces.
  size_t alt_threads = options.alt_threads;
  if (const char* env = std::getenv("SB_DIFF_THREADS_OVERRIDE");
      env != nullptr && std::atoi(env) > 0) {
    alt_threads = static_cast<size_t>(std::atoi(env));
  }

  outcome.runs.push_back(
      run_backend(fuzz_case, "classic[shards=1]", 1, 1, options.oracle));
  outcome.runs.push_back(
      run_backend(fuzz_case, fmt("sharded[shards={},threads=1]",
                                 options.alt_shards),
                  options.alt_shards, 1, options.oracle));
  outcome.runs.push_back(
      run_backend(fuzz_case, fmt("sharded[shards={},threads={}]",
                                 options.alt_shards, alt_threads),
                  options.alt_shards, alt_threads, options.oracle));
  const BackendRun& classic = outcome.runs[0];
  const BackendRun& sharded = outcome.runs[1];
  const BackendRun& sharded_mt = outcome.runs[2];

  // B vs C: thread count must be invisible — byte-identical everything.
  if (sharded.event_trace.size() != sharded_mt.event_trace.size()) {
    outcome.divergences.push_back(
        fmt("thread-count: {} trace streams vs {}",
            sharded.event_trace.size(), sharded_mt.event_trace.size()));
  } else {
    for (size_t s = 0; s < sharded.event_trace.size(); ++s) {
      diff_traces(fmt("thread-count: event trace stream {}", s),
                  sharded.event_trace[s], sharded.name,
                  sharded_mt.event_trace[s], sharded_mt.name,
                  outcome.divergences);
    }
  }
  diff_traces("thread-count: move trace", sharded.move_trace, sharded.name,
              sharded_mt.move_trace, sharded_mt.name, outcome.divergences);
  if (full_digest(sharded.result) != full_digest(sharded_mt.result)) {
    outcome.divergences.push_back(
        fmt("thread-count: results differ\n  {}: {}\n  {}: {}", sharded.name,
            full_digest(sharded.result), sharded_mt.name,
            full_digest(sharded_mt.result)));
  }

  // A vs B: engines, on comparable cases that stayed inside the budget.
  const bool budget_hit =
      std::any_of(outcome.runs.begin(), outcome.runs.end(),
                  [](const BackendRun& run) {
                    return run.result.stop_reason ==
                           sim::StopReason::kEventLimit;
                  });
  if (!fuzz_case.comparable) {
    outcome.notes.push_back(
        "engine comparison skipped: schedule-dependent knobs (see "
        "FuzzCase::comparable)");
  } else if (budget_hit) {
    outcome.notes.push_back(
        "engine comparison skipped: event budget hit (budgets land at "
        "window granularity in sharded mode)");
  } else {
    diff_traces("engine: move trace", classic.move_trace, classic.name,
                sharded.move_trace, sharded.name, outcome.divergences);
    if (outcome_digest(classic.result) != outcome_digest(sharded.result)) {
      outcome.divergences.push_back(
          fmt("engine: outcomes differ\n  {}: {}\n  {}: {}", classic.name,
              outcome_digest(classic.result), sharded.name,
              outcome_digest(sharded.result)));
    }
    if (classic.final_blocks != sharded.final_blocks) {
      outcome.divergences.push_back(
          fmt("engine: final occupancy differs\n  {}:\n{}  {}:\n{}",
              classic.name, classic.final_blocks, sharded.name,
              sharded.final_blocks));
    }
  }

  if (options.run_dist && fuzz_case.churn.empty()) {
    const std::string divergence = compare_dist_backend(fuzz_case, options);
    if (!divergence.empty()) outcome.divergences.push_back(divergence);
  } else if (options.run_dist) {
    outcome.notes.push_back(
        "dist comparison skipped: sweep grids cannot express churn");
  }

  return outcome;
}

bool DiffOutcome::ok() const {
  if (!divergences.empty()) return false;
  return std::all_of(runs.begin(), runs.end(), [](const BackendRun& run) {
    return run.violations.empty();
  });
}

std::string DiffOutcome::report() const {
  std::ostringstream os;
  os << "case: " << case_description << '\n';
  os << "verdict: " << (ok() ? "OK" : "FAIL") << '\n';
  for (const BackendRun& run : runs) {
    os << fmt("  {}: {} moves={} events={} checks={}",
              run.name,
              run.result.complete   ? "complete"
              : run.result.blocked  ? "blocked"
                                    : "inconclusive",
              run.move_trace.size(), run.result.events_processed,
              run.oracle_checks)
       << '\n';
  }
  for (const std::string& note : notes) os << "note: " << note << '\n';
  for (const std::string& divergence : divergences) {
    os << "divergence: " << divergence << '\n';
  }
  for (const BackendRun& run : runs) {
    for (const std::string& violation : run.violations) {
      os << fmt("invariant [{}]: {}", run.name, violation) << '\n';
    }
  }
  return os.str();
}

}  // namespace sb::check
