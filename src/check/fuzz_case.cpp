#include "check/fuzz_case.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/fmt.hpp"

namespace sb::check {

namespace {

constexpr const char* kFormatTag = "sb-fuzz-case-v1";

core::ElectionTie tie_from_label(const std::string& label) {
  if (label == "first") return core::ElectionTie::kFirst;
  if (label == "lowest-id") return core::ElectionTie::kLowestId;
  if (label == "random") return core::ElectionTie::kRandom;
  throw std::runtime_error(fmt("unknown election_tie '{}'", label));
}

std::string_view tie_label(core::ElectionTie tie) {
  switch (tie) {
    case core::ElectionTie::kFirst: return "first";
    case core::ElectionTie::kLowestId: return "lowest-id";
    case core::ElectionTie::kRandom: return "random";
  }
  return "?";
}

const util::JsonValue& require(const util::JsonValue& json,
                               std::string_view key) {
  const util::JsonValue* value = json.find(key);
  if (value == nullptr) {
    throw std::runtime_error(fmt("fuzz case missing field '{}'", key));
  }
  return *value;
}

}  // namespace

std::string_view to_string(ChurnOp::Kind kind) {
  return kind == ChurnOp::Kind::kKill ? "kill" : "join";
}

core::SessionConfig FuzzCase::session_config() const {
  core::SessionConfig config;
  if (latency_kind == "fixed") {
    config.sim.latency = msg::LatencyModel::fixed(latency_lo);
  } else if (latency_kind == "uniform") {
    config.sim.latency = msg::LatencyModel::uniform(latency_lo, latency_hi);
  } else {
    throw std::runtime_error(fmt("unknown latency kind '{}'", latency_kind));
  }
  config.sim.motion_duration = motion_duration;
  config.election_tie = election_tie;
  config.ack_timeout = ack_timeout;
  config.max_iterations = max_iterations;
  config.max_events = max_events;
  return config;
}

std::string FuzzCase::describe() const {
  std::ostringstream os;
  os << name << " seed=" << util::hex_u64(seed) << " blocks="
     << scenario.block_count() << " surface=" << scenario.width << "x"
     << scenario.height << " latency=" << latency_kind << ":" << latency_lo;
  if (latency_kind != "fixed") os << ".." << latency_hi;
  os << " tie=" << tie_label(election_tie);
  if (ack_timeout != 0) os << " ack_timeout=" << ack_timeout;
  if (!churn.empty()) os << " churn=" << churn.size();
  os << (comparable ? " [full-diff]" : " [engine-only]");
  return os.str();
}

util::JsonValue FuzzCase::to_json() const {
  util::JsonValue json = util::JsonValue::object();
  json["format"] = kFormatTag;
  json["seed"] = util::hex_u64(seed);
  json["name"] = name;
  json["scenario"] = lat::serialize_scenario(scenario);
  util::JsonValue latency = util::JsonValue::object();
  latency["kind"] = latency_kind;
  latency["lo"] = latency_lo;
  latency["hi"] = latency_hi;
  json["latency"] = std::move(latency);
  json["election_tie"] = std::string(tie_label(election_tie));
  json["motion_duration"] = motion_duration;
  json["ack_timeout"] = ack_timeout;
  json["max_iterations"] = max_iterations;
  json["max_events"] = util::hex_u64(max_events);
  json["comparable"] = comparable;
  util::JsonValue ops = util::JsonValue::array();
  for (const ChurnOp& op : churn) {
    util::JsonValue entry = util::JsonValue::object();
    entry["at"] = op.at;
    entry["op"] = std::string(to_string(op.kind));
    entry["ordinal"] = util::hex_u64(op.ordinal);
    ops.push_back(std::move(entry));
  }
  json["churn"] = std::move(ops);
  return json;
}

FuzzCase FuzzCase::from_json(const util::JsonValue& json) {
  const std::string& format = require(json, "format").as_string();
  if (format != kFormatTag) {
    throw std::runtime_error(fmt("unsupported fuzz case format '{}'", format));
  }
  FuzzCase fuzz_case;
  fuzz_case.seed = util::parse_u64(require(json, "seed").as_string());
  fuzz_case.name = require(json, "name").as_string();
  fuzz_case.scenario =
      lat::parse_scenario(require(json, "scenario").as_string());
  const util::JsonValue& latency = require(json, "latency");
  fuzz_case.latency_kind = require(latency, "kind").as_string();
  fuzz_case.latency_lo =
      static_cast<sim::Ticks>(require(latency, "lo").as_number());
  fuzz_case.latency_hi =
      static_cast<sim::Ticks>(require(latency, "hi").as_number());
  fuzz_case.election_tie =
      tie_from_label(require(json, "election_tie").as_string());
  fuzz_case.motion_duration =
      static_cast<sim::Ticks>(require(json, "motion_duration").as_number());
  fuzz_case.ack_timeout =
      static_cast<sim::Ticks>(require(json, "ack_timeout").as_number());
  fuzz_case.max_iterations =
      static_cast<uint32_t>(require(json, "max_iterations").as_number());
  fuzz_case.max_events = util::parse_u64(require(json, "max_events").as_string());
  fuzz_case.comparable = require(json, "comparable").as_bool();
  for (const util::JsonValue& entry : require(json, "churn").as_array()) {
    ChurnOp op;
    op.at = static_cast<sim::SimTime>(require(entry, "at").as_number());
    const std::string& kind = require(entry, "op").as_string();
    if (kind == "kill") {
      op.kind = ChurnOp::Kind::kKill;
    } else if (kind == "join") {
      op.kind = ChurnOp::Kind::kJoin;
    } else {
      throw std::runtime_error(fmt("unknown churn op '{}'", kind));
    }
    op.ordinal = util::parse_u64(require(entry, "ordinal").as_string());
    fuzz_case.churn.push_back(op);
  }
  return fuzz_case;
}

void FuzzCase::save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error(fmt("cannot write '{}'", path));
  out << to_json().dump(2);
  if (!out.flush()) throw std::runtime_error(fmt("write to '{}' failed", path));
}

FuzzCase FuzzCase::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error(fmt("cannot read '{}'", path));
  std::ostringstream text;
  text << in.rdbuf();
  try {
    return from_json(util::parse_json(text.str()));
  } catch (const std::exception& error) {
    throw std::runtime_error(fmt("{}: {}", path, error.what()));
  }
}

}  // namespace sb::check
