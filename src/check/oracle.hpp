#pragma once
// InvariantOracle: audits a running session after every grid mutation.
//
// The oracle attaches to a ReconfigurationSession through the simulator's
// mutation observer (fired after each motion completion and external event,
// always from the sequential context — see Simulator::set_mutation_observer)
// and the session's move listener. On every hook it checks the global
// invariants that must hold at any quiescent point of the paper's algorithm
// regardless of engine, schedule, latency, or churn:
//
//   occupancy    the cell array, the id->position index, the per-row/column
//                counts, and block_count agree (no duplicate occupancy, no
//                phantom blocks);
//   connectivity the blocks form one 4-connected component — Remark 1, via
//                the hint-free ground-truth flood
//                (lat::is_connected_ground_truth);
//   cache        when the grid's cached connectivity verdict is populated
//                it agrees with the ground truth (sampled, so the audit
//                stays cheap on big worlds);
//   conservation blocks are never created or destroyed behind the session's
//                back: grid.block_count() only grows through hot_join, and
//                every block has a registered module (deaths keep the block
//                on the surface as an inert obstacle);
//   columns      the SoA columns (lat::WorldState) agree with their sources
//                of truth: the occupancy image with the cell array, the
//                state-tag column with module registration, the pending-move
//                column with the simulator's in-flight registry, and the
//                epoch column with each block program's own epoch;
//   epochs       the elected-move epoch sequence is non-decreasing.
//
// Violations are collected as human-readable strings (capped) rather than
// aborting, so the differential harness can report them alongside trace
// divergences and the minimizer can shrink the triggering case.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/reconfig.hpp"
#include "util/rng.hpp"

namespace sb::check {

struct OracleOptions {
  /// Check every Nth mutation (1 = all). The occupancy scan and ground-truth
  /// flood are O(cells); fuzz-sized worlds afford every mutation.
  uint64_t check_every = 1;
  /// Probability that a populated connectivity-hint is cross-checked
  /// against a fresh ground-truth flood on a checked mutation.
  double hint_probe_rate = 0.25;
  /// Seed for the oracle's own sampling stream (never touches sim RNG).
  uint64_t seed = 0x0bac1eULL;
  /// Stop recording after this many violations (the first is the story).
  size_t max_violations = 32;
};

class InvariantOracle {
 public:
  explicit InvariantOracle(OracleOptions options = OracleOptions{});

  /// Hooks the oracle into the session: installs the simulator mutation
  /// observer and the session move listener. `chain` (optional) is invoked
  /// after the oracle on every elected move, so callers can keep their own
  /// move-trace recording.
  void attach(core::ReconfigurationSession& session,
              std::function<void(core::Epoch, lat::BlockId,
                                 const motion::RuleApplication&)>
                  chain = {});

  /// One full audit of the current world state; usable standalone (e.g. on
  /// a freshly staged scenario or after run() returns).
  void check_now(sim::Simulator& sim);

  /// Grows the conservation baseline by one (called by the churn executor
  /// when a hot_join lands).
  void expect_join() { ++expected_blocks_; }

  [[nodiscard]] const std::vector<std::string>& violations() const {
    return violations_;
  }
  [[nodiscard]] bool clean() const { return violations_.empty(); }
  [[nodiscard]] uint64_t checks_run() const { return checks_run_; }
  [[nodiscard]] uint64_t hint_probes() const { return hint_probes_; }

 private:
  void on_mutation(sim::Simulator& sim);
  void on_move(core::Epoch epoch, lat::BlockId mover);
  void record(sim::Simulator& sim, std::string what);

  void check_occupancy(sim::Simulator& sim);
  void check_connectivity(sim::Simulator& sim);
  void check_conservation(sim::Simulator& sim);
  void check_columns(sim::Simulator& sim);

  OracleOptions options_;
  Rng rng_;
  bool attached_ = false;
  size_t expected_blocks_ = 0;
  uint64_t mutations_seen_ = 0;
  uint64_t checks_run_ = 0;
  uint64_t hint_probes_ = 0;
  core::Epoch last_epoch_ = 0;
  std::vector<std::string> violations_;
  size_t suppressed_ = 0;
};

}  // namespace sb::check
