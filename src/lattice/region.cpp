#include "lattice/region.hpp"

#include <algorithm>
#include <unordered_map>

#include "util/assert.hpp"

namespace sb::lat {

std::vector<Direction> oriented_directions(Vec2 input, Vec2 output) {
  std::vector<Direction> out;
  if (output.x < input.x) out.push_back(Direction::kWest);
  if (output.x > input.x) out.push_back(Direction::kEast);
  if (output.y < input.y) out.push_back(Direction::kSouth);
  if (output.y > input.y) out.push_back(Direction::kNorth);
  return out;
}

std::vector<std::pair<Vec2, Vec2>> oriented_graph_links(Vec2 input,
                                                        Vec2 output) {
  const Rect rect = bounding_rect(input, output);
  const std::vector<Direction> dirs = oriented_directions(input, output);
  std::vector<std::pair<Vec2, Vec2>> links;
  for (int32_t y = rect.lo.y; y <= rect.hi.y; ++y) {
    for (int32_t x = rect.lo.x; x <= rect.hi.x; ++x) {
      const Vec2 from{x, y};
      for (Direction d : dirs) {
        const Vec2 to = from + delta(d);
        if (rect.contains(to)) links.emplace_back(from, to);
      }
    }
  }
  return links;
}

std::optional<std::vector<Vec2>> occupied_shortest_path(const Grid& grid,
                                                        Vec2 input,
                                                        Vec2 output) {
  SB_EXPECTS(grid.in_bounds(input) && grid.in_bounds(output),
             "I/O must be on the surface");
  if (!grid.occupied(input) || !grid.occupied(output)) return std::nullopt;
  if (input == output) return std::vector<Vec2>{input};
  const std::vector<Direction> dirs = oriented_directions(input, output);
  // BFS over occupied cells following only oriented links; every reached
  // cell is at exactly its Manhattan distance from I, so reaching O proves a
  // shortest path of occupied cells exists.
  std::unordered_map<Vec2, Vec2, Vec2Hash> parent;
  std::vector<Vec2> frontier{input};
  parent[input] = input;
  while (!frontier.empty()) {
    std::vector<Vec2> next;
    for (Vec2 p : frontier) {
      for (Direction d : dirs) {
        const Vec2 q = p + delta(d);
        if (!grid.occupied(q) || parent.count(q)) continue;
        parent[q] = p;
        if (q == output) {
          std::vector<Vec2> path;
          for (Vec2 cur = output;; cur = parent[cur]) {
            path.push_back(cur);
            if (cur == input) break;
          }
          std::reverse(path.begin(), path.end());
          return path;
        }
        next.push_back(q);
      }
    }
    frontier = std::move(next);
  }
  return std::nullopt;
}

bool path_complete(const Grid& grid, Vec2 input, Vec2 output) {
  return occupied_shortest_path(grid, input, output).has_value();
}

}  // namespace sb::lat
