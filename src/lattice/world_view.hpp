#pragma once
// WorldView: the one read surface over the world's state.
//
// Everything above the lattice layer (core/, motion/, check/, viz/) reads
// the surface through this facade instead of poking Grid and Module
// internals directly: occupancy and block positions come from the SoA
// columns in lat::WorldState, the module lifecycle columns (state tag,
// epoch, pending-move) are exposed read-only, and the Remark-1 physics
// queries (connectivity, single-line) are forwarded to the two-tier oracle
// in lattice/connectivity. The facade is a non-owning pointer-sized value:
// copy it freely, but never outlive the Grid it views.
//
// Mutations stay on Grid (place/remove/move_simultaneously) and on the
// simulator's column writers — WorldView deliberately has no mutating
// member, which is what makes the read surface auditable.

#include <array>
#include <utility>
#include <vector>

#include "lattice/grid.hpp"

namespace sb::lat {

class WorldView {
 public:
  explicit WorldView(const Grid& grid) : grid_(&grid) {}

  // -- surface dimensions ----------------------------------------------------

  [[nodiscard]] int32_t width() const { return grid_->width(); }
  [[nodiscard]] int32_t height() const { return grid_->height(); }
  [[nodiscard]] size_t cell_count() const { return grid_->cell_count(); }
  [[nodiscard]] bool in_bounds(Vec2 p) const { return grid_->in_bounds(p); }

  // -- occupancy (served from the SoA byte image) ----------------------------

  [[nodiscard]] bool occupied(Vec2 p) const {
    return grid_->in_bounds(p) && grid_->state().occupied(p);
  }
  [[nodiscard]] BlockId at(Vec2 p) const { return grid_->at(p); }

  /// Occupancy bytes of row `y` starting at x = 0 (one ring of padding on
  /// every side reads 0); the batched mask sweeps and the sense fast path
  /// consume rows wholesale. Valid for y in [-1, height()].
  [[nodiscard]] const uint8_t* occupancy_row(int32_t y) const {
    return grid_->state().occupancy_row(y);
  }

  [[nodiscard]] int occupied_neighbor_count(Vec2 p) const {
    return grid_->occupied_neighbor_count(p);
  }
  [[nodiscard]] std::array<BlockId, 4> neighbors_of(Vec2 p) const {
    return grid_->neighbors_of(p);
  }

  // -- block id <-> position -------------------------------------------------

  [[nodiscard]] bool contains(BlockId id) const { return grid_->contains(id); }
  [[nodiscard]] Vec2 position_of(BlockId id) const {
    return grid_->position_of(id);
  }
  [[nodiscard]] size_t block_count() const { return grid_->block_count(); }
  [[nodiscard]] std::vector<BlockId> block_ids() const {
    return grid_->block_ids();
  }
  [[nodiscard]] std::vector<std::pair<BlockId, Vec2>> blocks() const {
    return grid_->blocks();
  }
  [[nodiscard]] size_t blocks_in_row(int32_t y) const {
    return grid_->blocks_in_row(y);
  }
  [[nodiscard]] size_t blocks_in_column(int32_t x) const {
    return grid_->blocks_in_column(x);
  }

  // -- module columns (written by the simulator, read by everyone) -----------

  [[nodiscard]] ModuleTag tag(BlockId id) const {
    return grid_->state().tag(id);
  }
  /// True when a live module program drives the block (kDead blocks remain
  /// on the surface as inert obstacles).
  [[nodiscard]] bool alive(BlockId id) const {
    return tag(id) == ModuleTag::kAlive;
  }
  /// The block's Algorithm-1 iteration counter (paper: IT), mirrored from
  /// its program; 0 for blocks without a program.
  [[nodiscard]] uint32_t epoch(BlockId id) const {
    return grid_->state().epoch(id);
  }
  /// True while the block has a motion in flight (request accepted, landing
  /// not yet applied).
  [[nodiscard]] bool move_pending(BlockId id) const {
    return grid_->state().move_pending(id);
  }
  [[nodiscard]] size_t pending_move_count() const {
    return grid_->state().pending_move_count();
  }

  // -- mutation journal ------------------------------------------------------

  [[nodiscard]] uint64_t version() const { return grid_->version(); }
  [[nodiscard]] const Vec2* last_change_cells() const {
    return grid_->last_change_cells();
  }
  [[nodiscard]] size_t last_change_count() const {
    return grid_->last_change_count();
  }
  [[nodiscard]] bool last_change_overflowed() const {
    return grid_->last_change_overflowed();
  }
  [[nodiscard]] uint64_t last_change_version() const {
    return grid_->last_change_version();
  }

  // -- Remark-1 physics queries (lattice/connectivity) -----------------------

  /// All blocks form one 4-connected component (cached; floods at most once
  /// per mutation).
  [[nodiscard]] bool connected() const;
  [[nodiscard]] bool connected_after_moves(
      const std::pair<Vec2, Vec2>* moves, size_t move_count) const;
  [[nodiscard]] bool connected_after_moves(
      const std::vector<std::pair<Vec2, Vec2>>& moves) const;
  [[nodiscard]] bool single_line() const;
  [[nodiscard]] bool single_line_after_moves(
      const std::pair<Vec2, Vec2>* moves, size_t move_count) const;
  [[nodiscard]] bool single_line_after_moves(
      const std::vector<std::pair<Vec2, Vec2>>& moves) const;

  /// Hint-free flood fill — the audit-grade answer the oracle compares the
  /// cached verdicts against. O(cells); never touches the caches.
  [[nodiscard]] bool connected_ground_truth() const;
  /// The grid's cached connectivity verdict (kUnknown when stale).
  [[nodiscard]] ConnectivityHint connectivity_hint() const {
    return grid_->own_connectivity_hint();
  }

  [[nodiscard]] const ConnectivityStats& connectivity_stats() const {
    return grid_->connectivity_stats();
  }

  /// The underlying grid, for the few call sites that must hand it to a
  /// mutating API (hot_join placement, trace replay). Reads should use the
  /// facade members above.
  [[nodiscard]] const Grid& grid() const { return *grid_; }

 private:
  const Grid* grid_;
};

}  // namespace sb::lat
