#pragma once
// Local occupancy view available to a block.
//
// Hardware blocks sense lateral contacts directly and learn nearby state
// from one round of neighbor-of-neighbor exchange; the simulator models the
// result as a square window of presence bits centred on the block, with a
// configurable Chebyshev radius (DESIGN.md, substitutions).

#include <vector>

#include "lattice/vec2.hpp"

namespace sb::lat {

class Neighborhood {
 public:
  /// Builds an unknown-free window; cells default to empty.
  Neighborhood(Vec2 center, int32_t radius, int32_t surface_width,
               int32_t surface_height);

  [[nodiscard]] Vec2 center() const { return center_; }
  [[nodiscard]] int32_t radius() const { return radius_; }

  /// True when `p` lies inside the sensed window.
  [[nodiscard]] bool covers(Vec2 p) const {
    return chebyshev(p, center_) <= radius_;
  }

  /// Presence at `p`. Cells outside the surface are empty; cells outside
  /// the sensing window must not be queried (checked).
  [[nodiscard]] bool occupied(Vec2 p) const;

  /// True when `p` is a real surface cell (blocks know W and H registers).
  [[nodiscard]] bool in_bounds(Vec2 p) const {
    return p.x >= 0 && p.x < surface_width_ && p.y >= 0 &&
           p.y < surface_height_;
  }

  void set_occupied(Vec2 p, bool value);

 private:
  [[nodiscard]] size_t index(Vec2 p) const;

  Vec2 center_;
  int32_t radius_;
  int32_t surface_width_;
  int32_t surface_height_;
  std::vector<bool> presence_;
};

}  // namespace sb::lat
