#pragma once
// Local occupancy view available to a block.
//
// Hardware blocks sense lateral contacts directly and learn nearby state
// from one round of neighbor-of-neighbor exchange; the simulator models the
// result as a square window of presence bits centred on the block, with a
// configurable Chebyshev radius (DESIGN.md, substitutions).
//
// Presence is stored as one packed bit row per window row (west-most cell in
// bit 0), which keeps the window allocation-free on the sense hot path and
// lets the rule matcher lift whole sub-rows into per-rule bitboards with a
// shift and a mask (motion/apply.hpp).

#include <array>
#include <cstdint>

#include "lattice/vec2.hpp"
#include "util/assert.hpp"

namespace sb::lat {

class Neighborhood {
 public:
  /// Window rows are packed into uint32 bit rows, so a window side of
  /// 2 * radius + 1 must fit in 32 bits. Real libraries sense 2-3 cells.
  static constexpr int32_t kMaxRadius = 15;

  /// Builds an unknown-free window; cells default to empty.
  Neighborhood(Vec2 center, int32_t radius, int32_t surface_width,
               int32_t surface_height)
      : center_(center),
        radius_(radius),
        surface_width_(surface_width),
        surface_height_(surface_height) {
    SB_EXPECTS(radius >= 0 && radius <= kMaxRadius,
               "sensing radius out of range: ", radius);
  }

  [[nodiscard]] Vec2 center() const { return center_; }
  [[nodiscard]] int32_t radius() const { return radius_; }

  /// True when `p` lies inside the sensed window.
  [[nodiscard]] bool covers(Vec2 p) const {
    return chebyshev(p, center_) <= radius_;
  }

  /// Presence at `p`. Cells outside the surface are empty; cells outside
  /// the sensing window must not be queried (checked).
  [[nodiscard]] bool occupied(Vec2 p) const {
    if (!in_bounds(p)) return false;
    SB_EXPECTS(covers(p), "query outside the sensed window: ", p,
               " from center ", center_, " radius ", radius_);
    return ((rows_[row(p)] >> col(p)) & 1u) != 0;
  }

  /// True when `p` is a real surface cell (blocks know W and H registers).
  [[nodiscard]] bool in_bounds(Vec2 p) const {
    return p.x >= 0 && p.x < surface_width_ && p.y >= 0 &&
           p.y < surface_height_;
  }

  [[nodiscard]] int32_t surface_width() const { return surface_width_; }
  [[nodiscard]] int32_t surface_height() const { return surface_height_; }

  void set_occupied(Vec2 p, bool value) {
    SB_EXPECTS(covers(p), "write outside the sensed window: ", p,
               " from center ", center_, " radius ", radius_);
    const uint32_t bit = 1u << col(p);
    if (value) {
      rows_[row(p)] |= bit;
    } else {
      rows_[row(p)] &= ~bit;
    }
  }

  // -- packed row access (sense fill and bitboard rule matching) -------------

  /// Presence bits of window row `wr` (0 = the southern-most row,
  /// y = center.y - radius); bit c = cell x = center.x - radius + c.
  [[nodiscard]] uint32_t row_bits(int32_t wr) const {
    return rows_[static_cast<size_t>(wr)];
  }
  void set_row_bits(int32_t wr, uint32_t bits) {
    rows_[static_cast<size_t>(wr)] = bits;
  }

 private:
  [[nodiscard]] size_t row(Vec2 p) const {
    return static_cast<size_t>(p.y - center_.y + radius_);
  }
  [[nodiscard]] size_t col(Vec2 p) const {
    return static_cast<size_t>(p.x - center_.x + radius_);
  }

  Vec2 center_;
  int32_t radius_;
  int32_t surface_width_;
  int32_t surface_height_;
  std::array<uint32_t, 2 * kMaxRadius + 1> rows_{};
};

}  // namespace sb::lat
