#pragma once
// The four lateral contact directions of a block (paper Fig. 1: sensors and
// actuators sit on each side; there is no top/bottom contact).

#include <array>
#include <cstdint>
#include <optional>
#include <ostream>
#include <string_view>

#include "lattice/vec2.hpp"

namespace sb::lat {

enum class Direction : uint8_t {
  kNorth = 0,
  kEast = 1,
  kSouth = 2,
  kWest = 3,
};

inline constexpr size_t kDirectionCount = 4;

/// All directions in a fixed order (N, E, S, W) for deterministic iteration.
[[nodiscard]] constexpr std::array<Direction, 4> all_directions() {
  return {Direction::kNorth, Direction::kEast, Direction::kSouth,
          Direction::kWest};
}

[[nodiscard]] constexpr Vec2 delta(Direction d) {
  switch (d) {
    case Direction::kNorth: return {0, 1};
    case Direction::kEast: return {1, 0};
    case Direction::kSouth: return {0, -1};
    case Direction::kWest: return {-1, 0};
  }
  return {0, 0};
}

[[nodiscard]] constexpr Direction opposite(Direction d) {
  return static_cast<Direction>((static_cast<uint8_t>(d) + 2) % 4);
}

/// 90-degree clockwise rotation (N -> E -> S -> W -> N).
[[nodiscard]] constexpr Direction rotate_cw(Direction d) {
  return static_cast<Direction>((static_cast<uint8_t>(d) + 1) % 4);
}

[[nodiscard]] constexpr Direction rotate_ccw(Direction d) {
  return static_cast<Direction>((static_cast<uint8_t>(d) + 3) % 4);
}

/// Maps a unit displacement to a direction; nullopt for non-unit vectors.
[[nodiscard]] constexpr std::optional<Direction> direction_from(Vec2 from,
                                                                Vec2 to) {
  const Vec2 d = to - from;
  if (d == Vec2{0, 1}) return Direction::kNorth;
  if (d == Vec2{1, 0}) return Direction::kEast;
  if (d == Vec2{0, -1}) return Direction::kSouth;
  if (d == Vec2{-1, 0}) return Direction::kWest;
  return std::nullopt;
}

[[nodiscard]] constexpr std::string_view to_string(Direction d) {
  switch (d) {
    case Direction::kNorth: return "N";
    case Direction::kEast: return "E";
    case Direction::kSouth: return "S";
    case Direction::kWest: return "W";
  }
  return "?";
}

inline std::ostream& operator<<(std::ostream& os, Direction d) {
  return os << to_string(d);
}

}  // namespace sb::lat
