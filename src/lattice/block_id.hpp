#pragma once
// Strongly-typed block identifier.

#include <cstdint>
#include <functional>
#include <ostream>

namespace sb::lat {

/// Identifier of a physical block. Stable for the lifetime of a simulation;
/// block *positions* change, ids never do (the paper's Figs 10-11 track
/// blocks by number the same way).
struct BlockId {
  uint32_t value = UINT32_MAX;

  constexpr BlockId() = default;
  constexpr explicit BlockId(uint32_t v) : value(v) {}

  [[nodiscard]] constexpr bool valid() const { return value != UINT32_MAX; }

  friend constexpr bool operator==(BlockId a, BlockId b) {
    return a.value == b.value;
  }
  friend constexpr bool operator!=(BlockId a, BlockId b) { return !(a == b); }
  friend constexpr bool operator<(BlockId a, BlockId b) {
    return a.value < b.value;
  }

  friend std::ostream& operator<<(std::ostream& os, BlockId id) {
    if (!id.valid()) return os << "#invalid";
    return os << '#' << id.value;
  }
};

inline constexpr BlockId kInvalidBlock{};

struct BlockIdHash {
  size_t operator()(BlockId id) const {
    return std::hash<uint32_t>{}(id.value);
  }
};

}  // namespace sb::lat
