#pragma once
// Spatial sharding of the surface into column stripes.
//
// The sharded simulator (sim/simulator.hpp, docs/ARCHITECTURE.md) partitions
// the grid into vertical stripes of equal width and gives each stripe its
// own event queue, RNG stream, and counters. The algorithm's communication
// is strictly nearest-neighbor, so a block only ever interacts with its own
// stripe or the two adjacent ones — the ShardMap is the single source of
// truth for "which shard owns this cell".
//
// The map is pure geometry: it holds no occupancy and never changes after
// construction, so concurrent shard workers can query it freely.

#include <cstdint>

#include "lattice/vec2.hpp"
#include "util/assert.hpp"

namespace sb::lat {

class ShardMap {
 public:
  /// Identity map: one shard covering the whole surface.
  ShardMap() = default;

  /// Splits a `grid_width`-wide surface into `requested` column stripes.
  /// The effective shard count is clamped to the width (a stripe is at
  /// least one column wide). The stripe width is rounded up so every
  /// column is covered, and the count is then recomputed from it — the
  /// rounding can leave trailing stripes with no columns (width 10,
  /// requested 8: stripes of 2 cover everything with 5 shards), and empty
  /// shards must not exist (they would idle workers and misreport the
  /// shard count).
  ShardMap(int32_t grid_width, size_t requested) : width_(grid_width) {
    SB_EXPECTS(grid_width > 0, "ShardMap needs a positive grid width");
    const size_t clamped = clamp_count(grid_width, requested);
    stripe_width_ = (grid_width + static_cast<int32_t>(clamped) - 1) /
                    static_cast<int32_t>(clamped);
    count_ = static_cast<size_t>((grid_width + stripe_width_ - 1) /
                                 stripe_width_);
  }

  /// Number of stripes actually created (<= requested).
  [[nodiscard]] size_t count() const { return count_; }

  /// Columns per stripe (the last stripe may be narrower).
  [[nodiscard]] int32_t stripe_width() const { return stripe_width_; }

  /// Shard owning column x. The caller must pass an in-surface column.
  [[nodiscard]] size_t shard_of_column(int32_t x) const {
    SB_ASSERT(x >= 0 && x < width_, "column ", x, " is off the surface");
    return static_cast<size_t>(x / stripe_width_);
  }

  [[nodiscard]] size_t shard_of(Vec2 p) const { return shard_of_column(p.x); }

  /// First (west-most) column of a stripe.
  [[nodiscard]] int32_t first_column(size_t shard) const {
    return static_cast<int32_t>(shard) * stripe_width_;
  }

 private:
  static size_t clamp_count(int32_t grid_width, size_t requested) {
    if (requested < 1) requested = 1;
    const auto width = static_cast<size_t>(grid_width > 0 ? grid_width : 1);
    return requested < width ? requested : width;
  }

  int32_t width_ = 1;
  size_t count_ = 1;
  int32_t stripe_width_ = 1;
};

}  // namespace sb::lat
