#pragma once
// Spatial sharding of the surface.
//
// The sharded simulator (sim/simulator.hpp, docs/ARCHITECTURE.md) partitions
// the grid and gives each shard its own event queue, RNG stream, and
// counters. The algorithm's communication is strictly nearest-neighbor, so a
// block only ever interacts with its own shard or an adjacent one — the
// ShardMap is the single source of truth for "which shard owns this cell".
//
// Four geometries share one class:
//
//   columns   equal-width vertical stripes (the classic layout);
//   rows      equal-height horizontal stripes;
//   tiles     a 2-D tile grid, ~sqrt(N) x sqrt(N) tiles;
//   adaptive  column stripes with load-balanced boundaries, re-striped from
//             the per-shard event counters of a previous run
//             (SessionResult::shard_events) so hot regions split finer.
//
// The map is pure geometry: it holds no occupancy and never changes after
// construction, so concurrent shard workers can query it freely.

#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

#include "lattice/vec2.hpp"
#include "util/assert.hpp"

namespace sb::lat {

enum class ShardMapKind : uint8_t { kColumns, kRows, kTiles };

[[nodiscard]] constexpr const char* to_string(ShardMapKind kind) {
  switch (kind) {
    case ShardMapKind::kColumns: return "columns";
    case ShardMapKind::kRows: return "rows";
    case ShardMapKind::kTiles: return "tiles";
  }
  return "?";
}

class ShardMap {
 public:
  /// Identity map: one shard covering the whole surface.
  ShardMap() = default;

  /// Splits a `grid_width`-wide surface into `requested` column stripes.
  /// The effective shard count is clamped to the width (a stripe is at
  /// least one column wide). The stripe width is rounded up so every
  /// column is covered, and the count is then recomputed from it — the
  /// rounding can leave trailing stripes with no columns (width 10,
  /// requested 8: stripes of 2 cover everything with 5 shards), and empty
  /// shards must not exist (they would idle workers and misreport the
  /// shard count).
  ShardMap(int32_t grid_width, size_t requested) : width_(grid_width) {
    SB_EXPECTS(grid_width > 0, "ShardMap needs a positive grid width");
    const size_t clamped = clamp_count(grid_width, requested);
    stripe_width_ = (grid_width + static_cast<int32_t>(clamped) - 1) /
                    static_cast<int32_t>(clamped);
    count_ = static_cast<size_t>((grid_width + stripe_width_ - 1) /
                                 stripe_width_);
  }

  /// Named alias of the uniform column-stripe constructor.
  [[nodiscard]] static ShardMap columns(int32_t grid_width, size_t requested) {
    return ShardMap(grid_width, requested);
  }

  /// Equal-height horizontal stripes (same rounding rules as columns).
  [[nodiscard]] static ShardMap rows(int32_t grid_width, int32_t grid_height,
                                     size_t requested) {
    SB_EXPECTS(grid_height > 0, "ShardMap needs a positive grid height");
    ShardMap map(grid_width, 1);
    map.kind_ = ShardMapKind::kRows;
    map.height_ = grid_height;
    map.stripe_width_ = grid_width;  // one column band spanning the width
    const size_t clamped = clamp_count(grid_height, requested);
    map.stripe_height_ = (grid_height + static_cast<int32_t>(clamped) - 1) /
                         static_cast<int32_t>(clamped);
    map.count_ = static_cast<size_t>(
        (grid_height + map.stripe_height_ - 1) / map.stripe_height_);
    return map;
  }

  /// 2-D tile grid of about `requested` shards: tiles_x = floor(sqrt(N))
  /// columns of tiles times N / tiles_x rows of tiles, each dimension
  /// ceil-rounded so no tile is empty. The effective count is <= requested.
  [[nodiscard]] static ShardMap tiles(int32_t grid_width, int32_t grid_height,
                                      size_t requested) {
    SB_EXPECTS(grid_width > 0 && grid_height > 0,
               "ShardMap needs a positive surface");
    if (requested < 1) requested = 1;
    size_t tiles_x = 1;
    while ((tiles_x + 1) * (tiles_x + 1) <= requested) ++tiles_x;
    size_t tiles_y = requested / tiles_x;
    tiles_x = clamp_count(grid_width, tiles_x);
    tiles_y = clamp_count(grid_height, tiles_y);
    ShardMap map(grid_width, 1);
    map.kind_ = ShardMapKind::kTiles;
    map.height_ = grid_height;
    map.stripe_width_ = (grid_width + static_cast<int32_t>(tiles_x) - 1) /
                        static_cast<int32_t>(tiles_x);
    map.stripe_height_ = (grid_height + static_cast<int32_t>(tiles_y) - 1) /
                         static_cast<int32_t>(tiles_y);
    map.tiles_x_ = static_cast<size_t>(
        (grid_width + map.stripe_width_ - 1) / map.stripe_width_);
    const auto rows_of_tiles = static_cast<size_t>(
        (grid_height + map.stripe_height_ - 1) / map.stripe_height_);
    map.count_ = map.tiles_x_ * rows_of_tiles;
    return map;
  }

  /// Column stripes with explicit load-balanced boundaries: `column_load`
  /// holds one weight per column; boundaries are chosen so every stripe
  /// carries about total/requested of the load, with at least one column
  /// per stripe. All-zero load degrades to the uniform column map.
  [[nodiscard]] static ShardMap adaptive_columns(
      int32_t grid_width, const std::vector<uint64_t>& column_load,
      size_t requested) {
    SB_EXPECTS(grid_width > 0, "ShardMap needs a positive grid width");
    SB_EXPECTS(column_load.size() == static_cast<size_t>(grid_width),
               "adaptive column map needs one load entry per column");
    const size_t shards = clamp_count(grid_width, requested);
    const uint64_t total = std::accumulate(column_load.begin(),
                                           column_load.end(), uint64_t{0});
    if (shards <= 1 || total == 0) return ShardMap(grid_width, requested);
    ShardMap map(grid_width, 1);
    map.first_columns_.clear();
    map.first_columns_.push_back(0);
    // Greedy equal-load sweep: cut after column c once the running load
    // crosses the next multiple of total/shards — while leaving enough
    // columns for the remaining stripes (>= 1 column each).
    uint64_t cum = 0;
    for (int32_t c = 0; c < grid_width; ++c) {
      cum += column_load[static_cast<size_t>(c)];
      const size_t made = map.first_columns_.size();  // stripes started
      if (made >= shards) break;
      const bool load_reached =
          static_cast<__uint128_t>(cum) * shards >=
          static_cast<__uint128_t>(total) * made;
      const bool room_left =
          static_cast<size_t>(grid_width - c - 1) > shards - made - 1;
      const bool must_cut = static_cast<size_t>(grid_width - c - 1) ==
                            shards - made;
      if ((load_reached || must_cut) && room_left && c + 1 < grid_width) {
        map.first_columns_.push_back(c + 1);
      }
    }
    map.count_ = map.first_columns_.size();
    map.stripe_width_ = 0;  // boundaries are explicit, not arithmetic
    return map;
  }

  /// Re-stripes a column map from a finished run's per-shard event counts:
  /// each old stripe's count is spread uniformly over its columns, then the
  /// boundaries are re-chosen at equal load. Only column maps re-stripe;
  /// `shard_events` must have one entry per shard of `previous`.
  [[nodiscard]] static ShardMap restriped(
      const ShardMap& previous, const std::vector<uint64_t>& shard_events,
      size_t requested) {
    SB_EXPECTS(previous.kind() == ShardMapKind::kColumns,
               "only column maps re-stripe adaptively");
    SB_EXPECTS(shard_events.size() == previous.count(),
               "restriped needs one event count per previous shard");
    std::vector<uint64_t> column_load(
        static_cast<size_t>(previous.width()), 0);
    for (size_t shard = 0; shard < previous.count(); ++shard) {
      const int32_t first = previous.first_column(shard);
      const int32_t last = shard + 1 < previous.count()
                               ? previous.first_column(shard + 1)
                               : previous.width();
      const auto columns = static_cast<uint64_t>(last - first);
      for (int32_t c = first; c < last; ++c) {
        column_load[static_cast<size_t>(c)] = shard_events[shard] / columns;
      }
    }
    return adaptive_columns(previous.width(), column_load, requested);
  }

  [[nodiscard]] ShardMapKind kind() const { return kind_; }

  /// Number of shards actually created (<= requested).
  [[nodiscard]] size_t count() const { return count_; }

  [[nodiscard]] int32_t width() const { return width_; }
  [[nodiscard]] int32_t height() const { return height_; }

  /// Columns per stripe (the last stripe may be narrower). 0 for adaptive
  /// column maps, whose stripes have explicit unequal boundaries.
  [[nodiscard]] int32_t stripe_width() const { return stripe_width_; }

  /// Rows per stripe for row/tile maps.
  [[nodiscard]] int32_t stripe_height() const { return stripe_height_; }

  /// Shard owning column x (column maps only). The caller must pass an
  /// in-surface column.
  [[nodiscard]] size_t shard_of_column(int32_t x) const {
    SB_ASSERT(x >= 0 && x < width_, "column ", x, " is off the surface");
    SB_ASSERT(kind_ == ShardMapKind::kColumns);
    if (stripe_width_ > 0) return static_cast<size_t>(x / stripe_width_);
    // Adaptive boundaries: the last stripe whose first column is <= x.
    size_t shard = count_ - 1;
    while (first_columns_[shard] > x) --shard;
    return shard;
  }

  /// Shard owning position `p`. The caller must pass an in-surface cell.
  [[nodiscard]] size_t shard_of(Vec2 p) const {
    switch (kind_) {
      case ShardMapKind::kColumns: return shard_of_column(p.x);
      case ShardMapKind::kRows:
        SB_ASSERT(p.y >= 0 && p.y < height_);
        return static_cast<size_t>(p.y / stripe_height_);
      case ShardMapKind::kTiles:
        SB_ASSERT(p.x >= 0 && p.x < width_ && p.y >= 0 && p.y < height_);
        return static_cast<size_t>(p.y / stripe_height_) * tiles_x_ +
               static_cast<size_t>(p.x / stripe_width_);
    }
    SB_UNREACHABLE();
  }

  /// First (west-most) column of a stripe (column maps only).
  [[nodiscard]] int32_t first_column(size_t shard) const {
    SB_ASSERT(kind_ == ShardMapKind::kColumns);
    if (stripe_width_ > 0) {
      return static_cast<int32_t>(shard) * stripe_width_;
    }
    return first_columns_[shard];
  }

  /// "columns x4 (stripe 16)"-style label for logs and reports.
  [[nodiscard]] std::string describe() const {
    std::string out = to_string(kind_);
    out += " x" + std::to_string(count_);
    if (kind_ == ShardMapKind::kColumns && stripe_width_ == 0) {
      out += " (adaptive)";
    }
    return out;
  }

 private:
  static size_t clamp_count(int32_t extent, size_t requested) {
    if (requested < 1) requested = 1;
    const auto limit = static_cast<size_t>(extent > 0 ? extent : 1);
    return requested < limit ? requested : limit;
  }

  ShardMapKind kind_ = ShardMapKind::kColumns;
  int32_t width_ = 1;
  int32_t height_ = 1;
  size_t count_ = 1;
  /// Uniform stripe geometry; stripe_width_ == 0 marks an adaptive column
  /// map with explicit boundaries in first_columns_.
  int32_t stripe_width_ = 1;
  int32_t stripe_height_ = 1;
  /// Tiles per tile-row (tile maps).
  size_t tiles_x_ = 1;
  /// First column of each stripe (adaptive column maps).
  std::vector<int32_t> first_columns_;
};

}  // namespace sb::lat
