#include "lattice/connectivity.hpp"

#include <algorithm>
#include <cstdlib>

#include "util/assert.hpp"

#if defined(__x86_64__) && defined(__GNUC__)
#define SB_CONN_HAVE_SSSE3 1
#include <immintrin.h>
#else
#define SB_CONN_HAVE_SSSE3 0
#endif

namespace sb::lat {

namespace {

// ---------------------------------------------------------------------------
// Scratch-buffer flood
//
// The flood works directly on the grid's dense cell array. Visited marks
// live in a thread-local generation-stamped buffer: bumping the generation
// invalidates every mark at once, so no clearing, hashing, or per-call
// allocation happens on the hot path. Each worker thread (SweepRunner runs
// one session per thread) owns its scratch.
// ---------------------------------------------------------------------------

struct FloodScratch {
  std::vector<uint32_t> stamp;  ///< per-cell visit generation
  std::vector<uint32_t> stack;  ///< DFS work list of cell indices
  uint32_t generation = 0;
};

FloodScratch& flood_scratch(size_t cell_count) {
  thread_local FloodScratch scratch;
  if (scratch.stamp.size() < cell_count) {
    scratch.stamp.assign(cell_count, 0);
    scratch.generation = 0;
  }
  if (++scratch.generation == 0) {  // wrapped: clear once per 2^32 floods
    std::fill(scratch.stamp.begin(), scratch.stamp.end(), 0u);
    scratch.generation = 1;
  }
  scratch.stack.clear();
  return scratch;
}

/// Hypothetical occupancy: the grid with `vacated` cells emptied and
/// `filled` cells occupied. Both lists hold at most a rule's worth of cells
/// and are scanned linearly.
bool occupied_overlay(const Grid& grid, Vec2 q, const Vec2* vacated,
                      size_t vacated_count, const Vec2* filled,
                      size_t filled_count) {
  for (size_t i = 0; i < filled_count; ++i) {
    if (filled[i] == q) return true;
  }
  for (size_t i = 0; i < vacated_count; ++i) {
    if (vacated[i] == q) return false;
  }
  return grid.occupied(q);
}

/// Flood from `start` (must be occupied under the overlay) using the
/// scratch's current generation; returns the number of cells reached.
size_t flood_fill(const Grid& grid, FloodScratch& scratch, Vec2 start,
                  const Vec2* vacated, size_t vacated_count,
                  const Vec2* filled, size_t filled_count) {
  const uint32_t gen = scratch.generation;
  const int32_t width = grid.width();
  const int32_t height = grid.height();
  const size_t start_index = grid.cell_index(start);
  scratch.stamp[start_index] = gen;
  scratch.stack.push_back(static_cast<uint32_t>(start_index));
  size_t visited = 1;
  while (!scratch.stack.empty()) {
    const uint32_t index = scratch.stack.back();
    scratch.stack.pop_back();
    const int32_t x = static_cast<int32_t>(index) % width;
    const int32_t y = static_cast<int32_t>(index) / width;
    const Vec2 p{x, y};
    for (Direction d : all_directions()) {
      const Vec2 q = p + delta(d);
      if (q.x < 0 || q.x >= width || q.y < 0 || q.y >= height) continue;
      const size_t qi = static_cast<size_t>(q.y) * static_cast<size_t>(width) +
                        static_cast<size_t>(q.x);
      if (scratch.stamp[qi] == gen) continue;
      bool occ;
      if (vacated_count == 0 && filled_count == 0) {
        occ = grid.occupied_index(qi);
      } else {
        occ = occupied_overlay(grid, q, vacated, vacated_count, filled,
                               filled_count);
      }
      if (!occ) continue;
      scratch.stamp[qi] = gen;
      scratch.stack.push_back(static_cast<uint32_t>(qi));
      ++visited;
    }
  }
  return visited;
}

// ---------------------------------------------------------------------------
// 8-neighborhood mask rule
//
// Ring cells around a center, in cyclic order; consecutive ring cells are
// 4-adjacent to each other, so a cyclically contiguous run of occupied ring
// cells is itself 4-connected without passing through the center.
// ---------------------------------------------------------------------------

constexpr std::array<Vec2, 8> kRing = {
    Vec2{0, 1},  Vec2{1, 1},   Vec2{1, 0},  Vec2{1, -1},
    Vec2{0, -1}, Vec2{-1, -1}, Vec2{-1, 0}, Vec2{-1, 1},
};
/// Ring indices of the 4-adjacent (orthogonal) neighbors: N, E, S, W.
constexpr uint32_t kOrthoMask = 0b01010101;

/// True when vacating the center is provably safe for ring occupancy
/// `mask`: every occupied orthogonal neighbor lies in one cyclic run of
/// occupied ring cells. False means "inconclusive", not "disconnects".
constexpr bool removal_mask_safe(uint32_t mask) {
  if ((mask & kOrthoMask) == 0) return false;  // isolated center: flood
  if (mask == 0xFF) return true;               // full ring: one run
  int runs_with_ortho = 0;
  for (int i = 0; i < 8; ++i) {
    const bool current = ((mask >> i) & 1) != 0;
    const bool previous = ((mask >> ((i + 7) % 8)) & 1) != 0;
    if (!current || previous) continue;  // not the start of a run
    bool has_ortho = false;
    for (int j = i; ((mask >> (j % 8)) & 1) != 0; ++j) {
      if (((kOrthoMask >> (j % 8)) & 1) != 0) has_ortho = true;
    }
    if (has_ortho) ++runs_with_ortho;
  }
  return runs_with_ortho == 1;
}

constexpr std::array<bool, 256> make_removal_table() {
  std::array<bool, 256> table{};
  for (uint32_t mask = 0; mask < 256; ++mask) {
    table[mask] = removal_mask_safe(mask);
  }
  return table;
}

constexpr std::array<bool, 256> kRemovalSafe = make_removal_table();

uint32_t ring_mask(const Grid& grid, Vec2 center) {
  uint32_t mask = 0;
  for (size_t i = 0; i < kRing.size(); ++i) {
    if (grid.occupied(center + kRing[i])) mask |= 1u << i;
  }
  return mask;
}

// ---------------------------------------------------------------------------
// Batched mask sweeps
//
// Whole rows of removal verdicts are computed from three padded occupancy
// rows of the SoA byte image — eight byte loads, shifts, and one table
// lookup per cell, with no bounds branches (the padding ring reads 0). The
// verdict bytes live in WorldState's per-row cache, stamped with the grid
// version they were computed against. On SSSE3 hosts the sweep runs 16
// cells per step: the eight neighbor loads become unaligned vector loads,
// the mask assembly becomes shifts and ORs, and the 256-entry bool table
// becomes a 32-byte bitset gathered with two pshufbs.
// ---------------------------------------------------------------------------

bool batch_enabled_from_env() {
#ifdef SB_SCALAR_ORACLE
  return false;  // dual-build CI job: force the per-candidate path
#else
  const char* env = std::getenv("SB_CONN_BATCH");
  if (env == nullptr) return true;
  return !(env[0] == '0' && env[1] == '\0');
#endif
}

/// Scalar mask assembly for cells [x0, x1) of one row. The bit positions
/// follow kRing exactly, so kRemovalSafe answers are identical to the
/// per-candidate ring_mask path by construction.
void removal_masks_scalar(const uint8_t* up, const uint8_t* mid,
                          const uint8_t* dn, int32_t x0, int32_t x1,
                          uint8_t* out) {
  for (int32_t x = x0; x < x1; ++x) {
    const uint32_t mask = (static_cast<uint32_t>(up[x]) << 0) |
                          (static_cast<uint32_t>(up[x + 1]) << 1) |
                          (static_cast<uint32_t>(mid[x + 1]) << 2) |
                          (static_cast<uint32_t>(dn[x + 1]) << 3) |
                          (static_cast<uint32_t>(dn[x]) << 4) |
                          (static_cast<uint32_t>(dn[x - 1]) << 5) |
                          (static_cast<uint32_t>(mid[x - 1]) << 6) |
                          (static_cast<uint32_t>(up[x - 1]) << 7);
    out[x] = kRemovalSafe[mask] ? 1 : 0;
  }
}

#if SB_CONN_HAVE_SSSE3

/// kRemovalSafe as a 256-bit set: byte mask >> 3, bit mask & 7. Small
/// enough to gather with two pshufbs.
constexpr std::array<uint8_t, 32> make_removal_bitset() {
  std::array<uint8_t, 32> bits{};
  for (uint32_t mask = 0; mask < 256; ++mask) {
    if (kRemovalSafe[mask]) {
      bits[mask >> 3] = static_cast<uint8_t>(bits[mask >> 3] |
                                             (1u << (mask & 7u)));
    }
  }
  return bits;
}

alignas(16) constexpr std::array<uint8_t, 32> kRemovalBitset =
    make_removal_bitset();

/// 16 cells per step. The occupancy bytes are 0/1, so a 16-bit-lane left
/// shift by <= 7 never carries across byte lanes and assembles the same
/// per-byte ring mask as the scalar path; the padding ring guarantees the
/// x-1 / x+1 loads stay in bounds for every step with x + 16 <= width.
__attribute__((target("ssse3"))) void removal_row_ssse3(
    const uint8_t* up, const uint8_t* mid, const uint8_t* dn, int32_t width,
    uint8_t* out) {
  const auto load = [](const uint8_t* p) {
    return _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
  };
  const __m128i table_lo = load(kRemovalBitset.data());
  const __m128i table_hi = load(kRemovalBitset.data() + 16);
  // 1 << (mask & 7), indexed by the low three mask bits.
  const __m128i bit_select =
      _mm_setr_epi8(1, 2, 4, 8, 16, 32, 64, -128, 1, 2, 4, 8, 16, 32, 64,
                    -128);
  const __m128i zero = _mm_setzero_si128();
  const __m128i one = _mm_set1_epi8(1);
  int32_t x = 0;
  for (; x + 16 <= width; x += 16) {
    __m128i mask = load(up + x);                                  // bit 0
    mask = _mm_or_si128(mask, _mm_slli_epi16(load(up + x + 1), 1));
    mask = _mm_or_si128(mask, _mm_slli_epi16(load(mid + x + 1), 2));
    mask = _mm_or_si128(mask, _mm_slli_epi16(load(dn + x + 1), 3));
    mask = _mm_or_si128(mask, _mm_slli_epi16(load(dn + x), 4));
    mask = _mm_or_si128(mask, _mm_slli_epi16(load(dn + x - 1), 5));
    mask = _mm_or_si128(mask, _mm_slli_epi16(load(mid + x - 1), 6));
    mask = _mm_or_si128(mask, _mm_slli_epi16(load(up + x - 1), 7));
    // Bitset gather: byte index mask >> 3 is 0..31 (the 16-bit shift leaks
    // the neighbor byte's bits into positions 5..7 — masked off). Adding
    // 112 keeps indices 0..15 addressing table_lo and pushes 16..31 into
    // pshufb's zeroing range; subtracting 16 does the mirror for table_hi.
    const __m128i byte_index =
        _mm_and_si128(_mm_srli_epi16(mask, 3), _mm_set1_epi8(31));
    const __m128i gathered = _mm_or_si128(
        _mm_shuffle_epi8(table_lo,
                         _mm_add_epi8(byte_index, _mm_set1_epi8(112))),
        _mm_shuffle_epi8(table_hi,
                         _mm_sub_epi8(byte_index, _mm_set1_epi8(16))));
    const __m128i bit =
        _mm_shuffle_epi8(bit_select, _mm_and_si128(mask, _mm_set1_epi8(7)));
    // (gathered & bit) != 0 -> verdict byte 1, else 0.
    const __m128i unsafe = _mm_cmpeq_epi8(_mm_and_si128(gathered, bit), zero);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + x),
                     _mm_add_epi8(unsafe, one));
  }
  removal_masks_scalar(up, mid, dn, x, width, out);  // tail
}

#endif  // SB_CONN_HAVE_SSSE3

bool wide_enabled_from_env() {
  const char* env = std::getenv("SB_CONN_WIDE");
  const bool requested =
      env == nullptr || !(env[0] == '0' && env[1] == '\0');
#if SB_CONN_HAVE_SSSE3
  return requested && __builtin_cpu_supports("ssse3");
#else
  (void)requested;
  return false;
#endif
}

/// One cache-linear sweep over row `y`, wide when the host allows it.
void compute_removal_row(const Grid& grid, int32_t y, uint8_t* out) {
  const WorldState& state = grid.state();
  const uint8_t* up = state.occupancy_row(y + 1);
  const uint8_t* mid = state.occupancy_row(y);
  const uint8_t* dn = state.occupancy_row(y - 1);
  const int32_t width = grid.width();
#if SB_CONN_HAVE_SSSE3
  if (detail::connectivity_wide_enabled()) {
    removal_row_ssse3(up, mid, dn, width, out);
    return;
  }
#endif
  removal_masks_scalar(up, mid, dn, 0, width, out);
}

}  // namespace

namespace detail {

void compute_removal_row_scalar(const Grid& grid, int32_t y, uint8_t* out) {
  const WorldState& state = grid.state();
  removal_masks_scalar(state.occupancy_row(y + 1), state.occupancy_row(y),
                       state.occupancy_row(y - 1), 0, grid.width(), out);
}

void compute_removal_row_wide(const Grid& grid, int32_t y, uint8_t* out) {
#if SB_CONN_HAVE_SSSE3
  if (__builtin_cpu_supports("ssse3")) {
    const WorldState& state = grid.state();
    removal_row_ssse3(state.occupancy_row(y + 1), state.occupancy_row(y),
                      state.occupancy_row(y - 1), grid.width(), out);
    return;
  }
#endif
  compute_removal_row_scalar(grid, y, out);
}

bool connectivity_wide_enabled() {
  static const bool enabled = wide_enabled_from_env();
  return enabled;
}

}  // namespace detail

bool connectivity_batch_enabled() {
  static const bool enabled = batch_enabled_from_env();
  return enabled;
}

const uint8_t* removal_verdict_row(const Grid& grid, int32_t y) {
  const WorldState& state = grid.state();
  uint8_t* row = state.removal_verdict_row(y);
  if (state.removal_row_version(y) != grid.version()) {
    compute_removal_row(grid, y, row);
    state.set_removal_row_version(y, grid.version());
  }
  return row;
}

void batch_removal_verdicts(const Grid& grid, const Vec2* cells, size_t count,
                            uint8_t* out) {
  if (!connectivity_batch_enabled() || Grid::thread_has_connectivity_view()) {
    // Scalar fallback: per-candidate table lookups, no shared row cache.
    for (size_t i = 0; i < count; ++i) {
      out[i] = kRemovalSafe[ring_mask(grid, cells[i])] ? 1 : 0;
    }
    return;
  }
  for (size_t i = 0; i < count; ++i) {
    out[i] = removal_verdict_row(grid, cells[i].y)[cells[i].x];
  }
}

LocalVerdict local_removal_check(const Grid& grid, Vec2 from) {
  // Sequential probes are served from the batched verdict rows; probes made
  // under an installed scratch view (parallel shard windows) or with the
  // batch disabled take the per-candidate lookup. Same table, same
  // occupancy bytes — identical verdicts either way.
  if (connectivity_batch_enabled() && !Grid::thread_has_connectivity_view()) {
    return removal_verdict_row(grid, from.y)[from.x] != 0
               ? LocalVerdict::kPreservesConnectivity
               : LocalVerdict::kInconclusive;
  }
  return kRemovalSafe[ring_mask(grid, from)]
             ? LocalVerdict::kPreservesConnectivity
             : LocalVerdict::kInconclusive;
}

LocalVerdict local_move_check(const Grid& grid, Vec2 from, Vec2 to) {
  // The post-move configuration is K = (G \ {from}) u {to}. K is connected
  // iff G \ {from} is connected and `to` touches it; both facts are decided
  // from current occupancy around the two cells.
  bool attaches = false;
  for (Direction d : all_directions()) {
    const Vec2 q = to + delta(d);
    if (q != from && grid.occupied(q)) {
      attaches = true;
      break;
    }
  }
  if (!attaches) return LocalVerdict::kDisconnects;  // `to` lands isolated
  return local_removal_check(grid, from);
}

namespace {

/// is_connected without stats accounting: probes that embed this as a
/// subroutine (connected_after_moves) record themselves exactly once.
/// Sets *flooded when a full flood ran.
bool is_connected_impl(const Grid& grid, bool* flooded) {
  if (grid.block_count() <= 1) return true;
  const ConnectivityHint hint = grid.connectivity_hint();
  if (hint != ConnectivityHint::kUnknown) {
    return hint == ConnectivityHint::kConnected;
  }
  FloodScratch& scratch = flood_scratch(grid.cell_count());
  *flooded = true;
  const bool connected =
      flood_fill(grid, scratch, grid.first_block_position(), nullptr, 0,
                 nullptr, 0) == grid.block_count();
  grid.set_connectivity_hint(connected);
  return connected;
}

/// One probe, one counter: a probe is "fast" iff it ran no flood.
void count_probe(const Grid& grid, bool flooded) {
  ConnectivityStats& stats = grid.mutable_connectivity_stats();
  if (flooded) {
    ++stats.slow_path_floods;
  } else {
    ++stats.fast_path_hits;
  }
}

}  // namespace

bool is_connected(const Grid& grid) {
  if (grid.block_count() <= 1) return true;
  bool flooded = false;
  const bool connected = is_connected_impl(grid, &flooded);
  count_probe(grid, flooded);
  return connected;
}

bool is_connected_ground_truth(const Grid& grid) {
  if (grid.block_count() <= 1) return true;
  FloodScratch& scratch = flood_scratch(grid.cell_count());
  return flood_fill(grid, scratch, grid.first_block_position(), nullptr, 0,
                    nullptr, 0) == grid.block_count();
}

NetMoveEffect net_move_effect(const std::pair<Vec2, Vec2>* moves,
                              size_t count, Vec2* vacated_out,
                              Vec2* landed_out) {
  NetMoveEffect net;
  for (size_t i = 0; i < count; ++i) {
    bool refilled = false;
    bool was_source = false;
    for (size_t j = 0; j < count; ++j) {
      refilled |= moves[j].second == moves[i].first;
      was_source |= moves[j].first == moves[i].second;
    }
    if (!refilled) {
      net.vacated = moves[i].first;
      if (vacated_out != nullptr) {
        vacated_out[net.vacated_count] = moves[i].first;
      }
      ++net.vacated_count;
    }
    if (!was_source) {
      net.landed = moves[i].second;
      if (landed_out != nullptr) landed_out[net.landed_count] = moves[i].second;
      ++net.landed_count;
    }
  }
  return net;
}

bool connected_after_moves(const Grid& grid, const std::pair<Vec2, Vec2>* moves,
                           size_t move_count) {
  for (size_t i = 0; i < move_count; ++i) {
    SB_EXPECTS(grid.occupied(moves[i].first),
               "hypothetical move from empty cell ", moves[i].first);
    SB_EXPECTS(grid.in_bounds(moves[i].second),
               "hypothetical move to off-surface cell ", moves[i].second);
  }
  const size_t total = grid.block_count();
  if (total <= 1) return true;

  // Net effect of the batch: handover chains (A->B while B->C) keep the
  // intermediate cells occupied, so only sources nobody lands on are truly
  // vacated, and only destinations nobody leaves are truly new.
  constexpr size_t kMaxInline = 8;
  std::array<Vec2, kMaxInline> vacated_buf;
  std::array<Vec2, kMaxInline> landed_buf;
  std::vector<Vec2> vacated_heap;
  std::vector<Vec2> landed_heap;
  Vec2* vacated = vacated_buf.data();
  Vec2* landed = landed_buf.data();
  if (move_count > kMaxInline) {
    vacated_heap.resize(move_count);
    landed_heap.resize(move_count);
    vacated = vacated_heap.data();
    landed = landed_heap.data();
  }
  const NetMoveEffect net =
      net_move_effect(moves, move_count, vacated, landed);
  const size_t vacated_count = net.vacated_count;

  bool flooded = false;
  if (vacated_count == 0 && net.landed_count == 0) {
    const bool connected = is_connected_impl(grid, &flooded);
    count_probe(grid, flooded);
    return connected;
  }

  if (vacated_count == 1 && net.landed_count == 1 &&
      is_connected_impl(grid, &flooded)) {
    switch (local_move_check(grid, net.vacated, net.landed)) {
      case LocalVerdict::kPreservesConnectivity:
        count_probe(grid, flooded);
        return true;
      case LocalVerdict::kDisconnects:
        count_probe(grid, flooded);
        return false;
      case LocalVerdict::kInconclusive:
        break;
    }
  }

  // Slow path: flood the hypothetical configuration. The overlay fills all
  // destinations and vacates the net sources; any destination is a valid
  // seed (it is occupied afterwards).
  constexpr size_t kMaxInlineFilled = 8;
  std::array<Vec2, kMaxInlineFilled> filled_buf;
  std::vector<Vec2> filled_heap;
  Vec2* filled = filled_buf.data();
  if (move_count > kMaxInlineFilled) {
    filled_heap.resize(move_count);
    filled = filled_heap.data();
  }
  for (size_t i = 0; i < move_count; ++i) filled[i] = moves[i].second;
  const Vec2 start = net.landed_count > 0 ? landed[0] : moves[0].second;
  FloodScratch& scratch = flood_scratch(grid.cell_count());
  count_probe(grid, /*flooded=*/true);
  return flood_fill(grid, scratch, start, vacated, vacated_count, filled,
                    move_count) == total;
}

bool connected_after_moves(const Grid& grid,
                           const std::vector<std::pair<Vec2, Vec2>>& moves) {
  return connected_after_moves(grid, moves.data(), moves.size());
}

std::vector<Vec2> articulation_points(const Grid& grid) {
  // Hopcroft–Tarjan on the block adjacency graph via iterative DFS. Node
  // lookup goes through a dense cell-index array instead of a hash map;
  // this path serves analysis and tests, not the per-move oracle.
  const int n = static_cast<int>(grid.block_count());
  if (n <= 2) return {};  // removing one of <=2 blocks cannot disconnect

  std::vector<Vec2> nodes;
  nodes.reserve(static_cast<size_t>(n));
  std::vector<int32_t> node_at(grid.cell_count(), -1);
  for (int32_t y = 0; y < grid.height(); ++y) {
    for (int32_t x = 0; x < grid.width(); ++x) {
      const Vec2 p{x, y};
      const size_t cell = grid.cell_index(p);
      if (!grid.occupied_index(cell)) continue;
      node_at[cell] = static_cast<int32_t>(nodes.size());
      nodes.push_back(p);  // row-major == sorted by Vec2 ordering
    }
  }

  std::vector<int> disc(static_cast<size_t>(n), -1);
  std::vector<int> low(static_cast<size_t>(n), 0);
  std::vector<int> parent(static_cast<size_t>(n), -1);
  std::vector<bool> is_art(static_cast<size_t>(n), false);
  int timer = 0;

  // DFS stack of (node, next direction to try).
  std::vector<std::pair<int, uint8_t>> stack;
  for (int root = 0; root < n; ++root) {
    if (disc[static_cast<size_t>(root)] != -1) continue;
    disc[static_cast<size_t>(root)] = low[static_cast<size_t>(root)] = timer++;
    stack.emplace_back(root, 0);
    int root_children = 0;
    while (!stack.empty()) {
      auto& [u, cursor] = stack.back();
      if (cursor < kDirectionCount) {
        const Direction d = static_cast<Direction>(cursor++);
        const Vec2 q = nodes[static_cast<size_t>(u)] + delta(d);
        if (!grid.in_bounds(q)) continue;
        const int v = node_at[grid.cell_index(q)];
        if (v < 0) continue;
        if (disc[static_cast<size_t>(v)] == -1) {
          parent[static_cast<size_t>(v)] = u;
          if (u == root) ++root_children;
          disc[static_cast<size_t>(v)] = low[static_cast<size_t>(v)] =
              timer++;
          stack.emplace_back(v, 0);
        } else if (v != parent[static_cast<size_t>(u)]) {
          low[static_cast<size_t>(u)] = std::min(
              low[static_cast<size_t>(u)], disc[static_cast<size_t>(v)]);
        }
      } else {
        stack.pop_back();
        const int p = parent[static_cast<size_t>(u)];
        if (p != -1) {
          low[static_cast<size_t>(p)] =
              std::min(low[static_cast<size_t>(p)], low[static_cast<size_t>(u)]);
          if (p != root &&
              low[static_cast<size_t>(u)] >= disc[static_cast<size_t>(p)]) {
            is_art[static_cast<size_t>(p)] = true;
          }
        }
      }
    }
    if (root_children > 1) is_art[static_cast<size_t>(root)] = true;
  }

  std::vector<Vec2> out;
  for (int i = 0; i < n; ++i) {
    if (is_art[static_cast<size_t>(i)]) out.push_back(nodes[static_cast<size_t>(i)]);
  }
  return out;  // nodes were gathered row-major, so `out` is already sorted
}

bool is_single_line(const Grid& grid) {
  const size_t n = grid.block_count();
  if (n <= 1) return true;
  for (int32_t y = 0; y < grid.height(); ++y) {
    if (grid.blocks_in_row(y) == n) return true;
  }
  for (int32_t x = 0; x < grid.width(); ++x) {
    if (grid.blocks_in_column(x) == n) return true;
  }
  return false;
}

bool single_line_after_moves(const Grid& grid,
                             const std::pair<Vec2, Vec2>* moves,
                             size_t move_count) {
  for (size_t i = 0; i < move_count; ++i) {
    SB_EXPECTS(grid.in_bounds(moves[i].first) &&
                   grid.in_bounds(moves[i].second),
               "hypothetical move ", moves[i].first, " -> ", moves[i].second,
               " leaves the surface");
  }
  const size_t n = grid.block_count();
  if (n <= 1) return true;
  if (move_count == 0) return is_single_line(grid);
  // Every mover ends on a destination cell, so a single-line outcome can
  // only be the destinations' shared column (or row). Adjust that line's
  // block count by the moves crossing it; each source decrements, each
  // destination increments, so handover chains net out.
  const Vec2 reference = moves[0].second;
  bool same_column = true;
  bool same_row = true;
  int64_t column_blocks =
      static_cast<int64_t>(grid.blocks_in_column(reference.x));
  int64_t row_blocks = static_cast<int64_t>(grid.blocks_in_row(reference.y));
  for (size_t i = 0; i < move_count; ++i) {
    const auto& [from, to] = moves[i];
    same_column &= to.x == reference.x;
    same_row &= to.y == reference.y;
    if (from.x == reference.x) --column_blocks;
    if (to.x == reference.x) ++column_blocks;
    if (from.y == reference.y) --row_blocks;
    if (to.y == reference.y) ++row_blocks;
  }
  return (same_column && column_blocks == static_cast<int64_t>(n)) ||
         (same_row && row_blocks == static_cast<int64_t>(n));
}

bool single_line_after_moves(const Grid& grid,
                             const std::vector<std::pair<Vec2, Vec2>>& moves) {
  return single_line_after_moves(grid, moves.data(), moves.size());
}

int component_count(const Grid& grid) {
  // Analysis only — not an oracle probe, so no stats accounting.
  if (grid.block_count() == 0) return 0;
  FloodScratch& scratch = flood_scratch(grid.cell_count());
  const uint32_t gen = scratch.generation;
  int components = 0;
  for (int32_t y = 0; y < grid.height(); ++y) {
    for (int32_t x = 0; x < grid.width(); ++x) {
      const Vec2 p{x, y};
      const size_t cell = grid.cell_index(p);
      if (!grid.occupied_index(cell) || scratch.stamp[cell] == gen) continue;
      ++components;
      flood_fill(grid, scratch, p, nullptr, 0, nullptr, 0);
    }
  }
  return components;
}

}  // namespace sb::lat
