#include "lattice/connectivity.hpp"

#include <algorithm>
#include <functional>
#include <unordered_map>
#include <unordered_set>

#include "util/assert.hpp"

namespace sb::lat {

namespace {

/// BFS over occupied cells starting from `start`; returns visited count.
size_t flood_count(const Grid& grid, Vec2 start,
                   const std::unordered_set<Vec2, Vec2Hash>& extra_empty,
                   const std::unordered_set<Vec2, Vec2Hash>& extra_full) {
  const auto occupied = [&](Vec2 p) {
    if (extra_full.count(p)) return true;
    if (extra_empty.count(p)) return false;
    return grid.occupied(p);
  };
  if (!occupied(start)) return 0;
  std::unordered_set<Vec2, Vec2Hash> seen;
  std::vector<Vec2> frontier{start};
  seen.insert(start);
  while (!frontier.empty()) {
    const Vec2 p = frontier.back();
    frontier.pop_back();
    for (Direction d : all_directions()) {
      const Vec2 q = p + delta(d);
      if (!seen.count(q) && occupied(q)) {
        seen.insert(q);
        frontier.push_back(q);
      }
    }
  }
  return seen.size();
}

}  // namespace

bool is_connected(const Grid& grid) {
  if (grid.block_count() <= 1) return true;
  const Vec2 start = grid.first_block_position();
  return flood_count(grid, start, {}, {}) == grid.block_count();
}

bool connected_after_moves(const Grid& grid,
                           const std::vector<std::pair<Vec2, Vec2>>& moves) {
  std::unordered_set<Vec2, Vec2Hash> vacated;
  std::unordered_set<Vec2, Vec2Hash> filled;
  for (const auto& [from, to] : moves) {
    SB_EXPECTS(grid.occupied(from), "hypothetical move from empty cell ",
               from);
    vacated.insert(from);
  }
  for (const auto& [from, to] : moves) {
    filled.insert(to);
    vacated.erase(to);  // handover: destination stays occupied
  }
  // Find any occupied cell in the hypothetical configuration.
  Vec2 start{-1, -1};
  bool found = false;
  size_t total = 0;
  for (const auto& [id, pos] : grid.blocks()) {
    Vec2 p = pos;
    // Where does this block end up?
    for (const auto& [from, to] : moves) {
      if (from == pos) {
        p = to;
        break;
      }
    }
    if (!found) {
      start = p;
      found = true;
    }
    ++total;
  }
  if (total <= 1) return true;
  return flood_count(grid, start, vacated, filled) == total;
}

std::vector<Vec2> articulation_points(const Grid& grid) {
  // Hopcroft–Tarjan on the block adjacency graph via iterative DFS.
  std::vector<Vec2> nodes;
  nodes.reserve(grid.block_count());
  for (const auto& [id, pos] : grid.blocks()) nodes.push_back(pos);
  std::sort(nodes.begin(), nodes.end());
  std::unordered_map<Vec2, int, Vec2Hash> index_of;
  for (size_t i = 0; i < nodes.size(); ++i) {
    index_of[nodes[i]] = static_cast<int>(i);
  }
  const int n = static_cast<int>(nodes.size());
  if (n <= 2) return {};  // removing one of <=2 blocks cannot disconnect

  std::vector<int> disc(static_cast<size_t>(n), -1);
  std::vector<int> low(static_cast<size_t>(n), 0);
  std::vector<int> parent(static_cast<size_t>(n), -1);
  std::vector<bool> is_art(static_cast<size_t>(n), false);
  int timer = 0;

  const auto neighbors = [&](int u) {
    std::vector<int> out;
    for (Direction d : all_directions()) {
      const auto it = index_of.find(nodes[static_cast<size_t>(u)] + delta(d));
      if (it != index_of.end()) out.push_back(it->second);
    }
    return out;
  };

  for (int root = 0; root < n; ++root) {
    if (disc[static_cast<size_t>(root)] != -1) continue;
    // Iterative DFS with an explicit stack of (node, neighbor cursor).
    std::vector<std::pair<int, size_t>> stack;
    std::vector<std::vector<int>> adj_cache(static_cast<size_t>(n));
    disc[static_cast<size_t>(root)] = low[static_cast<size_t>(root)] =
        timer++;
    adj_cache[static_cast<size_t>(root)] = neighbors(root);
    stack.emplace_back(root, 0);
    int root_children = 0;
    while (!stack.empty()) {
      auto& [u, cursor] = stack.back();
      const auto& adj = adj_cache[static_cast<size_t>(u)];
      if (cursor < adj.size()) {
        const int v = adj[cursor++];
        if (disc[static_cast<size_t>(v)] == -1) {
          parent[static_cast<size_t>(v)] = u;
          if (u == root) ++root_children;
          disc[static_cast<size_t>(v)] = low[static_cast<size_t>(v)] =
              timer++;
          adj_cache[static_cast<size_t>(v)] = neighbors(v);
          stack.emplace_back(v, 0);
        } else if (v != parent[static_cast<size_t>(u)]) {
          low[static_cast<size_t>(u)] = std::min(
              low[static_cast<size_t>(u)], disc[static_cast<size_t>(v)]);
        }
      } else {
        stack.pop_back();
        const int p = parent[static_cast<size_t>(u)];
        if (p != -1) {
          low[static_cast<size_t>(p)] =
              std::min(low[static_cast<size_t>(p)], low[static_cast<size_t>(u)]);
          if (p != root &&
              low[static_cast<size_t>(u)] >= disc[static_cast<size_t>(p)]) {
            is_art[static_cast<size_t>(p)] = true;
          }
        }
      }
    }
    if (root_children > 1) is_art[static_cast<size_t>(root)] = true;
  }

  std::vector<Vec2> out;
  for (int i = 0; i < n; ++i) {
    if (is_art[static_cast<size_t>(i)]) out.push_back(nodes[static_cast<size_t>(i)]);
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool is_single_line(const Grid& grid) {
  if (grid.block_count() <= 1) return true;
  bool same_x = true;
  bool same_y = true;
  const Vec2 first = grid.first_block_position();
  for (const auto& [id, pos] : grid.blocks()) {
    same_x &= pos.x == first.x;
    same_y &= pos.y == first.y;
  }
  return same_x || same_y;
}

int component_count(const Grid& grid) {
  std::unordered_set<Vec2, Vec2Hash> seen;
  int components = 0;
  for (const auto& [id, pos] : grid.blocks()) {
    if (seen.count(pos)) continue;
    ++components;
    std::vector<Vec2> frontier{pos};
    seen.insert(pos);
    while (!frontier.empty()) {
      const Vec2 p = frontier.back();
      frontier.pop_back();
      for (Direction d : all_directions()) {
        const Vec2 q = p + delta(d);
        if (grid.occupied(q) && !seen.count(q)) {
          seen.insert(q);
          frontier.push_back(q);
        }
      }
    }
  }
  return components;
}

}  // namespace sb::lat
