#include "lattice/grid.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace sb::lat {

Grid::Grid(int32_t width, int32_t height) : width_(width), height_(height) {
  SB_EXPECTS(width > 0 && height > 0, "grid dimensions must be positive, got ",
             width, "x", height);
  cells_.assign(cell_count(), kInvalidBlock);
}

Vec2 Grid::position_of(BlockId id) const {
  const auto it = positions_.find(id);
  SB_EXPECTS(it != positions_.end(), "block ", id, " is not on the surface");
  return it->second;
}

std::vector<BlockId> Grid::block_ids() const {
  std::vector<BlockId> ids;
  ids.reserve(positions_.size());
  for (const auto& [id, pos] : positions_) ids.push_back(id);
  return ids;
}

void Grid::place(BlockId id, Vec2 p) {
  SB_EXPECTS(id.valid(), "cannot place an invalid block id");
  SB_EXPECTS(in_bounds(p), "place ", id, " out of bounds at ", p);
  SB_EXPECTS(!cells_[index(p)].valid(), "cell ", p, " already holds ",
             cells_[index(p)]);
  SB_EXPECTS(positions_.count(id) == 0, "block ", id,
             " is already on the surface");
  cells_[index(p)] = id;
  positions_[id] = p;
}

BlockId Grid::remove(Vec2 p) {
  SB_EXPECTS(in_bounds(p), "remove out of bounds at ", p);
  const BlockId id = cells_[index(p)];
  SB_EXPECTS(id.valid(), "cell ", p, " is empty");
  cells_[index(p)] = kInvalidBlock;
  positions_.erase(id);
  return id;
}

void Grid::move(Vec2 from, Vec2 to) {
  move_simultaneously({{from, to}});
}

void Grid::move_simultaneously(
    const std::vector<std::pair<Vec2, Vec2>>& moves) {
  // Phase 1: lift all movers off the surface.
  std::vector<std::pair<BlockId, Vec2>> landing;
  landing.reserve(moves.size());
  for (const auto& [from, to] : moves) {
    SB_EXPECTS(in_bounds(from) && in_bounds(to), "move ", from, " -> ", to,
               " leaves the surface");
    const BlockId id = cells_[index(from)];
    SB_EXPECTS(id.valid(), "move source ", from, " is empty");
    cells_[index(from)] = kInvalidBlock;
    landing.emplace_back(id, to);
  }
  // Phase 2: land them. After lifting, destinations must all be free; this
  // accepts handovers (A -> B while B -> C) and rejects true collisions.
  for (const auto& [id, to] : landing) {
    SB_EXPECTS(!cells_[index(to)].valid(), "move destination ", to,
               " is occupied after lifting movers");
    cells_[index(to)] = id;
    positions_[id] = to;
  }
}

std::array<BlockId, 4> Grid::neighbors_of(Vec2 p) const {
  std::array<BlockId, 4> out{};
  for (Direction d : all_directions()) {
    out[static_cast<size_t>(d)] = at(p + delta(d));
  }
  return out;
}

int Grid::occupied_neighbor_count(Vec2 p) const {
  int count = 0;
  for (Direction d : all_directions()) {
    if (occupied(p + delta(d))) ++count;
  }
  return count;
}

}  // namespace sb::lat
