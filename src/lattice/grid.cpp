#include "lattice/grid.hpp"

#include <algorithm>

#include "lattice/connectivity.hpp"
#include "util/assert.hpp"

namespace sb::lat {

thread_local ConnectivityScratchView* Grid::tls_conn_view = nullptr;

Grid::Grid(int32_t width, int32_t height)
    : width_(width), height_(height), state_(width, height) {
  SB_EXPECTS(width > 0 && height > 0, "grid dimensions must be positive, got ",
             width, "x", height);
  cells_.assign(cell_count(), kInvalidBlock);
  row_counts_.assign(static_cast<size_t>(height_), 0);
  col_counts_.assign(static_cast<size_t>(width_), 0);
}

std::vector<BlockId> Grid::block_ids() const {
  std::vector<BlockId> ids;
  ids.reserve(block_count_);
  for (uint32_t v = 0; v < state_.id_capacity(); ++v) {
    if (state_.has_position(BlockId{v})) ids.push_back(BlockId{v});
  }
  return ids;
}

std::vector<std::pair<BlockId, Vec2>> Grid::blocks() const {
  std::vector<std::pair<BlockId, Vec2>> out;
  out.reserve(block_count_);
  for (uint32_t v = 0; v < state_.id_capacity(); ++v) {
    const BlockId id{v};
    if (state_.has_position(id)) out.emplace_back(id, state_.position(id));
  }
  return out;
}

Vec2 Grid::first_block_position() const {
  SB_EXPECTS(block_count_ > 0, "first_block_position on an empty grid");
  for (uint32_t v = 0; v < state_.id_capacity(); ++v) {
    const BlockId id{v};
    if (state_.has_position(id)) return state_.position(id);
  }
  SB_UNREACHABLE();
}

void Grid::place(BlockId id, Vec2 p) {
  SB_EXPECTS(id.valid(), "cannot place an invalid block id");
  // The id->position index (and the simulator's module table) are dense
  // arrays sized by the largest id, so wildly sparse ids would silently
  // allocate gigabytes. Scenario ids count from 1; reject outliers loudly.
  SB_EXPECTS(id.value <= kMaxBlockIdValue, "block id ", id,
             " exceeds the dense-id limit (", kMaxBlockIdValue,
             "); renumber the scenario's blocks");
  SB_EXPECTS(in_bounds(p), "place ", id, " out of bounds at ", p);
  SB_EXPECTS(!cells_[index(p)].valid(), "cell ", p, " already holds ",
             cells_[index(p)]);
  SB_EXPECTS(!contains(id), "block ", id, " is already on the surface");
  // Hint update before mutating: attaching to an occupied neighbor keeps a
  // connected configuration connected; landing detached decides the hint
  // outright (or, from a disconnected state, may bridge components).
  const bool attaches = occupied_neighbor_count(p) > 0;
  cells_[index(p)] = id;
  state_.set_occupied(p, true);
  state_.set_position(id, p);
  ++block_count_;
  ++row_counts_[static_cast<size_t>(p.y)];
  ++col_counts_[static_cast<size_t>(p.x)];
  journal_begin();
  journal_touch(p);
  if (block_count_ <= 1) {
    conn_ = ConnectivityHint::kConnected;
  } else if (conn_ == ConnectivityHint::kConnected) {
    conn_ = attaches ? ConnectivityHint::kConnected
                     : ConnectivityHint::kDisconnected;
  } else if (conn_ == ConnectivityHint::kDisconnected && attaches) {
    conn_ = ConnectivityHint::kUnknown;  // may have bridged components
  }
}

BlockId Grid::remove(Vec2 p) {
  SB_EXPECTS(in_bounds(p), "remove out of bounds at ", p);
  const BlockId id = cells_[index(p)];
  SB_EXPECTS(id.valid(), "cell ", p, " is empty");
  // Evaluate the local rule while the block is still present.
  ConnectivityHint next = ConnectivityHint::kUnknown;
  if (block_count_ <= 2) {
    next = ConnectivityHint::kConnected;  // <=1 block remains
  } else if (conn_ == ConnectivityHint::kConnected &&
             local_removal_check(*this, p) ==
                 LocalVerdict::kPreservesConnectivity) {
    next = ConnectivityHint::kConnected;
  }
  cells_[index(p)] = kInvalidBlock;
  state_.set_occupied(p, false);
  state_.clear_position(id);
  --block_count_;
  --row_counts_[static_cast<size_t>(p.y)];
  --col_counts_[static_cast<size_t>(p.x)];
  journal_begin();
  journal_touch(p);
  conn_ = next;
  return id;
}

void Grid::move(Vec2 from, Vec2 to) {
  move_simultaneously({{from, to}});
}

void Grid::move_simultaneously(
    const std::vector<std::pair<Vec2, Vec2>>& moves) {
  // Hint update, evaluated on the pre-move configuration: a batch whose net
  // effect is one vacated and one filled cell is decided by the local rule;
  // anything wider falls back to kUnknown (the next is_connected floods).
  ConnectivityHint next = ConnectivityHint::kUnknown;
  if (conn_ == ConnectivityHint::kConnected) {
    const NetMoveEffect net = net_move_effect(moves.data(), moves.size());
    if (net.vacated_count == 0 && net.landed_count == 0) {
      next = ConnectivityHint::kConnected;  // pure handover cycle
    } else if (block_count_ <= 1) {
      next = ConnectivityHint::kConnected;
    } else if (net.vacated_count == 1 && net.landed_count == 1) {
      switch (local_move_check(*this, net.vacated, net.landed)) {
        case LocalVerdict::kPreservesConnectivity:
          next = ConnectivityHint::kConnected;
          break;
        case LocalVerdict::kDisconnects:
          next = ConnectivityHint::kDisconnected;
          break;
        case LocalVerdict::kInconclusive:
          break;
      }
    }
  } else if (conn_ == ConnectivityHint::kDisconnected) {
    // Moving one block can reconnect a split configuration; stay unknown
    // only when that is possible (any move at all).
    next = moves.empty() ? ConnectivityHint::kDisconnected
                         : ConnectivityHint::kUnknown;
  }

  // Phase 1: lift all movers off the surface.
  std::vector<std::pair<BlockId, Vec2>> landing;
  landing.reserve(moves.size());
  journal_begin();
  for (const auto& [from, to] : moves) {
    SB_EXPECTS(in_bounds(from) && in_bounds(to), "move ", from, " -> ", to,
               " leaves the surface");
    const BlockId id = cells_[index(from)];
    SB_EXPECTS(id.valid(), "move source ", from, " is empty");
    cells_[index(from)] = kInvalidBlock;
    state_.set_occupied(from, false);
    --row_counts_[static_cast<size_t>(from.y)];
    --col_counts_[static_cast<size_t>(from.x)];
    journal_touch(from);
    landing.emplace_back(id, to);
  }
  // Phase 2: land them. After lifting, destinations must all be free; this
  // accepts handovers (A -> B while B -> C) and rejects true collisions.
  for (const auto& [id, to] : landing) {
    SB_EXPECTS(!cells_[index(to)].valid(), "move destination ", to,
               " is occupied after lifting movers");
    cells_[index(to)] = id;
    state_.set_occupied(to, true);
    state_.set_position(id, to);
    ++row_counts_[static_cast<size_t>(to.y)];
    ++col_counts_[static_cast<size_t>(to.x)];
    journal_touch(to);
  }
  conn_ = next;
}

std::array<BlockId, 4> Grid::neighbors_of(Vec2 p) const {
  std::array<BlockId, 4> out{};
  for (Direction d : all_directions()) {
    out[static_cast<size_t>(d)] = at(p + delta(d));
  }
  return out;
}

int Grid::occupied_neighbor_count(Vec2 p) const {
  int count = 0;
  for (Direction d : all_directions()) {
    if (occupied(p + delta(d))) ++count;
  }
  return count;
}

}  // namespace sb::lat
