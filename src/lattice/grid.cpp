#include "lattice/grid.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace sb::lat {

Grid::Grid(int32_t width, int32_t height) : width_(width), height_(height) {
  SB_EXPECTS(width > 0 && height > 0, "grid dimensions must be positive, got ",
             width, "x", height);
  cells_.assign(cell_count(), kInvalidBlock);
}

std::vector<BlockId> Grid::block_ids() const {
  std::vector<BlockId> ids;
  ids.reserve(block_count_);
  for (uint32_t v = 0; v < positions_.size(); ++v) {
    if (positions_[v] != kUnplaced) ids.push_back(BlockId{v});
  }
  return ids;
}

std::vector<std::pair<BlockId, Vec2>> Grid::blocks() const {
  std::vector<std::pair<BlockId, Vec2>> out;
  out.reserve(block_count_);
  for (uint32_t v = 0; v < positions_.size(); ++v) {
    if (positions_[v] != kUnplaced) out.emplace_back(BlockId{v}, positions_[v]);
  }
  return out;
}

Vec2 Grid::first_block_position() const {
  SB_EXPECTS(block_count_ > 0, "first_block_position on an empty grid");
  for (const Vec2 pos : positions_) {
    if (pos != kUnplaced) return pos;
  }
  SB_UNREACHABLE();
}

void Grid::set_position(BlockId id, Vec2 p) {
  if (id.value >= positions_.size()) {
    positions_.resize(static_cast<size_t>(id.value) + 1, kUnplaced);
  }
  positions_[id.value] = p;
}

void Grid::place(BlockId id, Vec2 p) {
  SB_EXPECTS(id.valid(), "cannot place an invalid block id");
  // The id->position index (and the simulator's module table) are dense
  // arrays sized by the largest id, so wildly sparse ids would silently
  // allocate gigabytes. Scenario ids count from 1; reject outliers loudly.
  SB_EXPECTS(id.value <= kMaxBlockIdValue, "block id ", id,
             " exceeds the dense-id limit (", kMaxBlockIdValue,
             "); renumber the scenario's blocks");
  SB_EXPECTS(in_bounds(p), "place ", id, " out of bounds at ", p);
  SB_EXPECTS(!cells_[index(p)].valid(), "cell ", p, " already holds ",
             cells_[index(p)]);
  SB_EXPECTS(!contains(id), "block ", id, " is already on the surface");
  cells_[index(p)] = id;
  set_position(id, p);
  ++block_count_;
}

BlockId Grid::remove(Vec2 p) {
  SB_EXPECTS(in_bounds(p), "remove out of bounds at ", p);
  const BlockId id = cells_[index(p)];
  SB_EXPECTS(id.valid(), "cell ", p, " is empty");
  cells_[index(p)] = kInvalidBlock;
  positions_[id.value] = kUnplaced;
  --block_count_;
  return id;
}

void Grid::move(Vec2 from, Vec2 to) {
  move_simultaneously({{from, to}});
}

void Grid::move_simultaneously(
    const std::vector<std::pair<Vec2, Vec2>>& moves) {
  // Phase 1: lift all movers off the surface.
  std::vector<std::pair<BlockId, Vec2>> landing;
  landing.reserve(moves.size());
  for (const auto& [from, to] : moves) {
    SB_EXPECTS(in_bounds(from) && in_bounds(to), "move ", from, " -> ", to,
               " leaves the surface");
    const BlockId id = cells_[index(from)];
    SB_EXPECTS(id.valid(), "move source ", from, " is empty");
    cells_[index(from)] = kInvalidBlock;
    landing.emplace_back(id, to);
  }
  // Phase 2: land them. After lifting, destinations must all be free; this
  // accepts handovers (A -> B while B -> C) and rejects true collisions.
  for (const auto& [id, to] : landing) {
    SB_EXPECTS(!cells_[index(to)].valid(), "move destination ", to,
               " is occupied after lifting movers");
    cells_[index(to)] = id;
    positions_[id.value] = to;
  }
}

std::array<BlockId, 4> Grid::neighbors_of(Vec2 p) const {
  std::array<BlockId, 4> out{};
  for (Direction d : all_directions()) {
    out[static_cast<size_t>(d)] = at(p + delta(d));
  }
  return out;
}

int Grid::occupied_neighbor_count(Vec2 p) const {
  int count = 0;
  for (Direction d : all_directions()) {
    if (occupied(p + delta(d))) ++count;
  }
  return count;
}

}  // namespace sb::lat
