#include "lattice/neighborhood.hpp"

#include "util/assert.hpp"

namespace sb::lat {

Neighborhood::Neighborhood(Vec2 center, int32_t radius, int32_t surface_width,
                           int32_t surface_height)
    : center_(center),
      radius_(radius),
      surface_width_(surface_width),
      surface_height_(surface_height) {
  SB_EXPECTS(radius >= 0, "sensing radius must be non-negative");
  const auto side = static_cast<size_t>(2 * radius + 1);
  presence_.assign(side * side, false);
}

size_t Neighborhood::index(Vec2 p) const {
  SB_EXPECTS(covers(p), "query outside the sensed window: ", p,
             " from center ", center_, " radius ", radius_);
  const auto side = static_cast<size_t>(2 * radius_ + 1);
  const auto row = static_cast<size_t>(p.y - center_.y + radius_);
  const auto col = static_cast<size_t>(p.x - center_.x + radius_);
  return row * side + col;
}

bool Neighborhood::occupied(Vec2 p) const {
  if (!in_bounds(p)) return false;
  return presence_[index(p)];
}

void Neighborhood::set_occupied(Vec2 p, bool value) {
  presence_[index(p)] = value;
}

}  // namespace sb::lat
