#pragma once
// Integer 2-D coordinates on the modular surface.
//
// Convention (paper §III): x is the column, 0 <= x < W, increasing to the
// east (right); y is the row, 0 <= y < H, increasing to the north (up).
// The paper's position components (B1, B2) map to (x, y).

#include <cstdint>
#include <cstdlib>
#include <functional>
#include <ostream>

namespace sb::lat {

struct Vec2 {
  int32_t x = 0;
  int32_t y = 0;

  constexpr Vec2() = default;
  constexpr Vec2(int32_t x_, int32_t y_) : x(x_), y(y_) {}

  friend constexpr bool operator==(Vec2 a, Vec2 b) {
    return a.x == b.x && a.y == b.y;
  }
  friend constexpr bool operator!=(Vec2 a, Vec2 b) { return !(a == b); }
  /// Lexicographic (y, then x): row-major order, useful for deterministic
  /// iteration.
  friend constexpr bool operator<(Vec2 a, Vec2 b) {
    return a.y != b.y ? a.y < b.y : a.x < b.x;
  }

  friend constexpr Vec2 operator+(Vec2 a, Vec2 b) {
    return {a.x + b.x, a.y + b.y};
  }
  friend constexpr Vec2 operator-(Vec2 a, Vec2 b) {
    return {a.x - b.x, a.y - b.y};
  }
  constexpr Vec2& operator+=(Vec2 other) {
    x += other.x;
    y += other.y;
    return *this;
  }

  friend std::ostream& operator<<(std::ostream& os, Vec2 v) {
    return os << '(' << v.x << ',' << v.y << ')';
  }
};

/// L1 distance — the "number of hops" metric of the paper's Eq (10).
[[nodiscard]] constexpr int32_t manhattan(Vec2 a, Vec2 b) {
  return std::abs(a.x - b.x) + std::abs(a.y - b.y);
}

/// Chebyshev (L-inf) distance; used for sensing-radius computations.
[[nodiscard]] constexpr int32_t chebyshev(Vec2 a, Vec2 b) {
  const int32_t dx = std::abs(a.x - b.x);
  const int32_t dy = std::abs(a.y - b.y);
  return dx > dy ? dx : dy;
}

/// True when the two cells share a side (a lateral contact in hardware).
[[nodiscard]] constexpr bool adjacent4(Vec2 a, Vec2 b) {
  return manhattan(a, b) == 1;
}

struct Vec2Hash {
  size_t operator()(Vec2 v) const {
    // 2-D -> 1-D mix; coordinates are small so collisions are irrelevant.
    const auto ux = static_cast<uint64_t>(static_cast<uint32_t>(v.x));
    const auto uy = static_cast<uint64_t>(static_cast<uint32_t>(v.y));
    uint64_t h = ux * 0x9E3779B97F4A7C15ULL ^ (uy + 0x7F4A7C15ULL);
    h ^= h >> 29;
    h *= 0xBF58476D1CE4E5B9ULL;
    h ^= h >> 32;
    return static_cast<size_t>(h);
  }
};

}  // namespace sb::lat
