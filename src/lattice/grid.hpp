#pragma once
// Occupancy grid for the modular surface (paper §III, Fig. 2).
//
// The grid tracks which block (if any) occupies each cell, plus the inverse
// map from block id to position. All mutations keep the two maps consistent.

#include <map>
#include <vector>

#include "lattice/block_id.hpp"
#include "lattice/direction.hpp"
#include "lattice/vec2.hpp"

namespace sb::lat {

class Grid {
 public:
  /// Creates an empty surface of `width` x `height` cells (paper: W, H).
  Grid(int32_t width, int32_t height);

  [[nodiscard]] int32_t width() const { return width_; }
  [[nodiscard]] int32_t height() const { return height_; }
  [[nodiscard]] size_t cell_count() const {
    return static_cast<size_t>(width_) * static_cast<size_t>(height_);
  }

  [[nodiscard]] bool in_bounds(Vec2 p) const {
    return p.x >= 0 && p.x < width_ && p.y >= 0 && p.y < height_;
  }

  /// True when the (in-bounds) cell holds a block. Out-of-bounds cells are
  /// reported as unoccupied: physically there is nothing beyond the surface.
  [[nodiscard]] bool occupied(Vec2 p) const {
    return in_bounds(p) && cells_[index(p)].valid();
  }

  /// Block at a cell; kInvalidBlock when empty or out of bounds.
  [[nodiscard]] BlockId at(Vec2 p) const {
    return in_bounds(p) ? cells_[index(p)] : kInvalidBlock;
  }

  [[nodiscard]] bool contains(BlockId id) const {
    return positions_.count(id) > 0;
  }

  /// Position of a block; the block must be on the surface.
  [[nodiscard]] Vec2 position_of(BlockId id) const;

  [[nodiscard]] size_t block_count() const { return positions_.size(); }

  /// Blocks in deterministic (id) order.
  [[nodiscard]] std::vector<BlockId> block_ids() const;

  /// (id, position) pairs in id order.
  [[nodiscard]] const std::map<BlockId, Vec2>& blocks() const {
    return positions_;
  }

  /// Places a new block. The cell must be empty and the id unused.
  void place(BlockId id, Vec2 p);

  /// Removes the block at `p` (must be occupied). Returns its id.
  BlockId remove(Vec2 p);

  /// Moves the block at `from` to the empty cell `to` (both in bounds).
  void move(Vec2 from, Vec2 to);

  /// Applies several moves as one atomic step (the simultaneous elementary
  /// moves of a carrying rule). Sources must be occupied, and after removing
  /// all sources every destination must be empty — this correctly validates
  /// handover chains where one block's source is another's destination.
  void move_simultaneously(const std::vector<std::pair<Vec2, Vec2>>& moves);

  /// Ids of the 4-neighbors of `p`, in N,E,S,W order; absent sides yield
  /// kInvalidBlock.
  [[nodiscard]] std::array<BlockId, 4> neighbors_of(Vec2 p) const;

  /// Number of occupied 4-neighbors (the "support" count).
  [[nodiscard]] int occupied_neighbor_count(Vec2 p) const;

  friend bool operator==(const Grid& a, const Grid& b) {
    return a.width_ == b.width_ && a.height_ == b.height_ &&
           a.cells_ == b.cells_;
  }

 private:
  [[nodiscard]] size_t index(Vec2 p) const {
    return static_cast<size_t>(p.y) * static_cast<size_t>(width_) +
           static_cast<size_t>(p.x);
  }

  int32_t width_;
  int32_t height_;
  std::vector<BlockId> cells_;
  std::map<BlockId, Vec2> positions_;
};

}  // namespace sb::lat
