#pragma once
// Occupancy grid for the modular surface (paper §III, Fig. 2).
//
// The grid tracks which block (if any) occupies each cell, plus the inverse
// map from block id to position. All mutations keep the two maps consistent.
// The inverse map is a dense array indexed by id so that the simulator's
// per-event lookups (position_of, contains) are O(1); ids are expected to be
// small and near-contiguous, as the scenario generators produce them.
//
// Beyond raw occupancy the grid maintains O(1)-updatable derived state that
// the motion-validation hot path consumes (see lattice/connectivity.hpp):
//   - per-row / per-column block counts (the single-line test of Remark 1
//     becomes O(#moves) instead of O(N));
//   - a cached connectivity verdict ("hint"), kept alive across mutations
//     whose local neighborhood proves they preserve connectivity, so the
//     scratch-buffer flood runs at most once per grid change;
//   - a bounded journal of the cells touched by the latest mutation plus a
//     monotonic version counter, which lets the MotionPlanner invalidate
//     only the cached decisions near a move;
//   - fast-path / slow-path counters for the connectivity checks (reported
//     through SessionResult and the BENCH_sim.json schema).

#include <array>
#include <utility>
#include <vector>

#include "lattice/block_id.hpp"
#include "lattice/direction.hpp"
#include "lattice/vec2.hpp"
#include "lattice/world_state.hpp"
#include "util/assert.hpp"

namespace sb::lat {

/// Cached connectivity verdict. kConnected/kDisconnected are authoritative;
/// kUnknown means the next is_connected() call must flood.
enum class ConnectivityHint : uint8_t { kUnknown, kConnected, kDisconnected };

/// Counters for the two tiers of the connectivity oracle: probes answered
/// by the O(1) local-neighborhood rule vs. full scratch-buffer floods.
struct ConnectivityStats {
  uint64_t fast_path_hits = 0;
  uint64_t slow_path_floods = 0;

  /// Fraction of probes answered without a flood (1.0 when nothing ran).
  [[nodiscard]] double fast_path_rate() const {
    const uint64_t total = fast_path_hits + slow_path_floods;
    return total == 0 ? 1.0
                      : static_cast<double>(fast_path_hits) /
                            static_cast<double>(total);
  }

  ConnectivityStats& operator+=(const ConnectivityStats& other) {
    fast_path_hits += other.fast_path_hits;
    slow_path_floods += other.slow_path_floods;
    return *this;
  }
};

/// Thread-scoped stand-in for the grid's connectivity verdict cache and
/// oracle counters, installed by the sharded simulator while shard workers
/// probe one frozen grid concurrently (sim/simulator.hpp). While installed
/// on a thread, is_connected() and friends read and write this view instead
/// of the shared grid fields, so parallel probes never race; the simulator
/// folds the counters back into the grid at barriers. `version` records the
/// grid mutation the cached `hint` was computed against.
struct ConnectivityScratchView {
  ConnectivityStats stats;
  ConnectivityHint hint = ConnectivityHint::kUnknown;
  uint64_t version = UINT64_MAX;
};

class Grid {
 public:
  /// Creates an empty surface of `width` x `height` cells (paper: W, H).
  Grid(int32_t width, int32_t height);

  [[nodiscard]] int32_t width() const { return width_; }
  [[nodiscard]] int32_t height() const { return height_; }
  [[nodiscard]] size_t cell_count() const {
    return static_cast<size_t>(width_) * static_cast<size_t>(height_);
  }

  [[nodiscard]] bool in_bounds(Vec2 p) const {
    return p.x >= 0 && p.x < width_ && p.y >= 0 && p.y < height_;
  }

  /// True when the (in-bounds) cell holds a block. Out-of-bounds cells are
  /// reported as unoccupied: physically there is nothing beyond the surface.
  // deprecated: use WorldView::occupied outside lattice/ and sim/
  [[nodiscard]] bool occupied(Vec2 p) const {
    return in_bounds(p) && cells_[index(p)].valid();
  }

  /// Block at a cell; kInvalidBlock when empty or out of bounds.
  // deprecated: use WorldView::at outside lattice/ and sim/
  [[nodiscard]] BlockId at(Vec2 p) const {
    return in_bounds(p) ? cells_[index(p)] : kInvalidBlock;
  }

  /// Row-major index of an in-bounds cell; the flood scratch buffers in
  /// lattice/connectivity.cpp address cells by this index.
  [[nodiscard]] size_t cell_index(Vec2 p) const {
    SB_EXPECTS(in_bounds(p), "cell_index out of bounds at ", p);
    return index(p);
  }

  /// Occupancy by raw cell index (no bounds re-check).
  [[nodiscard]] bool occupied_index(size_t cell) const {
    return cells_[cell].valid();
  }

  // deprecated: use WorldView::contains outside lattice/ and sim/
  [[nodiscard]] bool contains(BlockId id) const {
    return state_.has_position(id);
  }

  /// Position of a block; the block must be on the surface. O(1).
  // deprecated: use WorldView::position_of outside lattice/ and sim/
  [[nodiscard]] Vec2 position_of(BlockId id) const {
    SB_EXPECTS(contains(id), "block ", id, " is not on the surface");
    return state_.position(id);
  }

  /// The SoA column store backing this grid (positions, occupancy bytes,
  /// module tags/epochs/pending-move bits). Read it through lat::WorldView;
  /// the mutable overload exists for the simulator's column writers only.
  [[nodiscard]] const WorldState& state() const { return state_; }
  [[nodiscard]] WorldState& mutable_state() { return state_; }

  [[nodiscard]] size_t block_count() const { return block_count_; }

  /// Number of blocks currently in row y / column x. O(1).
  [[nodiscard]] size_t blocks_in_row(int32_t y) const {
    return row_counts_[static_cast<size_t>(y)];
  }
  [[nodiscard]] size_t blocks_in_column(int32_t x) const {
    return col_counts_[static_cast<size_t>(x)];
  }

  /// Blocks in deterministic (id) order.
  // deprecated: use WorldView::block_ids outside lattice/ and sim/
  [[nodiscard]] std::vector<BlockId> block_ids() const;

  /// Snapshot of (id, position) pairs in id order. Built on demand — O(max
  /// id); fine for setup, rendering, and connectivity scans, not for
  /// per-event paths (use position_of).
  // deprecated: use WorldView::blocks outside lattice/ and sim/
  [[nodiscard]] std::vector<std::pair<BlockId, Vec2>> blocks() const;

  /// Position of the lowest-id block, without building the blocks()
  /// snapshot (flood-fill seeds on the connectivity hot path). The grid
  /// must be non-empty.
  [[nodiscard]] Vec2 first_block_position() const;

  /// Largest accepted id value: the id->position index is dense, so ids
  /// must be reasonably small (scenario generators count from 1). 2^26 ids
  /// bound the index at 512 MB — far above the paper's 2M-module scale but
  /// a loud error instead of a silent multi-gigabyte allocation.
  static constexpr uint32_t kMaxBlockIdValue = (1u << 26) - 1;

  /// Places a new block. The cell must be empty and the id unused.
  void place(BlockId id, Vec2 p);

  /// Removes the block at `p` (must be occupied). Returns its id.
  BlockId remove(Vec2 p);

  /// Moves the block at `from` to the empty cell `to` (both in bounds).
  void move(Vec2 from, Vec2 to);

  /// Applies several moves as one atomic step (the simultaneous elementary
  /// moves of a carrying rule). Sources must be occupied, and after removing
  /// all sources every destination must be empty — this correctly validates
  /// handover chains where one block's source is another's destination.
  void move_simultaneously(const std::vector<std::pair<Vec2, Vec2>>& moves);

  /// Ids of the 4-neighbors of `p`, in N,E,S,W order; absent sides yield
  /// kInvalidBlock.
  // deprecated: use WorldView::neighbors outside lattice/ and sim/
  [[nodiscard]] std::array<BlockId, 4> neighbors_of(Vec2 p) const;

  /// Number of occupied 4-neighbors (the "support" count).
  // deprecated: use WorldView::occupied_neighbor_count outside lattice/ and sim/
  [[nodiscard]] int occupied_neighbor_count(Vec2 p) const;

  // -- mutation journal -----------------------------------------------------

  /// Monotonic counter bumped by every mutation (place/remove/move call).
  [[nodiscard]] uint64_t version() const { return version_; }

  /// Cells touched by the most recent mutation (sources and destinations),
  /// valid only while last_change_version() == version(). When the latest
  /// mutation touched more cells than the journal holds,
  /// last_change_overflowed() is set and consumers must treat the whole
  /// grid as changed.
  [[nodiscard]] const Vec2* last_change_cells() const {
    return last_change_.data();
  }
  [[nodiscard]] size_t last_change_count() const { return last_change_count_; }
  [[nodiscard]] bool last_change_overflowed() const {
    return last_change_overflow_;
  }
  [[nodiscard]] uint64_t last_change_version() const {
    return last_change_version_;
  }

  // -- connectivity cache (maintained with lattice/connectivity.cpp) --------

  [[nodiscard]] ConnectivityHint connectivity_hint() const {
    return tls_conn_view != nullptr ? tls_conn_view->hint : conn_;
  }
  /// Stores a flood verdict; called by is_connected() (hence const).
  void set_connectivity_hint(bool connected) const {
    const ConnectivityHint hint = connected ? ConnectivityHint::kConnected
                                            : ConnectivityHint::kDisconnected;
    if (tls_conn_view != nullptr) {
      tls_conn_view->hint = hint;
    } else {
      conn_ = hint;
    }
  }

  [[nodiscard]] const ConnectivityStats& connectivity_stats() const {
    return mutable_connectivity_stats();
  }
  /// Counter access for the connectivity oracle (bookkeeping only, so
  /// mutable through a const grid).
  [[nodiscard]] ConnectivityStats& mutable_connectivity_stats() const {
    return tls_conn_view != nullptr ? tls_conn_view->stats : conn_stats_;
  }

  /// The grid's own accumulated oracle counters, bypassing any installed
  /// scratch view (final reporting and barrier-side merging).
  [[nodiscard]] ConnectivityStats& own_connectivity_stats() const {
    return conn_stats_;
  }
  /// The grid's own verdict cache, bypassing any installed scratch view.
  [[nodiscard]] ConnectivityHint own_connectivity_hint() const { return conn_; }
  void set_own_connectivity_hint(ConnectivityHint hint) const { conn_ = hint; }

  /// Installs (or clears, with nullptr) this thread's connectivity scratch
  /// view. The sharded simulator brackets every parallel window with this;
  /// nothing else should touch it. Applies to every grid probed on the
  /// calling thread — shard workers only ever probe their world's grid.
  static void install_connectivity_view(ConnectivityScratchView* view) {
    tls_conn_view = view;
  }

  /// True when the calling thread has a scratch view installed (a parallel
  /// shard window). The batched mask oracle bypasses its shared row cache
  /// then and serves probes per-candidate (lattice/connectivity.cpp).
  [[nodiscard]] static bool thread_has_connectivity_view() {
    return tls_conn_view != nullptr;
  }

  friend bool operator==(const Grid& a, const Grid& b) {
    return a.width_ == b.width_ && a.height_ == b.height_ &&
           a.cells_ == b.cells_;
  }

 private:
  /// Journal capacity: a carrying rule moves two blocks (four cells); eight
  /// covers every rule in the library with headroom.
  static constexpr size_t kJournalCapacity = 8;

  [[nodiscard]] size_t index(Vec2 p) const {
    return static_cast<size_t>(p.y) * static_cast<size_t>(width_) +
           static_cast<size_t>(p.x);
  }

  /// Starts a new journal entry for one mutation call.
  void journal_begin() {
    ++version_;
    last_change_version_ = version_;
    last_change_count_ = 0;
    last_change_overflow_ = false;
  }
  void journal_touch(Vec2 p) {
    if (last_change_count_ < kJournalCapacity) {
      last_change_[last_change_count_++] = p;
    } else {
      last_change_overflow_ = true;
    }
  }

  int32_t width_;
  int32_t height_;
  std::vector<BlockId> cells_;
  /// SoA columns: positions by id, occupancy bytes, module tag/epoch/pending
  /// columns, and the batched removal-verdict rows. Occupancy and positions
  /// are kept in lock-step with cells_ by the mutations below.
  WorldState state_;
  size_t block_count_ = 0;
  /// Blocks per row / column, kept in lock-step with cells_.
  std::vector<size_t> row_counts_;
  std::vector<size_t> col_counts_;

  uint64_t version_ = 0;
  uint64_t last_change_version_ = 0;
  std::array<Vec2, kJournalCapacity> last_change_{};
  size_t last_change_count_ = 0;
  bool last_change_overflow_ = false;

  /// Connectivity verdict cache + oracle counters; derived state only, so
  /// excluded from operator== and mutable through const grids.
  mutable ConnectivityHint conn_ = ConnectivityHint::kUnknown;
  mutable ConnectivityStats conn_stats_;

  /// Per-thread override for the verdict cache and counters; see
  /// ConnectivityScratchView.
  static thread_local ConnectivityScratchView* tls_conn_view;
};

}  // namespace sb::lat
