#pragma once
// Occupancy grid for the modular surface (paper §III, Fig. 2).
//
// The grid tracks which block (if any) occupies each cell, plus the inverse
// map from block id to position. All mutations keep the two maps consistent.
// The inverse map is a dense array indexed by id so that the simulator's
// per-event lookups (position_of, contains) are O(1); ids are expected to be
// small and near-contiguous, as the scenario generators produce them.

#include <utility>
#include <vector>

#include "lattice/block_id.hpp"
#include "lattice/direction.hpp"
#include "lattice/vec2.hpp"
#include "util/assert.hpp"

namespace sb::lat {

class Grid {
 public:
  /// Creates an empty surface of `width` x `height` cells (paper: W, H).
  Grid(int32_t width, int32_t height);

  [[nodiscard]] int32_t width() const { return width_; }
  [[nodiscard]] int32_t height() const { return height_; }
  [[nodiscard]] size_t cell_count() const {
    return static_cast<size_t>(width_) * static_cast<size_t>(height_);
  }

  [[nodiscard]] bool in_bounds(Vec2 p) const {
    return p.x >= 0 && p.x < width_ && p.y >= 0 && p.y < height_;
  }

  /// True when the (in-bounds) cell holds a block. Out-of-bounds cells are
  /// reported as unoccupied: physically there is nothing beyond the surface.
  [[nodiscard]] bool occupied(Vec2 p) const {
    return in_bounds(p) && cells_[index(p)].valid();
  }

  /// Block at a cell; kInvalidBlock when empty or out of bounds.
  [[nodiscard]] BlockId at(Vec2 p) const {
    return in_bounds(p) ? cells_[index(p)] : kInvalidBlock;
  }

  [[nodiscard]] bool contains(BlockId id) const {
    return id.valid() && id.value < positions_.size() &&
           positions_[id.value] != kUnplaced;
  }

  /// Position of a block; the block must be on the surface. O(1).
  [[nodiscard]] Vec2 position_of(BlockId id) const {
    SB_EXPECTS(contains(id), "block ", id, " is not on the surface");
    return positions_[id.value];
  }

  [[nodiscard]] size_t block_count() const { return block_count_; }

  /// Blocks in deterministic (id) order.
  [[nodiscard]] std::vector<BlockId> block_ids() const;

  /// Snapshot of (id, position) pairs in id order. Built on demand — O(max
  /// id); fine for setup, rendering, and connectivity scans, not for
  /// per-event paths (use position_of).
  [[nodiscard]] std::vector<std::pair<BlockId, Vec2>> blocks() const;

  /// Position of the lowest-id block, without building the blocks()
  /// snapshot (flood-fill seeds on the connectivity hot path). The grid
  /// must be non-empty.
  [[nodiscard]] Vec2 first_block_position() const;

  /// Largest accepted id value: the id->position index is dense, so ids
  /// must be reasonably small (scenario generators count from 1). 2^26 ids
  /// bound the index at 512 MB — far above the paper's 2M-module scale but
  /// a loud error instead of a silent multi-gigabyte allocation.
  static constexpr uint32_t kMaxBlockIdValue = (1u << 26) - 1;

  /// Places a new block. The cell must be empty and the id unused.
  void place(BlockId id, Vec2 p);

  /// Removes the block at `p` (must be occupied). Returns its id.
  BlockId remove(Vec2 p);

  /// Moves the block at `from` to the empty cell `to` (both in bounds).
  void move(Vec2 from, Vec2 to);

  /// Applies several moves as one atomic step (the simultaneous elementary
  /// moves of a carrying rule). Sources must be occupied, and after removing
  /// all sources every destination must be empty — this correctly validates
  /// handover chains where one block's source is another's destination.
  void move_simultaneously(const std::vector<std::pair<Vec2, Vec2>>& moves);

  /// Ids of the 4-neighbors of `p`, in N,E,S,W order; absent sides yield
  /// kInvalidBlock.
  [[nodiscard]] std::array<BlockId, 4> neighbors_of(Vec2 p) const;

  /// Number of occupied 4-neighbors (the "support" count).
  [[nodiscard]] int occupied_neighbor_count(Vec2 p) const;

  friend bool operator==(const Grid& a, const Grid& b) {
    return a.width_ == b.width_ && a.height_ == b.height_ &&
           a.cells_ == b.cells_;
  }

 private:
  /// Sentinel for "id not on the surface" in the dense position array.
  static constexpr Vec2 kUnplaced{INT32_MIN, INT32_MIN};

  [[nodiscard]] size_t index(Vec2 p) const {
    return static_cast<size_t>(p.y) * static_cast<size_t>(width_) +
           static_cast<size_t>(p.x);
  }

  void set_position(BlockId id, Vec2 p);

  int32_t width_;
  int32_t height_;
  std::vector<BlockId> cells_;
  /// positions_[id.value] = position, or kUnplaced; indexed by id.
  std::vector<Vec2> positions_;
  size_t block_count_ = 0;
};

}  // namespace sb::lat
