#pragma once
// Scenario = surface dimensions + input/output cells + initial block layout.
//
// Scenarios are stored in a small line-oriented text format:
//
//   # comment
//   name   fig10
//   size   6 12
//   input  1 0
//   output 1 11
//   block  2 1 0        <- id x y ; the block on the input cell is the Root
//   ...
//
// Generators for the paper's example (Figs 10-11) and for randomized
// experiment sweeps live here too.

#include <string>
#include <vector>

#include "lattice/grid.hpp"
#include "util/rng.hpp"

namespace sb::lat {

struct Scenario {
  std::string name = "unnamed";
  int32_t width = 0;
  int32_t height = 0;
  Vec2 input;
  Vec2 output;
  /// (id, position) pairs; ids must be unique, positions distinct.
  std::vector<std::pair<BlockId, Vec2>> blocks;

  /// Materializes the occupancy grid.
  [[nodiscard]] Grid to_grid() const;

  /// Id of the block initially on the input cell (the Root).
  [[nodiscard]] BlockId root_id() const;

  [[nodiscard]] size_t block_count() const { return blocks.size(); }
};

/// Checks the scenario against the paper's assumptions. Returns a list of
/// human-readable problems; empty means valid. Checked: bounds, distinct
/// ids/cells, a block on I, O initially free, connectivity (Assumption 1/2),
/// non-degenerate 2-D topology, and that enough blocks exist to tile the
/// shortest path (Lemma 1 needs N >= manhattan(I,O)+1).
[[nodiscard]] std::vector<std::string> validate(const Scenario& scenario);

/// Parses the text format. Throws std::runtime_error with a line number on
/// malformed input.
[[nodiscard]] Scenario parse_scenario(const std::string& text);

/// Loads a scenario file.
[[nodiscard]] Scenario load_scenario(const std::string& path);

/// Parses a sized scenario name "<prefix><digits>" (e.g. "tower64",
/// "blob10000") and returns the number, or -1 when `name` does not match
/// the prefix + digits shape.
[[nodiscard]] long parse_sized_scenario_name(const std::string& name,
                                             const char* prefix);

/// Resolves a scenario by CLI-style name — the one scenario vocabulary
/// shared by tools/sweep, examples/large_scale, and the benches:
///   tower<N>   Lemma-1 tower of N blocks (even N >= 4)
///   blob<N>    giant random blob, 64 <= N <= 10000000 (seeded by
///              `master_seed`)
///   rect<N>    giant block rectangle, 64 <= N <= 10000000
///   fig10      the paper's Figs 10-11 example
///   <path>     anything else is loaded as a .surf scenario file
/// Throws std::runtime_error with a usage-style message on bad names or
/// out-of-range sizes.
[[nodiscard]] Scenario resolve_scenario(const std::string& name,
                                        uint64_t master_seed = 0x5eedULL);

/// Serializes to the text format (round-trips through parse_scenario).
[[nodiscard]] std::string serialize_scenario(const Scenario& scenario);

// ---------------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------------

/// The twelve-block example of the paper's §V.D and Figs 10-11: I and O in
/// the same column, an 11-cell shortest path, twelve blocks initially
/// packed in a connected two-column blob around I; exactly one block ends
/// off-path (the paper's block #2).
[[nodiscard]] Scenario make_fig10_scenario();

/// Scalable version of the fig10 geometry for the complexity sweeps
/// (Remarks 2-4): two columns of `half_height` blocks (N = 2k total), with
/// O placed so the shortest path has exactly N - 1 cells - Lemma 1's
/// extremal case (one spare block). Completes deterministically under the
/// default configuration.
[[nodiscard]] Scenario make_tower_scenario(int32_t half_height);

/// Diagonal-I/O task for the canonical-monotone path extension: I sits at
/// the west end of a seeded row (the path's first leg), O at the top of a
/// column above the row's east end (the second leg). A corner tower -
/// partial column seed plus an east feeder lane - supplies the column
/// exactly as in the tower family. Requires PathShape::kCanonicalMonotone;
/// under the paper's aligned-only metric this scenario blocks.
///   leg_x       horizontal leg length in cells (>= 2), I=(1,1) to (leg_x,1)
///   leg_y       vertical leg height in cells (>= 3), up to O
///   column_seed initially occupied cells of the vertical leg (>= 2)
[[nodiscard]] Scenario make_lpath_scenario(int32_t leg_x, int32_t leg_y,
                                           int32_t column_seed);

/// A w x h rectangle of blocks whose south-west corner sits at `origin`.
[[nodiscard]] Scenario make_rectangle_scenario(int32_t surface_w,
                                               int32_t surface_h, Vec2 origin,
                                               int32_t w, int32_t h,
                                               Vec2 input, Vec2 output);

/// Parameters for random_blob_scenario().
struct BlobParams {
  int32_t surface_width = 0;
  int32_t surface_height = 0;
  Vec2 input;
  Vec2 output;
  /// Total number of blocks, including the Root; must cover the path
  /// (>= manhattan(input, output) + 1).
  int32_t block_count = 0;
  /// When true (default) the blob avoids cells aligned with O inside the
  /// I/O rectangle, so no block starts frozen on the future path.
  bool avoid_output_alignment = true;
  /// Probability of restricting each growth step to frontier cells with at
  /// least two occupied neighbours. Uniform growth (0.0) produces 1-high
  /// tendrils that the paper's motion rules physically cannot move (the
  /// reason Assumption 1 excludes line patterns); the default keeps blobs
  /// locally two-dimensional.
  double compactness = 0.85;
};

/// Grows a random connected blob from the input cell. Deterministic for a
/// given RNG state; the result always satisfies validate(). The frontier is
/// maintained incrementally, so generation is near-linear in block_count
/// and practical up to the 10^6-module scale.
[[nodiscard]] Scenario random_blob_scenario(const BlobParams& params,
                                            Rng& rng);

/// Convenience wrapper for the giant-scenario benches (docs/BENCHMARKS.md):
/// a random blob of `block_count` blocks on a self-sized square surface,
/// input near the south-west corner, output near the north-east. Requires
/// block_count >= 64. Deterministic for a given seed; named
/// "blob<block_count>".
[[nodiscard]] Scenario make_giant_blob_scenario(int32_t block_count,
                                                uint64_t seed);

/// Giant-rectangle companion: a near-square w x h block rectangle of about
/// `block_count` blocks (rounded to w*h) on a self-sized surface, input at
/// the rectangle's south-west corner, output two cells beyond its
/// north-east corner. Requires block_count >= 64; named
/// "rect<actual_count>".
[[nodiscard]] Scenario make_giant_rect_scenario(int32_t block_count);

}  // namespace sb::lat
