#include "lattice/world_view.hpp"

#include "lattice/connectivity.hpp"

namespace sb::lat {

bool WorldView::connected() const { return is_connected(*grid_); }

bool WorldView::connected_after_moves(const std::pair<Vec2, Vec2>* moves,
                                      size_t move_count) const {
  return lat::connected_after_moves(*grid_, moves, move_count);
}

bool WorldView::connected_after_moves(
    const std::vector<std::pair<Vec2, Vec2>>& moves) const {
  return lat::connected_after_moves(*grid_, moves.data(), moves.size());
}

bool WorldView::single_line() const { return is_single_line(*grid_); }

bool WorldView::single_line_after_moves(const std::pair<Vec2, Vec2>* moves,
                                        size_t move_count) const {
  return lat::single_line_after_moves(*grid_, moves, move_count);
}

bool WorldView::single_line_after_moves(
    const std::vector<std::pair<Vec2, Vec2>>& moves) const {
  return lat::single_line_after_moves(*grid_, moves.data(), moves.size());
}

bool WorldView::connected_ground_truth() const {
  return is_connected_ground_truth(*grid_);
}

}  // namespace sb::lat
