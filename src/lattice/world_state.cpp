#include "lattice/world_state.hpp"

namespace sb::lat {

WorldState::WorldState(int32_t width, int32_t height)
    : width_(width), height_(height) {
  SB_EXPECTS(width > 0 && height > 0,
             "world dimensions must be positive, got ", width, "x", height);
  occ_.assign(
      static_cast<size_t>(width_ + 2) * static_cast<size_t>(height_ + 2), 0);
  removal_safe_.assign(
      static_cast<size_t>(width_) * static_cast<size_t>(height_), 0);
  removal_row_version_.assign(static_cast<size_t>(height_), UINT64_MAX);
}

void WorldState::ensure_id(BlockId id) {
  SB_EXPECTS(id.valid(), "invalid block id in a WorldState column write");
  if (id.value < x_.size()) return;
  const size_t n = static_cast<size_t>(id.value) + 1;
  x_.resize(n, kUnplacedCoord);
  y_.resize(n, kUnplacedCoord);
  tag_.resize(n, static_cast<uint8_t>(ModuleTag::kUnregistered));
  epoch_.resize(n, 0);
  pending_.resize(n, 0);
}

size_t WorldState::pending_move_count() const {
  size_t count = 0;
  for (const uint8_t bit : pending_) count += bit;
  return count;
}

}  // namespace sb::lat
