#pragma once
// The I/O rectangle and oriented path graph of paper §III.
//
// The paper considers the rectangle bounded by the input I and output O; Br
// is the set of grid nodes inside it and L the set of links oriented from I
// toward O, giving the oriented graph G = (Br, L) that contains every
// shortest path between I and O.

#include <optional>
#include <vector>

#include "lattice/grid.hpp"

namespace sb::lat {

/// Axis-aligned inclusive rectangle.
struct Rect {
  Vec2 lo;  // minimum x and y
  Vec2 hi;  // maximum x and y

  [[nodiscard]] constexpr bool contains(Vec2 p) const {
    return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y;
  }
  [[nodiscard]] constexpr int32_t width() const { return hi.x - lo.x + 1; }
  [[nodiscard]] constexpr int32_t height() const { return hi.y - lo.y + 1; }
};

/// Rectangle bounded by I and O (the node set Br).
[[nodiscard]] constexpr Rect bounding_rect(Vec2 input, Vec2 output) {
  return Rect{{input.x < output.x ? input.x : output.x,
               input.y < output.y ? input.y : output.y},
              {input.x > output.x ? input.x : output.x,
               input.y > output.y ? input.y : output.y}};
}

/// The one or two axis directions that lead from I toward O (e.g. "left-up"
/// in the paper's Fig 2). Empty when I == O.
[[nodiscard]] std::vector<Direction> oriented_directions(Vec2 input,
                                                         Vec2 output);

/// All links of the oriented graph G = (Br, L), as (from, to) pairs in
/// deterministic order. Every shortest I->O path uses only these links.
[[nodiscard]] std::vector<std::pair<Vec2, Vec2>> oriented_graph_links(
    Vec2 input, Vec2 output);

/// Number of cells on any shortest path between I and O (hops + 1).
[[nodiscard]] constexpr int32_t shortest_path_cells(Vec2 input, Vec2 output) {
  return manhattan(input, output) + 1;
}

/// Paper §III: the maximum length (in cells) of a shortest path on a W x H
/// surface is W + H - 1 (I and O at opposite corners).
[[nodiscard]] constexpr int32_t max_shortest_path_cells(int32_t width,
                                                        int32_t height) {
  return width + height - 1;
}

/// If a fully-occupied monotone (shortest) path from I to O exists on the
/// grid, returns its cells from I to O; otherwise nullopt. This is the
/// completion criterion for the reconfiguration: stray blocks elsewhere are
/// allowed.
[[nodiscard]] std::optional<std::vector<Vec2>> occupied_shortest_path(
    const Grid& grid, Vec2 input, Vec2 output);

/// Convenience wrapper: true when occupied_shortest_path() finds a path.
[[nodiscard]] bool path_complete(const Grid& grid, Vec2 input, Vec2 output);

}  // namespace sb::lat
