#pragma once
// Connectivity analysis of block configurations.
//
// Remark 1 of the paper prohibits motions that disconnect the set of blocks
// (a detached block can never move again). The world uses these checks as
// the physics oracle that rejects such motions.

#include <vector>

#include "lattice/grid.hpp"

namespace sb::lat {

/// True when all blocks form one 4-connected component (vacuously true for
/// zero or one block).
[[nodiscard]] bool is_connected(const Grid& grid);

/// True when the configuration would remain connected after atomically
/// applying `moves` (pairs of from -> to). Does not mutate the grid.
[[nodiscard]] bool connected_after_moves(
    const Grid& grid, const std::vector<std::pair<Vec2, Vec2>>& moves);

/// Positions of blocks whose removal would disconnect the configuration
/// (articulation points of the adjacency graph), in row-major order.
/// A single block is never an articulation point.
[[nodiscard]] std::vector<Vec2> articulation_points(const Grid& grid);

/// True when every block position lies on a single row or a single column.
/// Assumption 1 excludes such degenerate initial patterns (they cannot
/// support any motion).
[[nodiscard]] bool is_single_line(const Grid& grid);

/// Number of 4-connected components among the blocks.
[[nodiscard]] int component_count(const Grid& grid);

}  // namespace sb::lat
