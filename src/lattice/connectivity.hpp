#pragma once
// Connectivity analysis of block configurations.
//
// Remark 1 of the paper prohibits motions that disconnect the set of blocks
// (a detached block can never move again). The world uses these checks as
// the physics oracle that rejects such motions.
//
// The oracle is two-tiered so that per-candidate probes on the election hot
// path cost O(1) instead of O(N):
//
//   Fast path — an 8-neighborhood mask rule (standard in the sliding-square
//   literature): vacating a cell provably preserves connectivity when every
//   occupied orthogonal neighbor of the cell lies in a single cyclically
//   contiguous run of occupied ring cells (consecutive ring cells are
//   4-adjacent, so the run reroutes every path that used the vacated cell).
//   The rule answers most probes from a 256-entry lookup table.
//
//   Slow path — a generation-stamped scratch-buffer flood over the grid's
//   dense occupancy array: no hashing, no per-call allocation (the stamp
//   array is reused and never cleared). It runs only when the local rule is
//   inconclusive, and its verdict for the *current* configuration is cached
//   on the grid (ConnectivityHint), so repeated probes between mutations
//   share one flood.
//
// Both tiers are counted in Grid::connectivity_stats() and surfaced through
// SessionResult / BENCH_sim.json (docs/BENCHMARKS.md).

#include <vector>

#include "lattice/grid.hpp"

namespace sb::lat {

/// True when all blocks form one 4-connected component (vacuously true for
/// zero or one block). Uses the grid's cached hint; floods at most once per
/// grid mutation.
[[nodiscard]] bool is_connected(const Grid& grid);

/// Hint-free ground truth: always floods, never reads, writes, or counts
/// against the grid's connectivity cache. The invariant oracle
/// (src/check/oracle.hpp) uses this to cross-check cached verdicts — the
/// check is only meaningful because this path shares nothing with the
/// cache it audits.
[[nodiscard]] bool is_connected_ground_truth(const Grid& grid);

/// True when the configuration would remain connected after atomically
/// applying `moves` (pairs of from -> to). Does not mutate the grid.
/// The pointer overload lets hot callers pass a reused scratch buffer.
[[nodiscard]] bool connected_after_moves(const Grid& grid,
                                         const std::pair<Vec2, Vec2>* moves,
                                         size_t move_count);
[[nodiscard]] bool connected_after_moves(
    const Grid& grid, const std::vector<std::pair<Vec2, Vec2>>& moves);

/// Net effect of a hypothetical move batch after handover cancellation:
/// a source nobody lands on is truly vacated, a destination nobody leaves
/// is truly new. Shared by the oracle's fast path and the grid's hint
/// maintenance so the two can never diverge.
struct NetMoveEffect {
  size_t vacated_count = 0;
  size_t landed_count = 0;
  Vec2 vacated;  ///< meaningful when vacated_count == 1
  Vec2 landed;   ///< meaningful when landed_count == 1
};

/// Computes the net effect. When `vacated_out`/`landed_out` are non-null
/// they must have room for `count` entries and receive every net-vacated /
/// net-landed cell (the flood overlay needs the full lists).
[[nodiscard]] NetMoveEffect net_move_effect(
    const std::pair<Vec2, Vec2>* moves, size_t count,
    Vec2* vacated_out = nullptr, Vec2* landed_out = nullptr);

/// Verdict of the O(1) local-neighborhood tests.
enum class LocalVerdict : uint8_t {
  kPreservesConnectivity,  ///< proven safe (assuming the grid is connected)
  kDisconnects,            ///< proven to disconnect
  kInconclusive,           ///< needs the full flood
};

/// O(1) sufficient test that vacating `from` keeps the remaining blocks
/// connected, by the 8-neighborhood mask rule. Never returns kDisconnects
/// (a failed mask can still be globally safe). Precondition for trusting
/// kPreservesConnectivity: the grid is currently connected.
[[nodiscard]] LocalVerdict local_removal_check(const Grid& grid, Vec2 from);

/// O(1) test for the net effect of a move batch that vacates `from` and
/// fills `to` (`to` must be empty). kPreservesConnectivity /
/// kDisconnects are authoritative when the grid is currently connected;
/// kInconclusive needs the flood.
[[nodiscard]] LocalVerdict local_move_check(const Grid& grid, Vec2 from,
                                            Vec2 to);

/// Positions of blocks whose removal would disconnect the configuration
/// (articulation points of the adjacency graph), in row-major order.
/// A single block is never an articulation point.
[[nodiscard]] std::vector<Vec2> articulation_points(const Grid& grid);

/// True when every block position lies on a single row or a single column.
/// Assumption 1 excludes such degenerate initial patterns (they cannot
/// support any motion). O(W + H) via the grid's row/column counts.
[[nodiscard]] bool is_single_line(const Grid& grid);

/// True when all blocks would lie on one row or column after the moves.
/// O(#moves) via the grid's per-row/column block counts: a single-line
/// outcome must contain every move destination, so only the destinations'
/// row/column can qualify.
[[nodiscard]] bool single_line_after_moves(
    const Grid& grid, const std::pair<Vec2, Vec2>* moves, size_t move_count);
[[nodiscard]] bool single_line_after_moves(
    const Grid& grid, const std::vector<std::pair<Vec2, Vec2>>& moves);

// -- batched mask oracle ------------------------------------------------------
//
// The 256-entry removal mask is evaluated for whole grid rows at a time over
// the SoA occupancy bytes (three row pointers, one table lookup per cell —
// cache-linear and SIMD-friendly), and the verdict bytes are cached per row
// against the grid version. Sequential probes (local_removal_check /
// local_move_check) are then served from the cached rows. The per-candidate
// scalar path remains the implementation of record: it serves every probe
// made while a ConnectivityScratchView is installed (shards > 1 parallel
// windows, where the shared row cache would race) and every probe when the
// batch is disabled. Both paths read the same table over the same occupancy,
// so verdicts — and therefore traces — are identical by construction.

/// Whether this process batch-evaluates the mask over rows. Defaults to on;
/// the SB_CONN_BATCH=0 environment variable or the SB_SCALAR_ORACLE build
/// option forces the scalar per-candidate path everywhere.
[[nodiscard]] bool connectivity_batch_enabled();

/// Recomputes (if stale) and returns row `y` of removal-mask verdicts, one
/// byte per cell: 1 = vacating the cell provably preserves connectivity.
/// Exposed for the equivalence tests and the frontier sweep benchmark.
[[nodiscard]] const uint8_t* removal_verdict_row(const Grid& grid, int32_t y);

/// Batch-evaluates the removal mask for an arbitrary frontier of cells,
/// writing one verdict byte per cell (grouped row sweeps internally).
void batch_removal_verdicts(const Grid& grid, const Vec2* cells, size_t count,
                            uint8_t* out);

namespace detail {

// Row-sweep kernels behind removal_verdict_row, exposed so the equivalence
// tests can compare them cell for cell. Both assemble the same kRing bit
// layout from the same padded occupancy bytes; the wide kernel processes 16
// cells per step (SSSE3 table gathers) with a scalar tail, so its verdict
// bytes are identical to the scalar sweep by construction.

/// Reference sweep: one table lookup per cell.
void compute_removal_row_scalar(const Grid& grid, int32_t y, uint8_t* out);

/// SIMD sweep; falls back to the scalar sweep on hosts without SSSE3.
void compute_removal_row_wide(const Grid& grid, int32_t y, uint8_t* out);

/// Whether row recomputation takes the SIMD kernel: the CPU supports SSSE3
/// and SB_CONN_WIDE is not "0" (the env latch exists so perf triage can
/// isolate the kernel without rebuilding).
[[nodiscard]] bool connectivity_wide_enabled();

}  // namespace detail

/// Number of 4-connected components among the blocks.
[[nodiscard]] int component_count(const Grid& grid);

}  // namespace sb::lat
