#pragma once
// Struct-of-arrays storage for the hot per-module world state.
//
// The simulator historically kept this state scattered: positions in an
// AoS Vec2 array inside Grid, liveness as a bool on each sim::Module,
// epochs private to each block program, and pending motions only in the
// simulator's in-flight registry. WorldState gathers the hot columns into
// dense id-indexed arrays (position x/y, state tag, epoch, pending-move)
// plus a byte-per-cell occupancy image of the grid, so that scans touch
// cache-linear memory and the 8-neighborhood mask oracle can batch-evaluate
// whole rows with byte lookups (lattice/connectivity.cpp).
//
// WorldState is owned by Grid and mutated only through Grid's mutations and
// the simulator's column writers; everything else reads it through the
// lat::WorldView facade (lattice/world_view.hpp).

#include <cstdint>
#include <vector>

#include "lattice/block_id.hpp"
#include "lattice/vec2.hpp"
#include "util/assert.hpp"

namespace sb::lat {

/// Per-module lifecycle tag (the "state tag" column). kUnregistered means
/// no module program was ever attached to the id; kDead blocks stay on the
/// surface as inert obstacles (paper §VI fault model).
enum class ModuleTag : uint8_t { kUnregistered = 0, kAlive = 1, kDead = 2 };

class WorldState {
 public:
  /// Coordinate sentinel for "id not on the surface" in the position
  /// columns.
  static constexpr int32_t kUnplacedCoord = INT32_MIN;

  WorldState(int32_t width, int32_t height);

  [[nodiscard]] int32_t width() const { return width_; }
  [[nodiscard]] int32_t height() const { return height_; }

  // -- occupancy image -------------------------------------------------------
  //
  // One byte per cell (0 empty / 1 occupied), padded with one always-empty
  // ring so 8-neighborhood sweeps never branch on the surface edge. Kept in
  // lock-step with Grid's cell array by Grid's mutations.

  /// Bytes of padded row `y` starting at x = 0; valid offsets are
  /// [-1, width()] (the padding ring reads 0). Rows y = -1 and y = height()
  /// are valid padding rows.
  [[nodiscard]] const uint8_t* occupancy_row(int32_t y) const {
    return occ_.data() + pad_index(0, y);
  }
  [[nodiscard]] bool occupied(Vec2 p) const {
    return occ_[pad_index(p.x, p.y)] != 0;
  }
  void set_occupied(Vec2 p, bool value) {
    occ_[pad_index(p.x, p.y)] = value ? 1 : 0;
  }

  // -- position columns (SoA: x and y are separate arrays) -------------------

  [[nodiscard]] bool has_position(BlockId id) const {
    return id.valid() && id.value < x_.size() &&
           x_[id.value] != kUnplacedCoord;
  }
  [[nodiscard]] Vec2 position(BlockId id) const {
    return Vec2{x_[id.value], y_[id.value]};
  }
  [[nodiscard]] size_t id_capacity() const { return x_.size(); }

  void set_position(BlockId id, Vec2 p) {
    ensure_id(id);
    x_[id.value] = p.x;
    y_[id.value] = p.y;
  }
  void clear_position(BlockId id) {
    x_[id.value] = kUnplacedCoord;
    y_[id.value] = kUnplacedCoord;
  }

  // -- module columns (written by the simulator via Grid) --------------------

  [[nodiscard]] ModuleTag tag(BlockId id) const {
    return id.valid() && id.value < tag_.size()
               ? static_cast<ModuleTag>(tag_[id.value])
               : ModuleTag::kUnregistered;
  }
  void set_tag(BlockId id, ModuleTag tag) {
    ensure_id(id);
    tag_[id.value] = static_cast<uint8_t>(tag);
  }

  [[nodiscard]] uint32_t epoch(BlockId id) const {
    return id.valid() && id.value < epoch_.size() ? epoch_[id.value] : 0;
  }
  void set_epoch(BlockId id, uint32_t epoch) {
    ensure_id(id);
    epoch_[id.value] = epoch;
  }

  [[nodiscard]] bool move_pending(BlockId id) const {
    return id.valid() && id.value < pending_.size() &&
           pending_[id.value] != 0;
  }
  void set_move_pending(BlockId id, bool pending) {
    ensure_id(id);
    pending_[id.value] = pending ? 1 : 0;
  }
  /// Number of set pending-move bits (oracle cross-check; O(max id)).
  [[nodiscard]] size_t pending_move_count() const;

  // -- batched removal-verdict cache (lattice/connectivity.cpp) --------------
  //
  // Per-cell byte: 1 when vacating the cell provably preserves connectivity
  // by the 256-entry mask rule. Rows are recomputed lazily, one cache-linear
  // sweep per row per grid mutation; row_version records the grid version a
  // row was computed against. Derived state, so mutable through const.

  [[nodiscard]] uint8_t* removal_verdict_row(int32_t y) const {
    return removal_safe_.data() +
           static_cast<size_t>(y) * static_cast<size_t>(width_);
  }
  [[nodiscard]] uint64_t removal_row_version(int32_t y) const {
    return removal_row_version_[static_cast<size_t>(y)];
  }
  void set_removal_row_version(int32_t y, uint64_t version) const {
    removal_row_version_[static_cast<size_t>(y)] = version;
  }

 private:
  [[nodiscard]] size_t pad_index(int32_t x, int32_t y) const {
    return static_cast<size_t>(y + 1) * static_cast<size_t>(width_ + 2) +
           static_cast<size_t>(x + 1);
  }

  void ensure_id(BlockId id);

  int32_t width_;
  int32_t height_;
  /// Padded occupancy bytes, stride width()+2, rows height()+2.
  std::vector<uint8_t> occ_;
  /// Position columns, indexed by id; kUnplacedCoord = off the surface.
  std::vector<int32_t> x_;
  std::vector<int32_t> y_;
  /// Module columns, indexed by id, grown in lock-step with x_/y_.
  std::vector<uint8_t> tag_;
  std::vector<uint32_t> epoch_;
  std::vector<uint8_t> pending_;
  /// Removal-verdict rows; see removal_verdict_row().
  mutable std::vector<uint8_t> removal_safe_;
  mutable std::vector<uint64_t> removal_row_version_;
};

}  // namespace sb::lat
