#include "lattice/scenario.hpp"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>

#include "lattice/connectivity.hpp"
#include "lattice/region.hpp"
#include "util/assert.hpp"
#include "util/fmt.hpp"
#include "util/string_util.hpp"

namespace sb::lat {

Grid Scenario::to_grid() const {
  Grid grid(width, height);
  for (const auto& [id, pos] : blocks) grid.place(id, pos);
  return grid;
}

BlockId Scenario::root_id() const {
  for (const auto& [id, pos] : blocks) {
    if (pos == input) return id;
  }
  return kInvalidBlock;
}

std::vector<std::string> validate(const Scenario& s) {
  std::vector<std::string> issues;
  if (s.width <= 0 || s.height <= 0) {
    issues.push_back(fmt("surface dimensions must be positive, got {}x{}",
                         s.width, s.height));
    return issues;
  }
  const auto in_bounds = [&](Vec2 p) {
    return p.x >= 0 && p.x < s.width && p.y >= 0 && p.y < s.height;
  };
  if (!in_bounds(s.input)) {
    issues.push_back(fmt("input {} is outside the surface", s.input));
  }
  if (!in_bounds(s.output)) {
    issues.push_back(fmt("output {} is outside the surface", s.output));
  }
  if (s.input == s.output) {
    issues.push_back("input and output must differ");
  }
  if (!issues.empty()) return issues;

  std::set<BlockId> ids;
  std::set<Vec2> cells;
  for (const auto& [id, pos] : s.blocks) {
    if (!id.valid()) issues.push_back("invalid block id in scenario");
    if (!ids.insert(id).second) {
      issues.push_back(fmt("duplicate block id {}", id));
    }
    if (!in_bounds(pos)) {
      issues.push_back(fmt("block {} at {} is outside the surface", id, pos));
    } else if (!cells.insert(pos).second) {
      issues.push_back(fmt("two blocks share cell {}", pos));
    }
  }
  if (!issues.empty()) return issues;

  if (!cells.count(s.input)) {
    issues.push_back(
        "no block on the input cell (Assumption 2 requires the Root at I)");
  }
  if (cells.count(s.output)) {
    issues.push_back("the output cell must start empty");
  }
  // Lemma 1: a path of N-1 cells needs N blocks (one spare for the final
  // insertion); fewer than the path's cell count can never tile it.
  const int32_t path_cells = shortest_path_cells(s.input, s.output);
  if (static_cast<int32_t>(s.blocks.size()) < path_cells) {
    issues.push_back(fmt(
        "only {} blocks for a {}-cell shortest path; the path cannot be built",
        s.blocks.size(), path_cells));
  }

  const Grid grid = s.to_grid();
  if (!is_connected(grid)) {
    issues.push_back("blocks are not connected (Assumption 1)");
  }
  if (grid.block_count() > 1 && is_single_line(grid)) {
    issues.push_back(
        "blocks form a single row/column (excluded by Assumption 1: such a "
        "pattern cannot support any motion)");
  }
  return issues;
}

namespace {

[[noreturn]] void parse_fail(int line_no, const std::string& message) {
  throw std::runtime_error(
      fmt("scenario parse error at line {}: {}", line_no, message));
}

int32_t parse_coord(const std::string& token, int line_no) {
  const auto value = parse_int(token);
  if (!value) parse_fail(line_no, fmt("expected an integer, got '{}'", token));
  return static_cast<int32_t>(*value);
}

}  // namespace

Scenario parse_scenario(const std::string& text) {
  Scenario s;
  bool saw_size = false;
  bool saw_input = false;
  bool saw_output = false;
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string_view stripped = trim(line);
    if (stripped.empty() || stripped[0] == '#') continue;
    const std::vector<std::string> tokens = split_ws(stripped);
    const std::string& keyword = tokens[0];
    if (keyword == "name") {
      if (tokens.size() != 2) parse_fail(line_no, "name expects one token");
      s.name = tokens[1];
    } else if (keyword == "size") {
      if (tokens.size() != 3) parse_fail(line_no, "size expects W H");
      s.width = parse_coord(tokens[1], line_no);
      s.height = parse_coord(tokens[2], line_no);
      saw_size = true;
    } else if (keyword == "input") {
      if (tokens.size() != 3) parse_fail(line_no, "input expects x y");
      s.input = {parse_coord(tokens[1], line_no),
                 parse_coord(tokens[2], line_no)};
      saw_input = true;
    } else if (keyword == "output") {
      if (tokens.size() != 3) parse_fail(line_no, "output expects x y");
      s.output = {parse_coord(tokens[1], line_no),
                  parse_coord(tokens[2], line_no)};
      saw_output = true;
    } else if (keyword == "block") {
      if (tokens.size() != 4) parse_fail(line_no, "block expects id x y");
      const auto id = parse_int(tokens[1]);
      if (!id || *id < 0) parse_fail(line_no, "block id must be >= 0");
      s.blocks.emplace_back(
          BlockId{static_cast<uint32_t>(*id)},
          Vec2{parse_coord(tokens[2], line_no),
               parse_coord(tokens[3], line_no)});
    } else {
      parse_fail(line_no, fmt("unknown keyword '{}'", keyword));
    }
  }
  if (!saw_size) throw std::runtime_error("scenario is missing 'size'");
  if (!saw_input) throw std::runtime_error("scenario is missing 'input'");
  if (!saw_output) throw std::runtime_error("scenario is missing 'output'");
  return s;
}

Scenario load_scenario(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error(fmt("cannot open scenario '{}'", path));
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_scenario(buffer.str());
}

long parse_sized_scenario_name(const std::string& name, const char* prefix) {
  const size_t len = std::char_traits<char>::length(prefix);
  if (name.rfind(prefix, 0) != 0 || name.size() <= len ||
      name.find_first_not_of("0123456789", len) != std::string::npos) {
    return -1;
  }
  return std::strtol(name.c_str() + len, nullptr, 10);
}

Scenario resolve_scenario(const std::string& name, uint64_t master_seed) {
  if (const long blocks = parse_sized_scenario_name(name, "tower");
      blocks >= 0) {
    if (blocks >= 4 && blocks <= 10'000'000 && blocks % 2 == 0) {
      return make_tower_scenario(static_cast<int32_t>(blocks / 2));
    }
    throw std::runtime_error("tower<N> needs an even N >= 4, got '" + name +
                             "'");
  }
  if (const long blocks = parse_sized_scenario_name(name, "blob");
      blocks >= 0) {
    if (blocks >= 64 && blocks <= 10'000'000) {
      return make_giant_blob_scenario(static_cast<int32_t>(blocks),
                                      master_seed);
    }
    throw std::runtime_error("blob<N> needs 64 <= N <= 10000000, got '" +
                             name + "'");
  }
  if (const long blocks = parse_sized_scenario_name(name, "rect");
      blocks >= 0) {
    if (blocks >= 64 && blocks <= 10'000'000) {
      return make_giant_rect_scenario(static_cast<int32_t>(blocks));
    }
    throw std::runtime_error("rect<N> needs 64 <= N <= 10000000, got '" +
                             name + "'");
  }
  if (name == "fig10") return make_fig10_scenario();
  return load_scenario(name);  // throws with a message on a bad path
}

std::string serialize_scenario(const Scenario& s) {
  std::ostringstream os;
  os << "# smartblocks scenario\n";
  os << "name " << s.name << "\n";
  os << "size " << s.width << ' ' << s.height << "\n";
  os << "input " << s.input.x << ' ' << s.input.y << "\n";
  os << "output " << s.output.x << ' ' << s.output.y << "\n";
  for (const auto& [id, pos] : s.blocks) {
    os << "block " << id.value << ' ' << pos.x << ' ' << pos.y << "\n";
  }
  return os.str();
}

Scenario make_fig10_scenario() {
  // Twelve blocks, I and O in the same column, shortest path of 11 cells
  // (paper §V.D: "shortest path distance ... equal to eleven"); exactly one
  // spare block remains off-path at the end, as in Fig 11 (block #2 there).
  // The blob is two columns of six: the path-seed column on x=1 (Root at I)
  // and a feeder lane on x=2. Lane blocks climb along the growing path,
  // are carried over its top by the block behind them (the paper's
  // "block #5 carries block #9" steps), and slide in; the lane's last
  // block ends as the off-path spare that Lemma 1 requires. Ids are
  // assigned row-major through the initial 2x6 blob.
  Scenario s;
  s.name = "fig10";
  s.width = 6;
  s.height = 12;
  s.input = {1, 0};
  s.output = {1, 10};
  uint32_t next_id = 1;
  for (int32_t y = 0; y < 6; ++y) {
    for (int32_t x = 1; x < 3; ++x) {
      s.blocks.emplace_back(BlockId{next_id++}, Vec2{x, y});
    }
  }
  SB_ENSURES(validate(s).empty(), "fig10 scenario must be valid");
  return s;
}

Scenario make_tower_scenario(int32_t half_height) {
  SB_EXPECTS(half_height >= 2, "towers need at least two rows, got ",
             half_height);
  Scenario s;
  const int32_t k = half_height;
  s.name = fmt("tower{}", 2 * k);
  s.width = 5;
  s.height = 2 * k;
  s.input = {1, 0};
  s.output = {1, 2 * k - 2};
  uint32_t next_id = 1;
  for (int32_t y = 0; y < k; ++y) {
    for (int32_t x = 1; x < 3; ++x) {
      s.blocks.emplace_back(BlockId{next_id++}, Vec2{x, y});
    }
  }
  SB_ENSURES(validate(s).empty(), "tower scenario must be valid");
  return s;
}

Scenario make_lpath_scenario(int32_t leg_x, int32_t leg_y,
                             int32_t column_seed) {
  SB_EXPECTS(leg_x >= 2 && leg_y >= 3, "degenerate L-path legs");
  SB_EXPECTS(column_seed >= 2 && column_seed < leg_y,
             "column seed must cover part of the vertical leg");
  // The feeder lane may not stand taller than the seeded column: lane
  // blocks above the seed have no lateral support and could never move
  // (the same invariant the tower family satisfies by construction).
  SB_EXPECTS(2 * column_seed >= leg_y + 1,
             "column seed too short for the required feeder lane: need "
             "2*seed >= leg_y + 1");
  Scenario s;
  s.name = fmt("lpath{}x{}", leg_x, leg_y);
  const int32_t corner_x = leg_x;  // I=(1,1): leg cells x=1..leg_x at y=1
  s.width = corner_x + 3;          // room for the feeder lane + clearance
  s.height = leg_y + 2;
  s.input = {1, 1};
  s.output = {corner_x, leg_y};
  uint32_t id = 1;
  // First leg, fully seeded (these cells are frozen path from the start).
  for (int32_t x = 1; x <= corner_x; ++x) {
    s.blocks.emplace_back(BlockId{id++}, Vec2{x, 1});
  }
  // Partial column seed above the corner.
  for (int32_t y = 2; y <= column_seed; ++y) {
    s.blocks.emplace_back(BlockId{id++}, Vec2{corner_x, y});
  }
  // East feeder lane beside the column: enough for the remaining cells
  // plus the final-carry spare.
  const int32_t entries = leg_y - column_seed;
  for (int32_t j = 0; j <= entries; ++j) {
    s.blocks.emplace_back(BlockId{id++}, Vec2{corner_x + 1, 1 + j});
  }
  SB_ENSURES(validate(s).empty(), "lpath scenario must be valid");
  return s;
}

Scenario make_rectangle_scenario(int32_t surface_w, int32_t surface_h,
                                 Vec2 origin, int32_t w, int32_t h,
                                 Vec2 input, Vec2 output) {
  Scenario s;
  s.name = fmt("rect{}x{}", w, h);
  s.width = surface_w;
  s.height = surface_h;
  s.input = input;
  s.output = output;
  uint32_t next_id = 1;
  for (int32_t y = 0; y < h; ++y) {
    for (int32_t x = 0; x < w; ++x) {
      s.blocks.emplace_back(BlockId{next_id++},
                            Vec2{origin.x + x, origin.y + y});
    }
  }
  return s;
}

namespace {

Scenario try_random_blob(const BlobParams& params, Rng& rng) {
  Scenario s;
  s.name = "blob";
  s.width = params.surface_width;
  s.height = params.surface_height;
  s.input = params.input;
  s.output = params.output;

  const Rect rect = bounding_rect(params.input, params.output);
  const auto forbidden = [&](Vec2 p) {
    if (p == params.output) return true;
    if (!params.avoid_output_alignment || p == params.input) return false;
    return rect.contains(p) &&
           (p.x == params.output.x || p.y == params.output.y);
  };
  const auto in_bounds = [&](Vec2 p) {
    return p.x >= 0 && p.x < params.surface_width && p.y >= 0 &&
           p.y < params.surface_height;
  };

  // Dense state instead of hash sets, and an incrementally maintained
  // frontier instead of a full rescan per grown block: the rescan made the
  // generator O(N^2), which locked it out of the 10^5..10^6-block worlds
  // the giant benches drive. The frontier stays sorted so the RNG consumes
  // the exact same stream as the historical implementation (seeded blob
  // layouts are pinned by tests and ablation baselines).
  const size_t cell_count = static_cast<size_t>(params.surface_width) *
                            static_cast<size_t>(params.surface_height);
  const auto cell_index = [&](Vec2 p) {
    return static_cast<size_t>(p.y) *
               static_cast<size_t>(params.surface_width) +
           static_cast<size_t>(p.x);
  };
  std::vector<uint8_t> occupied(cell_count, 0);
  std::vector<uint8_t> in_frontier(cell_count, 0);
  std::vector<uint8_t> in_pockets(cell_count, 0);
  std::vector<uint8_t> support(cell_count, 0);  // occupied-neighbor counts
  occupied[cell_index(params.input)] = 1;
  size_t blob_size = 1;

  // Both pools stay sorted, so the picks consume the exact RNG stream the
  // historical full-rescan implementation did. Pockets — frontier cells
  // with >= 2 occupied neighbours, the compactness bias pool — are
  // maintained incrementally: a cell's support only grows, so it enters
  // the pocket pool exactly once, when its count reaches two.
  std::vector<Vec2> frontier;  // empty legal cells touching the blob
  std::vector<Vec2> pockets;
  const auto sorted_insert = [](std::vector<Vec2>& pool, Vec2 q) {
    pool.insert(std::lower_bound(pool.begin(), pool.end(), q), q);
  };
  const auto sorted_erase = [](std::vector<Vec2>& pool, Vec2 q) {
    pool.erase(std::lower_bound(pool.begin(), pool.end(), q));
  };
  const auto add_frontier_around = [&](Vec2 p) {
    for (Direction d : all_directions()) {
      const Vec2 q = p + delta(d);
      if (!in_bounds(q)) continue;
      const size_t qi = cell_index(q);
      if (occupied[qi] || in_frontier[qi] || forbidden(q)) continue;
      in_frontier[qi] = 1;
      uint8_t count = 0;
      for (Direction e : all_directions()) {
        const Vec2 r = q + delta(e);
        count += in_bounds(r) && occupied[cell_index(r)] ? 1 : 0;
      }
      support[qi] = count;
      sorted_insert(frontier, q);
      if (count >= 2) {
        in_pockets[qi] = 1;
        sorted_insert(pockets, q);
      }
    }
  };
  add_frontier_around(params.input);

  while (static_cast<int32_t>(blob_size) < params.block_count) {
    SB_ASSERT(!frontier.empty(),
              "random blob cannot grow to ", params.block_count,
              " blocks on a ", params.surface_width, "x",
              params.surface_height, " surface");
    // Compactness bias: prefer pockets so the blob stays locally
    // two-dimensional and hence physically mobile.
    const bool use_pockets =
        !pockets.empty() && rng.next_bool(params.compactness);
    const std::vector<Vec2>& pool = use_pockets ? pockets : frontier;
    const Vec2 pick = pool[rng.pick_index(pool)];
    const size_t pick_cell = cell_index(pick);
    occupied[pick_cell] = 1;
    in_frontier[pick_cell] = 0;
    sorted_erase(frontier, pick);
    if (in_pockets[pick_cell]) {
      in_pockets[pick_cell] = 0;
      sorted_erase(pockets, pick);
    }
    ++blob_size;
    // Existing frontier neighbours gained support; promote fresh pockets.
    for (Direction d : all_directions()) {
      const Vec2 q = pick + delta(d);
      if (!in_bounds(q)) continue;
      const size_t qi = cell_index(q);
      if (!in_frontier[qi]) continue;
      if (++support[qi] == 2) {
        in_pockets[qi] = 1;
        sorted_insert(pockets, q);
      }
    }
    add_frontier_around(pick);
  }

  // Ids are assigned in row-major (sorted) order over the grown blob.
  uint32_t next_id = 1;
  for (int32_t y = 0; y < params.surface_height; ++y) {
    for (int32_t x = 0; x < params.surface_width; ++x) {
      if (occupied[cell_index({x, y})]) {
        s.blocks.emplace_back(BlockId{next_id++}, Vec2{x, y});
      }
    }
  }
  return s;
}

}  // namespace

Scenario random_blob_scenario(const BlobParams& params, Rng& rng) {
  SB_EXPECTS(params.block_count >=
                 shortest_path_cells(params.input, params.output),
             "block_count must cover the shortest path");
  for (int attempt = 0; attempt < 100; ++attempt) {
    Scenario s = try_random_blob(params, rng);
    if (validate(s).empty()) return s;
  }
  SB_UNREACHABLE("random_blob_scenario failed to produce a valid scenario; "
                 "parameters are too constrained");
}

Scenario make_giant_blob_scenario(int32_t block_count, uint64_t seed) {
  SB_EXPECTS(block_count >= 64,
             "giant blobs start at 64 blocks; use random_blob_scenario "
             "with explicit parameters below that");
  // Square surface with ~2.5 empty-ish cells per block: room to grow a
  // compact blob plus working space around it.
  int32_t side = 8;
  while (static_cast<int64_t>(side) * side < static_cast<int64_t>(
             block_count) * 5 / 2) {
    ++side;
  }
  side += 8;
  BlobParams params;
  params.surface_width = side;
  params.surface_height = side;
  params.input = {2, 2};
  params.output = {side - 3, side - 3};
  params.block_count = block_count;
  Rng rng(seed);
  Scenario s = random_blob_scenario(params, rng);
  s.name = fmt("blob{}", block_count);
  return s;
}

Scenario make_giant_rect_scenario(int32_t block_count) {
  SB_EXPECTS(block_count >= 64,
             "giant rectangles start at 64 blocks; use "
             "make_rectangle_scenario with explicit parameters below that");
  int32_t w = 8;
  while (w * w < block_count) ++w;
  const int32_t h = (block_count + w - 1) / w;
  const Vec2 origin{1, 1};
  const Vec2 input = origin;                  // south-west corner block
  const Vec2 output{w + 2, h + 2};            // two cells past the corner
  Scenario s = make_rectangle_scenario(w + 4, h + 4, origin, w, h, input,
                                       output);
  s.name = fmt("rect{}", w * h);
  SB_ENSURES(validate(s).empty(), "giant rect scenario must be valid");
  return s;
}

}  // namespace sb::lat
