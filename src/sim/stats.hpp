#pragma once
// Simulator-level counters. In their own header so both the simulator and
// the per-shard execution state (sim/shard.hpp) can hold them by value.

#include <cstdint>

#include "util/flat_counts.hpp"

namespace sb::sim {

struct SimStats {
  uint64_t events_processed = 0;
  uint64_t messages_sent = 0;
  uint64_t messages_delivered = 0;
  uint64_t messages_dropped = 0;
  uint64_t motions_started = 0;
  uint64_t motions_completed = 0;
  /// Motion requests that were physically invalid by the time they arrived
  /// (the world changed between a block's decision and its election — only
  /// possible under external churn). The mover stays put and recovers at
  /// the protocol level (Module::on_motion_rejected).
  uint64_t motions_rejected = 0;
  /// Per message kind (Activate, Ack, ...); keys are static string tags.
  /// Flat sorted vectors: bumped once per event/message and copied per
  /// sweep run, where a node-based map is measurable overhead.
  util::FlatCounts messages_by_kind;
  util::FlatCounts events_by_kind;

  /// Adds every counter of `other` into this (scalar sums; the per-kind
  /// maps merge key-wise). The sharded run folds per-shard stats into the
  /// simulator totals with this.
  void accumulate(const SimStats& other) {
    events_processed += other.events_processed;
    messages_sent += other.messages_sent;
    messages_delivered += other.messages_delivered;
    messages_dropped += other.messages_dropped;
    motions_started += other.motions_started;
    motions_completed += other.motions_completed;
    motions_rejected += other.motions_rejected;
    messages_by_kind.merge(other.messages_by_kind);
    events_by_kind.merge(other.events_by_kind);
  }
};

}  // namespace sb::sim
