#pragma once
// Discrete events. The simulator is a classic event-driven core (the
// paper's VisibleSim "mixes a discrete-event core simulator with
// discrete-time functionalities").
//
// The hot path stores events *by value*: an EventRecord is a small tagged
// struct covering the four built-in behaviours (start, timer, message
// delivery, motion completion), so scheduling one costs no allocation and
// the pending-event heap is a contiguous array. Custom behaviours (tests,
// benches, fault injection) still subclass Event; those are carried through
// the same queue behind a pointer.

#include <cstdint>
#include <memory>
#include <string_view>

#include "lattice/block_id.hpp"
#include "motion/apply.hpp"
#include "msg/message.hpp"
#include "sim/time.hpp"

namespace sb::sim {

class Simulator;

/// Base class for user-defined events (EventKind::kExternal). The built-in
/// simulator behaviours do not subclass this — they are dispatched from the
/// EventRecord tag without a virtual call.
class Event {
 public:
  explicit Event(SimTime time) : time_(time) {}
  virtual ~Event() = default;

  Event(const Event&) = delete;
  Event& operator=(const Event&) = delete;

  [[nodiscard]] SimTime time() const { return time_; }

  /// Stable tag for statistics ("Seed", "FaultInjection", ...).
  [[nodiscard]] virtual std::string_view kind() const = 0;

  virtual void execute(Simulator& sim) = 0;

 private:
  SimTime time_;
};

enum class EventKind : uint8_t {
  kStart = 0,
  kTimer,
  kDelivery,
  kMotionComplete,
  kExternal,
};

/// A pending event, stored by value in the queue. Which fields are
/// meaningful depends on `kind`; the factory functions below are the only
/// intended constructors.
struct EventRecord {
  SimTime time = 0;
  /// Monotone insertion sequence; breaks timestamp ties deterministically
  /// (same seed -> identical execution order). Assigned by the queue.
  uint64_t seq = 0;
  EventKind kind = EventKind::kExternal;
  lat::BlockId a;  ///< start/timer target, delivery sender, motion subject
  lat::BlockId b;  ///< delivery receiver
  uint64_t tag = 0;             ///< timer tag
  motion::RuleApplication app;  ///< motion-complete payload
  msg::MessagePtr message;      ///< delivery payload
  std::unique_ptr<Event> external;

  EventRecord() = default;
  EventRecord(EventRecord&&) = default;
  EventRecord& operator=(EventRecord&&) = default;
  EventRecord(const EventRecord&) = delete;
  EventRecord& operator=(const EventRecord&) = delete;

  [[nodiscard]] static EventRecord start(SimTime t, lat::BlockId target) {
    EventRecord r;
    r.time = t;
    r.kind = EventKind::kStart;
    r.a = target;
    return r;
  }

  [[nodiscard]] static EventRecord timer(SimTime t, lat::BlockId target,
                                         uint64_t tag) {
    EventRecord r;
    r.time = t;
    r.kind = EventKind::kTimer;
    r.a = target;
    r.tag = tag;
    return r;
  }

  /// `payload_bytes` rides in the (otherwise unused) tag field so the
  /// receive side does not re-query the message's virtual payload_bytes().
  [[nodiscard]] static EventRecord delivery(SimTime t, lat::BlockId sender,
                                            lat::BlockId receiver,
                                            msg::MessagePtr m,
                                            size_t payload_bytes) {
    EventRecord r;
    r.time = t;
    r.kind = EventKind::kDelivery;
    r.a = sender;
    r.b = receiver;
    r.tag = payload_bytes;
    r.message = std::move(m);
    return r;
  }

  [[nodiscard]] static EventRecord motion_complete(
      SimTime t, lat::BlockId subject, const motion::RuleApplication& app) {
    EventRecord r;
    r.time = t;
    r.kind = EventKind::kMotionComplete;
    r.a = subject;
    r.app = app;
    return r;
  }

  [[nodiscard]] static EventRecord wrap(SimTime t,
                                        std::unique_ptr<Event> event) {
    EventRecord r;
    r.time = t;
    r.kind = EventKind::kExternal;
    r.external = std::move(event);
    return r;
  }

  /// Stable tag for statistics; external events report their own kind().
  [[nodiscard]] std::string_view kind_name() const {
    switch (kind) {
      case EventKind::kStart: return "Start";
      case EventKind::kTimer: return "Timer";
      case EventKind::kDelivery: return "Delivery";
      case EventKind::kMotionComplete: return "MotionComplete";
      case EventKind::kExternal: return external->kind();
    }
    return "?";
  }
};

/// Total order on events: by time, then insertion sequence.
[[nodiscard]] inline bool event_before(const EventRecord& a,
                                       const EventRecord& b) {
  if (a.time != b.time) return a.time < b.time;
  return a.seq < b.seq;
}

}  // namespace sb::sim
