#pragma once
// Discrete events. The simulator is a classic event-driven core (the
// paper's VisibleSim "mixes a discrete-event core simulator with
// discrete-time functionalities"); every behaviour — message delivery,
// timers, motion completion — is an Event subclass.

#include <cstdint>
#include <memory>
#include <string_view>

#include "sim/time.hpp"

namespace sb::sim {

class Simulator;

class Event {
 public:
  explicit Event(SimTime time) : time_(time) {}
  virtual ~Event() = default;

  Event(const Event&) = delete;
  Event& operator=(const Event&) = delete;

  [[nodiscard]] SimTime time() const { return time_; }

  /// Monotone insertion sequence; breaks timestamp ties deterministically
  /// (same seed -> identical execution order). Assigned by the queue.
  [[nodiscard]] uint64_t seq() const { return seq_; }
  void set_seq(uint64_t seq) { seq_ = seq; }

  /// Stable tag for statistics ("Delivery", "Timer", ...).
  [[nodiscard]] virtual std::string_view kind() const = 0;

  virtual void execute(Simulator& sim) = 0;

 private:
  SimTime time_;
  uint64_t seq_ = 0;
};

/// Total order on events: by time, then insertion sequence.
[[nodiscard]] inline bool event_before(const Event& a, const Event& b) {
  if (a.time() != b.time()) return a.time() < b.time();
  return a.seq() < b.seq();
}

}  // namespace sb::sim
