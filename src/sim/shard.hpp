#pragma once
// Per-shard execution state and the channel-driven engine of the sharded
// simulator.
//
// When SimConfig::shards > 1 the simulator partitions the surface
// (lattice/shard.hpp) and runs a conservative windowed schedule: each shard
// drains its own event queue for one lookahead window of simulated time,
// pushing cross-shard deliveries straight into the destination shard's
// inbound channel as it goes. Shards rendezvous only at window edges, where
// grid mutations and external events are applied sequentially; a resident
// worker set (ShardEngine) cycles integrate -> decide -> drain rounds over
// a lightweight sense-reversing barrier instead of forking and joining a
// coordinator every window.
//
// Determinism contract (docs/ARCHITECTURE.md "Sharded worlds"): every field
// here is either touched by exactly one worker during a window, or only by
// the barrier's serial section between windows — so the event trace depends
// on the shard count, never on the thread count.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "lattice/grid.hpp"
#include "obs/metrics.hpp"
#include "sim/event_queue.hpp"
#include "sim/stats.hpp"
#include "util/rng.hpp"

namespace sb::sim {

/// Wall-clock totals for the engine's round phases. fold/decide are the
/// serial sections (accrued by whichever worker ran them); integrate/drain
/// sum every worker's parallel loops; barrier_wait is worker time blocked
/// at a rendezvous with no serial work to run. barrier_wait_fraction is the
/// share of total worker time spent waiting — the *time* counterpart of the
/// event-count shard_imbalance metric (docs/OBSERVABILITY.md).
struct PhaseBreakdown {
  uint64_t fold_ns = 0;
  uint64_t integrate_ns = 0;
  uint64_t decide_ns = 0;
  uint64_t drain_ns = 0;
  uint64_t barrier_wait_ns = 0;
  /// Drained windows (rounds that reached the drain phase).
  uint64_t windows = 0;

  [[nodiscard]] uint64_t busy_ns() const {
    return fold_ns + integrate_ns + decide_ns + drain_ns;
  }
  [[nodiscard]] double barrier_wait_fraction() const {
    const double total =
        static_cast<double>(busy_ns()) + static_cast<double>(barrier_wait_ns);
    if (total <= 0.0) return 0.0;
    return static_cast<double>(barrier_wait_ns) / total;
  }
  void merge(const PhaseBreakdown& other) {
    fold_ns += other.fold_ns;
    integrate_ns += other.integrate_ns;
    decide_ns += other.decide_ns;
    drain_ns += other.drain_ns;
    barrier_wait_ns += other.barrier_wait_ns;
    windows += other.windows;
  }
};

/// Everything one shard owns. The owning worker mutates this freely during
/// its window drain; the inbound channel slots are each written by exactly
/// one producer shard per window and consumed by the owner in the
/// integrate phase of the next round.
struct ShardState {
  size_t index = 0;
  /// Pending events addressed to blocks inside this shard.
  std::unique_ptr<EventQueue> queue;
  /// Independent latency stream, forked from the master seed by shard
  /// index; consumed only while this shard drains, so draw order is
  /// deterministic.
  Rng rng{0};
  /// Local clock while draining a window (monotone across windows).
  SimTime now = 0;
  /// Time of the last event this shard processed.
  SimTime last_time = 0;
  /// Events processed in the current window; reset at the fold rendezvous.
  uint64_t window_events = 0;
  /// Cumulative events processed by this shard (reported per-shard).
  uint64_t total_events = 0;
  /// Per-shard counters, folded into the simulator totals when run()
  /// returns.
  SimStats stats;
  /// Per-shard connectivity verdict cache + oracle counters, installed as
  /// the thread's scratch view while this shard drains.
  lat::ConnectivityScratchView conn_view;
  /// Inbound message channel: one slot per producer shard. While shard
  /// `src` drains a window it appends cross-shard deliveries straight into
  /// `inbound[src]` of the destination — single producer per slot, no
  /// locks; the owner integrates all slots in producer order during the
  /// next round's parallel integrate phase. The window barrier is the
  /// happens-before edge between the producer's writes and the owner's
  /// reads.
  std::vector<std::vector<EventRecord>> inbound;
  /// Grid-mutating / external events scheduled this window (motion
  /// completions); merged into the sequential global queue at the fold.
  std::vector<EventRecord> pending_global;
  /// A module on this shard called halt(); honored at the fold.
  bool halt_requested = false;
};

/// Sense-reversing barrier for the engine's rendezvous points. arrive()
/// blocks until all `threads` participants arrive; the last arriver runs
/// the serial section before releasing the rest, so serial work happens
/// exactly once per rendezvous with no extra handoff. Waiters spin briefly
/// (windows are short), then yield, then park on the atomic (futex-backed)
/// so oversubscribed or single-core boxes do not burn their quantum.
class WindowBarrier {
 public:
  explicit WindowBarrier(uint32_t threads) : threads_(threads) {}

  WindowBarrier(const WindowBarrier&) = delete;
  WindowBarrier& operator=(const WindowBarrier&) = delete;

  [[nodiscard]] uint32_t threads() const { return threads_; }

  template <typename SerialFn>
  void arrive(SerialFn&& serial) {
    const uint32_t ticket = phase_.load(std::memory_order_relaxed);
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == threads_) {
      serial();
      arrived_.store(0, std::memory_order_relaxed);
      phase_.store(ticket + 1, std::memory_order_release);
      phase_.notify_all();
      return;
    }
    for (int spin = 0; spin < 1024; ++spin) {
      if (phase_.load(std::memory_order_acquire) != ticket) return;
      if (spin >= 64) std::this_thread::yield();
    }
    uint32_t seen = phase_.load(std::memory_order_acquire);
    while (seen == ticket) {
      phase_.wait(seen, std::memory_order_acquire);
      seen = phase_.load(std::memory_order_acquire);
    }
  }

 private:
  const uint32_t threads_;
  std::atomic<uint32_t> arrived_{0};
  /// Round counter; a changed phase releases the current rendezvous.
  std::atomic<uint32_t> phase_{0};
};

/// The channel-driven shard engine: a fixed set of resident workers that
/// own shards by stride (worker w owns shards w, w+T, ...). run() executes
/// rounds of
///
///   rendezvous[fold] -> integrate(owned) -> rendezvous[decide] ->
///   drain(owned, horizon)
///
/// until decide() stops the loop. The parallel phases touch only
/// worker-owned shards (plus single-producer channel slots); the two
/// rendezvous run their serial hooks in the last-arriving worker. Workers
/// park between run() calls; the caller always participates as worker 0,
/// and with one thread the loop runs inline with no spawned threads at
/// all.
class ShardEngine {
 public:
  struct Hooks {
    /// Serial: fold the just-drained window (counters, pending globals,
    /// connectivity hints). The first fold of a run() precedes any drain
    /// and must be a no-op on untouched state.
    std::function<void()> fold;
    /// Parallel: integrate one shard's inbound channel slots.
    std::function<void(size_t shard)> integrate;
    /// Serial: run due sequential events and pick the next window horizon.
    /// Returns false to stop the round loop.
    std::function<bool(SimTime* window_end)> decide;
    /// Parallel: drain one shard's queue up to `window_end`.
    std::function<void(size_t shard, SimTime window_end)> drain;
  };

  /// `threads` >= 1 total workers (threads - 1 are spawned and parked).
  ShardEngine(size_t threads, size_t shards);
  ~ShardEngine();

  ShardEngine(const ShardEngine&) = delete;
  ShardEngine& operator=(const ShardEngine&) = delete;

  [[nodiscard]] size_t threads() const { return threads_; }
  [[nodiscard]] size_t shards() const { return shards_; }

  /// Runs rounds until hooks.decide() returns false; the caller
  /// participates as worker 0 and the call returns only when every worker
  /// is parked again.
  void run(const Hooks& hooks);

  /// Phase totals summed over workers since the last reset. Only valid
  /// while the workers are parked (i.e. outside run()).
  [[nodiscard]] PhaseBreakdown phase_totals() const;
  /// Per-worker metric registries (per-phase duration histograms) merged
  /// into one snapshot. Only valid while the workers are parked.
  [[nodiscard]] obs::Registry merged_metrics() const;
  /// Zeroes phase totals and per-worker registries (after the simulator
  /// folds them into its own accumulators).
  void reset_observability();

 private:
  /// Per-worker observability state, cache-line separated: each worker is
  /// the only writer of its slot during a round; readers run while the
  /// workers are parked.
  struct alignas(64) WorkerObs {
    PhaseBreakdown phases;
    obs::Registry metrics;
  };

  void worker_main(size_t worker);
  void round_loop(size_t worker);

  const size_t threads_;
  const size_t shards_;
  WindowBarrier barrier_;

  /// Round decision, written only inside barrier serial sections and read
  /// by all workers after the release edge.
  SimTime window_end_ = 0;
  bool stop_ = false;
  const Hooks* hooks_ = nullptr;

  /// Resident-worker parking between run() calls.
  std::mutex mutex_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  uint64_t generation_ = 0;
  size_t active_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
  std::vector<WorkerObs> worker_obs_;
};

}  // namespace sb::sim
