#pragma once
// Per-shard execution state and the worker pool of the sharded simulator.
//
// When SimConfig::shards > 1 the simulator partitions the surface into
// column stripes (lattice/shard.hpp) and runs a conservative windowed
// schedule: each shard drains its own event queue for one lookahead window
// of simulated time, all shards synchronize at the window edge, and only
// there do cross-shard messages, grid mutations, and external events move
// between shards. ShardState is everything one stripe owns; ShardWorkerPool
// fans the per-window drains out over a fixed set of threads.
//
// Determinism contract (docs/ARCHITECTURE.md "Sharded worlds"): every field
// here is either touched by exactly one worker during a window, or only by
// the coordinating thread between windows — so the event trace depends on
// the shard count, never on the thread count.

#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "lattice/grid.hpp"
#include "sim/event_queue.hpp"
#include "sim/stats.hpp"
#include "util/rng.hpp"

namespace sb::sim {

/// Everything one column-stripe shard owns. The owning worker mutates this
/// freely during its window drain; the coordinator reads and resets the
/// exchange buffers at barriers.
struct ShardState {
  size_t index = 0;
  /// Pending events addressed to blocks inside this stripe.
  std::unique_ptr<EventQueue> queue;
  /// Independent latency stream, forked from the master seed by shard
  /// index; consumed only while this shard drains, so draw order is
  /// deterministic.
  Rng rng{0};
  /// Local clock while draining a window (monotone across windows).
  SimTime now = 0;
  /// Time of the last event this shard processed.
  SimTime last_time = 0;
  /// Events processed in the current window; reset by the coordinator.
  uint64_t window_events = 0;
  /// Cumulative events processed by this shard (reported per-shard).
  uint64_t total_events = 0;
  /// Per-shard counters, folded into the simulator totals when run()
  /// returns.
  SimStats stats;
  /// Per-shard connectivity verdict cache + oracle counters, installed as
  /// the thread's scratch view while this shard drains.
  lat::ConnectivityScratchView conn_view;
  /// Cross-shard deliveries produced this window: (destination shard,
  /// record). Routed into destination queues at the barrier, in shard
  /// order.
  std::vector<std::pair<size_t, EventRecord>> outbox;
  /// Grid-mutating / external events scheduled this window (motion
  /// completions); merged into the sequential global queue at the barrier.
  std::vector<EventRecord> pending_global;
  /// A module on this shard called halt(); honored at the barrier.
  bool halt_requested = false;
};

/// Persistent pool running `fn(job)` for jobs 0..jobs-1 across a fixed
/// thread count, with the caller participating as the last worker. run()
/// is a full barrier: it returns only when every job finished. Jobs are
/// assigned by stride (worker w takes jobs w, w+T, ...), so the assignment
/// is static and scheduling-independent.
class ShardWorkerPool {
 public:
  /// `threads` >= 1 total workers (threads - 1 are spawned).
  explicit ShardWorkerPool(size_t threads);
  ~ShardWorkerPool();

  ShardWorkerPool(const ShardWorkerPool&) = delete;
  ShardWorkerPool& operator=(const ShardWorkerPool&) = delete;

  [[nodiscard]] size_t threads() const { return threads_; }

  /// Runs fn(0..jobs-1) across the pool and blocks until all complete.
  void run(size_t jobs, const std::function<void(size_t)>& fn);

 private:
  void worker_main(size_t worker);

  size_t threads_;
  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  const std::function<void(size_t)>* job_ = nullptr;
  size_t jobs_ = 0;
  uint64_t generation_ = 0;
  size_t running_ = 0;
  bool stop_ = false;
};

}  // namespace sb::sim
