#include "sim/simulator.hpp"

#include <algorithm>
#include <set>

#include "obs/trace.hpp"
#include "util/log.hpp"

namespace sb::sim {

std::string_view to_string(StopReason reason) {
  switch (reason) {
    case StopReason::kQueueEmpty: return "queue-empty";
    case StopReason::kEventLimit: return "event-limit";
    case StopReason::kTimeLimit: return "time-limit";
    case StopReason::kHalted: return "halted";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Module services (need the full Simulator definition)
// ---------------------------------------------------------------------------

Simulator& Module::sim() const {
  SB_EXPECTS(host_ != nullptr, "module ", id_, " is not registered");
  return *host_;
}

lat::Vec2 Module::position() const {
  return sim().world().grid().position_of(id_);
}

bool Module::alive() const {
  return sim().world().grid().state().tag(id_) == lat::ModuleTag::kAlive;
}

void Module::send(lat::Direction side, msg::MessagePtr message) {
  sim().send_from(*this, side, std::move(message));
}

void Module::broadcast(const msg::Message& message,
                       std::optional<lat::Direction> skip) {
  for (lat::Direction d : lat::all_directions()) {
    if (skip && *skip == d) continue;
    if (neighbors_.neighbor(d).valid()) {
      sim().send_from(*this, d, message.clone());
    }
  }
}

void Module::set_timer(Ticks delay, uint64_t tag) {
  sim().timer_for(*this, delay, tag);
}

void Module::start_motion(const motion::RuleApplication& app) {
  sim().start_motion_for(*this, app);
}

lat::Neighborhood Module::sense() const {
  return sim().world().sense(position());
}

// ---------------------------------------------------------------------------
// Simulator
// ---------------------------------------------------------------------------

thread_local ShardState* Simulator::tls_exec_ = nullptr;

Simulator::Simulator(World world, SimConfig config)
    : world_(std::move(world)),
      config_(config),
      rng_(config.seed),
      queue_(make_event_queue(config.queue)) {
  if (config_.shards > 1) init_shards();
}

Rng& Simulator::active_rng(const Module& sender) {
  if (!sharded_) return rng_;
  ShardState* ctx = tls_exec_;
  if (ctx != nullptr) return ctx->rng;
  return shards_[shard_for(world_.grid().position_of(sender.id()))]->rng;
}

Module& Simulator::add_module(std::unique_ptr<Module> module) {
  SB_EXPECTS(module != nullptr);
  const lat::BlockId id = module->id();
  SB_EXPECTS(world_.grid().contains(id), "block ", id,
             " must be placed on the grid before registering its module");
  SB_EXPECTS(find_module(id) == nullptr, "module for ", id,
             " is already registered");
  module->host_ = this;
  // Initialize the neighbor table from the physical contacts.
  const lat::Vec2 pos = world_.grid().position_of(id);
  for (lat::Direction d : lat::all_directions()) {
    module->neighbors_.set_neighbor(d, world_.grid().at(pos + delta(d)));
  }
  if (id.value >= modules_.size()) {
    modules_.resize(static_cast<size_t>(id.value) + 1);
  }
  auto& slot = modules_[id.value];
  slot = std::move(module);
  ++module_count_;
  world_.grid().mutable_state().set_tag(id, lat::ModuleTag::kAlive);
  return *slot;
}

void Simulator::kill_module(lat::BlockId id) {
  Module* module = find_module(id);
  SB_EXPECTS(module != nullptr, "cannot kill unknown block ", id);
  world_.grid().mutable_state().set_tag(id, lat::ModuleTag::kDead);
  log_debug("block {} killed at t={}", id.value, now_);
}

void Simulator::start_module(lat::BlockId id) {
  SB_EXPECTS(find_module(id) != nullptr, "cannot start unknown block ", id);
  SB_EXPECTS(tls_exec_ == nullptr,
             "start_module must run in a sequential context");
  schedule_record(EventRecord::start(now_, id));
}

void Simulator::schedule_record(EventRecord record) {
  if (!sharded_) {
    SB_EXPECTS(record.time >= now_, "cannot schedule into the past (t=",
               record.time, " < now=", now_, ")");
    queue_->push(std::move(record));
    return;
  }
  // Sharded routing: grid-mutating / external events go to the sequential
  // global queue; module events go to the queue of the shard owning the
  // target block. From inside a window, cross-shard deliveries go straight
  // into the destination shard's inbound channel slot for this producer —
  // single-writer, so no thread ever touches another shard's queue or
  // contends on a lock; the destination integrates the slot after the next
  // rendezvous.
  ShardState* ctx = tls_exec_;
  SB_EXPECTS(record.time >= (ctx != nullptr ? ctx->now : now_),
             "cannot schedule into the past (t=", record.time, ")");
  switch (record.kind) {
    case EventKind::kMotionComplete:
    case EventKind::kExternal:
      if (ctx != nullptr) {
        ctx->pending_global.push_back(std::move(record));
      } else {
        global_queue_->push(std::move(record));
      }
      return;
    case EventKind::kStart:
    case EventKind::kTimer: {
      const size_t dest = shard_for(world_.grid().position_of(record.a));
      // Starts are scheduled between windows; timers only ever target the
      // module that set them, which executes on its own shard.
      SB_ASSERT(ctx == nullptr || dest == ctx->index,
                "start/timer scheduled across shards for block ", record.a);
      shards_[dest]->queue->push(std::move(record));
      return;
    }
    case EventKind::kDelivery: {
      const lat::Grid& grid = world_.grid();
      size_t dest;
      if (grid.contains(record.b)) {
        dest = shard_for(grid.position_of(record.b));
      } else if (ctx != nullptr) {
        dest = ctx->index;  // receiver left the surface; deliver() drops it
      } else {
        dest = grid.contains(record.a)
                   ? shard_for(grid.position_of(record.a))
                   : 0;
      }
      if (ctx != nullptr && dest != ctx->index) {
        obs::TraceWriter& tracer = obs::TraceWriter::instance();
        if (tracer.enabled()) {
          tracer.instant("xshard_push", "sim",
                         {{"src", ctx->index}, {"dst", dest}});
        }
        shards_[dest]->inbound[ctx->index].push_back(std::move(record));
      } else {
        shards_[dest]->queue->push(std::move(record));
      }
      return;
    }
  }
  SB_UNREACHABLE();
}

void Simulator::schedule(SimTime when, std::unique_ptr<Event> event) {
  SB_EXPECTS(event != nullptr);
  schedule_record(EventRecord::wrap(when, std::move(event)));
}

void Simulator::start_all_modules() {
  for_each_module([this](Module& module) {
    schedule_record(EventRecord::start(now_, module.id()));
  });
}

void Simulator::count_event(const EventRecord& record) {
  ++stats_.events_processed;
  if (config_.detailed_stats) ++stats_.events_by_kind[record.kind_name()];
}

void Simulator::dispatch(EventRecord& record) {
  switch (record.kind) {
    case EventKind::kStart: {
      Module* module = find_module(record.a);
      if (module != nullptr && module->alive()) module->on_start();
      return;
    }
    case EventKind::kTimer: {
      Module* module = find_module(record.a);
      if (module != nullptr && module->alive()) module->on_timer(record.tag);
      return;
    }
    case EventKind::kDelivery:
      deliver(record.a, record.b, *record.message, record.tag);
      return;
    case EventKind::kMotionComplete:
      complete_motion(record.a, record.app);
      if (mutation_observer_) mutation_observer_(*this);
      return;
    case EventKind::kExternal:
      record.external->execute(*this);
      if (mutation_observer_) mutation_observer_(*this);
      return;
  }
  SB_UNREACHABLE();
}

bool Simulator::step() {
  SB_EXPECTS(!sharded_, "step() is only supported in classic (shards=1) "
                        "mode; use run() on a sharded simulator");
  if (queue_->empty()) return false;
  EventRecord record = queue_->pop();
  SB_ASSERT(record.time >= now_, "event time ran backwards");
  now_ = record.time;
  count_event(record);
  if (trace_events_) record_trace(0, record);
  dispatch(record);
  return true;
}

StopReason Simulator::run(RunLimits limits) {
  if (sharded_) return run_sharded(limits);
  uint64_t processed = 0;
  while (!halted_) {
    const EventRecord* next = queue_->peek();
    if (next == nullptr) return StopReason::kQueueEmpty;
    if (next->time > limits.until) return StopReason::kTimeLimit;
    if (processed >= limits.max_events) return StopReason::kEventLimit;
    step();
    ++processed;
  }
  return StopReason::kHalted;
}

void Simulator::send_from(Module& sender, lat::Direction side,
                          msg::MessagePtr message) {
  SB_EXPECTS(message != nullptr);
  const size_t bytes = message->payload_bytes();
  SimStats& stats = active_stats();
  sender.mailbox_.record_send(side, bytes);
  ++stats.messages_sent;
  if (config_.detailed_stats) ++stats.messages_by_kind[message->kind()];

  const lat::BlockId receiver = sender.neighbors_.neighbor(side);
  if (!receiver.valid()) {
    sender.mailbox_.record_drop(side);
    ++stats.messages_dropped;
    return;
  }
  const Ticks latency = config_.latency.sample(active_rng(sender));
  schedule_record(EventRecord::delivery(now() + latency, sender.id(), receiver,
                                        std::move(message), bytes));
}

void Simulator::deliver(lat::BlockId sender, lat::BlockId receiver,
                        const msg::Message& message, size_t payload_bytes) {
  SimStats& stats = active_stats();
  Module* target = find_module(receiver);
  if (target == nullptr || !target->alive()) {
    ++stats.messages_dropped;
    return;
  }
  // The physical contact must still exist: both blocks on the surface and
  // laterally adjacent (messages in flight are lost when a block departs).
  const lat::Grid& grid = world_.grid();
  if (!grid.contains(sender) || !grid.contains(receiver)) {
    ++stats.messages_dropped;
    return;
  }
  const lat::Vec2 sender_pos = grid.position_of(sender);
  const lat::Vec2 receiver_pos = grid.position_of(receiver);
  const auto from_side = lat::direction_from(receiver_pos, sender_pos);
  if (!from_side) {
    ++stats.messages_dropped;
    return;
  }
  target->mailbox_.record_receive(*from_side, payload_bytes);
  ++stats.messages_delivered;
  target->on_message(*from_side, message);
}

void Simulator::timer_for(Module& module, Ticks delay, uint64_t tag) {
  schedule_record(EventRecord::timer(now() + delay, module.id(), tag));
}

void Simulator::start_motion_for(Module& subject,
                                 const motion::RuleApplication& app) {
  SB_EXPECTS(app.subject_from() ==
                 world_.grid().position_of(subject.id()),
             "block ", subject.id(), " is not the subject of ",
             app.describe());
  if (!world_.can_apply(app)) {
    // The world changed between the block's decision and this request — a
    // hot-joined block docked into a cell the move needs (unreachable
    // without external churn: the algorithm moves one block at a time).
    // The mover stays put; the module recovers at the protocol level.
    log_warn("block {}: motion {} no longer physically possible; rejected",
             subject.id(), app.describe());
    ++active_stats().motions_rejected;
    subject.on_motion_rejected();
    return;
  }
  ++active_stats().motions_started;
  const SimTime lands = now() + config_.motion_duration;
  // Sequential contexts register the flight here; requests made inside a
  // shard window buffer through pending_global and register at the barrier
  // flush, so the registry — and the pending-move column that mirrors it —
  // is never touched concurrently.
  if (tls_exec_ == nullptr) {
    inflight_motions_.emplace_back(subject.id(), app);
    world_.grid().mutable_state().set_move_pending(subject.id(), true);
  }
  schedule_record(EventRecord::motion_complete(lands, subject.id(), app));
}

bool Simulator::motion_inflight(lat::BlockId id) const {
  for (const auto& [subject, app] : inflight_motions_) {
    if (subject == id) return true;
  }
  return false;
}

bool Simulator::cell_in_motion(lat::Vec2 pos) const {
  for (const auto& [subject, app] : inflight_motions_) {
    for (const auto& [from, to] : app.world_moves()) {
      if (from == pos || to == pos) return true;
    }
  }
  return false;
}

void Simulator::complete_motion(lat::BlockId subject,
                                const motion::RuleApplication& app) {
  for (auto it = inflight_motions_.begin(); it != inflight_motions_.end();
       ++it) {
    if (it->first == subject) {
      inflight_motions_.erase(it);
      break;
    }
  }
  world_.grid().mutable_state().set_move_pending(subject, false);
  // Physics may have changed since the request was validated; re-check.
  // External stimuli are required to respect cell_in_motion(), so this can
  // only fire on an engine bug, not on legal churn.
  SB_ASSERT(world_.can_apply(app),
            "motion became invalid while executing: ", app.describe(),
            " (concurrent motions are not supported)");
  const auto moves = app.world_moves();
  world_.apply(app);
  ++stats_.motions_completed;

  // A move across a stripe boundary migrates block ownership: pending
  // events addressed to the mover follow it to its new shard.
  if (sharded_) {
    for (const auto& [from, to] : moves) {
      const size_t shard_from = shard_map_.shard_of(from);
      const size_t shard_to = shard_map_.shard_of(to);
      if (shard_from == shard_to) continue;
      // After a simultaneous batch, the block that left `from` is the one
      // now at `to`.
      rehome_block_events(world_.grid().at(to), shard_from, shard_to);
    }
  }

  std::vector<lat::Vec2> touched;
  for (const auto& [from, to] : moves) {
    touched.push_back(from);
    touched.push_back(to);
  }
  refresh_neighbors_around(touched);

  Module* module = find_module(subject);
  if (module != nullptr && module->alive()) module->on_motion_complete();
}

void Simulator::refresh_neighbors_around(const std::vector<lat::Vec2>& cells) {
  // Collect every block adjacent to a touched cell (or on one), then diff
  // its stored neighbor table against the grid.
  std::set<lat::BlockId> affected;
  for (const lat::Vec2 cell : cells) {
    if (world_.grid().occupied(cell)) affected.insert(world_.grid().at(cell));
    for (lat::Direction d : lat::all_directions()) {
      const lat::Vec2 q = cell + delta(d);
      if (world_.grid().occupied(q)) affected.insert(world_.grid().at(q));
    }
  }
  for (const lat::BlockId id : affected) {
    Module* module = find_module(id);
    if (module == nullptr) continue;
    const lat::Vec2 pos = world_.grid().position_of(id);
    for (lat::Direction d : lat::all_directions()) {
      const lat::BlockId current = world_.grid().at(pos + delta(d));
      if (module->neighbors_.neighbor(d) != current) {
        module->neighbors_.set_neighbor(d, current);
        if (module->alive()) module->on_neighbor_change(d, current);
      }
    }
  }
}

}  // namespace sb::sim
