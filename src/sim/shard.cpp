#include "sim/shard.hpp"

#include "util/assert.hpp"

namespace sb::sim {

ShardWorkerPool::ShardWorkerPool(size_t threads)
    : threads_(threads < 1 ? 1 : threads) {
  workers_.reserve(threads_ - 1);
  for (size_t w = 0; w + 1 < threads_; ++w) {
    workers_.emplace_back([this, w] { worker_main(w); });
  }
}

ShardWorkerPool::~ShardWorkerPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ShardWorkerPool::run(size_t jobs, const std::function<void(size_t)>& fn) {
  if (jobs == 0) return;
  if (workers_.empty() || jobs == 1) {
    for (size_t i = 0; i < jobs; ++i) fn(i);
    return;
  }
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    SB_ASSERT(running_ == 0, "ShardWorkerPool::run re-entered");
    job_ = &fn;
    jobs_ = jobs;
    running_ = workers_.size();
    ++generation_;
  }
  cv_start_.notify_all();
  // The caller is the last worker: strided jobs after the spawned threads'.
  for (size_t i = workers_.size(); i < jobs; i += threads_) fn(i);
  std::unique_lock<std::mutex> lock(mutex_);
  cv_done_.wait(lock, [this] { return running_ == 0; });
  job_ = nullptr;
}

void ShardWorkerPool::worker_main(size_t worker) {
  uint64_t seen = 0;
  for (;;) {
    const std::function<void(size_t)>* job = nullptr;
    size_t jobs = 0;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_start_.wait(lock,
                     [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      job = job_;
      jobs = jobs_;
    }
    for (size_t i = worker; i < jobs; i += threads_) (*job)(i);
    bool last = false;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      last = --running_ == 0;
    }
    if (last) cv_done_.notify_one();
  }
}

}  // namespace sb::sim
