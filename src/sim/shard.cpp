#include "sim/shard.hpp"

#include <chrono>
#include <string>

#include "obs/trace.hpp"
#include "util/assert.hpp"

namespace sb::sim {

namespace {

uint64_t mono_ns() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

ShardEngine::ShardEngine(size_t threads, size_t shards)
    : threads_(threads < 1 ? 1 : threads),
      shards_(shards),
      barrier_(static_cast<uint32_t>(threads_)) {
  SB_EXPECTS(shards_ >= threads_, "ShardEngine wants a shard per worker");
  worker_obs_ = std::vector<WorkerObs>(threads_);
  workers_.reserve(threads_ - 1);
  for (size_t w = 1; w < threads_; ++w) {
    workers_.emplace_back([this, w] { worker_main(w); });
  }
}

ShardEngine::~ShardEngine() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  cv_start_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ShardEngine::run(const Hooks& hooks) {
  stop_ = false;
  hooks_ = &hooks;
  if (workers_.empty()) {
    round_loop(0);
    hooks_ = nullptr;
    return;
  }
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    SB_ASSERT(active_ == 0, "ShardEngine::run re-entered");
    active_ = workers_.size();
    ++generation_;
  }
  cv_start_.notify_all();
  round_loop(0);
  std::unique_lock<std::mutex> lock(mutex_);
  cv_done_.wait(lock, [this] { return active_ == 0; });
  hooks_ = nullptr;
}

PhaseBreakdown ShardEngine::phase_totals() const {
  // ns fields sum over workers (they measure disjoint worker time); the
  // window count is the same round count on every worker, so take one.
  PhaseBreakdown total;
  for (const WorkerObs& obs : worker_obs_) {
    total.fold_ns += obs.phases.fold_ns;
    total.integrate_ns += obs.phases.integrate_ns;
    total.decide_ns += obs.phases.decide_ns;
    total.drain_ns += obs.phases.drain_ns;
    total.barrier_wait_ns += obs.phases.barrier_wait_ns;
  }
  total.windows = worker_obs_.empty() ? 0 : worker_obs_[0].phases.windows;
  return total;
}

obs::Registry ShardEngine::merged_metrics() const {
  obs::Registry merged;
  for (const WorkerObs& obs : worker_obs_) merged.merge(obs.metrics);
  return merged;
}

void ShardEngine::reset_observability() {
  for (WorkerObs& obs : worker_obs_) {
    obs.phases = PhaseBreakdown{};
    obs.metrics.clear();
  }
}

void ShardEngine::round_loop(size_t worker) {
  const Hooks& hooks = *hooks_;
  WorkerObs& wobs = worker_obs_[worker];
  obs::TraceWriter& tracer = obs::TraceWriter::instance();
  // Latched per run(): flipping tracing mid-run would emit unmatched span
  // edges.
  const bool tracing = tracer.enabled();
  if (tracing) {
    tracer.set_thread_name("shard-worker-" + std::to_string(worker));
  }
  obs::Histogram& h_wait = wobs.metrics.hist("sim.phase.barrier_wait_ns");
  obs::Histogram& h_fold = wobs.metrics.hist("sim.phase.fold_ns");
  obs::Histogram& h_integrate = wobs.metrics.hist("sim.phase.integrate_ns");
  obs::Histogram& h_decide = wobs.metrics.hist("sim.phase.decide_ns");
  obs::Histogram& h_drain = wobs.metrics.hist("sim.phase.drain_ns");
  for (;;) {
    if (tracing) tracer.begin("window", "sim");
    // Fold the previous window (a no-op on the bootstrap round), then let
    // every worker integrate its own shards' channels in parallel.
    uint64_t serial_ns = 0;
    const uint64_t fold_enter = mono_ns();
    if (tracing) tracer.begin("fold", "sim");
    barrier_.arrive([&] {
      const uint64_t serial_start = mono_ns();
      if (tracing) tracer.begin("fold_serial", "sim");
      hooks.fold();
      if (tracing) tracer.end("fold_serial", "sim");
      serial_ns = mono_ns() - serial_start;
    });
    if (tracing) tracer.end("fold", "sim");
    const uint64_t fold_exit = mono_ns();
    wobs.phases.fold_ns += serial_ns;
    wobs.phases.barrier_wait_ns += (fold_exit - fold_enter) - serial_ns;
    h_wait.record((fold_exit - fold_enter) - serial_ns);
    if (serial_ns != 0) h_fold.record(serial_ns);

    if (tracing) tracer.begin("integrate", "sim");
    for (size_t s = worker; s < shards_; s += threads_) {
      if (tracing) {
        obs::TraceSpan span("integrate_shard", "sim", {{"shard", s}});
        hooks.integrate(s);
      } else {
        hooks.integrate(s);
      }
    }
    if (tracing) tracer.end("integrate", "sim");
    const uint64_t integrate_exit = mono_ns();
    wobs.phases.integrate_ns += integrate_exit - fold_exit;
    h_integrate.record(integrate_exit - fold_exit);

    // Decide serially: apply due sequential events, pick the next horizon
    // or stop. The barrier's release edge publishes window_end_/stop_.
    serial_ns = 0;
    if (tracing) tracer.begin("decide", "sim");
    barrier_.arrive([&] {
      const uint64_t serial_start = mono_ns();
      if (tracing) tracer.begin("decide_serial", "sim");
      stop_ = !hooks.decide(&window_end_);
      if (tracing) tracer.end("decide_serial", "sim");
      serial_ns = mono_ns() - serial_start;
    });
    if (tracing) tracer.end("decide", "sim");
    const uint64_t decide_exit = mono_ns();
    wobs.phases.decide_ns += serial_ns;
    wobs.phases.barrier_wait_ns += (decide_exit - integrate_exit) - serial_ns;
    h_wait.record((decide_exit - integrate_exit) - serial_ns);
    if (serial_ns != 0) h_decide.record(serial_ns);

    if (stop_) {
      if (tracing) tracer.end("window", "sim");
      return;
    }
    if (tracing) tracer.begin("drain", "sim");
    for (size_t s = worker; s < shards_; s += threads_) {
      if (tracing) {
        obs::TraceSpan span("drain_shard", "sim", {{"shard", s}});
        hooks.drain(s, window_end_);
      } else {
        hooks.drain(s, window_end_);
      }
    }
    if (tracing) tracer.end("drain", "sim");
    const uint64_t drain_exit = mono_ns();
    wobs.phases.drain_ns += drain_exit - decide_exit;
    wobs.phases.windows += 1;
    h_drain.record(drain_exit - decide_exit);
    if (tracing) tracer.end("window", "sim");
  }
}

void ShardEngine::worker_main(size_t worker) {
  uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_start_.wait(lock, [&] { return shutdown_ || generation_ != seen; });
      if (shutdown_) return;
      seen = generation_;
    }
    round_loop(worker);
    bool last = false;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      last = --active_ == 0;
    }
    if (last) cv_done_.notify_one();
  }
}

}  // namespace sb::sim
