#include "sim/shard.hpp"

#include "util/assert.hpp"

namespace sb::sim {

ShardEngine::ShardEngine(size_t threads, size_t shards)
    : threads_(threads < 1 ? 1 : threads),
      shards_(shards),
      barrier_(static_cast<uint32_t>(threads_)) {
  SB_EXPECTS(shards_ >= threads_, "ShardEngine wants a shard per worker");
  workers_.reserve(threads_ - 1);
  for (size_t w = 1; w < threads_; ++w) {
    workers_.emplace_back([this, w] { worker_main(w); });
  }
}

ShardEngine::~ShardEngine() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  cv_start_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ShardEngine::run(const Hooks& hooks) {
  stop_ = false;
  hooks_ = &hooks;
  if (workers_.empty()) {
    round_loop(0);
    hooks_ = nullptr;
    return;
  }
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    SB_ASSERT(active_ == 0, "ShardEngine::run re-entered");
    active_ = workers_.size();
    ++generation_;
  }
  cv_start_.notify_all();
  round_loop(0);
  std::unique_lock<std::mutex> lock(mutex_);
  cv_done_.wait(lock, [this] { return active_ == 0; });
  hooks_ = nullptr;
}

void ShardEngine::round_loop(size_t worker) {
  const Hooks& hooks = *hooks_;
  for (;;) {
    // Fold the previous window (a no-op on the bootstrap round), then let
    // every worker integrate its own shards' channels in parallel.
    barrier_.arrive([&] { hooks.fold(); });
    for (size_t s = worker; s < shards_; s += threads_) hooks.integrate(s);
    // Decide serially: apply due sequential events, pick the next horizon
    // or stop. The barrier's release edge publishes window_end_/stop_.
    barrier_.arrive([&] { stop_ = !hooks.decide(&window_end_); });
    if (stop_) return;
    for (size_t s = worker; s < shards_; s += threads_) {
      hooks.drain(s, window_end_);
    }
  }
}

void ShardEngine::worker_main(size_t worker) {
  uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_start_.wait(lock, [&] { return shutdown_ || generation_ != seen; });
      if (shutdown_) return;
      seen = generation_;
    }
    round_loop(worker);
    bool last = false;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      last = --active_ == 0;
    }
    if (last) cv_done_.notify_one();
  }
}

}  // namespace sb::sim
