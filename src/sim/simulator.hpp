#pragma once
// The discrete-event simulator: world + modules + event loop.
//
// This is the library's stand-in for VisibleSim (paper §V.E): an
// event-driven core where block programs run asynchronously and interact
// only through messages with randomized link latency. Executions are
// deterministic for a fixed seed.

#include <memory>
#include <string>
#include <vector>

#include "motion/apply.hpp"
#include "msg/latency.hpp"
#include "msg/message.hpp"
#include "sim/event_queue.hpp"
#include "sim/module.hpp"
#include "sim/time.hpp"
#include "sim/world.hpp"
#include "util/assert.hpp"
#include "util/flat_counts.hpp"
#include "util/rng.hpp"

namespace sb::sim {

struct SimConfig {
  /// Master seed; all simulation randomness derives from it.
  uint64_t seed = 0x5eedULL;
  /// Link latency model (Assumption 3: finite delivery time).
  msg::LatencyModel latency = msg::LatencyModel::fixed(1);
  /// Ticks a motion takes from request to landing.
  Ticks motion_duration = 10;
  QueueKind queue = QueueKind::kBinaryHeap;
  /// Disable per-kind counter maps in tight throughput benches.
  bool detailed_stats = true;
};

struct SimStats {
  uint64_t events_processed = 0;
  uint64_t messages_sent = 0;
  uint64_t messages_delivered = 0;
  uint64_t messages_dropped = 0;
  uint64_t motions_started = 0;
  uint64_t motions_completed = 0;
  /// Per message kind (Activate, Ack, ...); keys are static string tags.
  /// Flat sorted vectors: bumped once per event/message and copied per
  /// sweep run, where a node-based map is measurable overhead.
  util::FlatCounts messages_by_kind;
  util::FlatCounts events_by_kind;
};

struct RunLimits {
  uint64_t max_events = UINT64_MAX;
  SimTime until = kTimeMax;
};

enum class StopReason { kQueueEmpty, kEventLimit, kTimeLimit, kHalted };

[[nodiscard]] std::string_view to_string(StopReason reason);

class Simulator {
 public:
  explicit Simulator(World world, SimConfig config = SimConfig{});

  [[nodiscard]] World& world() { return world_; }
  [[nodiscard]] const World& world() const { return world_; }
  [[nodiscard]] SimTime now() const { return now_; }
  [[nodiscard]] Rng& rng() { return rng_; }
  [[nodiscard]] SimStats& stats() { return stats_; }
  [[nodiscard]] const SimConfig& config() const { return config_; }

  // -- modules --------------------------------------------------------------

  /// Registers the program for a block already placed on the grid.
  Module& add_module(std::unique_ptr<Module> module);

  /// O(1): the module table is a dense array indexed by block id.
  [[nodiscard]] Module* find_module(lat::BlockId id) {
    return id.valid() && id.value < modules_.size() ? modules_[id.value].get()
                                                    : nullptr;
  }
  [[nodiscard]] size_t module_count() const { return module_count_; }

  template <typename T>
  [[nodiscard]] T& module_as(lat::BlockId id) {
    Module* module = find_module(id);
    SB_EXPECTS(module != nullptr, "no module for block ", id);
    auto* typed = dynamic_cast<T*>(module);
    SB_EXPECTS(typed != nullptr, "module for block ", id,
               " has an unexpected type");
    return *typed;
  }

  /// Iterates modules in id order.
  template <typename Fn>
  void for_each_module(Fn&& fn) {
    for (auto& module : modules_) {
      if (module != nullptr) fn(*module);
    }
  }

  /// Fault injection: the block's program stops responding; the block stays
  /// on the grid as an inert obstacle (paper §VI future work).
  void kill_module(lat::BlockId id);

  // -- event loop -----------------------------------------------------------

  /// Schedules a user-defined event (tests, benches, fault injection). The
  /// built-in behaviours go through allocation-free EventRecords instead.
  void schedule(SimTime when, std::unique_ptr<Event> event);
  void schedule_in(Ticks delay, std::unique_ptr<Event> event) {
    schedule(now_ + delay, std::move(event));
  }

  /// Queues on_start() for every registered module at the current time.
  void start_all_modules();

  /// Runs until the queue drains, a limit hits, or halt() is called.
  StopReason run(RunLimits limits = RunLimits{});

  /// Processes a single event; false when the queue is empty.
  bool step();

  /// Stops the run loop after the current event (modules call this through
  /// their program when the distributed computation finishes).
  void halt() { halted_ = true; }
  [[nodiscard]] bool halted() const { return halted_; }
  void clear_halt() { halted_ = false; }

  [[nodiscard]] size_t pending_events() const { return queue_->size(); }

  // -- services used by Module ----------------------------------------------

  void send_from(Module& sender, lat::Direction side, msg::MessagePtr message);
  void timer_for(Module& module, Ticks delay, uint64_t tag);
  void start_motion_for(Module& subject, const motion::RuleApplication& app);

 private:
  void schedule_record(EventRecord record);
  void dispatch(EventRecord& record);

  void deliver(lat::BlockId sender, lat::BlockId receiver,
               const msg::Message& message, size_t payload_bytes);
  void complete_motion(lat::BlockId subject,
                       const motion::RuleApplication& app);
  /// Recomputes neighbor tables around the given cells and fires
  /// on_neighbor_change for every block whose contacts changed.
  void refresh_neighbors_around(const std::vector<lat::Vec2>& cells);

  void count_event(const EventRecord& record);

  World world_;
  SimConfig config_;
  Rng rng_;
  SimTime now_ = 0;
  bool halted_ = false;
  std::unique_ptr<EventQueue> queue_;
  /// Dense table indexed by id (ids are small and near-contiguous; see
  /// Grid). Index order == id order, so iteration stays deterministic.
  std::vector<std::unique_ptr<Module>> modules_;
  size_t module_count_ = 0;
  SimStats stats_;
};

}  // namespace sb::sim
