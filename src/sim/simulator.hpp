#pragma once
// The discrete-event simulator: world + modules + event loop.
//
// This is the library's stand-in for VisibleSim (paper §V.E): an
// event-driven core where block programs run asynchronously and interact
// only through messages with randomized link latency. Executions are
// deterministic for a fixed seed.

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "lattice/shard.hpp"
#include "motion/apply.hpp"
#include "msg/latency.hpp"
#include "msg/message.hpp"
#include "sim/event_queue.hpp"
#include "sim/module.hpp"
#include "sim/shard.hpp"
#include "sim/stats.hpp"
#include "sim/time.hpp"
#include "sim/world.hpp"
#include "util/assert.hpp"
#include "util/flat_counts.hpp"
#include "util/rng.hpp"

namespace sb::sim {

struct SimConfig {
  /// Master seed; all simulation randomness derives from it.
  uint64_t seed = 0x5eedULL;
  /// Link latency model (Assumption 3: finite delivery time).
  msg::LatencyModel latency = msg::LatencyModel::fixed(1);
  /// Ticks a motion takes from request to landing.
  Ticks motion_duration = 10;
  QueueKind queue = QueueKind::kBinaryHeap;
  /// Disable per-kind counter maps in tight throughput benches.
  bool detailed_stats = true;
  /// Shards the world is partitioned into. 1 keeps the classic single
  /// event loop byte-for-byte; > 1 switches to the windowed sharded
  /// schedule (per-shard queues, RNG streams, and counters; clamped to the
  /// surface extent). See docs/ARCHITECTURE.md.
  size_t shards = 1;
  /// Worker threads draining shard windows in parallel (only used when
  /// shards > 1). 0 = hardware concurrency; always capped at the shard
  /// count. Event traces are byte-identical for every value — thread count
  /// affects wall-clock only.
  size_t shard_threads = 1;
  /// Partition geometry (lattice/shard.hpp): column stripes (default),
  /// row stripes, or 2-D tiles. The trace contract is per-map: different
  /// maps give different (all valid) executions.
  lat::ShardMapKind shard_map = lat::ShardMapKind::kColumns;
  /// Per-shard event counts from a previous run on the uniform column map
  /// with the same `shards`. Non-empty (and matching that map's shard
  /// count) re-stripes column boundaries adaptively so hot regions split
  /// finer; ignored for row/tile maps. See ShardMap::restriped.
  std::vector<uint64_t> shard_load_hints;
  /// Runner-level directive (runner::execute_run): when set and
  /// shard_load_hints is empty, run a short measurement pilot first and
  /// feed its per-shard event counts back as load hints for the real run.
  /// The simulator itself ignores this flag.
  bool shard_autobalance = false;
};

struct RunLimits {
  uint64_t max_events = UINT64_MAX;
  SimTime until = kTimeMax;
};

enum class StopReason { kQueueEmpty, kEventLimit, kTimeLimit, kHalted };

[[nodiscard]] std::string_view to_string(StopReason reason);

class Simulator {
 public:
  explicit Simulator(World world, SimConfig config = SimConfig{});

  [[nodiscard]] World& world() { return world_; }
  [[nodiscard]] const World& world() const { return world_; }
  /// Current simulated time: the executing shard's local clock while a
  /// window drains on this thread, the global clock otherwise.
  [[nodiscard]] SimTime now() const {
    const ShardState* ctx = tls_exec_;
    return ctx != nullptr ? ctx->now : now_;
  }
  [[nodiscard]] Rng& rng() { return rng_; }
  /// Simulator-wide counters. In sharded mode the per-shard counters are
  /// folded in every time run() returns (mid-run reads see only the
  /// sequential share).
  [[nodiscard]] SimStats& stats() { return stats_; }
  [[nodiscard]] const SimConfig& config() const { return config_; }

  // -- sharding -------------------------------------------------------------

  /// Effective shard count: 1 in classic mode, else config().shards clamped
  /// to the surface width.
  [[nodiscard]] size_t shard_count() const {
    return sharded_ ? shards_.size() : 1;
  }
  /// Shard owning position `pos` (always 0 in classic mode). Modules use
  /// this to select shard-scoped helpers (e.g. core's per-shard planners).
  [[nodiscard]] size_t shard_for(lat::Vec2 pos) const {
    return sharded_ ? shard_map_.shard_of(pos) : 0;
  }
  /// The partition geometry in effect (identity map in classic mode).
  [[nodiscard]] const lat::ShardMap& shard_map() const { return shard_map_; }
  /// Cumulative events processed per shard (empty in classic mode).
  [[nodiscard]] std::vector<uint64_t> shard_event_counts() const;

  /// Starts recording one line per dispatched event. Streams are per shard
  /// plus one for the sequential (grid-mutating / external) steps — classic
  /// mode records a single stream. The determinism tests compare these
  /// byte-for-byte across shard-thread counts.
  void enable_event_trace();
  [[nodiscard]] const std::vector<std::vector<std::string>>& event_trace()
      const {
    return trace_streams_;
  }

  /// Round-phase wall-clock accumulated over every sharded run() call
  /// (all-zero in classic mode); see sim/shard.hpp PhaseBreakdown. Purely
  /// observational — never feeds back into scheduling.
  [[nodiscard]] const PhaseBreakdown& phase_breakdown() const {
    return phases_;
  }
  /// Merged shard-worker metrics registry (per-phase latency histograms),
  /// accumulated like phase_breakdown(). Empty in classic mode.
  [[nodiscard]] const obs::Registry& metrics() const { return metrics_; }

  // -- modules --------------------------------------------------------------

  /// Registers the program for a block already placed on the grid.
  Module& add_module(std::unique_ptr<Module> module);

  /// O(1): the module table is a dense array indexed by block id.
  [[nodiscard]] Module* find_module(lat::BlockId id) {
    return id.valid() && id.value < modules_.size() ? modules_[id.value].get()
                                                    : nullptr;
  }
  [[nodiscard]] size_t module_count() const { return module_count_; }

  template <typename T>
  [[nodiscard]] T& module_as(lat::BlockId id) {
    Module* module = find_module(id);
    SB_EXPECTS(module != nullptr, "no module for block ", id);
    auto* typed = dynamic_cast<T*>(module);
    SB_EXPECTS(typed != nullptr, "module for block ", id,
               " has an unexpected type");
    return *typed;
  }

  /// Iterates modules in id order.
  template <typename Fn>
  void for_each_module(Fn&& fn) {
    for (auto& module : modules_) {
      if (module != nullptr) fn(*module);
    }
  }

  /// Fault injection: the block's program stops responding; the block stays
  /// on the grid as an inert obstacle (paper §VI future work).
  void kill_module(lat::BlockId id);

  /// Schedules on_start() for one module at the current time (hot-join
  /// churn: a module registered mid-run). In sharded mode, call only from a
  /// sequential context (an external event or between run() calls).
  void start_module(lat::BlockId id);

  /// Recomputes neighbor tables around externally mutated cells and fires
  /// on_neighbor_change where contacts changed — the grid-side half of a
  /// hot-join (core::ReconfigurationSession::hot_join). Like start_module,
  /// sequential contexts only.
  void notify_cells_changed(const std::vector<lat::Vec2>& cells) {
    refresh_neighbors_around(cells);
  }

  /// True when an in-flight motion touches `pos` (source or destination of
  /// any pending elementary move). External stimuli must not place blocks
  /// on such cells: the mover sweeps through them before its landing event
  /// executes. Sequential contexts only (the registry is updated at window
  /// barriers in sharded mode).
  [[nodiscard]] bool cell_in_motion(lat::Vec2 pos) const;

  /// Motions requested but not yet landed. The world's pending-move column
  /// mirrors this registry bit-for-bit (the oracle cross-checks the two).
  /// Sequential contexts only, like cell_in_motion().
  [[nodiscard]] size_t inflight_motion_count() const {
    return inflight_motions_.size();
  }
  /// True when `id` has a registered in-flight motion.
  [[nodiscard]] bool motion_inflight(lat::BlockId id) const;

  /// Observer invoked after every grid-affecting event (motion completion
  /// or external event), always from the sequential context — in sharded
  /// mode these events run between windows on the coordinating thread. The
  /// invariant oracle (src/check/oracle.hpp) hooks here to audit the world
  /// after each mutation.
  void set_mutation_observer(std::function<void(Simulator&)> observer) {
    mutation_observer_ = std::move(observer);
  }

  // -- event loop -----------------------------------------------------------

  /// Schedules a user-defined event (tests, benches, fault injection). The
  /// built-in behaviours go through allocation-free EventRecords instead.
  void schedule(SimTime when, std::unique_ptr<Event> event);
  void schedule_in(Ticks delay, std::unique_ptr<Event> event) {
    schedule(now_ + delay, std::move(event));
  }

  /// Queues on_start() for every registered module at the current time.
  void start_all_modules();

  /// Runs until the queues drain, a limit hits, or halt() is called. In
  /// sharded mode events execute in lookahead windows; limits are honored
  /// at window granularity (an event budget may overshoot by one window,
  /// deterministically).
  StopReason run(RunLimits limits = RunLimits{});

  /// Processes a single event; false when the queue is empty. Classic
  /// (unsharded) mode only.
  bool step();

  /// Stops the run loop after the current event (modules call this through
  /// their program when the distributed computation finishes). From inside
  /// a shard window the request is honored at the window barrier.
  void halt() {
    ShardState* ctx = tls_exec_;
    if (ctx != nullptr) {
      ctx->halt_requested = true;
    } else {
      halted_ = true;
    }
  }
  [[nodiscard]] bool halted() const { return halted_; }
  void clear_halt() { halted_ = false; }

  [[nodiscard]] size_t pending_events() const {
    if (!sharded_) return queue_->size();
    size_t pending = global_queue_->size();
    for (const auto& shard : shards_) pending += shard->queue->size();
    return pending;
  }

  // -- services used by Module ----------------------------------------------

  void send_from(Module& sender, lat::Direction side, msg::MessagePtr message);
  void timer_for(Module& module, Ticks delay, uint64_t tag);
  void start_motion_for(Module& subject, const motion::RuleApplication& app);

 private:
  void schedule_record(EventRecord record);
  void dispatch(EventRecord& record);

  void deliver(lat::BlockId sender, lat::BlockId receiver,
               const msg::Message& message, size_t payload_bytes);
  void complete_motion(lat::BlockId subject,
                       const motion::RuleApplication& app);
  /// Recomputes neighbor tables around the given cells and fires
  /// on_neighbor_change for every block whose contacts changed.
  void refresh_neighbors_around(const std::vector<lat::Vec2>& cells);

  void count_event(const EventRecord& record);

  /// Counters the current context owns: the draining shard's during a
  /// window, the simulator's otherwise.
  [[nodiscard]] SimStats& active_stats() {
    ShardState* ctx = tls_exec_;
    return ctx != nullptr ? ctx->stats : stats_;
  }
  /// Latency stream the current context draws from. Per-shard draws keep
  /// the draw order deterministic while windows execute in parallel.
  [[nodiscard]] Rng& active_rng(const Module& sender);

  // -- sharded mode (simulator_sharded.cpp) ---------------------------------

  void init_shards();
  StopReason run_sharded(RunLimits limits);
  /// Serial rendezvous hook: folds the just-drained window's counters,
  /// merges pending grid-mutating events into the sequential queue, and
  /// publishes a shard flood verdict to the grid's own cache. Fixed shard
  /// order; runs in the barrier's last-arriving worker.
  void sharded_fold();
  /// Parallel rendezvous hook: drains one shard's inbound channel slots
  /// into its queue, in producer-shard order.
  void sharded_integrate(size_t index);
  /// Serial rendezvous hook: executes due sequential (grid-mutating /
  /// external) events and picks the next window horizon. Returns false to
  /// stop the round loop, recording the reason in run_reason_.
  bool sharded_decide(SimTime* window_end);
  void drain_shard_window(ShardState& shard, SimTime window_end);
  /// Moves a migrated block's pending events to its new home shard.
  void rehome_block_events(lat::BlockId id, size_t from_shard,
                           size_t to_shard);
  /// Folds per-shard stats and oracle counters into the simulator totals
  /// and the grid (called whenever run_sharded returns).
  void merge_shard_stats();
  void record_trace(size_t stream, const EventRecord& record);

  World world_;
  SimConfig config_;
  Rng rng_;
  SimTime now_ = 0;
  bool halted_ = false;
  std::unique_ptr<EventQueue> queue_;
  /// Dense table indexed by id (ids are small and near-contiguous; see
  /// Grid). Index order == id order, so iteration stays deterministic.
  std::vector<std::unique_ptr<Module>> modules_;
  size_t module_count_ = 0;
  SimStats stats_;
  /// Motions requested but not yet landed, keyed by subject. Classic mode
  /// registers at request time; sharded mode at the barrier flush (requests
  /// made inside windows buffer through pending_global), so the registry is
  /// only ever touched from sequential contexts.
  std::vector<std::pair<lat::BlockId, motion::RuleApplication>>
      inflight_motions_;

  // -- sharded mode ---------------------------------------------------------

  std::function<void(Simulator&)> mutation_observer_;

  bool sharded_ = false;
  Ticks lookahead_ = 1;
  lat::ShardMap shard_map_;
  std::vector<std::unique_ptr<ShardState>> shards_;
  /// Grid-mutating (motion-complete) and external events; always executed
  /// sequentially between windows so handlers see a quiescent world.
  std::unique_ptr<EventQueue> global_queue_;
  std::unique_ptr<ShardEngine> engine_;
  /// Per-run() loop state shared by the engine hooks: limits, events
  /// counted so far, and the stop reason sharded_decide() settled on.
  /// Written only inside barrier serial sections.
  RunLimits run_limits_{};
  uint64_t run_processed_ = 0;
  StopReason run_reason_ = StopReason::kQueueEmpty;
  /// Observability accumulators, folded in from the engine after each
  /// sharded run() while the workers are parked.
  PhaseBreakdown phases_;
  obs::Registry metrics_;
  /// True between a window drain and the fold that consumes it; the
  /// bootstrap fold of a run() (no window drained yet) must not advance
  /// the fault-flush counter.
  bool window_pending_fold_ = false;
  /// Set by the fold when the injected fault fires: the following
  /// integrate phase discards every channel slot instead of routing it.
  bool drop_integration_ = false;
  bool trace_events_ = false;
  std::vector<std::vector<std::string>> trace_streams_;
  /// Deliberate-bug injection for the differential fuzzer's self-test
  /// (tools/fuzz_sim, tests/check_test): when the SB_SIM_FAULT_DROP_FLUSH
  /// env var holds N >= 0, the rendezvous after the N-th window silently
  /// discards the cross-shard channel slots instead of integrating them —
  /// a lost-message bug that only the sharded engine exhibits, so the
  /// differential harness must catch it. -1 = off.
  int64_t fault_drop_flush_ = -1;
  int64_t flush_count_ = 0;
  /// The shard whose window the current thread is draining (null outside
  /// parallel phases); routes now()/halt()/scheduling to shard state.
  static thread_local ShardState* tls_exec_;
};

}  // namespace sb::sim
