#pragma once
// Module: the per-block program (VisibleSim calls this a "BlockCode").
//
// A module interacts with the world exclusively through the protected
// services below — sending messages across lateral contacts, timers,
// sensing, and requesting motions. Subclasses implement the on_* hooks.

#include <memory>

#include "lattice/block_id.hpp"
#include "lattice/direction.hpp"
#include "lattice/neighborhood.hpp"
#include "lattice/vec2.hpp"
#include "motion/apply.hpp"
#include "msg/mailbox.hpp"
#include "msg/message.hpp"
#include "sim/time.hpp"

namespace sb::sim {

class Simulator;

class Module {
 public:
  explicit Module(lat::BlockId id) : id_(id) {}
  virtual ~Module() = default;

  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  [[nodiscard]] lat::BlockId id() const { return id_; }
  /// Liveness is the world's state-tag column (lat::WorldState), not a
  /// field on the module: the simulator stamps kAlive at registration and
  /// kDead on kill_module, and everyone — including the module itself —
  /// reads the same column.
  [[nodiscard]] bool alive() const;

  [[nodiscard]] const msg::Mailbox& mailbox() const { return mailbox_; }
  [[nodiscard]] const msg::NeighborTable& neighbor_table() const {
    return neighbors_;
  }

  // -- hooks (called by the simulator) -------------------------------------

  /// Called once when the simulation starts.
  virtual void on_start() {}

  /// A message arrived on the given side (the side of *this* block facing
  /// the sender).
  virtual void on_message(lat::Direction from_side, const msg::Message& m) = 0;

  /// A timer set with set_timer() fired.
  virtual void on_timer(uint64_t tag) { (void)tag; }

  /// A motion this module requested has completed; position() is updated.
  virtual void on_motion_complete() {}

  /// A motion this module requested was refused because it is no longer
  /// physically possible (another block docked into a cell the move needs —
  /// only reachable under external churn). The block has not moved; the
  /// module must recover at the protocol level or the run deadlocks.
  virtual void on_motion_rejected() {}

  /// The block attached on `side` changed (kInvalidBlock = detached).
  virtual void on_neighbor_change(lat::Direction side, lat::BlockId now) {
    (void)side;
    (void)now;
  }

 protected:
  // -- services (valid once the module is registered) ----------------------

  [[nodiscard]] Simulator& sim() const;

  /// Current physical position (the block's position register).
  [[nodiscard]] lat::Vec2 position() const;

  /// Sends across the lateral contact on `side`; silently dropped (and
  /// counted) when no neighbor is attached there.
  void send(lat::Direction side, msg::MessagePtr message);

  /// Sends a clone of `message` to every attached neighbor, except the one
  /// on `skip` if given.
  void broadcast(const msg::Message& message,
                 std::optional<lat::Direction> skip = std::nullopt);

  /// Schedules on_timer(tag) after `delay` ticks.
  void set_timer(Ticks delay, uint64_t tag);

  /// Requests execution of a motion (this module must be the subject).
  /// on_motion_complete() fires when it lands.
  void start_motion(const motion::RuleApplication& app);

  /// Sensing window centred on this block (radius from the rule library).
  [[nodiscard]] lat::Neighborhood sense() const;

 private:
  friend class Simulator;

  lat::BlockId id_;
  Simulator* host_ = nullptr;
  msg::Mailbox mailbox_;
  msg::NeighborTable neighbors_;
};

}  // namespace sb::sim
