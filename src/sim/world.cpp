#include "sim/world.hpp"

#include "util/assert.hpp"

namespace sb::sim {

World::World(int32_t width, int32_t height, motion::RuleLibrary rules)
    : grid_(width, height), rules_(std::move(rules)) {}

lat::Neighborhood World::sense(lat::Vec2 center, int32_t radius) const {
  lat::Neighborhood window(center, radius, grid_.width(), grid_.height());
  for (int32_t dy = -radius; dy <= radius; ++dy) {
    for (int32_t dx = -radius; dx <= radius; ++dx) {
      const lat::Vec2 p = center + lat::Vec2{dx, dy};
      if (grid_.in_bounds(p)) window.set_occupied(p, grid_.occupied(p));
    }
  }
  return window;
}

void World::apply(const motion::RuleApplication& app) {
  SB_EXPECTS(can_apply(app), "physically invalid motion: ", app.describe());
  const auto moves = app.world_moves();
  grid_.move_simultaneously(moves);
  elementary_moves_ += moves.size();
}

}  // namespace sb::sim
