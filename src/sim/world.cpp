#include "sim/world.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace sb::sim {

World::World(int32_t width, int32_t height, motion::RuleLibrary rules)
    : grid_(width, height), rules_(std::move(rules)) {}

lat::Neighborhood World::sense(lat::Vec2 center, int32_t radius) const {
  lat::Neighborhood window(center, radius, grid_.width(), grid_.height());
  // Row-filled from the SoA occupancy bytes: one packed bit row per window
  // row, no per-cell bounds branches (off-surface cells stay 0).
  const lat::WorldState& state = grid_.state();
  const int32_t x0 = center.x - radius;
  const int32_t x_lo = std::max(x0, 0);
  const int32_t x_hi = std::min(center.x + radius, grid_.width() - 1);
  const int32_t y_lo = std::max(center.y - radius, 0);
  const int32_t y_hi = std::min(center.y + radius, grid_.height() - 1);
  for (int32_t y = y_lo; y <= y_hi; ++y) {
    const uint8_t* row = state.occupancy_row(y);
    uint32_t bits = 0;
    for (int32_t x = x_lo; x <= x_hi; ++x) {
      bits |= static_cast<uint32_t>(row[x]) << (x - x0);
    }
    window.set_row_bits(y - (center.y - radius), bits);
  }
  return window;
}

void World::apply(const motion::RuleApplication& app) {
  SB_EXPECTS(can_apply(app), "physically invalid motion: ", app.describe());
  const auto moves = app.world_moves();
  grid_.move_simultaneously(moves);
  elementary_moves_ += moves.size();
}

}  // namespace sb::sim
