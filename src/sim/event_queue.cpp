#include "sim/event_queue.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace sb::sim {

namespace {
// std::push_heap builds a max-heap; invert the order for a min-queue.
const auto kHeapLater = [](const std::unique_ptr<Event>& a,
                           const std::unique_ptr<Event>& b) {
  return event_before(*b, *a);
};
}  // namespace

void BinaryHeapEventQueue::push(std::unique_ptr<Event> event) {
  SB_EXPECTS(event != nullptr);
  event->set_seq(next_seq_++);
  heap_.push_back(std::move(event));
  std::push_heap(heap_.begin(), heap_.end(), kHeapLater);
}

std::unique_ptr<Event> BinaryHeapEventQueue::pop() {
  SB_EXPECTS(!heap_.empty(), "pop from empty event queue");
  std::pop_heap(heap_.begin(), heap_.end(), kHeapLater);
  std::unique_ptr<Event> event = std::move(heap_.back());
  heap_.pop_back();
  return event;
}

const Event* BinaryHeapEventQueue::peek() const {
  return heap_.empty() ? nullptr : heap_.front().get();
}

void BucketMapEventQueue::push(std::unique_ptr<Event> event) {
  SB_EXPECTS(event != nullptr);
  event->set_seq(next_seq_++);
  buckets_[event->time()].push_back(std::move(event));
  ++size_;
}

std::unique_ptr<Event> BucketMapEventQueue::pop() {
  SB_EXPECTS(size_ > 0, "pop from empty event queue");
  auto it = buckets_.begin();
  auto& bucket = it->second;
  // Buckets are FIFO by construction (seq is monotone), so the front is the
  // earliest; erase from the front via index bookkeeping would be O(n), so
  // keep a rotating cursor instead: swap-pop is incorrect for FIFO order,
  // and buckets are short, so an O(bucket) front erase is fine.
  std::unique_ptr<Event> event = std::move(bucket.front());
  bucket.erase(bucket.begin());
  if (bucket.empty()) buckets_.erase(it);
  --size_;
  return event;
}

const Event* BucketMapEventQueue::peek() const {
  if (size_ == 0) return nullptr;
  return buckets_.begin()->second.front().get();
}

std::unique_ptr<EventQueue> make_event_queue(QueueKind kind) {
  switch (kind) {
    case QueueKind::kBinaryHeap:
      return std::make_unique<BinaryHeapEventQueue>();
    case QueueKind::kBucketMap:
      return std::make_unique<BucketMapEventQueue>();
  }
  SB_UNREACHABLE();
}

}  // namespace sb::sim
