#include "sim/event_queue.hpp"

#include <algorithm>
#include <utility>

#include "util/assert.hpp"

namespace sb::sim {

namespace {

/// True when `record` is addressed to `target`: the subject of a start or
/// timer, or the receiver of a delivery. Motion completions and external
/// events never live in shard queues, so they are not matched.
bool addressed_to(const EventRecord& record, lat::BlockId target) {
  switch (record.kind) {
    case EventKind::kStart:
    case EventKind::kTimer: return record.a == target;
    case EventKind::kDelivery: return record.b == target;
    case EventKind::kMotionComplete:
    case EventKind::kExternal: return false;
  }
  return false;
}

void sort_extracted(std::vector<EventRecord>& out, size_t first) {
  std::sort(out.begin() + static_cast<ptrdiff_t>(first), out.end(),
            [](const EventRecord& a, const EventRecord& b) {
              return event_before(a, b);
            });
}

}  // namespace

// Manual sift with a moving hole: each level costs one move instead of the
// swap (three moves) std::push_heap/pop_heap would do on 80-byte records.

void BinaryHeapEventQueue::sift_up(size_t i) {
  EventRecord moving = std::move(heap_[i]);
  while (i > 0) {
    const size_t parent = (i - 1) / 2;
    if (!event_before(moving, heap_[parent])) break;
    heap_[i] = std::move(heap_[parent]);
    i = parent;
  }
  heap_[i] = std::move(moving);
}

void BinaryHeapEventQueue::sift_down(size_t i) {
  const size_t n = heap_.size();
  EventRecord moving = std::move(heap_[i]);
  for (;;) {
    size_t child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n && event_before(heap_[child + 1], heap_[child])) {
      ++child;
    }
    if (!event_before(heap_[child], moving)) break;
    heap_[i] = std::move(heap_[child]);
    i = child;
  }
  heap_[i] = std::move(moving);
}

void BinaryHeapEventQueue::push(EventRecord record) {
  record.seq = next_seq_++;
  heap_.push_back(std::move(record));
  sift_up(heap_.size() - 1);
}

EventRecord BinaryHeapEventQueue::pop() {
  SB_EXPECTS(!heap_.empty(), "pop from empty event queue");
  EventRecord top = std::move(heap_.front());
  if (heap_.size() > 1) {
    heap_.front() = std::move(heap_.back());
    heap_.pop_back();
    sift_down(0);
  } else {
    heap_.pop_back();
  }
  return top;
}

const EventRecord* BinaryHeapEventQueue::peek() const {
  return heap_.empty() ? nullptr : &heap_.front();
}

void BinaryHeapEventQueue::extract_for(lat::BlockId target,
                                       std::vector<EventRecord>& out) {
  const size_t first = out.size();
  size_t kept = 0;
  for (size_t i = 0; i < heap_.size(); ++i) {
    if (addressed_to(heap_[i], target)) {
      out.push_back(std::move(heap_[i]));
    } else {
      if (kept != i) heap_[kept] = std::move(heap_[i]);
      ++kept;
    }
  }
  if (kept == heap_.size()) return;  // nothing matched
  heap_.resize(kept);
  // Floyd heap construction over the survivors.
  for (size_t i = kept / 2; i-- > 0;) sift_down(i);
  sort_extracted(out, first);
}

BucketMapEventQueue::Bucket& BucketMapEventQueue::ring_bucket(SimTime t) {
  Bucket& bucket = ring_[static_cast<size_t>(t & kRingMask)];
  if (bucket.time != t) {
    // A slot can only hold a different timestamp when that bucket has been
    // fully drained (times within the window map to distinct slots).
    SB_ASSERT(bucket.drained(), "calendar slot collision at t=", t);
    bucket.time = t;
    bucket.head = 0;
    bucket.records.clear();  // keeps capacity: steady state never allocates
  }
  return bucket;
}

void BucketMapEventQueue::migrate_overflow() {
  while (!overflow_.empty() &&
         overflow_.begin()->first < cursor_ + kRingSize) {
    auto it = overflow_.begin();
    Bucket& slot = ring_bucket(it->first);
    SB_ASSERT(slot.drained(), "overflow migration into a live slot");
    slot.head = it->second.head;
    slot.records = std::move(it->second.records);
    overflow_.erase(it);
  }
}

void BucketMapEventQueue::push(EventRecord record) {
  record.seq = next_seq_++;
  const SimTime t = record.time;
  if (t < cursor_) {
    // The simulator never schedules into the past, but the queue API
    // permits it. Rewind the window and spill entries that no longer fit.
    for (Bucket& bucket : ring_) {
      if (!bucket.drained() && bucket.time - t >= kRingSize) {
        Bucket& spill = overflow_[bucket.time];
        spill.head = bucket.head;
        spill.records = std::move(bucket.records);
        bucket.records.clear();
        bucket.head = 0;
      }
    }
    cursor_ = t;
  }
  ++size_;
  if (t - cursor_ < kRingSize) {
    ring_bucket(t).records.push_back(std::move(record));
    return;
  }
  overflow_[t].records.push_back(std::move(record));
}

EventRecord BucketMapEventQueue::pop() {
  SB_EXPECTS(size_ > 0, "pop from empty event queue");
  // Scan forward from the cursor; simulated time only advances, so each
  // slot is crossed once per ring revolution (amortized O(1) per pop).
  for (size_t k = 0; k < kRingSize; ++k) {
    const SimTime t = cursor_ + k;
    Bucket& bucket = ring_[static_cast<size_t>(t & kRingMask)];
    if (bucket.time != t || bucket.drained()) continue;
    cursor_ = t;
    if (k > 0) migrate_overflow();
    EventRecord record = std::move(bucket.records[bucket.head]);
    ++bucket.head;
    --size_;
    return record;
  }
  // Ring window empty: jump to the earliest overflow bucket.
  SB_ASSERT(!overflow_.empty(), "calendar lost events");
  cursor_ = overflow_.begin()->first;
  migrate_overflow();
  Bucket& bucket = ring_[static_cast<size_t>(cursor_ & kRingMask)];
  SB_ASSERT(bucket.time == cursor_ && !bucket.drained());
  EventRecord record = std::move(bucket.records[bucket.head]);
  ++bucket.head;
  --size_;
  return record;
}

void BucketMapEventQueue::extract_for(lat::BlockId target,
                                      std::vector<EventRecord>& out) {
  const size_t first = out.size();
  const auto sweep_bucket = [&](Bucket& bucket) {
    size_t kept = bucket.head;
    for (size_t i = bucket.head; i < bucket.records.size(); ++i) {
      if (addressed_to(bucket.records[i], target)) {
        out.push_back(std::move(bucket.records[i]));
        --size_;
      } else {
        if (kept != i) bucket.records[kept] = std::move(bucket.records[i]);
        ++kept;
      }
    }
    bucket.records.resize(kept);
  };
  for (Bucket& bucket : ring_) {
    if (!bucket.drained()) sweep_bucket(bucket);
  }
  for (auto& [time, bucket] : overflow_) {
    if (!bucket.drained()) sweep_bucket(bucket);
  }
  // A sweep can empty an overflow bucket outright; drop it, or the
  // pop()/peek() fall-through — which trusts overflow_.begin() to hold a
  // live record — would migrate a drained bucket into the ring. (Drained
  // ring slots are harmless: the scans skip them and ring_bucket() resets
  // them on reuse.)
  std::erase_if(overflow_,
                [](const auto& entry) { return entry.second.drained(); });
  sort_extracted(out, first);
}

const EventRecord* BucketMapEventQueue::peek() const {
  if (size_ == 0) return nullptr;
  for (size_t k = 0; k < kRingSize; ++k) {
    const SimTime t = cursor_ + k;
    const Bucket& bucket = ring_[static_cast<size_t>(t & kRingMask)];
    if (bucket.time == t && !bucket.drained()) {
      return &bucket.records[bucket.head];
    }
  }
  const Bucket& bucket = overflow_.begin()->second;
  return &bucket.records[bucket.head];
}

std::unique_ptr<EventQueue> make_event_queue(QueueKind kind) {
  switch (kind) {
    case QueueKind::kBinaryHeap:
      return std::make_unique<BinaryHeapEventQueue>();
    case QueueKind::kBucketMap:
      return std::make_unique<BucketMapEventQueue>();
  }
  SB_UNREACHABLE();
}

}  // namespace sb::sim
