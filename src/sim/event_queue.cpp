#include "sim/event_queue.hpp"

#include <utility>

#include "util/assert.hpp"

namespace sb::sim {

// Manual sift with a moving hole: each level costs one move instead of the
// swap (three moves) std::push_heap/pop_heap would do on 80-byte records.

void BinaryHeapEventQueue::sift_up(size_t i) {
  EventRecord moving = std::move(heap_[i]);
  while (i > 0) {
    const size_t parent = (i - 1) / 2;
    if (!event_before(moving, heap_[parent])) break;
    heap_[i] = std::move(heap_[parent]);
    i = parent;
  }
  heap_[i] = std::move(moving);
}

void BinaryHeapEventQueue::sift_down(size_t i) {
  const size_t n = heap_.size();
  EventRecord moving = std::move(heap_[i]);
  for (;;) {
    size_t child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n && event_before(heap_[child + 1], heap_[child])) {
      ++child;
    }
    if (!event_before(heap_[child], moving)) break;
    heap_[i] = std::move(heap_[child]);
    i = child;
  }
  heap_[i] = std::move(moving);
}

void BinaryHeapEventQueue::push(EventRecord record) {
  record.seq = next_seq_++;
  heap_.push_back(std::move(record));
  sift_up(heap_.size() - 1);
}

EventRecord BinaryHeapEventQueue::pop() {
  SB_EXPECTS(!heap_.empty(), "pop from empty event queue");
  EventRecord top = std::move(heap_.front());
  if (heap_.size() > 1) {
    heap_.front() = std::move(heap_.back());
    heap_.pop_back();
    sift_down(0);
  } else {
    heap_.pop_back();
  }
  return top;
}

const EventRecord* BinaryHeapEventQueue::peek() const {
  return heap_.empty() ? nullptr : &heap_.front();
}

BucketMapEventQueue::Bucket& BucketMapEventQueue::ring_bucket(SimTime t) {
  Bucket& bucket = ring_[static_cast<size_t>(t & kRingMask)];
  if (bucket.time != t) {
    // A slot can only hold a different timestamp when that bucket has been
    // fully drained (times within the window map to distinct slots).
    SB_ASSERT(bucket.drained(), "calendar slot collision at t=", t);
    bucket.time = t;
    bucket.head = 0;
    bucket.records.clear();  // keeps capacity: steady state never allocates
  }
  return bucket;
}

void BucketMapEventQueue::migrate_overflow() {
  while (!overflow_.empty() &&
         overflow_.begin()->first < cursor_ + kRingSize) {
    auto it = overflow_.begin();
    Bucket& slot = ring_bucket(it->first);
    SB_ASSERT(slot.drained(), "overflow migration into a live slot");
    slot.head = it->second.head;
    slot.records = std::move(it->second.records);
    overflow_.erase(it);
  }
}

void BucketMapEventQueue::push(EventRecord record) {
  record.seq = next_seq_++;
  const SimTime t = record.time;
  if (t < cursor_) {
    // The simulator never schedules into the past, but the queue API
    // permits it. Rewind the window and spill entries that no longer fit.
    for (Bucket& bucket : ring_) {
      if (!bucket.drained() && bucket.time - t >= kRingSize) {
        Bucket& spill = overflow_[bucket.time];
        spill.head = bucket.head;
        spill.records = std::move(bucket.records);
        bucket.records.clear();
        bucket.head = 0;
      }
    }
    cursor_ = t;
  }
  ++size_;
  if (t - cursor_ < kRingSize) {
    ring_bucket(t).records.push_back(std::move(record));
    return;
  }
  overflow_[t].records.push_back(std::move(record));
}

EventRecord BucketMapEventQueue::pop() {
  SB_EXPECTS(size_ > 0, "pop from empty event queue");
  // Scan forward from the cursor; simulated time only advances, so each
  // slot is crossed once per ring revolution (amortized O(1) per pop).
  for (size_t k = 0; k < kRingSize; ++k) {
    const SimTime t = cursor_ + k;
    Bucket& bucket = ring_[static_cast<size_t>(t & kRingMask)];
    if (bucket.time != t || bucket.drained()) continue;
    cursor_ = t;
    if (k > 0) migrate_overflow();
    EventRecord record = std::move(bucket.records[bucket.head]);
    ++bucket.head;
    --size_;
    return record;
  }
  // Ring window empty: jump to the earliest overflow bucket.
  SB_ASSERT(!overflow_.empty(), "calendar lost events");
  cursor_ = overflow_.begin()->first;
  migrate_overflow();
  Bucket& bucket = ring_[static_cast<size_t>(cursor_ & kRingMask)];
  SB_ASSERT(bucket.time == cursor_ && !bucket.drained());
  EventRecord record = std::move(bucket.records[bucket.head]);
  ++bucket.head;
  --size_;
  return record;
}

const EventRecord* BucketMapEventQueue::peek() const {
  if (size_ == 0) return nullptr;
  for (size_t k = 0; k < kRingSize; ++k) {
    const SimTime t = cursor_ + k;
    const Bucket& bucket = ring_[static_cast<size_t>(t & kRingMask)];
    if (bucket.time == t && !bucket.drained()) {
      return &bucket.records[bucket.head];
    }
  }
  const Bucket& bucket = overflow_.begin()->second;
  return &bucket.records[bucket.head];
}

std::unique_ptr<EventQueue> make_event_queue(QueueKind kind) {
  switch (kind) {
    case QueueKind::kBinaryHeap:
      return std::make_unique<BinaryHeapEventQueue>();
    case QueueKind::kBucketMap:
      return std::make_unique<BucketMapEventQueue>();
  }
  SB_UNREACHABLE();
}

}  // namespace sb::sim
