#include "sim/event_queue.hpp"

#include <utility>

#include "util/assert.hpp"

namespace sb::sim {

// Manual sift with a moving hole: each level costs one move instead of the
// swap (three moves) std::push_heap/pop_heap would do on 80-byte records.

void BinaryHeapEventQueue::sift_up(size_t i) {
  EventRecord moving = std::move(heap_[i]);
  while (i > 0) {
    const size_t parent = (i - 1) / 2;
    if (!event_before(moving, heap_[parent])) break;
    heap_[i] = std::move(heap_[parent]);
    i = parent;
  }
  heap_[i] = std::move(moving);
}

void BinaryHeapEventQueue::sift_down(size_t i) {
  const size_t n = heap_.size();
  EventRecord moving = std::move(heap_[i]);
  for (;;) {
    size_t child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n && event_before(heap_[child + 1], heap_[child])) {
      ++child;
    }
    if (!event_before(heap_[child], moving)) break;
    heap_[i] = std::move(heap_[child]);
    i = child;
  }
  heap_[i] = std::move(moving);
}

void BinaryHeapEventQueue::push(EventRecord record) {
  record.seq = next_seq_++;
  heap_.push_back(std::move(record));
  sift_up(heap_.size() - 1);
}

EventRecord BinaryHeapEventQueue::pop() {
  SB_EXPECTS(!heap_.empty(), "pop from empty event queue");
  EventRecord top = std::move(heap_.front());
  if (heap_.size() > 1) {
    heap_.front() = std::move(heap_.back());
    heap_.pop_back();
    sift_down(0);
  } else {
    heap_.pop_back();
  }
  return top;
}

const EventRecord* BinaryHeapEventQueue::peek() const {
  return heap_.empty() ? nullptr : &heap_.front();
}

void BucketMapEventQueue::push(EventRecord record) {
  record.seq = next_seq_++;
  Bucket& bucket = buckets_[record.time];
  bucket.records.push_back(std::move(record));
  ++size_;
}

EventRecord BucketMapEventQueue::pop() {
  SB_EXPECTS(size_ > 0, "pop from empty event queue");
  auto it = buckets_.begin();
  Bucket& bucket = it->second;
  // Buckets are FIFO by construction (seq is monotone), so the head cursor
  // points at the earliest record; the storage is reclaimed when the whole
  // bucket drains.
  EventRecord record = std::move(bucket.records[bucket.head]);
  ++bucket.head;
  if (bucket.head == bucket.records.size()) buckets_.erase(it);
  --size_;
  return record;
}

const EventRecord* BucketMapEventQueue::peek() const {
  if (size_ == 0) return nullptr;
  const Bucket& bucket = buckets_.begin()->second;
  return &bucket.records[bucket.head];
}

std::unique_ptr<EventQueue> make_event_queue(QueueKind kind) {
  switch (kind) {
    case QueueKind::kBinaryHeap:
      return std::make_unique<BinaryHeapEventQueue>();
    case QueueKind::kBucketMap:
      return std::make_unique<BucketMapEventQueue>();
  }
  SB_UNREACHABLE();
}

}  // namespace sb::sim
