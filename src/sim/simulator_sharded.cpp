#include <algorithm>
#include <cstdlib>
#include <thread>

#include "sim/simulator.hpp"
#include "util/fmt.hpp"

// The channel-driven sharded schedule (SimConfig::shards > 1).
//
// The surface is split by a ShardMap (column stripes by default; row
// stripes, 2-D tiles, and load-adaptive columns are selectable); each shard
// owns the events of the blocks inside its region. A resident ShardEngine
// worker set cycles rounds of
//
//   fold -> integrate -> decide -> drain
//
// over a sense-reversing barrier:
//
//   Drain (parallel) — every shard drains its queue up to a horizon
//   `window_end`, in local (time, seq) order, on its owning worker. The
//   grid is frozen (no event in a shard queue mutates it), so handlers may
//   read it freely; writes stay inside the shard (its modules, queue, RNG,
//   counters, connectivity scratch) — except cross-shard deliveries, which
//   the producer pushes straight into the destination shard's inbound
//   channel slot. One slot per (producer, consumer) pair makes every slot
//   single-writer, so no locks are needed; the rendezvous barrier is the
//   happens-before edge to the consumer. The horizon is bounded by the
//   lookahead — the minimum link latency — so any message sent inside the
//   window can only be delivered in a later one, and by the time of the
//   next grid-mutating event. When LatencyModel::min_ticks > 1 the window
//   spans that many ticks, amortizing one rendezvous over many events.
//
//   Fold (serial, in the barrier) — window counters fold into the run
//   totals, pending grid-mutating events merge into the sequential queue,
//   and shard flood verdicts publish to the grid cache, in fixed shard
//   order.
//
//   Integrate (parallel) — each shard's owner routes its inbound channel
//   slots into the shard queue, in producer-shard order.
//
//   Decide (serial, in the barrier) — grid-mutating or external events due
//   before the earliest shard event execute one by one on the deciding
//   thread; their handlers see a quiescent world and may touch any shard.
//   Then the next horizon is chosen, or the round loop stops.
//
// Determinism: shard queues pop in (time, seq); seqs are assigned by
// deterministic per-queue push order; channel slots integrate in fixed
// producer order on the consumer's worker; each shard draws latencies from
// its own RNG stream. Worker assignment never reorders anything, so event
// traces are byte-identical for every shard_threads value — and identical
// to the former coordinator/outbox engine's, which routed the same records
// into the same queues in the same order.

namespace sb::sim {

namespace {
/// RNG fork streams for shards live far above the block-id fork space used
/// by module programs (ids are < 2^26), so the streams never collide.
constexpr uint64_t kShardRngStreamBase = uint64_t{1} << 32;

lat::ShardMap make_shard_map(const lat::Grid& grid, const SimConfig& config) {
  switch (config.shard_map) {
    case lat::ShardMapKind::kRows:
      return lat::ShardMap::rows(grid.width(), grid.height(), config.shards);
    case lat::ShardMapKind::kTiles:
      return lat::ShardMap::tiles(grid.width(), grid.height(), config.shards);
    case lat::ShardMapKind::kColumns: break;
  }
  lat::ShardMap uniform(grid.width(), config.shards);
  // Load hints from a previous run re-stripe the column boundaries; stale
  // hints (wrong shard count for this surface) are ignored rather than
  // trusted.
  if (!config.shard_load_hints.empty() &&
      config.shard_load_hints.size() == uniform.count()) {
    return lat::ShardMap::restriped(uniform, config.shard_load_hints,
                                    uniform.count());
  }
  return uniform;
}
}  // namespace

void Simulator::init_shards() {
  shard_map_ = make_shard_map(world_.grid(), config_);
  if (shard_map_.count() <= 1) return;  // one-cell extent: stay classic
  sharded_ = true;
  // The lookahead is the guaranteed delay of *any* cross-window effect: a
  // message needs at least the minimum link latency, and a motion —
  // the grid mutations the windows must never straddle — needs
  // motion_duration. Capping at the smaller of the two keeps every
  // mutation scheduled inside a window strictly beyond its horizon.
  SB_EXPECTS(config_.motion_duration >= 1,
             "sharded execution needs motion_duration >= 1 tick (got ",
             config_.motion_duration, ")");
  lookahead_ = std::max<Ticks>(
      1, std::min<Ticks>(config_.latency.min_ticks(),
                         config_.motion_duration));
  global_queue_ = make_event_queue(config_.queue);
  shards_.reserve(shard_map_.count());
  for (size_t i = 0; i < shard_map_.count(); ++i) {
    auto shard = std::make_unique<ShardState>();
    shard->index = i;
    shard->queue = make_event_queue(config_.queue);
    shard->rng = rng_.fork(kShardRngStreamBase + i);
    shard->inbound.resize(shard_map_.count());
    shards_.push_back(std::move(shard));
  }
  size_t threads = config_.shard_threads;
  if (threads == 0) {
    threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  threads = std::min(threads, shards_.size());
  engine_ = std::make_unique<ShardEngine>(threads, shards_.size());

  // Deliberate-bug injection for the fuzzer self-test (simulator.hpp).
  if (const char* fault = std::getenv("SB_SIM_FAULT_DROP_FLUSH")) {
    fault_drop_flush_ = std::strtoll(fault, nullptr, 10);
  }
}

std::vector<uint64_t> Simulator::shard_event_counts() const {
  std::vector<uint64_t> counts;
  counts.reserve(shards_.size());
  for (const auto& shard : shards_) counts.push_back(shard->total_events);
  return counts;
}

void Simulator::enable_event_trace() {
  trace_events_ = true;
  trace_streams_.assign(sharded_ ? shards_.size() + 1 : 1, {});
}

void Simulator::record_trace(size_t stream, const EventRecord& record) {
  trace_streams_[stream].push_back(
      fmt("t={} seq={} {} a={} b={} tag={}", record.time, record.seq,
          record.kind_name(), record.a.value, record.b.value, record.tag));
}

StopReason Simulator::run_sharded(RunLimits limits) {
  run_limits_ = limits;
  run_processed_ = 0;
  run_reason_ = StopReason::kQueueEmpty;
  window_pending_fold_ = false;
  ShardEngine::Hooks hooks;
  hooks.fold = [this] { sharded_fold(); };
  hooks.integrate = [this](size_t index) { sharded_integrate(index); };
  hooks.decide = [this](SimTime* window_end) {
    return sharded_decide(window_end);
  };
  hooks.drain = [this](size_t index, SimTime window_end) {
    drain_shard_window(*shards_[index], window_end);
  };
  engine_->run(hooks);
  merge_shard_stats();
  // Fold the engine's observability state while its workers are parked.
  phases_.merge(engine_->phase_totals());
  metrics_.merge(engine_->merged_metrics());
  engine_->reset_observability();
  return run_reason_;
}

void Simulator::sharded_fold() {
  // Injected bug (SB_SIM_FAULT_DROP_FLUSH, see simulator.hpp): make the
  // upcoming integrate phase drop this window's cross-shard deliveries on
  // the floor. The bootstrap fold of a run() has no window behind it and
  // must not advance the window numbering.
  if (window_pending_fold_) {
    window_pending_fold_ = false;
    drop_integration_ = flush_count_++ == fault_drop_flush_;
  } else {
    drop_integration_ = false;
  }
  const lat::Grid& grid = world_.grid();
  for (const auto& shard : shards_) {
    run_processed_ += shard->window_events;
    shard->window_events = 0;
    if (shard->last_time > now_) now_ = shard->last_time;
    if (shard->halt_requested) {
      shard->halt_requested = false;
      halted_ = true;
    }
    for (auto& record : shard->pending_global) {
      // Motions requested inside the window become visible here: register
      // the flight (and its pending-move column bit) so sequential churn
      // can respect cell_in_motion().
      if (record.kind == EventKind::kMotionComplete) {
        inflight_motions_.emplace_back(record.a, record.app);
        world_.grid().mutable_state().set_move_pending(record.a, true);
      }
      global_queue_->push(std::move(record));
    }
    shard->pending_global.clear();
    // Publish a window flood's verdict: it was computed against the current
    // (un-mutated) grid, so the grid cache and the other shards can reuse
    // it. Every shard computes the same verdict for the same version.
    if (grid.own_connectivity_hint() == lat::ConnectivityHint::kUnknown &&
        shard->conn_view.version == grid.version() &&
        shard->conn_view.hint != lat::ConnectivityHint::kUnknown) {
      grid.set_own_connectivity_hint(shard->conn_view.hint);
    }
  }
}

void Simulator::sharded_integrate(size_t index) {
  ShardState& shard = *shards_[index];
  // Producer order 0..N-1 matches the order the former coordinator routed
  // outboxes in, so destination seqs — and therefore traces — are
  // unchanged. Each slot was filled by exactly one producer during the
  // drain; the rendezvous barrier ordered those writes before this read.
  for (auto& slot : shard.inbound) {
    if (!drop_integration_) {
      for (auto& record : slot) shard.queue->push(std::move(record));
    }
    slot.clear();
  }
}

bool Simulator::sharded_decide(SimTime* window_end) {
  const size_t sequential_stream = shards_.size();
  for (;;) {
    if (halted_) {
      run_reason_ = StopReason::kHalted;
      return false;
    }
    if (run_processed_ >= run_limits_.max_events) {
      run_reason_ = StopReason::kEventLimit;
      return false;
    }

    SimTime t_shard = kTimeMax;
    for (const auto& shard : shards_) {
      if (const EventRecord* head = shard->queue->peek()) {
        t_shard = std::min(t_shard, head->time);
      }
    }
    const EventRecord* global_head = global_queue_->peek();
    const SimTime t_global =
        global_head != nullptr ? global_head->time : kTimeMax;
    const SimTime t_min = std::min(t_shard, t_global);
    if (t_min == kTimeMax) {
      run_reason_ = StopReason::kQueueEmpty;
      return false;
    }
    if (t_min > run_limits_.until) {
      run_reason_ = StopReason::kTimeLimit;
      return false;
    }

    if (t_global <= t_shard) {
      // Sequential step: the next grid mutation (or external event) is due
      // before any shard event. At equal timestamps mutations go first so
      // same-tick module events observe the post-move surface.
      EventRecord record = global_queue_->pop();
      now_ = record.time;
      count_event(record);
      if (trace_events_) record_trace(sequential_stream, record);
      ++run_processed_;
      dispatch(record);
      continue;
    }

    // Parallel window [t_shard, window_end): bounded by the lookahead, the
    // next grid mutation, and the time limit.
    SimTime end = t_shard + lookahead_;
    if (t_global < end) end = t_global;
    if (run_limits_.until != kTimeMax && run_limits_.until + 1 < end) {
      end = run_limits_.until + 1;
    }
    *window_end = end;
    window_pending_fold_ = true;
    return true;
  }
}

void Simulator::drain_shard_window(ShardState& shard, SimTime window_end) {
  SB_ASSERT(tls_exec_ == nullptr, "nested shard window drains");
  tls_exec_ = &shard;
  // The shard probes connectivity through its own scratch view while the
  // grid is frozen; seed it from the grid's verdict for the current
  // mutation generation so at most one flood runs per shard per grid
  // change.
  const lat::Grid& grid = world_.grid();
  if (shard.conn_view.version != grid.version()) {
    shard.conn_view.version = grid.version();
    shard.conn_view.hint = grid.own_connectivity_hint();
  }
  lat::Grid::install_connectivity_view(&shard.conn_view);

  EventQueue& queue = *shard.queue;
  const bool detailed = config_.detailed_stats;
  while (const EventRecord* head = queue.peek()) {
    if (head->time >= window_end) break;
    EventRecord record = queue.pop();
    SB_ASSERT(record.time >= shard.now, "shard time ran backwards");
    shard.now = record.time;
    shard.last_time = record.time;
    ++shard.window_events;
    ++shard.total_events;
    ++shard.stats.events_processed;
    if (detailed) ++shard.stats.events_by_kind[record.kind_name()];
    if (trace_events_) record_trace(shard.index, record);
    dispatch(record);
  }

  lat::Grid::install_connectivity_view(nullptr);
  tls_exec_ = nullptr;
}

void Simulator::rehome_block_events(lat::BlockId id, size_t from_shard,
                                    size_t to_shard) {
  SB_ASSERT(id.valid());
  std::vector<EventRecord> extracted;
  shards_[from_shard]->queue->extract_for(id, extracted);
  // Re-pushing in (time, seq) order assigns fresh destination seqs while
  // preserving the events' relative order.
  for (EventRecord& record : extracted) {
    shards_[to_shard]->queue->push(std::move(record));
  }
}

void Simulator::merge_shard_stats() {
  lat::ConnectivityStats& conn = world_.grid().own_connectivity_stats();
  for (const auto& shard : shards_) {
    stats_.accumulate(shard->stats);
    shard->stats = SimStats{};
    conn += shard->conn_view.stats;
    shard->conn_view.stats = lat::ConnectivityStats{};
  }
}

}  // namespace sb::sim
