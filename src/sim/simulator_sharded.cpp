#include <algorithm>
#include <cstdlib>
#include <thread>

#include "sim/simulator.hpp"
#include "util/fmt.hpp"

// The windowed sharded schedule (SimConfig::shards > 1).
//
// The surface is split into column stripes; each shard owns the events of
// the blocks inside its stripe. Execution alternates between two phases:
//
//   Parallel window — every shard drains its queue up to a horizon
//   `window_end`, in local (time, seq) order, on its own worker. The grid
//   is frozen (no event in a shard queue mutates it), so handlers may read
//   it freely; writes stay inside the shard (its modules, queue, RNG,
//   counters, connectivity scratch). The horizon is bounded by the
//   lookahead — the minimum link latency — so any message sent inside the
//   window can only be delivered in a later one, and by the time of the
//   next grid-mutating event.
//
//   Sequential step — the earliest grid-mutating or external event (motion
//   completion, test event) executes alone on the coordinating thread,
//   between windows. Its handlers see a quiescent world and may touch any
//   shard.
//
// Determinism: shard queues pop in (time, seq); seqs are assigned by
// deterministic per-shard push order; cross-shard traffic moves only at
// barriers, in fixed shard order, on one thread; each shard draws latencies
// from its own RNG stream. Thread assignment never reorders anything, so
// event traces are byte-identical for every shard_threads value.

namespace sb::sim {

namespace {
/// RNG fork streams for shards live far above the block-id fork space used
/// by module programs (ids are < 2^26), so the streams never collide.
constexpr uint64_t kShardRngStreamBase = uint64_t{1} << 32;
}  // namespace

void Simulator::init_shards() {
  shard_map_ = lat::ShardMap(world_.grid().width(), config_.shards);
  if (shard_map_.count() <= 1) return;  // one-column surface: stay classic
  sharded_ = true;
  // The lookahead is the guaranteed delay of *any* cross-window effect: a
  // message needs at least the minimum link latency, and a motion —
  // the grid mutations the windows must never straddle — needs
  // motion_duration. Capping at the smaller of the two keeps every
  // mutation scheduled inside a window strictly beyond its horizon.
  SB_EXPECTS(config_.motion_duration >= 1,
             "sharded execution needs motion_duration >= 1 tick (got ",
             config_.motion_duration, ")");
  lookahead_ = std::max<Ticks>(
      1, std::min<Ticks>(config_.latency.min_ticks(),
                         config_.motion_duration));
  global_queue_ = make_event_queue(config_.queue);
  shards_.reserve(shard_map_.count());
  for (size_t i = 0; i < shard_map_.count(); ++i) {
    auto shard = std::make_unique<ShardState>();
    shard->index = i;
    shard->queue = make_event_queue(config_.queue);
    shard->rng = rng_.fork(kShardRngStreamBase + i);
    shards_.push_back(std::move(shard));
  }
  size_t threads = config_.shard_threads;
  if (threads == 0) {
    threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  threads = std::min(threads, shards_.size());
  if (threads > 1) pool_ = std::make_unique<ShardWorkerPool>(threads);

  // Deliberate-bug injection for the fuzzer self-test (simulator.hpp).
  if (const char* fault = std::getenv("SB_SIM_FAULT_DROP_FLUSH")) {
    fault_drop_flush_ = std::strtoll(fault, nullptr, 10);
  }
}

std::vector<uint64_t> Simulator::shard_event_counts() const {
  std::vector<uint64_t> counts;
  counts.reserve(shards_.size());
  for (const auto& shard : shards_) counts.push_back(shard->total_events);
  return counts;
}

void Simulator::enable_event_trace() {
  trace_events_ = true;
  trace_streams_.assign(sharded_ ? shards_.size() + 1 : 1, {});
}

void Simulator::record_trace(size_t stream, const EventRecord& record) {
  trace_streams_[stream].push_back(
      fmt("t={} seq={} {} a={} b={} tag={}", record.time, record.seq,
          record.kind_name(), record.a.value, record.b.value, record.tag));
}

StopReason Simulator::run_sharded(RunLimits limits) {
  const StopReason reason = run_sharded_loop(limits);
  merge_shard_stats();
  return reason;
}

StopReason Simulator::run_sharded_loop(RunLimits limits) {
  uint64_t processed = 0;
  const size_t sequential_stream = shards_.size();
  for (;;) {
    if (halted_) return StopReason::kHalted;
    if (processed >= limits.max_events) return StopReason::kEventLimit;

    SimTime t_shard = kTimeMax;
    for (const auto& shard : shards_) {
      if (const EventRecord* head = shard->queue->peek()) {
        t_shard = std::min(t_shard, head->time);
      }
    }
    const EventRecord* global_head = global_queue_->peek();
    const SimTime t_global =
        global_head != nullptr ? global_head->time : kTimeMax;
    const SimTime t_min = std::min(t_shard, t_global);
    if (t_min == kTimeMax) return StopReason::kQueueEmpty;
    if (t_min > limits.until) return StopReason::kTimeLimit;

    if (t_global <= t_shard) {
      // Sequential step: the next grid mutation (or external event) is due
      // before any shard event. At equal timestamps mutations go first so
      // same-tick module events observe the post-move surface.
      EventRecord record = global_queue_->pop();
      now_ = record.time;
      count_event(record);
      if (trace_events_) record_trace(sequential_stream, record);
      ++processed;
      dispatch(record);
      continue;
    }

    // Parallel window [t_shard, window_end): bounded by the lookahead, the
    // next grid mutation, and the time limit.
    SimTime window_end = t_shard + lookahead_;
    if (t_global < window_end) window_end = t_global;
    if (limits.until != kTimeMax && limits.until + 1 < window_end) {
      window_end = limits.until + 1;
    }
    run_window(window_end);

    // Barrier: fold window results and exchange cross-shard traffic, in
    // fixed shard order on this thread.
    for (const auto& shard : shards_) {
      processed += shard->window_events;
      shard->window_events = 0;
      if (shard->last_time > now_) now_ = shard->last_time;
      if (shard->halt_requested) {
        shard->halt_requested = false;
        halted_ = true;
      }
    }
    flush_shard_buffers();
  }
}

void Simulator::run_window(SimTime window_end) {
  if (pool_ == nullptr) {
    for (const auto& shard : shards_) drain_shard_window(*shard, window_end);
    return;
  }
  pool_->run(shards_.size(), [this, window_end](size_t index) {
    drain_shard_window(*shards_[index], window_end);
  });
}

void Simulator::drain_shard_window(ShardState& shard, SimTime window_end) {
  SB_ASSERT(tls_exec_ == nullptr, "nested shard window drains");
  tls_exec_ = &shard;
  // The shard probes connectivity through its own scratch view while the
  // grid is frozen; seed it from the grid's verdict for the current
  // mutation generation so at most one flood runs per shard per grid
  // change.
  const lat::Grid& grid = world_.grid();
  if (shard.conn_view.version != grid.version()) {
    shard.conn_view.version = grid.version();
    shard.conn_view.hint = grid.own_connectivity_hint();
  }
  lat::Grid::install_connectivity_view(&shard.conn_view);

  EventQueue& queue = *shard.queue;
  const bool detailed = config_.detailed_stats;
  while (const EventRecord* head = queue.peek()) {
    if (head->time >= window_end) break;
    EventRecord record = queue.pop();
    SB_ASSERT(record.time >= shard.now, "shard time ran backwards");
    shard.now = record.time;
    shard.last_time = record.time;
    ++shard.window_events;
    ++shard.total_events;
    ++shard.stats.events_processed;
    if (detailed) ++shard.stats.events_by_kind[record.kind_name()];
    if (trace_events_) record_trace(shard.index, record);
    dispatch(record);
  }

  lat::Grid::install_connectivity_view(nullptr);
  tls_exec_ = nullptr;
}

void Simulator::flush_shard_buffers() {
  const lat::Grid& grid = world_.grid();
  // Injected bug (SB_SIM_FAULT_DROP_FLUSH, see simulator.hpp): drop this
  // flush's cross-shard deliveries on the floor. Never enabled outside the
  // fuzzer's detection self-test.
  const bool drop_outboxes = flush_count_++ == fault_drop_flush_;
  for (const auto& shard : shards_) {
    if (!drop_outboxes) {
      for (auto& [dest, record] : shard->outbox) {
        shards_[dest]->queue->push(std::move(record));
      }
    }
    shard->outbox.clear();
    for (auto& record : shard->pending_global) {
      // Motions requested inside the window become visible here: register
      // the flight (and its pending-move column bit) so sequential churn
      // can respect cell_in_motion().
      if (record.kind == EventKind::kMotionComplete) {
        inflight_motions_.emplace_back(record.a, record.app);
        world_.grid().mutable_state().set_move_pending(record.a, true);
      }
      global_queue_->push(std::move(record));
    }
    shard->pending_global.clear();
    // Publish a window flood's verdict: it was computed against the current
    // (un-mutated) grid, so the grid cache and the other shards can reuse
    // it. Every shard computes the same verdict for the same version.
    if (grid.own_connectivity_hint() == lat::ConnectivityHint::kUnknown &&
        shard->conn_view.version == grid.version() &&
        shard->conn_view.hint != lat::ConnectivityHint::kUnknown) {
      grid.set_own_connectivity_hint(shard->conn_view.hint);
    }
  }
}

void Simulator::rehome_block_events(lat::BlockId id, size_t from_shard,
                                    size_t to_shard) {
  SB_ASSERT(id.valid());
  std::vector<EventRecord> extracted;
  shards_[from_shard]->queue->extract_for(id, extracted);
  // Re-pushing in (time, seq) order assigns fresh destination seqs while
  // preserving the events' relative order.
  for (EventRecord& record : extracted) {
    shards_[to_shard]->queue->push(std::move(record));
  }
}

void Simulator::merge_shard_stats() {
  lat::ConnectivityStats& conn = world_.grid().own_connectivity_stats();
  for (const auto& shard : shards_) {
    stats_.accumulate(shard->stats);
    shard->stats = SimStats{};
    conn += shard->conn_view.stats;
    shard->conn_view.stats = lat::ConnectivityStats{};
  }
}

}  // namespace sb::sim
