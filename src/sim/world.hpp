#pragma once
// The physical surface: occupancy grid + rule library + the physics oracle
// that accepts or rejects motions (Remark 1: no disconnecting moves).

#include <cstdint>

#include "lattice/grid.hpp"
#include "lattice/neighborhood.hpp"
#include "lattice/world_view.hpp"
#include "motion/apply.hpp"
#include "motion/rule_library.hpp"

namespace sb::sim {

class World {
 public:
  World(int32_t width, int32_t height, motion::RuleLibrary rules);

  [[nodiscard]] lat::Grid& grid() { return grid_; }
  [[nodiscard]] const lat::Grid& grid() const { return grid_; }
  /// Read-only facade over the world state — the API observers (core/,
  /// check/, viz/) use instead of touching Grid internals.
  [[nodiscard]] lat::WorldView view() const { return lat::WorldView(grid_); }
  [[nodiscard]] const motion::RuleLibrary& rules() const { return rules_; }

  /// Sensing radius implied by the rule library (see DESIGN.md,
  /// substitutions: one round of neighbor-of-neighbor exchange).
  [[nodiscard]] int32_t sensing_radius() const {
    return rules_.sensing_radius();
  }

  /// Captures the presence window a block at `center` can observe.
  [[nodiscard]] lat::Neighborhood sense(lat::Vec2 center) const {
    return sense(center, sensing_radius());
  }
  [[nodiscard]] lat::Neighborhood sense(lat::Vec2 center,
                                        int32_t radius) const;

  /// Physics oracle: rule validation on the real grid plus connectivity
  /// and no-single-line (Remark 1).
  [[nodiscard]] bool can_apply(const motion::RuleApplication& app) const {
    return motion::physically_valid(grid_, app);
  }

  /// Executes a motion; the application must be physically valid. Counts
  /// elementary block moves (the metric of the paper's §V.D "55 moves").
  void apply(const motion::RuleApplication& app);

  /// Total elementary block displacements executed so far.
  [[nodiscard]] uint64_t elementary_moves() const { return elementary_moves_; }

 private:
  lat::Grid grid_;
  motion::RuleLibrary rules_;
  uint64_t elementary_moves_ = 0;
};

}  // namespace sb::sim
