#pragma once
// Pending-event set implementations.
//
// Two interchangeable structures back the simulator: a binary heap (the
// default) and a time-bucketed ordered map. Both store EventRecords by
// value — pushing a built-in event allocates nothing, and the heap is one
// contiguous array. bench_ablations compares their throughput; the
// VisibleSim paper's 650k events/s claim is sensitive to exactly this
// choice.

#include <map>
#include <memory>
#include <vector>

#include "sim/event.hpp"

namespace sb::sim {

class EventQueue {
 public:
  virtual ~EventQueue() = default;

  /// Takes ownership; assigns the tie-breaking sequence number.
  virtual void push(EventRecord record) = 0;

  /// Removes and returns the earliest event (time, then seq). Queue must be
  /// non-empty.
  virtual EventRecord pop() = 0;

  /// Earliest event without removing it; nullptr when empty.
  [[nodiscard]] virtual const EventRecord* peek() const = 0;

  [[nodiscard]] virtual size_t size() const = 0;
  [[nodiscard]] bool empty() const { return size() == 0; }

 protected:
  uint64_t next_seq_ = 0;
};

/// Array-backed binary min-heap of records.
class BinaryHeapEventQueue final : public EventQueue {
 public:
  void push(EventRecord record) override;
  EventRecord pop() override;
  [[nodiscard]] const EventRecord* peek() const override;
  [[nodiscard]] size_t size() const override { return heap_.size(); }

 private:
  void sift_up(size_t i);
  void sift_down(size_t i);

  std::vector<EventRecord> heap_;
};

/// Ordered map from timestamp to FIFO bucket. Pops are O(1) amortized when
/// many events share timestamps (synchronous phases); pushes pay the map
/// lookup. Each bucket keeps a head cursor so popping the front is O(1).
class BucketMapEventQueue final : public EventQueue {
 public:
  void push(EventRecord record) override;
  EventRecord pop() override;
  [[nodiscard]] const EventRecord* peek() const override;
  [[nodiscard]] size_t size() const override { return size_; }

 private:
  struct Bucket {
    std::vector<EventRecord> records;
    size_t head = 0;  // index of the earliest un-popped record
  };
  std::map<SimTime, Bucket> buckets_;
  size_t size_ = 0;
};

enum class QueueKind { kBinaryHeap, kBucketMap };

[[nodiscard]] std::unique_ptr<EventQueue> make_event_queue(QueueKind kind);

}  // namespace sb::sim
