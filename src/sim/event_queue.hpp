#pragma once
// Pending-event set implementations.
//
// Two interchangeable structures back the simulator: a binary heap (the
// default) and a time-bucketed ordered map. bench_ablations compares their
// throughput; the VisibleSim paper's 650k events/s claim is sensitive to
// exactly this choice.

#include <map>
#include <memory>
#include <vector>

#include "sim/event.hpp"

namespace sb::sim {

class EventQueue {
 public:
  virtual ~EventQueue() = default;

  /// Takes ownership; assigns the tie-breaking sequence number.
  virtual void push(std::unique_ptr<Event> event) = 0;

  /// Removes and returns the earliest event (time, then seq). Queue must be
  /// non-empty.
  virtual std::unique_ptr<Event> pop() = 0;

  /// Earliest event without removing it; nullptr when empty.
  [[nodiscard]] virtual const Event* peek() const = 0;

  [[nodiscard]] virtual size_t size() const = 0;
  [[nodiscard]] bool empty() const { return size() == 0; }

 protected:
  uint64_t next_seq_ = 0;
};

/// Array-backed binary min-heap.
class BinaryHeapEventQueue final : public EventQueue {
 public:
  void push(std::unique_ptr<Event> event) override;
  std::unique_ptr<Event> pop() override;
  [[nodiscard]] const Event* peek() const override;
  [[nodiscard]] size_t size() const override { return heap_.size(); }

 private:
  std::vector<std::unique_ptr<Event>> heap_;
};

/// Ordered map from timestamp to FIFO bucket. Pops are O(1) amortized when
/// many events share timestamps (synchronous phases); pushes pay the map
/// lookup.
class BucketMapEventQueue final : public EventQueue {
 public:
  void push(std::unique_ptr<Event> event) override;
  std::unique_ptr<Event> pop() override;
  [[nodiscard]] const Event* peek() const override;
  [[nodiscard]] size_t size() const override { return size_; }

 private:
  std::map<SimTime, std::vector<std::unique_ptr<Event>>> buckets_;
  size_t size_ = 0;
};

enum class QueueKind { kBinaryHeap, kBucketMap };

[[nodiscard]] std::unique_ptr<EventQueue> make_event_queue(QueueKind kind);

}  // namespace sb::sim
