#pragma once
// Pending-event set implementations.
//
// Two interchangeable structures back the simulator: a binary heap (the
// default) and a time-bucketed ordered map. Both store EventRecords by
// value — pushing a built-in event allocates nothing, and the heap is one
// contiguous array. bench_ablations compares their throughput; the
// VisibleSim paper's 650k events/s claim is sensitive to exactly this
// choice.

#include <map>
#include <memory>
#include <vector>

#include "sim/event.hpp"

namespace sb::sim {

class EventQueue {
 public:
  virtual ~EventQueue() = default;

  /// Takes ownership; assigns the tie-breaking sequence number.
  virtual void push(EventRecord record) = 0;

  /// Removes and returns the earliest event (time, then seq). Queue must be
  /// non-empty.
  virtual EventRecord pop() = 0;

  /// Earliest event without removing it; nullptr when empty.
  [[nodiscard]] virtual const EventRecord* peek() const = 0;

  /// Removes every pending event addressed to `target` (start/timer events
  /// whose subject it is, deliveries whose receiver it is) and appends them
  /// to `out` in (time, seq) order. The sharded simulator re-homes a
  /// migrating block's events with this when a motion carries it across a
  /// stripe boundary; motions are rare, so the linear scan is off the hot
  /// path.
  virtual void extract_for(lat::BlockId target,
                           std::vector<EventRecord>& out) = 0;

  [[nodiscard]] virtual size_t size() const = 0;
  [[nodiscard]] bool empty() const { return size() == 0; }

 protected:
  uint64_t next_seq_ = 0;
};

/// Array-backed binary min-heap of records.
class BinaryHeapEventQueue final : public EventQueue {
 public:
  void push(EventRecord record) override;
  EventRecord pop() override;
  [[nodiscard]] const EventRecord* peek() const override;
  void extract_for(lat::BlockId target, std::vector<EventRecord>& out) override;
  [[nodiscard]] size_t size() const override { return heap_.size(); }

 private:
  void sift_up(size_t i);
  void sift_down(size_t i);

  std::vector<EventRecord> heap_;
};

/// Calendar queue: a power-of-two ring of per-timestamp FIFO buckets for
/// the near future, plus an ordered overflow map for timestamps beyond the
/// ring horizon. Link latencies and motion durations are a handful of
/// ticks, so nearly every push lands in the ring at O(1) with a single
/// record move — no heap sift over 80-byte records, no map lookup — and
/// pops scan forward from the time cursor (amortized O(1): simulated time
/// only advances). Pop order is exactly (time, seq), identical to the
/// binary heap, so runs are bit-for-bit the same under either queue.
class BucketMapEventQueue final : public EventQueue {
 public:
  /// Ring span in ticks; larger than any latency model's typical draw so
  /// overflow stays rare (timers and exponential tails still land there).
  /// Public so the ring-horizon boundary tests can target the exact tick
  /// where a push spills from the ring into the overflow map.
  static constexpr size_t kRingBits = 7;
  static constexpr size_t kRingSize = size_t{1} << kRingBits;
  static constexpr SimTime kRingMask = kRingSize - 1;

  void push(EventRecord record) override;
  EventRecord pop() override;
  [[nodiscard]] const EventRecord* peek() const override;
  void extract_for(lat::BlockId target, std::vector<EventRecord>& out) override;
  [[nodiscard]] size_t size() const override { return size_; }

 private:

  struct Bucket {
    SimTime time = 0;
    size_t head = 0;  ///< index of the earliest un-popped record
    std::vector<EventRecord> records;

    [[nodiscard]] bool drained() const { return head >= records.size(); }
  };

  /// Bucket for in-window time `t`, reset (retaining capacity) if it still
  /// holds a fully drained older timestamp.
  [[nodiscard]] Bucket& ring_bucket(SimTime t);
  /// Moves overflow buckets that entered the ring window after the cursor
  /// advanced; keeps the "overflow times are beyond the window" invariant.
  void migrate_overflow();

  std::vector<Bucket> ring_ = std::vector<Bucket>(kRingSize);
  /// Lower bound on the earliest pending timestamp (== last popped time).
  SimTime cursor_ = 0;
  std::map<SimTime, Bucket> overflow_;
  size_t size_ = 0;
};

enum class QueueKind { kBinaryHeap, kBucketMap };

[[nodiscard]] std::unique_ptr<EventQueue> make_event_queue(QueueKind kind);

}  // namespace sb::sim
