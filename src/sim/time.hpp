#pragma once
// Simulated-time primitives.

#include <cstdint>

#include "msg/latency.hpp"

namespace sb::sim {

/// Absolute simulated time in ticks. The library does not prescribe a
/// physical unit; documentation and benches read 1 tick as 1 microsecond.
using SimTime = uint64_t;

/// Relative duration, shared with the latency models.
using Ticks = msg::Ticks;

inline constexpr SimTime kTimeMax = UINT64_MAX;

}  // namespace sb::sim
