#pragma once
// Per-side communication bookkeeping of a block (paper Fig. 8: one buffer
// per lateral port, plus the Neighbor Table NT).

#include <array>
#include <cstdint>

#include "lattice/block_id.hpp"
#include "lattice/direction.hpp"

namespace sb::msg {

struct SideCounters {
  uint64_t messages_sent = 0;
  uint64_t messages_received = 0;
  uint64_t messages_dropped = 0;  // contact broke while the message was in flight
  uint64_t bytes_sent = 0;
  uint64_t bytes_received = 0;
};

/// The four directional buffers of Fig. 8, reduced to traffic counters: the
/// simulator dispatches arrivals immediately (process-to-completion), so
/// queue depth never exceeds one and only the flow statistics are
/// interesting.
class Mailbox {
 public:
  void record_send(lat::Direction side, size_t bytes) {
    auto& c = side_(side);
    ++c.messages_sent;
    c.bytes_sent += bytes;
  }
  void record_receive(lat::Direction side, size_t bytes) {
    auto& c = side_(side);
    ++c.messages_received;
    c.bytes_received += bytes;
  }
  void record_drop(lat::Direction side) { ++side_(side).messages_dropped; }

  [[nodiscard]] const SideCounters& side(lat::Direction d) const {
    return counters_[static_cast<size_t>(d)];
  }

  [[nodiscard]] uint64_t total_sent() const {
    uint64_t n = 0;
    for (const auto& c : counters_) n += c.messages_sent;
    return n;
  }
  [[nodiscard]] uint64_t total_received() const {
    uint64_t n = 0;
    for (const auto& c : counters_) n += c.messages_received;
    return n;
  }
  [[nodiscard]] uint64_t total_dropped() const {
    uint64_t n = 0;
    for (const auto& c : counters_) n += c.messages_dropped;
    return n;
  }

 private:
  SideCounters& side_(lat::Direction d) {
    return counters_[static_cast<size_t>(d)];
  }
  std::array<SideCounters, lat::kDirectionCount> counters_{};
};

/// The Neighbor Table NT of Fig. 8: which block is attached on each side.
class NeighborTable {
 public:
  [[nodiscard]] lat::BlockId neighbor(lat::Direction d) const {
    return table_[static_cast<size_t>(d)];
  }
  void set_neighbor(lat::Direction d, lat::BlockId id) {
    table_[static_cast<size_t>(d)] = id;
  }
  void clear(lat::Direction d) { set_neighbor(d, lat::kInvalidBlock); }

  [[nodiscard]] int attached_count() const {
    int n = 0;
    for (const auto id : table_) n += id.valid() ? 1 : 0;
    return n;
  }

 private:
  std::array<lat::BlockId, lat::kDirectionCount> table_{};
};

}  // namespace sb::msg
