#pragma once
// Message abstraction for inter-block communication.
//
// Blocks exchange messages only across lateral contacts (paper Fig. 9).
// Concrete message types (Activate, Ack, Select, ...) live with the
// algorithm in src/core; this layer only defines the envelope.

#include <memory>
#include <string>
#include <string_view>

namespace sb::msg {

class Message {
 public:
  virtual ~Message() = default;

  /// Stable kind tag, e.g. "Activate"; used for statistics (the paper's
  /// Remark 3 counts messages) and debugging.
  [[nodiscard]] virtual std::string_view kind() const = 0;

  /// Deep copy. Messages are value-like: flooding forwards clones.
  [[nodiscard]] virtual std::unique_ptr<Message> clone() const = 0;

  /// Estimated payload size in bytes (excluding the envelope); used for
  /// bandwidth accounting in the mailbox counters.
  [[nodiscard]] virtual size_t payload_bytes() const { return 0; }

  /// One-line rendering for traces.
  [[nodiscard]] virtual std::string describe() const {
    return std::string(kind());
  }
};

using MessagePtr = std::unique_ptr<Message>;

}  // namespace sb::msg
