#pragma once
// Message abstraction for inter-block communication.
//
// Blocks exchange messages only across lateral contacts (paper Fig. 9).
// Concrete message types (Activate, Ack, Select, ...) live with the
// algorithm in src/core; this layer only defines the envelope.

#include <memory>
#include <string>
#include <string_view>

#include "util/pool.hpp"

namespace sb::msg {

class Message {
 public:
  virtual ~Message() = default;

  /// Cheap dispatch tag for hot receivers: 0 means "untagged". Protocol
  /// layers define their own non-zero values (core's election vocabulary
  /// uses AlgoMsgKind + 1) so a receiver can switch on a byte instead of
  /// running a dynamic_cast chain per delivered message.
  uint8_t dispatch_tag = 0;

  /// Messages are created and destroyed at event rates; all subclasses
  /// allocate through the thread-local pool (util/pool.hpp). The sized
  /// delete receives the dynamic type's size via the virtual destructor, so
  /// recycling works for every subclass without opt-in.
  static void* operator new(size_t bytes) { return util::pool_alloc(bytes); }
  static void operator delete(void* ptr, size_t bytes) noexcept {
    util::pool_free(ptr, bytes);
  }

  /// Stable kind tag, e.g. "Activate"; used for statistics (the paper's
  /// Remark 3 counts messages) and debugging.
  [[nodiscard]] virtual std::string_view kind() const = 0;

  /// Deep copy. Messages are value-like: flooding forwards clones.
  [[nodiscard]] virtual std::unique_ptr<Message> clone() const = 0;

  /// Estimated payload size in bytes (excluding the envelope); used for
  /// bandwidth accounting in the mailbox counters.
  [[nodiscard]] virtual size_t payload_bytes() const { return 0; }

  /// One-line rendering for traces.
  [[nodiscard]] virtual std::string describe() const {
    return std::string(kind());
  }
};

using MessagePtr = std::unique_ptr<Message>;

}  // namespace sb::msg
