#include "msg/latency.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"
#include "util/fmt.hpp"

namespace sb::msg {

LatencyModel LatencyModel::fixed(Ticks value) {
  SB_EXPECTS(value >= 1, "latency must be at least one tick");
  return LatencyModel(Kind::kFixed, static_cast<double>(value), 0.0);
}

LatencyModel LatencyModel::uniform(Ticks lo, Ticks hi) {
  SB_EXPECTS(lo >= 1 && lo <= hi, "uniform latency needs 1 <= lo <= hi");
  return LatencyModel(Kind::kUniform, static_cast<double>(lo),
                      static_cast<double>(hi));
}

LatencyModel LatencyModel::exponential(double mean) {
  SB_EXPECTS(mean >= 1.0, "exponential latency mean must be >= 1 tick");
  return LatencyModel(Kind::kExponential, mean, 0.0);
}

Ticks LatencyModel::sample_slow(Rng& rng) const {
  switch (kind_) {
    case Kind::kFixed:
      return static_cast<Ticks>(a_);
    case Kind::kUniform:
      return static_cast<Ticks>(
          rng.next_in(static_cast<int64_t>(a_), static_cast<int64_t>(b_)));
    case Kind::kExponential: {
      const double draw = rng.next_exponential(a_);
      return std::max<Ticks>(1, static_cast<Ticks>(std::llround(draw)));
    }
  }
  SB_UNREACHABLE();
}

std::string LatencyModel::describe() const {
  switch (kind_) {
    case Kind::kFixed:
      return fmt("fixed({})", static_cast<Ticks>(a_));
    case Kind::kUniform:
      return fmt("uniform({},{})", static_cast<Ticks>(a_),
                 static_cast<Ticks>(b_));
    case Kind::kExponential:
      return fmt("exponential(mean={})", a_);
  }
  return "?";
}

}  // namespace sb::msg
