#pragma once
// Link latency models.
//
// Assumption 3 of the paper only requires communications to complete in
// finite time; the simulator lets experiments choose how that time is
// distributed. All models produce at least 1 tick so causality is strict.

#include <cstdint>
#include <string>

#include "util/rng.hpp"

namespace sb::msg {

/// Simulated-time duration in ticks (the simulator does not prescribe a
/// physical unit; benches treat 1 tick = 1 microsecond for readability).
using Ticks = uint64_t;

class LatencyModel {
 public:
  /// Every message takes exactly `value` ticks.
  [[nodiscard]] static LatencyModel fixed(Ticks value);

  /// Uniform in [lo, hi].
  [[nodiscard]] static LatencyModel uniform(Ticks lo, Ticks hi);

  /// Exponential with the given mean (rounded to ticks, min 1) — a heavy
  /// tail that exercises the asynchronous-election code paths.
  [[nodiscard]] static LatencyModel exponential(double mean);

  /// Inline: sampled once per message send (the per-event hot path); the
  /// fixed model must cost a branch, not a call.
  [[nodiscard]] Ticks sample(Rng& rng) const {
    if (kind_ == Kind::kFixed) return static_cast<Ticks>(a_);
    return sample_slow(rng);
  }

  /// Guaranteed lower bound on every sample, in ticks (>= 1: all models
  /// enforce strict causality). This is the sharded simulator's lookahead:
  /// a message sent inside a time window can only be delivered in a later
  /// window, so shards synchronize once per min_ticks() of simulated time.
  [[nodiscard]] Ticks min_ticks() const {
    switch (kind_) {
      case Kind::kFixed:
      case Kind::kUniform: return static_cast<Ticks>(a_);
      case Kind::kExponential: return 1;
    }
    return 1;
  }

  [[nodiscard]] std::string describe() const;

 private:
  enum class Kind { kFixed, kUniform, kExponential };
  LatencyModel(Kind kind, double a, double b) : kind_(kind), a_(a), b_(b) {}

  [[nodiscard]] Ticks sample_slow(Rng& rng) const;

  Kind kind_;
  double a_;
  double b_;
};

}  // namespace sb::msg
