#pragma once
// Subprocess worker fleets for `sweep --backend dist --workers N`.
//
// The front end forks/execs N copies of the sweep_worker binary pointed at
// the coordinator's port, then reaps them after the sweep. Spawning happens
// while the process is still single-threaded (before Coordinator::run
// starts its service threads) — fork in a threaded process is a minefield.

#include <sys/types.h>

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace sb::dist {

/// Environment variable read by sweep_worker: after completing this many
/// units, abandon the next one and drop the connection (Worker::Options::
/// abandon_after_units). The CI dist-smoke job sets it on one worker of the
/// fleet to prove unit reassignment.
inline constexpr char kWorkerFaultEnv[] = "SB_SWEEP_WORKER_FAULT_AFTER";

/// Environment variable read by the sweep front end: when set (to a unit
/// count), worker 0 of the auto-spawned fleet is launched with
/// kWorkerFaultEnv so it dies mid-sweep.
inline constexpr char kFleetFaultEnv[] = "SB_SWEEP_FAULT_WORKER_AFTER";

struct WorkerProcess {
  pid_t pid = -1;
};

/// Path of the sweep_worker binary expected to sit next to the running
/// executable (overridable via SB_SWEEP_WORKER_BIN for tests). Resolution
/// order: the environment override, then /proc/self/exe's directory, then —
/// on systems where /proc is unavailable — the directory of `argv0` (pass
/// main's argv[0]; resolved against PATH-less invocation only, i.e. it must
/// contain a slash to carry a directory). Logs one stderr line naming the
/// path and how it was found. Throws when nothing resolves to an existing
/// file.
[[nodiscard]] std::string default_worker_binary(const std::string& argv0 = "");

/// Per-fleet spawn knobs beyond the connection target.
struct FleetOptions {
  /// When >= 0, worker 0 gets kWorkerFaultEnv=<value> and will die
  /// mid-sweep (the CI dist-smoke reassignment proof).
  long fault_after_units = -1;
  /// Passed through as --reconnect-window-ms so the fleet survives a
  /// coordinator kill + resume cycle; 0 keeps reconnect off.
  int reconnect_window_ms = 0;
  bool verbose = false;
};

/// Forks/execs `count` workers connecting to host:port. Throws on fork
/// failure (already-spawned workers are left running; they exit once the
/// coordinator stops serving).
[[nodiscard]] std::vector<WorkerProcess> spawn_worker_fleet(
    const std::string& worker_binary, const std::string& host, uint16_t port,
    size_t count, const FleetOptions& options = {});

/// Blocks until the worker exits; returns its exit code (or 128+signal when
/// killed). Worker::kExitFault marks an intentional fault-injection death.
[[nodiscard]] int reap_worker(const WorkerProcess& worker);

}  // namespace sb::dist
