#include "dist/coordinator.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <thread>

#include "dist/chaos.hpp"
#include "dist/protocol.hpp"
#include "dist/socket.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runner/merge.hpp"
#include "runner/sweep.hpp"
#include "util/fmt.hpp"

namespace sb::dist {

namespace {

using Clock = std::chrono::steady_clock;

/// Spec count from the grid dimensions rather than a full expand(): the
/// coordinator never executes a run, and expand() would copy each scenario
/// (up to 10^6 blocks) into every one of its specs just to be counted.
size_t count_specs(const runner::SweepCliOptions& options) {
  const runner::SweepGrid grid = runner::make_sweep_grid(options);
  const size_t seeds =
      grid.seeds.empty() ? grid.seed_count : grid.seeds.size();
  return grid.scenarios.size() * std::max<size_t>(1, grid.configs.size()) *
         seeds;
}

}  // namespace

struct Coordinator::Impl {
  Options options;
  Listener listener;
  JournalWriter journal;

  /// One queued sweep. The primary sweep (when the coordinator was
  /// constructed with grid options) is job 0; client submissions count up
  /// from 1.
  struct Job {
    uint64_t id = 0;
    runner::SweepCliOptions options;
    size_t spec_count = 0;
    size_t unit_size = 1;
    size_t min_cores = 0;
    runner::ResultMerger merger{0};
    std::deque<WorkUnit> pending;
    JobState state = JobState::kRunning;
    /// Units in merge order — the replay source for fetch streaming.
    std::vector<WorkUnit> merge_log;
  };

  // All coordination state lives under one mutex; handler threads are
  // blocked either in recv (their own socket) or on this cv.
  std::mutex mu;
  std::condition_variable cv;
  std::map<uint64_t, Job> jobs;
  struct InFlight {
    uint64_t job = 0;
    WorkUnit unit;
    uint64_t conn_id = 0;
    Clock::time_point deadline;
  };
  std::vector<InFlight> in_flight;
  /// Every worker connection ever seen (disconnected ones stay, flagged,
  /// so --status can show a fleet's history). The heartbeat inter-arrival
  /// histogram is the liveness latency signal: its spread over the worker's
  /// configured heartbeat period is queueing + network delay, and a fat
  /// tail means a stalled or overloaded worker.
  struct WorkerInfo {
    uint64_t conn_id = 0;
    uint64_t pid = 0;
    size_t cores = 1;
    uint64_t memory_mb = 0;
    uint64_t units_dispatched = 0;
    uint64_t results_merged = 0;
    uint64_t heartbeats = 0;
    obs::Histogram heartbeat_gap_ms;
    std::optional<Clock::time_point> last_heartbeat;
    bool connected = true;
  };
  std::vector<WorkerInfo> workers;
  /// Service event counters (reassignments, dispatches, merges); the
  /// `metrics` verb merges a snapshot of obs::service() (journal fsync
  /// latency) into it.
  obs::Registry service_registry;
  bool has_primary = false;
  bool stopping = false;
  uint64_t next_conn_id = 1;
  uint64_t next_job_id = 1;

  std::vector<std::thread> handlers;

  explicit Impl(Options opts)
      : options(opts), listener(opts.bind_address, opts.port) {}

  void log(const std::string& line) const {
    if (options.verbose) {
      std::fprintf(stderr, "sweep dist: %s\n", line.c_str());
    }
  }

  // --- state transitions (callers hold `mu`) ------------------------------

  [[nodiscard]] Job* find_job_locked(uint64_t id) {
    const auto it = jobs.find(id);
    return it == jobs.end() ? nullptr : &it->second;
  }

  [[nodiscard]] WorkerInfo* find_worker_locked(uint64_t conn_id) {
    for (WorkerInfo& worker : workers) {
      if (worker.conn_id == conn_id) return &worker;
    }
    return nullptr;
  }

  /// The unit `job`'s own partition assigns to `id` (units are contiguous
  /// unit_size slices; the last one is short).
  [[nodiscard]] static WorkUnit partition_unit(const Job& job, size_t id) {
    const size_t begin = id * job.unit_size;
    return {id, begin, std::min(job.spec_count, begin + job.unit_size)};
  }

  /// Creates a job and queues its full partition. `record` appends the job
  /// record to the journal (false during resume replay — it is already
  /// there).
  Job& add_job_locked(uint64_t id, runner::SweepCliOptions grid_options,
                      size_t spec_count, size_t unit_size, size_t min_cores,
                      bool record) {
    Job& job = jobs[id];
    job.id = id;
    job.options = std::move(grid_options);
    job.spec_count = spec_count;
    job.unit_size = std::max<size_t>(1, unit_size);
    job.min_cores = min_cores;
    job.merger = runner::ResultMerger(spec_count);
    job.pending.clear();
    job.merge_log.clear();
    for (size_t u = 0; u * job.unit_size < spec_count; ++u) {
      job.pending.push_back(partition_unit(job, u));
    }
    if (job.merger.complete()) job.state = JobState::kDone;  // empty grid
    if (record && journal.open()) {
      journal.record_job(
          {id, job.options, spec_count, job.unit_size, min_cores});
    }
    log(fmt("job {} queued ({} specs in units of {})", id, spec_count,
            job.unit_size));
    return job;
  }

  /// Puts a unit back up for grabs unless its rows already merged. Only
  /// units of the job's own partition qualify — a unit echoed back by a
  /// confused worker must not be able to poison the pending queue.
  void requeue_locked(Job& job, const WorkUnit& unit, const char* why) {
    if (unit.begin >= job.spec_count ||
        unit != partition_unit(job, unit.id)) {
      log(fmt("dropped bogus unit {} [{}, {}) instead of requeueing ({})",
              unit.id, unit.begin, unit.end, why));
      return;
    }
    if (job.state != JobState::kRunning) return;
    if (job.merger.has(unit.begin)) return;
    job.pending.push_back(unit);
    service_registry.add("coord.reassignments");
    log(fmt("job {} unit {} [{}, {}) requeued ({})", job.id, unit.id,
            unit.begin, unit.end, why));
  }

  /// Drops every in-flight entry owned by `conn_id`, requeueing the units.
  void abandon_connection_locked(uint64_t conn_id, const char* why) {
    for (auto it = in_flight.begin(); it != in_flight.end();) {
      if (it->conn_id == conn_id) {
        if (Job* job = find_job_locked(it->job)) {
          requeue_locked(*job, it->unit, why);
        }
        it = in_flight.erase(it);
      } else {
        ++it;
      }
    }
    cv.notify_all();
  }

  void merge_result_locked(const Message& message, uint64_t conn_id) {
    const WorkUnit& unit = message.unit;
    // Whatever the verdict, this connection no longer owns the unit; a
    // merged or duplicate unit must also leave the pending queue (it can
    // sit there when a slow original reports after a timeout requeue) —
    // claim_unit's stale-skip handles that part.
    for (auto it = in_flight.begin(); it != in_flight.end();) {
      if (it->job == message.job && it->unit.id == unit.id &&
          it->conn_id == conn_id) {
        it = in_flight.erase(it);
      } else {
        ++it;
      }
    }
    Job* job = find_job_locked(message.job);
    if (job == nullptr) {
      log(fmt("dropped result for unknown job {} from connection {}",
              message.job, conn_id));
      cv.notify_all();
      return;
    }
    if (job->state != JobState::kRunning) {
      log(fmt("dropped result for finished job {} from connection {}",
              job->id, conn_id));
      cv.notify_all();
      return;
    }
    if (unit != partition_unit(*job, unit.id) ||
        message.rows.size() != unit.size()) {
      log(fmt("dropped malformed result for job {} unit {} from "
              "connection {}",
              job->id, unit.id, conn_id));
      requeue_locked(*job, unit, "malformed result");
      cv.notify_all();
      return;
    }
    if (job->merger.has(unit.begin)) {
      // Late redelivery of an already-merged batch (timeout reassignment or
      // a reconnecting worker replaying its unacknowledged result).
      service_registry.add("coord.duplicates_dropped");
      log(fmt("dropped duplicate result for job {} unit {} from "
              "connection {}",
              job->id, unit.id, conn_id));
      cv.notify_all();
      return;
    }
    // Write-ahead: the batch must be durable before this handler serves the
    // worker's next frame (the implicit acknowledgment). A journal failure
    // leaves the unit unmerged — requeue it and surface the error.
    if (journal.open()) {
      try {
        journal.record_batch(job->id, unit, message.rows);
      } catch (...) {
        requeue_locked(*job, unit, "journal write failed");
        cv.notify_all();
        throw;
      }
    }
    const auto accept = job->merger.accept(unit.begin, message.rows);
    if (accept != runner::ResultMerger::Accept::kMerged) {
      // Unreachable given the checks above (units are partition-aligned),
      // but never let the journal and merger drift apart silently.
      throw std::runtime_error(
          fmt("job {} unit {} journaled but not merged", job->id, unit.id));
    }
    job->merge_log.push_back(unit);
    service_registry.add("coord.results_merged");
    if (WorkerInfo* worker = find_worker_locked(conn_id)) {
      worker->results_merged += 1;
    }
    // The batch is journaled and merged — the documented coord.merge
    // instant. kill here models a crash after durability but before the
    // worker's ack, which resume + duplicate-drop must absorb.
    chaos::hit(chaos::kCoordMerge);
    log(fmt("job {} merged {}/{}", job->id, job->merger.merged(),
            job->merger.total()));
    if (job->merger.complete()) {
      job->state = JobState::kDone;
      log(fmt("job {} complete", job->id));
      if (job->id == 0 && has_primary && !options.serve) stopping = true;
    }
    cv.notify_all();
  }

  // --- threads ------------------------------------------------------------

  void handle_connection(Socket socket, uint64_t conn_id) {
    obs::TraceWriter& tracer = obs::TraceWriter::instance();
    if (tracer.enabled()) {
      tracer.set_thread_name(fmt("coord-conn-{}", conn_id));
    }
    try {
      serve_connection(socket, conn_id);
    } catch (const std::exception& error) {
      log(fmt("connection {} failed: {}", conn_id, error.what()));
    }
    std::lock_guard<std::mutex> lock(mu);
    abandon_connection_locked(conn_id, "peer died");
    if (WorkerInfo* worker = find_worker_locked(conn_id)) {
      worker->connected = false;
    }
    cv.notify_all();
  }

  void serve_connection(Socket& socket, uint64_t conn_id) {
    // Handshake: hello (version-checked by decode), then welcome.
    const RecvResult first = socket.recv_frame(options.worker_silence_ms);
    if (first.status != RecvStatus::kFrame) {
      throw std::runtime_error("peer did not say hello");
    }
    const Message hello = decode(first.payload);
    if (hello.type != MsgType::kHello) {
      throw std::runtime_error("peer did not say hello");
    }
    socket.send_frame(encode(Message::welcome()));
    if (hello.role == Role::kClient) {
      log(fmt("client connected (connection {}, pid {})", conn_id,
              hello.worker_pid));
      serve_client(socket, conn_id);
    } else {
      log(fmt("worker connected (connection {}, pid {}, {} cores, {} MB)",
              conn_id, hello.worker_pid, hello.cores, hello.memory_mb));
      {
        std::lock_guard<std::mutex> lock(mu);
        WorkerInfo worker;
        worker.conn_id = conn_id;
        worker.pid = hello.worker_pid;
        worker.cores = hello.cores;
        worker.memory_mb = hello.memory_mb;
        workers.push_back(std::move(worker));
      }
      serve_worker(socket, conn_id, hello.cores);
    }
  }

  void serve_worker(Socket& socket, uint64_t conn_id, size_t cores) {
    bool sent_stop = false;
    // Once the service is stopping, the connection gets stop plus an
    // absolute wind-down deadline — absolute so that a straggler still
    // heartbeating (or streaming stale duplicate results) cannot keep
    // run() hostage.
    std::optional<Clock::time_point> linger_deadline;
    const auto arm_linger = [&] {
      if (!linger_deadline.has_value()) {
        linger_deadline =
            Clock::now() + std::chrono::milliseconds(options.stop_linger_ms);
      }
    };
    for (;;) {
      const bool finished = [&] {
        std::lock_guard<std::mutex> lock(mu);
        return stopping;
      }();
      if (finished && !sent_stop) {
        // Proactive stop: a worker grinding a stale (already reassigned
        // and merged) unit reads it right after reporting, instead of
        // pulling into a dead service.
        socket.send_frame(encode(Message::stop()));
        sent_stop = true;
        arm_linger();
      }
      int timeout_ms = options.worker_silence_ms;
      if (linger_deadline.has_value()) {
        const auto remaining = std::chrono::duration_cast<
            std::chrono::milliseconds>(*linger_deadline - Clock::now());
        if (remaining.count() <= 0) return;  // cut the straggler off
        timeout_ms = static_cast<int>(remaining.count()) + 1;
      }
      // Worker silence beyond the budget means dead (a healthy worker
      // heartbeats far more often than this, even while executing).
      const RecvResult frame = socket.recv_frame(timeout_ms);
      if (frame.status == RecvStatus::kTimeout) {
        if (linger_deadline.has_value()) return;  // linger expired
        throw std::runtime_error("worker went silent");
      }
      if (frame.status == RecvStatus::kClosed) return;  // orderly exit
      const Message message = decode(frame.payload);
      switch (message.type) {
        case MsgType::kHeartbeat: {
          // Liveness (the recv timeout just reset) plus latency: the gap
          // between consecutive heartbeats, against the worker's fixed
          // send period, measures delivery + scheduling delay.
          std::lock_guard<std::mutex> lock(mu);
          service_registry.add("coord.heartbeats");
          if (WorkerInfo* worker = find_worker_locked(conn_id)) {
            const Clock::time_point now = Clock::now();
            worker->heartbeats += 1;
            if (worker->last_heartbeat.has_value()) {
              const auto gap =
                  std::chrono::duration_cast<std::chrono::milliseconds>(
                      now - *worker->last_heartbeat);
              worker->heartbeat_gap_ms.record(
                  static_cast<uint64_t>(gap.count()));
            }
            worker->last_heartbeat = now;
          }
          break;
        }
        case MsgType::kResult: {
          obs::TraceSpan span("merge", "dist",
                              {{"job", message.job}, {"unit", message.unit.id}});
          std::lock_guard<std::mutex> lock(mu);
          merge_result_locked(message, conn_id);
          break;
        }
        case MsgType::kJobRequest: {
          Message reply;
          {
            std::lock_guard<std::mutex> lock(mu);
            Job* job = find_job_locked(message.job);
            if (job == nullptr) {
              throw std::runtime_error(
                  fmt("job_request for unknown job {}", message.job));
            }
            reply = Message::job_description(job->id, job->options,
                                             job->spec_count);
          }
          socket.send_frame(encode(reply));
          break;
        }
        case MsgType::kPull: {
          const std::optional<Claim> claim = claim_unit(conn_id, cores);
          if (claim.has_value()) {
            obs::TraceWriter& tracer = obs::TraceWriter::instance();
            if (tracer.enabled()) {
              tracer.instant("dispatch", "dist",
                             {{"job", claim->job}, {"unit", claim->unit.id}});
            }
          }
          if (!claim.has_value()) {
            // Service wound down while this worker waited; tell it to stop
            // (unless the proactive stop above already did) and keep
            // looping — the next recv sees its close within the linger.
            if (!sent_stop) {
              socket.send_frame(encode(Message::stop()));
              sent_stop = true;
              arm_linger();
            }
            break;
          }
          const chaos::Action action = chaos::hit(chaos::kCoordDispatch);
          try {
            const std::string payload =
                encode(Message::make_unit(claim->job, claim->unit));
            if (action == chaos::Action::kPartial) {
              socket.send_partial_frame(payload);
              throw std::runtime_error("chaos: partial dispatch frame");
            }
            socket.send_frame(payload);
          } catch (...) {
            // The worker died between pulling and receiving; hand the
            // unit on.
            std::lock_guard<std::mutex> lock(mu);
            abandon_connection_locked(conn_id, "send failed");
            throw;
          }
          break;
        }
        default:
          throw std::runtime_error(fmt("unexpected '{}' message from worker",
                                       to_string(message.type)));
      }
    }
  }

  void serve_client(Socket& socket, uint64_t conn_id) {
    for (;;) {
      {
        std::lock_guard<std::mutex> lock(mu);
        if (stopping) return;
      }
      // No silence deadline for clients — an idle client is legitimate.
      // Poll so the stopping check above runs between frames.
      const RecvResult frame = socket.recv_frame(options.tick_ms);
      if (frame.status == RecvStatus::kTimeout) continue;
      if (frame.status == RecvStatus::kClosed) return;
      const Message message = decode(frame.payload);
      switch (message.type) {
        case MsgType::kSubmit: {
          // Resolve the grid before taking the lock (scenario paths may
          // need file reads) — and before the job exists, so a bad grid
          // rejects the submission instead of queueing a poisoned job.
          const size_t spec_count = count_specs(message.options);
          uint64_t id = 0;
          {
            std::lock_guard<std::mutex> lock(mu);
            id = next_job_id++;
            add_job_locked(id, message.options, spec_count,
                           message.unit_size, message.min_cores,
                           /*record=*/true);
            cv.notify_all();
          }
          socket.send_frame(encode(Message::submitted(id, spec_count)));
          break;
        }
        case MsgType::kStatus: {
          Message reply;
          {
            std::lock_guard<std::mutex> lock(mu);
            Job* job = find_job_locked(message.job);
            if (job == nullptr) {
              throw std::runtime_error(
                  fmt("status request for unknown job {}", message.job));
            }
            reply = Message::job_status(job->id, job->state,
                                        job->merger.merged(),
                                        job->merger.total());
          }
          socket.send_frame(encode(reply));
          break;
        }
        case MsgType::kCancel: {
          Message reply;
          {
            std::lock_guard<std::mutex> lock(mu);
            Job* job = find_job_locked(message.job);
            if (job == nullptr) {
              throw std::runtime_error(
                  fmt("cancel request for unknown job {}", message.job));
            }
            if (job->state == JobState::kRunning) {
              job->state = JobState::kCancelled;
              job->pending.clear();
              if (journal.open()) journal.record_cancel(job->id);
              log(fmt("job {} cancelled", job->id));
              if (job->id == 0 && has_primary && !options.serve) {
                stopping = true;  // the primary sweep cannot finish now
              }
              cv.notify_all();
            }
            reply = Message::job_status(job->id, job->state,
                                        job->merger.merged(),
                                        job->merger.total());
          }
          socket.send_frame(encode(reply));
          break;
        }
        case MsgType::kFetch: {
          stream_job(socket, message.job);
          break;
        }
        case MsgType::kMetrics: {
          Message reply;
          {
            std::lock_guard<std::mutex> lock(mu);
            reply = Message::metrics_report(build_metrics_locked());
          }
          socket.send_frame(encode(reply));
          break;
        }
        case MsgType::kJobRequest: {
          // Clients may ask for a job's grid description too (a fetching
          // client rebuilds the report header from it).
          Message reply;
          {
            std::lock_guard<std::mutex> lock(mu);
            Job* job = find_job_locked(message.job);
            if (job == nullptr) {
              throw std::runtime_error(
                  fmt("job_request for unknown job {}", message.job));
            }
            reply = Message::job_description(job->id, job->options,
                                             job->spec_count);
          }
          socket.send_frame(encode(reply));
          break;
        }
        default:
          throw std::runtime_error(fmt("unexpected '{}' message from client",
                                       to_string(message.type)));
      }
    }
  }

  /// Streams a job's merged batches to a fetching client in merge order,
  /// following live merges until the job leaves the running state, then
  /// terminates the stream with job_done. Sends happen outside the lock so
  /// a slow client cannot stall the fleet.
  void stream_job(Socket& socket, uint64_t job_id) {
    size_t next = 0;
    for (;;) {
      std::vector<Message> out;
      std::optional<JobState> final_state;
      {
        std::unique_lock<std::mutex> lock(mu);
        Job* job = find_job_locked(job_id);
        if (job == nullptr) {
          throw std::runtime_error(
              fmt("fetch request for unknown job {}", job_id));
        }
        while (next < job->merge_log.size()) {
          const WorkUnit unit = job->merge_log[next++];
          std::vector<runner::RunRow> rows;
          rows.reserve(unit.size());
          for (size_t i = unit.begin; i < unit.end; ++i) {
            rows.push_back(job->merger.row(i));
          }
          out.push_back(Message::result(job_id, unit, std::move(rows)));
        }
        if (out.empty()) {
          if (job->state != JobState::kRunning) {
            final_state = job->state;
          } else if (stopping) {
            return;  // shutdown mid-fetch; the close tells the client
          } else {
            cv.wait_for(lock, std::chrono::milliseconds(options.tick_ms));
            continue;
          }
        }
      }
      for (const Message& message : out) {
        socket.send_frame(encode(message));
      }
      if (final_state.has_value()) {
        socket.send_frame(encode(Message::job_done(job_id, *final_state)));
        return;
      }
    }
  }

  /// The `metrics` reply payload: service registry snapshot (event
  /// counters + journal fsync latency from obs::service()) with live
  /// queue/fleet gauges, plus a per-worker listing. Shape documented in
  /// docs/OBSERVABILITY.md.
  [[nodiscard]] util::JsonValue build_metrics_locked() const {
    obs::Registry registry = obs::service().snapshot();
    registry.merge(service_registry);
    size_t queue_depth = 0;
    size_t running = 0;
    size_t done = 0;
    size_t cancelled = 0;
    for (const auto& [id, job] : jobs) {
      switch (job.state) {
        case JobState::kRunning:
          running += 1;
          queue_depth += job.pending.size();
          break;
        case JobState::kDone: done += 1; break;
        case JobState::kCancelled: cancelled += 1; break;
      }
    }
    size_t connected = 0;
    for (const WorkerInfo& worker : workers) {
      if (worker.connected) connected += 1;
    }
    registry.set_gauge("coord.queue_depth", static_cast<double>(queue_depth));
    registry.set_gauge("coord.in_flight", static_cast<double>(in_flight.size()));
    registry.set_gauge("coord.jobs_running", static_cast<double>(running));
    registry.set_gauge("coord.jobs_done", static_cast<double>(done));
    registry.set_gauge("coord.jobs_cancelled", static_cast<double>(cancelled));
    registry.set_gauge("coord.workers_connected",
                       static_cast<double>(connected));
    util::JsonValue out = util::JsonValue::object();
    out["metrics"] = registry.to_json();
    util::JsonValue listing = util::JsonValue::array();
    const Clock::time_point now = Clock::now();
    for (const WorkerInfo& worker : workers) {
      util::JsonValue w = util::JsonValue::object();
      w["conn"] = util::JsonValue(worker.conn_id);
      w["pid"] = util::JsonValue(worker.pid);
      w["cores"] = util::JsonValue(worker.cores);
      w["memory_mb"] = util::JsonValue(worker.memory_mb);
      w["connected"] = util::JsonValue(worker.connected);
      w["units_dispatched"] = util::JsonValue(worker.units_dispatched);
      w["results_merged"] = util::JsonValue(worker.results_merged);
      w["heartbeats"] = util::JsonValue(worker.heartbeats);
      w["heartbeat_gap_ms"] = worker.heartbeat_gap_ms.to_json();
      w["heartbeat_gap_mean_ms"] =
          util::JsonValue(worker.heartbeat_gap_ms.mean());
      w["heartbeat_gap_p95_ms"] = util::JsonValue(
          static_cast<double>(worker.heartbeat_gap_ms.quantile_bound(0.95)));
      if (worker.last_heartbeat.has_value()) {
        const auto ago = std::chrono::duration_cast<std::chrono::milliseconds>(
            now - *worker.last_heartbeat);
        w["last_heartbeat_ms_ago"] =
            util::JsonValue(static_cast<double>(ago.count()));
      }
      listing.push_back(std::move(w));
    }
    out["workers"] = std::move(listing);
    return out;
  }

  struct Claim {
    uint64_t job = 0;
    WorkUnit unit;
  };

  /// Claims the next unit this worker is eligible for (its core count must
  /// meet the job's min_cores floor): blocks until one frees up, or returns
  /// nullopt once the service is stopping.
  std::optional<Claim> claim_unit(uint64_t conn_id, size_t cores) {
    std::unique_lock<std::mutex> lock(mu);
    for (;;) {
      if (stopping) return std::nullopt;
      for (auto& [id, job] : jobs) {
        if (job.state != JobState::kRunning) continue;
        // Skip pending copies whose rows arrived while they waited.
        while (!job.pending.empty() &&
               job.merger.has(job.pending.front().begin)) {
          job.pending.pop_front();
        }
        if (job.pending.empty() || cores < job.min_cores) continue;
        const WorkUnit unit = job.pending.front();
        job.pending.pop_front();
        in_flight.push_back(
            {id, unit, conn_id,
             Clock::now() +
                 std::chrono::milliseconds(options.unit_timeout_ms)});
        service_registry.add("coord.units_dispatched");
        if (WorkerInfo* worker = find_worker_locked(conn_id)) {
          worker->units_dispatched += 1;
        }
        return Claim{id, unit};
      }
      cv.wait(lock);
    }
  }

  void accept_loop() {
    for (;;) {
      {
        std::lock_guard<std::mutex> lock(mu);
        if (stopping) return;
      }
      std::optional<Socket> socket;
      try {
        socket = listener.accept(options.tick_ms);
      } catch (const std::exception& error) {
        // Transient accept failures (EMFILE under a huge fleet, ...) must
        // degrade to a refused connection, not a dead coordinator.
        log(fmt("accept failed, retrying: {}", error.what()));
        std::this_thread::sleep_for(
            std::chrono::milliseconds(options.tick_ms));
        continue;
      }
      if (!socket.has_value()) continue;
      std::lock_guard<std::mutex> lock(mu);
      const uint64_t conn_id = next_conn_id++;
      handlers.emplace_back(
          [this, conn_id, sock = std::move(*socket)]() mutable {
            handle_connection(std::move(sock), conn_id);
          });
    }
  }

  void monitor_loop() {
    std::unique_lock<std::mutex> lock(mu);
    while (!stopping) {
      cv.wait_for(lock, std::chrono::milliseconds(options.tick_ms));
      if (stopping) return;
      const Clock::time_point now = Clock::now();
      for (auto it = in_flight.begin(); it != in_flight.end();) {
        if (it->deadline <= now) {
          if (Job* job = find_job_locked(it->job)) {
            requeue_locked(*job, it->unit, "unit timeout");
          }
          it = in_flight.erase(it);
          cv.notify_all();
        } else {
          ++it;
        }
      }
    }
  }

  std::vector<runner::RunRow> run() {
    {
      std::lock_guard<std::mutex> lock(mu);
      // A resumed primary job may already be fully merged; don't wait for
      // a fleet that has nothing to do.
      if (has_primary && !options.serve) {
        const Job* primary = find_job_locked(0);
        if (primary != nullptr && primary->state != JobState::kRunning) {
          stopping = true;
        }
      }
    }

    std::thread acceptor([this] { accept_loop(); });
    std::thread monitor([this] { monitor_loop(); });

    const bool bounded = options.total_timeout_ms > 0;
    const Clock::time_point deadline =
        Clock::now() + std::chrono::milliseconds(options.total_timeout_ms);
    bool expired = false;
    {
      std::unique_lock<std::mutex> lock(mu);
      while (!stopping) {
        if (bounded) {
          if (cv.wait_until(lock, deadline) == std::cv_status::timeout &&
              !stopping) {
            expired = true;
            stopping = true;  // unblock every thread; workers get stop
            break;
          }
        } else {
          cv.wait(lock);
        }
      }
      cv.notify_all();
    }

    acceptor.join();
    monitor.join();
    // Handler threads wind down once their peer closes (stop was or will
    // be sent on a worker's next pull; clients poll the stopping flag) or
    // goes silent past the linger.
    for (;;) {
      std::vector<std::thread> batch;
      {
        std::lock_guard<std::mutex> lock(mu);
        batch.swap(handlers);
      }
      if (batch.empty()) break;
      for (std::thread& handler : batch) handler.join();
    }

    std::lock_guard<std::mutex> lock(mu);
    if (expired) {
      std::string progress;
      if (const Job* primary = find_job_locked(0);
          primary != nullptr && has_primary) {
        progress = fmt(" with {}/{} runs merged", primary->merger.merged(),
                       primary->merger.total());
      }
      throw std::runtime_error(fmt("distributed sweep timed out after {} ms{}",
                                   options.total_timeout_ms, progress));
    }
    if (!has_primary) return {};
    Job* primary = find_job_locked(0);
    if (primary == nullptr || primary->state == JobState::kCancelled) {
      throw std::runtime_error("sweep job was cancelled");
    }
    if (primary->state != JobState::kDone) {
      throw std::runtime_error(
          "coordinator shut down before the sweep completed");
    }
    return primary->merger.take_rows();
  }

  void shutdown() {
    std::lock_guard<std::mutex> lock(mu);
    stopping = true;
    cv.notify_all();
  }
};

Coordinator::Coordinator(runner::SweepCliOptions grid_options,
                         Options options)
    : impl_(std::make_unique<Impl>(options)) {
  // Resolving the grid here (not in run) validates it before any worker is
  // spawned and pins the spec count announced in job messages.
  const size_t spec_count = count_specs(grid_options);
  if (!options.journal_path.empty()) {
    impl_->journal = JournalWriter::create(
        options.journal_path,
        {options.bind_address, impl_->listener.port()});
  }
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->add_job_locked(0, std::move(grid_options), spec_count,
                        options.unit_size, /*min_cores=*/0, /*record=*/true);
  impl_->has_primary = true;
}

Coordinator::Coordinator(Options options)
    : impl_(std::make_unique<Impl>(options)) {
  if (!options.journal_path.empty()) {
    impl_->journal = JournalWriter::create(
        options.journal_path,
        {options.bind_address, impl_->listener.port()});
  }
}

Coordinator::Coordinator(const JournalContents& contents, Options options)
    : impl_(nullptr) {
  // The journal header pins the coordinator's identity: orphaned workers
  // are retrying that address, so the resumed instance must live there.
  Options effective = options;
  effective.bind_address = contents.header.bind_address;
  effective.port = contents.header.port;
  impl_ = std::make_unique<Impl>(effective);
  if (!options.journal_path.empty()) {
    impl_->journal = JournalWriter::append_to(options.journal_path);
  }
  std::lock_guard<std::mutex> lock(impl_->mu);
  for (const JournalJob& job : contents.jobs) {
    impl_->add_job_locked(job.job, job.options, job.spec_count,
                          job.unit_size, job.min_cores, /*record=*/false);
    impl_->next_job_id = std::max(impl_->next_job_id, job.job + 1);
  }
  for (const JournalBatch& batch : contents.batches) {
    Impl::Job* job = impl_->find_job_locked(batch.job);
    if (job == nullptr) {
      throw std::runtime_error(
          fmt("journal batch references unknown job {}", batch.job));
    }
    if (batch.unit != Impl::partition_unit(*job, batch.unit.id)) {
      throw std::runtime_error(
          fmt("journal batch for job {} unit {} does not match the "
              "partition",
              batch.job, batch.unit.id));
    }
    if (job->merger.has(batch.unit.begin)) continue;  // raced a crash
    job->merger.accept(batch.unit.begin, batch.rows);
    job->merge_log.push_back(batch.unit);
    if (job->merger.complete()) job->state = JobState::kDone;
  }
  for (const uint64_t cancelled : contents.cancelled_jobs) {
    if (Impl::Job* job = impl_->find_job_locked(cancelled)) {
      if (job->state == JobState::kRunning) job->pending.clear();
      job->state = JobState::kCancelled;
    }
  }
  impl_->has_primary = impl_->find_job_locked(0) != nullptr;
}

Coordinator::~Coordinator() = default;

uint16_t Coordinator::port() const { return impl_->listener.port(); }

size_t Coordinator::spec_count() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  const Impl::Job* primary = impl_->find_job_locked(0);
  return primary == nullptr ? 0 : primary->spec_count;
}

std::vector<runner::RunRow> Coordinator::run() { return impl_->run(); }

void Coordinator::shutdown() { impl_->shutdown(); }

}  // namespace sb::dist
