#include "dist/coordinator.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <thread>

#include "dist/protocol.hpp"
#include "dist/socket.hpp"
#include "runner/merge.hpp"
#include "runner/sweep.hpp"
#include "util/fmt.hpp"

namespace sb::dist {

namespace {

using Clock = std::chrono::steady_clock;

}  // namespace

struct Coordinator::Impl {
  runner::SweepCliOptions grid_options;
  Options options;
  Listener listener;
  size_t spec_count = 0;

  // All coordination state lives under one mutex; handler threads are
  // blocked either in recv (their own socket) or on this cv.
  std::mutex mu;
  std::condition_variable cv;
  std::deque<WorkUnit> pending;
  struct InFlight {
    WorkUnit unit;
    uint64_t conn_id = 0;
    Clock::time_point deadline;
  };
  std::vector<InFlight> in_flight;
  runner::ResultMerger merger{0};
  bool done = false;
  uint64_t next_conn_id = 1;

  std::vector<std::thread> handlers;

  Impl(runner::SweepCliOptions grid, Options opts)
      : grid_options(std::move(grid)),
        options(opts),
        listener(opts.bind_address, opts.port) {}

  void log(const std::string& line) const {
    if (options.verbose) {
      std::fprintf(stderr, "sweep dist: %s\n", line.c_str());
    }
  }

  // --- state transitions (callers hold `mu`) ------------------------------

  /// The unit the coordinator's own partition assigns to `id` (units are
  /// contiguous unit_size slices; the last one is short).
  [[nodiscard]] WorkUnit partition_unit(size_t id) const {
    const size_t unit_size = std::max<size_t>(1, options.unit_size);
    const size_t begin = id * unit_size;
    return {id, begin, std::min(spec_count, begin + unit_size)};
  }

  /// Puts a unit back up for grabs unless its rows already merged. Only
  /// units of the coordinator's own partition qualify — a unit echoed back
  /// by a confused worker must not be able to poison the pending queue.
  void requeue_locked(const WorkUnit& unit, const char* why) {
    if (unit.begin >= spec_count || unit != partition_unit(unit.id)) {
      log(fmt("dropped bogus unit {} [{}, {}) instead of requeueing ({})",
              unit.id, unit.begin, unit.end, why));
      return;
    }
    if (merger.has(unit.begin)) return;
    pending.push_back(unit);
    log(fmt("unit {} [{}, {}) requeued ({})", unit.id, unit.begin, unit.end,
            why));
  }

  /// Drops every in-flight entry owned by `conn_id`, requeueing the units.
  void abandon_connection_locked(uint64_t conn_id, const char* why) {
    for (auto it = in_flight.begin(); it != in_flight.end();) {
      if (it->conn_id == conn_id) {
        requeue_locked(it->unit, why);
        it = in_flight.erase(it);
      } else {
        ++it;
      }
    }
    cv.notify_all();
  }

  void merge_result_locked(const Message& message, uint64_t conn_id) {
    const WorkUnit& unit = message.unit;
    using Accept = runner::ResultMerger::Accept;
    Accept accept = Accept::kInvalid;
    if (message.rows.size() == unit.size()) {
      accept = merger.accept(unit.begin, message.rows);
    }
    // Whatever the verdict, this connection no longer owns the unit; a
    // merged or duplicate unit must also leave the pending queue (it can
    // sit there when a slow original reports after a timeout requeue).
    for (auto it = in_flight.begin(); it != in_flight.end();) {
      if (it->unit.id == unit.id && it->conn_id == conn_id) {
        it = in_flight.erase(it);
      } else {
        ++it;
      }
    }
    if (accept == Accept::kInvalid) {
      log(fmt("dropped malformed result for unit {} from connection {}",
              unit.id, conn_id));
      requeue_locked(unit, "malformed result");
    } else if (accept == Accept::kDuplicate) {
      log(fmt("dropped duplicate result for unit {} from connection {}",
              unit.id, conn_id));
    }
    if (merger.complete()) done = true;
    cv.notify_all();
  }

  // --- threads ------------------------------------------------------------

  void handle_connection(Socket socket, uint64_t conn_id) {
    try {
      serve_connection(socket, conn_id);
    } catch (const std::exception& error) {
      log(fmt("connection {} failed: {}", conn_id, error.what()));
    }
    std::lock_guard<std::mutex> lock(mu);
    abandon_connection_locked(conn_id, "worker died");
    cv.notify_all();
  }

  void serve_connection(Socket& socket, uint64_t conn_id) {
    // Handshake: hello (version-checked by decode), then the job.
    const RecvResult hello = socket.recv_frame(options.worker_silence_ms);
    if (hello.status != RecvStatus::kFrame ||
        decode(hello.payload).type != MsgType::kHello) {
      throw std::runtime_error("worker did not say hello");
    }
    socket.send_frame(
        encode(Message::job(grid_options, spec_count)));

    bool sent_stop = false;
    // Once the sweep finishes, the connection gets stop plus an absolute
    // wind-down deadline — absolute so that a straggler still heartbeating
    // (or streaming stale duplicate results) cannot keep run() hostage.
    std::optional<Clock::time_point> linger_deadline;
    for (;;) {
      const bool finished = [&] {
        std::lock_guard<std::mutex> lock(mu);
        return done;
      }();
      if (finished && !sent_stop) {
        // Proactive stop: a worker grinding a stale (already reassigned
        // and merged) unit reads it right after reporting, instead of
        // pulling into a dead sweep.
        socket.send_frame(encode(Message::stop()));
        sent_stop = true;
        linger_deadline =
            Clock::now() + std::chrono::milliseconds(options.stop_linger_ms);
      }
      int timeout_ms = options.worker_silence_ms;
      if (linger_deadline.has_value()) {
        const auto remaining = std::chrono::duration_cast<
            std::chrono::milliseconds>(*linger_deadline - Clock::now());
        if (remaining.count() <= 0) return;  // cut the straggler off
        timeout_ms = static_cast<int>(remaining.count()) + 1;
      }
      // Worker silence beyond the budget means dead (a healthy worker
      // heartbeats far more often than this, even while executing).
      const RecvResult frame = socket.recv_frame(timeout_ms);
      if (frame.status == RecvStatus::kTimeout) {
        if (linger_deadline.has_value()) return;  // linger expired
        throw std::runtime_error("worker went silent");
      }
      if (frame.status == RecvStatus::kClosed) return;  // orderly exit
      const Message message = decode(frame.payload);
      switch (message.type) {
        case MsgType::kHeartbeat:
          break;  // liveness only — the recv timeout just reset
        case MsgType::kResult: {
          std::lock_guard<std::mutex> lock(mu);
          merge_result_locked(message, conn_id);
          break;
        }
        case MsgType::kPull: {
          const std::optional<WorkUnit> unit = claim_unit(conn_id);
          if (!unit.has_value()) {
            // Sweep finished while this worker waited; tell it to stop
            // (unless the proactive stop above already did) and keep
            // looping — the next recv sees its close within the linger.
            if (!sent_stop) {
              socket.send_frame(encode(Message::stop()));
              sent_stop = true;
            }
            break;
          }
          try {
            socket.send_frame(encode(Message::make_unit(*unit)));
          } catch (...) {
            // The worker died between pulling and receiving; hand the
            // unit on.
            std::lock_guard<std::mutex> lock(mu);
            abandon_connection_locked(conn_id, "send failed");
            throw;
          }
          break;
        }
        default:
          throw std::runtime_error(fmt("unexpected '{}' message",
                                       to_string(message.type)));
      }
    }
  }

  /// Claims the next unit for one pull: blocks until a unit frees up, or
  /// returns nullopt once the sweep is done.
  std::optional<WorkUnit> claim_unit(uint64_t conn_id) {
    std::unique_lock<std::mutex> lock(mu);
    for (;;) {
      // Skip pending copies whose rows arrived while they waited.
      while (!pending.empty() && merger.has(pending.front().begin)) {
        pending.pop_front();
      }
      if (done || !pending.empty()) break;
      cv.wait(lock);
    }
    if (done) return std::nullopt;
    const WorkUnit unit = pending.front();
    pending.pop_front();
    in_flight.push_back(
        {unit, conn_id,
         Clock::now() + std::chrono::milliseconds(options.unit_timeout_ms)});
    return unit;
  }

  void accept_loop() {
    for (;;) {
      {
        std::lock_guard<std::mutex> lock(mu);
        if (done) return;
      }
      std::optional<Socket> socket;
      try {
        socket = listener.accept(options.tick_ms);
      } catch (const std::exception& error) {
        // Transient accept failures (EMFILE under a huge fleet, ...) must
        // degrade to a refused connection, not a dead coordinator.
        log(fmt("accept failed, retrying: {}", error.what()));
        std::this_thread::sleep_for(
            std::chrono::milliseconds(options.tick_ms));
        continue;
      }
      if (!socket.has_value()) continue;
      std::lock_guard<std::mutex> lock(mu);
      const uint64_t conn_id = next_conn_id++;
      log(fmt("worker connected (connection {})", conn_id));
      handlers.emplace_back(
          [this, conn_id, sock = std::move(*socket)]() mutable {
            handle_connection(std::move(sock), conn_id);
          });
    }
  }

  void monitor_loop() {
    std::unique_lock<std::mutex> lock(mu);
    while (!done) {
      cv.wait_for(lock, std::chrono::milliseconds(options.tick_ms));
      if (done) return;
      const Clock::time_point now = Clock::now();
      for (auto it = in_flight.begin(); it != in_flight.end();) {
        if (it->deadline <= now) {
          requeue_locked(it->unit, "unit timeout");
          it = in_flight.erase(it);
          cv.notify_all();
        } else {
          ++it;
        }
      }
    }
  }

  std::vector<runner::RunRow> run() {
    {
      // Partition the grid into contiguous units.
      std::lock_guard<std::mutex> lock(mu);
      merger = runner::ResultMerger(spec_count);
      pending.clear();
      const size_t unit_size = std::max<size_t>(1, options.unit_size);
      for (size_t id = 0; id * unit_size < spec_count; ++id) {
        pending.push_back(partition_unit(id));
      }
      done = merger.complete();  // degenerate empty grid
    }

    std::thread acceptor([this] { accept_loop(); });
    std::thread monitor([this] { monitor_loop(); });

    const bool bounded = options.total_timeout_ms > 0;
    const Clock::time_point deadline =
        Clock::now() + std::chrono::milliseconds(options.total_timeout_ms);
    bool expired = false;
    {
      std::unique_lock<std::mutex> lock(mu);
      while (!done) {
        if (bounded) {
          if (cv.wait_until(lock, deadline) == std::cv_status::timeout &&
              !done) {
            expired = true;
            done = true;  // unblock every thread; workers get stop
            break;
          }
        } else {
          cv.wait(lock);
        }
      }
      cv.notify_all();
    }

    acceptor.join();
    monitor.join();
    // Handler threads wind down once their worker closes (stop was or will
    // be sent on its next pull) or goes silent past the unit timeout.
    for (;;) {
      std::vector<std::thread> batch;
      {
        std::lock_guard<std::mutex> lock(mu);
        batch.swap(handlers);
      }
      if (batch.empty()) break;
      for (std::thread& handler : batch) handler.join();
    }

    if (expired) {
      std::lock_guard<std::mutex> lock(mu);
      throw std::runtime_error(
          fmt("distributed sweep timed out after {} ms with {}/{} runs "
              "merged",
              options.total_timeout_ms, merger.merged(), merger.total()));
    }
    std::lock_guard<std::mutex> lock(mu);
    return merger.take_rows();
  }
};

Coordinator::Coordinator(runner::SweepCliOptions grid_options,
                         Options options)
    : impl_(std::make_unique<Impl>(std::move(grid_options), options)) {
  // Resolving the grid here (not in run) validates it before any worker is
  // spawned and pins the spec count announced in job messages. The count is
  // computed from the grid dimensions rather than a full expand(): the
  // coordinator never executes a run, and expand() would copy each scenario
  // (up to 10^6 blocks) into every one of its specs just to be counted.
  const runner::SweepGrid grid =
      runner::make_sweep_grid(impl_->grid_options);
  const size_t seeds =
      grid.seeds.empty() ? grid.seed_count : grid.seeds.size();
  impl_->spec_count = grid.scenarios.size() *
                      std::max<size_t>(1, grid.configs.size()) * seeds;
}

Coordinator::~Coordinator() = default;

uint16_t Coordinator::port() const { return impl_->listener.port(); }

size_t Coordinator::spec_count() const { return impl_->spec_count; }

std::vector<runner::RunRow> Coordinator::run() { return impl_->run(); }

}  // namespace sb::dist
