#include "dist/socket.hpp"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>

#include "util/fmt.hpp"

namespace sb::dist {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

/// Blocks until the fd is readable; false on timeout (timeout_ms >= 0).
bool wait_readable(int fd, int timeout_ms) {
  pollfd pfd{fd, POLLIN, 0};
  for (;;) {
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc > 0) return true;
    if (rc == 0) return false;
    if (errno != EINTR) throw_errno("poll");
  }
}

/// A peer may die (or be SIGSTOP'd) between the bytes of one frame; a frame
/// that started must finish within this long per chunk or the connection is
/// declared dead — otherwise a mid-frame stall would block the receiving
/// thread forever, invisible to the silence-based death detection.
constexpr int kMidFrameTimeoutMs = 30000;

/// Reads exactly `len` bytes; false on orderly EOF or connection error
/// before the first byte, throws if the stream dies or stalls mid-object.
bool read_exact(int fd, void* data, size_t len, bool throw_on_eof) {
  auto* bytes = static_cast<char*>(data);
  size_t got = 0;
  while (got < len) {
    if (!wait_readable(fd, kMidFrameTimeoutMs)) {
      throw std::runtime_error("connection stalled mid-frame");
    }
    const ssize_t n = ::recv(fd, bytes + got, len - got, 0);
    if (n > 0) {
      got += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    // n == 0 is orderly EOF, n < 0 a connection error.
    if (got == 0 && !throw_on_eof) return false;
    throw std::runtime_error("connection died mid-frame");
  }
  return true;
}

uint32_t load_le32(const unsigned char* b) {
  return static_cast<uint32_t>(b[0]) | static_cast<uint32_t>(b[1]) << 8 |
         static_cast<uint32_t>(b[2]) << 16 |
         static_cast<uint32_t>(b[3]) << 24;
}

void store_le32(unsigned char* b, uint32_t v) {
  b[0] = static_cast<unsigned char>(v);
  b[1] = static_cast<unsigned char>(v >> 8);
  b[2] = static_cast<unsigned char>(v >> 16);
  b[3] = static_cast<unsigned char>(v >> 24);
}

sockaddr_in resolve(const std::string& host, uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1) return addr;
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* info = nullptr;
  const int rc = ::getaddrinfo(host.c_str(), nullptr, &hints, &info);
  if (rc != 0 || info == nullptr) {
    throw std::runtime_error("cannot resolve host '" + host +
                             "': " + ::gai_strerror(rc));
  }
  addr.sin_addr =
      reinterpret_cast<const sockaddr_in*>(info->ai_addr)->sin_addr;
  ::freeaddrinfo(info);
  return addr;
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Socket Socket::connect_to(const std::string& host, uint16_t port,
                          int timeout_ms, int retry_ms) {
  const sockaddr_in addr = resolve(host, port);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  for (;;) {
    // CLOEXEC everywhere: the sweep front end fork/execs worker fleets,
    // which must not inherit coordinator fds (an orphaned worker holding a
    // duplicate of the listener would pin the port in LISTEN forever).
    const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) throw_errno("socket");
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return Socket(fd);
    }
    const int saved_errno = errno;
    ::close(fd);
    if (std::chrono::steady_clock::now() >= deadline) {
      errno = saved_errno;
      throw_errno(fmt("cannot connect to {}:{}", host, port));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(retry_ms));
  }
}

void Socket::send_frame(std::string_view payload) {
  if (payload.size() > kMaxFramePayload) {
    throw std::runtime_error(
        fmt("frame payload of {} bytes exceeds the {} byte cap",
            payload.size(), kMaxFramePayload));
  }
  unsigned char prefix[4];
  store_le32(prefix, static_cast<uint32_t>(payload.size()));
  std::string wire(reinterpret_cast<const char*>(prefix), sizeof(prefix));
  wire.append(payload);
  size_t sent = 0;
  while (sent < wire.size()) {
    const ssize_t n =
        ::send(fd_, wire.data() + sent, wire.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("send");
    }
    sent += static_cast<size_t>(n);
  }
}

void Socket::send_partial_frame(std::string_view payload) {
  // Chaos `partial`: a correct length prefix promising more bytes than will
  // ever arrive. The peer's mid-frame stall timeout is what must save it.
  unsigned char prefix[4];
  store_le32(prefix, static_cast<uint32_t>(payload.size()));
  std::string wire(reinterpret_cast<const char*>(prefix), sizeof(prefix));
  wire.append(payload.substr(0, payload.size() / 2));
  size_t sent = 0;
  while (sent < wire.size()) {
    const ssize_t n =
        ::send(fd_, wire.data() + sent, wire.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("send");
    }
    sent += static_cast<size_t>(n);
  }
  close();
}

RecvResult Socket::recv_frame(int timeout_ms) {
  // The idle wait before a frame starts honors the caller's timeout
  // (negative = forever, e.g. a worker waiting for its next unit); once the
  // first byte is in, read_exact's mid-frame timeout takes over.
  if (!wait_readable(fd_, timeout_ms)) {
    return {RecvStatus::kTimeout, {}};
  }
  unsigned char prefix[4];
  if (!read_exact(fd_, prefix, sizeof(prefix), /*throw_on_eof=*/false)) {
    return {RecvStatus::kClosed, {}};
  }
  const uint32_t len = load_le32(prefix);
  if (len > kMaxFramePayload) {
    throw std::runtime_error(
        fmt("corrupt frame: {} byte payload exceeds the {} byte cap", len,
            kMaxFramePayload));
  }
  RecvResult result{RecvStatus::kFrame, std::string(len, '\0')};
  if (len > 0) read_exact(fd_, result.payload.data(), len, true);
  return result;
}

Listener::Listener(const std::string& bind_address, uint16_t port,
                   int backlog) {
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) throw_errno("socket");
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = resolve(bind_address, port);
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string what =
        fmt("cannot bind {}:{}", bind_address, port);
    ::close(fd_);
    fd_ = -1;
    throw_errno(what);
  }
  if (::listen(fd_, backlog) != 0) {
    ::close(fd_);
    fd_ = -1;
    throw_errno("listen");
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    ::close(fd_);
    fd_ = -1;
    throw_errno("getsockname");
  }
  port_ = ntohs(bound.sin_port);
}

void Listener::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::optional<Socket> Listener::accept(int timeout_ms) {
  if (fd_ < 0) return std::nullopt;
  if (!wait_readable(fd_, timeout_ms)) return std::nullopt;
  const int fd = ::accept4(fd_, nullptr, nullptr, SOCK_CLOEXEC);
  if (fd < 0) {
    if (errno == EINTR || errno == ECONNABORTED) return std::nullopt;
    throw_errno("accept");
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Socket(fd);
}

}  // namespace sb::dist
