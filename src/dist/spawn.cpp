#include "dist/spawn.hpp"

#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include "util/fmt.hpp"

namespace sb::dist {

namespace {

bool file_exists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0 && S_ISREG(st.st_mode);
}

}  // namespace

std::string default_worker_binary() {
  if (const char* override_path = std::getenv("SB_SWEEP_WORKER_BIN")) {
    if (file_exists(override_path)) return override_path;
    throw std::runtime_error(fmt(
        "SB_SWEEP_WORKER_BIN points at '{}', which does not exist",
        override_path));
  }
  char self[4096];
  const ssize_t len = ::readlink("/proc/self/exe", self, sizeof(self) - 1);
  if (len > 0) {
    self[len] = '\0';
    std::string dir(self);
    const size_t slash = dir.rfind('/');
    dir.resize(slash == std::string::npos ? 0 : slash + 1);
    const std::string candidate = dir + "sweep_worker";
    if (file_exists(candidate)) return candidate;
  }
  throw std::runtime_error(
      "cannot locate the sweep_worker binary next to this executable "
      "(set SB_SWEEP_WORKER_BIN)");
}

std::vector<WorkerProcess> spawn_worker_fleet(
    const std::string& worker_binary, const std::string& host, uint16_t port,
    size_t count, long fault_after_units, bool verbose) {
  if (!file_exists(worker_binary)) {
    throw std::runtime_error(
        fmt("worker binary '{}' does not exist", worker_binary));
  }
  const std::string connect = fmt("{}:{}", host, port);
  std::vector<WorkerProcess> fleet;
  fleet.reserve(count);
  for (size_t index = 0; index < count; ++index) {
    const pid_t pid = ::fork();
    if (pid < 0) {
      throw std::runtime_error(fmt("fork failed after {} workers: {}",
                                   fleet.size(), std::strerror(errno)));
    }
    if (pid == 0) {
      // Child. Only async-signal-safe-ish work until exec; the parent is
      // still single-threaded here so setenv is fine.
      if (index == 0 && fault_after_units >= 0) {
        ::setenv(kWorkerFaultEnv, std::to_string(fault_after_units).c_str(),
                 1);
      }
      const char* argv[] = {worker_binary.c_str(), "--connect",
                            connect.c_str(),
                            verbose ? "--verbose" : nullptr, nullptr};
      ::execv(worker_binary.c_str(), const_cast<char* const*>(argv));
      std::fprintf(stderr, "exec '%s' failed: %s\n", worker_binary.c_str(),
                   std::strerror(errno));
      ::_exit(127);
    }
    fleet.push_back({pid});
  }
  return fleet;
}

int reap_worker(const WorkerProcess& worker) {
  int status = 0;
  for (;;) {
    const pid_t rc = ::waitpid(worker.pid, &status, 0);
    if (rc == worker.pid) break;
    if (rc < 0 && errno == EINTR) continue;
    return 127;
  }
  if (WIFEXITED(status)) return WEXITSTATUS(status);
  if (WIFSIGNALED(status)) return 128 + WTERMSIG(status);
  return 127;
}

}  // namespace sb::dist
