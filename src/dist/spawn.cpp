#include "dist/spawn.hpp"

#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include "util/fmt.hpp"

namespace sb::dist {

namespace {

bool file_exists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0 && S_ISREG(st.st_mode);
}

/// The sweep_worker candidate sitting in the same directory as `exe_path`.
std::string sibling_worker(const std::string& exe_path) {
  std::string dir(exe_path);
  const size_t slash = dir.rfind('/');
  dir.resize(slash == std::string::npos ? 0 : slash + 1);
  return dir + "sweep_worker";
}

}  // namespace

std::string default_worker_binary(const std::string& argv0) {
  const auto resolved = [](const std::string& path, const char* how) {
    std::fprintf(stderr, "sweep dist: worker binary %s (via %s)\n",
                 path.c_str(), how);
    return path;
  };
  if (const char* override_path = std::getenv("SB_SWEEP_WORKER_BIN")) {
    if (file_exists(override_path)) {
      return resolved(override_path, "SB_SWEEP_WORKER_BIN");
    }
    throw std::runtime_error(fmt(
        "SB_SWEEP_WORKER_BIN points at '{}', which does not exist",
        override_path));
  }
  char self[4096];
  const ssize_t len = ::readlink("/proc/self/exe", self, sizeof(self) - 1);
  if (len > 0) {
    self[len] = '\0';
    const std::string candidate = sibling_worker(self);
    if (file_exists(candidate)) {
      return resolved(candidate, "/proc/self/exe");
    }
  }
  // /proc may be unmounted (containers, chroots) or the readlink may fail;
  // fall back to the invocation path. A bare command name carries no
  // directory — only argv0 values with a slash can locate a sibling.
  if (argv0.find('/') != std::string::npos) {
    const std::string candidate = sibling_worker(argv0);
    if (file_exists(candidate)) {
      return resolved(candidate, "argv[0] fallback");
    }
  }
  throw std::runtime_error(
      "cannot locate the sweep_worker binary next to this executable "
      "(set SB_SWEEP_WORKER_BIN)");
}

std::vector<WorkerProcess> spawn_worker_fleet(
    const std::string& worker_binary, const std::string& host, uint16_t port,
    size_t count, const FleetOptions& options) {
  if (!file_exists(worker_binary)) {
    throw std::runtime_error(
        fmt("worker binary '{}' does not exist", worker_binary));
  }
  const std::string connect = fmt("{}:{}", host, port);
  const std::string reconnect_ms = std::to_string(options.reconnect_window_ms);
  std::vector<WorkerProcess> fleet;
  fleet.reserve(count);
  for (size_t index = 0; index < count; ++index) {
    const pid_t pid = ::fork();
    if (pid < 0) {
      throw std::runtime_error(fmt("fork failed after {} workers: {}",
                                   fleet.size(), std::strerror(errno)));
    }
    if (pid == 0) {
      // Child. Only async-signal-safe-ish work until exec; the parent is
      // still single-threaded here so setenv is fine.
      if (index == 0 && options.fault_after_units >= 0) {
        ::setenv(kWorkerFaultEnv,
                 std::to_string(options.fault_after_units).c_str(), 1);
      }
      std::vector<const char*> argv = {worker_binary.c_str(), "--connect",
                                       connect.c_str()};
      if (options.reconnect_window_ms > 0) {
        argv.push_back("--reconnect-window-ms");
        argv.push_back(reconnect_ms.c_str());
      }
      if (options.verbose) argv.push_back("--verbose");
      argv.push_back(nullptr);
      ::execv(worker_binary.c_str(), const_cast<char* const*>(argv.data()));
      std::fprintf(stderr, "exec '%s' failed: %s\n", worker_binary.c_str(),
                   std::strerror(errno));
      ::_exit(127);
    }
    fleet.push_back({pid});
  }
  return fleet;
}

int reap_worker(const WorkerProcess& worker) {
  int status = 0;
  for (;;) {
    const pid_t rc = ::waitpid(worker.pid, &status, 0);
    if (rc == worker.pid) break;
    if (rc < 0 && errno == EINTR) continue;
    return 127;
  }
  if (WIFEXITED(status)) return WEXITSTATUS(status);
  if (WIFSIGNALED(status)) return 128 + WTERMSIG(status);
  return 127;
}

}  // namespace sb::dist
