#pragma once
// Distributed sweep worker: connects to a coordinator, re-materializes the
// sweep grid from the job description, and executes pulled work units via
// runner::execute_run, streaming RunRow batches back.
//
// A worker is stateless between units — any unit can run on any worker in
// any order, and a re-executed unit produces byte-identical rows (run
// execution is deterministic and seed forking is index-keyed) — which is
// what lets the coordinator reassign units from dead workers freely.
//
// Runs in-process (tests drive Worker::run on a thread) or as the
// tools/sweep_worker binary (one per subprocess or remote machine).

#include <cstddef>
#include <cstdint>
#include <string>

namespace sb::dist {

class Worker {
 public:
  /// Worker::run exit codes (also the sweep_worker process exit codes).
  static constexpr int kExitOk = 0;     ///< coordinator sent stop
  static constexpr int kExitFault = 3;  ///< fault injection tripped

  struct Options {
    std::string host = "127.0.0.1";
    uint16_t port = 0;
    /// Budget for the initial connect (covers a coordinator that is still
    /// binding its listener; connect is retried until the deadline).
    int connect_timeout_ms = 10000;
    /// Liveness heartbeat period while executing or idle.
    int heartbeat_ms = 1000;
    /// Fault injection for tests and the CI dist-smoke job: after
    /// completing this many units the worker drops its connection without
    /// reporting the next unit — an abrupt mid-sweep death as seen by the
    /// coordinator. SIZE_MAX disables.
    size_t abandon_after_units = SIZE_MAX;
    /// Chatter to stderr (connect, units executed, fault trip).
    bool verbose = false;
  };

  explicit Worker(Options options);

  /// Connects, serves until the coordinator says stop, and returns an exit
  /// code. Throws std::runtime_error on connection or protocol failure.
  [[nodiscard]] int run();

 private:
  Options options_;
};

}  // namespace sb::dist
