#pragma once
// Distributed sweep worker: connects to a coordinator, re-materializes each
// job's sweep grid from its description, and executes pulled work units via
// runner::execute_run, streaming RunRow batches back.
//
// A worker is stateless between units — any unit can run on any worker in
// any order, and a re-executed unit produces byte-identical rows (run
// execution is deterministic and seed forking is index-keyed) — which is
// what lets the coordinator reassign units from dead workers freely.
//
// The worker distinguishes an orderly stop message (exit 0) from a lost
// coordinator (connection closed or reset). With a reconnect window
// configured it rides out the latter: it keeps the result of any unit the
// coordinator has not yet acknowledged, retries the coordinator's address
// with jittered exponential backoff, and redelivers that result on the new
// connection — the coordinator's at-most-once merge drops it if the
// original delivery actually landed. This is what lets a fleet survive a
// coordinator SIGKILL + `sweep --resume` cycle without losing or
// double-counting work.
//
// Runs in-process (tests drive Worker::run on a thread) or as the
// tools/sweep_worker binary (one per subprocess or remote machine).

#include <cstddef>
#include <cstdint>
#include <string>

namespace sb::dist {

class Worker {
 public:
  /// Worker::run exit codes (also the sweep_worker process exit codes).
  static constexpr int kExitOk = 0;     ///< coordinator sent stop
  static constexpr int kExitFault = 3;  ///< fault injection tripped

  struct Options {
    std::string host = "127.0.0.1";
    uint16_t port = 0;
    /// Budget for the initial connect (covers a coordinator that is still
    /// binding its listener; connect is retried until the deadline).
    int connect_timeout_ms = 10000;
    /// Liveness heartbeat period while executing or idle.
    int heartbeat_ms = 1000;
    /// How long to keep retrying a coordinator that vanished mid-session
    /// before giving up, measured from the first failed attempt of the
    /// outage. 0 disables reconnect — the first connection loss is fatal,
    /// the pre-reconnect behavior.
    int reconnect_window_ms = 0;
    /// First reconnect backoff delay; doubles per failed attempt (capped at
    /// 5 s) with uniform jitter in [delay/2, delay] so a whole fleet does
    /// not stampede a freshly resumed coordinator.
    int reconnect_base_ms = 100;
    /// Cores announced in hello for heterogeneous dispatch; 0 = detect via
    /// hardware_concurrency.
    size_t cores = 0;
    /// Memory announced in hello; 0 = detect from sysconf.
    uint64_t memory_mb = 0;
    /// Shard-thread override passed to execute_run; 0 keeps each spec's own
    /// value. Row values are shard_threads-independent (proven by the
    /// determinism suite), so a big box may raise this freely.
    size_t shard_threads = 0;
    /// Fault injection for tests and the CI dist-smoke job: after
    /// completing this many units the worker drops its connection without
    /// reporting the next unit — an abrupt mid-sweep death as seen by the
    /// coordinator. SIZE_MAX disables. (Scripted faults live in
    /// dist/chaos.hpp; this single-shot knob predates them.)
    size_t abandon_after_units = SIZE_MAX;
    /// Chatter to stderr (connect, units executed, reconnects, faults).
    bool verbose = false;
  };

  explicit Worker(Options options);

  /// Connects, serves until the coordinator says stop, and returns an exit
  /// code. Throws std::runtime_error on connection or protocol failure
  /// (after the reconnect window, if one is configured, is exhausted).
  [[nodiscard]] int run();

 private:
  Options options_;
};

}  // namespace sb::dist
