#include "dist/chaos.hpp"

#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "obs/trace.hpp"
#include "util/fmt.hpp"
#include "util/log.hpp"
#include "util/string_util.hpp"

namespace sb::dist::chaos {

namespace {

enum class Fault { kKill, kHang, kDelay, kPartial };

struct Rule {
  std::string point;
  uint64_t at = 0;  // 1-based hit ordinal
  Fault fault = Fault::kKill;
  int delay_ms = 0;
  bool fired = false;
};

struct Schedule {
  std::vector<Rule> rules;
  std::vector<std::pair<std::string, uint64_t>> hits;  // per-point counters

  uint64_t& counter(std::string_view point) {
    for (auto& [name, count] : hits) {
      if (name == point) return count;
    }
    hits.emplace_back(std::string(point), 0);
    return hits.back().second;
  }
};

Rule parse_rule(const std::string& text) {
  const size_t at = text.find('@');
  const size_t colon = text.find(':', at == std::string::npos ? 0 : at);
  if (at == std::string::npos || colon == std::string::npos || at == 0) {
    throw std::runtime_error(
        fmt("SB_DIST_CHAOS rule '{}' is not point@N:action", text));
  }
  Rule rule;
  rule.point = text.substr(0, at);
  const auto ordinal = parse_int(text.substr(at + 1, colon - at - 1));
  if (!ordinal.has_value() || *ordinal < 1) {
    throw std::runtime_error(
        fmt("SB_DIST_CHAOS rule '{}' needs a hit ordinal >= 1", text));
  }
  rule.at = static_cast<uint64_t>(*ordinal);
  const std::string action = text.substr(colon + 1);
  if (action == "kill") {
    rule.fault = Fault::kKill;
  } else if (action == "hang") {
    rule.fault = Fault::kHang;
  } else if (action == "partial") {
    rule.fault = Fault::kPartial;
  } else if (action.rfind("delay=", 0) == 0) {
    const auto ms = parse_int(action.substr(6));
    if (!ms.has_value() || *ms < 0) {
      throw std::runtime_error(
          fmt("SB_DIST_CHAOS rule '{}' has a bad delay", text));
    }
    rule.fault = Fault::kDelay;
    rule.delay_ms = static_cast<int>(*ms);
  } else {
    throw std::runtime_error(fmt(
        "SB_DIST_CHAOS rule '{}' has unknown action '{}' "
        "(kill | hang | delay=<ms> | partial)",
        text, action));
  }
  return rule;
}

Schedule parse_spec(const std::string& spec) {
  Schedule schedule;
  size_t start = 0;
  while (start <= spec.size()) {
    size_t end = spec.find(';', start);
    if (end == std::string::npos) end = spec.size();
    const std::string rule = spec.substr(start, end - start);
    if (!rule.empty()) schedule.rules.push_back(parse_rule(rule));
    start = end + 1;
  }
  return schedule;
}

std::mutex g_mu;
bool g_parsed = false;
Schedule g_schedule;

/// Parses SB_DIST_CHAOS once (callers hold g_mu).
Schedule& schedule_locked() {
  if (!g_parsed) {
    g_schedule = Schedule{};
    if (const char* spec = std::getenv("SB_DIST_CHAOS")) {
      g_schedule = parse_spec(spec);
    }
    g_parsed = true;
  }
  return g_schedule;
}

}  // namespace

bool armed() {
  std::lock_guard<std::mutex> lock(g_mu);
  return !schedule_locked().rules.empty();
}

Action hit(std::string_view point) {
  Fault fault;
  int delay_ms = 0;
  uint64_t ordinal = 0;
  {
    std::lock_guard<std::mutex> lock(g_mu);
    Schedule& schedule = schedule_locked();
    if (schedule.rules.empty()) return Action::kNone;
    ordinal = ++schedule.counter(point);
    Rule* match = nullptr;
    for (Rule& rule : schedule.rules) {
      if (!rule.fired && rule.point == point && rule.at == ordinal) {
        match = &rule;
        break;
      }
    }
    if (match == nullptr) return Action::kNone;
    match->fired = true;
    fault = match->fault;
    delay_ms = match->delay_ms;
  }
  obs::TraceWriter::instance().instant("chaos", "dist", {{"hit", ordinal}});
  switch (fault) {
    case Fault::kKill:
      // Abrupt, SIGKILL-grade: no destructors, no stream flushes, no
      // journal fsync beyond what already happened.
      log_warn("chaos: killing process at {} hit {}", point, ordinal);
      ::_exit(137);
    case Fault::kHang:
      log_warn("chaos: hanging at {} hit {}", point, ordinal);
      std::this_thread::sleep_for(std::chrono::hours(1));
      return Action::kNone;
    case Fault::kDelay:
      log_warn("chaos: delaying {} ms at {} hit {}", delay_ms, point,
               ordinal);
      std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
      return Action::kNone;
    case Fault::kPartial:
      log_warn("chaos: partial frame at {} hit {}", point, ordinal);
      return Action::kPartial;
  }
  return Action::kNone;
}

void reset_for_tests() {
  std::lock_guard<std::mutex> lock(g_mu);
  g_parsed = false;
  g_schedule = Schedule{};
}

}  // namespace sb::dist::chaos
