#include "dist/client.hpp"

#include <unistd.h>

#include <cstdio>
#include <stdexcept>

#include "runner/merge.hpp"
#include "util/fmt.hpp"

namespace sb::dist {

Client::Client(Options options) : options_(std::move(options)) {
  socket_ = Socket::connect_to(options_.host, options_.port,
                               options_.connect_timeout_ms);
  socket_.send_frame(encode(Message::hello(static_cast<uint64_t>(::getpid()),
                                           Role::kClient, /*cores=*/1,
                                           /*memory_mb=*/0)));
  const RecvResult first = socket_.recv_frame(options_.connect_timeout_ms);
  if (first.status != RecvStatus::kFrame ||
      decode(first.payload).type != MsgType::kWelcome) {
    throw std::runtime_error("coordinator did not say welcome");
  }
}

Message Client::request(const Message& message, MsgType expected) {
  socket_.send_frame(encode(message));
  const RecvResult frame = socket_.recv_frame(/*timeout_ms=*/-1);
  if (frame.status != RecvStatus::kFrame) {
    // The coordinator closes the connection on a protocol error (e.g. an
    // unknown job id) rather than answering.
    throw std::runtime_error(
        fmt("coordinator dropped the connection answering '{}' (unknown "
            "job, or the service went away)",
            to_string(message.type)));
  }
  const Message reply = decode(frame.payload);
  if (reply.type != expected) {
    throw std::runtime_error(fmt("expected '{}' from the coordinator, "
                                 "got '{}'",
                                 to_string(expected), to_string(reply.type)));
  }
  return reply;
}

uint64_t Client::submit(const runner::SweepCliOptions& grid,
                        size_t unit_size, size_t min_cores) {
  const Message reply = request(
      Message::submit(grid, unit_size, min_cores), MsgType::kSubmitted);
  if (options_.verbose) {
    std::fprintf(stderr, "sweep client: job %llu queued (%zu specs)\n",
                 static_cast<unsigned long long>(reply.job),
                 reply.spec_count);
  }
  return reply.job;
}

Client::JobStatus Client::status(uint64_t job) {
  const Message reply =
      request(Message::status(job), MsgType::kJobStatus);
  return {reply.job, reply.state, reply.merged, reply.total};
}

runner::SweepCliOptions Client::describe(uint64_t job) {
  return request(Message::job_request(job), MsgType::kJob).options;
}

std::vector<runner::RunRow> Client::fetch(uint64_t job) {
  // The stream announces units as they merged but never the grid size;
  // a status round-trip pins the total so completeness is checkable.
  const JobStatus before = status(job);
  runner::ResultMerger merger(before.total);
  socket_.send_frame(encode(Message::fetch(job)));
  for (;;) {
    const RecvResult frame = socket_.recv_frame(/*timeout_ms=*/-1);
    if (frame.status != RecvStatus::kFrame) {
      throw std::runtime_error(
          fmt("coordinator went away mid-fetch with {}/{} runs received",
              merger.merged(), merger.total()));
    }
    const Message message = decode(frame.payload);
    if (message.type == MsgType::kResult) {
      if (message.job != job ||
          merger.accept(message.unit.begin, message.rows) ==
              runner::ResultMerger::Accept::kInvalid) {
        throw std::runtime_error(
            fmt("malformed result batch in the fetch stream of job {}",
                job));
      }
      continue;
    }
    if (message.type != MsgType::kJobDone || message.job != job) {
      throw std::runtime_error(fmt("unexpected '{}' in the fetch stream",
                                   to_string(message.type)));
    }
    if (message.state == JobState::kCancelled) {
      throw std::runtime_error(
          fmt("job {} was cancelled with {}/{} runs merged", job,
              merger.merged(), merger.total()));
    }
    if (!merger.complete()) {
      throw std::runtime_error(
          fmt("fetch stream of job {} ended with {}/{} runs", job,
              merger.merged(), merger.total()));
    }
    return merger.take_rows();
  }
}

Client::JobStatus Client::cancel(uint64_t job) {
  const Message reply =
      request(Message::cancel(job), MsgType::kJobStatus);
  return {reply.job, reply.state, reply.merged, reply.total};
}

util::JsonValue Client::metrics() {
  return request(Message::metrics_request(), MsgType::kMetricsReport).metrics;
}

}  // namespace sb::dist
