#include "dist/journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runner/serialize.hpp"
#include "util/fmt.hpp"
#include "util/json.hpp"

namespace sb::dist {

namespace {

using util::JsonValue;

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

const JsonValue& require(const JsonValue& json, std::string_view key,
                         JsonValue::Kind kind) {
  const JsonValue* value = json.find(key);
  if (value == nullptr || value->kind() != kind) {
    throw std::runtime_error("journal record missing or mistyped field '" +
                             std::string(key) + "'");
  }
  return *value;
}

size_t get_size(const JsonValue& json, std::string_view key) {
  return static_cast<size_t>(
      require(json, key, JsonValue::Kind::kNumber).as_number());
}

JsonValue job_to_json(const JournalJob& job) {
  JsonValue out = JsonValue::object();
  out["record"] = JsonValue("job");
  out["job"] = JsonValue(job.job);
  out["options"] = runner::options_to_json(job.options);
  out["spec_count"] = JsonValue(job.spec_count);
  out["unit_size"] = JsonValue(job.unit_size);
  out["min_cores"] = JsonValue(job.min_cores);
  return out;
}

JournalJob job_from_json(const JsonValue& json) {
  JournalJob job;
  job.job = static_cast<uint64_t>(get_size(json, "job"));
  job.options = runner::options_from_json(
      require(json, "options", JsonValue::Kind::kObject));
  job.spec_count = get_size(json, "spec_count");
  job.unit_size = get_size(json, "unit_size");
  job.min_cores = get_size(json, "min_cores");
  if (job.unit_size == 0) {
    throw std::runtime_error("journal job record has unit_size 0");
  }
  return job;
}

JournalBatch batch_from_json(const JsonValue& json) {
  JournalBatch batch;
  batch.job = static_cast<uint64_t>(get_size(json, "job"));
  batch.unit.id = get_size(json, "id");
  batch.unit.begin = get_size(json, "begin");
  batch.unit.end = get_size(json, "end");
  if (batch.unit.end < batch.unit.begin) {
    throw std::runtime_error("journal batch record has end < begin");
  }
  for (const JsonValue& row :
       require(json, "rows", JsonValue::Kind::kArray).as_array()) {
    batch.rows.push_back(runner::row_from_json(row));
  }
  if (batch.rows.size() != batch.unit.size()) {
    throw std::runtime_error(
        fmt("journal batch record covers {} specs but carries {} rows",
            batch.unit.size(), batch.rows.size()));
  }
  return batch;
}

}  // namespace

JournalWriter::~JournalWriter() { close(); }

JournalWriter::JournalWriter(JournalWriter&& other) noexcept
    : fd_(other.fd_), path_(std::move(other.path_)) {
  other.fd_ = -1;
}

JournalWriter& JournalWriter::operator=(JournalWriter&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    path_ = std::move(other.path_);
    other.fd_ = -1;
  }
  return *this;
}

void JournalWriter::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

JournalWriter JournalWriter::create(const std::string& path,
                                    const JournalHeader& header) {
  JournalWriter writer;
  writer.path_ = path;
  writer.fd_ = ::open(path.c_str(),
                      O_WRONLY | O_CREAT | O_TRUNC | O_APPEND | O_CLOEXEC,
                      0644);
  if (writer.fd_ < 0) throw_errno(fmt("cannot create journal '{}'", path));
  JsonValue record = JsonValue::object();
  record["record"] = JsonValue("header");
  record["format"] = JsonValue(kJournalFormat);
  record["bind"] = JsonValue(header.bind_address);
  record["port"] = JsonValue(header.port);
  writer.append_line(record.dump());
  return writer;
}

JournalWriter JournalWriter::append_to(const std::string& path) {
  JournalWriter writer;
  writer.path_ = path;
  writer.fd_ =
      ::open(path.c_str(), O_WRONLY | O_APPEND | O_CLOEXEC);
  if (writer.fd_ < 0) {
    throw_errno(fmt("cannot open journal '{}' for append", path));
  }
  return writer;
}

void JournalWriter::append_line(const std::string& line) {
  const obs::TraceSpan span("journal_fsync", "dist",
                            {{"bytes", line.size() + 1}});
  const auto start = std::chrono::steady_clock::now();
  // One write per record: O_APPEND makes the offset atomic, and a crash
  // mid-call tears at most this line — which read_journal drops.
  std::string wire = line;
  wire.push_back('\n');
  size_t written = 0;
  while (written < wire.size()) {
    const ssize_t n =
        ::write(fd_, wire.data() + written, wire.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno(fmt("journal '{}' write failed", path_));
    }
    written += static_cast<size_t>(n);
  }
  // Durable before the batch is acknowledged to the fleet: a record that
  // survives only in the page cache would vanish with a crashed box.
  if (::fdatasync(fd_) != 0) {
    throw_errno(fmt("journal '{}' fsync failed", path_));
  }
  const auto micros = std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::steady_clock::now() - start);
  obs::service().record("journal.fsync_us",
                        static_cast<uint64_t>(micros.count()));
}

void JournalWriter::record_job(const JournalJob& job) {
  append_line(job_to_json(job).dump());
}

void JournalWriter::record_batch(uint64_t job, const WorkUnit& unit,
                                 const std::vector<runner::RunRow>& rows) {
  JsonValue record = JsonValue::object();
  record["record"] = JsonValue("batch");
  record["job"] = JsonValue(job);
  record["id"] = JsonValue(unit.id);
  record["begin"] = JsonValue(unit.begin);
  record["end"] = JsonValue(unit.end);
  JsonValue out_rows = JsonValue::array();
  for (const runner::RunRow& row : rows) {
    out_rows.push_back(runner::row_to_json(row));
  }
  record["rows"] = std::move(out_rows);
  append_line(record.dump());
}

void JournalWriter::record_cancel(uint64_t job) {
  JsonValue record = JsonValue::object();
  record["record"] = JsonValue("cancel");
  record["job"] = JsonValue(job);
  append_line(record.dump());
}

JournalContents read_journal(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error(fmt("cannot read journal '{}'", path));
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  JournalContents contents;
  bool have_header = false;
  size_t start = 0;
  size_t line_no = 0;
  while (start < text.size()) {
    const size_t newline = text.find('\n', start);
    const bool terminated = newline != std::string::npos;
    const std::string line =
        text.substr(start, (terminated ? newline : text.size()) - start);
    const bool last = !terminated || newline + 1 >= text.size();
    ++line_no;
    try {
      const JsonValue json = util::parse_json(line);
      if (!json.is_object()) throw std::runtime_error("not an object");
      if (!terminated) {
        // A record is only committed once its newline hit the disk.
        throw std::runtime_error("unterminated record");
      }
      const std::string& record =
          require(json, "record", JsonValue::Kind::kString).as_string();
      if (record == "header") {
        const std::string& format =
            require(json, "format", JsonValue::Kind::kString).as_string();
        if (format != kJournalFormat) {
          throw std::runtime_error(fmt("unsupported journal format '{}'",
                                       format));
        }
        contents.header.bind_address =
            require(json, "bind", JsonValue::Kind::kString).as_string();
        contents.header.port =
            static_cast<uint16_t>(get_size(json, "port"));
        have_header = true;
      } else if (record == "job") {
        contents.jobs.push_back(job_from_json(json));
      } else if (record == "batch") {
        contents.batches.push_back(batch_from_json(json));
      } else if (record == "cancel") {
        contents.cancelled_jobs.push_back(
            static_cast<uint64_t>(get_size(json, "job")));
      } else {
        throw std::runtime_error(fmt("unknown record kind '{}'", record));
      }
    } catch (const std::exception& error) {
      if (last) break;  // torn tail from a crashed coordinator — drop it
      throw std::runtime_error(fmt("journal '{}' line {} is corrupt: {}",
                                   path, line_no, error.what()));
    }
    if (!terminated) break;
    start = newline + 1;
  }
  if (!have_header) {
    throw std::runtime_error(
        fmt("journal '{}' has no {} header record", path, kJournalFormat));
  }
  return contents;
}

}  // namespace sb::dist
