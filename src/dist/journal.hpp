#pragma once
// Write-ahead result journal of the distributed sweep coordinator.
//
// Every result batch the coordinator merges is appended to an on-disk
// journal and fsync'd *before* the merge becomes visible to the fleet (the
// worker's next frame is only served after the record is durable), so a
// coordinator killed at any instant can be restarted with
// `sweep --resume <journal>` and lose no completed work: the journal is
// replayed through the same runner::ResultMerger (whose at-most-once /
// half-overlap rules make replay idempotent), and only unfinished units are
// re-dispatched.
//
// Format ("sb-dist-journal-v1"): a line-oriented append-only file, one JSON
// record per '\n'-terminated line.
//
//   {"record":"header","format":"sb-dist-journal-v1","bind":...,"port":N}
//   {"record":"job","job":J,"options":{...},"spec_count":N,"unit_size":U,
//    "min_cores":C}
//   {"record":"batch","job":J,"id":I,"begin":B,"end":E,"rows":[...]}
//   {"record":"cancel","job":J}
//
// Each record is written with a single write(2) to an O_APPEND fd followed
// by fdatasync, so a crashed coordinator can tear at most the final line.
// read_journal tolerates exactly that: an unparseable or unterminated last
// line is dropped (the batch it described was never acknowledged, so the
// unit simply re-executes); corruption anywhere else throws. Row values
// round-trip bit-exactly (runner/serialize), which is what keeps a resumed
// sweep's merged BENCH_sim.json byte-identical to an uninterrupted one.

#include <cstdint>
#include <string>
#include <vector>

#include "dist/protocol.hpp"
#include "runner/cli_options.hpp"
#include "runner/report.hpp"

namespace sb::dist {

inline constexpr char kJournalFormat[] = "sb-dist-journal-v1";

/// Coordinator identity pinned by the journal: a resumed coordinator
/// re-binds the same address so disconnected workers find it again.
struct JournalHeader {
  std::string bind_address = "127.0.0.1";
  uint16_t port = 0;
};

/// One job known to the coordinator (the primary sweep is job 0; client
/// submissions follow).
struct JournalJob {
  uint64_t job = 0;
  runner::SweepCliOptions options;
  size_t spec_count = 0;
  size_t unit_size = 1;
  /// Heterogeneous dispatch floor: units only go to workers whose hello
  /// announced at least this many cores (0 = any worker).
  size_t min_cores = 0;
};

/// One journaled (already merged and durable) result batch.
struct JournalBatch {
  uint64_t job = 0;
  WorkUnit unit;
  std::vector<runner::RunRow> rows;
};

/// Everything a resumed coordinator needs, in append order.
struct JournalContents {
  JournalHeader header;
  std::vector<JournalJob> jobs;
  std::vector<JournalBatch> batches;
  std::vector<uint64_t> cancelled_jobs;
};

/// Appends records with per-record write + fdatasync. Not thread-safe; the
/// coordinator serializes appends under its state mutex.
class JournalWriter {
 public:
  JournalWriter() = default;
  ~JournalWriter();
  JournalWriter(JournalWriter&& other) noexcept;
  JournalWriter& operator=(JournalWriter&& other) noexcept;
  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  /// Creates (truncating any previous file) and writes the header record.
  [[nodiscard]] static JournalWriter create(const std::string& path,
                                            const JournalHeader& header);

  /// Re-opens an existing journal for appending (resume keeps journaling
  /// into the same file; replay dedups any batch that raced the crash).
  [[nodiscard]] static JournalWriter append_to(const std::string& path);

  [[nodiscard]] bool open() const { return fd_ >= 0; }

  void record_job(const JournalJob& job);
  void record_batch(uint64_t job, const WorkUnit& unit,
                    const std::vector<runner::RunRow>& rows);
  void record_cancel(uint64_t job);

  void close();

 private:
  void append_line(const std::string& line);

  int fd_ = -1;
  std::string path_;
};

/// Parses a journal file. Throws std::runtime_error when the file is
/// missing, the header is absent or wrong-format, or a non-final record is
/// corrupt; a torn final line is silently dropped.
[[nodiscard]] JournalContents read_journal(const std::string& path);

}  // namespace sb::dist
