#include "dist/worker.hpp"

#include <unistd.h>

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "dist/protocol.hpp"
#include "dist/socket.hpp"
#include "runner/sweep.hpp"
#include "util/fmt.hpp"

namespace sb::dist {

namespace {

/// Serializes sends from the main loop and the heartbeat thread onto one
/// socket. Heartbeat failures are swallowed — the main loop will hit the
/// dead socket itself and report properly.
class SharedSender {
 public:
  explicit SharedSender(Socket& socket) : socket_(socket) {}

  void send(const Message& message) {
    const std::string payload = encode(message);
    std::lock_guard<std::mutex> lock(mu_);
    socket_.send_frame(payload);
  }

  bool try_send(const Message& message) {
    try {
      send(message);
      return true;
    } catch (const std::exception&) {
      return false;
    }
  }

 private:
  Socket& socket_;
  std::mutex mu_;
};

}  // namespace

Worker::Worker(Options options) : options_(std::move(options)) {}

int Worker::run() {
  const auto log = [&](const std::string& line) {
    if (options_.verbose) {
      std::fprintf(stderr, "sweep_worker[%d]: %s\n",
                   static_cast<int>(::getpid()), line.c_str());
    }
  };

  Socket socket = Socket::connect_to(options_.host, options_.port,
                                     options_.connect_timeout_ms);
  SharedSender sender(socket);
  sender.send(Message::hello(static_cast<uint64_t>(::getpid())));

  const RecvResult job_frame = socket.recv_frame(options_.connect_timeout_ms);
  if (job_frame.status != RecvStatus::kFrame) {
    throw std::runtime_error("coordinator vanished before sending the job");
  }
  const Message job = decode(job_frame.payload);
  if (job.type != MsgType::kJob) {
    throw std::runtime_error(
        fmt("expected a job message, got '{}'", to_string(job.type)));
  }

  // Re-materialize the grid locally; only the option struct crossed the
  // wire. The spec count must agree with the coordinator's expansion or the
  // two sides would silently disagree about what unit [begin, end) means
  // (e.g. a .surf scenario file differing between machines).
  const std::vector<runner::RunSpec> specs =
      runner::expand(runner::make_sweep_grid(job.options));
  if (specs.size() != job.spec_count) {
    throw std::runtime_error(
        fmt("grid expansion mismatch: coordinator announced {} specs, "
            "local expansion has {}",
            job.spec_count, specs.size()));
  }
  log(fmt("connected to {}:{}, grid has {} specs", options_.host,
          options_.port, specs.size()));

  // Liveness heartbeats, sent for the whole session so the coordinator can
  // tell "still crunching a big unit" from "dead".
  std::mutex hb_mu;
  std::condition_variable hb_cv;
  bool hb_stop = false;
  std::thread heartbeat([&] {
    std::unique_lock<std::mutex> lock(hb_mu);
    while (!hb_cv.wait_for(lock, std::chrono::milliseconds(
                                     options_.heartbeat_ms),
                           [&] { return hb_stop; })) {
      lock.unlock();
      if (!sender.try_send(Message::heartbeat())) {
        lock.lock();
        break;
      }
      lock.lock();
    }
  });
  const auto stop_heartbeat = [&] {
    {
      std::lock_guard<std::mutex> lock(hb_mu);
      hb_stop = true;
    }
    hb_cv.notify_all();
    heartbeat.join();
  };

  size_t units_completed = 0;
  try {
    for (;;) {
      sender.send(Message::pull());
      const RecvResult frame = socket.recv_frame(/*timeout_ms=*/-1);
      if (frame.status != RecvStatus::kFrame) {
        throw std::runtime_error("coordinator closed the connection");
      }
      const Message message = decode(frame.payload);
      if (message.type == MsgType::kStop) {
        log(fmt("stop received after {} units", units_completed));
        break;
      }
      if (message.type != MsgType::kUnit) {
        throw std::runtime_error(fmt("expected unit or stop, got '{}'",
                                     to_string(message.type)));
      }
      const WorkUnit unit = message.unit;
      if (unit.end > specs.size() || unit.begin >= unit.end) {
        throw std::runtime_error(fmt("unit [{}, {}) outside the {}-spec grid",
                                     unit.begin, unit.end, specs.size()));
      }
      if (units_completed >= options_.abandon_after_units) {
        // Fault injection: die holding an assigned unit, mid-sweep, without
        // a word — exactly what a crashed worker looks like from the
        // coordinator's side.
        log(fmt("fault injection: abandoning unit {} and dropping the "
                "connection",
                unit.id));
        stop_heartbeat();
        socket.close();
        return kExitFault;
      }
      std::vector<runner::RunRow> rows;
      rows.reserve(unit.size());
      for (size_t index = unit.begin; index < unit.end; ++index) {
        rows.push_back(
            runner::execute_run(specs[index], /*capture_trace=*/false).row);
      }
      sender.send(Message::result(unit, std::move(rows)));
      ++units_completed;
    }
  } catch (...) {
    stop_heartbeat();
    throw;
  }
  stop_heartbeat();
  return kExitOk;
}

}  // namespace sb::dist
