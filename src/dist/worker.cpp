#include "dist/worker.hpp"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <map>
#include <mutex>
#include <optional>
#include <random>
#include <stdexcept>
#include <thread>
#include <vector>

#include "dist/chaos.hpp"
#include "dist/protocol.hpp"
#include "obs/trace.hpp"
#include "dist/socket.hpp"
#include "runner/sweep.hpp"
#include "util/fmt.hpp"

namespace sb::dist {

namespace {

using Clock = std::chrono::steady_clock;

/// Serializes sends from the main loop and the heartbeat thread onto one
/// socket. Heartbeat failures are swallowed — the main loop will hit the
/// dead socket itself and report properly.
class SharedSender {
 public:
  explicit SharedSender(Socket& socket) : socket_(socket) {}

  void send(const Message& message) {
    const std::string payload = encode(message);
    std::lock_guard<std::mutex> lock(mu_);
    socket_.send_frame(payload);
  }

  bool try_send(const Message& message) {
    try {
      send(message);
      return true;
    } catch (const std::exception&) {
      return false;
    }
  }

  /// Chaos `partial`: truncated frame, then the socket is closed (under the
  /// same mutex, so the heartbeat thread cannot race the teardown).
  void send_partial(const Message& message) {
    const std::string payload = encode(message);
    std::lock_guard<std::mutex> lock(mu_);
    socket_.send_partial_frame(payload);
  }

 private:
  Socket& socket_;
  std::mutex mu_;
};

size_t detect_cores() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

uint64_t detect_memory_mb() {
  const long pages = ::sysconf(_SC_PHYS_PAGES);
  const long page_size = ::sysconf(_SC_PAGE_SIZE);
  if (pages <= 0 || page_size <= 0) return 0;
  return (static_cast<uint64_t>(pages) * static_cast<uint64_t>(page_size)) >>
         20;
}

/// The whole worker state machine; a thin struct so the reconnect loop,
/// session loop, and per-job caches can share state without a parameter
/// parade. One instance per Worker::run call.
struct WorkerLoop {
  const Worker::Options& options;
  size_t cores;
  uint64_t memory_mb;

  /// Expanded spec lists per job, kept across reconnects (job descriptions
  /// are immutable once announced).
  std::map<uint64_t, std::vector<runner::RunSpec>> jobs;
  /// A result the coordinator has not provably processed yet. Set before
  /// every send, redelivered after a reconnect, and cleared as soon as any
  /// later frame arrives on the same connection — TCP ordering guarantees
  /// the coordinator consumed (journaled + merged or deduped) the result
  /// before producing that frame.
  std::optional<Message> pending_result;
  size_t units_completed = 0;
  /// True once the current session got a welcome — used to tell "the same
  /// outage continues" from "a new outage after a healthy session".
  bool session_established = false;
  std::mt19937 jitter_rng{std::random_device{}()};

  explicit WorkerLoop(const Worker::Options& opts)
      : options(opts),
        cores(opts.cores != 0 ? opts.cores : detect_cores()),
        memory_mb(opts.memory_mb != 0 ? opts.memory_mb
                                      : detect_memory_mb()) {}

  void log(const std::string& line) const {
    if (options.verbose) {
      std::fprintf(stderr, "sweep_worker[%d]: %s\n",
                   static_cast<int>(::getpid()), line.c_str());
    }
  }

  [[nodiscard]] Message recv_message(Socket& socket) const {
    const RecvResult frame = socket.recv_frame(/*timeout_ms=*/-1);
    if (frame.status != RecvStatus::kFrame) {
      throw std::runtime_error("coordinator closed the connection");
    }
    return decode(frame.payload);
  }

  /// The expanded specs of `job_id`, fetching the description from the
  /// coordinator on first encounter. Returns nullptr if a stop message
  /// arrives instead (service winding down).
  std::vector<runner::RunSpec>* specs_for(Socket& socket,
                                          SharedSender& sender,
                                          uint64_t job_id) {
    const auto cached = jobs.find(job_id);
    if (cached != jobs.end()) return &cached->second;
    sender.send(Message::job_request(job_id));
    const Message reply = recv_message(socket);
    pending_result.reset();  // any frame acknowledges an earlier result
    if (reply.type == MsgType::kStop) return nullptr;
    if (reply.type != MsgType::kJob || reply.job != job_id) {
      throw std::runtime_error(fmt("expected the description of job {}, "
                                   "got '{}'",
                                   job_id, to_string(reply.type)));
    }
    // Re-materialize the grid locally; only the option struct crossed the
    // wire. The spec count must agree with the coordinator's expansion or
    // the two sides would silently disagree about what unit [begin, end)
    // means (e.g. a .surf scenario file differing between machines).
    std::vector<runner::RunSpec> specs =
        runner::expand(runner::make_sweep_grid(reply.options));
    if (specs.size() != reply.spec_count) {
      throw std::runtime_error(
          fmt("grid expansion mismatch for job {}: coordinator announced "
              "{} specs, local expansion has {}",
              job_id, reply.spec_count, specs.size()));
    }
    log(fmt("job {} description cached ({} specs)", job_id, specs.size()));
    return &jobs.emplace(job_id, std::move(specs)).first->second;
  }

  /// One connection's lifetime: handshake, then pull/execute/report until
  /// stop. Throws on connection loss (the reconnect loop catches it).
  int session(int connect_timeout_ms) {
    Socket socket =
        Socket::connect_to(options.host, options.port, connect_timeout_ms);
    SharedSender sender(socket);
    sender.send(Message::hello(static_cast<uint64_t>(::getpid()),
                               Role::kWorker, cores, memory_mb));
    const RecvResult first = socket.recv_frame(options.connect_timeout_ms);
    if (first.status != RecvStatus::kFrame) {
      throw std::runtime_error("coordinator vanished during the handshake");
    }
    if (decode(first.payload).type != MsgType::kWelcome) {
      throw std::runtime_error("coordinator did not say welcome");
    }
    session_established = true;
    if (obs::TraceWriter::instance().enabled()) {
      obs::TraceWriter::instance().set_thread_name(
          fmt("worker-{}", static_cast<int>(::getpid())));
    }
    log(fmt("connected to {}:{} ({} cores, {} MB announced)", options.host,
            options.port, cores, memory_mb));

    // Liveness heartbeats, sent for the whole session so the coordinator
    // can tell "still crunching a big unit" from "dead".
    std::mutex hb_mu;
    std::condition_variable hb_cv;
    bool hb_stop = false;
    std::thread heartbeat([&] {
      std::unique_lock<std::mutex> lock(hb_mu);
      while (!hb_cv.wait_for(lock,
                             std::chrono::milliseconds(options.heartbeat_ms),
                             [&] { return hb_stop; })) {
        lock.unlock();
        if (!sender.try_send(Message::heartbeat())) {
          lock.lock();
          break;
        }
        lock.lock();
      }
    });
    const auto stop_heartbeat = [&] {
      {
        std::lock_guard<std::mutex> lock(hb_mu);
        hb_stop = true;
      }
      hb_cv.notify_all();
      heartbeat.join();
    };

    try {
      if (pending_result.has_value()) {
        // Redelivery: the previous connection died after this result was
        // sent but before anything proved the coordinator processed it.
        // At worst it merged already and this copy is dropped as a
        // duplicate.
        log(fmt("redelivering result for job {} unit {}",
                pending_result->job, pending_result->unit.id));
        sender.send(*pending_result);
      }
      for (;;) {
        sender.send(Message::pull());
        const Message message = recv_message(socket);
        // Any frame from the coordinator proves every earlier frame we
        // sent on this connection — the pending result included — was
        // consumed first (frames are handled in order off one TCP stream).
        pending_result.reset();
        if (message.type == MsgType::kStop) {
          log(fmt("stop received after {} units", units_completed));
          stop_heartbeat();
          return Worker::kExitOk;
        }
        if (message.type != MsgType::kUnit) {
          throw std::runtime_error(fmt("expected unit or stop, got '{}'",
                                       to_string(message.type)));
        }
        const std::vector<runner::RunSpec>* specs =
            specs_for(socket, sender, message.job);
        if (specs == nullptr) {
          log(fmt("stop received while fetching job {}", message.job));
          stop_heartbeat();
          return Worker::kExitOk;
        }
        const WorkUnit unit = message.unit;
        if (unit.end > specs->size() || unit.begin >= unit.end) {
          throw std::runtime_error(
              fmt("unit [{}, {}) outside the {}-spec grid of job {}",
                  unit.begin, unit.end, specs->size(), message.job));
        }
        if (units_completed >= options.abandon_after_units) {
          // Fault injection: die holding an assigned unit, mid-sweep,
          // without a word — exactly what a crashed worker looks like from
          // the coordinator's side.
          log(fmt("fault injection: abandoning unit {} and dropping the "
                  "connection",
                  unit.id));
          stop_heartbeat();
          socket.close();
          return Worker::kExitFault;
        }
        chaos::hit(chaos::kWorkerUnit);
        std::vector<runner::RunRow> rows;
        rows.reserve(unit.size());
        {
          const obs::TraceSpan span(
              "unit", "dist", {{"job", message.job}, {"unit", unit.id}});
          for (size_t index = unit.begin; index < unit.end; ++index) {
            rows.push_back(runner::execute_run((*specs)[index],
                                               /*capture_trace=*/false,
                                               options.shard_threads)
                               .row);
          }
        }
        Message result = Message::result(message.job, unit, std::move(rows));
        // Remember the result before any bytes hit the wire: a connection
        // that dies anywhere past this point redelivers.
        pending_result = result;
        if (chaos::hit(chaos::kWorkerResult) == chaos::Action::kPartial) {
          sender.send_partial(result);
          throw std::runtime_error("chaos: partial result frame");
        }
        sender.send(std::move(result));
        ++units_completed;
      }
    } catch (...) {
      stop_heartbeat();
      throw;
    }
  }

  int run() {
    int attempt = 0;
    std::optional<Clock::time_point> outage_start;
    for (;;) {
      session_established = false;
      try {
        // Reconnect attempts use a short connect budget — the jittered
        // backoff below is what paces the retries, not connect_to's
        // internal refusal polling.
        const int connect_ms =
            attempt == 0 ? options.connect_timeout_ms
                         : std::min(options.connect_timeout_ms, 250);
        return session(connect_ms);
      } catch (const std::exception& error) {
        if (options.reconnect_window_ms <= 0) throw;
        const Clock::time_point now = Clock::now();
        if (session_established || !outage_start.has_value()) {
          // A fresh outage (the previous session was healthy, or this is
          // the first failure ever): the window starts now.
          outage_start = now;
          attempt = 0;
        }
        const auto elapsed =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                now - *outage_start);
        if (elapsed.count() >= options.reconnect_window_ms) {
          throw std::runtime_error(
              fmt("gave up on {}:{} after {} ms of reconnect attempts "
                  "(last error: {})",
                  options.host, options.port, elapsed.count(),
                  error.what()));
        }
        const int base = std::max(1, options.reconnect_base_ms);
        const int delay =
            std::min(base << std::min(attempt, 10), 5000);
        std::uniform_int_distribution<int> jitter(delay / 2,
                                                  std::max(delay, 1));
        const int sleep_ms = jitter(jitter_rng);
        obs::TraceWriter::instance().instant("reconnect", "dist",
                                             {{"attempt", attempt + 1}});
        log(fmt("connection lost ({}); reconnect attempt {} in {} ms",
                error.what(), attempt + 1, sleep_ms));
        std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
        ++attempt;
      }
    }
  }
};

}  // namespace

Worker::Worker(Options options) : options_(std::move(options)) {}

int Worker::run() {
  WorkerLoop loop(options_);
  return loop.run();
}

}  // namespace sb::dist
