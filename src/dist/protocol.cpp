#include "dist/protocol.hpp"

#include <algorithm>
#include <stdexcept>

#include "runner/serialize.hpp"
#include "util/fmt.hpp"
#include "util/json.hpp"

namespace sb::dist {

namespace {

using util::JsonValue;

const JsonValue& require(const JsonValue& json, std::string_view key,
                         JsonValue::Kind kind) {
  const JsonValue* value = json.find(key);
  if (value == nullptr || value->kind() != kind) {
    throw std::runtime_error("dist message missing or mistyped field '" +
                             std::string(key) + "'");
  }
  return *value;
}

size_t get_size(const JsonValue& json, std::string_view key) {
  return static_cast<size_t>(
      require(json, key, JsonValue::Kind::kNumber).as_number());
}

WorkUnit unit_from_json(const JsonValue& json) {
  WorkUnit unit;
  unit.id = get_size(json, "id");
  unit.begin = get_size(json, "begin");
  unit.end = get_size(json, "end");
  if (unit.end < unit.begin) {
    throw std::runtime_error("dist unit has end < begin");
  }
  return unit;
}

JsonValue unit_to_json(const WorkUnit& unit) {
  JsonValue out = JsonValue::object();
  out["id"] = JsonValue(unit.id);
  out["begin"] = JsonValue(unit.begin);
  out["end"] = JsonValue(unit.end);
  return out;
}

JobState state_from_string(const std::string& text) {
  if (text == "running") return JobState::kRunning;
  if (text == "done") return JobState::kDone;
  if (text == "cancelled") return JobState::kCancelled;
  throw std::runtime_error("unknown dist job state '" + text + "'");
}

}  // namespace

std::string_view to_string(MsgType type) {
  switch (type) {
    case MsgType::kHello: return "hello";
    case MsgType::kWelcome: return "welcome";
    case MsgType::kJob: return "job";
    case MsgType::kJobRequest: return "job_request";
    case MsgType::kPull: return "pull";
    case MsgType::kUnit: return "unit";
    case MsgType::kResult: return "result";
    case MsgType::kHeartbeat: return "heartbeat";
    case MsgType::kStop: return "stop";
    case MsgType::kSubmit: return "submit";
    case MsgType::kSubmitted: return "submitted";
    case MsgType::kStatus: return "status";
    case MsgType::kJobStatus: return "job_status";
    case MsgType::kFetch: return "fetch";
    case MsgType::kJobDone: return "job_done";
    case MsgType::kCancel: return "cancel";
    case MsgType::kMetrics: return "metrics";
    case MsgType::kMetricsReport: return "metrics_report";
  }
  return "?";
}

std::string_view to_string(JobState state) {
  switch (state) {
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kCancelled: return "cancelled";
  }
  return "?";
}

Message Message::hello(uint64_t pid, Role role, size_t cores,
                       uint64_t memory_mb) {
  Message m;
  m.type = MsgType::kHello;
  m.worker_pid = pid;
  m.role = role;
  m.cores = cores;
  m.memory_mb = memory_mb;
  return m;
}

Message Message::welcome() {
  Message m;
  m.type = MsgType::kWelcome;
  return m;
}

Message Message::job_description(uint64_t job,
                                 runner::SweepCliOptions options,
                                 size_t spec_count) {
  Message m;
  m.type = MsgType::kJob;
  m.job = job;
  m.options = std::move(options);
  m.spec_count = spec_count;
  return m;
}

Message Message::job_request(uint64_t job) {
  Message m;
  m.type = MsgType::kJobRequest;
  m.job = job;
  return m;
}

Message Message::pull() {
  Message m;
  m.type = MsgType::kPull;
  return m;
}

Message Message::make_unit(uint64_t job, WorkUnit unit) {
  Message m;
  m.type = MsgType::kUnit;
  m.job = job;
  m.unit = unit;
  return m;
}

Message Message::result(uint64_t job, WorkUnit unit,
                        std::vector<runner::RunRow> rows) {
  Message m;
  m.type = MsgType::kResult;
  m.job = job;
  m.unit = unit;
  m.rows = std::move(rows);
  return m;
}

Message Message::heartbeat() {
  Message m;
  m.type = MsgType::kHeartbeat;
  return m;
}

Message Message::stop() {
  Message m;
  m.type = MsgType::kStop;
  return m;
}

Message Message::submit(runner::SweepCliOptions options, size_t unit_size,
                        size_t min_cores) {
  Message m;
  m.type = MsgType::kSubmit;
  m.options = std::move(options);
  m.unit_size = unit_size;
  m.min_cores = min_cores;
  return m;
}

Message Message::submitted(uint64_t job, size_t spec_count) {
  Message m;
  m.type = MsgType::kSubmitted;
  m.job = job;
  m.spec_count = spec_count;
  return m;
}

Message Message::status(uint64_t job) {
  Message m;
  m.type = MsgType::kStatus;
  m.job = job;
  return m;
}

Message Message::job_status(uint64_t job, JobState state, size_t merged,
                            size_t total) {
  Message m;
  m.type = MsgType::kJobStatus;
  m.job = job;
  m.state = state;
  m.merged = merged;
  m.total = total;
  return m;
}

Message Message::fetch(uint64_t job) {
  Message m;
  m.type = MsgType::kFetch;
  m.job = job;
  return m;
}

Message Message::job_done(uint64_t job, JobState state) {
  Message m;
  m.type = MsgType::kJobDone;
  m.job = job;
  m.state = state;
  return m;
}

Message Message::cancel(uint64_t job) {
  Message m;
  m.type = MsgType::kCancel;
  m.job = job;
  return m;
}

Message Message::metrics_request() {
  Message m;
  m.type = MsgType::kMetrics;
  return m;
}

Message Message::metrics_report(util::JsonValue metrics) {
  Message m;
  m.type = MsgType::kMetricsReport;
  m.metrics = std::move(metrics);
  return m;
}

std::string encode(const Message& message) {
  JsonValue out = JsonValue::object();
  out["type"] = JsonValue(to_string(message.type));
  switch (message.type) {
    case MsgType::kHello:
      out["version"] = JsonValue(message.version);
      out["pid"] = JsonValue(message.worker_pid);
      out["role"] =
          JsonValue(message.role == Role::kWorker ? "worker" : "client");
      out["cores"] = JsonValue(message.cores);
      out["memory_mb"] = JsonValue(message.memory_mb);
      break;
    case MsgType::kJob:
      out["job"] = JsonValue(message.job);
      out["options"] = runner::options_to_json(message.options);
      out["spec_count"] = JsonValue(message.spec_count);
      break;
    case MsgType::kJobRequest:
    case MsgType::kStatus:
    case MsgType::kFetch:
    case MsgType::kCancel:
      out["job"] = JsonValue(message.job);
      break;
    case MsgType::kUnit:
      out["job"] = JsonValue(message.job);
      out["unit"] = unit_to_json(message.unit);
      break;
    case MsgType::kResult: {
      out["job"] = JsonValue(message.job);
      out["unit"] = unit_to_json(message.unit);
      JsonValue rows = JsonValue::array();
      for (const runner::RunRow& row : message.rows) {
        rows.push_back(runner::row_to_json(row));
      }
      out["rows"] = std::move(rows);
      break;
    }
    case MsgType::kSubmit:
      out["options"] = runner::options_to_json(message.options);
      out["unit_size"] = JsonValue(message.unit_size);
      out["min_cores"] = JsonValue(message.min_cores);
      break;
    case MsgType::kSubmitted:
      out["job"] = JsonValue(message.job);
      out["spec_count"] = JsonValue(message.spec_count);
      break;
    case MsgType::kJobStatus:
      out["job"] = JsonValue(message.job);
      out["state"] = JsonValue(to_string(message.state));
      out["merged"] = JsonValue(message.merged);
      out["total"] = JsonValue(message.total);
      break;
    case MsgType::kJobDone:
      out["job"] = JsonValue(message.job);
      out["state"] = JsonValue(to_string(message.state));
      break;
    case MsgType::kMetricsReport:
      out["metrics"] = message.metrics;
      break;
    case MsgType::kWelcome:
    case MsgType::kPull:
    case MsgType::kHeartbeat:
    case MsgType::kStop:
    case MsgType::kMetrics: break;
  }
  return out.dump();
}

Message decode(const std::string& payload) {
  const JsonValue json = util::parse_json(payload);
  if (!json.is_object()) {
    throw std::runtime_error("dist message is not a JSON object");
  }
  const std::string& type =
      require(json, "type", JsonValue::Kind::kString).as_string();
  Message m;
  if (type == "hello") {
    m.type = MsgType::kHello;
    m.version = static_cast<int>(get_size(json, "version"));
    if (m.version != kProtocolVersion) {
      throw std::runtime_error(
          fmt("dist protocol version mismatch: peer speaks {}, this "
              "process speaks {}",
              m.version, kProtocolVersion));
    }
    m.worker_pid = static_cast<uint64_t>(get_size(json, "pid"));
    const std::string& role =
        require(json, "role", JsonValue::Kind::kString).as_string();
    if (role == "worker") {
      m.role = Role::kWorker;
    } else if (role == "client") {
      m.role = Role::kClient;
    } else {
      throw std::runtime_error("unknown dist hello role '" + role + "'");
    }
    m.cores = std::max<size_t>(1, get_size(json, "cores"));
    m.memory_mb = static_cast<uint64_t>(get_size(json, "memory_mb"));
  } else if (type == "welcome") {
    m.type = MsgType::kWelcome;
  } else if (type == "job") {
    m.type = MsgType::kJob;
    m.job = static_cast<uint64_t>(get_size(json, "job"));
    m.options = runner::options_from_json(
        require(json, "options", JsonValue::Kind::kObject));
    m.spec_count = get_size(json, "spec_count");
  } else if (type == "job_request") {
    m.type = MsgType::kJobRequest;
    m.job = static_cast<uint64_t>(get_size(json, "job"));
  } else if (type == "pull") {
    m.type = MsgType::kPull;
  } else if (type == "unit") {
    m.type = MsgType::kUnit;
    m.job = static_cast<uint64_t>(get_size(json, "job"));
    m.unit = unit_from_json(require(json, "unit", JsonValue::Kind::kObject));
  } else if (type == "result") {
    m.type = MsgType::kResult;
    m.job = static_cast<uint64_t>(get_size(json, "job"));
    m.unit = unit_from_json(require(json, "unit", JsonValue::Kind::kObject));
    for (const JsonValue& row :
         require(json, "rows", JsonValue::Kind::kArray).as_array()) {
      m.rows.push_back(runner::row_from_json(row));
    }
  } else if (type == "heartbeat") {
    m.type = MsgType::kHeartbeat;
  } else if (type == "stop") {
    m.type = MsgType::kStop;
  } else if (type == "submit") {
    m.type = MsgType::kSubmit;
    m.options = runner::options_from_json(
        require(json, "options", JsonValue::Kind::kObject));
    m.unit_size = std::max<size_t>(1, get_size(json, "unit_size"));
    m.min_cores = get_size(json, "min_cores");
  } else if (type == "submitted") {
    m.type = MsgType::kSubmitted;
    m.job = static_cast<uint64_t>(get_size(json, "job"));
    m.spec_count = get_size(json, "spec_count");
  } else if (type == "status") {
    m.type = MsgType::kStatus;
    m.job = static_cast<uint64_t>(get_size(json, "job"));
  } else if (type == "job_status") {
    m.type = MsgType::kJobStatus;
    m.job = static_cast<uint64_t>(get_size(json, "job"));
    m.state = state_from_string(
        require(json, "state", JsonValue::Kind::kString).as_string());
    m.merged = get_size(json, "merged");
    m.total = get_size(json, "total");
  } else if (type == "fetch") {
    m.type = MsgType::kFetch;
    m.job = static_cast<uint64_t>(get_size(json, "job"));
  } else if (type == "job_done") {
    m.type = MsgType::kJobDone;
    m.job = static_cast<uint64_t>(get_size(json, "job"));
    m.state = state_from_string(
        require(json, "state", JsonValue::Kind::kString).as_string());
  } else if (type == "cancel") {
    m.type = MsgType::kCancel;
    m.job = static_cast<uint64_t>(get_size(json, "job"));
  } else if (type == "metrics") {
    m.type = MsgType::kMetrics;
  } else if (type == "metrics_report") {
    m.type = MsgType::kMetricsReport;
    m.metrics = require(json, "metrics", JsonValue::Kind::kObject);
  } else {
    throw std::runtime_error("unknown dist message type '" + type + "'");
  }
  return m;
}

}  // namespace sb::dist
