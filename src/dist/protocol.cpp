#include "dist/protocol.hpp"

#include <stdexcept>

#include "runner/serialize.hpp"
#include "util/fmt.hpp"
#include "util/json.hpp"

namespace sb::dist {

namespace {

using util::JsonValue;

const JsonValue& require(const JsonValue& json, std::string_view key,
                         JsonValue::Kind kind) {
  const JsonValue* value = json.find(key);
  if (value == nullptr || value->kind() != kind) {
    throw std::runtime_error("dist message missing or mistyped field '" +
                             std::string(key) + "'");
  }
  return *value;
}

size_t get_size(const JsonValue& json, std::string_view key) {
  return static_cast<size_t>(
      require(json, key, JsonValue::Kind::kNumber).as_number());
}

WorkUnit unit_from_json(const JsonValue& json) {
  WorkUnit unit;
  unit.id = get_size(json, "id");
  unit.begin = get_size(json, "begin");
  unit.end = get_size(json, "end");
  if (unit.end < unit.begin) {
    throw std::runtime_error("dist unit has end < begin");
  }
  return unit;
}

JsonValue unit_to_json(const WorkUnit& unit) {
  JsonValue out = JsonValue::object();
  out["id"] = JsonValue(unit.id);
  out["begin"] = JsonValue(unit.begin);
  out["end"] = JsonValue(unit.end);
  return out;
}

}  // namespace

std::string_view to_string(MsgType type) {
  switch (type) {
    case MsgType::kHello: return "hello";
    case MsgType::kJob: return "job";
    case MsgType::kPull: return "pull";
    case MsgType::kUnit: return "unit";
    case MsgType::kResult: return "result";
    case MsgType::kHeartbeat: return "heartbeat";
    case MsgType::kStop: return "stop";
  }
  return "?";
}

Message Message::hello(uint64_t pid) {
  Message m;
  m.type = MsgType::kHello;
  m.worker_pid = pid;
  return m;
}

Message Message::job(runner::SweepCliOptions options, size_t spec_count) {
  Message m;
  m.type = MsgType::kJob;
  m.options = std::move(options);
  m.spec_count = spec_count;
  return m;
}

Message Message::pull() {
  Message m;
  m.type = MsgType::kPull;
  return m;
}

Message Message::make_unit(WorkUnit unit) {
  Message m;
  m.type = MsgType::kUnit;
  m.unit = unit;
  return m;
}

Message Message::result(WorkUnit unit, std::vector<runner::RunRow> rows) {
  Message m;
  m.type = MsgType::kResult;
  m.unit = unit;
  m.rows = std::move(rows);
  return m;
}

Message Message::heartbeat() {
  Message m;
  m.type = MsgType::kHeartbeat;
  return m;
}

Message Message::stop() {
  Message m;
  m.type = MsgType::kStop;
  return m;
}

std::string encode(const Message& message) {
  JsonValue out = JsonValue::object();
  out["type"] = JsonValue(to_string(message.type));
  switch (message.type) {
    case MsgType::kHello:
      out["version"] = JsonValue(message.version);
      out["pid"] = JsonValue(message.worker_pid);
      break;
    case MsgType::kJob:
      out["options"] = runner::options_to_json(message.options);
      out["spec_count"] = JsonValue(message.spec_count);
      break;
    case MsgType::kUnit:
      out["unit"] = unit_to_json(message.unit);
      break;
    case MsgType::kResult: {
      out["unit"] = unit_to_json(message.unit);
      JsonValue rows = JsonValue::array();
      for (const runner::RunRow& row : message.rows) {
        rows.push_back(runner::row_to_json(row));
      }
      out["rows"] = std::move(rows);
      break;
    }
    case MsgType::kPull:
    case MsgType::kHeartbeat:
    case MsgType::kStop: break;
  }
  return out.dump();
}

Message decode(const std::string& payload) {
  const JsonValue json = util::parse_json(payload);
  if (!json.is_object()) {
    throw std::runtime_error("dist message is not a JSON object");
  }
  const std::string& type =
      require(json, "type", JsonValue::Kind::kString).as_string();
  Message m;
  if (type == "hello") {
    m.type = MsgType::kHello;
    m.version = static_cast<int>(get_size(json, "version"));
    m.worker_pid = static_cast<uint64_t>(get_size(json, "pid"));
    if (m.version != kProtocolVersion) {
      throw std::runtime_error(
          fmt("dist protocol version mismatch: worker speaks {}, "
              "coordinator speaks {}",
              m.version, kProtocolVersion));
    }
  } else if (type == "job") {
    m.type = MsgType::kJob;
    m.options = runner::options_from_json(
        require(json, "options", JsonValue::Kind::kObject));
    m.spec_count = get_size(json, "spec_count");
  } else if (type == "pull") {
    m.type = MsgType::kPull;
  } else if (type == "unit") {
    m.type = MsgType::kUnit;
    m.unit = unit_from_json(require(json, "unit", JsonValue::Kind::kObject));
  } else if (type == "result") {
    m.type = MsgType::kResult;
    m.unit = unit_from_json(require(json, "unit", JsonValue::Kind::kObject));
    for (const JsonValue& row :
         require(json, "rows", JsonValue::Kind::kArray).as_array()) {
      m.rows.push_back(runner::row_from_json(row));
    }
  } else if (type == "heartbeat") {
    m.type = MsgType::kHeartbeat;
  } else if (type == "stop") {
    m.type = MsgType::kStop;
  } else {
    throw std::runtime_error("unknown dist message type '" + type + "'");
  }
  return m;
}

}  // namespace sb::dist
