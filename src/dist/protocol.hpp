#pragma once
// Wire protocol of the distributed sweep service.
//
// Coordinator, workers, and clients exchange JSON messages inside the
// length-prefixed frames of dist/socket.hpp. Workers pull work; clients
// queue and collect jobs. Version 2 turned the single-grid backend into a
// job-queue service: every unit/result carries the job it belongs to,
// hello announces a role plus the machine's cores/memory (heterogeneous
// dispatch), and clients speak submit/status/fetch/cancel.
//
//   worker                          coordinator
//   ------                          -----------
//   hello{v, role=worker, cores}  ->
//                                 <- welcome{}
//   pull{}                        ->
//                                 <- unit{job, id, begin, end} | stop{}
//   job_request{job}              ->                  (first unit of a job)
//                                 <- job{job, options, spec_count}
//   heartbeat{}                   ->                  (while executing)
//   result{job, unit, rows}       ->
//
//   client                          coordinator
//   ------                          -----------
//   hello{v, role=client}         ->
//                                 <- welcome{}
//   submit{options, unit_size,
//          min_cores}             ->
//                                 <- submitted{job, spec_count}
//   status{job}                   ->
//                                 <- job_status{job, state, merged, total}
//   fetch{job}                    ->
//                                 <- result{job, unit, rows}...   (streamed
//                                    incrementally as units merge)
//                                 <- job_done{job, state}
//   cancel{job}                   ->
//                                 <- job_status{job, cancelled, ...}
//   metrics{}                     ->
//                                 <- metrics_report{metrics}   (service-wide
//                                    queue/worker/journal metrics snapshot)
//
// The job message carries the runner::SweepCliOptions grid description; the
// worker re-materializes the identical RunSpec list locally (seed forking is
// index-keyed), so only option structs and result rows ever cross the wire —
// never scenarios or traces. Unknown message types and version mismatches
// are protocol errors (encode/decode throw std::runtime_error).

#include <cstdint>
#include <string>
#include <vector>

#include "runner/cli_options.hpp"
#include "runner/report.hpp"
#include "util/json.hpp"

namespace sb::dist {

/// Bumped on any incompatible message or semantics change; hello carries it
/// and the coordinator refuses mismatched peers. 2 = job-queue service
/// (job-tagged units, roles, client verbs).
inline constexpr int kProtocolVersion = 2;

enum class MsgType {
  kHello,
  kWelcome,
  kJob,
  kJobRequest,
  kPull,
  kUnit,
  kResult,
  kHeartbeat,
  kStop,
  kSubmit,
  kSubmitted,
  kStatus,
  kJobStatus,
  kFetch,
  kJobDone,
  kCancel,
  kMetrics,
  kMetricsReport,
};

[[nodiscard]] std::string_view to_string(MsgType type);

/// What a connection is for; carried in hello. Workers pull units; clients
/// queue jobs and are exempt from the worker silence deadline (a client
/// waiting on a long fetch legitimately sends nothing).
enum class Role { kWorker, kClient };

/// Lifecycle of a queued job.
enum class JobState { kRunning, kDone, kCancelled };

[[nodiscard]] std::string_view to_string(JobState state);

/// One contiguous slice [begin, end) of a job's expanded spec list. `id` is
/// the unit's index in that job's partition — with the job id, the key of
/// the at-most-once result merge.
struct WorkUnit {
  size_t id = 0;
  size_t begin = 0;
  size_t end = 0;

  [[nodiscard]] size_t size() const { return end - begin; }
  bool operator==(const WorkUnit&) const = default;
};

/// A decoded protocol message (tagged union kept flat for simplicity; only
/// the fields of the active `type` are meaningful).
struct Message {
  MsgType type = MsgType::kPull;
  // kHello
  int version = kProtocolVersion;
  uint64_t worker_pid = 0;
  Role role = Role::kWorker;
  size_t cores = 1;
  uint64_t memory_mb = 0;
  // kJob / kSubmit
  runner::SweepCliOptions options;
  size_t spec_count = 0;  // also kSubmitted
  // kSubmit
  size_t unit_size = 1;
  size_t min_cores = 0;
  // kJob / kJobRequest / kUnit / kResult / kSubmitted / kStatus /
  // kJobStatus / kFetch / kJobDone / kCancel
  uint64_t job = 0;
  // kUnit / kResult
  WorkUnit unit;
  // kResult
  std::vector<runner::RunRow> rows;
  // kJobStatus / kJobDone
  JobState state = JobState::kRunning;
  size_t merged = 0;
  size_t total = 0;
  // kMetricsReport: the coordinator's service metrics snapshot (queue
  // depth, in-flight units, per-worker listing — dist/coordinator.cpp
  // builds it, docs/OBSERVABILITY.md documents the shape). Carried as an
  // opaque JSON object so the wire schema can grow without protocol bumps.
  util::JsonValue metrics;

  [[nodiscard]] static Message hello(uint64_t pid, Role role, size_t cores,
                                     uint64_t memory_mb);
  [[nodiscard]] static Message welcome();
  [[nodiscard]] static Message job_description(
      uint64_t job, runner::SweepCliOptions options, size_t spec_count);
  [[nodiscard]] static Message job_request(uint64_t job);
  [[nodiscard]] static Message pull();
  [[nodiscard]] static Message make_unit(uint64_t job, WorkUnit unit);
  [[nodiscard]] static Message result(uint64_t job, WorkUnit unit,
                                      std::vector<runner::RunRow> rows);
  [[nodiscard]] static Message heartbeat();
  [[nodiscard]] static Message stop();
  [[nodiscard]] static Message submit(runner::SweepCliOptions options,
                                      size_t unit_size, size_t min_cores);
  [[nodiscard]] static Message submitted(uint64_t job, size_t spec_count);
  [[nodiscard]] static Message status(uint64_t job);
  [[nodiscard]] static Message job_status(uint64_t job, JobState state,
                                          size_t merged, size_t total);
  [[nodiscard]] static Message fetch(uint64_t job);
  [[nodiscard]] static Message job_done(uint64_t job, JobState state);
  [[nodiscard]] static Message cancel(uint64_t job);
  [[nodiscard]] static Message metrics_request();
  [[nodiscard]] static Message metrics_report(util::JsonValue metrics);
};

/// Serializes to the JSON frame payload.
[[nodiscard]] std::string encode(const Message& message);

/// Parses a frame payload. Throws std::runtime_error on malformed JSON,
/// unknown types, missing fields, or a version other than kProtocolVersion
/// in a hello.
[[nodiscard]] Message decode(const std::string& payload);

}  // namespace sb::dist
