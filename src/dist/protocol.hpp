#pragma once
// Wire protocol of the distributed sweep backend.
//
// Coordinator and workers exchange JSON messages inside the length-prefixed
// frames of dist/socket.hpp. The conversation is pull-based:
//
//   worker                         coordinator
//   ------                         -----------
//   hello{version}          ->
//                           <-     job{options, spec_count}
//   pull{}                  ->
//                           <-     unit{id, begin, end}   (spec range)
//   heartbeat{}             ->                            (while executing)
//   result{id, begin, rows} ->
//   pull{}                  ->
//                           <-     ...more units... | stop{}
//
// The job message carries the runner::SweepCliOptions grid description; the
// worker re-materializes the identical RunSpec list locally (seed forking is
// index-keyed), so only option structs and result rows ever cross the wire —
// never scenarios or traces. Unknown message types and version mismatches
// are protocol errors (encode/decode throw std::runtime_error).

#include <cstdint>
#include <string>
#include <vector>

#include "runner/cli_options.hpp"
#include "runner/report.hpp"

namespace sb::dist {

/// Bumped on any incompatible message or semantics change; hello carries it
/// and the coordinator refuses mismatched workers.
inline constexpr int kProtocolVersion = 1;

enum class MsgType { kHello, kJob, kPull, kUnit, kResult, kHeartbeat, kStop };

[[nodiscard]] std::string_view to_string(MsgType type);

/// One contiguous slice [begin, end) of the expanded spec list. `id` is the
/// unit's index in the coordinator's partition — the key of the at-most-once
/// result merge.
struct WorkUnit {
  size_t id = 0;
  size_t begin = 0;
  size_t end = 0;

  [[nodiscard]] size_t size() const { return end - begin; }
  bool operator==(const WorkUnit&) const = default;
};

/// A decoded protocol message (tagged union kept flat for simplicity; only
/// the fields of the active `type` are meaningful).
struct Message {
  MsgType type = MsgType::kPull;
  // kHello
  int version = kProtocolVersion;
  uint64_t worker_pid = 0;
  // kJob
  runner::SweepCliOptions options;
  size_t spec_count = 0;
  // kUnit / kResult
  WorkUnit unit;
  // kResult
  std::vector<runner::RunRow> rows;

  [[nodiscard]] static Message hello(uint64_t pid);
  [[nodiscard]] static Message job(runner::SweepCliOptions options,
                                   size_t spec_count);
  [[nodiscard]] static Message pull();
  [[nodiscard]] static Message make_unit(WorkUnit unit);
  [[nodiscard]] static Message result(WorkUnit unit,
                                      std::vector<runner::RunRow> rows);
  [[nodiscard]] static Message heartbeat();
  [[nodiscard]] static Message stop();
};

/// Serializes to the JSON frame payload.
[[nodiscard]] std::string encode(const Message& message);

/// Parses a frame payload. Throws std::runtime_error on malformed JSON,
/// unknown types, missing fields, or a version other than kProtocolVersion
/// in a hello.
[[nodiscard]] Message decode(const std::string& payload);

}  // namespace sb::dist
