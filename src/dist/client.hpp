#pragma once
// Client side of the dist job-queue service: submit sweeps to a long-lived
// coordinator, poll their progress, stream their merged results, or cancel
// them. Many clients can queue jobs against one fleet concurrently; the
// coordinator interleaves all queued jobs across its workers.
//
// One Client wraps one connection (hello with role=client). All calls are
// synchronous request/reply — fetch() blocks until the job leaves the
// running state, consuming result batches incrementally as units merge.

#include <cstdint>
#include <string>
#include <vector>

#include "dist/protocol.hpp"
#include "dist/socket.hpp"
#include "runner/cli_options.hpp"
#include "runner/report.hpp"

namespace sb::dist {

class Client {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    uint16_t port = 0;
    /// Budget for the initial connect; the coordinator may still be
    /// binding its listener.
    int connect_timeout_ms = 5000;
    bool verbose = false;
  };

  struct JobStatus {
    uint64_t job = 0;
    JobState state = JobState::kRunning;
    size_t merged = 0;
    size_t total = 0;
  };

  /// Connects and completes the hello/welcome handshake. Throws
  /// std::runtime_error if the coordinator is unreachable or speaks a
  /// different protocol version.
  explicit Client(Options options);

  /// Queues a sweep; returns its job id. `unit_size` partitions the grid,
  /// `min_cores` restricts dispatch to workers that announced at least that
  /// many cores (0 = any).
  [[nodiscard]] uint64_t submit(const runner::SweepCliOptions& grid,
                                size_t unit_size = 1, size_t min_cores = 0);

  [[nodiscard]] JobStatus status(uint64_t job);

  /// The grid description job was submitted with — lets a fetching client
  /// rebuild the exact report header (threads, master seed) without the
  /// submitter re-sending its flags.
  [[nodiscard]] runner::SweepCliOptions describe(uint64_t job);

  /// Streams the job's result batches until it completes, returning rows in
  /// spec order. Throws if the job was cancelled or the coordinator went
  /// away mid-stream.
  [[nodiscard]] std::vector<runner::RunRow> fetch(uint64_t job);

  /// Cancels a running job (idempotent); returns its final status.
  JobStatus cancel(uint64_t job);

  /// Snapshot of the coordinator's live metrics: service counters and
  /// gauges under "metrics" (obs::Registry JSON — queue depth, in-flight
  /// units, reassignments, journal fsync latency) and a per-worker listing
  /// under "workers" (cores, memory_mb, heartbeat gap histogram). Shape in
  /// docs/OBSERVABILITY.md.
  [[nodiscard]] util::JsonValue metrics();

 private:
  [[nodiscard]] Message request(const Message& message, MsgType expected);

  Options options_;
  Socket socket_;
};

}  // namespace sb::dist
