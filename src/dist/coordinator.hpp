#pragma once
// Distributed sweep coordinator: partitions the expanded spec list into
// contiguous work units and serves them to a fleet of workers over the
// dist protocol, merging RunRow batches at most once per unit.
//
// Dispatch is pull-based — a worker that finishes early simply pulls the
// next unit, so fast workers steal more of the grid with no static
// partition. Fault model: a worker can die (connection drop) or stall
// (heartbeats stop) at any time; its in-flight units are requeued and
// reassigned. Because run execution is deterministic, a unit executed twice
// yields byte-identical rows and the first merged batch wins, so the merged
// report is independent of worker count, arrival order, deaths, and
// reassignments (see docs/ARCHITECTURE.md "Distributed sweep backend").

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "runner/cli_options.hpp"
#include "runner/report.hpp"

namespace sb::dist {

class Coordinator {
 public:
  struct Options {
    /// Listener address; keep the loopback default unless remote workers
    /// need to reach the coordinator (then bind 0.0.0.0).
    std::string bind_address = "127.0.0.1";
    /// 0 picks an ephemeral port (read it back via port()).
    uint16_t port = 0;
    /// Specs per work unit. 1 maximizes stealing granularity; raise it to
    /// amortize protocol overhead on grids of tiny runs.
    size_t unit_size = 1;
    /// Hard per-unit deadline, measured from assignment and deliberately
    /// NOT refreshed by heartbeats: a live worker stuck on a unit is
    /// indistinguishable from a slow one, so after this long the unit is
    /// handed to another worker as well (the at-most-once merge makes the
    /// duplicate execution harmless). Set it above the worst-case runtime
    /// of one unit.
    int unit_timeout_ms = 600000;
    /// A connection that sends nothing (heartbeats included) for this long
    /// is declared dead and its in-flight units are requeued immediately.
    /// Workers heartbeat every second by default, so this is generous.
    int worker_silence_ms = 15000;
    /// Accept-loop and timeout-monitor poll granularity.
    int tick_ms = 100;
    /// Once every spec is merged, connections get a stop message and this
    /// long to wind down; a worker still grinding a stale (reassigned and
    /// already-merged) unit is then cut off so run() returns promptly.
    int stop_linger_ms = 2000;
    /// Hard deadline for the whole sweep; 0 = none. Guards CI against a
    /// wedged fleet — run() throws when it expires.
    int total_timeout_ms = 0;
    /// Progress chatter (worker arrivals, deaths, reassignments) on stderr.
    bool verbose = false;
  };

  /// Binds the listener immediately (so port() is valid and workers may
  /// start connecting) but serves only once run() is called. `options`
  /// describes the grid; the coordinator expands it itself and announces
  /// the spec count to workers as a cross-check.
  Coordinator(runner::SweepCliOptions grid_options, Options options);
  ~Coordinator();
  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  [[nodiscard]] uint16_t port() const;
  [[nodiscard]] size_t spec_count() const;

  /// Serves workers until every spec is merged; returns the rows in spec
  /// order. Throws std::runtime_error if total_timeout_ms expires first.
  [[nodiscard]] std::vector<runner::RunRow> run();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace sb::dist
