#pragma once
// Distributed sweep coordinator: a job-queue service that partitions each
// job's expanded spec list into contiguous work units and serves them to a
// fleet of workers over the dist protocol, merging RunRow batches at most
// once per (job, unit).
//
// Dispatch is pull-based — a worker that finishes early simply pulls the
// next unit, so fast workers steal more of the grid with no static
// partition. Heterogeneous fleets are honored: each worker's hello announces
// its core count, and a job submitted with min_cores > 0 only dispatches to
// workers at least that big.
//
// Fault model (docs/ARCHITECTURE.md "Distributed sweep backend"): a worker
// can die (connection drop) or stall (heartbeats stop) at any time; its
// in-flight units are requeued and reassigned, and a reconnecting worker may
// redeliver a result the coordinator already merged — the at-most-once merge
// drops the duplicate. The coordinator itself can be SIGKILLed at any
// instant: with a journal attached (Options::journal_path), every merged
// batch is fsync'd to disk *before* the sending worker's next frame is
// served, so `sweep --resume <journal>` reconstructs the exact merge state
// and re-dispatches only unfinished units. Because run execution is
// deterministic, a unit executed twice yields byte-identical rows and the
// first merged batch wins, so the merged report is independent of worker
// count, arrival order, deaths, reassignments, and resume cycles.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dist/journal.hpp"
#include "runner/cli_options.hpp"
#include "runner/report.hpp"

namespace sb::dist {

class Coordinator {
 public:
  struct Options {
    /// Listener address; keep the loopback default unless remote workers
    /// need to reach the coordinator (then bind 0.0.0.0).
    std::string bind_address = "127.0.0.1";
    /// 0 picks an ephemeral port (read it back via port()).
    uint16_t port = 0;
    /// Specs per work unit of the primary job. 1 maximizes stealing
    /// granularity; raise it to amortize protocol overhead on grids of tiny
    /// runs. (Client-submitted jobs carry their own unit size.)
    size_t unit_size = 1;
    /// Hard per-unit deadline, measured from assignment and deliberately
    /// NOT refreshed by heartbeats: a live worker stuck on a unit is
    /// indistinguishable from a slow one, so after this long the unit is
    /// handed to another worker as well (the at-most-once merge makes the
    /// duplicate execution harmless). Set it above the worst-case runtime
    /// of one unit.
    int unit_timeout_ms = 600000;
    /// A worker connection that sends nothing (heartbeats included) for
    /// this long is declared dead and its in-flight units are requeued
    /// immediately. Workers heartbeat every second by default, so this is
    /// generous. Client connections are exempt — a client waiting out a
    /// long fetch legitimately sends nothing.
    int worker_silence_ms = 15000;
    /// Accept-loop and timeout-monitor poll granularity.
    int tick_ms = 100;
    /// Once the service is stopping, connections get a stop message and
    /// this long to wind down; a worker still grinding a stale (reassigned
    /// and already-merged) unit is then cut off so run() returns promptly.
    int stop_linger_ms = 2000;
    /// Hard deadline for run(); 0 = none. Guards CI against a wedged fleet
    /// — run() throws when it expires.
    int total_timeout_ms = 0;
    /// Write-ahead result journal (dist/journal.hpp); empty = volatile
    /// coordinator, kill loses unmerged progress.
    std::string journal_path;
    /// Service mode: run() keeps serving after the primary job (if any)
    /// completes, accepting client submissions until shutdown().
    bool serve = false;
    /// Progress chatter (worker arrivals, deaths, reassignments) on stderr.
    bool verbose = false;
  };

  /// Primary-sweep constructor: binds the listener immediately (so port()
  /// is valid and workers may start connecting) and queues `grid_options`
  /// as job 0; run() returns its rows. The coordinator expands the grid
  /// dimensions itself and announces the spec count to workers as a
  /// cross-check.
  Coordinator(runner::SweepCliOptions grid_options, Options options);

  /// Service constructor: no primary job; work arrives via client submit.
  /// run() serves until shutdown().
  explicit Coordinator(Options options);

  /// Resume constructor: rebuilds the job table from a parsed journal,
  /// binding the address/port pinned in its header (so orphaned workers
  /// find the resumed coordinator), replays every journaled batch through
  /// the merger, and re-dispatches only unfinished units.
  /// `options.journal_path` should name the same file — new batches append
  /// to it, and replay dedups any record that raced a previous crash.
  Coordinator(const JournalContents& contents, Options options);

  ~Coordinator();
  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  [[nodiscard]] uint16_t port() const;

  /// Spec count of the primary job (0 when constructed in service mode).
  [[nodiscard]] size_t spec_count() const;

  /// Serves the fleet. With a primary job (and serve=false) returns its
  /// rows in spec order once every spec is merged; in service mode blocks
  /// until shutdown() and returns empty. Throws std::runtime_error if
  /// total_timeout_ms expires first or the primary job is cancelled.
  [[nodiscard]] std::vector<runner::RunRow> run();

  /// Asks run() to wind down: workers get stop, clients are disconnected.
  /// Thread-safe; callable while run() is blocked in another thread.
  void shutdown();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace sb::dist
