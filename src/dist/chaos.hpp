#pragma once
// Scripted fault injection for the distributed sweep service.
//
// Every recovery path in the dist layer (journal resume, worker reconnect,
// duplicate redelivery, partial-frame teardown) is exercised in ctest and CI
// through deterministic, scripted faults rather than by hand: the
// SB_DIST_CHAOS environment variable carries a schedule of faults keyed to
// named instrumentation points in the coordinator and worker, the same way
// SB_SWEEP_FAULT_WORKER_AFTER and SB_SIM_FAULT_DROP_FLUSH drive the older
// single-shot injections.
//
// Spec grammar (documented with a worked example in docs/TESTING.md):
//
//   spec   := rule (';' rule)*
//   rule   := point '@' N ':' action
//   point  := coord.merge | coord.dispatch | worker.unit | worker.result
//   action := kill | hang | delay=<ms> | partial
//
// N is the 1-based hit ordinal of the point *in this process*; a rule fires
// exactly once, at the Nth hit. Points are role-prefixed so one spec can
// script a whole fleet: coordinator processes only ever hit coord.*,
// workers only worker.*, and each process counts its own hits.
//
//   SB_DIST_CHAOS="coord.merge@3:kill;worker.result@2:partial"
//
// kills the coordinator the moment its 3rd result batch has been journaled
// and merged, and makes every worker tear its connection down mid-frame
// while sending its 2nd result (forcing reconnect + redelivery).
//
// Actions:
//   kill     — _exit(137) on the spot: an abrupt SIGKILL-grade death, no
//              destructors, no flushes.
//   hang     — sleep for an hour: a wedged-but-alive process (heartbeats
//              from other threads keep flowing, per-unit timeouts must
//              cover it).
//   delay=ms — sleep ms then continue: reordering/latency pressure.
//   partial  — returned to the call site, which must send a truncated
//              frame and treat the connection as dead (only meaningful at
//              send points; elsewhere it degrades to a plain kill of the
//              connection via the returned action).

#include <string_view>

namespace sb::dist::chaos {

/// What the instrumentation point should do beyond what hit() already did.
enum class Action {
  kNone,     ///< no rule fired (or a sleep already happened inline)
  kPartial,  ///< send a truncated frame, then treat the connection as dead
};

/// Well-known instrumentation points (used by coordinator/worker; tests use
/// the same names in specs).
inline constexpr std::string_view kCoordMerge = "coord.merge";
inline constexpr std::string_view kCoordDispatch = "coord.dispatch";
inline constexpr std::string_view kWorkerUnit = "worker.unit";
inline constexpr std::string_view kWorkerResult = "worker.result";

/// True when SB_DIST_CHAOS is set to a non-empty spec.
[[nodiscard]] bool armed();

/// Records one hit of `point` and applies any scheduled fault: kill exits
/// the process, hang/delay sleep inline, partial is returned for the caller
/// to apply. Thread-safe; parses SB_DIST_CHAOS on first call and throws
/// std::runtime_error on a malformed spec so typos fail loudly.
Action hit(std::string_view point);

/// Drops all parsed state and hit counters so the next hit() re-reads
/// SB_DIST_CHAOS. Tests flip the environment between cases.
void reset_for_tests();

}  // namespace sb::dist::chaos
