#pragma once
// Minimal TCP socket layer for the distributed sweep backend.
//
// The dist protocol exchanges length-prefixed frames (a 4-byte little-endian
// payload length followed by that many payload bytes — JSON text in
// practice, see dist/protocol.hpp). This header wraps the POSIX socket
// calls in RAII types with poll-based timeouts; connection failures and
// protocol-level corruption surface as std::runtime_error, while timeouts
// and orderly shutdown are in-band results so callers can distinguish "slow"
// from "dead".

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace sb::dist {

/// Frames larger than this abort the connection — no legitimate dist
/// message approaches it, so a corrupt length prefix fails fast instead of
/// provoking a giant allocation.
inline constexpr uint32_t kMaxFramePayload = 64u << 20;

/// Outcome of a receive attempt.
enum class RecvStatus {
  kFrame,    ///< a complete frame arrived
  kTimeout,  ///< nothing arrived within the deadline; socket still healthy
  kClosed,   ///< orderly EOF or connection error; socket is dead
};

struct RecvResult {
  RecvStatus status = RecvStatus::kClosed;
  std::string payload;  ///< valid when status == kFrame
};

/// A connected stream socket (movable, closes on destruction).
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  /// Connects to host:port, retrying on refusal every `retry_ms` until
  /// `timeout_ms` elapses (workers often start before the coordinator's
  /// listener is up). Throws std::runtime_error when the deadline passes.
  [[nodiscard]] static Socket connect_to(const std::string& host,
                                         uint16_t port, int timeout_ms = 5000,
                                         int retry_ms = 50);

  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  void close();

  /// Writes one length-prefixed frame; blocks until fully sent. Throws
  /// std::runtime_error if the peer is gone (never raises SIGPIPE). Not
  /// thread-safe — callers with concurrent senders (the worker's heartbeat
  /// thread) serialize with their own mutex.
  void send_frame(std::string_view payload);

  /// Chaos injection (dist/chaos.hpp `partial`): writes the length prefix
  /// and only the first half of the payload, leaving the peer stuck
  /// mid-frame until it notices the close. The caller must treat the
  /// connection as dead afterwards.
  void send_partial_frame(std::string_view payload);

  /// Reads one frame, waiting up to `timeout_ms` (< 0 = forever) for data.
  /// The timeout guards the idle gap before a frame starts; once a length
  /// prefix arrives the body is read to completion. Corrupt prefixes throw.
  [[nodiscard]] RecvResult recv_frame(int timeout_ms);

 private:
  int fd_ = -1;
};

/// A listening TCP socket bound to `bind_address`:`port` (port 0 picks an
/// ephemeral port, reported by port()).
class Listener {
 public:
  Listener(const std::string& bind_address, uint16_t port, int backlog = 64);
  ~Listener() { close(); }
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  [[nodiscard]] uint16_t port() const { return port_; }
  void close();

  /// Accepts one connection, waiting up to `timeout_ms`; nullopt on
  /// timeout. Accept loops poll with a finite timeout and check their own
  /// stop flag between calls (no cross-thread close — fds are owned by one
  /// thread).
  [[nodiscard]] std::optional<Socket> accept(int timeout_ms);

 private:
  int fd_ = -1;
  uint16_t port_ = 0;
};

}  // namespace sb::dist
