#include "runner/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <thread>

#include "util/assert.hpp"
#include "util/fmt.hpp"
#include "util/rng.hpp"

namespace sb::runner {

uint64_t derive_run_seed(uint64_t master_seed, size_t index) {
  // Fork an independent child stream per index (SplitMix64 expansion, see
  // util/rng.hpp); unlike master_seed + index this decorrelates neighbours.
  return Rng(master_seed).fork(index).seed();
}

std::vector<RunSpec> expand(const SweepGrid& grid) {
  SB_EXPECTS(!grid.scenarios.empty(), "sweep grid has no scenarios");
  std::vector<std::pair<std::string, core::SessionConfig>> configs =
      grid.configs;
  if (configs.empty()) configs.push_back({"standard", core::SessionConfig{}});

  std::vector<uint64_t> seeds = grid.seeds;
  if (seeds.empty()) {
    SB_EXPECTS(grid.seed_count > 0, "sweep grid needs at least one seed");
    seeds.reserve(grid.seed_count);
    for (size_t i = 0; i < grid.seed_count; ++i) {
      seeds.push_back(derive_run_seed(grid.master_seed, i));
    }
  }

  std::vector<RunSpec> specs;
  specs.reserve(grid.scenarios.size() * configs.size() * seeds.size());
  for (const auto& [scenario_label, scenario] : grid.scenarios) {
    for (const auto& [config_label, config] : configs) {
      for (const uint64_t seed : seeds) {
        RunSpec spec;
        spec.scenario_label = scenario_label;
        spec.scenario = scenario;
        spec.ruleset = config_label;
        spec.config = config;
        spec.seed = seed;
        specs.push_back(std::move(spec));
      }
    }
  }
  return specs;
}

SweepRunner::SweepRunner() : SweepRunner(Options{}) {}

SweepRunner::SweepRunner(Options options) : options_(std::move(options)) {}

size_t SweepRunner::effective_threads(size_t jobs) const {
  size_t threads = options_.threads;
  if (threads == 0) {
    threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  return std::max<size_t>(1, std::min(threads, jobs));
}

namespace {

/// Event budget of the adaptive-map measurement pilot: enough windows to
/// see where the load lives, far too few to matter next to a real run.
constexpr uint64_t kAutobalancePilotEvents = 50'000;

/// Measures the per-shard load distribution with a short capped run on the
/// uniform column map and returns its per-shard event counts (the load
/// hints for ShardMap::restriped). Deterministic: same seed, same pilot.
std::vector<uint64_t> measure_shard_load(const RunSpec& spec,
                                         core::SessionConfig config) {
  config.sim.shard_autobalance = false;
  config.sim.shard_load_hints.clear();
  config.max_events = std::min(config.max_events, kAutobalancePilotEvents);
  core::ReconfigurationSession pilot(spec.scenario, config);
  return pilot.run().shard_events;
}

}  // namespace

SweepRun execute_run(const RunSpec& spec, bool capture_trace,
                     size_t shard_threads) {
  core::SessionConfig config = spec.config;
  config.sim.seed = spec.seed;
  if (shard_threads != 0) config.sim.shard_threads = shard_threads;
  if (config.sim.shard_autobalance && config.sim.shards > 1 &&
      config.sim.shard_map == lat::ShardMapKind::kColumns &&
      config.sim.shard_load_hints.empty()) {
    config.sim.shard_load_hints = measure_shard_load(spec, config);
  }

  core::ReconfigurationSession session(spec.scenario, config);
  SweepRun out;
  if (capture_trace) {
    session.set_move_listener([&out](core::Epoch epoch, lat::BlockId block,
                                     const motion::RuleApplication& app) {
      out.move_trace.push_back(
          fmt("{} {} {}", epoch, block, app.describe()));
    });
  }
  out.session = session.run();
  out.row = make_row(spec.scenario_label, spec.ruleset, spec.seed,
                     out.session);
  return out;
}

SweepResult SweepRunner::run(const std::vector<RunSpec>& specs) const {
  SweepResult result;
  result.runs.resize(specs.size());
  const size_t threads = effective_threads(specs.size());
  if (specs.empty()) {
    result.report = assemble_report(options_, {});
    return result;
  }

  // Work-stealing by atomic index: which thread runs which spec varies, but
  // each run is self-contained and lands at its spec index, so the result
  // is independent of the schedule.
  std::atomic<size_t> next{0};
  std::atomic<size_t> finished{0};
  const auto worker = [&]() {
    for (;;) {
      const size_t index = next.fetch_add(1);
      if (index >= specs.size()) return;
      result.runs[index] = execute_run(specs[index], options_.capture_traces,
                                       options_.shard_threads);
      const size_t done = finished.fetch_add(1) + 1;
      if (options_.on_progress) options_.on_progress(done, specs.size());
    }
  };

  if (threads == 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (size_t i = 0; i < threads; ++i) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }

  std::vector<RunRow> rows;
  rows.reserve(result.runs.size());
  for (const SweepRun& run : result.runs) rows.push_back(run.row);
  result.report = assemble_report(options_, rows);
  return result;
}

SweepResult SweepRunner::run_grid(const SweepGrid& grid) const {
  return run(expand(grid));
}

BenchReport assemble_report(const SweepRunner::Options& options,
                            const std::vector<RunRow>& rows) {
  BenchReport report(options.generator);
  report.set_master_seed(options.master_seed);
  report.set_threads(SweepRunner(options).effective_threads(rows.size()));
  report.set_cores(
      std::max<size_t>(1, std::thread::hardware_concurrency()));
  for (const RunRow& row : rows) report.add_row(row);
  return report;
}

}  // namespace sb::runner
