#pragma once
// SweepRunner: executes many independent simulated worlds concurrently.
//
// A sweep is a grid of (scenario x seed x config/rule-set) runs. Each run is
// a self-contained ReconfigurationSession executed wholly on one worker
// thread; the runner only hands out run indices, so results are bitwise
// identical at any thread count. Per-run RNG seeds are forked
// deterministically from the master seed by run index (never by execution
// order), which makes every run individually reproducible:
//
//   runner::SweepGrid grid;
//   grid.scenarios.push_back({"tower16", lat::make_tower_scenario(8)});
//   grid.seed_count = 8;
//   runner::SweepRunner runner({.threads = 4});
//   runner::SweepResult result = runner.run(runner::expand(grid));
//   result.report.write_file("BENCH_sim.json");

#include <functional>
#include <string>
#include <vector>

#include "core/reconfig.hpp"
#include "lattice/scenario.hpp"
#include "runner/report.hpp"

namespace sb::runner {

/// One cell of the sweep grid: a scenario, a config variant (rule-set,
/// latency model, ...), and a seed. The runner copies `config`, overrides
/// config.sim.seed with `seed`, and runs the session.
struct RunSpec {
  std::string scenario_label;
  lat::Scenario scenario;
  std::string ruleset = "standard";
  core::SessionConfig config;
  uint64_t seed = 0x5eedULL;
};

/// Declarative grid; expand() produces the cross product.
struct SweepGrid {
  /// (label, scenario) pairs.
  std::vector<std::pair<std::string, lat::Scenario>> scenarios;
  /// (label, config) variants; when empty, one default-config variant.
  std::vector<std::pair<std::string, core::SessionConfig>> configs;
  /// Explicit seeds. When empty, seed_count seeds are forked from
  /// master_seed (see derive_run_seed).
  std::vector<uint64_t> seeds;
  size_t seed_count = 1;
  uint64_t master_seed = 0x5eedULL;
};

/// Deterministic per-run seed: depends only on (master_seed, index).
[[nodiscard]] uint64_t derive_run_seed(uint64_t master_seed, size_t index);

/// Cross product scenarios x configs x seeds, in that nesting order.
[[nodiscard]] std::vector<RunSpec> expand(const SweepGrid& grid);

/// Outcome of one run, in spec order regardless of thread schedule.
struct SweepRun {
  RunRow row;
  core::SessionResult session;
  /// One line per elected hop ("epoch block rule@anchor from->to"); filled
  /// when SweepOptions::capture_traces. Byte-identical across thread counts
  /// for a fixed (scenario, config, seed).
  std::vector<std::string> move_trace;
};

struct SweepResult {
  std::vector<SweepRun> runs;
  BenchReport report{"sweep"};
};

/// Executes one spec wholly on the calling thread — the single-run kernel
/// shared by the thread-pool runner and the distributed workers (dist/).
/// `shard_threads` != 0 overrides config.sim.shard_threads (see
/// SweepRunner::Options); the row is independent of both knobs.
[[nodiscard]] SweepRun execute_run(const RunSpec& spec,
                                   bool capture_trace = false,
                                   size_t shard_threads = 0);

class SweepRunner {
 public:
  struct Options {
    /// Worker threads; 0 = hardware concurrency.
    size_t threads = 0;
    /// Intra-world shard threads forced onto every run's SimConfig
    /// (SimConfig::shard_threads); 0 = leave each spec's own value. Only
    /// runs whose config enables sharding (sim.shards > 1) are affected.
    /// Note the multiplication: a sweep on T threads with S shard threads
    /// can occupy T x S cores.
    size_t shard_threads = 0;
    /// Recorded in the report; also used by run_grid for seed forking.
    uint64_t master_seed = 0x5eedULL;
    /// Record per-run move traces (costs memory; used by determinism tests
    /// and trace dumps).
    bool capture_traces = false;
    /// Name recorded as the report generator.
    std::string generator = "sweep";
    /// Progress callback, invoked from worker threads after each finished
    /// run with (finished_count, total). Must be thread-safe; empty = none.
    std::function<void(size_t, size_t)> on_progress;
  };

  SweepRunner();  // default options
  explicit SweepRunner(Options options);

  /// Executes all specs; blocks until done. Results are in spec order.
  [[nodiscard]] SweepResult run(const std::vector<RunSpec>& specs) const;

  /// expand() + run() in one call.
  [[nodiscard]] SweepResult run_grid(const SweepGrid& grid) const;

  [[nodiscard]] size_t effective_threads(size_t jobs) const;

 private:
  Options options_;
};

/// Builds the report exactly as SweepRunner::run does (generator and master
/// seed from `options`, threads = effective_threads(rows.size()), rows in
/// order). The distributed coordinator assembles its merged report through
/// this same function, which is what makes a dist BENCH_sim.json
/// byte-identical to a local one for the same grid.
[[nodiscard]] BenchReport assemble_report(const SweepRunner::Options& options,
                                          const std::vector<RunRow>& rows);

}  // namespace sb::runner
