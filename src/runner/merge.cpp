#include "runner/merge.hpp"

#include "util/assert.hpp"

namespace sb::runner {

ResultMerger::ResultMerger(size_t total) : rows_(total), filled_(total) {}

ResultMerger::Accept ResultMerger::accept(size_t begin,
                                          std::vector<RunRow> rows) {
  if (rows.empty() || begin >= filled_.size() ||
      rows.size() > filled_.size() - begin) {
    return Accept::kInvalid;
  }
  size_t already = 0;
  for (size_t i = 0; i < rows.size(); ++i) {
    if (filled_[begin + i]) ++already;
  }
  if (already == rows.size()) return Accept::kDuplicate;
  // Units have fixed boundaries, so a batch is either fresh or an exact
  // duplicate; covering merged and unmerged indices at once is malformed.
  if (already != 0) return Accept::kInvalid;
  for (size_t i = 0; i < rows.size(); ++i) {
    rows_[begin + i] = std::move(rows[i]);
    filled_[begin + i] = true;
  }
  merged_ += rows.size();
  return Accept::kMerged;
}

std::vector<RunRow> ResultMerger::take_rows() {
  SB_EXPECTS(complete(), "ResultMerger::take_rows before all ",
             filled_.size(), " specs merged (have ", merged_, ")");
  filled_.assign(filled_.size(), false);
  merged_ = 0;
  return std::move(rows_);
}

}  // namespace sb::runner
