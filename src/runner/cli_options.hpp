#pragma once
// Shared sweep CLI vocabulary for tools/sweep, tools/sweep_worker, and
// examples/large_scale.
//
// The flags that describe a sweep grid (scenarios, seeds, latency, shard
// layout, event budget) are registered and validated in one place so every
// front end rejects bad input with the same clear message, and so the
// distributed backend can ship the exact same description to remote workers
// (runner/serialize.hpp) and re-materialize an identical grid there.

#include <cstdint>
#include <string>
#include <vector>

#include "core/reconfig.hpp"
#include "runner/sweep.hpp"
#include "util/cli.hpp"

namespace sb::runner {

/// Everything needed to reconstruct a sweep grid deterministically. This is
/// the unit of agreement between the local front end and remote workers:
/// two processes holding equal SweepCliOptions expand equal RunSpec lists.
struct SweepCliOptions {
  /// Scenario names in lat::resolve_scenario vocabulary (tower<N>, blob<N>,
  /// rect<N>, fig10, or .surf paths — paths must be readable by workers).
  std::vector<std::string> scenarios;
  size_t seed_count = 4;
  uint64_t master_seed = 0x5eedULL;
  /// Link latency model label: fixed | uniform | exponential. Doubles as
  /// the ruleset label ("standard" when fixed).
  std::string latency = "fixed";
  /// Event budget per run; 0 = session default.
  uint64_t max_events = 0;
  size_t shards = 1;
  size_t shard_threads = 1;
  /// Partition geometry label: columns | rows | tiles | adaptive.
  /// "adaptive" is columns plus a load-measuring pilot run whose per-shard
  /// event counts re-stripe the boundaries (SimConfig::shard_autobalance).
  std::string shard_map = "columns";
  /// Local worker threads (0 = hardware concurrency). Not part of the grid
  /// identity, but recorded in the report header by both backends.
  size_t threads = 0;
};

/// Registers the shared grid flags on a parser, using `defaults` for the
/// default values (front ends differ, e.g. large_scale defaults --seeds 0).
void add_sweep_flags(CliParser& cli, const SweepCliOptions& defaults);

/// Reads back the flags registered by add_sweep_flags and validates them:
/// --seeds >= min_seeds, --shards >= 1, non-negative counts, a known
/// --latency, and a parseable --master-seed. Throws std::runtime_error with
/// a usage-style message on any violation (front ends report it and exit
/// nonzero). Positional arguments are appended to `scenarios` as .surf
/// paths. min_seeds 0 admits large_scale's "--seeds 0 = single-run mode".
[[nodiscard]] SweepCliOptions parse_sweep_flags(const CliParser& cli,
                                                size_t min_seeds = 1);

/// Session config implied by the options (latency model, event budget,
/// shard layout). Throws on an unknown latency label.
[[nodiscard]] core::SessionConfig make_session_config(
    const SweepCliOptions& options);

/// Ruleset/config label recorded in reports: "standard" for fixed latency,
/// otherwise the latency label.
[[nodiscard]] std::string ruleset_label(const SweepCliOptions& options);

/// Resolves every scenario name and builds the full grid. Throws with the
/// offending name on resolution failure.
[[nodiscard]] SweepGrid make_sweep_grid(const SweepCliOptions& options);

/// Human-readable scenario vocabulary (the --list-scenarios text).
[[nodiscard]] std::string scenario_vocabulary();

/// Reads a millisecond-valued flag, enforcing min <= value <= 24 h. The
/// cap exists because these values are narrowed to int for poll()/wait_for
/// deadlines — an unchecked 2^31 ms would wrap negative and fire instantly.
[[nodiscard]] int parse_ms_flag(const CliParser& cli, const std::string& name,
                                int64_t min);

}  // namespace sb::runner
