#include "runner/cli_options.hpp"

#include <stdexcept>

#include "lattice/scenario.hpp"
#include "msg/latency.hpp"
#include "util/fmt.hpp"
#include "util/log.hpp"
#include "util/json.hpp"
#include "util/string_util.hpp"

namespace sb::runner {

namespace {

/// Splits "a,b,c" into parts; empty input gives an empty list.
std::vector<std::string> split_csv(const std::string& text) {
  if (text.empty()) return {};
  return split(text, ',');
}

/// Reads a count flag that must be >= `min` (CliParser already rejected
/// non-numeric text; this adds the range check with a clear message).
size_t parse_count(const CliParser& cli, const std::string& name,
                   int64_t min) {
  const int64_t value = cli.get_int(name);
  if (value < min) {
    throw std::runtime_error(
        fmt("--{} must be >= {}, got {}", name, min, value));
  }
  return static_cast<size_t>(value);
}

}  // namespace

void add_sweep_flags(CliParser& cli, const SweepCliOptions& defaults) {
  cli.add_string("scenario", join(defaults.scenarios, ","),
                 "comma-separated scenario names (tower<N>, blob<N>, "
                 "rect<N>, fig10) — .surf paths go as positional arguments");
  cli.add_int("seeds", static_cast<int64_t>(defaults.seed_count),
              "number of seeds forked from --master-seed");
  cli.add_string("master-seed", util::hex_u64(defaults.master_seed),
                 "master seed for RNG forking");
  cli.add_int("threads", static_cast<int64_t>(defaults.threads),
              "worker threads (0 = hardware concurrency)");
  cli.add_string("latency", defaults.latency,
                 "link latency model: fixed | uniform | exponential");
  cli.add_int("max-events", static_cast<int64_t>(defaults.max_events),
              "event budget per run (0 = default; giant blob/rect runs "
              "need a cap — completion is O(N^2) hops)");
  cli.add_int("shards", static_cast<int64_t>(defaults.shards),
              "shards per world (1 = classic event loop)");
  cli.add_int("shard-threads", static_cast<int64_t>(defaults.shard_threads),
              "threads draining shard windows per world (0 = hardware "
              "concurrency; multiplies with --threads)");
  cli.add_string("shard-map", defaults.shard_map,
                 "shard partition geometry: columns | rows | tiles | "
                 "adaptive (columns re-striped by a pilot run's load)");
}

SweepCliOptions parse_sweep_flags(const CliParser& cli, size_t min_seeds) {
  SweepCliOptions options;
  options.scenarios = split_csv(cli.get_string("scenario"));
  for (const std::string& path : cli.positionals()) {
    options.scenarios.push_back(path);
  }
  for (const std::string& name : options.scenarios) {
    if (name.empty()) {
      throw std::runtime_error("empty scenario name in --scenario list");
    }
  }
  options.seed_count =
      parse_count(cli, "seeds", static_cast<int64_t>(min_seeds));
  try {
    options.master_seed = util::parse_u64(cli.get_string("master-seed"));
  } catch (const std::exception&) {
    throw std::runtime_error(fmt("--master-seed expects a decimal or 0x hex "
                                 "integer, got '{}'",
                                 cli.get_string("master-seed")));
  }
  options.threads = parse_count(cli, "threads", 0);
  options.latency = cli.get_string("latency");
  if (options.latency != "fixed" && options.latency != "uniform" &&
      options.latency != "exponential") {
    throw std::runtime_error(fmt(
        "unknown --latency '{}' (fixed | uniform | exponential)",
        options.latency));
  }
  options.max_events = parse_count(cli, "max-events", 0);
  options.shards = parse_count(cli, "shards", 1);
  options.shard_threads = parse_count(cli, "shard-threads", 0);
  options.shard_map = cli.get_string("shard-map");
  if (options.shard_map != "columns" && options.shard_map != "rows" &&
      options.shard_map != "tiles" && options.shard_map != "adaptive") {
    throw std::runtime_error(fmt(
        "unknown --shard-map '{}' (columns | rows | tiles | adaptive)",
        options.shard_map));
  }
  // The engine caps worker threads at the shard count, so extra threads
  // would silently idle; clamp here and say so. 0 is the
  // hardware-concurrency sentinel and is never clamped (the cap still
  // applies inside the engine).
  if (options.shard_threads > options.shards) {
    log_warn(
        "--shard-threads {} exceeds --shards {}: a shard window is drained "
        "by at most one thread, so the extra threads would never run; "
        "clamping to {}",
        options.shard_threads, options.shards, options.shards);
    options.shard_threads = options.shards;
  }
  return options;
}

core::SessionConfig make_session_config(const SweepCliOptions& options) {
  core::SessionConfig config;
  if (options.max_events > 0) config.max_events = options.max_events;
  config.sim.shards = options.shards;
  // Written onto the config directly (not via SweepRunner's
  // Options::shard_threads, whose 0 means "leave the spec's value") so that
  // --shard-threads 0 really selects hardware concurrency.
  config.sim.shard_threads = options.shard_threads;
  if (options.shard_map == "rows") {
    config.sim.shard_map = lat::ShardMapKind::kRows;
  } else if (options.shard_map == "tiles") {
    config.sim.shard_map = lat::ShardMapKind::kTiles;
  } else if (options.shard_map == "adaptive") {
    config.sim.shard_autobalance = true;
  }
  if (options.latency == "uniform") {
    config.sim.latency = msg::LatencyModel::uniform(1, 8);
  } else if (options.latency == "exponential") {
    config.sim.latency = msg::LatencyModel::exponential(3.0);
  } else if (options.latency != "fixed") {
    throw std::runtime_error(fmt(
        "unknown --latency '{}' (fixed | uniform | exponential)",
        options.latency));
  }
  return config;
}

std::string ruleset_label(const SweepCliOptions& options) {
  std::string label =
      options.latency == "fixed" ? "standard" : options.latency;
  // Non-default shard maps change the execution schedule (a different but
  // equally valid trace), so they are a config variant, not the same rows.
  if (options.shard_map != "columns") label += "-" + options.shard_map;
  return label;
}

SweepGrid make_sweep_grid(const SweepCliOptions& options) {
  if (options.scenarios.empty()) {
    throw std::runtime_error("no scenarios given (--scenario or positional "
                             ".surf paths; see --list-scenarios)");
  }
  SweepGrid grid;
  grid.master_seed = options.master_seed;
  grid.seed_count = options.seed_count;
  for (const std::string& name : options.scenarios) {
    try {
      grid.scenarios.push_back(
          {name, lat::resolve_scenario(name, grid.master_seed)});
    } catch (const std::exception& error) {
      throw std::runtime_error(std::string(error.what()) +
                               " (--list-scenarios prints the vocabulary)");
    }
  }
  grid.configs.push_back({ruleset_label(options),
                          make_session_config(options)});
  return grid;
}

int parse_ms_flag(const CliParser& cli, const std::string& name,
                  int64_t min) {
  constexpr int64_t kMaxMs = 24LL * 60 * 60 * 1000;
  const int64_t value = cli.get_int(name);
  if (value < min || value > kMaxMs) {
    throw std::runtime_error(fmt("--{} must be in [{}, {}] ms, got {}", name,
                                 min, kMaxMs, value));
  }
  return static_cast<int>(value);
}

std::string scenario_vocabulary() {
  return
      "Scenario names (lat::resolve_scenario vocabulary):\n"
      "  tower<N>   Lemma-1 tower of N blocks (even N, 4 <= N <= 10000000)\n"
      "  blob<N>    giant random blob, 64 <= N <= 10000000 (seeded by "
      "--master-seed)\n"
      "  rect<N>    giant block rectangle, 64 <= N <= 10000000\n"
      "  fig10      the paper's Figs 10-11 twelve-block example\n"
      "  <path>     anything else is loaded as a .surf scenario file\n";
}

}  // namespace sb::runner
