#pragma once
// Wire serialization for the distributed sweep backend (src/dist).
//
// RunRow results and the SweepCliOptions grid description travel between
// coordinator and workers as JSON payloads inside length-prefixed frames
// (dist/protocol.hpp). Round trips are value-exact: 64-bit integers go as
// hex strings (doubles cannot hold them), and doubles rely on util/json's
// %.17g writer + correctly-rounded parser, so a merged report is built from
// bit-identical values no matter how many hops a row took.

#include "runner/cli_options.hpp"
#include "runner/report.hpp"
#include "util/json.hpp"

namespace sb::runner {

/// Full-fidelity RunRow encoding (every field, including stop_reason —
/// distinct from the BENCH_sim.json row schema, which is a report format).
[[nodiscard]] util::JsonValue row_to_json(const RunRow& row);

/// Inverse of row_to_json. Throws std::runtime_error on missing fields or
/// kind mismatches.
[[nodiscard]] RunRow row_from_json(const util::JsonValue& json);

/// Grid-description encoding: two processes that exchange this reconstruct
/// identical RunSpec lists via make_sweep_grid + expand.
[[nodiscard]] util::JsonValue options_to_json(const SweepCliOptions& options);

/// Inverse of options_to_json. Throws std::runtime_error on malformed input.
[[nodiscard]] SweepCliOptions options_from_json(const util::JsonValue& json);

}  // namespace sb::runner
