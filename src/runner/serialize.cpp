#include "runner/serialize.hpp"

#include <stdexcept>
#include <string>

namespace sb::runner {

namespace {

using util::JsonValue;

// Field accessors that throw on absence or kind mismatch (the JsonValue
// accessors abort, which would let a malformed frame kill the coordinator).
const JsonValue& require(const JsonValue& json, std::string_view key,
                         JsonValue::Kind kind) {
  const JsonValue* value = json.find(key);
  if (value == nullptr || value->kind() != kind) {
    throw std::runtime_error("wire message missing or mistyped field '" +
                             std::string(key) + "'");
  }
  return *value;
}

const std::string& get_string(const JsonValue& json, std::string_view key) {
  return require(json, key, JsonValue::Kind::kString).as_string();
}

bool get_bool(const JsonValue& json, std::string_view key) {
  return require(json, key, JsonValue::Kind::kBool).as_bool();
}

uint64_t get_u64(const JsonValue& json, std::string_view key) {
  return util::parse_u64(get_string(json, key));
}

double get_number(const JsonValue& json, std::string_view key) {
  return require(json, key, JsonValue::Kind::kNumber).as_number();
}

size_t get_size(const JsonValue& json, std::string_view key) {
  return static_cast<size_t>(get_number(json, key));
}

}  // namespace

JsonValue row_to_json(const RunRow& row) {
  JsonValue out = JsonValue::object();
  out["scenario"] = JsonValue(row.scenario);
  out["ruleset"] = JsonValue(row.ruleset);
  // 64-bit counters go as hex strings: seeds routinely use all 64 bits, and
  // giant sweeps can push event counts past double's 2^53 exact range.
  out["seed"] = JsonValue(util::hex_u64(row.seed));
  out["complete"] = JsonValue(row.complete);
  out["events"] = JsonValue(util::hex_u64(row.events));
  out["events_per_sec"] = JsonValue(row.events_per_sec);
  out["wall_seconds"] = JsonValue(row.wall_seconds);
  out["hops"] = JsonValue(util::hex_u64(row.hops));
  out["elementary_moves"] = JsonValue(util::hex_u64(row.elementary_moves));
  out["messages_sent"] = JsonValue(util::hex_u64(row.messages_sent));
  out["iterations"] = JsonValue(row.iterations);
  out["sim_ticks"] = JsonValue(util::hex_u64(row.sim_ticks));
  out["block_count"] = JsonValue(row.block_count);
  out["shards"] = JsonValue(row.shards);
  out["conn_fast_hits"] = JsonValue(util::hex_u64(row.conn_fast_hits));
  out["conn_slow_floods"] = JsonValue(util::hex_u64(row.conn_slow_floods));
  JsonValue shard_events = JsonValue::array();
  for (const uint64_t events : row.shard_events) {
    shard_events.push_back(JsonValue(util::hex_u64(events)));
  }
  out["shard_events"] = std::move(shard_events);
  JsonValue phases = JsonValue::object();
  phases["fold_s"] = JsonValue(row.phase_fold_s);
  phases["integrate_s"] = JsonValue(row.phase_integrate_s);
  phases["decide_s"] = JsonValue(row.phase_decide_s);
  phases["drain_s"] = JsonValue(row.phase_drain_s);
  phases["barrier_wait_s"] = JsonValue(row.phase_barrier_wait_s);
  out["phase_seconds"] = std::move(phases);
  out["barrier_wait_fraction"] = JsonValue(row.barrier_wait_fraction);
  out["stop_reason"] = JsonValue(static_cast<int>(row.stop_reason));
  return out;
}

RunRow row_from_json(const JsonValue& json) {
  RunRow row;
  row.scenario = get_string(json, "scenario");
  row.ruleset = get_string(json, "ruleset");
  row.seed = get_u64(json, "seed");
  row.complete = get_bool(json, "complete");
  row.events = get_u64(json, "events");
  row.events_per_sec = get_number(json, "events_per_sec");
  row.wall_seconds = get_number(json, "wall_seconds");
  row.hops = get_u64(json, "hops");
  row.elementary_moves = get_u64(json, "elementary_moves");
  row.messages_sent = get_u64(json, "messages_sent");
  row.iterations = static_cast<uint32_t>(get_number(json, "iterations"));
  row.sim_ticks = get_u64(json, "sim_ticks");
  row.block_count = get_size(json, "block_count");
  row.shards = get_size(json, "shards");
  row.conn_fast_hits = get_u64(json, "conn_fast_hits");
  row.conn_slow_floods = get_u64(json, "conn_slow_floods");
  for (const JsonValue& events :
       require(json, "shard_events", JsonValue::Kind::kArray).as_array()) {
    if (events.kind() != JsonValue::Kind::kString) {
      throw std::runtime_error("wire shard_events entries must be strings");
    }
    row.shard_events.push_back(util::parse_u64(events.as_string()));
  }
  // Absent in journals written before the phase-timing fields existed;
  // default-zero keeps old journals resumable.
  if (const JsonValue* phases = json.find("phase_seconds")) {
    row.phase_fold_s = get_number(*phases, "fold_s");
    row.phase_integrate_s = get_number(*phases, "integrate_s");
    row.phase_decide_s = get_number(*phases, "decide_s");
    row.phase_drain_s = get_number(*phases, "drain_s");
    row.phase_barrier_wait_s = get_number(*phases, "barrier_wait_s");
  }
  if (json.find("barrier_wait_fraction") != nullptr) {
    row.barrier_wait_fraction = get_number(json, "barrier_wait_fraction");
  }
  const int reason = static_cast<int>(get_number(json, "stop_reason"));
  if (reason < static_cast<int>(sim::StopReason::kQueueEmpty) ||
      reason > static_cast<int>(sim::StopReason::kHalted)) {
    throw std::runtime_error("wire RunRow has invalid stop_reason");
  }
  row.stop_reason = static_cast<sim::StopReason>(reason);
  return row;
}

JsonValue options_to_json(const SweepCliOptions& options) {
  JsonValue out = JsonValue::object();
  JsonValue scenarios = JsonValue::array();
  for (const std::string& name : options.scenarios) {
    scenarios.push_back(JsonValue(name));
  }
  out["scenarios"] = std::move(scenarios);
  out["seed_count"] = JsonValue(options.seed_count);
  out["master_seed"] = JsonValue(util::hex_u64(options.master_seed));
  out["latency"] = JsonValue(options.latency);
  out["max_events"] = JsonValue(util::hex_u64(options.max_events));
  out["shards"] = JsonValue(options.shards);
  out["shard_threads"] = JsonValue(options.shard_threads);
  out["shard_map"] = JsonValue(options.shard_map);
  // Not grid identity, but the report header records it — a resumed
  // coordinator rebuilding a report from the journal must reproduce it.
  out["threads"] = JsonValue(options.threads);
  return out;
}

SweepCliOptions options_from_json(const JsonValue& json) {
  SweepCliOptions options;
  for (const JsonValue& name :
       require(json, "scenarios", JsonValue::Kind::kArray).as_array()) {
    if (name.kind() != JsonValue::Kind::kString) {
      throw std::runtime_error("wire scenario list entries must be strings");
    }
    options.scenarios.push_back(name.as_string());
  }
  options.seed_count = get_size(json, "seed_count");
  options.master_seed = get_u64(json, "master_seed");
  options.latency = get_string(json, "latency");
  options.max_events = get_u64(json, "max_events");
  options.shards = get_size(json, "shards");
  options.shard_threads = get_size(json, "shard_threads");
  options.shard_map = get_string(json, "shard_map");
  options.threads = get_size(json, "threads");
  return options;
}

}  // namespace sb::runner
